// Failure-injection tests for the measurement path: unsignatured (ESNI /
// new-app) traffic, partial ULI registration, and the analysis pipeline's
// robustness to the resulting classification losses.
#include <gtest/gtest.h>

#include "core/clustering.h"
#include "core/rca.h"
#include "core/scenario.h"
#include "probe/aggregate.h"
#include "probe/dpi.h"
#include "probe/gtp.h"
#include "probe/probe.h"
#include "traffic/flows.h"
#include "util/error.h"
#include "util/stats.h"

namespace icn {
namespace {

class FailureInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::ScenarioParams params;
    params.seed = 404;
    params.scale = 0.008;
    params.outdoor_ratio = 0.0;
    scenario_ = std::make_unique<core::Scenario>(
        core::Scenario::build(params));
  }

  std::unique_ptr<core::Scenario> scenario_;
};

TEST_F(FailureInjectionTest, UnknownSniFractionIsDropped) {
  const double fraction = 0.3;
  const traffic::FlowGenerator generator(scenario_->temporal(), 9, 0x100000,
                                         fraction);
  probe::UliDecoder decoder;
  decoder.register_range(generator.ecgi_of(0),
                         static_cast<std::uint32_t>(
                             scenario_->num_antennas()));
  probe::DpiClassifier dpi(scenario_->catalog());
  probe::PassiveProbe probe(decoder, dpi);

  const auto flows = generator.flows_for_antenna(0, 0, 24 * 5);
  const auto sessions = probe.observe_all(flows);
  const double dropped_fraction =
      static_cast<double>(probe.unknown_service()) /
      static_cast<double>(flows.size());
  EXPECT_NEAR(dropped_fraction, fraction, 0.03);
  EXPECT_EQ(sessions.size() + probe.unknown_service(), flows.size());
  EXPECT_EQ(probe.unknown_location(), 0u);
}

TEST_F(FailureInjectionTest, ZeroFractionLosesNothing) {
  const traffic::FlowGenerator generator(scenario_->temporal(), 9);
  probe::UliDecoder decoder;
  decoder.register_range(generator.ecgi_of(0),
                         static_cast<std::uint32_t>(
                             scenario_->num_antennas()));
  probe::DpiClassifier dpi(scenario_->catalog());
  probe::PassiveProbe probe(decoder, dpi);
  const auto flows = generator.flows_for_antenna(1, 0, 48);
  const auto sessions = probe.observe_all(flows);
  EXPECT_EQ(sessions.size(), flows.size());
}

TEST_F(FailureInjectionTest, InvalidFractionRejected) {
  EXPECT_THROW(
      traffic::FlowGenerator(scenario_->temporal(), 9, 0x100000, 1.5),
      icn::util::PreconditionError);
  EXPECT_THROW(
      traffic::FlowGenerator(scenario_->temporal(), 9, 0x100000, -0.1),
      icn::util::PreconditionError);
}

TEST_F(FailureInjectionTest, PartialUliRegistrationDropsOnlyUnknownCells) {
  const traffic::FlowGenerator generator(scenario_->temporal(), 9);
  probe::UliDecoder decoder;
  // Register only the first half of the antennas.
  const auto half =
      static_cast<std::uint32_t>(scenario_->num_antennas() / 2);
  decoder.register_range(generator.ecgi_of(0), half);
  probe::DpiClassifier dpi(scenario_->catalog());
  probe::PassiveProbe probe(decoder, dpi);

  const auto known = generator.flows_for_antenna(0, 0, 24);
  const auto unknown = generator.flows_for_antenna(half, 0, 24);
  EXPECT_EQ(probe.observe_all(known).size(), known.size());
  EXPECT_TRUE(probe.observe_all(unknown).empty());
  EXPECT_EQ(probe.unknown_location(), unknown.size());
}

TEST_F(FailureInjectionTest, RcaSurvivesUniformClassificationLoss) {
  // A uniform 20% DPI loss scales every cell of the T matrix by roughly the
  // same factor, so the RSCA features (ratios of shares) barely move: the
  // measurement loss does not corrupt the paper's analysis.
  const std::int64_t hours = 24 * 5;
  const auto n = scenario_->num_antennas();
  const auto m = scenario_->num_services();

  auto measure = [&](double fraction) {
    const traffic::FlowGenerator generator(scenario_->temporal(), 9,
                                           0x100000, fraction);
    probe::UliDecoder decoder;
    decoder.register_range(generator.ecgi_of(0),
                           static_cast<std::uint32_t>(n));
    probe::DpiClassifier dpi(scenario_->catalog());
    probe::PassiveProbe probe(decoder, dpi);
    std::vector<std::uint32_t> ids(n);
    for (std::size_t i = 0; i < n; ++i) {
      ids[i] = static_cast<std::uint32_t>(i);
    }
    probe::HourlyAggregator agg(ids, m, hours);
    for (std::size_t i = 0; i < n; ++i) {
      agg.add_all(probe.observe_all(generator.flows_for_antenna(
          i, 0, hours)));
    }
    return core::compute_rsca(agg.traffic_matrix());
  };

  const ml::Matrix clean = measure(0.0);
  const ml::Matrix lossy = measure(0.2);
  double max_abs_diff = 0.0, mean_abs_diff = 0.0;
  for (std::size_t i = 0; i < clean.data().size(); ++i) {
    const double diff = std::abs(clean.data()[i] - lossy.data()[i]);
    max_abs_diff = std::max(max_abs_diff, diff);
    mean_abs_diff += diff;
  }
  mean_abs_diff /= static_cast<double>(clean.data().size());
  EXPECT_LT(mean_abs_diff, 0.04);
  EXPECT_LT(max_abs_diff, 0.35);  // worst case on a tiny-volume service
}

}  // namespace
}  // namespace icn
