#include "probe/gtpc_codec.h"

#include "probe/gtp.h"

#include <gtest/gtest.h>

#include "util/error.h"
#include "util/rng.h"

namespace icn::probe {
namespace {

UliIe sample_uli() {
  UliIe uli;
  uli.tai = Tai{Plmn{"208", "01"}, 0x1234};
  uli.ecgi = Ecgi{Plmn{"208", "01"}, 0x0ABCDEF};
  return uli;
}

TEST(PlmnCodecTest, TwoDigitMncRoundTrip) {
  std::vector<std::uint8_t> bytes;
  append_plmn(bytes, Plmn{"208", "01"});
  ASSERT_EQ(bytes.size(), 3u);
  // TS 24.008 layout: 02 F8 10 for 208/01.
  EXPECT_EQ(bytes[0], 0x02);
  EXPECT_EQ(bytes[1], 0xF8);
  EXPECT_EQ(bytes[2], 0x10);
  const auto parsed = parse_plmn(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->mcc, "208");
  EXPECT_EQ(parsed->mnc, "01");
}

TEST(PlmnCodecTest, ThreeDigitMncRoundTrip) {
  std::vector<std::uint8_t> bytes;
  append_plmn(bytes, Plmn{"310", "410"});
  const auto parsed = parse_plmn(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->mcc, "310");
  EXPECT_EQ(parsed->mnc, "410");
}

TEST(PlmnCodecTest, RejectsBadInput) {
  std::vector<std::uint8_t> out;
  EXPECT_THROW(append_plmn(out, Plmn{"20", "01"}),
               icn::util::PreconditionError);
  EXPECT_THROW(append_plmn(out, Plmn{"208", "1"}),
               icn::util::PreconditionError);
  EXPECT_THROW(append_plmn(out, Plmn{"2O8", "01"}),
               icn::util::PreconditionError);
  // Parse side: short buffer and non-digit nibbles.
  EXPECT_FALSE(parse_plmn(std::vector<std::uint8_t>{0x02}).has_value());
  EXPECT_FALSE(
      parse_plmn(std::vector<std::uint8_t>{0xA2, 0xF8, 0x10}).has_value());
}

TEST(UliCodecTest, FullUliRoundTrip) {
  std::vector<std::uint8_t> ies;
  append_uli_ie(ies, sample_uli());
  const auto parsed = find_uli(ies);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, sample_uli());
}

TEST(UliCodecTest, TaiOnlyAndEcgiOnly) {
  {
    UliIe uli;
    uli.tai = Tai{Plmn{"208", "15"}, 99};
    std::vector<std::uint8_t> ies;
    append_uli_ie(ies, uli);
    const auto parsed = find_uli(ies);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, uli);
    EXPECT_FALSE(parsed->ecgi.has_value());
  }
  {
    UliIe uli;
    uli.ecgi = Ecgi{Plmn{"208", "15"}, 7};
    std::vector<std::uint8_t> ies;
    append_uli_ie(ies, uli);
    const auto parsed = find_uli(ies);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, uli);
  }
}

TEST(UliCodecTest, ValidatesConstruction) {
  std::vector<std::uint8_t> ies;
  EXPECT_THROW(append_uli_ie(ies, UliIe{}), icn::util::PreconditionError);
  UliIe big;
  big.ecgi = Ecgi{Plmn{"208", "01"}, 0x1FFFFFFF};  // 29 bits
  EXPECT_THROW(append_uli_ie(ies, big), icn::util::PreconditionError);
}

TEST(UliCodecTest, FoundAmongOtherIes) {
  // Unknown IEs before and after the ULI are skipped by length.
  std::vector<std::uint8_t> ies = {0x47, 0x00, 0x03, 0x00, 1, 2, 3};
  append_uli_ie(ies, sample_uli());
  ies.insert(ies.end(), {0x63, 0x00, 0x01, 0x00, 9});
  const auto parsed = find_uli(ies);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, sample_uli());
}

TEST(UliCodecTest, TruncationAtEveryByteIsRejectedNotCrashing) {
  std::vector<std::uint8_t> ies;
  append_uli_ie(ies, sample_uli());
  for (std::size_t cut = 0; cut < ies.size(); ++cut) {
    const std::span<const std::uint8_t> prefix(ies.data(), cut);
    EXPECT_FALSE(find_uli(prefix).has_value()) << "cut at " << cut;
  }
}

TEST(GtpcCodecTest, MessageRoundTrip) {
  GtpcMessage msg;
  msg.message_type = kCreateSessionRequest;
  msg.teid = 0xDEADBEEF;
  msg.sequence = 0x00ABCDEF;
  append_uli_ie(msg.ies, sample_uli());
  const auto wire = encode_gtpc(msg);
  const auto parsed = parse_gtpc(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->message_type, kCreateSessionRequest);
  EXPECT_EQ(parsed->teid, 0xDEADBEEF);
  EXPECT_EQ(parsed->sequence, 0x00ABCDEFu);
  EXPECT_EQ(parsed->ies, msg.ies);
  const auto uli = find_uli(parsed->ies);
  ASSERT_TRUE(uli.has_value());
  EXPECT_EQ(uli->ecgi->eci, 0x0ABCDEFu);
}

TEST(GtpcCodecTest, HeaderFieldsOnTheWire) {
  GtpcMessage msg;
  msg.message_type = kModifyBearerRequest;
  const auto wire = encode_gtpc(msg);
  EXPECT_EQ(wire[0], 0x48);  // version 2, TEID flag
  EXPECT_EQ(wire[1], kModifyBearerRequest);
  EXPECT_EQ(wire.size(), 12u);
}

TEST(GtpcCodecTest, RejectsWrongVersionAndTruncation) {
  GtpcMessage msg;
  append_uli_ie(msg.ies, sample_uli());
  auto wire = encode_gtpc(msg);
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    const std::span<const std::uint8_t> prefix(wire.data(), cut);
    EXPECT_FALSE(parse_gtpc(prefix).has_value()) << "cut at " << cut;
  }
  auto v1 = wire;
  v1[0] = 0x28;  // version 1
  EXPECT_FALSE(parse_gtpc(v1).has_value());
  auto no_teid = wire;
  no_teid[0] = 0x40;  // version 2, T = 0
  EXPECT_FALSE(parse_gtpc(no_teid).has_value());
}

TEST(GtpcCodecTest, RandomBytesNeverCrash) {
  // Structured fuzz: the parser must reject or cleanly parse arbitrary
  // input without reading out of bounds (run under ASan in CI setups).
  icn::util::Rng rng(0xF422);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::size_t len = rng.uniform_index(64);
    std::vector<std::uint8_t> junk(len);
    for (auto& b : junk) {
      b = static_cast<std::uint8_t>(rng.uniform_index(256));
    }
    const auto msg = parse_gtpc(junk);
    if (msg.has_value()) {
      (void)find_uli(msg->ies);
    }
    (void)find_uli(junk);
  }
  SUCCEED();
}

TEST(MalformedInputTest, ZeroLengthBuffersAreRejected) {
  const std::span<const std::uint8_t> empty;
  EXPECT_FALSE(parse_gtpc(empty).has_value());
  EXPECT_FALSE(find_uli(empty).has_value());
  EXPECT_FALSE(parse_plmn(empty).has_value());
}

TEST(MalformedInputTest, IeLengthOverrunningBufferIsRejected) {
  // A ULI IE whose declared length runs past the end of the buffer must be
  // rejected without reading the missing bytes.
  std::vector<std::uint8_t> ies;
  append_uli_ie(ies, sample_uli());
  for (const std::uint16_t lied : {1, 2, 16, 255, 0xFFFF}) {
    auto bad = ies;
    const auto claimed = static_cast<std::uint16_t>(
        (bad[1] << 8 | bad[2]) + lied);
    bad[1] = static_cast<std::uint8_t>(claimed >> 8);
    bad[2] = static_cast<std::uint8_t>(claimed & 0xFF);
    EXPECT_FALSE(find_uli(bad).has_value()) << "length +" << lied;
  }
}

TEST(MalformedInputTest, PrecedingIeWithBadLengthCannotSkipOutOfBounds) {
  // An unknown IE whose length points past the buffer end must stop the
  // scan cleanly, not jump the cursor out of bounds.
  std::vector<std::uint8_t> ies = {0x47, 0xFF, 0xFF, 0x00};
  append_uli_ie(ies, sample_uli());
  EXPECT_FALSE(find_uli(ies).has_value());
}

TEST(MalformedInputTest, UliPayloadShorterThanFlagsClaimIsRejected) {
  // Flags advertise TAI + ECGI but the payload carries fewer bytes than the
  // fixed-size locations need.
  for (const std::uint8_t flags : {0x08, 0x10, 0x18}) {
    for (std::size_t have = 0; have < 12; ++have) {
      std::vector<std::uint8_t> ies = {kIeTypeUli, 0x00,
                                       static_cast<std::uint8_t>(1 + have),
                                       0x00, flags};
      // Valid-looking PLMN bytes so only the truncation can fail the parse.
      for (std::size_t i = 0; i < have; ++i) {
        ies.push_back(static_cast<std::uint8_t>(i % 9));
      }
      const std::size_t need =
          ((flags & 0x08) ? 5u : 0u) + ((flags & 0x10) ? 7u : 0u);
      const auto parsed = find_uli(ies);
      if (have < need) {
        EXPECT_FALSE(parsed.has_value())
            << "flags " << int(flags) << " have " << have;
      }
    }
  }
}

TEST(MalformedInputTest, ZeroLengthUliPayloadIsRejected) {
  // A ULI IE with length 0 has no flags byte at all.
  const std::vector<std::uint8_t> ies = {kIeTypeUli, 0x00, 0x00, 0x00};
  EXPECT_FALSE(find_uli(ies).has_value());
  // And flags = 0 (no location present) is semantically invalid.
  const std::vector<std::uint8_t> no_loc = {kIeTypeUli, 0x00, 0x01, 0x00,
                                            0x00};
  EXPECT_FALSE(find_uli(no_loc).has_value());
}

TEST(MalformedInputTest, GtpcLengthFieldLyingIsRejected) {
  GtpcMessage msg;
  append_uli_ie(msg.ies, sample_uli());
  const auto wire = encode_gtpc(msg);
  // Length claiming more bytes than the buffer holds.
  auto longer = wire;
  longer[2] = 0xFF;
  longer[3] = 0xFF;
  EXPECT_FALSE(parse_gtpc(longer).has_value());
  // Length below the minimum body (8 bytes after the 4-byte prefix).
  for (const std::uint8_t len : {0, 1, 7}) {
    auto shorter = wire;
    shorter[2] = 0x00;
    shorter[3] = len;
    EXPECT_FALSE(parse_gtpc(shorter).has_value()) << "length " << int(len);
  }
}

TEST(MalformedInputTest, MutatedValidMessagesNeverCrash) {
  // Mutation fuzz: corrupt a few bytes of a well-formed Create Session
  // Request and require the decoders to either reject it or return a
  // structurally valid message — never crash or read out of bounds.
  GtpcMessage msg;
  msg.message_type = kCreateSessionRequest;
  msg.teid = 0x01020304;
  append_uli_ie(msg.ies, sample_uli());
  const auto wire = encode_gtpc(msg);

  icn::util::Rng rng(0xBADC0DE);
  for (int trial = 0; trial < 4000; ++trial) {
    auto mutated = wire;
    const std::size_t flips = 1 + rng.uniform_index(4);
    for (std::size_t f = 0; f < flips; ++f) {
      const std::size_t at = rng.uniform_index(mutated.size());
      mutated[at] = static_cast<std::uint8_t>(rng.uniform_index(256));
    }
    // Occasionally also chop the tail.
    if (rng.bernoulli(0.25)) {
      mutated.resize(rng.uniform_index(mutated.size() + 1));
    }
    const auto parsed = parse_gtpc(mutated);
    if (parsed.has_value()) {
      const auto uli = find_uli(parsed->ies);
      if (uli.has_value()) {
        EXPECT_TRUE(uli->tai.has_value() || uli->ecgi.has_value());
        if (uli->ecgi) EXPECT_LE(uli->ecgi->eci, 0x0FFFFFFFu);
      }
    }
    (void)find_uli(mutated);
  }
  SUCCEED();
}

TEST(GtpcCodecTest, ProbeEndToEndOverWire) {
  // The full control-plane trick the paper relies on: the generator encodes
  // the serving cell into a Create Session Request; the probe parses the
  // bytes and recovers the antenna's cell identity.
  const std::uint32_t cell_id = 0x0012345;
  GtpcMessage msg;
  UliIe uli;
  uli.ecgi = Ecgi{Plmn{"208", "01"}, cell_id};
  append_uli_ie(msg.ies, uli);
  const auto wire = encode_gtpc(msg);

  const auto parsed = parse_gtpc(wire);
  ASSERT_TRUE(parsed.has_value());
  const auto got = find_uli(parsed->ies);
  ASSERT_TRUE(got.has_value());
  ASSERT_TRUE(got->ecgi.has_value());
  EXPECT_EQ(got->ecgi->eci, cell_id);

  UliDecoder decoder;
  decoder.register_cell(cell_id, 17);
  const auto antenna = decoder.antenna_of(got->ecgi->eci);
  ASSERT_TRUE(antenna.has_value());
  EXPECT_EQ(*antenna, 17u);
}

}  // namespace
}  // namespace icn::probe
