#include "probe/wire.h"

#include <gtest/gtest.h>

#include "core/scenario.h"

namespace icn::probe {
namespace {

class WirePathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    icn::core::ScenarioParams params;
    params.seed = 55;
    params.scale = 0.008;
    params.outdoor_ratio = 0.0;
    scenario_ = std::make_unique<icn::core::Scenario>(
        icn::core::Scenario::build(params));
    generator_ = std::make_unique<icn::traffic::FlowGenerator>(
        scenario_->temporal(), 9);
    decoder_.register_range(
        generator_->ecgi_of(0),
        static_cast<std::uint32_t>(scenario_->num_antennas()));
  }

  std::unique_ptr<icn::core::Scenario> scenario_;
  std::unique_ptr<icn::traffic::FlowGenerator> generator_;
  UliDecoder decoder_;
};

TEST_F(WirePathTest, WireAndStructuredPathsAgreeExactly) {
  DpiClassifier dpi_structured(scenario_->catalog());
  DpiClassifier dpi_wire(scenario_->catalog());
  PassiveProbe probe(decoder_, dpi_structured);

  const auto flows = generator_->flows_for_antenna(2, 0, 24);
  ASSERT_FALSE(flows.empty());
  for (const auto& flow : flows) {
    const auto structured = probe.observe(flow);
    const auto wire =
        observe_wire(synthesize_wire(flow), decoder_, dpi_wire);
    ASSERT_EQ(structured.has_value(), wire.has_value());
    if (structured) {
      EXPECT_EQ(structured->antenna_id, wire->antenna_id);
      EXPECT_EQ(structured->service, wire->service);
      EXPECT_EQ(structured->hour, wire->hour);
      EXPECT_DOUBLE_EQ(structured->volume_mb(), wire->volume_mb());
    }
  }
  EXPECT_EQ(dpi_structured.classified(), dpi_wire.classified());
}

TEST_F(WirePathTest, CaptureContainsRealProtocolBytes) {
  const auto flows = generator_->flows_for_hour(0, 0, 10);
  ASSERT_FALSE(flows.empty());
  const auto capture = synthesize_wire(flows.front());
  // GTP-C: version 2 with TEID flag; TLS: handshake record.
  EXPECT_EQ(capture.gtpc[0], 0x48);
  EXPECT_EQ(capture.gtpc[1], kCreateSessionRequest);
  EXPECT_EQ(capture.client_hello[0], 22);
  // Both parse independently.
  EXPECT_TRUE(parse_gtpc(capture.gtpc).has_value());
}

TEST_F(WirePathTest, CorruptedGtpcIsDropped) {
  DpiClassifier dpi(scenario_->catalog());
  const auto flows = generator_->flows_for_hour(0, 0, 10);
  auto capture = synthesize_wire(flows.front());
  capture.gtpc[0] = 0x28;  // GTPv1
  EXPECT_FALSE(observe_wire(capture, decoder_, dpi).has_value());
}

TEST_F(WirePathTest, CorruptedClientHelloIsDropped) {
  DpiClassifier dpi(scenario_->catalog());
  const auto flows = generator_->flows_for_hour(0, 0, 10);
  auto capture = synthesize_wire(flows.front());
  capture.client_hello.resize(capture.client_hello.size() / 2);
  EXPECT_FALSE(observe_wire(capture, decoder_, dpi).has_value());
  EXPECT_EQ(dpi.unmatched(), 1u);
}

TEST_F(WirePathTest, UnknownCellIsDropped) {
  DpiClassifier dpi(scenario_->catalog());
  const auto flows = generator_->flows_for_hour(0, 0, 10);
  auto flow = flows.front();
  flow.ecgi = 0x0FFFFFF0;  // unregistered cell
  EXPECT_FALSE(
      observe_wire(synthesize_wire(flow), decoder_, dpi).has_value());
}

}  // namespace
}  // namespace icn::probe
