#include "probe/aggregate.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace icn::probe {
namespace {

ServiceSession session(std::uint32_t antenna, std::size_t service,
                       std::int64_t hour, double mb) {
  ServiceSession s;
  s.antenna_id = antenna;
  s.service = service;
  s.hour = hour;
  s.down_bytes = mb * 1.0e6 * 0.8;
  s.up_bytes = mb * 1.0e6 * 0.2;
  return s;
}

TEST(HourlyAggregatorTest, AccumulatesVolumes) {
  const std::vector<std::uint32_t> ids = {10, 20};
  HourlyAggregator agg(ids, 3, 48);
  agg.add(session(10, 0, 5, 1.5));
  agg.add(session(10, 0, 5, 0.5));
  agg.add(session(10, 0, 7, 1.0));
  agg.add(session(20, 2, 5, 4.0));
  EXPECT_DOUBLE_EQ(agg.total(10, 0), 3.0);
  EXPECT_DOUBLE_EQ(agg.total(20, 2), 4.0);
  EXPECT_DOUBLE_EQ(agg.total(20, 0), 0.0);
  const auto series = agg.series(10, 0);
  EXPECT_DOUBLE_EQ(series[5], 2.0);
  EXPECT_DOUBLE_EQ(series[7], 1.0);
  EXPECT_DOUBLE_EQ(series[6], 0.0);
}

TEST(HourlyAggregatorTest, TrafficMatrixFollowsIdOrder) {
  const std::vector<std::uint32_t> ids = {42, 7};
  HourlyAggregator agg(ids, 2, 10);
  agg.add(session(42, 1, 0, 2.0));
  agg.add(session(7, 0, 9, 5.0));
  const auto t = agg.traffic_matrix();
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(0, 1), 2.0);  // row 0 = antenna 42
  EXPECT_DOUBLE_EQ(t(1, 0), 5.0);  // row 1 = antenna 7
}

TEST(HourlyAggregatorTest, UntrackedAntennaDropped) {
  const std::vector<std::uint32_t> ids = {1};
  HourlyAggregator agg(ids, 1, 10);
  agg.add(session(99, 0, 0, 1.0));
  EXPECT_EQ(agg.dropped(), 1u);
  EXPECT_DOUBLE_EQ(agg.total(1, 0), 0.0);
}

TEST(HourlyAggregatorTest, AddAllBatches) {
  const std::vector<std::uint32_t> ids = {1, 2};
  HourlyAggregator agg(ids, 1, 10);
  const std::vector<ServiceSession> sessions = {
      session(1, 0, 0, 1.0), session(2, 0, 0, 2.0), session(3, 0, 0, 4.0)};
  agg.add_all(sessions);
  EXPECT_DOUBLE_EQ(agg.total(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(agg.total(2, 0), 2.0);
  EXPECT_EQ(agg.dropped(), 1u);
}

TEST(HourlyAggregatorTest, OutOfRangeIndicesThrow) {
  const std::vector<std::uint32_t> ids = {1};
  HourlyAggregator agg(ids, 2, 10);
  EXPECT_THROW(agg.add(session(1, 2, 0, 1.0)),
               icn::util::PreconditionError);  // bad service
  EXPECT_THROW(agg.add(session(1, 0, 10, 1.0)),
               icn::util::PreconditionError);  // bad hour
  EXPECT_THROW(agg.add(session(1, 0, -1, 1.0)),
               icn::util::PreconditionError);
  EXPECT_THROW(agg.total(9, 0), icn::util::PreconditionError);
  EXPECT_THROW(agg.series(1, 5), icn::util::PreconditionError);
}

TEST(HourlyAggregatorTest, ConstructionValidation) {
  const std::vector<std::uint32_t> empty;
  EXPECT_THROW(HourlyAggregator(empty, 1, 1), icn::util::PreconditionError);
  const std::vector<std::uint32_t> dup = {1, 1};
  EXPECT_THROW(HourlyAggregator(dup, 1, 1), icn::util::PreconditionError);
  const std::vector<std::uint32_t> ok = {1};
  EXPECT_THROW(HourlyAggregator(ok, 0, 1), icn::util::PreconditionError);
  EXPECT_THROW(HourlyAggregator(ok, 1, 0), icn::util::PreconditionError);
}

TEST(HourlyAggregatorTest, Accessors) {
  const std::vector<std::uint32_t> ids = {3, 4, 5};
  HourlyAggregator agg(ids, 7, 24);
  EXPECT_EQ(agg.num_antennas(), 3u);
  EXPECT_EQ(agg.num_services(), 7u);
  EXPECT_EQ(agg.num_hours(), 24);
}

}  // namespace
}  // namespace icn::probe
