#include "probe/tls_sni.h"

#include <gtest/gtest.h>

#include "probe/dpi.h"
#include "util/error.h"
#include "util/rng.h"

namespace icn::probe {
namespace {

TEST(TlsSniTest, RoundTripSimpleHost) {
  const auto record = build_client_hello("spotify.com");
  const auto sni = extract_sni(record);
  ASSERT_TRUE(sni.has_value());
  EXPECT_EQ(*sni, "spotify.com");
}

TEST(TlsSniTest, RoundTripManyHosts) {
  const char* hosts[] = {"a.b", "api.cdn.netflix.com", "x", "maps.google.com",
                         "very-long-subdomain.level2.level1.example.org"};
  for (const char* host : hosts) {
    const auto record = build_client_hello(host, 99);
    const auto sni = extract_sni(record);
    ASSERT_TRUE(sni.has_value()) << host;
    EXPECT_EQ(*sni, host);
  }
}

TEST(TlsSniTest, SeedRandomizesBytesNotSemantics) {
  const auto a = build_client_hello("x.example", 1);
  const auto b = build_client_hello("x.example", 2);
  EXPECT_NE(a, b);  // different client randoms / session ids
  EXPECT_EQ(extract_sni(a), extract_sni(b));
}

TEST(TlsSniTest, BuildValidatesHost) {
  EXPECT_THROW(build_client_hello(""), icn::util::PreconditionError);
  EXPECT_THROW(build_client_hello(std::string(300, 'a')),
               icn::util::PreconditionError);
}

TEST(TlsSniTest, TruncationAtEveryByteIsRejected) {
  const auto record = build_client_hello("service.example.fr");
  for (std::size_t cut = 0; cut < record.size(); ++cut) {
    const std::span<const std::uint8_t> prefix(record.data(), cut);
    EXPECT_FALSE(extract_sni(prefix).has_value()) << "cut at " << cut;
  }
  // The untruncated record parses.
  EXPECT_TRUE(extract_sni(record).has_value());
}

TEST(TlsSniTest, NonHandshakeRecordRejected) {
  auto record = build_client_hello("x.example");
  record[0] = 23;  // application_data
  EXPECT_FALSE(extract_sni(record).has_value());
}

TEST(TlsSniTest, NonClientHelloHandshakeRejected) {
  auto record = build_client_hello("x.example");
  record[5] = 2;  // ServerHello
  EXPECT_FALSE(extract_sni(record).has_value());
}

TEST(TlsSniTest, RandomBytesNeverCrash) {
  icn::util::Rng rng(0x715);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::size_t len = rng.uniform_index(160);
    std::vector<std::uint8_t> junk(len);
    for (auto& b : junk) {
      b = static_cast<std::uint8_t>(rng.uniform_index(256));
    }
    (void)extract_sni(junk);
  }
  SUCCEED();
}

TEST(TlsSniTest, BitFlippedRecordsNeverCrash) {
  // Mutate one byte at a time of a valid record: the parser either still
  // finds a name or cleanly rejects — never crashes or over-reads.
  const auto record = build_client_hello("flip.example", 3);
  for (std::size_t at = 0; at < record.size(); ++at) {
    auto mutated = record;
    mutated[at] ^= 0xFF;
    (void)extract_sni(mutated);
  }
  SUCCEED();
}

TEST(TlsSniTest, EverySingleByteMutationIsHandledTyped) {
  // Exhaustive: every byte position x every value. The extractor must hand
  // back either a bounded, non-empty name or a typed rejection (nullopt) —
  // no crash, no over-read, no garbage length.
  const auto record = build_client_hello("service.example.fr", 7);
  for (std::size_t at = 0; at < record.size(); ++at) {
    auto mutated = record;
    for (int value = 0; value < 256; ++value) {
      mutated[at] = static_cast<std::uint8_t>(value);
      const auto sni = extract_sni(mutated);
      if (sni.has_value()) {
        EXPECT_FALSE(sni->empty()) << "at " << at << " value " << value;
        EXPECT_LE(sni->size(), 255u) << "at " << at << " value " << value;
      }
    }
  }
}

TEST(TlsSniDpiTest, WireLevelClassificationPath) {
  icn::traffic::ServiceCatalog catalog;
  DpiClassifier dpi(catalog);
  const auto record = build_client_hello("api.spotify.com", 5);
  const auto service = dpi.classify_client_hello(record);
  ASSERT_TRUE(service.has_value());
  EXPECT_EQ(catalog.at(*service).name, "Spotify");
  EXPECT_EQ(dpi.classified(), 1u);
}

TEST(TlsSniDpiTest, MutationFuzzKeepsCountersConsistent) {
  // GTPC-style mutation fuzz through the wire-level classification path:
  // every call either classifies into a valid catalogue index or counts a
  // typed miss — exactly one of the two, never a crash.
  icn::traffic::ServiceCatalog catalog;
  DpiClassifier dpi(catalog);
  const auto wire = build_client_hello("api.spotify.com", 11);
  icn::util::Rng rng(0xFA11);
  std::size_t calls = 0;
  for (int trial = 0; trial < 4000; ++trial) {
    auto mutated = wire;
    const std::size_t flips = 1 + rng.uniform_index(4);
    for (std::size_t f = 0; f < flips; ++f) {
      mutated[rng.uniform_index(mutated.size())] =
          static_cast<std::uint8_t>(rng.uniform_index(256));
    }
    if (rng.bernoulli(0.25)) {
      mutated.resize(rng.uniform_index(mutated.size() + 1));
    }
    const auto service = dpi.classify_client_hello(mutated);
    ++calls;
    if (service.has_value()) {
      EXPECT_LT(*service, catalog.size());
    }
    EXPECT_EQ(dpi.classified() + dpi.unmatched(), calls);
  }
}

TEST(TlsSniDpiTest, MalformedRecordCountsAsMiss) {
  icn::traffic::ServiceCatalog catalog;
  DpiClassifier dpi(catalog);
  const std::vector<std::uint8_t> junk = {1, 2, 3};
  EXPECT_FALSE(dpi.classify_client_hello(junk).has_value());
  EXPECT_EQ(dpi.unmatched(), 1u);
  // Valid TLS but unknown host: also a miss (via the SNI path).
  const auto unknown = build_client_hello("unknown.invalid");
  EXPECT_FALSE(dpi.classify_client_hello(unknown).has_value());
  EXPECT_EQ(dpi.unmatched(), 2u);
}

}  // namespace
}  // namespace icn::probe
