#include "probe/dpi.h"

#include <gtest/gtest.h>

#include <string>

#include "util/rng.h"

namespace icn::probe {
namespace {

class DpiClassifierTest : public ::testing::Test {
 protected:
  icn::traffic::ServiceCatalog catalog_;
  DpiClassifier dpi_{catalog_};
};

TEST_F(DpiClassifierTest, ClassifiesKnownSignatures) {
  const auto hit = dpi_.classify("netflix.com");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(catalog_.at(*hit).name, "Netflix");
  EXPECT_EQ(dpi_.classified(), 1u);
  EXPECT_EQ(dpi_.unmatched(), 0u);
}

TEST_F(DpiClassifierTest, ClassifiesSubdomains) {
  const auto hit = dpi_.classify("api.cdn.netflix.com");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(catalog_.at(*hit).name, "Netflix");
}

TEST_F(DpiClassifierTest, CountsUnmatched) {
  EXPECT_FALSE(dpi_.classify("totally-unknown.example").has_value());
  EXPECT_FALSE(dpi_.classify("").has_value());
  EXPECT_EQ(dpi_.classified(), 0u);
  EXPECT_EQ(dpi_.unmatched(), 2u);
}

TEST_F(DpiClassifierTest, StatsAccumulateAndReset) {
  (void)dpi_.classify("spotify.com");
  (void)dpi_.classify("nope.example");
  (void)dpi_.classify("waze.com");
  EXPECT_EQ(dpi_.classified(), 2u);
  EXPECT_EQ(dpi_.unmatched(), 1u);
  dpi_.reset_stats();
  EXPECT_EQ(dpi_.classified(), 0u);
  EXPECT_EQ(dpi_.unmatched(), 0u);
}

TEST_F(DpiClassifierTest, EveryCatalogSignatureClassified) {
  for (std::size_t j = 0; j < catalog_.size(); ++j) {
    const auto hit = dpi_.classify(catalog_.at(j).signature);
    ASSERT_TRUE(hit.has_value()) << catalog_.at(j).name;
    EXPECT_EQ(*hit, j);
  }
  EXPECT_EQ(dpi_.classified(), catalog_.size());
}

TEST_F(DpiClassifierTest, EverySingleCharMutationOfEverySignatureIsTyped) {
  // Exhaustive single-character mutation of every catalogue signature: the
  // classifier must return either a valid catalogue index or a typed miss —
  // never crash — and the counters must account for every call.
  std::size_t calls = 0;
  for (std::size_t j = 0; j < catalog_.size(); ++j) {
    const std::string signature(catalog_.at(j).signature);
    for (std::size_t at = 0; at < signature.size(); ++at) {
      for (int value = 0; value < 256; ++value) {
        std::string mutated = signature;
        mutated[at] = static_cast<char>(value);
        const auto hit = dpi_.classify(mutated);
        ++calls;
        if (hit.has_value()) {
          EXPECT_LT(*hit, catalog_.size());
        }
      }
    }
  }
  EXPECT_EQ(dpi_.classified() + dpi_.unmatched(), calls);
  EXPECT_GT(dpi_.unmatched(), 0u);
}

TEST_F(DpiClassifierTest, RandomHostMutationFuzzNeverCrashes) {
  // GTPC-style multi-byte fuzz on the string path, including embedded NULs,
  // control bytes, and truncation.
  icn::util::Rng rng(0xD81);
  const std::string base = "api.cdn.netflix.com";
  std::size_t calls = 0;
  for (int trial = 0; trial < 4000; ++trial) {
    std::string mutated = base;
    const std::size_t flips = 1 + rng.uniform_index(4);
    for (std::size_t f = 0; f < flips; ++f) {
      mutated[rng.uniform_index(mutated.size())] =
          static_cast<char>(rng.uniform_index(256));
    }
    if (rng.bernoulli(0.25)) {
      mutated.resize(rng.uniform_index(mutated.size() + 1));
    }
    (void)dpi_.classify(mutated);
    ++calls;
  }
  EXPECT_EQ(dpi_.classified() + dpi_.unmatched(), calls);
}

}  // namespace
}  // namespace icn::probe
