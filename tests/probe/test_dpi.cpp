#include "probe/dpi.h"

#include <gtest/gtest.h>

namespace icn::probe {
namespace {

class DpiClassifierTest : public ::testing::Test {
 protected:
  icn::traffic::ServiceCatalog catalog_;
  DpiClassifier dpi_{catalog_};
};

TEST_F(DpiClassifierTest, ClassifiesKnownSignatures) {
  const auto hit = dpi_.classify("netflix.com");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(catalog_.at(*hit).name, "Netflix");
  EXPECT_EQ(dpi_.classified(), 1u);
  EXPECT_EQ(dpi_.unmatched(), 0u);
}

TEST_F(DpiClassifierTest, ClassifiesSubdomains) {
  const auto hit = dpi_.classify("api.cdn.netflix.com");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(catalog_.at(*hit).name, "Netflix");
}

TEST_F(DpiClassifierTest, CountsUnmatched) {
  EXPECT_FALSE(dpi_.classify("totally-unknown.example").has_value());
  EXPECT_FALSE(dpi_.classify("").has_value());
  EXPECT_EQ(dpi_.classified(), 0u);
  EXPECT_EQ(dpi_.unmatched(), 2u);
}

TEST_F(DpiClassifierTest, StatsAccumulateAndReset) {
  (void)dpi_.classify("spotify.com");
  (void)dpi_.classify("nope.example");
  (void)dpi_.classify("waze.com");
  EXPECT_EQ(dpi_.classified(), 2u);
  EXPECT_EQ(dpi_.unmatched(), 1u);
  dpi_.reset_stats();
  EXPECT_EQ(dpi_.classified(), 0u);
  EXPECT_EQ(dpi_.unmatched(), 0u);
}

TEST_F(DpiClassifierTest, EveryCatalogSignatureClassified) {
  for (std::size_t j = 0; j < catalog_.size(); ++j) {
    const auto hit = dpi_.classify(catalog_.at(j).signature);
    ASSERT_TRUE(hit.has_value()) << catalog_.at(j).name;
    EXPECT_EQ(*hit, j);
  }
  EXPECT_EQ(dpi_.classified(), catalog_.size());
}

}  // namespace
}  // namespace icn::probe
