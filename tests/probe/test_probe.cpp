#include "probe/probe.h"

#include <gtest/gtest.h>

namespace icn::probe {
namespace {

icn::traffic::FlowRecord make_flow(std::uint32_t ecgi, const char* sni,
                                   double down = 1.0e6, double up = 2.0e5,
                                   std::int64_t hour = 5) {
  icn::traffic::FlowRecord f;
  f.ecgi = ecgi;
  f.sni = sni;
  f.down_bytes = down;
  f.up_bytes = up;
  f.start_hour = hour;
  return f;
}

class PassiveProbeTest : public ::testing::Test {
 protected:
  void SetUp() override { decoder_.register_range(1000, 10); }

  icn::traffic::ServiceCatalog catalog_;
  UliDecoder decoder_;
  DpiClassifier dpi_{catalog_};
};

TEST_F(PassiveProbeTest, ResolvesSessionEndToEnd) {
  PassiveProbe probe(decoder_, dpi_);
  const auto session = probe.observe(make_flow(1003, "spotify.com"));
  ASSERT_TRUE(session.has_value());
  EXPECT_EQ(session->antenna_id, 3u);
  EXPECT_EQ(catalog_.at(session->service).name, "Spotify");
  EXPECT_EQ(session->hour, 5);
  EXPECT_DOUBLE_EQ(session->down_bytes, 1.0e6);
  EXPECT_DOUBLE_EQ(session->up_bytes, 2.0e5);
  EXPECT_DOUBLE_EQ(session->volume_mb(), 1.2);
}

TEST_F(PassiveProbeTest, DropsUnknownLocation) {
  PassiveProbe probe(decoder_, dpi_);
  EXPECT_FALSE(probe.observe(make_flow(9999, "spotify.com")).has_value());
  EXPECT_EQ(probe.unknown_location(), 1u);
  EXPECT_EQ(probe.unknown_service(), 0u);
}

TEST_F(PassiveProbeTest, DropsUnknownService) {
  PassiveProbe probe(decoder_, dpi_);
  EXPECT_FALSE(probe.observe(make_flow(1000, "mystery.example")).has_value());
  EXPECT_EQ(probe.unknown_location(), 0u);
  EXPECT_EQ(probe.unknown_service(), 1u);
}

TEST_F(PassiveProbeTest, LocationCheckedBeforeService) {
  // A flow failing both checks counts only as unknown location.
  PassiveProbe probe(decoder_, dpi_);
  EXPECT_FALSE(probe.observe(make_flow(9999, "mystery.example")).has_value());
  EXPECT_EQ(probe.unknown_location(), 1u);
  EXPECT_EQ(probe.unknown_service(), 0u);
}

TEST_F(PassiveProbeTest, ObserveAllFiltersBatch) {
  PassiveProbe probe(decoder_, dpi_);
  std::vector<icn::traffic::FlowRecord> flows = {
      make_flow(1000, "spotify.com"),
      make_flow(9999, "spotify.com"),   // bad cell
      make_flow(1001, "who.example"),   // bad sni
      make_flow(1002, "waze.com"),
  };
  const auto sessions = probe.observe_all(flows);
  ASSERT_EQ(sessions.size(), 2u);
  EXPECT_EQ(sessions[0].antenna_id, 0u);
  EXPECT_EQ(sessions[1].antenna_id, 2u);
  EXPECT_EQ(probe.unknown_location(), 1u);
  EXPECT_EQ(probe.unknown_service(), 1u);
}

}  // namespace
}  // namespace icn::probe
