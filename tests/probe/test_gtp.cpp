#include "probe/gtp.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace icn::probe {
namespace {

TEST(UliDecoderTest, RegisterAndLookup) {
  UliDecoder decoder;
  decoder.register_cell(0x100001, 7);
  EXPECT_EQ(decoder.size(), 1u);
  const auto hit = decoder.antenna_of(0x100001);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 7u);
}

TEST(UliDecoderTest, UnknownCellIsNullopt) {
  UliDecoder decoder;
  decoder.register_cell(1, 0);
  EXPECT_FALSE(decoder.antenna_of(2).has_value());
}

TEST(UliDecoderTest, ReRegisteringSameMappingIsIdempotent) {
  UliDecoder decoder;
  decoder.register_cell(5, 3);
  EXPECT_NO_THROW(decoder.register_cell(5, 3));
  EXPECT_EQ(decoder.size(), 1u);
}

TEST(UliDecoderTest, ConflictingRegistrationThrows) {
  UliDecoder decoder;
  decoder.register_cell(5, 3);
  EXPECT_THROW(decoder.register_cell(5, 4), icn::util::PreconditionError);
}

TEST(UliDecoderTest, RegisterRangeMapsContiguously) {
  UliDecoder decoder;
  decoder.register_range(0x0010'0000, 100);
  EXPECT_EQ(decoder.size(), 100u);
  for (std::uint32_t i = 0; i < 100; ++i) {
    const auto hit = decoder.antenna_of(0x0010'0000 + i);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, i);
  }
  EXPECT_FALSE(decoder.antenna_of(0x0010'0000 + 100).has_value());
  EXPECT_FALSE(decoder.antenna_of(0x000F'FFFF).has_value());
}

}  // namespace
}  // namespace icn::probe
