#include "ml/matrix.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace icn::ml {
namespace {

TEST(MatrixTest, ConstructionAndFill) {
  const Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_FALSE(m.empty());
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(m(r, c), 1.5);
    }
  }
}

TEST(MatrixTest, DefaultIsEmpty) {
  const Matrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0u);
}

TEST(MatrixTest, FromDataRowMajor) {
  const Matrix m(2, 2, {1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(MatrixTest, FromDataRejectsWrongSize) {
  EXPECT_THROW(Matrix(2, 2, {1.0, 2.0}), icn::util::PreconditionError);
}

TEST(MatrixTest, CheckedAccessThrows) {
  Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), icn::util::PreconditionError);
  EXPECT_THROW(m.at(0, 2), icn::util::PreconditionError);
  m.at(1, 1) = 7.0;
  EXPECT_DOUBLE_EQ(m.at(1, 1), 7.0);
}

TEST(MatrixTest, RowViewIsWritable) {
  Matrix m(2, 3);
  auto row = m.row(1);
  row[2] = 9.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 9.0);
  EXPECT_THROW(m.row(5), icn::util::PreconditionError);
}

TEST(MatrixTest, ColumnCopies) {
  const Matrix m(2, 2, {1.0, 2.0, 3.0, 4.0});
  const auto col = m.column(1);
  ASSERT_EQ(col.size(), 2u);
  EXPECT_DOUBLE_EQ(col[0], 2.0);
  EXPECT_DOUBLE_EQ(col[1], 4.0);
  EXPECT_THROW(m.column(2), icn::util::PreconditionError);
}

TEST(MatrixTest, SelectRowsReorders) {
  const Matrix m(3, 2, {1, 1, 2, 2, 3, 3});
  const std::vector<std::size_t> idx = {2, 0};
  const Matrix s = m.select_rows(idx);
  EXPECT_EQ(s.rows(), 2u);
  EXPECT_DOUBLE_EQ(s(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(s(1, 0), 1.0);
}

TEST(MatrixTest, SelectRowsAllowsDuplicates) {
  const Matrix m(2, 1, {5.0, 6.0});
  const std::vector<std::size_t> idx = {1, 1, 0};
  const Matrix s = m.select_rows(idx);
  EXPECT_EQ(s.rows(), 3u);
  EXPECT_DOUBLE_EQ(s(0, 0), 6.0);
  EXPECT_DOUBLE_EQ(s(1, 0), 6.0);
}

TEST(MatrixTest, SelectRowsRejectsOutOfRange) {
  const Matrix m(2, 1);
  const std::vector<std::size_t> idx = {3};
  EXPECT_THROW(m.select_rows(idx), icn::util::PreconditionError);
}

}  // namespace
}  // namespace icn::ml
