// Bit-parity suites for the PR's new dispatched kernels: the fused RSCA
// transform, the silhouette/Dunn segment kernels, the x4 row-batched
// distance kernel, the opt-in FMA lane (against its own std::fma reference),
// and the tiled condensed-distance builder (byte-identical at every tile
// size and thread count). Mirrors tests/ml/test_simd_dispatch.cpp: lengths
// 0..67 sweep every tail path, plus unaligned and NaN/Inf inputs.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "ml/distance.h"
#include "ml/kernels.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/simd.h"

namespace icn::ml {
namespace {

using icn::util::SimdLevel;

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

std::uint64_t bits(double x) { return std::bit_cast<std::uint64_t>(x); }

std::vector<SimdLevel> runnable_levels() {
  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
  const SimdLevel max = icn::util::max_supported_simd_level();
  if (max >= SimdLevel::kSse2) levels.push_back(SimdLevel::kSse2);
  if (max >= SimdLevel::kAvx2) levels.push_back(SimdLevel::kAvx2);
  if (max >= SimdLevel::kAvx512) levels.push_back(SimdLevel::kAvx512);
  return levels;
}

bool fma_lane_runnable() {
  return icn::util::max_supported_simd_level() >= SimdLevel::kAvx2 &&
         icn::util::cpu_supports_fma();
}

void run_rsca_row(SimdLevel level, const double* t, const double* s,
                  double total, std::size_t n, double* out) {
  switch (level) {
    case SimdLevel::kScalar:
      return detail::rsca_row_scalar(t, s, total, n, out);
    case SimdLevel::kSse2:
      return detail::rsca_row_sse2(t, s, total, n, out);
    case SimdLevel::kAvx2:
      return detail::rsca_row_avx2(t, s, total, n, out);
    case SimdLevel::kAvx512:
      return detail::rsca_row_avx512(t, s, total, n, out);
    case SimdLevel::kAvx2Fma:
      return detail::rsca_row_fma(t, s, total, n, out);
  }
}

void run_rsca_map(SimdLevel level, const double* v, std::size_t n,
                  double* out) {
  switch (level) {
    case SimdLevel::kScalar:
      return detail::rsca_map_scalar(v, n, out);
    case SimdLevel::kSse2:
      return detail::rsca_map_sse2(v, n, out);
    case SimdLevel::kAvx2:
      return detail::rsca_map_avx2(v, n, out);
    case SimdLevel::kAvx512:
      return detail::rsca_map_avx512(v, n, out);
    case SimdLevel::kAvx2Fma:
      return detail::rsca_map_avx2(v, n, out);
  }
}

void run_labeled_sums(SimdLevel level, const double* d, const int* labels,
                      std::size_t n, std::size_t k, double* sums) {
  switch (level) {
    case SimdLevel::kScalar:
      return detail::labeled_sums_scalar(d, labels, n, k, sums);
    case SimdLevel::kSse2:
      return detail::labeled_sums_sse2(d, labels, n, k, sums);
    case SimdLevel::kAvx2:
    case SimdLevel::kAvx2Fma:
      return detail::labeled_sums_avx2(d, labels, n, k, sums);
    case SimdLevel::kAvx512:
      return detail::labeled_sums_avx512(d, labels, n, k, sums);
  }
}

void run_labeled_extrema(SimdLevel level, const double* d, const int* labels,
                         int own, std::size_t n, double* mn, double* mx) {
  switch (level) {
    case SimdLevel::kScalar:
      return detail::labeled_extrema_scalar(d, labels, own, n, mn, mx);
    case SimdLevel::kSse2:
      return detail::labeled_extrema_sse2(d, labels, own, n, mn, mx);
    case SimdLevel::kAvx2:
    case SimdLevel::kAvx2Fma:
      return detail::labeled_extrema_avx2(d, labels, own, n, mn, mx);
    case SimdLevel::kAvx512:
      return detail::labeled_extrema_avx512(d, labels, own, n, mn, mx);
  }
}

void run_x4(SimdLevel level, const double* a, const double* b,
            std::size_t stride, std::size_t n, double out[4]) {
  switch (level) {
    case SimdLevel::kScalar:
      return detail::squared_euclidean_x4_scalar(a, b, stride, n, out);
    case SimdLevel::kSse2:
      return detail::squared_euclidean_x4_sse2(a, b, stride, n, out);
    case SimdLevel::kAvx2:
      return detail::squared_euclidean_x4_avx2(a, b, stride, n, out);
    case SimdLevel::kAvx512:
      return detail::squared_euclidean_x4_avx512(a, b, stride, n, out);
    case SimdLevel::kAvx2Fma:
      return detail::squared_euclidean_x4_fma(a, b, stride, n, out);
  }
}

// ---------------------------------------------------------------------------
// RSCA kernels

TEST(KernelsDispatchTest, RscaRowAllLanesBitExactOverEveryShortLength) {
  icn::util::Rng rng(811);
  const auto levels = runnable_levels();
  for (std::size_t n = 0; n <= 67; ++n) {
    std::vector<double> t(n), s(n), ref(n), got(n);
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      // Zero traffic cells and non-positive shares exercise both select
      // branches; magnitudes span a wide range.
      t[i] = (i % 5 == 0) ? 0.0
                          : std::abs(rng.normal()) *
                                std::pow(10.0, rng.uniform(-6.0, 6.0));
      s[i] = (i % 7 == 0) ? 0.0 : std::abs(rng.normal());
      if (i % 11 == 0) s[i] = -s[i];
      total += t[i];
    }
    total = std::max(total, 1e-9);
    detail::rsca_row_scalar(t.data(), s.data(), total, n, ref.data());
    for (const SimdLevel level : levels) {
      run_rsca_row(level, t.data(), s.data(), total, n, got.data());
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(bits(ref[i]), bits(got[i]))
            << "rsca_row level " << icn::util::simd_level_name(level)
            << " n " << n << " i " << i;
      }
    }
  }
}

TEST(KernelsDispatchTest, RscaMapAllLanesBitExactOverEveryShortLength) {
  icn::util::Rng rng(813);
  const auto levels = runnable_levels();
  for (std::size_t n = 0; n <= 67; ++n) {
    std::vector<double> v(n), ref(n), got(n);
    for (std::size_t i = 0; i < n; ++i) {
      v[i] = (i % 6 == 0) ? 0.0 : std::abs(rng.normal()) * 10.0;
      if (i % 13 == 0) v[i] = kInf;  // Inf/Inf: the same default NaN per lane
    }
    detail::rsca_map_scalar(v.data(), n, ref.data());
    for (const SimdLevel level : levels) {
      run_rsca_map(level, v.data(), n, got.data());
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(bits(ref[i]), bits(got[i]))
            << "rsca_map level " << icn::util::simd_level_name(level)
            << " n " << n << " i " << i;
      }
    }
  }
}

TEST(KernelsDispatchTest, RscaRowUnalignedAndSpecialValues) {
  icn::util::Rng rng(815);
  constexpr std::size_t kPad = 8;
  constexpr std::size_t kLen = 61;
  std::vector<double> buf_t(kPad + kLen), buf_s(kPad + kLen),
      ref(kLen), got(kLen);
  for (auto& x : buf_t) x = std::abs(rng.normal()) * 1e3;
  for (auto& x : buf_s) x = std::abs(rng.normal());
  buf_s[kPad + 5] = kNan;   // NaN share: s > 0 is false -> 0.0 on all lanes
  buf_s[kPad + 9] = 0.0;
  buf_t[kPad + 17] = kInf;
  const auto levels = runnable_levels();
  for (std::size_t off = 0; off < kPad; ++off) {
    const double* t = buf_t.data() + off;
    const double* s = buf_s.data() + off;
    detail::rsca_row_scalar(t, s, 7.25, kLen, ref.data());
    for (const SimdLevel level : levels) {
      run_rsca_row(level, t, s, 7.25, kLen, got.data());
      for (std::size_t i = 0; i < kLen; ++i) {
        ASSERT_EQ(bits(ref[i]), bits(got[i]))
            << "offset " << off << " level "
            << icn::util::simd_level_name(level) << " i " << i;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// silhouette / Dunn segment kernels

TEST(KernelsDispatchTest, LabeledSumsAllLanesBitExactOverEveryShortLength) {
  icn::util::Rng rng(821);
  const auto levels = runnable_levels();
  for (std::size_t n = 0; n <= 67; ++n) {
    for (const std::size_t k : {std::size_t{2}, std::size_t{9},
                                std::size_t{17}}) {
      std::vector<double> d(n);
      std::vector<int> labels(n);
      for (std::size_t i = 0; i < n; ++i) {
        d[i] = std::abs(rng.normal()) * std::pow(10.0, rng.uniform(-6.0, 6.0));
        labels[i] = static_cast<int>(rng.uniform_index(k));
      }
      // Non-zero initial sums: the kernels accumulate, they don't overwrite.
      std::vector<double> ref(k), got(k);
      for (std::size_t c = 0; c < k; ++c) ref[c] = 0.125 * double(c + 1);
      got = ref;
      detail::labeled_sums_scalar(d.data(), labels.data(), n, k, ref.data());
      for (const SimdLevel level : levels) {
        auto lane = got;
        run_labeled_sums(level, d.data(), labels.data(), n, k, lane.data());
        for (std::size_t c = 0; c < k; ++c) {
          ASSERT_EQ(bits(ref[c]), bits(lane[c]))
              << "labeled_sums level " << icn::util::simd_level_name(level)
              << " n " << n << " k " << k << " c " << c;
        }
      }
    }
  }
}

TEST(KernelsDispatchTest, LabeledExtremaAllLanesBitExactWithNanAndInf) {
  icn::util::Rng rng(823);
  const auto levels = runnable_levels();
  for (std::size_t n = 0; n <= 67; ++n) {
    std::vector<double> d(n);
    std::vector<int> labels(n);
    for (std::size_t i = 0; i < n; ++i) {
      d[i] = std::abs(rng.normal()) * 100.0;
      if (i % 9 == 0) d[i] = kNan;  // NaN keeps the accumulator on all lanes
      if (i % 14 == 0) d[i] = kInf;
      if (i % 15 == 0) d[i] = 0.0;
      labels[i] = static_cast<int>(rng.uniform_index(3));
    }
    double ref_mn = kInf, ref_mx = 0.0;
    detail::labeled_extrema_scalar(d.data(), labels.data(), 1, n, &ref_mn,
                                   &ref_mx);
    for (const SimdLevel level : levels) {
      double mn = kInf, mx = 0.0;
      run_labeled_extrema(level, d.data(), labels.data(), 1, n, &mn, &mx);
      ASSERT_EQ(bits(ref_mn), bits(mn))
          << "min level " << icn::util::simd_level_name(level) << " n " << n;
      ASSERT_EQ(bits(ref_mx), bits(mx))
          << "max level " << icn::util::simd_level_name(level) << " n " << n;
    }
  }
}

TEST(KernelsDispatchTest, LabeledExtremaFoldsIntoRunningValues) {
  // The kernel folds into the caller's accumulators; pre-seeded values must
  // survive when the segment does not beat them.
  const std::vector<double> d = {5.0, 6.0, 7.0};
  const std::vector<int> labels = {0, 1, 0};
  for (const SimdLevel level : runnable_levels()) {
    double mn = 1.0, mx = 100.0;
    run_labeled_extrema(level, d.data(), labels.data(), 0, d.size(), &mn,
                        &mx);
    EXPECT_EQ(1.0, mn) << icn::util::simd_level_name(level);
    EXPECT_EQ(100.0, mx) << icn::util::simd_level_name(level);
  }
}

// ---------------------------------------------------------------------------
// x4 row-batched distance kernel

TEST(KernelsDispatchTest, X4MatchesFourSingleKernelCallsOnEveryLane) {
  icn::util::Rng rng(827);
  const auto levels = runnable_levels();
  for (std::size_t n = 0; n <= 67; ++n) {
    const std::size_t stride = n + 3;  // rows deliberately over-allocated
    std::vector<double> a(n), b(4 * stride);
    for (auto& x : a) x = rng.normal() * std::pow(10.0, rng.uniform(-4., 4.));
    for (auto& x : b) x = rng.normal();
    double ref[4];
    for (std::size_t r = 0; r < 4; ++r) {
      ref[r] = detail::squared_euclidean_scalar(a.data(),
                                                b.data() + r * stride, n);
    }
    for (const SimdLevel level : levels) {
      double got[4];
      run_x4(level, a.data(), b.data(), stride, n, got);
      for (std::size_t r = 0; r < 4; ++r) {
        ASSERT_EQ(bits(ref[r]), bits(got[r]))
            << "x4 level " << icn::util::simd_level_name(level) << " n " << n
            << " row " << r;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// FMA lane: parity against its own re-baselined scalar reference

TEST(KernelsDispatchTest, FmaKernelsMatchTheirFmaReferenceBitForBit) {
  if (!fma_lane_runnable()) {
    GTEST_SKIP() << "CPU lacks AVX2+FMA";
  }
  icn::util::Rng rng(829);
  for (std::size_t n = 0; n <= 67; ++n) {
    std::vector<double> t(n), s(n), a(n), ref(n), got(n);
    const std::size_t stride = n + 1;
    std::vector<double> b(4 * stride);
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      t[i] = std::abs(rng.normal()) + 0.01;
      s[i] = (i % 7 == 0) ? 0.0 : std::abs(rng.normal());
      a[i] = rng.normal() * std::pow(10.0, rng.uniform(-5.0, 5.0));
      total += t[i];
    }
    for (auto& x : b) x = rng.normal();
    total = std::max(total, 1e-9);

    detail::rsca_row_fma_reference(t.data(), s.data(), total, n, ref.data());
    detail::rsca_row_fma(t.data(), s.data(), total, n, got.data());
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(bits(ref[i]), bits(got[i])) << "rsca_row_fma n " << n;
    }

    const double dref =
        detail::squared_euclidean_fma_reference(a.data(), b.data(), n);
    ASSERT_EQ(bits(dref),
              bits(detail::squared_euclidean_fma(a.data(), b.data(), n)))
        << "squared_euclidean_fma n " << n;
    double q[4];
    detail::squared_euclidean_x4_fma(a.data(), b.data(), stride, n, q);
    for (std::size_t r = 0; r < 4; ++r) {
      ASSERT_EQ(bits(detail::squared_euclidean_fma_reference(
                    a.data(), b.data() + r * stride, n)),
                bits(q[r]))
          << "x4_fma n " << n << " row " << r;
    }
  }
}

// ---------------------------------------------------------------------------
// Tiled condensed distances: byte-identical across tiles and thread counts

TEST(TiledDistanceTest, EveryTileSizeProducesByteIdenticalCondensedOutput) {
  icn::util::Rng rng(831);
  const std::size_t n = 75, m = 19;
  Matrix x(n, m);
  for (auto& v : x.data()) v = rng.normal() * 10.0;
  std::vector<double> ref(n * (n - 1) / 2);
  fill_condensed(x, /*squared=*/false, ref, /*tile=*/1);
  // Pairwise scalar-kernel reference: the tiled/batched path may not change
  // a single bit relative to one kernel call per pair.
  for (std::size_t i = 0, at = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j, ++at) {
      ASSERT_EQ(bits(std::sqrt(detail::squared_euclidean_scalar(
                    x.data().data() + i * m, x.data().data() + j * m, m))),
                bits(ref[at]))
          << "pair " << i << "," << j;
    }
  }
  for (const std::size_t tile : {std::size_t{2}, std::size_t{3},
                                 std::size_t{16}, std::size_t{64},
                                 std::size_t{200}}) {
    std::vector<double> out(ref.size(), -1.0);
    fill_condensed(x, /*squared=*/false, out, tile);
    for (std::size_t at = 0; at < ref.size(); ++at) {
      ASSERT_EQ(bits(ref[at]), bits(out[at])) << "tile " << tile;
    }
  }
  // Squared variant sweeps tiles too.
  std::vector<double> sq_ref(ref.size()), sq(ref.size());
  fill_condensed(x, /*squared=*/true, sq_ref, /*tile=*/5);
  fill_condensed(x, /*squared=*/true, sq, /*tile=*/33);
  for (std::size_t at = 0; at < sq.size(); ++at) {
    ASSERT_EQ(bits(sq_ref[at]), bits(sq[at]));
  }
}

TEST(TiledDistanceTest, ThreadCountCannotChangeTiledOutputBits) {
  icn::util::Rng rng(833);
  const std::size_t n = 90, m = 11;
  Matrix x(n, m);
  for (auto& v : x.data()) v = rng.normal();
  std::vector<double> ref(n * (n - 1) / 2);
  {
    icn::util::ThreadPool::ScopedOverride pool(1);
    fill_condensed(x, /*squared=*/false, ref, /*tile=*/8);
  }
  for (const std::size_t threads : {std::size_t{2}, std::size_t{5},
                                    std::size_t{8}}) {
    icn::util::ThreadPool::ScopedOverride pool(threads);
    for (const std::size_t tile : {std::size_t{4}, std::size_t{8},
                                   std::size_t{64}}) {
      std::vector<double> out(ref.size());
      fill_condensed(x, /*squared=*/false, out, tile);
      for (std::size_t at = 0; at < ref.size(); ++at) {
        ASSERT_EQ(bits(ref[at]), bits(out[at]))
            << "threads " << threads << " tile " << tile;
      }
    }
  }
}

TEST(TiledDistanceTest, CondensedDistancesRowTailViewsTheTriangleRow) {
  icn::util::Rng rng(835);
  const std::size_t n = 23;
  Matrix x(n, 7);
  for (auto& v : x.data()) v = rng.normal();
  const CondensedDistances dist(x);
  for (std::size_t i = 0; i < n; ++i) {
    const auto tail = dist.row_tail(i);
    ASSERT_EQ(n - i - 1, tail.size());
    for (std::size_t j = i + 1; j < n; ++j) {
      EXPECT_EQ(bits(dist(i, j)), bits(tail[j - i - 1]));
    }
  }
  EXPECT_TRUE(dist.row_tail(n - 1).empty());
}

}  // namespace
}  // namespace icn::ml
