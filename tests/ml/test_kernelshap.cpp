#include "ml/kernelshap.h"

#include <gtest/gtest.h>

#include <cmath>

#include "ml/exactshap.h"
#include "ml/forest.h"
#include "util/error.h"
#include "util/rng.h"

namespace icn::ml {
namespace {

/// Linear two-output model used in several tests.
std::vector<double> linear_model(std::span<const double> x) {
  // out0 = 2 x0 - x1 + 0.5 x2 ; out1 = x1.
  return {2.0 * x[0] - x[1] + 0.5 * x[2], x[1]};
}

Matrix random_background(std::size_t rows, std::size_t cols,
                         std::uint64_t seed) {
  icn::util::Rng rng(seed);
  Matrix bg(rows, cols);
  for (auto& v : bg.data()) v = rng.uniform(-1.0, 1.0);
  return bg;
}

TEST(InterventionalValueTest, FullAndEmptyMasks) {
  const Matrix bg = random_background(16, 3, 3);
  const std::vector<double> x = {1.0, 2.0, 3.0};
  const auto v_full = interventional_value(linear_model, x,
                                           bg, std::vector<bool>(3, true));
  const auto direct = linear_model(x);
  EXPECT_NEAR(v_full[0], direct[0], 1e-12);
  EXPECT_NEAR(v_full[1], direct[1], 1e-12);

  // Empty mask: mean of the model over the background.
  const auto v_empty = interventional_value(linear_model, x, bg,
                                            std::vector<bool>(3, false));
  std::vector<double> acc(2, 0.0);
  for (std::size_t b = 0; b < bg.rows(); ++b) {
    const auto out = linear_model(bg.row(b));
    acc[0] += out[0] / 16.0;
    acc[1] += out[1] / 16.0;
  }
  EXPECT_NEAR(v_empty[0], acc[0], 1e-12);
  EXPECT_NEAR(v_empty[1], acc[1], 1e-12);
}

TEST(KernelShapTest, LinearModelExactlyRecovered) {
  // For a linear model with interventional value function, Shapley values
  // are w_f * (x_f - mean(background_f)).
  const Matrix bg = random_background(32, 3, 5);
  const std::vector<double> x = {1.5, -0.5, 2.0};
  const auto result = kernel_shap(linear_model, x, bg);
  std::vector<double> bg_mean(3, 0.0);
  for (std::size_t b = 0; b < bg.rows(); ++b) {
    for (std::size_t f = 0; f < 3; ++f) bg_mean[f] += bg(b, f) / 32.0;
  }
  const double w0[3] = {2.0, -1.0, 0.5};
  for (std::size_t f = 0; f < 3; ++f) {
    EXPECT_NEAR(result.phi(f, 0), w0[f] * (x[f] - bg_mean[f]), 1e-9);
  }
  EXPECT_NEAR(result.phi(0, 1), 0.0, 1e-9);
  EXPECT_NEAR(result.phi(1, 1), x[1] - bg_mean[1], 1e-9);
  EXPECT_NEAR(result.phi(2, 1), 0.0, 1e-9);
}

TEST(KernelShapTest, MatchesExactShapleyForNonlinearModel) {
  const std::size_t m = 4;
  const ModelFunction model = [](std::span<const double> x) {
    return std::vector<double>{x[0] * x[1] + std::sin(x[2]) + x[3]};
  };
  const Matrix bg = random_background(8, m, 7);
  const std::vector<double> x = {0.7, -1.2, 0.4, 1.1};
  const auto kernel = kernel_shap(model, x, bg);
  const ValueFunction v = [&](const std::vector<bool>& present) {
    return interventional_value(model, x, bg, present);
  };
  const Matrix exact = exact_shapley(v, m, 1);
  for (std::size_t f = 0; f < m; ++f) {
    // Full coalition enumeration -> the regression is exact.
    EXPECT_NEAR(kernel.phi(f, 0), exact(f, 0), 1e-7) << "feature " << f;
  }
}

TEST(KernelShapTest, EfficiencyHoldsByConstruction) {
  const ModelFunction model = [](std::span<const double> x) {
    return std::vector<double>{x[0] * x[0] + 2.0 * x[1]};
  };
  const Matrix bg = random_background(10, 2, 9);
  const std::vector<double> x = {1.0, -2.0};
  const auto result = kernel_shap(model, x, bg);
  const auto v1 = interventional_value(model, x, bg,
                                       std::vector<bool>(2, true));
  double total = result.base[0];
  for (std::size_t f = 0; f < 2; ++f) total += result.phi(f, 0);
  EXPECT_NEAR(total, v1[0], 1e-9);
}

TEST(KernelShapTest, SingleFeatureShortcut) {
  const ModelFunction model = [](std::span<const double> x) {
    return std::vector<double>{3.0 * x[0]};
  };
  const Matrix bg = random_background(4, 1, 11);
  const std::vector<double> x = {2.0};
  const auto result = kernel_shap(model, x, bg);
  double bg_mean = 0.0;
  for (std::size_t b = 0; b < 4; ++b) bg_mean += bg(b, 0) / 4.0;
  EXPECT_NEAR(result.phi(0, 0), 3.0 * (2.0 - bg_mean), 1e-12);
}

TEST(KernelShapTest, SampledRegimeApproximatesExact) {
  // 12 features exceed the 2^12-2 > budget threshold with a small budget,
  // forcing the sampled path.
  const std::size_t m = 12;
  const ModelFunction model = [](std::span<const double> x) {
    double acc = 0.0;
    for (std::size_t f = 0; f < x.size(); ++f) {
      acc += (1.0 + 0.25 * static_cast<double>(f)) * x[f];
    }
    return std::vector<double>{acc};
  };
  Matrix bg(1, m);  // single background row keeps the value function cheap
  for (std::size_t f = 0; f < m; ++f) bg(0, f) = 0.0;
  std::vector<double> x(m, 1.0);
  KernelShapParams params;
  params.max_coalitions = 800;
  params.seed = 3;
  const auto result = kernel_shap(model, x, bg, params);
  for (std::size_t f = 0; f < m; ++f) {
    const double expected = 1.0 + 0.25 * static_cast<double>(f);
    EXPECT_NEAR(result.phi(f, 0), expected, 0.15) << "feature " << f;
  }
}

TEST(KernelShapTest, AgreesWithTreeShapOnSmoothForest) {
  // TreeSHAP (path-dependent) and KernelSHAP (interventional, with the
  // training data as background) measure slightly different things, but for
  // a forest on independent features they should broadly agree in sign and
  // ranking of the top feature.
  icn::util::Rng rng(13);
  const std::size_t n = 200, m = 4;
  Matrix x(n, m);
  std::vector<int> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t f = 0; f < m; ++f) x(i, f) = rng.uniform(-1.0, 1.0);
    y[i] = x(i, 0) > 0.0 ? 1 : 0;
  }
  RandomForest forest;
  RandomForest::Params fp;
  fp.num_trees = 20;
  forest.fit(x, y, 2, fp);

  const ModelFunction model = [&](std::span<const double> row) {
    return forest.predict_proba(row);
  };
  const std::vector<double> point = {0.8, 0.1, -0.2, 0.5};
  const auto kernel = kernel_shap(model, point, x);

  // Feature 0 dominates class-1 probability and has positive sign.
  EXPECT_GT(kernel.phi(0, 1), 0.1);
  for (std::size_t f = 1; f < m; ++f) {
    EXPECT_GT(kernel.phi(0, 1), std::fabs(kernel.phi(f, 1)) * 2.0);
  }
}

TEST(KernelShapTest, ValidatesInputs) {
  const Matrix bg = random_background(4, 2, 15);
  EXPECT_THROW(kernel_shap(linear_model, std::vector<double>{}, bg),
               icn::util::PreconditionError);
  const Matrix wrong = random_background(4, 5, 15);
  EXPECT_THROW(kernel_shap(linear_model, std::vector<double>{1.0, 2.0}, wrong),
               icn::util::PreconditionError);
}

}  // namespace
}  // namespace icn::ml
