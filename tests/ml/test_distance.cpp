#include "ml/distance.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.h"
#include "util/rng.h"

namespace icn::ml {
namespace {

TEST(DistanceTest, SquaredEuclideanBasics) {
  const std::vector<double> a = {0.0, 0.0};
  const std::vector<double> b = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(squared_euclidean(a, b), 25.0);
  EXPECT_DOUBLE_EQ(euclidean(a, b), 5.0);
  EXPECT_DOUBLE_EQ(euclidean(a, a), 0.0);
}

TEST(DistanceTest, RejectsDimensionMismatch) {
  const std::vector<double> a = {1.0};
  const std::vector<double> b = {1.0, 2.0};
  EXPECT_THROW(squared_euclidean(a, b), icn::util::PreconditionError);
}

TEST(CondensedDistancesTest, MatchesDirectComputation) {
  icn::util::Rng rng(5);
  Matrix x(10, 4);
  for (auto& v : x.data()) v = rng.uniform(-2.0, 2.0);
  const CondensedDistances d(x);
  EXPECT_EQ(d.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    for (std::size_t j = 0; j < 10; ++j) {
      const double expected = euclidean(x.row(i), x.row(j));
      // Stored in double: lookups are exact.
      EXPECT_DOUBLE_EQ(d(i, j), expected);
    }
  }
}

TEST(CondensedDistancesTest, SymmetricAndZeroDiagonal) {
  Matrix x(4, 2, {0, 0, 1, 0, 0, 1, 1, 1});
  const CondensedDistances d(x);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(d(i, i), 0.0);
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(d(i, j), d(j, i));
    }
  }
}

TEST(CondensedDistancesTest, TriangleInequalityHolds) {
  icn::util::Rng rng(9);
  Matrix x(12, 3);
  for (auto& v : x.data()) v = rng.normal();
  const CondensedDistances d(x);
  for (std::size_t i = 0; i < 12; ++i) {
    for (std::size_t j = 0; j < 12; ++j) {
      for (std::size_t k = 0; k < 12; ++k) {
        EXPECT_LE(d(i, j), d(i, k) + d(k, j) + 1e-9);
      }
    }
  }
}

TEST(CondensedDistancesTest, IndexOutOfRangeThrowsInDebug) {
  // The per-call bounds check runs O(N^2) times per silhouette score, so it
  // is a debug-only assert (ICN_DBG_REQUIRE) and compiled out under NDEBUG.
#ifdef NDEBUG
  GTEST_SKIP() << "bounds check compiled out in NDEBUG builds";
#else
  Matrix x(3, 1, {0.0, 1.0, 2.0});
  const CondensedDistances d(x);
  EXPECT_THROW(d(0, 3), icn::util::PreconditionError);
#endif
}

TEST(CondensedDistancesTest, SinglePointHasNoPairs) {
  Matrix x(1, 2, {1.0, 2.0});
  const CondensedDistances d(x);
  EXPECT_EQ(d.size(), 1u);
  EXPECT_DOUBLE_EQ(d(0, 0), 0.0);
}

}  // namespace
}  // namespace icn::ml
