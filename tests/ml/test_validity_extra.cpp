// Tests for the additional cluster-validity machinery: Davies-Bouldin,
// Calinski-Harabasz, and the cophenetic correlation of dendrograms.
#include <gtest/gtest.h>

#include <cmath>

#include "ml/linkage.h"
#include "ml/metrics.h"
#include "util/error.h"
#include "util/rng.h"

namespace icn::ml {
namespace {

Matrix blobs(std::size_t per_blob, double separation, double sigma,
             std::uint64_t seed, std::vector<int>* labels) {
  icn::util::Rng rng(seed);
  Matrix x(per_blob * 3, 2);
  const double centers[3][2] = {{0.0, 0.0}, {separation, 0.0},
                                {0.0, separation}};
  for (std::size_t b = 0; b < 3; ++b) {
    for (std::size_t i = 0; i < per_blob; ++i) {
      const std::size_t r = b * per_blob + i;
      x(r, 0) = centers[b][0] + rng.normal(0.0, sigma);
      x(r, 1) = centers[b][1] + rng.normal(0.0, sigma);
      labels->push_back(static_cast<int>(b));
    }
  }
  return x;
}

TEST(DaviesBouldinTest, HandComputedTwoClusters) {
  // Clusters {0, 2} and {10, 12} on a line: scatter = 1 each,
  // centroid distance = 10 -> DB = (1+1)/10 = 0.2.
  Matrix x(4, 1, {0.0, 2.0, 10.0, 12.0});
  const std::vector<int> labels = {0, 0, 1, 1};
  EXPECT_NEAR(davies_bouldin_index(x, labels), 0.2, 1e-12);
}

TEST(DaviesBouldinTest, LowerForBetterSeparation) {
  std::vector<int> l1, l2;
  const Matrix near = blobs(20, 4.0, 1.0, 3, &l1);
  const Matrix far = blobs(20, 40.0, 1.0, 3, &l2);
  EXPECT_LT(davies_bouldin_index(far, l2),
            davies_bouldin_index(near, l1) / 2.0);
}

TEST(DaviesBouldinTest, CoincidentCentroidsThrow) {
  Matrix x(4, 1, {0.0, 2.0, 0.0, 2.0});
  const std::vector<int> labels = {0, 0, 1, 1};
  EXPECT_THROW((void)davies_bouldin_index(x, labels),
               icn::util::PreconditionError);
}

TEST(CalinskiHarabaszTest, HandComputedTwoClusters) {
  // {0, 2} and {10, 12}: global mean 6; B = 2*(5-6+... )
  // centroids 1 and 11: B = 2*25 + 2*25 = 100; W = 4*1 = 4.
  // CH = (100/1) / (4/2) = 50.
  Matrix x(4, 1, {0.0, 2.0, 10.0, 12.0});
  const std::vector<int> labels = {0, 0, 1, 1};
  EXPECT_NEAR(calinski_harabasz_index(x, labels), 50.0, 1e-9);
}

TEST(CalinskiHarabaszTest, HigherForBetterSeparation) {
  std::vector<int> l1, l2;
  const Matrix near = blobs(20, 4.0, 1.0, 5, &l1);
  const Matrix far = blobs(20, 40.0, 1.0, 5, &l2);
  EXPECT_GT(calinski_harabasz_index(far, l2),
            calinski_harabasz_index(near, l1) * 5.0);
}

TEST(CalinskiHarabaszTest, PeaksAtTrueK) {
  std::vector<int> truth;
  const Matrix x = blobs(25, 15.0, 0.6, 7, &truth);
  const Dendrogram tree = agglomerative_cluster(x, Linkage::kWard);
  double best = 0.0;
  std::size_t best_k = 0;
  for (std::size_t k = 2; k <= 8; ++k) {
    const double ch = calinski_harabasz_index(x, tree.cut(k));
    if (ch > best) {
      best = ch;
      best_k = k;
    }
  }
  EXPECT_EQ(best_k, 3u);
}

TEST(CalinskiHarabaszTest, RequiresKBelowN) {
  Matrix x(3, 1, {0.0, 1.0, 2.0});
  const std::vector<int> labels = {0, 1, 2};
  EXPECT_THROW((void)calinski_harabasz_index(x, labels),
               icn::util::PreconditionError);
}

TEST(CopheneticTest, HandComputedThreeLeaves) {
  // Line points 0, 1, 10 with single linkage: (0,1) merge at 1;
  // the third joins at 9. Cophenetic: d(0,1)=1, d(0,2)=d(1,2)=9.
  Matrix x(3, 1, {0.0, 1.0, 10.0});
  const Dendrogram tree = agglomerative_cluster(x, Linkage::kSingle);
  const auto coph = cophenetic_distances(tree);
  ASSERT_EQ(coph.size(), 3u);
  EXPECT_FLOAT_EQ(coph[0], 1.0f);  // (0,1)
  EXPECT_FLOAT_EQ(coph[1], 9.0f);  // (0,2)
  EXPECT_FLOAT_EQ(coph[2], 9.0f);  // (1,2)
}

TEST(CopheneticTest, UltrametricProperty) {
  // Cophenetic distances satisfy the strong triangle inequality:
  // d(i,k) <= max(d(i,j), d(j,k)).
  std::vector<int> truth;
  const Matrix x = blobs(8, 10.0, 1.0, 9, &truth);
  const Dendrogram tree = agglomerative_cluster(x, Linkage::kAverage);
  const auto coph = cophenetic_distances(tree);
  const std::size_t n = x.rows();
  auto at = [&](std::size_t i, std::size_t j) {
    if (i > j) std::swap(i, j);
    return coph[i * n - i * (i + 1) / 2 + (j - i - 1)];
  };
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t k = 0; k < n; ++k) {
        if (i == j || j == k || i == k) continue;
        EXPECT_LE(at(i, k), std::max(at(i, j), at(j, k)) + 1e-6f);
      }
    }
  }
}

TEST(CopheneticTest, CorrelationHighOnCleanStructure) {
  std::vector<int> truth;
  const Matrix x = blobs(20, 20.0, 0.5, 11, &truth);
  const Dendrogram tree = agglomerative_cluster(x, Linkage::kAverage);
  EXPECT_GT(cophenetic_correlation(tree, x), 0.95);
}

TEST(CopheneticTest, CorrelationLowerOnNoise) {
  icn::util::Rng rng(13);
  Matrix x(50, 3);
  for (auto& v : x.data()) v = rng.normal();
  const Dendrogram tree = agglomerative_cluster(x, Linkage::kWard);
  std::vector<int> truth;
  const Matrix structured = blobs(17, 20.0, 0.5, 15, &truth);
  const Dendrogram clean = agglomerative_cluster(structured,
                                                 Linkage::kWard);
  EXPECT_LT(cophenetic_correlation(tree, x),
            cophenetic_correlation(clean, structured));
}

TEST(CopheneticTest, ConsistentWithCuts) {
  // Property: at any cut into k clusters, two leaves share a cluster iff
  // their cophenetic distance is below the k-cut threshold.
  std::vector<int> truth;
  const Matrix x = blobs(10, 8.0, 1.0, 21, &truth);
  const Dendrogram tree = agglomerative_cluster(x, Linkage::kWard);
  const auto coph = cophenetic_distances(tree);
  const std::size_t n = x.rows();
  auto at = [&](std::size_t i, std::size_t j) {
    if (i > j) std::swap(i, j);
    return static_cast<double>(coph[i * n - i * (i + 1) / 2 + (j - i - 1)]);
  };
  for (const std::size_t k : {2u, 3u, 5u, 9u}) {
    const auto labels = tree.cut(k);
    const double threshold = tree.cut_height(k);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        // Cophenetic distances are stored in float: compare with a
        // float-scale tolerance.
        const double tol = 1e-5 * std::max(1.0, threshold);
        if (labels[i] == labels[j]) {
          EXPECT_LT(at(i, j), threshold + tol)
              << "k=" << k << " pair " << i << "," << j;
        } else {
          EXPECT_GE(at(i, j), threshold - tol)
              << "k=" << k << " pair " << i << "," << j;
        }
      }
    }
  }
}

TEST(CopheneticTest, InputValidation) {
  Matrix one(1, 1, {0.0});
  const Dendrogram tiny = agglomerative_cluster(one, Linkage::kWard);
  EXPECT_THROW(cophenetic_distances(tiny), icn::util::PreconditionError);
  Matrix x(3, 1, {0.0, 1.0, 2.0});
  const Dendrogram tree = agglomerative_cluster(x, Linkage::kWard);
  Matrix wrong(2, 1, {0.0, 1.0});
  EXPECT_THROW((void)cophenetic_correlation(tree, wrong),
               icn::util::PreconditionError);
}

}  // namespace
}  // namespace icn::ml
