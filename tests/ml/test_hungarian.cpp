#include "ml/hungarian.h"

#include <gtest/gtest.h>

#include <limits>
#include <numeric>

#include "util/error.h"
#include "util/rng.h"

namespace icn::ml {
namespace {

double assignment_cost(const Matrix& cost,
                       const std::vector<std::size_t>& assign) {
  double total = 0.0;
  for (std::size_t r = 0; r < assign.size(); ++r) {
    total += cost(r, assign[r]);
  }
  return total;
}

double brute_force_best(const Matrix& cost) {
  std::vector<std::size_t> perm(cost.rows());
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  double best = std::numeric_limits<double>::infinity();
  do {
    best = std::min(best, assignment_cost(cost, perm));
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

TEST(HungarianTest, TrivialDiagonal) {
  Matrix cost(3, 3, 1.0);
  cost(0, 0) = 0.0;
  cost(1, 1) = 0.0;
  cost(2, 2) = 0.0;
  const auto assign = hungarian_min_cost(cost);
  EXPECT_EQ(assign, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(HungarianTest, ClassicExample) {
  Matrix cost(3, 3, {4.0, 1.0, 3.0, 2.0, 0.0, 5.0, 3.0, 2.0, 2.0});
  const auto assign = hungarian_min_cost(cost);
  EXPECT_DOUBLE_EQ(assignment_cost(cost, assign), 5.0);
}

TEST(HungarianTest, MatchesBruteForceOnRandomMatrices) {
  icn::util::Rng rng(77);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 2 + rng.uniform_index(5);  // up to 6x6
    Matrix cost(n, n);
    for (auto& v : cost.data()) v = rng.uniform(0.0, 10.0);
    const auto assign = hungarian_min_cost(cost);
    // Permutation check.
    std::vector<bool> used(n, false);
    for (const std::size_t c : assign) {
      EXPECT_FALSE(used[c]);
      used[c] = true;
    }
    EXPECT_NEAR(assignment_cost(cost, assign), brute_force_best(cost), 1e-9);
  }
}

TEST(HungarianTest, RejectsNonSquareAndNonFinite) {
  Matrix rect(2, 3);
  EXPECT_THROW(hungarian_min_cost(rect), icn::util::PreconditionError);
  Matrix inf(2, 2, 1.0);
  inf(0, 0) = std::numeric_limits<double>::infinity();
  EXPECT_THROW(hungarian_min_cost(inf), icn::util::PreconditionError);
}

TEST(AlignLabelsTest, RecoversPermutation) {
  // from = permuted version of to: 0->2, 1->0, 2->1.
  const std::vector<int> to = {0, 0, 1, 1, 2, 2};
  const std::vector<int> from = {2, 2, 0, 0, 1, 1};
  const auto map = align_labels(from, to, 3);
  EXPECT_EQ(map[2], 0);
  EXPECT_EQ(map[0], 1);
  EXPECT_EQ(map[1], 2);
  const auto mapped = apply_label_map(from, map);
  EXPECT_EQ(mapped, to);
}

TEST(AlignLabelsTest, ToleratesNoise) {
  // Mostly permuted labels with a few disagreements.
  std::vector<int> to, from;
  for (int i = 0; i < 30; ++i) {
    const int c = i % 3;
    to.push_back(c);
    from.push_back((c + 1) % 3);
  }
  from[0] = 0;  // noise
  const auto map = align_labels(from, to, 3);
  EXPECT_EQ(map[1], 0);
  EXPECT_EQ(map[2], 1);
  EXPECT_EQ(map[0], 2);
}

TEST(AlignLabelsTest, ValidatesInput) {
  const std::vector<int> a = {0, 1};
  const std::vector<int> b = {0};
  EXPECT_THROW(align_labels(a, b, 2), icn::util::PreconditionError);
  const std::vector<int> c = {0, 3};
  const std::vector<int> d = {0, 1};
  EXPECT_THROW(align_labels(c, d, 2), icn::util::PreconditionError);
}

TEST(ApplyLabelMapTest, OutOfRangeThrows) {
  const std::vector<int> labels = {0, 2};
  const std::vector<int> map = {1, 0};
  EXPECT_THROW(apply_label_map(labels, map), icn::util::PreconditionError);
}

}  // namespace
}  // namespace icn::ml
