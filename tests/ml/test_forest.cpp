#include "ml/forest.h"

#include <gtest/gtest.h>

#include <cmath>

#include "ml/metrics.h"
#include "util/error.h"
#include "util/rng.h"

namespace icn::ml {
namespace {

/// Three noisy Gaussian blobs in 4D (two informative dims, two noise).
Matrix blob_data(std::size_t per_blob, double sigma, std::uint64_t seed,
                 std::vector<int>* labels) {
  icn::util::Rng rng(seed);
  Matrix x(per_blob * 3, 4);
  const double centers[3][2] = {{0.0, 0.0}, {4.0, 0.0}, {0.0, 4.0}};
  for (std::size_t b = 0; b < 3; ++b) {
    for (std::size_t i = 0; i < per_blob; ++i) {
      const std::size_t r = b * per_blob + i;
      x(r, 0) = centers[b][0] + rng.normal(0.0, sigma);
      x(r, 1) = centers[b][1] + rng.normal(0.0, sigma);
      x(r, 2) = rng.normal();  // noise
      x(r, 3) = rng.normal();  // noise
      labels->push_back(static_cast<int>(b));
    }
  }
  return x;
}

TEST(RandomForestTest, FitsSeparableData) {
  std::vector<int> y;
  const Matrix x = blob_data(60, 0.5, 3, &y);
  RandomForest forest;
  RandomForest::Params params;
  params.num_trees = 30;
  forest.fit(x, y, 3, params);
  EXPECT_TRUE(forest.is_fitted());
  EXPECT_EQ(forest.trees().size(), 30u);
  EXPECT_GT(accuracy(forest.predict_all(x), y), 0.99);
}

TEST(RandomForestTest, OobAccuracyIsReasonable) {
  std::vector<int> y;
  const Matrix x = blob_data(80, 0.5, 5, &y);
  RandomForest forest;
  RandomForest::Params params;
  params.num_trees = 50;
  forest.fit(x, y, 3, params);
  EXPECT_GT(forest.oob_accuracy(), 0.9);
  EXPECT_LE(forest.oob_accuracy(), 1.0);
}

TEST(RandomForestTest, OobNanWithoutBootstrap) {
  std::vector<int> y;
  const Matrix x = blob_data(20, 0.5, 7, &y);
  RandomForest forest;
  RandomForest::Params params;
  params.num_trees = 5;
  params.bootstrap = false;
  forest.fit(x, y, 3, params);
  EXPECT_TRUE(std::isnan(forest.oob_accuracy()));
}

TEST(RandomForestTest, ProbaIsAveragedAndNormalized) {
  std::vector<int> y;
  const Matrix x = blob_data(40, 0.7, 9, &y);
  RandomForest forest;
  RandomForest::Params params;
  params.num_trees = 10;
  forest.fit(x, y, 3, params);
  for (std::size_t i = 0; i < 10; ++i) {
    const auto p = forest.predict_proba(x.row(i));
    ASSERT_EQ(p.size(), 3u);
    double total = 0.0;
    for (const double v : p) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
      total += v;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(RandomForestTest, DeterministicForFixedSeed) {
  std::vector<int> y;
  const Matrix x = blob_data(40, 0.8, 11, &y);
  RandomForest a, b;
  RandomForest::Params params;
  params.num_trees = 12;
  params.seed = 777;
  a.fit(x, y, 3, params);
  b.fit(x, y, 3, params);
  EXPECT_EQ(a.predict_all(x), b.predict_all(x));
  EXPECT_DOUBLE_EQ(a.oob_accuracy(), b.oob_accuracy());
}

TEST(RandomForestTest, SeedChangesEnsemble) {
  std::vector<int> y;
  const Matrix x = blob_data(40, 1.5, 13, &y);
  RandomForest a, b;
  RandomForest::Params params;
  params.num_trees = 8;
  params.seed = 1;
  a.fit(x, y, 3, params);
  params.seed = 2;
  b.fit(x, y, 3, params);
  // Noisy data: at least one prediction probability should differ.
  bool differs = false;
  for (std::size_t i = 0; i < x.rows() && !differs; ++i) {
    differs = a.predict_proba(x.row(i)) != b.predict_proba(x.row(i));
  }
  EXPECT_TRUE(differs);
}

TEST(RandomForestTest, FeatureImportanceFindsInformativeDims) {
  std::vector<int> y;
  const Matrix x = blob_data(100, 0.5, 15, &y);
  RandomForest forest;
  RandomForest::Params params;
  params.num_trees = 40;
  forest.fit(x, y, 3, params);
  const auto imp = forest.feature_importance();
  ASSERT_EQ(imp.size(), 4u);
  double total = 0.0;
  for (const double v : imp) total += v;
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Informative features 0 and 1 dominate the noise features 2 and 3.
  EXPECT_GT(imp[0] + imp[1], 5.0 * (imp[2] + imp[3]));
}

TEST(RandomForestTest, MoreTreesImproveNoisyAccuracy) {
  std::vector<int> y;
  const Matrix x = blob_data(80, 1.8, 17, &y);
  RandomForest small, large;
  RandomForest::Params params;
  params.num_trees = 1;
  params.seed = 5;
  small.fit(x, y, 3, params);
  params.num_trees = 60;
  large.fit(x, y, 3, params);
  EXPECT_GE(large.oob_accuracy(), small.oob_accuracy() - 0.02);
}

TEST(RandomForestTest, InputValidation) {
  RandomForest forest;
  RandomForest::Params params;
  Matrix x(2, 1, {0.0, 1.0});
  params.num_trees = 0;
  EXPECT_THROW(forest.fit(x, std::vector<int>{0, 1}, 2, params),
               icn::util::PreconditionError);
  params.num_trees = 1;
  EXPECT_THROW(forest.fit(x, std::vector<int>{0}, 2, params),
               icn::util::PreconditionError);
  EXPECT_THROW(forest.predict(std::vector<double>{1.0}),
               icn::util::PreconditionError);
  EXPECT_THROW(forest.feature_importance(), icn::util::PreconditionError);
}

TEST(RandomForestTest, ArenaAndHeapScratchGrowIdenticalForests) {
  Matrix x(60, 3);
  std::vector<int> y;
  icn::util::Rng rng(5);
  for (std::size_t i = 0; i < 60; ++i) {
    for (std::size_t j = 0; j < 3; ++j) x(i, j) = rng.uniform(0.0, 1.0);
    y.push_back(x(i, 0) + x(i, 1) > 1.0 ? 1 : 0);
  }
  RandomForest::Params params;
  params.num_trees = 8;
  params.seed = 11;
  params.scratch = DecisionTree::Scratch::kArena;
  RandomForest arena_forest;
  arena_forest.fit(x, y, 2, params);
  params.scratch = DecisionTree::Scratch::kHeap;
  RandomForest heap_forest;
  heap_forest.fit(x, y, 2, params);

  ASSERT_EQ(arena_forest.trees().size(), heap_forest.trees().size());
  for (std::size_t t = 0; t < arena_forest.trees().size(); ++t) {
    const auto& a = arena_forest.trees()[t].nodes();
    const auto& h = heap_forest.trees()[t].nodes();
    ASSERT_EQ(a.size(), h.size()) << "tree " << t;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].feature, h[i].feature);
      EXPECT_EQ(a[i].threshold, h[i].threshold);
      EXPECT_EQ(a[i].value, h[i].value);
    }
  }
  EXPECT_EQ(arena_forest.oob_accuracy(), heap_forest.oob_accuracy());
  EXPECT_EQ(arena_forest.feature_importance(),
            heap_forest.feature_importance());
}

}  // namespace
}  // namespace icn::ml
