// Bit-exactness parity of the runtime-dispatched SIMD lanes: every lane the
// CPU can execute must produce byte-identical results to the scalar kernel —
// over odd lengths, unaligned pointers, and NaN/Inf inputs — plus the
// ICN_SIMD env parsing contract.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "ml/distance.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/simd.h"

namespace icn::ml {
namespace {

using icn::util::EnvConfigError;
using icn::util::SimdLevel;

std::uint64_t bits(double x) { return std::bit_cast<std::uint64_t>(x); }

/// The per-level kernels runnable on this CPU, scalar first.
std::vector<SimdLevel> runnable_levels() {
  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
  const SimdLevel max = icn::util::max_supported_simd_level();
  if (max >= SimdLevel::kSse2) levels.push_back(SimdLevel::kSse2);
  if (max >= SimdLevel::kAvx2) levels.push_back(SimdLevel::kAvx2);
  if (max >= SimdLevel::kAvx512) levels.push_back(SimdLevel::kAvx512);
  return levels;
}

double run_squared_euclidean(SimdLevel level, const double* a, const double* b,
                             std::size_t n) {
  switch (level) {
    case SimdLevel::kScalar:
      return detail::squared_euclidean_scalar(a, b, n);
    case SimdLevel::kSse2:
      return detail::squared_euclidean_sse2(a, b, n);
    case SimdLevel::kAvx2:
      return detail::squared_euclidean_avx2(a, b, n);
    case SimdLevel::kAvx512:
      return detail::squared_euclidean_avx512(a, b, n);
  }
  return 0.0;
}

double run_vector_sum(SimdLevel level, const double* xs, std::size_t n) {
  switch (level) {
    case SimdLevel::kScalar:
      return detail::vector_sum_scalar(xs, n);
    case SimdLevel::kSse2:
      return detail::vector_sum_sse2(xs, n);
    case SimdLevel::kAvx2:
      return detail::vector_sum_avx2(xs, n);
    case SimdLevel::kAvx512:
      return detail::vector_sum_avx512(xs, n);
  }
  return 0.0;
}

TEST(SimdDispatchTest, AllLanesBitExactOverEveryShortLength) {
  // Every length 0..67 hits all tail paths of the 2/4/8-wide loops; values
  // span many orders of magnitude so a reordered accumulation cannot hide in
  // rounding slack.
  icn::util::Rng rng(4242);
  const auto levels = runnable_levels();
  for (std::size_t n = 0; n <= 67; ++n) {
    std::vector<double> a(n), b(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double scale = std::pow(10.0, rng.uniform(-8.0, 8.0));
      a[i] = rng.normal() * scale;
      b[i] = rng.normal() * scale;
    }
    const double ref_d = detail::squared_euclidean_scalar(a.data(), b.data(), n);
    const double ref_s = detail::vector_sum_scalar(a.data(), n);
    for (const SimdLevel level : levels) {
      EXPECT_EQ(bits(ref_d), bits(run_squared_euclidean(level, a.data(),
                                                        b.data(), n)))
          << "squared_euclidean level " << icn::util::simd_level_name(level)
          << " n " << n;
      EXPECT_EQ(bits(ref_s), bits(run_vector_sum(level, a.data(), n)))
          << "vector_sum level " << icn::util::simd_level_name(level) << " n "
          << n;
    }
  }
}

TEST(SimdDispatchTest, UnalignedPointersBitExact) {
  // Start the operands at every misalignment 0..7 doubles into a big buffer:
  // the kernels use unaligned loads, so no offset may change bits (or crash).
  icn::util::Rng rng(977);
  constexpr std::size_t kPad = 8;
  constexpr std::size_t kLen = 129;
  std::vector<double> buf_a(kPad + kLen), buf_b(kPad + kLen);
  for (auto& x : buf_a) x = rng.normal() * 1e3;
  for (auto& x : buf_b) x = rng.normal() * 1e-3;
  const auto levels = runnable_levels();
  for (std::size_t off_a = 0; off_a < kPad; ++off_a) {
    for (std::size_t off_b : {std::size_t{0}, std::size_t{3}, kPad - 1}) {
      const double* a = buf_a.data() + off_a;
      const double* b = buf_b.data() + off_b;
      const double ref = detail::squared_euclidean_scalar(a, b, kLen);
      for (const SimdLevel level : levels) {
        EXPECT_EQ(bits(ref), bits(run_squared_euclidean(level, a, b, kLen)))
            << "offsets " << off_a << "/" << off_b << " level "
            << icn::util::simd_level_name(level);
      }
    }
  }
}

TEST(SimdDispatchTest, NanAndInfPropagateIdentically) {
  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const auto levels = runnable_levels();
  // NaN/Inf in every position class (head lanes, 4-wide body, tails).
  const std::vector<std::vector<double>> cases = {
      {kNan},
      {1.0, kInf},
      {kInf, -kInf, 3.0},
      {1.0, 2.0, 3.0, kNan, 5.0},
      {kInf, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0},
      {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, kNan, 12.0, 13.0},
      {-kInf, kInf, kNan, 0.0, -0.0, 1e308, -1e308, 4.0, kNan},
  };
  for (const auto& a : cases) {
    std::vector<double> b(a.size(), 1.5);
    const double ref_d =
        detail::squared_euclidean_scalar(a.data(), b.data(), a.size());
    const double ref_s = detail::vector_sum_scalar(a.data(), a.size());
    for (const SimdLevel level : levels) {
      EXPECT_EQ(bits(ref_d), bits(run_squared_euclidean(level, a.data(),
                                                        b.data(), a.size())))
          << "level " << icn::util::simd_level_name(level);
      EXPECT_EQ(bits(ref_s), bits(run_vector_sum(level, a.data(), a.size())))
          << "level " << icn::util::simd_level_name(level);
    }
  }
}

TEST(SimdDispatchTest, PublicEntryPointsMatchScalarKernelBitForBit) {
  // Whatever lane this process dispatched to, the public functions must
  // agree with the scalar kernel — the end-to-end form of the parity
  // guarantee (ICN_SIMD=scalar is byte-identical to the widest lane).
  icn::util::Rng rng(31337);
  for (const std::size_t n : {1u, 3u, 7u, 16u, 33u, 128u, 1001u}) {
    std::vector<double> a(n), b(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = rng.normal() * 100.0;
      b[i] = rng.normal() * 0.01;
    }
    EXPECT_EQ(bits(squared_euclidean(a, b)),
              bits(detail::squared_euclidean_scalar(a.data(), b.data(), n)));
    EXPECT_EQ(bits(vector_sum(a)),
              bits(detail::vector_sum_scalar(a.data(), n)));
  }
}

TEST(SimdLevelTest, ParsesCanonicalNames) {
  EXPECT_EQ(icn::util::parse_simd_level(nullptr), std::nullopt);
  EXPECT_EQ(icn::util::parse_simd_level(""), std::nullopt);
  EXPECT_EQ(icn::util::parse_simd_level("  "), std::nullopt);
  EXPECT_EQ(icn::util::parse_simd_level("scalar"), SimdLevel::kScalar);
  EXPECT_EQ(icn::util::parse_simd_level("SSE2"), SimdLevel::kSse2);
  EXPECT_EQ(icn::util::parse_simd_level(" avx2 "), SimdLevel::kAvx2);
  EXPECT_EQ(icn::util::parse_simd_level("AVX512"), SimdLevel::kAvx512);
  EXPECT_EQ(icn::util::parse_simd_level("avx2fma"), SimdLevel::kAvx2Fma);
  EXPECT_EQ(icn::util::parse_simd_level("AVX2FMA"), SimdLevel::kAvx2Fma);
}

TEST(SimdLevelTest, GarbageIcnSimdThrowsTypedError) {
  for (const char* bad : {"avx", "512", "sse4.2", "fast", "scalar2", "-1"}) {
    EXPECT_THROW((void)icn::util::parse_simd_level(bad), EnvConfigError)
        << bad;
  }
  try {
    (void)icn::util::parse_simd_level("turbo");
    FAIL() << "expected EnvConfigError";
  } catch (const EnvConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("ICN_SIMD"), std::string::npos);
  }
}

TEST(SimdLevelTest, LevelNamesRoundTrip) {
  for (const SimdLevel level :
       {SimdLevel::kScalar, SimdLevel::kSse2, SimdLevel::kAvx2,
        SimdLevel::kAvx512, SimdLevel::kAvx2Fma}) {
    EXPECT_EQ(icn::util::parse_simd_level(icn::util::simd_level_name(level)),
              level);
  }
}

TEST(SimdLevelTest, DispatchedLevelIsRunnable) {
  // kAvx2Fma sits outside the scalar..avx512 order, so it has its own
  // runnability condition; every other level obeys the total order.
  if (icn::util::simd_level() == SimdLevel::kAvx2Fma) {
    EXPECT_GE(icn::util::max_supported_simd_level(), SimdLevel::kAvx2);
    EXPECT_TRUE(icn::util::cpu_supports_fma());
  } else {
    EXPECT_LE(icn::util::simd_level(), icn::util::max_supported_simd_level());
  }
}

TEST(SimdLevelTest, AutoDetectNeverPicksTheFmaLane) {
  // The FMA lane changes bits, so it must be opt-in: auto-detection (unset
  // ICN_SIMD) resolves to the widest *non-FMA* level.
  EXPECT_NE(icn::util::max_supported_simd_level(), SimdLevel::kAvx2Fma);
  EXPECT_NE(icn::util::resolve_simd_level(std::nullopt, SimdLevel::kAvx512,
                                          /*has_fma=*/true),
            SimdLevel::kAvx2Fma);
}

TEST(SimdLevelTest, ResolveAcceptsFmaLaneOnCapableHardware) {
  for (const SimdLevel supported : {SimdLevel::kAvx2, SimdLevel::kAvx512}) {
    EXPECT_EQ(icn::util::resolve_simd_level(SimdLevel::kAvx2Fma, supported,
                                            /*has_fma=*/true),
              SimdLevel::kAvx2Fma);
  }
}

TEST(SimdLevelTest, ResolveRejectsFmaLaneWithoutFmaOrAvx2) {
  // Missing the FMA cpuid bit: typed error naming the variable and value.
  try {
    (void)icn::util::resolve_simd_level(SimdLevel::kAvx2Fma,
                                        SimdLevel::kAvx512,
                                        /*has_fma=*/false);
    FAIL() << "expected EnvConfigError";
  } catch (const EnvConfigError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("ICN_SIMD"), std::string::npos) << what;
    EXPECT_NE(what.find("avx2fma"), std::string::npos) << what;
  }
  // AVX2-class vectors missing entirely: rejected even with the FMA bit.
  EXPECT_THROW((void)icn::util::resolve_simd_level(SimdLevel::kAvx2Fma,
                                                   SimdLevel::kSse2,
                                                   /*has_fma=*/true),
               EnvConfigError);
}

TEST(SimdLevelTest, ResolveKeepsTheNonFmaOrderContract) {
  EXPECT_EQ(icn::util::resolve_simd_level(std::nullopt, SimdLevel::kSse2,
                                          /*has_fma=*/false),
            SimdLevel::kSse2);
  EXPECT_EQ(icn::util::resolve_simd_level(SimdLevel::kScalar,
                                          SimdLevel::kAvx512,
                                          /*has_fma=*/true),
            SimdLevel::kScalar);
  EXPECT_THROW((void)icn::util::resolve_simd_level(SimdLevel::kAvx512,
                                                   SimdLevel::kAvx2,
                                                   /*has_fma=*/true),
               EnvConfigError);
}

}  // namespace
}  // namespace icn::ml
