#include "ml/treeshap.h"

#include <gtest/gtest.h>

#include <cmath>

#include "ml/exactshap.h"
#include "util/error.h"
#include "util/rng.h"

namespace icn::ml {
namespace {

/// Noisy multi-class data in `m` dims where the label depends on the first
/// two features.
Matrix make_data(std::size_t n, std::size_t m, std::uint64_t seed,
                 std::vector<int>* labels) {
  icn::util::Rng rng(seed);
  Matrix x(n, m);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t f = 0; f < m; ++f) x(i, f) = rng.uniform(-1.0, 1.0);
    const int label = (x(i, 0) > 0.0 ? 1 : 0) + (x(i, 1) > 0.3 ? 2 : 0);
    labels->push_back(label % 3);
  }
  return x;
}

DecisionTree fit_tree(const Matrix& x, const std::vector<int>& y, int k,
                      std::size_t max_depth = 6) {
  DecisionTree tree;
  DecisionTree::Params params;
  params.max_depth = max_depth;
  icn::util::Rng rng(5);
  tree.fit(x, y, k, params, rng);
  return tree;
}

TEST(TreeShapTest, LocalAccuracySingleTree) {
  std::vector<int> y;
  const Matrix x = make_data(200, 5, 3, &y);
  const auto tree = fit_tree(x, y, 3);
  const auto base = tree_base_values(tree);
  for (std::size_t i = 0; i < 25; ++i) {
    const Matrix phi = tree_shap(tree, x.row(i));
    const auto pred = tree.predict_proba(x.row(i));
    for (std::size_t c = 0; c < 3; ++c) {
      double total = base[c];
      for (std::size_t f = 0; f < 5; ++f) total += phi(f, c);
      EXPECT_NEAR(total, pred[c], 1e-9)
          << "sample " << i << " class " << c;
    }
  }
}

TEST(TreeShapTest, MatchesExactShapleyOnTreeValueFunction) {
  // The gold test: TreeSHAP must equal brute-force Shapley values of the
  // tree's conditional-expectation value function.
  std::vector<int> y;
  const std::size_t m = 6;
  const Matrix x = make_data(150, m, 7, &y);
  const auto tree = fit_tree(x, y, 3, 5);
  for (std::size_t i = 0; i < 10; ++i) {
    const auto row = x.row(i);
    const ValueFunction v = [&](const std::vector<bool>& present) {
      return tree_conditional_expectation(tree, row, present);
    };
    const Matrix exact = exact_shapley(v, m, 3);
    const Matrix fast = tree_shap(tree, row);
    for (std::size_t f = 0; f < m; ++f) {
      for (std::size_t c = 0; c < 3; ++c) {
        EXPECT_NEAR(fast(f, c), exact(f, c), 1e-9)
            << "sample " << i << " feature " << f << " class " << c;
      }
    }
  }
}

TEST(TreeShapTest, RepeatedSplitFeatureHandled) {
  // Deep tree on 2 features forces the same feature to appear repeatedly on
  // a path — the unwind branch of Algorithm 2.
  std::vector<int> y;
  const Matrix x = make_data(300, 2, 11, &y);
  const auto tree = fit_tree(x, y, 3, 10);
  for (std::size_t i = 0; i < 10; ++i) {
    const auto row = x.row(i);
    const ValueFunction v = [&](const std::vector<bool>& present) {
      return tree_conditional_expectation(tree, row, present);
    };
    const Matrix exact = exact_shapley(v, 2, 3);
    const Matrix fast = tree_shap(tree, row);
    for (std::size_t f = 0; f < 2; ++f) {
      for (std::size_t c = 0; c < 3; ++c) {
        EXPECT_NEAR(fast(f, c), exact(f, c), 1e-9);
      }
    }
  }
}

TEST(TreeShapTest, UnusedFeatureGetsZero) {
  // Label depends only on feature 0; feature 1 never splits.
  Matrix x(100, 2);
  std::vector<int> y;
  icn::util::Rng rng(13);
  for (std::size_t i = 0; i < 100; ++i) {
    x(i, 0) = rng.uniform(-1.0, 1.0);
    x(i, 1) = 0.0;  // constant, unusable
    y.push_back(x(i, 0) > 0.0 ? 1 : 0);
  }
  const auto tree = fit_tree(x, y, 2);
  const Matrix phi = tree_shap(tree, x.row(0));
  EXPECT_DOUBLE_EQ(phi(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(phi(1, 1), 0.0);
  EXPECT_NE(phi(0, 1), 0.0);
}

TEST(TreeShapTest, SymmetryAxiom) {
  // Two interchangeable features (XOR-free duplicated axis): equal
  // contributions for a point treated symmetrically.
  Matrix x(4, 2, {0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0});
  const std::vector<int> y = {0, 0, 0, 1};  // AND of the two features
  DecisionTree tree;
  icn::util::Rng rng(3);
  tree.fit(x, y, 2, {}, rng);
  const std::vector<double> point = {1.0, 1.0};
  const Matrix phi = tree_shap(tree, point);
  EXPECT_NEAR(phi(0, 1), phi(1, 1), 1e-9);
}

TEST(TreeShapTest, BaseValuesAreCoverWeightedPriors) {
  std::vector<int> y;
  const Matrix x = make_data(100, 3, 17, &y);
  const auto tree = fit_tree(x, y, 3);
  const auto base = tree_base_values(tree);
  // Root value == class frequencies of the training set.
  std::vector<double> freq(3, 0.0);
  for (const int label : y) freq[static_cast<std::size_t>(label)] += 1.0;
  for (auto& f : freq) f /= static_cast<double>(y.size());
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_NEAR(base[c], freq[c], 1e-9);
  }
}

TEST(ForestShapTest, LocalAccuracyForForest) {
  std::vector<int> y;
  const Matrix x = make_data(200, 5, 19, &y);
  RandomForest forest;
  RandomForest::Params params;
  params.num_trees = 15;
  forest.fit(x, y, 3, params);
  const auto base = forest_base_values(forest);
  for (std::size_t i = 0; i < 10; ++i) {
    const Matrix phi = forest_shap(forest, x.row(i));
    const auto pred = forest.predict_proba(x.row(i));
    for (std::size_t c = 0; c < 3; ++c) {
      double total = base[c];
      for (std::size_t f = 0; f < 5; ++f) total += phi(f, c);
      EXPECT_NEAR(total, pred[c], 1e-9);
    }
  }
}

TEST(ForestShapTest, ClassContributionsSumToZeroAcrossClasses) {
  // Probability outputs sum to 1 for every input and for the base values,
  // so each feature's SHAP contributions must sum to ~0 across classes:
  // features only reallocate probability mass between classes.
  std::vector<int> y;
  const Matrix x = make_data(150, 5, 41, &y);
  RandomForest forest;
  RandomForest::Params params;
  params.num_trees = 12;
  forest.fit(x, y, 3, params);
  for (std::size_t i = 0; i < 10; ++i) {
    const Matrix phi = forest_shap(forest, x.row(i));
    for (std::size_t f = 0; f < 5; ++f) {
      double across = 0.0;
      for (std::size_t c = 0; c < 3; ++c) across += phi(f, c);
      EXPECT_NEAR(across, 0.0, 1e-9) << "feature " << f;
    }
  }
}

TEST(ForestShapTest, IsMeanOfTreeShap) {
  std::vector<int> y;
  const Matrix x = make_data(120, 4, 23, &y);
  RandomForest forest;
  RandomForest::Params params;
  params.num_trees = 7;
  forest.fit(x, y, 3, params);
  const auto row = x.row(3);
  const Matrix total = forest_shap(forest, row);
  Matrix acc(4, 3);
  for (const auto& tree : forest.trees()) {
    const Matrix phi = tree_shap(tree, row);
    for (std::size_t i = 0; i < acc.data().size(); ++i) {
      acc.data()[i] += phi.data()[i] / 7.0;
    }
  }
  for (std::size_t i = 0; i < acc.data().size(); ++i) {
    EXPECT_NEAR(total.data()[i], acc.data()[i], 1e-12);
  }
}

TEST(ConditionalExpectationTest, FullMaskIsPrediction) {
  std::vector<int> y;
  const Matrix x = make_data(150, 4, 29, &y);
  const auto tree = fit_tree(x, y, 3);
  const std::vector<bool> all(4, true);
  for (std::size_t i = 0; i < 10; ++i) {
    const auto v = tree_conditional_expectation(tree, x.row(i), all);
    const auto pred = tree.predict_proba(x.row(i));
    for (std::size_t c = 0; c < 3; ++c) EXPECT_NEAR(v[c], pred[c], 1e-12);
  }
}

TEST(ConditionalExpectationTest, EmptyMaskIsBaseValue) {
  std::vector<int> y;
  const Matrix x = make_data(150, 4, 31, &y);
  const auto tree = fit_tree(x, y, 3);
  const std::vector<bool> none(4, false);
  const auto v = tree_conditional_expectation(tree, x.row(0), none);
  const auto base = tree_base_values(tree);
  for (std::size_t c = 0; c < 3; ++c) EXPECT_NEAR(v[c], base[c], 1e-12);
}

TEST(ConditionalExpectationTest, MaskSizeValidated) {
  std::vector<int> y;
  const Matrix x = make_data(50, 3, 37, &y);
  const auto tree = fit_tree(x, y, 3);
  EXPECT_THROW(
      tree_conditional_expectation(tree, x.row(0), std::vector<bool>(2)),
      icn::util::PreconditionError);
}

TEST(ExactShapleyTest, LinearGameHasAdditiveValues) {
  // v(S) = sum of weights of members: phi_i == w_i exactly.
  const std::vector<double> w = {1.0, 2.0, -0.5, 3.0};
  const ValueFunction v = [&](const std::vector<bool>& present) {
    double total = 0.0;
    for (std::size_t i = 0; i < w.size(); ++i) {
      if (present[i]) total += w[i];
    }
    return std::vector<double>{total};
  };
  const Matrix phi = exact_shapley(v, 4, 1);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(phi(i, 0), w[i], 1e-12);
  }
}

TEST(ExactShapleyTest, EfficiencyAxiom) {
  // For any game: sum phi = v(full) - v(empty).
  const ValueFunction v = [](const std::vector<bool>& present) {
    double total = 1.0;
    for (std::size_t i = 0; i < present.size(); ++i) {
      if (present[i]) total *= 1.0 + static_cast<double>(i);
    }
    return std::vector<double>{total};
  };
  const std::size_t m = 5;
  const Matrix phi = exact_shapley(v, m, 1);
  double total = 0.0;
  for (std::size_t i = 0; i < m; ++i) total += phi(i, 0);
  const double v_full = 1.0 * 1 * 2 * 3 * 4 * 5;
  EXPECT_NEAR(total, v_full - 1.0, 1e-9);
}

TEST(ExactShapleyTest, ValidatesArguments) {
  const ValueFunction v = [](const std::vector<bool>&) {
    return std::vector<double>{0.0};
  };
  EXPECT_THROW(exact_shapley(v, 0, 1), icn::util::PreconditionError);
  EXPECT_THROW(exact_shapley(v, 21, 1), icn::util::PreconditionError);
  EXPECT_THROW(exact_shapley(v, 2, 0), icn::util::PreconditionError);
}

}  // namespace
}  // namespace icn::ml
