#include "ml/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/error.h"
#include "util/rng.h"

namespace icn::ml {
namespace {

Matrix two_blobs(std::size_t per_blob, double separation, double sigma,
                 std::uint64_t seed, std::vector<int>* labels) {
  icn::util::Rng rng(seed);
  Matrix x(per_blob * 2, 2);
  for (std::size_t b = 0; b < 2; ++b) {
    for (std::size_t i = 0; i < per_blob; ++i) {
      const std::size_t r = b * per_blob + i;
      x(r, 0) = static_cast<double>(b) * separation + rng.normal(0.0, sigma);
      x(r, 1) = rng.normal(0.0, sigma);
      labels->push_back(static_cast<int>(b));
    }
  }
  return x;
}

TEST(SilhouetteTest, HandComputedExample) {
  // Four points on a line: {0, 1} and {10, 11}, perfect 2-clustering.
  Matrix x(4, 1, {0.0, 1.0, 10.0, 11.0});
  const std::vector<int> labels = {0, 0, 1, 1};
  // Outer points (0 and 11): a = 1, b = 10.5 -> s = 9.5/10.5.
  // Inner points (1 and 10): a = 1, b = 9.5  -> s = 8.5/9.5.
  const double expected = 0.5 * (9.5 / 10.5 + 8.5 / 9.5);
  EXPECT_NEAR(silhouette_score(x, labels), expected, 1e-9);
}

TEST(SilhouetteTest, RangeIsBounded) {
  std::vector<int> labels;
  const Matrix x = two_blobs(20, 2.0, 1.0, 3, &labels);
  const double s = silhouette_score(x, labels);
  EXPECT_GE(s, -1.0);
  EXPECT_LE(s, 1.0);
}

TEST(SilhouetteTest, SeparationIncreasesScore) {
  std::vector<int> l1, l2;
  const Matrix near = two_blobs(25, 2.0, 1.0, 5, &l1);
  const Matrix far = two_blobs(25, 20.0, 1.0, 5, &l2);
  EXPECT_GT(silhouette_score(far, l2), silhouette_score(near, l1));
}

TEST(SilhouetteTest, BadLabelingScoresWorse) {
  std::vector<int> good;
  const Matrix x = two_blobs(20, 10.0, 0.5, 7, &good);
  std::vector<int> bad(good.size());
  for (std::size_t i = 0; i < bad.size(); ++i) {
    bad[i] = static_cast<int>(i % 2);  // interleaved nonsense
  }
  EXPECT_GT(silhouette_score(x, good), silhouette_score(x, bad) + 0.5);
}

TEST(SilhouetteTest, SingletonClusterContributesZero) {
  // Two points in cluster 0, one singleton cluster 1.
  Matrix x(3, 1, {0.0, 1.0, 10.0});
  const std::vector<int> labels = {0, 0, 1};
  // Points 0,1: a=1, b=(10 resp. 9) -> s = (b-a)/b. Singleton: s=0.
  const double expected = ((10.0 - 1.0) / 10.0 + (9.0 - 1.0) / 9.0) / 3.0;
  EXPECT_NEAR(silhouette_score(x, labels), expected, 1e-9);
}

TEST(SilhouetteTest, RejectsDegenerateInput) {
  Matrix x(3, 1, {0.0, 1.0, 2.0});
  EXPECT_THROW(silhouette_score(x, std::vector<int>{0, 0, 0}),
               icn::util::PreconditionError);  // single cluster
  EXPECT_THROW(silhouette_score(x, std::vector<int>{0, 2, 2}),
               icn::util::PreconditionError);  // empty cluster 1
  EXPECT_THROW(silhouette_score(x, std::vector<int>{0, -1, 1}),
               icn::util::PreconditionError);
}

TEST(DunnTest, HandComputedExample) {
  // Clusters {0,1} and {10,12}: min inter = 9, max diameter = 2.
  Matrix x(4, 1, {0.0, 1.0, 10.0, 12.0});
  const std::vector<int> labels = {0, 0, 1, 1};
  EXPECT_NEAR(dunn_index(x, labels), 4.5, 1e-9);
}

TEST(DunnTest, AllSingletonsIsInfinite) {
  Matrix x(3, 1, {0.0, 5.0, 9.0});
  const std::vector<int> labels = {0, 1, 2};
  EXPECT_TRUE(std::isinf(dunn_index(x, labels)));
}

TEST(DunnTest, SeparationIncreasesIndex) {
  std::vector<int> l1, l2;
  const Matrix near = two_blobs(15, 4.0, 0.5, 11, &l1);
  const Matrix far = two_blobs(15, 40.0, 0.5, 11, &l2);
  EXPECT_GT(dunn_index(far, l2), dunn_index(near, l1));
}

TEST(MetricsTest, PrecomputedDistancesMatchMatrixOverloads) {
  std::vector<int> labels;
  const Matrix x = two_blobs(10, 6.0, 1.0, 13, &labels);
  const CondensedDistances d(x);
  EXPECT_NEAR(silhouette_score(d, labels), silhouette_score(x, labels), 1e-9);
  EXPECT_NEAR(dunn_index(d, labels), dunn_index(x, labels), 1e-9);
}

TEST(MetricsTest, LabelSizeMismatchThrows) {
  Matrix x(3, 1, {0.0, 1.0, 2.0});
  const CondensedDistances d(x);
  EXPECT_THROW(silhouette_score(d, std::vector<int>{0, 1}),
               icn::util::PreconditionError);
  EXPECT_THROW(dunn_index(d, std::vector<int>{0, 1}),
               icn::util::PreconditionError);
}

TEST(AccuracyTest, Basics) {
  const std::vector<int> truth = {0, 1, 2, 1};
  const std::vector<int> pred = {0, 1, 1, 1};
  EXPECT_DOUBLE_EQ(accuracy(pred, truth), 0.75);
  EXPECT_THROW(accuracy(std::vector<int>{}, std::vector<int>{}),
               icn::util::PreconditionError);
}

TEST(ConfusionMatrixTest, CountsPerCell) {
  const std::vector<int> truth = {0, 0, 1, 1, 1};
  const std::vector<int> pred = {0, 1, 1, 1, 0};
  const auto m = confusion_matrix(truth, pred, 2);
  EXPECT_EQ(m[0][0], 1u);
  EXPECT_EQ(m[0][1], 1u);
  EXPECT_EQ(m[1][0], 1u);
  EXPECT_EQ(m[1][1], 2u);
}

TEST(ConfusionMatrixTest, RejectsOutOfRangeLabels) {
  const std::vector<int> truth = {0, 2};
  const std::vector<int> pred = {0, 1};
  EXPECT_THROW(confusion_matrix(truth, pred, 2),
               icn::util::PreconditionError);
}

}  // namespace
}  // namespace icn::ml
