// Determinism across thread counts: every parallelized kernel must produce
// bit-identical output whether the pool has 1 thread (pure serial) or 8
// (oversubscribed on small machines). Chunk boundaries depend only on the
// grain and partials fold in a fixed order, so these are exact-equality
// checks, not tolerances.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

#include "ml/distance.h"
#include "ml/forest.h"
#include "ml/kernelshap.h"
#include "ml/linkage.h"
#include "ml/matrix.h"
#include "ml/metrics.h"
#include "ml/treeshap.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace icn::ml {
namespace {

using icn::util::ThreadPool;

/// Mildly noisy Gaussian blobs: enough structure for clustering/forests,
/// enough noise that any scheduling-dependent arithmetic would show up.
Matrix blob_data(std::size_t per_blob, std::size_t dims, double sigma,
                 std::uint64_t seed, std::vector<int>* labels = nullptr) {
  icn::util::Rng rng(seed);
  Matrix x(per_blob * 3, dims);
  const double centers[3][2] = {{0.0, 0.0}, {6.0, 0.0}, {0.0, 6.0}};
  for (std::size_t b = 0; b < 3; ++b) {
    for (std::size_t i = 0; i < per_blob; ++i) {
      const std::size_t r = b * per_blob + i;
      x(r, 0) = centers[b][0] + rng.normal(0.0, sigma);
      x(r, 1) = centers[b][1] + rng.normal(0.0, sigma);
      for (std::size_t f = 2; f < dims; ++f) x(r, f) = rng.normal();
      if (labels) labels->push_back(static_cast<int>(b));
    }
  }
  return x;
}

template <typename Fn>
auto with_threads(std::size_t num_threads, Fn&& fn) {
  ThreadPool::ScopedOverride pool(num_threads);
  return fn();
}

/// Reference implementation of squared_euclidean's documented canonical
/// accumulation order (lane k sums elements i == k (mod 4), lanes combine
/// as (s0+s2)+(s1+s3), sequential tail). The shipped kernel — SIMD or
/// scalar, whichever this build selected — must match it bit for bit.
double squared_euclidean_reference(std::span<const double> a,
                                   std::span<const double> b) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= a.size(); i += 4) {
    const double d0 = a[i] - b[i];
    const double d1 = a[i + 1] - b[i + 1];
    const double d2 = a[i + 2] - b[i + 2];
    const double d3 = a[i + 3] - b[i + 3];
    s0 += d0 * d0;
    s1 += d1 * d1;
    s2 += d2 * d2;
    s3 += d3 * d3;
  }
  double acc = (s0 + s2) + (s1 + s3);
  for (; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

TEST(SimdDeterminismTest, SquaredEuclideanMatchesCanonicalOrderBitForBit) {
  icn::util::Rng rng(7701);
  // Every tail length 0..3 and short vectors that never enter the 4-wide
  // loop, with values spanning many orders of magnitude so an accumulation
  // reorder cannot hide in rounding slack.
  for (const std::size_t dims : {1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 15u, 16u,
                                 17u, 64u, 73u, 101u}) {
    for (int rep = 0; rep < 25; ++rep) {
      std::vector<double> a(dims), b(dims);
      for (std::size_t i = 0; i < dims; ++i) {
        const double scale = std::pow(10.0, rng.uniform(-6.0, 6.0));
        a[i] = rng.normal() * scale;
        b[i] = rng.normal() * scale;
      }
      ASSERT_EQ(squared_euclidean(a, b), squared_euclidean_reference(a, b))
          << "dims " << dims << " rep " << rep;
      ASSERT_EQ(euclidean(a, b),
                std::sqrt(squared_euclidean_reference(a, b)))
          << "dims " << dims << " rep " << rep;
    }
  }
}

TEST(ThreadDeterminismTest, CondensedDistancesBitIdentical) {
  const Matrix x = blob_data(40, 6, 1.2, 101);
  const auto serial = with_threads(1, [&] { return CondensedDistances(x); });
  const auto threaded =
      with_threads(8, [&] { return CondensedDistances(x); });
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    for (std::size_t j = i + 1; j < x.rows(); ++j) {
      ASSERT_EQ(serial(i, j), threaded(i, j)) << "pair " << i << "," << j;
    }
  }
}

TEST(ThreadDeterminismTest, ClusteringLabelsBitIdentical) {
  const Matrix x = blob_data(50, 4, 1.5, 202);
  for (const Linkage linkage : {Linkage::kWard, Linkage::kComplete}) {
    const auto serial = with_threads(1, [&] {
      return agglomerative_cluster(x, linkage);
    });
    const auto threaded = with_threads(8, [&] {
      return agglomerative_cluster(x, linkage);
    });
    ASSERT_EQ(serial.merges().size(), threaded.merges().size());
    for (std::size_t t = 0; t < serial.merges().size(); ++t) {
      EXPECT_EQ(serial.merges()[t].height, threaded.merges()[t].height)
          << linkage_name(linkage) << " merge " << t;
    }
    for (const std::size_t k : {2u, 3u, 5u, 8u}) {
      EXPECT_EQ(serial.cut(k), threaded.cut(k))
          << linkage_name(linkage) << " cut k=" << k;
    }
  }
}

TEST(ThreadDeterminismTest, CopheneticCorrelationBitIdentical) {
  // Sizes straddling the grain-4 chunk boundary, including n < grain
  // (pure tail) and n not a multiple of the grain.
  for (const std::size_t per_blob : {1u, 2u, 13u, 40u}) {
    const Matrix x = blob_data(per_blob, 5, 1.1, 707);
    const Dendrogram tree = agglomerative_cluster(x, Linkage::kWard);
    const double c1 =
        with_threads(1, [&] { return cophenetic_correlation(tree, x); });
    const double c8 =
        with_threads(8, [&] { return cophenetic_correlation(tree, x); });
    EXPECT_EQ(c1, c8) << "n = " << x.rows();
  }
}

TEST(ThreadDeterminismTest, SilhouetteAndDunnBitIdentical) {
  std::vector<int> y;
  const Matrix x = blob_data(40, 4, 1.0, 303, &y);
  const CondensedDistances dist(x);
  const double s1 = with_threads(1, [&] { return silhouette_score(dist, y); });
  const double s8 = with_threads(8, [&] { return silhouette_score(dist, y); });
  EXPECT_EQ(s1, s8);
  const double d1 = with_threads(1, [&] { return dunn_index(dist, y); });
  const double d8 = with_threads(8, [&] { return dunn_index(dist, y); });
  EXPECT_EQ(d1, d8);
}

TEST(ThreadDeterminismTest, ForestBitIdentical) {
  std::vector<int> y;
  const Matrix x = blob_data(50, 4, 1.3, 404, &y);
  RandomForest::Params params;
  params.num_trees = 24;
  params.seed = 99;
  auto fit = [&](std::size_t threads) {
    return with_threads(threads, [&] {
      RandomForest forest;
      forest.fit(x, y, 3, params);
      return forest;
    });
  };
  const RandomForest serial = fit(1);
  const RandomForest threaded = fit(8);
  EXPECT_EQ(serial.oob_accuracy(), threaded.oob_accuracy());
  const auto pred1 = with_threads(1, [&] { return serial.predict_all(x); });
  const auto pred8 = with_threads(8, [&] { return threaded.predict_all(x); });
  EXPECT_EQ(pred1, pred8);
  for (std::size_t i = 0; i < x.rows(); i += 7) {
    const auto p1 = serial.predict_proba(x.row(i));
    const auto p8 = threaded.predict_proba(x.row(i));
    ASSERT_EQ(p1, p8) << "row " << i;
  }
}

TEST(ThreadDeterminismTest, TreeShapBatchBitIdentical) {
  std::vector<int> y;
  const Matrix x = blob_data(30, 4, 1.2, 505, &y);
  RandomForest forest;
  RandomForest::Params params;
  params.num_trees = 10;
  forest.fit(x, y, 3, params);
  const auto shap1 =
      with_threads(1, [&] { return forest_shap_batch(forest, x); });
  const auto shap8 =
      with_threads(8, [&] { return forest_shap_batch(forest, x); });
  ASSERT_EQ(shap1.size(), shap8.size());
  for (std::size_t r = 0; r < shap1.size(); ++r) {
    const auto a = shap1[r].data();
    const auto b = shap8[r].data();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i], b[i]) << "row " << r << " slot " << i;
    }
  }
  // The batch is also bit-identical to the serial row-by-row reference.
  for (std::size_t r = 0; r < x.rows(); r += 11) {
    const Matrix ref = forest_shap(forest, x.row(r));
    const auto got = shap8[r].data();
    ASSERT_EQ(ref.data().size(), got.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(ref.data()[i], got[i]) << "row " << r << " slot " << i;
    }
  }
}

TEST(ThreadDeterminismTest, KernelShapBatchBitIdentical) {
  std::vector<int> y;
  const Matrix x = blob_data(12, 4, 1.0, 606, &y);
  RandomForest forest;
  RandomForest::Params params;
  params.num_trees = 8;
  forest.fit(x, y, 3, params);
  const ModelFunction model = [&](std::span<const double> row) {
    return forest.predict_proba(row);
  };
  const std::vector<std::size_t> bg_rows = {0, 3, 6, 9};
  const std::vector<std::size_t> query_rows = {1, 4, 7};
  const Matrix background = x.select_rows(bg_rows);
  const Matrix queries = x.select_rows(query_rows);
  KernelShapParams shap_params;
  shap_params.max_coalitions = 32;
  const auto run = [&](std::size_t threads) {
    return with_threads(threads, [&] {
      return kernel_shap_batch(model, queries, background, shap_params);
    });
  };
  const auto serial = run(1);
  const auto threaded = run(8);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t r = 0; r < serial.size(); ++r) {
    ASSERT_EQ(serial[r].base, threaded[r].base) << "row " << r;
    const auto a = serial[r].phi.data();
    const auto b = threaded[r].phi.data();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i], b[i]) << "row " << r << " slot " << i;
    }
  }
}

}  // namespace
}  // namespace icn::ml
