#include "ml/tree.h"

#include <gtest/gtest.h>

#include <numeric>

#include "ml/metrics.h"
#include "util/error.h"
#include "util/rng.h"

namespace icn::ml {
namespace {

/// Labels = quadrant of the 2D point (axis-aligned, perfectly separable).
Matrix quadrant_data(std::size_t n, std::uint64_t seed,
                     std::vector<int>* labels) {
  icn::util::Rng rng(seed);
  Matrix x(n, 2);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.uniform(-1.0, 1.0);
    x(i, 1) = rng.uniform(-1.0, 1.0);
    labels->push_back((x(i, 0) > 0.0 ? 1 : 0) + (x(i, 1) > 0.0 ? 2 : 0));
  }
  return x;
}

DecisionTree fit_tree(const Matrix& x, const std::vector<int>& y, int k,
                      DecisionTree::Params params = {},
                      std::uint64_t seed = 42) {
  DecisionTree tree;
  icn::util::Rng rng(seed);
  tree.fit(x, y, k, params, rng);
  return tree;
}

TEST(DecisionTreeTest, FitsPureLeafOnConstantLabels) {
  Matrix x(4, 1, {1.0, 2.0, 3.0, 4.0});
  const std::vector<int> y = {1, 1, 1, 1};
  const auto tree = fit_tree(x, y, 2);
  EXPECT_EQ(tree.nodes().size(), 1u);
  EXPECT_TRUE(tree.nodes()[0].is_leaf());
  EXPECT_EQ(tree.predict(std::vector<double>{0.0}), 1);
}

TEST(DecisionTreeTest, SeparableDataPerfectlyClassified) {
  std::vector<int> y;
  const Matrix x = quadrant_data(200, 7, &y);
  const auto tree = fit_tree(x, y, 4);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    EXPECT_EQ(tree.predict(x.row(i)), y[i]);
  }
}

TEST(DecisionTreeTest, ProbaSumsToOne) {
  std::vector<int> y;
  const Matrix x = quadrant_data(100, 9, &y);
  const auto tree = fit_tree(x, y, 4);
  for (std::size_t i = 0; i < 10; ++i) {
    const auto p = tree.predict_proba(x.row(i));
    double total = 0.0;
    for (const double v : p) {
      EXPECT_GE(v, 0.0);
      total += v;
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(DecisionTreeTest, DepthLimitRespected) {
  std::vector<int> y;
  const Matrix x = quadrant_data(200, 11, &y);
  DecisionTree::Params params;
  params.max_depth = 1;
  const auto tree = fit_tree(x, y, 4, params);
  // Depth 1 = a root with two leaves.
  EXPECT_LE(tree.nodes().size(), 3u);
}

TEST(DecisionTreeTest, MinSamplesLeafRespected) {
  std::vector<int> y;
  const Matrix x = quadrant_data(50, 13, &y);
  DecisionTree::Params params;
  params.min_samples_leaf = 10;
  const auto tree = fit_tree(x, y, 4, params);
  for (const auto& node : tree.nodes()) {
    if (node.is_leaf()) {
      EXPECT_GE(node.cover, 10.0);
    }
  }
}

TEST(DecisionTreeTest, CoverAccountsForAllSamples) {
  std::vector<int> y;
  const Matrix x = quadrant_data(80, 15, &y);
  const auto tree = fit_tree(x, y, 4);
  EXPECT_DOUBLE_EQ(tree.nodes()[0].cover, 80.0);
  for (const auto& node : tree.nodes()) {
    if (!node.is_leaf()) {
      const double child_sum =
          tree.nodes()[static_cast<std::size_t>(node.left)].cover +
          tree.nodes()[static_cast<std::size_t>(node.right)].cover;
      EXPECT_DOUBLE_EQ(node.cover, child_sum);
    }
  }
}

TEST(DecisionTreeTest, NodeValuesAreCoverWeightedChildMeans) {
  std::vector<int> y;
  const Matrix x = quadrant_data(120, 17, &y);
  const auto tree = fit_tree(x, y, 4);
  for (const auto& node : tree.nodes()) {
    if (node.is_leaf()) continue;
    const auto& l = tree.nodes()[static_cast<std::size_t>(node.left)];
    const auto& r = tree.nodes()[static_cast<std::size_t>(node.right)];
    for (std::size_t c = 0; c < node.value.size(); ++c) {
      const double expected =
          (l.cover * l.value[c] + r.cover * r.value[c]) / node.cover;
      EXPECT_NEAR(node.value[c], expected, 1e-9);
    }
  }
}

TEST(DecisionTreeTest, BootstrapSampleIndicesUsed) {
  Matrix x(4, 1, {0.0, 1.0, 10.0, 11.0});
  const std::vector<int> y = {0, 0, 1, 1};
  DecisionTree tree;
  icn::util::Rng rng(1);
  // Train only on the low cluster: tree must predict 0 everywhere.
  const std::vector<std::size_t> sample = {0, 1, 0, 1};
  tree.fit(x, y, 2, {}, rng, sample);
  EXPECT_EQ(tree.predict(std::vector<double>{10.5}), 0);
}

TEST(DecisionTreeTest, ImportanceConcentratesOnInformativeFeature) {
  // Feature 1 is pure noise; feature 0 fully determines the label.
  icn::util::Rng rng(19);
  Matrix x(300, 2);
  std::vector<int> y(300);
  for (std::size_t i = 0; i < 300; ++i) {
    x(i, 0) = rng.uniform(-1.0, 1.0);
    x(i, 1) = rng.uniform(-1.0, 1.0);
    y[i] = x(i, 0) > 0.2 ? 1 : 0;
  }
  const auto tree = fit_tree(x, y, 2);
  const auto& imp = tree.impurity_importance();
  EXPECT_GT(imp[0], imp[1] * 10.0);
}

TEST(DecisionTreeTest, InputValidation) {
  DecisionTree tree;
  icn::util::Rng rng(1);
  Matrix x(2, 1, {0.0, 1.0});
  EXPECT_THROW(tree.fit(x, std::vector<int>{0}, 2, {}, rng),
               icn::util::PreconditionError);
  EXPECT_THROW(tree.fit(x, std::vector<int>{0, 5}, 2, {}, rng),
               icn::util::PreconditionError);
  EXPECT_THROW(tree.predict(std::vector<double>{1.0}),
               icn::util::PreconditionError);  // unfitted
}

TEST(DecisionTreeTest, PredictValidatesFeatureCount) {
  std::vector<int> y;
  const Matrix x = quadrant_data(40, 21, &y);
  const auto tree = fit_tree(x, y, 4);
  EXPECT_THROW(tree.predict(std::vector<double>{1.0}),
               icn::util::PreconditionError);
}

TEST(DecisionTreeTest, FeatureSubsamplingStillLearns) {
  std::vector<int> y;
  const Matrix x = quadrant_data(400, 23, &y);
  DecisionTree::Params params;
  params.max_features = 1;  // random single feature per split
  const auto tree = fit_tree(x, y, 4, params);
  std::vector<int> pred(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) pred[i] = tree.predict(x.row(i));
  EXPECT_GT(accuracy(pred, y), 0.95);
}

TEST(DecisionTreeTest, ArenaAndHeapScratchAreBitIdentical) {
  // The arena path must not change a single output bit relative to the
  // original heap-vector path: same splits, same thresholds, same rng draws.
  std::vector<int> y;
  const Matrix x = quadrant_data(300, 7, &y);
  for (const std::size_t max_features : {std::size_t{0}, std::size_t{1}}) {
    DecisionTree::Params params;
    params.max_features = max_features;
    params.scratch = DecisionTree::Scratch::kArena;
    const auto arena_tree = fit_tree(x, y, 4, params, 99);
    params.scratch = DecisionTree::Scratch::kHeap;
    const auto heap_tree = fit_tree(x, y, 4, params, 99);

    ASSERT_EQ(arena_tree.nodes().size(), heap_tree.nodes().size());
    for (std::size_t i = 0; i < arena_tree.nodes().size(); ++i) {
      const TreeNode& a = arena_tree.nodes()[i];
      const TreeNode& h = heap_tree.nodes()[i];
      EXPECT_EQ(a.feature, h.feature) << "node " << i;
      EXPECT_EQ(a.threshold, h.threshold) << "node " << i;
      EXPECT_EQ(a.left, h.left) << "node " << i;
      EXPECT_EQ(a.right, h.right) << "node " << i;
      EXPECT_EQ(a.cover, h.cover) << "node " << i;
      EXPECT_EQ(a.value, h.value) << "node " << i;
    }
    EXPECT_EQ(arena_tree.impurity_importance(),
              heap_tree.impurity_importance());
  }
}

}  // namespace
}  // namespace icn::ml
