#include "ml/linalg.h"

#include <gtest/gtest.h>

#include "util/error.h"
#include "util/rng.h"

namespace icn::ml {
namespace {

TEST(SolveTest, TwoByTwo) {
  Matrix a(2, 2, {2.0, 1.0, 1.0, 3.0});
  const auto x = solve_linear_system(a, {5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(SolveTest, Identity) {
  Matrix a(3, 3);
  for (std::size_t i = 0; i < 3; ++i) a(i, i) = 1.0;
  const auto x = solve_linear_system(a, {7.0, -2.0, 0.5});
  EXPECT_NEAR(x[0], 7.0, 1e-12);
  EXPECT_NEAR(x[1], -2.0, 1e-12);
  EXPECT_NEAR(x[2], 0.5, 1e-12);
}

TEST(SolveTest, RequiresPivoting) {
  // Zero on the diagonal forces a row swap.
  Matrix a(2, 2, {0.0, 1.0, 1.0, 0.0});
  const auto x = solve_linear_system(a, {3.0, 4.0});
  EXPECT_NEAR(x[0], 4.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(SolveTest, RandomSystemsRoundTrip) {
  icn::util::Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + rng.uniform_index(8);
    Matrix a(n, n);
    for (auto& v : a.data()) v = rng.uniform(-2.0, 2.0);
    for (std::size_t i = 0; i < n; ++i) a(i, i) += 3.0;  // well-conditioned
    std::vector<double> x_true(n);
    for (auto& v : x_true) v = rng.uniform(-5.0, 5.0);
    std::vector<double> b(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) b[i] += a(i, j) * x_true[j];
    }
    const auto x = solve_linear_system(a, b);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(x[i], x_true[i], 1e-8);
    }
  }
}

TEST(SolveTest, SingularThrows) {
  Matrix a(2, 2, {1.0, 2.0, 2.0, 4.0});
  EXPECT_THROW(solve_linear_system(a, {1.0, 2.0}),
               icn::util::PreconditionError);
}

TEST(SolveTest, ShapeChecks) {
  Matrix a(2, 3);
  EXPECT_THROW(solve_linear_system(a, {1.0, 2.0}),
               icn::util::PreconditionError);
  Matrix b(2, 2, {1.0, 0.0, 0.0, 1.0});
  EXPECT_THROW(solve_linear_system(b, {1.0}), icn::util::PreconditionError);
}

TEST(WlsTest, ExactFitRecovered) {
  // y = 2*x0 - x1, equal weights: regression is exact.
  Matrix x(4, 2, {1, 0, 0, 1, 1, 1, 2, 1});
  const std::vector<double> y = {2.0, -1.0, 1.0, 3.0};
  const std::vector<double> w(4, 1.0);
  const auto beta = weighted_least_squares(x, y, w);
  EXPECT_NEAR(beta[0], 2.0, 1e-10);
  EXPECT_NEAR(beta[1], -1.0, 1e-10);
}

TEST(WlsTest, ZeroWeightIgnoresPoint) {
  // Third point is an outlier but has zero weight.
  Matrix x(3, 1, {1.0, 2.0, 3.0});
  const std::vector<double> y = {2.0, 4.0, 100.0};
  const std::vector<double> w = {1.0, 1.0, 0.0};
  const auto beta = weighted_least_squares(x, y, w);
  EXPECT_NEAR(beta[0], 2.0, 1e-10);
}

TEST(WlsTest, NegativeWeightThrows) {
  Matrix x(2, 1, {1.0, 2.0});
  EXPECT_THROW(
      weighted_least_squares(x, {1.0, 2.0}, {1.0, -1.0}),
      icn::util::PreconditionError);
}

}  // namespace
}  // namespace icn::ml
