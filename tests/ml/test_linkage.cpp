#include "ml/linkage.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "util/error.h"
#include "util/rng.h"
#include "util/stats.h"

namespace icn::ml {
namespace {

Matrix random_matrix(std::size_t n, std::size_t m, std::uint64_t seed) {
  icn::util::Rng rng(seed);
  Matrix x(n, m);
  for (auto& v : x.data()) v = rng.normal();
  return x;
}

/// Three well-separated Gaussian blobs.
Matrix blobs(std::size_t per_blob, std::uint64_t seed,
             std::vector<int>* truth = nullptr) {
  icn::util::Rng rng(seed);
  Matrix x(per_blob * 3, 2);
  const double centers[3][2] = {{0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}};
  for (std::size_t b = 0; b < 3; ++b) {
    for (std::size_t i = 0; i < per_blob; ++i) {
      const std::size_t r = b * per_blob + i;
      x(r, 0) = centers[b][0] + rng.normal(0.0, 0.5);
      x(r, 1) = centers[b][1] + rng.normal(0.0, 0.5);
      if (truth) truth->push_back(static_cast<int>(b));
    }
  }
  return x;
}

TEST(LinkageNameTest, AllNamed) {
  EXPECT_STREQ(linkage_name(Linkage::kWard), "ward");
  EXPECT_STREQ(linkage_name(Linkage::kComplete), "complete");
  EXPECT_STREQ(linkage_name(Linkage::kAverage), "average");
  EXPECT_STREQ(linkage_name(Linkage::kSingle), "single");
}

TEST(DendrogramTest, TwoSingletonsMergeAtEuclideanDistance) {
  // SciPy height convention for Ward: singleton pairs merge at their
  // Euclidean distance.
  Matrix x(2, 2, {0.0, 0.0, 3.0, 4.0});
  const Dendrogram d = agglomerative_cluster(x, Linkage::kWard);
  ASSERT_EQ(d.merges().size(), 1u);
  EXPECT_NEAR(d.merges()[0].height, 5.0, 1e-9);
  EXPECT_EQ(d.merges()[0].size, 2u);
}

TEST(DendrogramTest, SingleLeafHierarchy) {
  Matrix x(1, 3, {1.0, 2.0, 3.0});
  const Dendrogram d = agglomerative_cluster(x, Linkage::kWard);
  EXPECT_EQ(d.num_leaves(), 1u);
  EXPECT_TRUE(d.merges().empty());
  EXPECT_EQ(d.cut(1), std::vector<int>{0});
}

class LinkageParamTest : public ::testing::TestWithParam<Linkage> {};

TEST_P(LinkageParamTest, ChainMatchesNaiveReference) {
  const Matrix x = random_matrix(60, 5, 1234);
  const Dendrogram fast = agglomerative_cluster(x, GetParam());
  const Dendrogram naive = naive_agglomerative(x, GetParam());
  ASSERT_EQ(fast.merges().size(), naive.merges().size());
  // Same multiset of merge heights...
  for (std::size_t t = 0; t < fast.merges().size(); ++t) {
    EXPECT_NEAR(fast.merges()[t].height, naive.merges()[t].height, 1e-7)
        << "merge step " << t;
  }
  // ... and identical partitions at several cut levels.
  for (const std::size_t k : {2u, 3u, 5u, 9u}) {
    const auto a = fast.cut(k);
    const auto b = naive.cut(k);
    EXPECT_DOUBLE_EQ(icn::util::adjusted_rand_index(a, b), 1.0)
        << "cut k=" << k;
  }
}

TEST_P(LinkageParamTest, MergeHeightsAreMonotonic) {
  // All four linkages are reducible, so the sorted merge sequence has no
  // inversions.
  const Matrix x = random_matrix(80, 4, 99);
  const Dendrogram d = agglomerative_cluster(x, GetParam());
  for (std::size_t t = 1; t < d.merges().size(); ++t) {
    EXPECT_GE(d.merges()[t].height, d.merges()[t - 1].height - 1e-12);
  }
}

TEST_P(LinkageParamTest, MergeSizesAccumulateToN) {
  const Matrix x = random_matrix(40, 3, 7);
  const Dendrogram d = agglomerative_cluster(x, GetParam());
  EXPECT_EQ(d.merges().back().size, 40u);
  for (const Merge& m : d.merges()) {
    EXPECT_GE(m.size, 2u);
    EXPECT_LE(m.size, 40u);
  }
}

TEST_P(LinkageParamTest, CutProducesExactlyKClusters) {
  const Matrix x = random_matrix(30, 3, 8);
  const Dendrogram d = agglomerative_cluster(x, GetParam());
  for (std::size_t k = 1; k <= 30; ++k) {
    const auto labels = d.cut(k);
    std::set<int> distinct(labels.begin(), labels.end());
    EXPECT_EQ(distinct.size(), k);
    EXPECT_EQ(*distinct.begin(), 0);
    EXPECT_EQ(*distinct.rbegin(), static_cast<int>(k) - 1);
  }
}

TEST_P(LinkageParamTest, RecoversWellSeparatedBlobs) {
  std::vector<int> truth;
  const Matrix x = blobs(20, 17, &truth);
  const Dendrogram d = agglomerative_cluster(x, GetParam());
  const auto labels = d.cut(3);
  EXPECT_DOUBLE_EQ(icn::util::adjusted_rand_index(labels, truth), 1.0);
}

INSTANTIATE_TEST_SUITE_P(AllLinkages, LinkageParamTest,
                         ::testing::Values(Linkage::kWard, Linkage::kComplete,
                                           Linkage::kAverage,
                                           Linkage::kSingle),
                         [](const auto& info) {
                           return linkage_name(info.param);
                         });

TEST(DendrogramTest, CutHeightSeparatesBlobs) {
  const Matrix x = blobs(10, 3);
  const Dendrogram d = agglomerative_cluster(x, Linkage::kWard);
  // The 3->2 merge happens far above the within-blob merges.
  EXPECT_GT(d.cut_height(2), d.cut_height(4) * 3.0);
  EXPECT_THROW(d.cut_height(1), icn::util::PreconditionError);
  EXPECT_THROW(d.cut_height(31), icn::util::PreconditionError);
}

TEST(DendrogramTest, CutRejectsBadK) {
  const Matrix x = random_matrix(5, 2, 2);
  const Dendrogram d = agglomerative_cluster(x, Linkage::kWard);
  EXPECT_THROW(d.cut(0), icn::util::PreconditionError);
  EXPECT_THROW(d.cut(6), icn::util::PreconditionError);
}

TEST(DendrogramTest, CutLabelsAreDeterministic) {
  const Matrix x = random_matrix(25, 3, 55);
  const Dendrogram d = agglomerative_cluster(x, Linkage::kWard);
  EXPECT_EQ(d.cut(4), d.cut(4));
  // Label 0 is always the component containing leaf 0.
  EXPECT_EQ(d.cut(4)[0], 0);
}

TEST(DendrogramTest, RenderShowsRootStats) {
  const Matrix x = blobs(5, 21);
  const Dendrogram d = agglomerative_cluster(x, Linkage::kWard);
  const std::string out = d.render(3);
  EXPECT_NE(out.find("n=15"), std::string::npos);
  EXPECT_NE(out.find("h="), std::string::npos);
}

TEST(DendrogramTest, ConstructorValidatesMergeCount) {
  EXPECT_THROW(Dendrogram(3, {}), icn::util::PreconditionError);
  std::vector<Dendrogram::RawMerge> bad = {{0, 1, 1.0}, {0, 1, 2.0}};
  EXPECT_THROW(Dendrogram(3, bad), icn::util::PreconditionError);
}

TEST(DendrogramTest, WardHeightsMatchVarianceFormula) {
  // Manual three-point example: heights can be derived by hand.
  // Points: 0 at (0,0), 1 at (2,0), 2 at (10,0).
  Matrix x(3, 2, {0, 0, 2, 0, 10, 0});
  const Dendrogram d = agglomerative_cluster(x, Linkage::kWard);
  ASSERT_EQ(d.merges().size(), 2u);
  EXPECT_NEAR(d.merges()[0].height, 2.0, 1e-12);
  // Merge of {0,1} (centroid (1,0), size 2) with {2}:
  // sqrt(2*2*1/3) * 9 = sqrt(4/3) * 9.
  EXPECT_NEAR(d.merges()[1].height, std::sqrt(4.0 / 3.0) * 9.0, 1e-9);
}

TEST(DendrogramTest, SingleLinkageEqualsMinimumSpanningEdgeHeights) {
  // On a line, single linkage merges at consecutive gaps.
  Matrix x(4, 1, {0.0, 1.0, 3.0, 7.0});
  const Dendrogram d = agglomerative_cluster(x, Linkage::kSingle);
  ASSERT_EQ(d.merges().size(), 3u);
  EXPECT_NEAR(d.merges()[0].height, 1.0, 1e-12);
  EXPECT_NEAR(d.merges()[1].height, 2.0, 1e-12);
  EXPECT_NEAR(d.merges()[2].height, 4.0, 1e-12);
}

TEST(DendrogramTest, CompleteLinkageHeightsOnLine) {
  Matrix x(3, 1, {0.0, 1.0, 10.0});
  const Dendrogram d = agglomerative_cluster(x, Linkage::kComplete);
  ASSERT_EQ(d.merges().size(), 2u);
  EXPECT_NEAR(d.merges()[0].height, 1.0, 1e-12);
  EXPECT_NEAR(d.merges()[1].height, 10.0, 1e-12);  // max(9, 10)
}

TEST(DendrogramTest, AverageLinkageHeightsOnLine) {
  Matrix x(3, 1, {0.0, 1.0, 10.0});
  const Dendrogram d = agglomerative_cluster(x, Linkage::kAverage);
  ASSERT_EQ(d.merges().size(), 2u);
  EXPECT_NEAR(d.merges()[1].height, 9.5, 1e-12);  // mean(9, 10)
}

TEST(AgglomerativeTest, RejectsEmptyInput) {
  Matrix empty;
  EXPECT_THROW(agglomerative_cluster(empty, Linkage::kWard),
               icn::util::PreconditionError);
}

TEST(AgglomerativeTest, DuplicatePointsMergeAtZero) {
  Matrix x(4, 2, {1, 1, 1, 1, 5, 5, 1, 1});
  const Dendrogram d = agglomerative_cluster(x, Linkage::kWard);
  EXPECT_NEAR(d.merges()[0].height, 0.0, 1e-12);
  EXPECT_NEAR(d.merges()[1].height, 0.0, 1e-12);
  const auto labels = d.cut(2);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[0], labels[3]);
  EXPECT_NE(labels[0], labels[2]);
}

}  // namespace
}  // namespace icn::ml
