// The Vfs seam: PosixVfs contract (roundtrips, typed errors naming path and
// op, rename/truncate/map semantics) plus the helpers (vfs_or_default,
// parent_dir) every store caller leans on. The default path must behave
// exactly like the direct syscalls it replaced.
#include "store/vfs.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "util/error.h"

namespace icn::store {
namespace {

class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(::testing::TempDir() + "icn_vfs_" + std::to_string(::getpid()) +
              "_" + name) {
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::vector<std::uint8_t> bytes_of(const std::string& text) {
  return {text.begin(), text.end()};
}

std::vector<std::uint8_t> read_all(Vfs& v, const std::string& path) {
  VfsFile file = v.open(path, Vfs::OpenMode::kReadOnly);
  std::vector<std::uint8_t> out(v.size(file));
  std::size_t at = 0;
  while (at < out.size()) {
    at += v.pread(file, {out.data() + at, out.size() - at}, at);
  }
  v.close(file);
  return out;
}

TEST(VfsTest, WriteReadRoundtripAndSize) {
  Vfs& v = posix_vfs();
  TempFile tmp("roundtrip.bin");
  const auto payload = bytes_of("hello durable world");

  VfsFile file = v.open(tmp.path(), Vfs::OpenMode::kCreateTruncate);
  ASSERT_TRUE(file.is_open());
  std::size_t at = 0;
  while (at < payload.size()) {
    at += v.write(file, {payload.data() + at, payload.size() - at});
  }
  v.fsync(file);
  EXPECT_EQ(v.size(file), payload.size());
  v.close(file);
  EXPECT_FALSE(file.is_open());

  EXPECT_EQ(read_all(v, tmp.path()), payload);
}

TEST(VfsTest, AppendModePreservesExistingBytes) {
  Vfs& v = posix_vfs();
  TempFile tmp("append.bin");
  {
    VfsFile file = v.open(tmp.path(), Vfs::OpenMode::kCreateTruncate);
    const auto head = bytes_of("head");
    ASSERT_EQ(v.write(file, head), head.size());
    v.close(file);
  }
  {
    VfsFile file = v.open(tmp.path(), Vfs::OpenMode::kAppend);
    const auto tail = bytes_of("+tail");
    ASSERT_EQ(v.write(file, tail), tail.size());
    v.close(file);
  }
  EXPECT_EQ(read_all(v, tmp.path()), bytes_of("head+tail"));
}

TEST(VfsTest, PreadAtOffsetAndShortTail) {
  Vfs& v = posix_vfs();
  TempFile tmp("pread.bin");
  {
    VfsFile file = v.open(tmp.path(), Vfs::OpenMode::kCreateTruncate);
    const auto payload = bytes_of("0123456789");
    ASSERT_EQ(v.write(file, payload), payload.size());
    v.close(file);
  }
  VfsFile file = v.open(tmp.path(), Vfs::OpenMode::kReadOnly);
  std::uint8_t buf[4] = {};
  ASSERT_EQ(v.pread(file, {buf, 4}, 3), 4u);
  EXPECT_EQ(std::memcmp(buf, "3456", 4), 0);
  // Reading past the end returns 0, the caller's EOF signal.
  EXPECT_EQ(v.pread(file, {buf, 4}, 10), 0u);
  v.close(file);
}

TEST(VfsTest, PwriteInPlaceDoesNotGrowFile) {
  Vfs& v = posix_vfs();
  TempFile tmp("pwrite.bin");
  {
    VfsFile file = v.open(tmp.path(), Vfs::OpenMode::kCreateTruncate);
    const auto payload = bytes_of("AAAAAA");
    ASSERT_EQ(v.write(file, payload), payload.size());
    v.close(file);
  }
  // In-place patching requires kReadWrite: the append modes carry O_APPEND
  // (for rollback-safe logging), under which Linux pwrite ignores the
  // offset.
  VfsFile file = v.open(tmp.path(), Vfs::OpenMode::kReadWrite);
  const auto patch = bytes_of("bb");
  ASSERT_EQ(v.pwrite(file, patch, 2), patch.size());
  EXPECT_EQ(v.size(file), 6u);
  v.close(file);
  EXPECT_EQ(read_all(v, tmp.path()), bytes_of("AAbbAA"));
}

TEST(VfsTest, OpenMissingFileThrowsIoErrorNamingPath) {
  Vfs& v = posix_vfs();
  const std::string path =
      ::testing::TempDir() + "icn_vfs_definitely_missing.bin";
  try {
    (void)v.open(path, Vfs::OpenMode::kReadOnly);
    FAIL() << "expected IoError";
  } catch (const icn::util::IoError& err) {
    EXPECT_NE(std::string(err.what()).find(path), std::string::npos);
    EXPECT_NE(std::string(err.what()).find("open"), std::string::npos);
  }
}

TEST(VfsTest, TruncateAndFtruncateShrinkAndZeroExtend) {
  Vfs& v = posix_vfs();
  TempFile tmp("trunc.bin");
  {
    VfsFile file = v.open(tmp.path(), Vfs::OpenMode::kCreateTruncate);
    const auto payload = bytes_of("0123456789");
    ASSERT_EQ(v.write(file, payload), payload.size());
    v.ftruncate(file, 4);
    EXPECT_EQ(v.size(file), 4u);
    v.close(file);
  }
  EXPECT_EQ(read_all(v, tmp.path()), bytes_of("0123"));

  v.truncate(tmp.path(), 6);
  const auto extended = read_all(v, tmp.path());
  ASSERT_EQ(extended.size(), 6u);
  EXPECT_EQ(extended[3], '3');
  EXPECT_EQ(extended[4], 0);  // Zero-filled hole.
  EXPECT_EQ(extended[5], 0);
}

TEST(VfsTest, RenameReplacesTargetAtomically) {
  Vfs& v = posix_vfs();
  TempFile from("rename_from.bin");
  TempFile to("rename_to.bin");
  {
    VfsFile file = v.open(from.path(), Vfs::OpenMode::kCreateTruncate);
    const auto payload = bytes_of("new generation");
    ASSERT_EQ(v.write(file, payload), payload.size());
    v.close(file);
  }
  {
    VfsFile file = v.open(to.path(), Vfs::OpenMode::kCreateTruncate);
    const auto payload = bytes_of("old");
    ASSERT_EQ(v.write(file, payload), payload.size());
    v.close(file);
  }
  v.rename(from.path(), to.path());
  v.fsync_parent_dir(to.path());
  EXPECT_EQ(read_all(v, to.path()), bytes_of("new generation"));
  EXPECT_THROW((void)v.open(from.path(), Vfs::OpenMode::kReadOnly),
               icn::util::IoError);
}

TEST(VfsTest, RemoveDeletesAndIsIdempotent) {
  Vfs& v = posix_vfs();
  TempFile tmp("remove.bin");
  {
    VfsFile file = v.open(tmp.path(), Vfs::OpenMode::kCreateTruncate);
    v.close(file);
  }
  v.remove(tmp.path());
  EXPECT_THROW((void)v.open(tmp.path(), Vfs::OpenMode::kReadOnly),
               icn::util::IoError);
  // Removing an already-absent file is a no-op (crash cleanup idempotence).
  EXPECT_NO_THROW(v.remove(tmp.path()));
}

TEST(VfsTest, MapReadonlyExposesBytesAndEmptyFileMapsNull) {
  Vfs& v = posix_vfs();
  TempFile tmp("map.bin");
  const auto payload = bytes_of("mapped bytes");
  {
    VfsFile file = v.open(tmp.path(), Vfs::OpenMode::kCreateTruncate);
    ASSERT_EQ(v.write(file, payload), payload.size());
    v.close(file);
  }
  Vfs::MappedRegion region = v.map_readonly(tmp.path());
  ASSERT_NE(region.data, nullptr);
  ASSERT_EQ(region.size, payload.size());
  EXPECT_EQ(std::memcmp(region.data, payload.data(), payload.size()), 0);
  v.unmap(region);

  TempFile empty("map_empty.bin");
  {
    VfsFile file = v.open(empty.path(), Vfs::OpenMode::kCreateTruncate);
    v.close(file);
  }
  Vfs::MappedRegion none = v.map_readonly(empty.path());
  EXPECT_EQ(none.data, nullptr);
  EXPECT_EQ(none.size, 0u);
  v.unmap(none);  // Must be a safe no-op.
}

TEST(VfsTest, VfsOrDefaultResolvesNullToPosix) {
  EXPECT_EQ(&vfs_or_default(nullptr), &posix_vfs());
  Vfs& v = posix_vfs();
  EXPECT_EQ(&vfs_or_default(&v), &v);
}

TEST(VfsTest, ParentDirHandlesSeparators) {
  EXPECT_EQ(parent_dir("/tmp/a/b.snap"), "/tmp/a");
  EXPECT_EQ(parent_dir("b.snap"), ".");
  EXPECT_EQ(parent_dir("/b.snap"), "/");
}

TEST(VfsTest, FsyncParentDirOfRealFileSucceeds) {
  Vfs& v = posix_vfs();
  TempFile tmp("dirsync.bin");
  {
    VfsFile file = v.open(tmp.path(), Vfs::OpenMode::kCreateTruncate);
    v.close(file);
  }
  EXPECT_NO_THROW(v.fsync_parent_dir(tmp.path()));
}

}  // namespace
}  // namespace icn::store
