// Snapshot store: CRC32C vectors, round-trip fidelity, corruption and
// truncation detection, crash recovery (longest-valid-prefix + truncate),
// and the append path a resumed ingest uses.
#include "store/snapshot.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "store/crc32c.h"
#include "util/error.h"
#include "util/rng.h"

namespace icn::store {
namespace {

/// Unique file path in the test temp dir; removed on destruction.
class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(::testing::TempDir() + "icn_snapshot_" +
              std::to_string(::getpid()) + "_" + name) {
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, std::span<const std::uint8_t> bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

ml::Matrix random_matrix(std::size_t rows, std::size_t cols,
                         std::uint64_t seed) {
  icn::util::Rng rng(seed);
  ml::Matrix m(rows, cols);
  for (auto& v : m.data()) v = rng.uniform(0.0, 1000.0);
  return m;
}

TEST(Crc32cTest, KnownVectors) {
  // Standard CRC32C check value for "123456789".
  const std::string digits = "123456789";
  EXPECT_EQ(crc32c({reinterpret_cast<const std::uint8_t*>(digits.data()),
                    digits.size()}),
            0xE3069283u);
  EXPECT_EQ(crc32c({}), 0u);
  // 32 zero bytes (iSCSI test vector).
  const std::vector<std::uint8_t> zeros(32, 0);
  EXPECT_EQ(crc32c(zeros), 0x8A9136AAu);
  const std::vector<std::uint8_t> ffs(32, 0xFF);
  EXPECT_EQ(crc32c(ffs), 0x62A8AB43u);
}

TEST(Crc32cTest, IncrementalMatchesOneShot) {
  icn::util::Rng rng(42);
  std::vector<std::uint8_t> data(1025);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform_index(256));
  const std::uint32_t whole = crc32c(data);
  for (const std::size_t cut : {std::size_t{0}, std::size_t{1},
                                std::size_t{7}, std::size_t{512},
                                data.size()}) {
    const std::uint32_t a = crc32c_extend(0, {data.data(), cut});
    const std::uint32_t b =
        crc32c_extend(a, {data.data() + cut, data.size() - cut});
    EXPECT_EQ(b, whole) << "cut " << cut;
  }
}

TEST(SnapshotTest, MatrixRoundTripIsBitIdentical) {
  TempFile file("matrix_roundtrip");
  const ml::Matrix original = random_matrix(37, 11, 7);
  {
    SnapshotWriter writer(file.path());
    writer.append_matrix(original);
    writer.sync();
  }
  const MappedSnapshot snapshot(file.path());
  ASSERT_EQ(snapshot.sections().size(), 1u);
  const auto view = snapshot.matrix();
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->rows, 37u);
  EXPECT_EQ(view->cols, 11u);
  // Zero-copy view is 8-aligned and bit-identical.
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(view->values.data()) % 8, 0u);
  ASSERT_EQ(view->values.size(), original.data().size());
  for (std::size_t i = 0; i < view->values.size(); ++i) {
    EXPECT_EQ(view->values[i], original.data()[i]) << "slot " << i;
  }
  const ml::Matrix copy = view->to_matrix();
  EXPECT_EQ(copy.rows(), original.rows());
  for (std::size_t i = 0; i < copy.data().size(); ++i) {
    ASSERT_EQ(copy.data()[i], original.data()[i]);
  }
}

TEST(SnapshotTest, StreamMetaAndWindowsRoundTrip) {
  TempFile file("meta_windows");
  const std::vector<std::uint32_t> ids = {3, 9, 27, 81};
  const std::vector<double> cells0 = {1.5, 0.0, 2.25, 3.0, 0.5, 4.0, 8.0, 9.0};
  const std::vector<double> cells5 = {0.0, 7.5, 0.125, 6.0, 1.0, 2.0, 3.0, 4.5};
  {
    SnapshotWriter writer(file.path());
    writer.append_stream_meta(ids, 2, 24);
    writer.append_window(0, cells0);
    writer.append_window(5, cells5);
    writer.sync();
  }
  const MappedSnapshot snapshot(file.path());
  const auto meta = snapshot.stream_meta();
  ASSERT_TRUE(meta.has_value());
  EXPECT_EQ(meta->num_services, 2u);
  EXPECT_EQ(meta->num_hours, 24);
  ASSERT_EQ(meta->antenna_ids.size(), ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(meta->antenna_ids[i], ids[i]);
  }
  const auto windows = snapshot.windows();
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].hour, 0);
  EXPECT_EQ(windows[1].hour, 5);
  ASSERT_EQ(windows[1].cells.size(), cells5.size());
  for (std::size_t i = 0; i < cells5.size(); ++i) {
    EXPECT_EQ(windows[1].cells[i], cells5[i]);
  }
}

TEST(SnapshotTest, HeaderOnlyFileIsValidAndEmpty) {
  TempFile file("header_only");
  { SnapshotWriter writer(file.path()); }
  const MappedSnapshot snapshot(file.path());
  EXPECT_TRUE(snapshot.sections().empty());
  EXPECT_FALSE(snapshot.matrix().has_value());
  EXPECT_TRUE(snapshot.windows().empty());
}

TEST(SnapshotTest, EveryFlippedByteIsDetected) {
  TempFile file("bitflip");
  {
    SnapshotWriter writer(file.path());
    writer.append_window(3, std::vector<double>{1.0, 2.0, 3.0});
  }
  const auto good = read_file(file.path());
  // Flip each byte in turn (skip the file header's 4 reserved bytes, the
  // only field no CRC covers): the reader must reject every corruption.
  for (std::size_t at = 0; at < good.size(); ++at) {
    if (at >= 12 && at < 16) continue;  // file-header reserved field
    auto bad = good;
    bad[at] ^= 0x40;
    write_file(file.path(), bad);
    EXPECT_THROW((void)MappedSnapshot(file.path()), SnapshotError)
        << "flipped byte " << at;
  }
}

TEST(SnapshotTest, EveryTruncationIsDetected) {
  TempFile file("truncate");
  {
    SnapshotWriter writer(file.path());
    writer.append_window(1, std::vector<double>{4.0, 5.0});
  }
  const auto good = read_file(file.path());
  for (std::size_t keep = 0; keep < good.size(); ++keep) {
    write_file(file.path(), {good.data(), keep});
    if (keep == 0) {
      // An empty file is an OS-level problem (lost write), not corruption.
      EXPECT_THROW((void)MappedSnapshot(file.path()), icn::util::IoError);
      continue;
    }
    if (keep == 16) {
      // A prefix of exactly the file header is a valid empty snapshot.
      EXPECT_TRUE(MappedSnapshot(file.path()).sections().empty());
      continue;
    }
    EXPECT_THROW((void)MappedSnapshot(file.path()), SnapshotError)
        << "kept " << keep << " bytes";
  }
}

TEST(SnapshotTest, RejectsBadMagicAndVersion) {
  TempFile file("magic");
  { SnapshotWriter writer(file.path()); }
  auto bytes = read_file(file.path());
  auto bad_magic = bytes;
  bad_magic[0] = 'X';
  write_file(file.path(), bad_magic);
  EXPECT_THROW((void)MappedSnapshot(file.path()), SnapshotError);
  auto bad_version = bytes;
  bad_version[8] = 99;
  write_file(file.path(), bad_version);
  EXPECT_THROW((void)MappedSnapshot(file.path()), SnapshotError);
  EXPECT_THROW((void)SnapshotWriter::append_to(file.path()), SnapshotError);
}

TEST(SnapshotTest, MissingFileThrowsIoError) {
  // OS-level failures are typed IoError, distinct from structural
  // SnapshotError, so callers can tell "not there" from "corrupt".
  EXPECT_THROW((void)MappedSnapshot("/nonexistent/icn.snap"),
               icn::util::IoError);
  EXPECT_THROW((void)recover_snapshot("/nonexistent/icn.snap"),
               icn::util::IoError);
  EXPECT_THROW((void)SnapshotWriter::append_to("/nonexistent/icn.snap"),
               icn::util::IoError);
  EXPECT_THROW((void)scan_section_index("/nonexistent/icn.snap"),
               icn::util::IoError);
}

TEST(SnapshotTest, EmptyFileThrowsIoError) {
  TempFile file("empty");
  write_file(file.path(), {});
  EXPECT_THROW((void)MappedSnapshot(file.path()), icn::util::IoError);
  EXPECT_THROW((void)recover_snapshot(file.path()), icn::util::IoError);
  EXPECT_THROW((void)SnapshotWriter::append_to(file.path()),
               icn::util::IoError);
}

TEST(SnapshotTest, CoverageSectionRoundTrips) {
  TempFile file("coverage");
  const std::vector<std::uint8_t> covered = {1, 1, 0, 1, 0, 0, 1, 1};
  {
    SnapshotWriter writer(file.path());
    writer.append_coverage(2, 4, covered);
    writer.sync();
  }
  const MappedSnapshot snapshot(file.path());
  const auto view = snapshot.coverage();
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->rows, 2u);
  EXPECT_EQ(view->num_hours, 4);
  ASSERT_EQ(view->covered.size(), covered.size());
  for (std::size_t i = 0; i < covered.size(); ++i) {
    EXPECT_EQ(view->covered[i], covered[i]) << "cell " << i;
  }
}

TEST(SnapshotTest, QuarantineSectionRoundTrips) {
  TempFile file("quarantine");
  const std::vector<std::uint32_t> rejected = {0, 3, 0, 7};
  const std::vector<std::uint32_t> repaired = {1, 0, 0, 2};
  {
    SnapshotWriter writer(file.path());
    writer.append_quarantine(4, rejected, repaired);
    writer.sync();
  }
  const MappedSnapshot snapshot(file.path());
  const auto view = snapshot.quarantine();
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->num_hours, 4);
  ASSERT_EQ(view->rejected.size(), rejected.size());
  ASSERT_EQ(view->repaired.size(), repaired.size());
  for (std::size_t i = 0; i < rejected.size(); ++i) {
    EXPECT_EQ(view->rejected[i], rejected[i]) << "hour " << i;
    EXPECT_EQ(view->repaired[i], repaired[i]) << "hour " << i;
  }
}

TEST(SnapshotTest, QuarantineSectionRejectsBadShapes) {
  TempFile file("quarantine_bad");
  SnapshotWriter writer(file.path());
  const std::vector<std::uint32_t> counts = {1, 2, 3};
  EXPECT_THROW(writer.append_quarantine(0, {}, {}),
               icn::util::PreconditionError);
  EXPECT_THROW(writer.append_quarantine(4, counts, counts),
               icn::util::PreconditionError);
  const std::vector<std::uint32_t> short_counts = {1, 2};
  EXPECT_THROW(writer.append_quarantine(3, counts, short_counts),
               icn::util::PreconditionError);
}

TEST(SnapshotTest, QuarantineAccessorRejectsMalformedPayload) {
  TempFile file("quarantine_malformed");
  {
    SnapshotWriter writer(file.path());
    // Raw payload claiming 4 hours but carrying only 2 hours of counts.
    std::vector<std::uint8_t> payload(8 + 2 * 8, 0);
    payload[0] = 4;
    writer.append_section(SectionType::kQuarantine, payload);
    writer.sync();
  }
  const MappedSnapshot snapshot(file.path());
  EXPECT_THROW((void)snapshot.quarantine(), SnapshotError);
}

TEST(SnapshotTest, CoverageSectionRejectsBadShapes) {
  TempFile file("coverage_bad");
  SnapshotWriter writer(file.path());
  const std::vector<std::uint8_t> bits = {1, 0, 1};
  EXPECT_THROW(writer.append_coverage(0, 3, bits),
               icn::util::PreconditionError);
  EXPECT_THROW(writer.append_coverage(2, 3, bits),
               icn::util::PreconditionError);
  const std::vector<std::uint8_t> not_binary = {1, 0, 2};
  EXPECT_THROW(writer.append_coverage(1, 3, not_binary),
               icn::util::PreconditionError);
}

TEST(SnapshotTest, SectionIndexReportsOffsetsAndSizes) {
  TempFile file("section_index");
  {
    SnapshotWriter writer(file.path());
    writer.append_stream_meta(std::vector<std::uint32_t>{1, 2}, 3, 24);
    writer.append_window(0, std::vector<double>{1.0, 2.0, 3.0,
                                                4.0, 5.0, 6.0});
    writer.sync();
  }
  const auto index = scan_section_index(file.path());
  ASSERT_EQ(index.size(), 2u);
  EXPECT_EQ(index[0].type, SectionType::kStreamMeta);
  EXPECT_EQ(index[0].header_offset, 16u);
  EXPECT_EQ(index[0].payload_offset, 40u);
  EXPECT_EQ(index[1].type, SectionType::kWindow);
  // 8 (hour) + 6 doubles.
  EXPECT_EQ(index[1].payload_size, 8u + 6 * 8u);
  // The index addresses real file bytes: the window payload starts with its
  // hour, readable straight from the offset.
  const auto bytes = read_file(file.path());
  std::int64_t hour = -1;
  std::memcpy(&hour, bytes.data() + index[1].payload_offset, sizeof(hour));
  EXPECT_EQ(hour, 0);
}

TEST(SnapshotTest, AppendToExtendsExistingSnapshot) {
  TempFile file("append");
  {
    SnapshotWriter writer(file.path());
    writer.append_window(0, std::vector<double>{1.0});
  }
  {
    SnapshotWriter writer = SnapshotWriter::append_to(file.path());
    writer.append_window(1, std::vector<double>{2.0});
    writer.sync();
  }
  const MappedSnapshot snapshot(file.path());
  const auto windows = snapshot.windows();
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].hour, 0);
  EXPECT_EQ(windows[1].hour, 1);
}

TEST(SnapshotRecoveryTest, CleanFileIsKeptWhole) {
  TempFile file("recover_clean");
  {
    SnapshotWriter writer(file.path());
    writer.append_window(7, std::vector<double>{1.0, 2.0});
  }
  const auto before = read_file(file.path());
  const RecoveryResult result = recover_snapshot(file.path());
  EXPECT_FALSE(result.truncated);
  EXPECT_EQ(result.valid_sections, 1u);
  EXPECT_EQ(result.valid_bytes, before.size());
  ASSERT_TRUE(result.last_window_hour.has_value());
  EXPECT_EQ(*result.last_window_hour, 7);
  EXPECT_EQ(read_file(file.path()).size(), before.size());
}

TEST(SnapshotRecoveryTest, TornTailIsDroppedAndFileBecomesReadable) {
  TempFile file("recover_torn");
  {
    SnapshotWriter writer(file.path());
    writer.append_window(0, std::vector<double>{1.0, 2.0});
    writer.append_window(1, std::vector<double>{3.0, 4.0});
  }
  const auto whole = read_file(file.path());
  // A crash mid-append leaves a partial third section on disk.
  for (const std::size_t extra : {std::size_t{1}, std::size_t{13},
                                  std::size_t{24}, std::size_t{31}}) {
    auto torn = whole;
    for (std::size_t i = 0; i < extra; ++i) {
      torn.push_back(static_cast<std::uint8_t>(0xA0 + i));
    }
    write_file(file.path(), torn);
    EXPECT_THROW((void)MappedSnapshot(file.path()), SnapshotError);
    const RecoveryResult result = recover_snapshot(file.path());
    EXPECT_TRUE(result.truncated);
    EXPECT_EQ(result.valid_sections, 2u);
    EXPECT_EQ(result.valid_bytes, whole.size());
    ASSERT_TRUE(result.last_window_hour.has_value());
    EXPECT_EQ(*result.last_window_hour, 1);
    // After recovery the snapshot opens cleanly with both windows intact.
    const MappedSnapshot snapshot(file.path());
    EXPECT_EQ(snapshot.windows().size(), 2u);
  }
}

TEST(SnapshotRecoveryTest, CorruptMiddleSectionDropsTail) {
  TempFile file("recover_middle");
  std::size_t first_section_end = 0;
  {
    SnapshotWriter writer(file.path());
    writer.append_window(0, std::vector<double>{1.0, 2.0});
    writer.sync();
    first_section_end = read_file(file.path()).size();
    writer.append_window(1, std::vector<double>{3.0, 4.0});
    writer.append_window(2, std::vector<double>{5.0, 6.0});
  }
  auto bytes = read_file(file.path());
  bytes[first_section_end + 30] ^= 0xFF;  // corrupt window 1's payload
  write_file(file.path(), bytes);
  const RecoveryResult result = recover_snapshot(file.path());
  EXPECT_TRUE(result.truncated);
  EXPECT_EQ(result.valid_sections, 1u);
  EXPECT_EQ(result.valid_bytes, first_section_end);
  ASSERT_TRUE(result.last_window_hour.has_value());
  EXPECT_EQ(*result.last_window_hour, 0);
  const MappedSnapshot snapshot(file.path());
  ASSERT_EQ(snapshot.windows().size(), 1u);
  EXPECT_EQ(snapshot.windows()[0].hour, 0);
}

TEST(SnapshotRecoveryTest, UnusableHeaderThrows) {
  TempFile file("recover_header");
  write_file(file.path(), std::vector<std::uint8_t>{1, 2, 3});
  EXPECT_THROW((void)recover_snapshot(file.path()), SnapshotError);
}

TEST(SnapshotSectionIndexTest, FindSectionLocatesFirstOfEachType) {
  TempFile file("find_section.snap");
  {
    SnapshotWriter writer(file.path());
    const ml::Matrix m = random_matrix(3, 2, 1);
    writer.append_matrix(m);
    const std::vector<std::uint32_t> ids{10, 11, 12};
    writer.append_stream_meta(ids, 2, 4);
    const std::vector<double> cells(6, 1.0);
    writer.append_window(0, cells);
    writer.append_window(1, cells);
    writer.sync();
  }
  MappedSnapshot snap(file.path());
  ASSERT_EQ(snap.sections().size(), 4u);

  const SectionView* matrix = snap.find_section(SectionType::kMatrix);
  ASSERT_NE(matrix, nullptr);
  EXPECT_EQ(matrix, &snap.sections()[0]);
  const SectionView* meta = snap.find_section(SectionType::kStreamMeta);
  ASSERT_NE(meta, nullptr);
  EXPECT_EQ(meta, &snap.sections()[1]);
  // Two kWindow sections: find_section returns the *first*.
  const SectionView* window = snap.find_section(SectionType::kWindow);
  ASSERT_NE(window, nullptr);
  EXPECT_EQ(window, &snap.sections()[2]);
  EXPECT_EQ(snap.find_section(SectionType::kCoverage), nullptr);
  EXPECT_EQ(snap.find_section(SectionType::kQuarantine), nullptr);

  // The typed accessors route through the same index.
  EXPECT_TRUE(snap.matrix().has_value());
  EXPECT_TRUE(snap.stream_meta().has_value());
  EXPECT_FALSE(snap.coverage().has_value());
}

TEST(SnapshotSealHookTest, HookFiresPerBarrierWithSectionCounts) {
  TempFile file("seal_hook.snap");
  SnapshotWriter writer(file.path());
  std::vector<SealEvent> events;
  writer.set_seal_hook([&](const SealEvent& e) { events.push_back(e); });

  const std::vector<std::uint32_t> ids{1};
  writer.append_stream_meta(ids, 2, 4);
  writer.sync();
  const std::vector<double> cells(2, 3.0);
  writer.append_window(0, cells);
  writer.append_window(1, cells);
  writer.sync();
  writer.sync();  // Barrier with nothing new still fires (0 sections).

  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].path, file.path());
  EXPECT_EQ(events[0].seals, 1u);
  EXPECT_EQ(events[0].sections_sealed, 1u);
  EXPECT_EQ(events[1].seals, 2u);
  EXPECT_EQ(events[1].sections_sealed, 2u);
  EXPECT_EQ(events[2].seals, 3u);
  EXPECT_EQ(events[2].sections_sealed, 0u);

  // Removing the hook stops the callbacks.
  writer.set_seal_hook(nullptr);
  writer.append_window(2, cells);
  writer.sync();
  EXPECT_EQ(events.size(), 3u);
}

}  // namespace
}  // namespace icn::store
