// CRC32C backend parity: the SSE4.2 hardware path and the slicing-by-8 table
// path compute the same standard Castagnoli CRC — over every short length
// and alignment, across incremental chunking, and across a multi-gigabyte
// stream that pushes the running length past 2^31.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "store/crc32c.h"
#include "util/rng.h"
#include "util/simd.h"

namespace icn::store {
namespace {

std::vector<std::uint8_t> ascii(const char* s) {
  std::vector<std::uint8_t> out;
  for (const char* p = s; *p != '\0'; ++p) {
    out.push_back(static_cast<std::uint8_t>(*p));
  }
  return out;
}

TEST(Crc32cTest, KnownAnswerVectors) {
  // The standard CRC32C check value plus the classic leveldb vectors — both
  // backends are pinned to the same published function.
  EXPECT_EQ(crc32c({}), 0u);
  EXPECT_EQ(crc32c(ascii("123456789")), 0xE3069283u);
  const std::vector<std::uint8_t> zeros(32, 0);
  EXPECT_EQ(crc32c(zeros), 0x8A9136AAu);
  const std::vector<std::uint8_t> ones(32, 0xFF);
  EXPECT_EQ(crc32c(ones), 0x62A8AB43u);
  std::vector<std::uint8_t> ramp(32);
  std::iota(ramp.begin(), ramp.end(), std::uint8_t{0});
  EXPECT_EQ(crc32c(ramp), 0x46DD794Eu);
}

TEST(Crc32cTest, BackendNameIsConsistent) {
  const std::string backend = crc32c_backend();
  EXPECT_TRUE(backend == "sse4.2" || backend == "table") << backend;
  if (!icn::util::cpu_supports_crc32c()) EXPECT_EQ(backend, "table");
}

TEST(Crc32cTest, HwMatchesTableEveryLengthAndAlignment) {
  if (!icn::util::cpu_supports_crc32c()) {
    GTEST_SKIP() << "no SSE4.2 crc32 instruction on this CPU";
  }
  icn::util::Rng rng(808);
  std::vector<std::uint8_t> buf(64 + 16);
  for (auto& b : buf) b = static_cast<std::uint8_t>(rng.next_u64() & 0xFF);
  // Every length 0..64 exercises the hardware path's align-up prologue,
  // 8-byte body, and byte epilogue; every start offset 0..7 exercises each
  // prologue length.
  for (std::size_t len = 0; len <= 64; ++len) {
    for (std::size_t off = 0; off < 8; ++off) {
      const std::span<const std::uint8_t> bytes(buf.data() + off, len);
      EXPECT_EQ(detail::crc32c_hw_extend(0, bytes),
                detail::crc32c_table_extend(0, bytes))
          << "len " << len << " off " << off;
      // And from a nonzero running value.
      EXPECT_EQ(detail::crc32c_hw_extend(0xDEADBEEFu, bytes),
                detail::crc32c_table_extend(0xDEADBEEFu, bytes))
          << "len " << len << " off " << off;
    }
  }
}

TEST(Crc32cTest, IncrementalChunkingMatchesOneShot) {
  icn::util::Rng rng(55);
  std::vector<std::uint8_t> data(10'000);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64() & 0xFF);
  const std::uint32_t whole = crc32c(data);
  for (const std::size_t cut : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                                std::size_t{4096}, data.size() - 1,
                                data.size()}) {
    const std::uint32_t part1 =
        crc32c_extend(0, std::span<const std::uint8_t>(data.data(), cut));
    const std::uint32_t joined = crc32c_extend(
        part1,
        std::span<const std::uint8_t>(data.data() + cut, data.size() - cut));
    EXPECT_EQ(joined, whole) << "cut " << cut;
  }
}

TEST(Crc32cTest, MultiGigabyteChunkedStreamParity) {
  if (!icn::util::cpu_supports_crc32c()) {
    GTEST_SKIP() << "no SSE4.2 crc32 instruction on this CPU";
  }
  // Stream 2 GiB + 9 bytes through both backends in 8 MiB chunks: the
  // running byte count crosses 2^31, catching any 32-bit length arithmetic,
  // and the chunk joins exercise incremental extension at scale without
  // allocating gigabytes.
  constexpr std::size_t kChunk = 8u << 20;
  constexpr std::size_t kChunks = 256;  // 2 GiB total
  std::vector<std::uint8_t> chunk(kChunk);
  icn::util::Rng rng(1234);
  for (auto& b : chunk) b = static_cast<std::uint8_t>(rng.next_u64() & 0xFF);
  std::uint32_t hw = 0, table = 0;
  for (std::size_t c = 0; c < kChunks; ++c) {
    hw = detail::crc32c_hw_extend(hw, chunk);
    table = detail::crc32c_table_extend(table, chunk);
  }
  const std::span<const std::uint8_t> tail(chunk.data(), 9);
  hw = detail::crc32c_hw_extend(hw, tail);
  table = detail::crc32c_table_extend(table, tail);
  EXPECT_EQ(hw, table);
}

}  // namespace
}  // namespace icn::store
