#include "quality/ledger.h"

#include <gtest/gtest.h>

#include "quality/validate.h"

namespace {

using icn::probe::ServiceSession;
using icn::quality::Action;
using icn::quality::Defect;
using icn::quality::Field;
using icn::quality::QuarantineLedger;
using icn::quality::RecordValidator;
using icn::quality::ValidatorParams;
using icn::quality::Verdict;

ValidatorParams params() {
  ValidatorParams p;
  p.antenna_ids = {100, 101};
  p.num_services = 4;
  p.num_hours = 24;
  return p;
}

TEST(QuarantineLedgerTest, AcceptedRecordsCountButDoNotAppend) {
  QuarantineLedger ledger;
  ledger.begin_batch(0, 7, 3);
  Verdict clean;
  ledger.log(0, clean);
  ledger.log(1, clean);
  EXPECT_TRUE(ledger.entries().empty());
  EXPECT_EQ(ledger.stats().records_seen, 2u);
  EXPECT_EQ(ledger.stats().accepted, 2u);
}

TEST(QuarantineLedgerTest, EntriesCarryBatchProvenance) {
  const RecordValidator validator(params());
  QuarantineLedger ledger;
  ledger.begin_batch(2, 17, 5);
  ServiceSession bad{.antenna_id = 999, .service = 0, .hour = 5,
                     .down_bytes = 1.0, .up_bytes = 1.0};
  ledger.log(4, validator.validate(bad, 5));
  ASSERT_EQ(ledger.entries().size(), 1u);
  const auto& e = ledger.entries()[0];
  EXPECT_EQ(e.probe, 2u);
  EXPECT_EQ(e.sequence, 17u);
  EXPECT_EQ(e.hour, 5);
  EXPECT_EQ(e.record, 4u);
  EXPECT_EQ(e.field, Field::kAntennaId);
  EXPECT_EQ(e.defect, Defect::kUnknownAntenna);
  EXPECT_EQ(e.action, Action::kRejected);
  EXPECT_EQ(e.observed, 999.0);
}

TEST(QuarantineLedgerTest, StatsBucketByDefect) {
  const RecordValidator validator(params());
  QuarantineLedger ledger;
  ledger.begin_batch(0, 0, 2);
  ServiceSession skewed{.antenna_id = 100, .service = 1, .hour = 9,
                        .down_bytes = 1.0, .up_bytes = 1.0};
  ledger.log(0, validator.validate(skewed, 2));
  ServiceSession alien{.antenna_id = 100, .service = 9, .hour = 2,
                       .down_bytes = 1.0, .up_bytes = 1.0};
  ledger.log(1, validator.validate(alien, 2));
  ServiceSession fine{.antenna_id = 101, .service = 1, .hour = 2,
                      .down_bytes = 1.0, .up_bytes = 1.0};
  ledger.log(2, validator.validate(fine, 2));
  const auto& s = ledger.stats();
  EXPECT_EQ(s.records_seen, 3u);
  EXPECT_EQ(s.accepted, 1u);
  EXPECT_EQ(s.repaired, 1u);
  EXPECT_EQ(s.rejected, 1u);
  EXPECT_EQ(s.by_defect[static_cast<std::size_t>(Defect::kClockSkew)], 1u);
  EXPECT_EQ(
      s.by_defect[static_cast<std::size_t>(Defect::kServiceOutOfAlphabet)],
      1u);
}

TEST(QuarantineLedgerTest, EqualInputsProduceEqualLedgers) {
  const RecordValidator validator(params());
  const auto run = [&] {
    QuarantineLedger ledger;
    ledger.begin_batch(1, 3, 4);
    ServiceSession skewed{.antenna_id = 100, .service = 1, .hour = 6,
                          .down_bytes = -2.0e6, .up_bytes = 1.0};
    ledger.log(0, validator.validate(skewed, 4));
    ServiceSession alien{.antenna_id = 7, .service = 1, .hour = 4,
                         .down_bytes = 1.0, .up_bytes = 1.0};
    ledger.log(1, validator.validate(alien, 4));
    return ledger;
  };
  const QuarantineLedger a = run();
  const QuarantineLedger b = run();
  EXPECT_TRUE(a == b);
  EXPECT_EQ(to_text(a), to_text(b));
}

TEST(QuarantineLedgerTest, TextFormatIsStable) {
  QuarantineLedger ledger;
  ledger.begin_batch(1, 3, 4);
  Verdict repaired;
  repaired.action = Action::kRepaired;
  repaired.field = Field::kHour;
  repaired.defect = Defect::kClockSkew;
  repaired.observed = 6.0;
  repaired.repaired_to = 4.0;
  ledger.log(0, repaired);
  const std::string text = to_text(ledger);
  EXPECT_NE(text.find("probe=1 seq=3 hour=4 rec=0 repaired hour clock_skew"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("seen=1 accepted=0 repaired=1 rejected=0"),
            std::string::npos)
      << text;
}

}  // namespace
