#include "quality/validate.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/error.h"

namespace {

using icn::probe::ServiceSession;
using icn::quality::Action;
using icn::quality::Defect;
using icn::quality::Field;
using icn::quality::RecordValidator;
using icn::quality::ValidatorParams;
using icn::quality::Verdict;

ValidatorParams study_params() {
  ValidatorParams p;
  p.antenna_ids = {100, 101, 102, 200, 201};
  p.num_services = 6;
  p.num_hours = 48;
  return p;
}

ServiceSession clean_record() {
  return ServiceSession{.antenna_id = 101,
                        .service = 3,
                        .hour = 12,
                        .down_bytes = 5.0e6,
                        .up_bytes = 1.0e6};
}

TEST(RecordValidatorTest, AcceptsCleanRecordUntouched) {
  const RecordValidator validator(study_params());
  ServiceSession record = clean_record();
  const ServiceSession before = record;
  const Verdict v = validator.validate(record, 12);
  EXPECT_EQ(v.action, Action::kAccepted);
  EXPECT_EQ(v.defect, Defect::kNone);
  EXPECT_EQ(record.antenna_id, before.antenna_id);
  EXPECT_EQ(record.hour, before.hour);
  EXPECT_EQ(record.down_bytes, before.down_bytes);
  EXPECT_EQ(record.up_bytes, before.up_bytes);
}

TEST(RecordValidatorTest, RejectsUnknownAntennaUntouched) {
  const RecordValidator validator(study_params());
  ServiceSession record = clean_record();
  record.antenna_id = 0x80000065;  // High-bit-flipped 101.
  const ServiceSession before = record;
  const Verdict v = validator.validate(record, 12);
  EXPECT_EQ(v.action, Action::kRejected);
  EXPECT_EQ(v.field, Field::kAntennaId);
  EXPECT_EQ(v.defect, Defect::kUnknownAntenna);
  EXPECT_EQ(v.observed, static_cast<double>(before.antenna_id));
  EXPECT_EQ(record.antenna_id, before.antenna_id);  // Fatal => untouched.
}

TEST(RecordValidatorTest, EmptyRosterAcceptsAnyAntenna) {
  ValidatorParams p = study_params();
  p.antenna_ids.clear();
  const RecordValidator validator(p);
  ServiceSession record = clean_record();
  record.antenna_id = 0xDEADBEEF;
  EXPECT_EQ(validator.validate(record, 12).action, Action::kAccepted);
}

TEST(RecordValidatorTest, RejectsServiceOutOfAlphabet) {
  const RecordValidator validator(study_params());
  ServiceSession record = clean_record();
  record.service = 6;  // == num_services
  const Verdict v = validator.validate(record, 12);
  EXPECT_EQ(v.action, Action::kRejected);
  EXPECT_EQ(v.field, Field::kService);
  EXPECT_EQ(v.defect, Defect::kServiceOutOfAlphabet);
}

TEST(RecordValidatorTest, RepairsClockSkewToBatchHour) {
  const RecordValidator validator(study_params());
  ServiceSession record = clean_record();
  record.hour = 15;  // Skewed; batch says 12.
  const Verdict v = validator.validate(record, 12);
  EXPECT_EQ(v.action, Action::kRepaired);
  EXPECT_EQ(v.field, Field::kHour);
  EXPECT_EQ(v.defect, Defect::kClockSkew);
  EXPECT_EQ(v.observed, 15.0);
  EXPECT_EQ(v.repaired_to, 12.0);
  EXPECT_EQ(record.hour, 12);
}

TEST(RecordValidatorTest, RejectsHourOutsideStudy) {
  const RecordValidator validator(study_params());
  ServiceSession record = clean_record();
  record.hour = 48;  // == num_hours; cannot be attributed to any slot.
  const Verdict v = validator.validate(record, 12);
  EXPECT_EQ(v.action, Action::kRejected);
  EXPECT_EQ(v.defect, Defect::kHourOutOfStudy);
  EXPECT_EQ(record.hour, 48);

  record = clean_record();
  record.hour = -3;
  EXPECT_EQ(validator.validate(record, 12).defect, Defect::kHourOutOfStudy);
}

TEST(RecordValidatorTest, SkewRejectionWhenRepairDisabled) {
  ValidatorParams p = study_params();
  p.repair_clock_skew = false;
  const RecordValidator validator(p);
  ServiceSession record = clean_record();
  record.hour = 15;
  const Verdict v = validator.validate(record, 12);
  EXPECT_EQ(v.action, Action::kRejected);
  EXPECT_EQ(v.defect, Defect::kClockSkew);
  EXPECT_EQ(record.hour, 15);
}

TEST(RecordValidatorTest, RepairsSignFlippedVolumeExactly) {
  const RecordValidator validator(study_params());
  ServiceSession record = clean_record();
  record.down_bytes = -5.0e6;
  const Verdict v = validator.validate(record, 12);
  EXPECT_EQ(v.action, Action::kRepaired);
  EXPECT_EQ(v.field, Field::kDownBytes);
  EXPECT_EQ(v.defect, Defect::kNegativeVolume);
  // The repair is the exact inverse of a sign flip: bits restored.
  EXPECT_EQ(record.down_bytes, 5.0e6);
  EXPECT_EQ(record.up_bytes, 1.0e6);
}

TEST(RecordValidatorTest, RejectsNonFiniteVolumes) {
  const RecordValidator validator(study_params());
  for (const double bad : {std::numeric_limits<double>::quiet_NaN(),
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity()}) {
    ServiceSession record = clean_record();
    record.up_bytes = bad;
    const Verdict v = validator.validate(record, 12);
    EXPECT_EQ(v.action, Action::kRejected);
    EXPECT_EQ(v.field, Field::kUpBytes);
    EXPECT_EQ(v.defect, Defect::kNonFiniteVolume);
  }
}

TEST(RecordValidatorTest, RejectsVolumeOverflow) {
  const RecordValidator validator(study_params());
  ServiceSession record = clean_record();
  record.down_bytes = 2.0e12;  // Above the 1 TB default ceiling.
  const Verdict v = validator.validate(record, 12);
  EXPECT_EQ(v.action, Action::kRejected);
  EXPECT_EQ(v.defect, Defect::kVolumeOverflow);
}

TEST(RecordValidatorTest, FatalDefectWinsOverRepairableOne) {
  const RecordValidator validator(study_params());
  ServiceSession record = clean_record();
  record.hour = 15;            // Repairable skew...
  record.up_bytes =            // ...but also a fatal NaN.
      std::numeric_limits<double>::quiet_NaN();
  const Verdict v = validator.validate(record, 12);
  EXPECT_EQ(v.action, Action::kRejected);
  EXPECT_EQ(v.defect, Defect::kNonFiniteVolume);
  EXPECT_EQ(record.hour, 15);  // No partial repair on a rejected record.
}

TEST(RecordValidatorTest, MultipleRepairsReportFirstDefect) {
  const RecordValidator validator(study_params());
  ServiceSession record = clean_record();
  record.hour = 15;
  record.down_bytes = -5.0e6;
  const Verdict v = validator.validate(record, 12);
  EXPECT_EQ(v.action, Action::kRepaired);
  EXPECT_EQ(v.field, Field::kHour);  // Field order: hour before volumes.
  EXPECT_EQ(v.defect, Defect::kClockSkew);
  EXPECT_EQ(record.hour, 12);
  EXPECT_EQ(record.down_bytes, 5.0e6);  // Both repairs still applied.
}

TEST(RecordValidatorTest, SignFlipBeyondCeilingIsFatal) {
  const RecordValidator validator(study_params());
  ServiceSession record = clean_record();
  record.down_bytes = -2.0e12;  // Negating would still overflow.
  const Verdict v = validator.validate(record, 12);
  EXPECT_EQ(v.action, Action::kRejected);
  EXPECT_EQ(v.defect, Defect::kNegativeVolume);
}

TEST(RecordValidatorTest, ValidatesParams) {
  ValidatorParams p = study_params();
  p.max_volume_bytes = 0.0;
  EXPECT_THROW(RecordValidator{p}, icn::util::PreconditionError);
}

TEST(RecordValidatorTest, DeterministicAcrossCalls) {
  const RecordValidator validator(study_params());
  for (int trial = 0; trial < 3; ++trial) {
    ServiceSession record = clean_record();
    record.hour = 20;
    record.up_bytes = -1.0e6;
    const Verdict v = validator.validate(record, 12);
    EXPECT_EQ(v.action, Action::kRepaired);
    EXPECT_EQ(v.defect, Defect::kClockSkew);
    EXPECT_EQ(record.hour, 12);
    EXPECT_EQ(record.up_bytes, 1.0e6);
  }
}

}  // namespace
