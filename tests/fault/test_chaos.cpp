// Chaos soak: a fixed-seed FaultPlan sweep (dropout x duplication x reorder x
// skew x truncation x transient failures) over a 4-probe plant, asserting
//  * full reproducibility — two equal-seed runs produce identical fault
//    ledgers, supervision event logs, quarantine decisions, merged tensors,
//    and coverage masks;
//  * convergence — wherever coverage is complete the supervisor's windows and
//    totals are bit-identical to a fault-free run, and the uncovered cells
//    are exactly the injected dropout windows, nothing more and nothing less.
// Registered under the `chaos` ctest label (see tests/CMakeLists.txt).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "fault/corrupt.h"
#include "fault/feed.h"
#include "fault/plan.h"
#include "stream/ingest.h"
#include "stream/supervise.h"
#include "util/rng.h"

namespace icn::fault {
namespace {

constexpr std::size_t kProbes = 4;
constexpr std::size_t kAntennasPerProbe = 3;
constexpr std::size_t kServices = 6;
constexpr std::int64_t kHours = 48;

class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(::testing::TempDir() + "icn_chaos_" +
              std::to_string(::getpid()) + "_" + name) {
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::vector<std::uint32_t> probe_ids(std::size_t probe) {
  std::vector<std::uint32_t> ids;
  for (std::size_t a = 0; a < kAntennasPerProbe; ++a) {
    ids.push_back(static_cast<std::uint32_t>(100 * probe + a));
  }
  return ids;
}

/// Deterministic traffic with at least one record per (antenna, hour), so
/// every non-dropped hour materializes a window.
std::vector<probe::ServiceSession> probe_traffic(std::size_t probe,
                                                 std::uint64_t seed) {
  icn::util::Rng rng(icn::util::derive_seed(seed, probe));
  const auto ids = probe_ids(probe);
  std::vector<probe::ServiceSession> out;
  for (std::int64_t h = 0; h < kHours; ++h) {
    for (const std::uint32_t id : ids) {
      const std::size_t n = 1 + rng.uniform_index(3);
      for (std::size_t i = 0; i < n; ++i) {
        probe::ServiceSession s;
        s.antenna_id = id;
        s.service = rng.uniform_index(kServices);
        s.hour = h;
        s.down_bytes = rng.uniform(1.0e3, 4.0e6);
        s.up_bytes = rng.uniform(1.0e2, 4.0e5);
        out.push_back(s);
      }
    }
  }
  return out;
}

FaultPlanParams sweep_params(std::uint64_t seed) {
  FaultPlanParams params;
  params.seed = seed;
  params.num_probes = kProbes;
  params.num_hours = kHours;
  params.dropout_rate = 0.06;
  params.dropout_max_hours = 3;
  params.transient_rate = 0.10;
  params.transient_max_failures = 2;  // < max_retries: never quarantines
  params.duplicate_rate = 0.15;
  params.reorder_rate = 0.20;
  params.skew_rate = 0.10;
  params.skew_max_delay = 2;
  params.truncate_rate = 0.10;
  return params;
}

stream::SupervisorParams supervisor_params() {
  stream::SupervisorParams params;
  params.num_services = kServices;
  params.num_hours = kHours;
  params.num_shards = 2;
  // Generous: must cover the worst skew delay plus dropout windows the
  // held batch waits through. ChaosRun asserts late_dropped == 0, so an
  // insufficient value fails loudly instead of silently skewing tensors.
  params.allowed_lateness = 12;
  params.backoff.initial_ticks = 1;
  params.backoff.max_ticks = 4;
  params.backoff.max_retries = 6;
  params.stall_timeout_ticks = 4;
  // Truncated deliveries are corrupt strikes by design; the sweep is about
  // convergence, not the circuit breaker (tested in test_supervisor.cpp).
  params.corrupt_strikes = 1000;
  return params;
}

struct ChaosRun {
  FaultLedger ledger;
  std::vector<stream::SupervisorEvent> events;
  stream::MergedStudy study;
  std::vector<std::vector<std::uint8_t>> covered;  // per probe
  std::vector<stream::FeedState> states;
  std::vector<std::map<std::int64_t, std::vector<double>>> windows;
};

ChaosRun run_chaos(std::uint64_t seed) {
  const FaultPlan plan(sweep_params(seed));
  FaultLedger ledger;
  std::vector<std::unique_ptr<FaultyFeed>> feeds;
  std::vector<stream::FeedSpec> specs;
  for (std::size_t p = 0; p < kProbes; ++p) {
    const auto script =
        stream::hourly_script(probe_traffic(p, seed), kHours);
    feeds.push_back(
        std::make_unique<FaultyFeed>(p, script, &plan, &ledger));
    specs.push_back({"probe-" + std::to_string(p), probe_ids(p),
                     feeds.back().get(), ""});
  }
  stream::FeedSupervisor supervisor(supervisor_params(), std::move(specs));
  supervisor.run();

  ChaosRun run;
  run.ledger = std::move(ledger);
  run.events = supervisor.events();
  run.study = supervisor.merge();
  for (std::size_t p = 0; p < kProbes; ++p) {
    const auto covered = supervisor.covered(p);
    run.covered.emplace_back(covered.begin(), covered.end());
    const auto stats = supervisor.stats(p);
    run.states.push_back(stats.state);
    // Self-check: every fault class in the sweep is benign except dropout,
    // so nothing may be lost to lateness or address unknown antennas.
    EXPECT_EQ(stats.late_dropped, 0u) << "probe " << p;
    EXPECT_EQ(stats.untracked_dropped, 0u) << "probe " << p;
    std::map<std::int64_t, std::vector<double>> by_hour;
    for (const auto& window : supervisor.windows(p)) {
      by_hour.emplace(window.hour, window.cells);
    }
    run.windows.push_back(std::move(by_hour));
  }
  return run;
}

/// Fault-free reference: per-probe windows and totals via plain ingest.
struct CleanRun {
  std::vector<std::map<std::int64_t, std::vector<double>>> windows;
  std::vector<ml::Matrix> totals;
};

CleanRun run_clean(std::uint64_t seed) {
  CleanRun run;
  for (std::size_t p = 0; p < kProbes; ++p) {
    stream::IngestParams params;
    params.antenna_ids = probe_ids(p);
    params.num_services = kServices;
    params.num_hours = kHours;
    stream::StreamIngestor ingest(params);
    for (const auto& batch :
         stream::hourly_script(probe_traffic(p, seed), kHours)) {
      ingest.push(batch.records);
    }
    ingest.finish();
    std::map<std::int64_t, std::vector<double>> by_hour;
    for (auto& window : ingest.take_closed()) {
      by_hour.emplace(window.hour, std::move(window.cells));
    }
    run.windows.push_back(std::move(by_hour));
    run.totals.push_back(ingest.traffic_matrix());
  }
  return run;
}

TEST(ChaosSweepTest, EqualSeedsReproduceEverythingVerbatim) {
  for (const std::uint64_t seed : {101ull, 202ull}) {
    const ChaosRun a = run_chaos(seed);
    const ChaosRun b = run_chaos(seed);
    EXPECT_EQ(a.ledger, b.ledger) << "seed " << seed;
    EXPECT_EQ(a.events, b.events) << "seed " << seed;
    EXPECT_EQ(a.states, b.states) << "seed " << seed;
    EXPECT_EQ(a.covered, b.covered) << "seed " << seed;
    EXPECT_EQ(a.study.coverage, b.study.coverage) << "seed " << seed;
    ASSERT_EQ(a.study.traffic.data().size(), b.study.traffic.data().size());
    for (std::size_t i = 0; i < a.study.traffic.data().size(); ++i) {
      ASSERT_EQ(a.study.traffic.data()[i], b.study.traffic.data()[i])
          << "seed " << seed << " slot " << i;
    }
    // The sweep must actually exercise the taxonomy: at least three fault
    // classes injected, or the test is vacuous.
    std::set<FaultKind> kinds;
    for (const auto& event : a.ledger) kinds.insert(event.kind);
    EXPECT_GE(kinds.size(), 3u) << "seed " << seed;
  }
}

TEST(ChaosSweepTest, ConvergesToFaultFreeRunOutsideInjectedGaps) {
  const std::uint64_t seed = 101;
  const FaultPlan plan(sweep_params(seed));
  const ChaosRun chaos = run_chaos(seed);
  const CleanRun clean = run_clean(seed);

  for (std::size_t p = 0; p < kProbes; ++p) {
    // Coverage is exactly the complement of the injected dropout windows.
    for (std::int64_t h = 0; h < kHours; ++h) {
      EXPECT_EQ(chaos.covered[p][static_cast<std::size_t>(h)] != 0,
                !plan.dropped(p, h))
          << "probe " << p << " hour " << h;
    }
    // Windows: bit-identical to the fault-free run for every surviving
    // hour, absent for every dropped hour.
    const auto& got = chaos.windows[p];
    const auto& want = clean.windows[p];
    for (std::int64_t h = 0; h < kHours; ++h) {
      const auto got_it = got.find(h);
      if (plan.dropped(p, h)) {
        EXPECT_EQ(got_it, got.end())
            << "probe " << p << " dropped hour " << h << " has a window";
        continue;
      }
      const auto want_it = want.find(h);
      ASSERT_NE(want_it, want.end()) << "probe " << p << " hour " << h;
      ASSERT_NE(got_it, got.end()) << "probe " << p << " hour " << h;
      ASSERT_EQ(got_it->second.size(), want_it->second.size());
      for (std::size_t i = 0; i < got_it->second.size(); ++i) {
        ASSERT_EQ(got_it->second[i], want_it->second[i])
            << "probe " << p << " hour " << h << " cell " << i;
      }
    }
    // Fully-covered probes also match the fault-free totals bit for bit.
    bool complete = true;
    for (std::int64_t h = 0; h < kHours; ++h) {
      if (plan.dropped(p, h)) complete = false;
    }
    if (complete) {
      for (std::size_t r = 0; r < kAntennasPerProbe; ++r) {
        for (std::size_t j = 0; j < kServices; ++j) {
          ASSERT_EQ(chaos.study.traffic.at(p * kAntennasPerProbe + r, j),
                    clean.totals[p].at(r, j))
              << "probe " << p;
        }
      }
    }
  }

  // The merged mask's gap ranges match the injected windows exactly.
  for (std::size_t p = 0; p < kProbes; ++p) {
    std::vector<stream::HourRange> expected;
    std::int64_t h = 0;
    while (h < kHours) {
      if (plan.dropped(p, h)) {
        std::int64_t end = h;
        while (end < kHours && plan.dropped(p, end)) ++end;
        expected.push_back({h, end});
        h = end;
      } else {
        ++h;
      }
    }
    for (std::size_t r = 0; r < kAntennasPerProbe; ++r) {
      EXPECT_EQ(chaos.study.coverage.gaps(p * kAntennasPerProbe + r),
                expected)
          << "probe " << p << " row " << r;
    }
  }
}

TEST(ChaosSweepTest, BitFlippedCheckpointIsQuarantinedByRecovery) {
  const std::uint64_t seed = 7;
  FaultPlanParams plan_params;
  plan_params.seed = seed;
  plan_params.num_probes = 1;
  plan_params.num_hours = kHours;
  plan_params.bitflip_rate = 1.0;  // the only fault: silent disk corruption
  const FaultPlan plan(plan_params);

  TempFile snap("bitflip.snap");
  const auto script = stream::hourly_script(probe_traffic(0, seed), kHours);
  stream::VectorFeed feed{script};
  stream::FeedSupervisor supervisor(
      supervisor_params(), {{"probe-0", probe_ids(0), &feed, snap.path()}});
  supervisor.run();
  const stream::MergedStudy live = supervisor.merge();
  EXPECT_TRUE(live.coverage.complete());

  FaultLedger ledger;
  ASSERT_TRUE(corrupt_snapshot(snap.path(), 0, plan, ledger));
  ASSERT_EQ(ledger.size(), 1u);
  EXPECT_EQ(ledger[0].kind, FaultKind::kBitFlip);
  const std::int64_t flipped_hour = ledger[0].hour;

  // The mapped reader refuses the damaged file outright...
  EXPECT_THROW((void)store::MappedSnapshot(snap.path()),
               store::SnapshotError);

  // ...while the durable merge recovers the valid prefix: hours before the
  // flipped window keep their bits, everything from it on is uncovered.
  const std::vector<std::string> paths = {snap.path()};
  const stream::MergedStudy merged = stream::merge_snapshots(paths);
  EXPECT_FALSE(merged.coverage.complete());
  for (std::int64_t h = 0; h < kHours; ++h) {
    for (std::size_t r = 0; r < kAntennasPerProbe; ++r) {
      EXPECT_EQ(merged.coverage.covered(r, h), h < flipped_hour)
          << "row " << r << " hour " << h;
    }
  }
  // Surviving totals equal the fault-free partial sums.
  const CleanRun clean = run_clean(seed);
  ml::Matrix expected(kAntennasPerProbe, kServices);
  for (const auto& [hour, cells] : clean.windows[0]) {
    if (hour >= flipped_hour) continue;
    stream::add_window_cells(expected, cells);
  }
  ASSERT_EQ(merged.traffic.rows(), expected.rows());
  for (std::size_t i = 0; i < expected.data().size(); ++i) {
    ASSERT_EQ(merged.traffic.data()[i], expected.data()[i]) << "slot " << i;
  }
}

TEST(ChaosSweepTest, PoisonedProbeQuarantinesAtTheSameTickEveryRun) {
  auto run_once = [] {
    FaultPlanParams plan_params;
    plan_params.seed = 5;
    plan_params.num_probes = 2;
    plan_params.num_hours = kHours;
    plan_params.poison_probe = 1;
    plan_params.poison_hour = 10;
    const FaultPlan plan(plan_params);
    FaultLedger ledger;
    std::vector<std::unique_ptr<FaultyFeed>> feeds;
    std::vector<stream::FeedSpec> specs;
    for (std::size_t p = 0; p < 2; ++p) {
      feeds.push_back(std::make_unique<FaultyFeed>(
          p, stream::hourly_script(probe_traffic(p, 5), kHours), &plan,
          &ledger));
      specs.push_back({"probe-" + std::to_string(p), probe_ids(p),
                       feeds.back().get(), ""});
    }
    auto params = supervisor_params();
    params.backoff.max_retries = 3;
    stream::FeedSupervisor supervisor(params, std::move(specs));
    supervisor.run();
    return std::tuple{supervisor.stats(1).state,
                      supervisor.stats(1).quarantine_reason,
                      supervisor.stats(1).quarantined_at_tick,
                      supervisor.stats(1).covered_hours, ledger};
  };
  const auto [state_a, reason_a, tick_a, covered_a, ledger_a] = run_once();
  const auto [state_b, reason_b, tick_b, covered_b, ledger_b] = run_once();
  EXPECT_EQ(state_a, stream::FeedState::kQuarantined);
  EXPECT_EQ(reason_a, stream::QuarantineReason::kRetriesExhausted);
  EXPECT_EQ(covered_a, 10);  // hours [0, 10) accepted before the poison
  EXPECT_EQ(state_b, state_a);
  EXPECT_EQ(reason_b, reason_a);
  EXPECT_EQ(tick_b, tick_a);
  EXPECT_EQ(covered_b, covered_a);
  EXPECT_EQ(ledger_b, ledger_a);
  // Exactly one poison event, logged once despite endless retries.
  std::size_t poisons = 0;
  for (const auto& event : ledger_a) {
    if (event.kind == FaultKind::kPoison) ++poisons;
  }
  EXPECT_EQ(poisons, 1u);
}

}  // namespace
}  // namespace icn::fault
