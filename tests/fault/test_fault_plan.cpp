// FaultPlan: seeded determinism, schedule structure (non-overlapping dropout
// windows, per-class bounds, no faults inside dropped hours), the faulty-feed
// wrapper's delivery semantics, and ledger formatting.
#include "fault/plan.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "fault/feed.h"
#include "stream/feed.h"
#include "util/error.h"

namespace icn::fault {
namespace {

FaultPlanParams busy_params(std::uint64_t seed) {
  FaultPlanParams params;
  params.seed = seed;
  params.num_probes = 3;
  params.num_hours = 72;
  params.dropout_rate = 0.10;
  params.transient_rate = 0.15;
  params.duplicate_rate = 0.15;
  params.reorder_rate = 0.15;
  params.skew_rate = 0.10;
  params.truncate_rate = 0.10;
  params.bitflip_rate = 0.5;
  return params;
}

TEST(FaultPlanTest, EqualSeedsGiveIdenticalSchedules) {
  const FaultPlan a(busy_params(42));
  const FaultPlan b(busy_params(42));
  for (std::size_t p = 0; p < 3; ++p) {
    for (std::int64_t h = 0; h < 72; ++h) {
      EXPECT_EQ(a.dropout_starting_at(p, h), b.dropout_starting_at(p, h));
      EXPECT_EQ(a.dropped(p, h), b.dropped(p, h));
      EXPECT_EQ(a.transient_failures(p, h), b.transient_failures(p, h));
      EXPECT_EQ(a.duplicated(p, h), b.duplicated(p, h));
      EXPECT_EQ(a.reordered(p, h), b.reordered(p, h));
      EXPECT_EQ(a.skew_delay(p, h), b.skew_delay(p, h));
      EXPECT_EQ(a.truncate_keep_frac(p, h), b.truncate_keep_frac(p, h));
      EXPECT_EQ(a.reorder_seed(p, h), b.reorder_seed(p, h));
    }
    EXPECT_EQ(a.bitflip(p).has_value(), b.bitflip(p).has_value());
  }
}

TEST(FaultPlanTest, DifferentSeedsGiveDifferentSchedules) {
  const FaultPlan a(busy_params(42));
  const FaultPlan b(busy_params(43));
  std::size_t differing = 0;
  for (std::size_t p = 0; p < 3; ++p) {
    for (std::int64_t h = 0; h < 72; ++h) {
      if (a.dropped(p, h) != b.dropped(p, h) ||
          a.duplicated(p, h) != b.duplicated(p, h) ||
          a.reordered(p, h) != b.reordered(p, h)) {
        ++differing;
      }
    }
  }
  EXPECT_GT(differing, 0u);
}

TEST(FaultPlanTest, DropoutWindowsAreBoundedAndNonOverlapping) {
  const FaultPlan plan(busy_params(7));
  for (std::size_t p = 0; p < 3; ++p) {
    std::int64_t inside = 0;  // hours remaining in the current window
    std::size_t windows = 0;
    for (std::int64_t h = 0; h < 72; ++h) {
      const std::int64_t len = plan.dropout_starting_at(p, h);
      if (len > 0) {
        ++windows;
        EXPECT_EQ(inside, 0) << "window starts inside another window";
        EXPECT_LE(len, 3);
        EXPECT_LE(h + len, 72);
        inside = len;
      }
      EXPECT_EQ(plan.dropped(p, h), inside > 0) << "probe " << p
                                                << " hour " << h;
      if (inside > 0) --inside;
    }
    EXPECT_GT(windows, 0u) << "rate 0.10 over 72 hours produced no window";
  }
}

TEST(FaultPlanTest, DroppedHoursCarryNoOtherFaults) {
  const FaultPlan plan(busy_params(7));
  for (std::size_t p = 0; p < 3; ++p) {
    for (std::int64_t h = 0; h < 72; ++h) {
      if (!plan.dropped(p, h)) continue;
      EXPECT_EQ(plan.transient_failures(p, h), 0);
      EXPECT_FALSE(plan.duplicated(p, h));
      EXPECT_FALSE(plan.reordered(p, h));
      EXPECT_EQ(plan.skew_delay(p, h), 0);
      EXPECT_FALSE(plan.truncate_keep_frac(p, h).has_value());
    }
  }
}

TEST(FaultPlanTest, PerClassBoundsHold) {
  const FaultPlan plan(busy_params(11));
  for (std::size_t p = 0; p < 3; ++p) {
    for (std::int64_t h = 0; h < 72; ++h) {
      const std::int64_t transients = plan.transient_failures(p, h);
      EXPECT_GE(transients, 0);
      EXPECT_LE(transients, 2);
      const std::int64_t skew = plan.skew_delay(p, h);
      EXPECT_GE(skew, 0);
      EXPECT_LE(skew, 2);
      if (const auto frac = plan.truncate_keep_frac(p, h)) {
        EXPECT_GE(*frac, 0.0);
        EXPECT_LT(*frac, 0.95);
      }
    }
    if (const auto flip = plan.bitflip(p)) {
      EXPECT_GE(flip->section_frac, 0.0);
      EXPECT_LT(flip->section_frac, 1.0);
      EXPECT_NE(flip->mask, 0);
      // Single-bit mask.
      EXPECT_EQ(flip->mask & (flip->mask - 1), 0);
    }
  }
}

TEST(FaultPlanTest, PoisonAppliesFromItsHourOn) {
  FaultPlanParams params;
  params.seed = 3;
  params.num_probes = 2;
  params.num_hours = 24;
  params.poison_probe = 1;
  params.poison_hour = 10;
  const FaultPlan plan(params);
  for (std::int64_t h = 0; h < 24; ++h) {
    EXPECT_FALSE(plan.poisoned(0, h));
    EXPECT_EQ(plan.poisoned(1, h), h >= 10);
  }
}

TEST(FaultPlanTest, PreconditionsEnforced) {
  FaultPlanParams bad;
  bad.num_probes = 0;
  bad.num_hours = 24;
  EXPECT_THROW(FaultPlan{bad}, icn::util::PreconditionError);
  bad.num_probes = 1;
  bad.num_hours = 0;
  EXPECT_THROW(FaultPlan{bad}, icn::util::PreconditionError);
  FaultPlanParams good;
  good.num_hours = 24;
  const FaultPlan plan(good);
  EXPECT_THROW((void)plan.dropped(1, 0), icn::util::PreconditionError);
  EXPECT_THROW((void)plan.dropped(0, 24), icn::util::PreconditionError);
}

TEST(FaultPlanTest, LedgerFormatsOneLinePerEvent) {
  const FaultLedger ledger = {{0, 5, FaultKind::kDropout, 2, 0},
                              {1, 9, FaultKind::kTruncate, 3, 7}};
  const std::string text = to_text(ledger);
  EXPECT_NE(text.find("probe=0 hour=5 dropout a=2 b=0"), std::string::npos);
  EXPECT_NE(text.find("probe=1 hour=9 truncate a=3 b=7"), std::string::npos);
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
}

TEST(ReorderTest, PreservesPerAntennaOrderAndMultiset) {
  std::vector<probe::ServiceSession> records;
  for (std::size_t i = 0; i < 30; ++i) {
    probe::ServiceSession s;
    s.antenna_id = static_cast<std::uint32_t>(i % 3);
    s.service = i;  // unique marker
    s.hour = 0;
    records.push_back(s);
  }
  auto shuffled = records;
  reorder_preserving_antenna_order(shuffled, 99);
  ASSERT_EQ(shuffled.size(), records.size());
  // Same multiset of markers.
  std::multiset<std::size_t> a, b;
  for (const auto& s : records) a.insert(s.service);
  for (const auto& s : shuffled) b.insert(s.service);
  EXPECT_EQ(a, b);
  // Per-antenna relative order intact: markers ascend within each antenna.
  for (std::uint32_t id = 0; id < 3; ++id) {
    std::size_t last = 0;
    bool first = true;
    for (const auto& s : shuffled) {
      if (s.antenna_id != id) continue;
      if (!first) EXPECT_GT(s.service, last);
      last = s.service;
      first = false;
    }
  }
  // Deterministic: same seed, same permutation.
  auto again = records;
  reorder_preserving_antenna_order(again, 99);
  for (std::size_t i = 0; i < again.size(); ++i) {
    EXPECT_EQ(again[i].service, shuffled[i].service);
  }
}

TEST(FaultyFeedTest, HealthyPlanDeliversScriptVerbatim) {
  FaultPlanParams params;
  params.num_probes = 1;
  params.num_hours = 4;
  const FaultPlan plan(params);
  FaultLedger ledger;
  std::vector<stream::FeedBatch> script;
  for (std::int64_t h = 0; h < 4; ++h) {
    stream::FeedBatch batch;
    batch.sequence = static_cast<std::uint64_t>(h);
    batch.hour = h;
    script.push_back(batch);
  }
  FaultyFeed feed(0, script, &plan, &ledger);
  for (std::int64_t h = 0; h < 4; ++h) {
    const auto result = feed.pull();
    ASSERT_EQ(result.status, stream::PullStatus::kBatch);
    EXPECT_EQ(result.batch.hour, h);
  }
  EXPECT_EQ(feed.pull().status, stream::PullStatus::kEndOfStream);
  EXPECT_TRUE(ledger.empty());
}

}  // namespace
}  // namespace icn::fault
