// Durability chaos: seeded disk faults under the Vfs seam (short writes,
// EIO, ENOSPC runs, fsync failures), the buffer-cache power-cut model,
// equal-seed ledger reproduction, crash-atomic publication, ENOSPC-degraded
// supervision, and the capstone ALICE-style crash-point sweep asserting
// bit-exact recovery convergence at every write/fsync boundary.
#include "fault/disk.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "fault/crashpoint.h"
#include "store/snapshot.h"
#include "store/vfs.h"
#include "stream/feed.h"
#include "stream/ingest.h"
#include "stream/supervise.h"
#include "util/error.h"
#include "util/rng.h"

namespace icn::fault {
namespace {

using icn::store::ScanReport;
using icn::store::SnapshotWriter;
using icn::store::Vfs;
using icn::store::VfsFile;

constexpr std::size_t kServices = 3;
constexpr std::int64_t kHours = 4;

class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(::testing::TempDir() + "icn_disk_" + std::to_string(::getpid()) +
              "_" + name) {
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::vector<std::uint8_t> read_all(const std::string& path) {
  std::vector<std::uint8_t> out;
  EXPECT_TRUE(read_file_bytes(icn::store::posix_vfs(), path, out)) << path;
  return out;
}

void write_exact(const std::string& path,
                 const std::vector<std::uint8_t>& bytes) {
  Vfs& v = icn::store::posix_vfs();
  VfsFile file = v.open(path, Vfs::OpenMode::kCreateTruncate);
  std::size_t at = 0;
  while (at < bytes.size()) {
    at += v.write(file, {bytes.data() + at, bytes.size() - at});
  }
  v.fsync(file);
  v.close(file);
}

/// Deterministic sessions covering every (antenna, hour) of one probe.
std::vector<probe::ServiceSession> probe_sessions(
    std::span<const std::uint32_t> ids, std::uint64_t seed) {
  icn::util::Rng rng(seed);
  std::vector<probe::ServiceSession> out;
  for (std::int64_t h = 0; h < kHours; ++h) {
    for (const std::uint32_t id : ids) {
      const std::size_t n = 1 + rng.uniform_index(2);
      for (std::size_t i = 0; i < n; ++i) {
        probe::ServiceSession s;
        s.antenna_id = id;
        s.service = rng.uniform_index(kServices);
        s.hour = h;
        s.down_bytes = rng.uniform(1.0e3, 5.0e6);
        s.up_bytes = rng.uniform(1.0e2, 5.0e5);
        out.push_back(s);
      }
    }
  }
  return out;
}

stream::SupervisorParams supervisor_params() {
  stream::SupervisorParams params;
  params.num_services = kServices;
  params.num_hours = kHours;
  params.allowed_lateness = 0;
  return params;
}

std::vector<double> window_cells(std::size_t antennas, double fill) {
  return std::vector<double>(antennas * kServices, fill);
}

// ---------------------------------------------------------------------------
// Plan determinism

TEST(DiskFaultPlanTest, EqualSeedsReproduceEveryDecision) {
  DiskFaultPlanParams params;
  params.seed = 4242;
  params.short_write_rate = 0.3;
  params.write_error_rate = 0.2;
  params.enospc_rate = 0.15;
  params.fsync_fail_rate = 0.25;
  const DiskFaultPlan a{params};
  const DiskFaultPlan b{params};
  params.seed = 4243;
  const DiskFaultPlan other{params};

  std::size_t differs = 0;
  for (std::uint64_t file = 0; file < 4; ++file) {
    for (std::uint64_t op = 0; op < 64; ++op) {
      EXPECT_EQ(a.short_write_keep(file, op, 1000),
                b.short_write_keep(file, op, 1000));
      EXPECT_EQ(a.write_error(file, op), b.write_error(file, op));
      EXPECT_EQ(a.enospc_run_starting(file, op),
                b.enospc_run_starting(file, op));
      EXPECT_EQ(a.fsync_fails(file, op), b.fsync_fails(file, op));
      EXPECT_EQ(a.crash_block_fate(file, op * 512),
                b.crash_block_fate(file, op * 512));
      if (a.write_error(file, op) != other.write_error(file, op)) ++differs;
    }
  }
  EXPECT_GT(differs, 0u) << "seed must actually steer the schedule";
}

TEST(DiskFaultPlanTest, ShortWriteKeepIsAlwaysAPartialCount) {
  DiskFaultPlanParams params;
  params.seed = 7;
  params.short_write_rate = 1.0;
  const DiskFaultPlan plan{params};
  for (std::uint64_t op = 0; op < 64; ++op) {
    const auto keep = plan.short_write_keep(0, op, 100);
    ASSERT_TRUE(keep.has_value());
    EXPECT_GE(*keep, 1u);
    EXPECT_LT(*keep, 100u);
  }
  // A 1-byte write cannot be shortened.
  EXPECT_FALSE(plan.short_write_keep(0, 0, 1).has_value());
}

// ---------------------------------------------------------------------------
// FaultyVfs op faults

TEST(DiskChaosTest, EqualSeedsReproduceLedgerVerbatim) {
  const auto run = [](const std::string& path) {
    DiskFaultPlanParams params;
    params.seed = 2026;
    params.short_write_rate = 0.3;
    params.write_error_rate = 0.2;
    params.enospc_rate = 0.15;
    params.fsync_fail_rate = 0.2;
    FaultyVfs vfs{DiskFaultPlan{params}};
    VfsFile file = vfs.open(path, Vfs::OpenMode::kCreateTruncate);
    const std::vector<std::uint8_t> chunk(96, 0xAB);
    for (int i = 0; i < 40; ++i) {
      try {
        (void)vfs.write(file, chunk);
      } catch (const icn::util::IoError&) {
      }
      if (i % 5 == 4) {
        try {
          vfs.fsync(file);
        } catch (const icn::util::IoError&) {
        }
      }
    }
    vfs.close(file);
    return vfs.ledger();
  };

  TempFile first("ledger_a.bin");
  TempFile second("ledger_b.bin");  // Different path: ledgers key on file id.
  const FaultLedger a = run(first.path());
  const FaultLedger b = run(second.path());
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b) << "equal seeds must reproduce the disk ledger verbatim";
}

TEST(DiskChaosTest, EnospcMidAppendLeavesSealedPrefixRecoverable) {
  // Probe the pure plan for a seed whose checkpoint-file schedule keeps the
  // header (write op 0) and the first window (ops 1-2) clean, then starts an
  // ENOSPC run within the next dozen appends.
  std::uint64_t seed = 0;
  for (std::uint64_t candidate = 1; candidate < 500 && seed == 0;
       ++candidate) {
    DiskFaultPlanParams params;
    params.seed = candidate;
    params.enospc_rate = 0.3;
    const DiskFaultPlan plan{params};
    bool head_clean = true;
    for (std::uint64_t op = 0; op < 3; ++op) {
      if (plan.enospc_run_starting(0, op) != 0) head_clean = false;
    }
    if (!head_clean) continue;
    for (std::uint64_t op = 3; op < 24; ++op) {
      if (plan.enospc_run_starting(0, op) != 0) {
        seed = candidate;
        break;
      }
    }
  }
  ASSERT_NE(seed, 0u) << "no usable seed in the probe range";

  DiskFaultPlanParams params;
  params.seed = seed;
  params.enospc_rate = 0.3;
  FaultyVfs vfs{DiskFaultPlan{params}};
  TempFile tmp("enospc.snap");
  const auto cells = window_cells(2, 7.5);

  SnapshotWriter writer(tmp.path(), &vfs);
  std::size_t sealed = 0;
  std::string error;
  try {
    for (std::int64_t hour = 0; hour < 32; ++hour) {
      writer.append_window(hour, cells);
      writer.sync();
      ++sealed;
    }
  } catch (const icn::util::IoError& err) {
    error = err.what();
  }
  ASSERT_FALSE(error.empty()) << "the probed seed must inject ENOSPC";
  ASSERT_GE(sealed, 1u);
  // The typed error names its victim file and the failed operation.
  EXPECT_NE(error.find(tmp.path()), std::string::npos) << error;
  EXPECT_NE(error.find("write failed"), std::string::npos) << error;
  EXPECT_NE(error.find("no space"), std::string::npos) << error;
  writer.close();

  // The failed append rolled back: the file is exactly its sealed prefix.
  const auto recovery = store::recover_snapshot(tmp.path());
  EXPECT_FALSE(recovery.truncated);
  EXPECT_EQ(recovery.valid_sections, sealed);
  const ScanReport report = store::scan_snapshot(tmp.path());
  EXPECT_TRUE(report.clean);
  EXPECT_EQ(report.sections.size(), sealed);
  EXPECT_EQ(report.valid_bytes, report.file_size);

  // And the condition is transient: a fresh (healthy) writer can resume
  // appending to the recovered prefix.
  auto resumed = SnapshotWriter::append_to(tmp.path());
  resumed.append_window(99, cells);
  resumed.sync();
  resumed.close();
  EXPECT_EQ(store::scan_snapshot(tmp.path()).sections.size(), sealed + 1);
}

TEST(DiskChaosTest, FsyncFailureIsTypedAndFileStaysRecoverable) {
  DiskFaultPlanParams params;
  params.seed = 5;
  params.fsync_fail_rate = 1.0;
  FaultyVfs vfs{DiskFaultPlan{params}};
  TempFile tmp("fsyncfail.snap");
  const auto cells = window_cells(1, 1.25);

  SnapshotWriter writer(tmp.path(), &vfs);
  writer.append_window(0, cells);
  try {
    writer.sync();
    FAIL() << "expected injected fsync failure";
  } catch (const icn::util::IoError& err) {
    const std::string what = err.what();
    EXPECT_NE(what.find(tmp.path()), std::string::npos) << what;
    EXPECT_NE(what.find("fsync failed"), std::string::npos) << what;
  }
  writer.close();

  // The writes themselves landed; the file scans clean to its full length.
  const ScanReport report = store::scan_snapshot(tmp.path());
  EXPECT_TRUE(report.clean);
  EXPECT_EQ(report.sections.size(), 1u);
}

TEST(DiskChaosTest, CrashedShimStaysDeadUntilCleared) {
  FaultyVfs vfs{DiskFaultPlan{DiskFaultPlanParams{}}};
  TempFile tmp("dead.bin");
  VfsFile file = vfs.open(tmp.path(), Vfs::OpenMode::kCreateTruncate);
  const std::vector<std::uint8_t> chunk(16, 1);
  vfs.set_crash_at_op(0);
  EXPECT_THROW((void)vfs.write(file, chunk), SimulatedCrash);
  EXPECT_TRUE(vfs.crashed());
  EXPECT_THROW((void)vfs.write(file, chunk), SimulatedCrash);
  EXPECT_THROW(vfs.fsync(file), SimulatedCrash);
  vfs.clear_crash_point();
  EXPECT_FALSE(vfs.crashed());
  EXPECT_EQ(vfs.write(file, chunk), chunk.size());
  vfs.close(file);
}

// ---------------------------------------------------------------------------
// Power-cut model

TEST(DiskChaosTest, PowerCutPreservesSyncedPrefixAndReproduces) {
  static constexpr std::size_t kSynced = 256;
  static constexpr std::size_t kAtRisk = 512;
  const auto run = [](const std::string& path, std::uint64_t seed,
                      FaultLedger* ledger) {
    DiskFaultPlanParams params;
    params.seed = seed;
    params.crash_block_size = 64;
    FaultyVfs vfs{DiskFaultPlan{params}};
    VfsFile file = vfs.open(path, Vfs::OpenMode::kCreateTruncate);
    std::vector<std::uint8_t> bytes(kSynced + kAtRisk);
    for (std::size_t i = 0; i < bytes.size(); ++i) {
      bytes[i] = static_cast<std::uint8_t>(i * 31 + 7);
    }
    EXPECT_EQ(vfs.write(file, {bytes.data(), kSynced}), kSynced);
    vfs.fsync(file);
    EXPECT_EQ(vfs.write(file, {bytes.data() + kSynced, kAtRisk}), kAtRisk);
    vfs.close(file);
    const auto affected = vfs.apply_crash();
    EXPECT_EQ(affected.size(), 1u);
    *ledger = vfs.ledger();
    return bytes;
  };

  TempFile first("powercut_a.bin");
  TempFile second("powercut_b.bin");
  FaultLedger ledger_a;
  FaultLedger ledger_b;
  const auto expected = run(first.path(), 31337, &ledger_a);
  (void)run(second.path(), 31337, &ledger_b);

  ASSERT_FALSE(ledger_a.empty());
  EXPECT_EQ(ledger_a, ledger_b);
  const auto bytes_a = read_all(first.path());
  const auto bytes_b = read_all(second.path());
  EXPECT_EQ(bytes_a, bytes_b) << "equal seeds must lose equal bytes";

  // The synced prefix survived byte-for-byte; only the tail is at risk.
  ASSERT_GE(bytes_a.size(), kSynced);
  EXPECT_LE(bytes_a.size(), kSynced + kAtRisk);
  for (std::size_t i = 0; i < kSynced; ++i) {
    ASSERT_EQ(bytes_a[i], expected[i]) << "synced byte " << i;
  }
  bool saw_powercut = false;
  for (const auto& event : ledger_a) {
    if (event.kind == FaultKind::kPowerCut) {
      saw_powercut = true;
      EXPECT_EQ(event.a, static_cast<std::int64_t>(kAtRisk));
      EXPECT_EQ(event.b, static_cast<std::int64_t>(bytes_a.size() - kSynced));
    }
  }
  EXPECT_TRUE(saw_powercut);

  // A different seed settles a (very likely) different fate.
  TempFile third("powercut_c.bin");
  FaultLedger ledger_c;
  (void)run(third.path(), 424243, &ledger_c);
  EXPECT_NE(ledger_a, ledger_c);
}

// ---------------------------------------------------------------------------
// Crash-atomic publication

TEST(DiskChaosTest, TornPublishObservesOnlyOldOrNewGeneration) {
  const auto fill_gen = [](double value) {
    return [value](SnapshotWriter& writer) {
      const std::vector<std::uint32_t> ids = {1, 2};
      writer.append_stream_meta(ids, kServices, kHours);
      ml::Matrix m(ids.size(), kServices);
      for (std::size_t i = 0; i < m.data().size(); ++i) {
        m.data()[i] = value * static_cast<double>(i + 1);
      }
      writer.append_matrix(m);
    };
  };

  TempFile target("publish.snap");
  TempFile staged_tmp("publish.snap.tmp");  // Cleanup guard for the stage.
  store::write_snapshot_atomic(target.path(), fill_gen(1.0));
  const auto gen1 = read_all(target.path());

  // Reference bytes of generation 2, produced cleanly elsewhere.
  TempFile reference("publish_ref.snap");
  store::write_snapshot_atomic(reference.path(), fill_gen(2.0));
  const auto gen2 = read_all(reference.path());
  ASSERT_NE(gen1, gen2);

  // Crash before every op of the publish; the target must always scan clean
  // and hold exactly one complete generation.
  bool completed = false;
  for (std::uint64_t k = 0; k < 256 && !completed; ++k) {
    write_exact(target.path(), gen1);
    std::remove((target.path() + ".tmp").c_str());
    DiskFaultPlanParams params;
    params.seed = 11;
    params.crash_block_size = 64;
    FaultyVfs vfs{DiskFaultPlan{params}};
    vfs.set_crash_at_op(k);
    bool crashed = false;
    try {
      store::write_snapshot_atomic(target.path(), fill_gen(2.0), &vfs);
    } catch (const SimulatedCrash&) {
      crashed = true;
    }
    vfs.apply_crash();

    const ScanReport report = store::scan_snapshot(target.path());
    EXPECT_TRUE(report.clean) << "crash point " << k;
    const auto observed = read_all(target.path());
    EXPECT_TRUE(observed == gen1 || observed == gen2)
        << "crash point " << k << " exposed a torn generation";
    if (!crashed) {
      EXPECT_EQ(observed, gen2);
      completed = true;
    }
  }
  EXPECT_TRUE(completed) << "sweep never ran the publish to completion";
}

// ---------------------------------------------------------------------------
// ENOSPC-degraded supervision

TEST(DiskChaosTest, SupervisorDegradesGracefullyUnderEnospc) {
  const std::vector<std::uint32_t> ids = {7, 8};
  const auto sessions = probe_sessions(ids, 17);
  const auto script = stream::hourly_script(sessions, kHours);

  // Healthy reference run for the convergence assertions.
  TempFile reference("degrade_ref.snap");
  stream::MergedStudy healthy;
  {
    stream::VectorFeed feed{script};
    stream::FeedSupervisor supervisor(
        supervisor_params(), {{"probe", ids, &feed, reference.path()}});
    supervisor.run();
    ASSERT_TRUE(supervisor.finished());
    healthy = supervisor.merge();
  }
  const auto healthy_bytes = read_all(reference.path());

  // Probe the plan for a seed whose schedule spares the header + meta
  // writes (ops 0-2), starves at least one mid-run checkpoint append, and
  // has a clean tail — so the retries and the seal-time flush eventually
  // drain every parked window and the checkpoint fully converges.
  std::uint64_t seed = 0;
  for (std::uint64_t candidate = 1; candidate < 2000 && seed == 0;
       ++candidate) {
    DiskFaultPlanParams params;
    params.seed = candidate;
    params.enospc_rate = 0.05;
    const DiskFaultPlan plan{params};
    bool head_clean = true;
    for (std::uint64_t op = 0; op < 3; ++op) {
      if (plan.enospc_run_starting(0, op) != 0) head_clean = false;
    }
    if (!head_clean) continue;
    bool mid_fails = false;
    for (std::uint64_t op = 3; op < 13; ++op) {
      if (plan.enospc_run_starting(0, op) != 0) mid_fails = true;
    }
    if (!mid_fails) continue;
    bool tail_clean = true;
    for (std::uint64_t op = 13; op < 40; ++op) {
      if (plan.enospc_run_starting(0, op) != 0) tail_clean = false;
    }
    if (tail_clean) seed = candidate;
  }
  ASSERT_NE(seed, 0u);

  DiskFaultPlanParams params;
  params.seed = seed;
  params.enospc_rate = 0.05;
  FaultyVfs vfs{DiskFaultPlan{params}};
  TempFile degraded("degrade.snap");
  stream::VectorFeed feed{script};
  auto sup_params = supervisor_params();
  sup_params.vfs = &vfs;
  sup_params.defer_checkpoint_errors = true;
  stream::FeedSupervisor supervisor(
      sup_params, {{"probe", ids, &feed, degraded.path()}});
  supervisor.run();

  ASSERT_TRUE(supervisor.finished());
  const stream::FeedStats stats = supervisor.stats(0);
  EXPECT_EQ(stats.state, stream::FeedState::kDone)
      << "ENOSPC must degrade, never quarantine";
  EXPECT_GT(stats.checkpoint_failures, 0u);
  EXPECT_EQ(stats.checkpoint_pending, 0u)
      << "every parked window must flush once the run of failures ends";
  bool saw_retry = false;
  for (const auto& event : supervisor.events()) {
    if (event.kind == stream::SupervisorEventKind::kCheckpointRetry) {
      saw_retry = true;
    }
  }
  EXPECT_TRUE(saw_retry);

  // Convergence: the live study and the durable checkpoint bytes both match
  // the healthy run exactly — degradation delays durability, never data.
  const stream::MergedStudy study = supervisor.merge();
  ASSERT_EQ(study.traffic.data().size(), healthy.traffic.data().size());
  for (std::size_t i = 0; i < study.traffic.data().size(); ++i) {
    ASSERT_EQ(study.traffic.data()[i], healthy.traffic.data()[i]);
  }
  EXPECT_EQ(read_all(degraded.path()), healthy_bytes);
}

// ---------------------------------------------------------------------------
// Capstone: systematic crash-point sweep

TEST(DiskChaosTest, CrashSweepConvergesAtEveryWriteFsyncBoundary) {
  const std::vector<std::uint32_t> ids0 = {1, 2};
  const std::vector<std::uint32_t> ids1 = {9};
  const auto script0 = stream::hourly_script(probe_sessions(ids0, 41), kHours);
  const auto script1 = stream::hourly_script(probe_sessions(ids1, 43), kHours);

  const auto drive = [&](Vfs& vfs, const std::string& prefix, bool resume) {
    stream::VectorFeed feed0{script0};
    stream::VectorFeed feed1{script1};
    auto params = supervisor_params();
    params.vfs = &vfs;
    std::vector<stream::FeedSpec> specs = {
        {"probe-0", ids0, &feed0, prefix + "ckpt0.snap"},
        {"probe-1", ids1, &feed1, prefix + "ckpt1.snap"}};
    auto supervisor =
        resume ? stream::FeedSupervisor::resume(params, std::move(specs))
               : stream::FeedSupervisor(params, std::move(specs));
    supervisor.run();
    ASSERT_TRUE(supervisor.finished());
    stream::write_merged_snapshot(supervisor.merge(), prefix + "study.snap",
                                  &vfs);
  };

  CrashSweep sweep;
  sweep.artifacts = {"ckpt0.snap", "ckpt1.snap", "study.snap"};
  sweep.crash_model.seed = 99;
  sweep.crash_model.crash_block_size = 64;
  sweep.workload = [&](Vfs& vfs, const std::string& prefix) {
    drive(vfs, prefix, /*resume=*/false);
  };
  sweep.recover = [&](Vfs& vfs, const std::string& prefix) {
    drive(vfs, prefix, /*resume=*/true);
  };

  const std::string prefix = ::testing::TempDir() + "icn_sweep_" +
                             std::to_string(::getpid()) + "_";
  const CrashSweepReport report = run_crash_sweep(sweep, prefix);
  // Cleanup the clean-run baselines the harness leaves for inspection.
  for (const auto& name : sweep.artifacts) {
    std::remove((prefix + ".base" + name).c_str());
  }

  EXPECT_GT(report.total_ops, 20u) << "workload too small to mean anything";
  ASSERT_EQ(report.outcomes.size(), report.total_ops);
  std::string first_divergence;
  std::size_t crashes = 0;
  for (const auto& outcome : report.outcomes) {
    if (outcome.crashed) ++crashes;
    if (!outcome.converged && first_divergence.empty()) {
      first_divergence = "op " + std::to_string(outcome.op) + ": " +
                         outcome.detail;
    }
  }
  EXPECT_GT(crashes, 0u);
  EXPECT_TRUE(report.all_converged()) << first_divergence;
}

}  // namespace
}  // namespace icn::fault
