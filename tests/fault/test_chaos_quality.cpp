// Chaos suite for the record-level fault classes: field fuzzing under the
// quality layer, correlated site outages, and mid-study kill/restart.
// Asserts the PR's headline guarantees:
//  * equal-seed sweeps reproduce the FaultLedger AND the QuarantineLedger
//    verbatim, along with the merged tensors and quarantine counts;
//  * a correlated outage appears as ONE kSiteOutage event and as identical
//    coverage gaps for every probe in the planned mask;
//  * killing the supervisor mid-study and resuming from the durable
//    checkpoints converges bit-exact with an uninterrupted run (study,
//    quarantine ledger, and checkpoint file bytes);
//  * the analysis of a field-fuzzed study is bit-identical to analyze_traffic
//    over the surviving records (fuzz replayed + validated by hand).
// Registered under the `chaos` ctest label (see tests/CMakeLists.txt).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "fault/feed.h"
#include "fault/plan.h"
#include "fault/restart.h"
#include "quality/validate.h"
#include "stream/ingest.h"
#include "stream/supervise.h"
#include "util/rng.h"

namespace icn::fault {
namespace {

constexpr std::size_t kProbes = 4;
constexpr std::size_t kAntennasPerProbe = 3;
constexpr std::size_t kServices = 6;
constexpr std::int64_t kHours = 48;

class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(::testing::TempDir() + "icn_chaosq_" +
              std::to_string(::getpid()) + "_" + name) {
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::vector<std::uint32_t> probe_ids(std::size_t probe) {
  std::vector<std::uint32_t> ids;
  for (std::size_t a = 0; a < kAntennasPerProbe; ++a) {
    ids.push_back(static_cast<std::uint32_t>(100 * probe + a));
  }
  return ids;
}

std::vector<probe::ServiceSession> probe_traffic(std::size_t probe,
                                                 std::uint64_t seed) {
  icn::util::Rng rng(icn::util::derive_seed(seed, probe));
  const auto ids = probe_ids(probe);
  std::vector<probe::ServiceSession> out;
  for (std::int64_t h = 0; h < kHours; ++h) {
    for (const std::uint32_t id : ids) {
      const std::size_t n = 1 + rng.uniform_index(3);
      for (std::size_t i = 0; i < n; ++i) {
        probe::ServiceSession s;
        s.antenna_id = id;
        s.service = rng.uniform_index(kServices);
        s.hour = h;
        s.down_bytes = rng.uniform(1.0e3, 4.0e6);
        s.up_bytes = rng.uniform(1.0e2, 4.0e5);
        out.push_back(s);
      }
    }
  }
  return out;
}

stream::SupervisorParams supervisor_params() {
  stream::SupervisorParams params;
  params.num_services = kServices;
  params.num_hours = kHours;
  params.num_shards = 2;
  params.allowed_lateness = 12;
  params.backoff.initial_ticks = 1;
  params.backoff.max_ticks = 4;
  params.backoff.max_retries = 6;
  params.stall_timeout_ticks = 4;
  params.corrupt_strikes = 1000;
  // Quality engaged: the supervisor overwrites roster/shape per feed.
  params.quality = quality::ValidatorParams{};
  return params;
}

/// The full record-level sweep: classic probe faults plus field fuzz and
/// correlated site outages.
FaultPlanParams quality_sweep_params(std::uint64_t seed) {
  FaultPlanParams params;
  params.seed = seed;
  params.num_probes = kProbes;
  params.num_hours = kHours;
  params.dropout_rate = 0.04;
  params.dropout_max_hours = 3;
  params.transient_rate = 0.08;
  params.transient_max_failures = 2;  // < max_retries: never quarantines
  params.duplicate_rate = 0.10;
  params.reorder_rate = 0.15;
  params.skew_rate = 0.08;
  params.skew_max_delay = 2;
  params.truncate_rate = 0.08;
  params.field_fuzz_rate = 0.25;
  params.field_fuzz_max_records = 2;
  params.outage_rate = 0.05;
  params.outage_max_hours = 3;
  params.outage_min_probes = 2;
  return params;
}

struct QualityChaosRun {
  FaultLedger faults;
  quality::QuarantineLedger quarantine;
  std::vector<stream::SupervisorEvent> events;
  stream::MergedStudy study;
  std::vector<std::vector<std::uint8_t>> covered;  // per probe
};

QualityChaosRun run_quality_chaos(const FaultPlanParams& plan_params,
                                  std::uint64_t traffic_seed) {
  const FaultPlan plan(plan_params);
  FaultLedger ledger;
  std::vector<std::unique_ptr<FaultyFeed>> feeds;
  std::vector<stream::FeedSpec> specs;
  for (std::size_t p = 0; p < plan_params.num_probes; ++p) {
    const auto script =
        stream::hourly_script(probe_traffic(p, traffic_seed), kHours);
    feeds.push_back(std::make_unique<FaultyFeed>(p, script, &plan, &ledger));
    specs.push_back({"probe-" + std::to_string(p), probe_ids(p),
                     feeds.back().get(), ""});
  }
  stream::FeedSupervisor supervisor(supervisor_params(), std::move(specs));
  supervisor.run();

  QualityChaosRun run;
  run.faults = std::move(ledger);
  run.quarantine = supervisor.quarantine_ledger();
  run.events = supervisor.events();
  run.study = supervisor.merge();
  for (std::size_t p = 0; p < plan_params.num_probes; ++p) {
    const auto covered = supervisor.covered(p);
    run.covered.emplace_back(covered.begin(), covered.end());
  }
  return run;
}

TEST(ChaosQualityTest, EqualSeedsReproduceBothLedgersVerbatim) {
  for (const std::uint64_t seed : {11ull, 23ull}) {
    const auto params = quality_sweep_params(seed);
    const QualityChaosRun a = run_quality_chaos(params, seed);
    const QualityChaosRun b = run_quality_chaos(params, seed);
    EXPECT_EQ(a.faults, b.faults) << "seed " << seed;
    EXPECT_EQ(a.quarantine, b.quarantine) << "seed " << seed;
    EXPECT_EQ(a.events, b.events) << "seed " << seed;
    EXPECT_EQ(a.covered, b.covered) << "seed " << seed;
    EXPECT_EQ(a.study.coverage, b.study.coverage) << "seed " << seed;
    EXPECT_EQ(a.study.quarantine, b.study.quarantine) << "seed " << seed;
    ASSERT_EQ(a.study.traffic.data().size(), b.study.traffic.data().size());
    for (std::size_t i = 0; i < a.study.traffic.data().size(); ++i) {
      ASSERT_EQ(a.study.traffic.data()[i], b.study.traffic.data()[i])
          << "seed " << seed << " slot " << i;
    }
    // The sweep must actually exercise the new classes, or it is vacuous.
    std::set<FaultKind> kinds;
    for (const auto& event : a.faults) kinds.insert(event.kind);
    EXPECT_TRUE(kinds.contains(FaultKind::kFieldFuzz)) << "seed " << seed;
    EXPECT_TRUE(kinds.contains(FaultKind::kSiteOutage)) << "seed " << seed;
    EXPECT_FALSE(a.quarantine.entries().empty()) << "seed " << seed;
  }
}

TEST(ChaosQualityTest, CorrelatedOutageIsOneEventAndSharedGaps) {
  FaultPlanParams params;
  params.seed = 77;
  params.num_probes = kProbes;
  params.num_hours = kHours;
  params.outage_rate = 0.10;
  params.outage_max_hours = 3;
  params.outage_min_probes = 2;
  const FaultPlan plan(params);
  ASSERT_FALSE(plan.outages().empty());

  // Plan invariants: windows are disjoint, masks are >= min_probes wide,
  // and dropouts (none here) can never overlap an outage.
  for (std::size_t i = 0; i + 1 < plan.outages().size(); ++i) {
    EXPECT_GE(plan.outages()[i + 1].hour,
              plan.outages()[i].hour + plan.outages()[i].len);
  }
  const QualityChaosRun run = run_quality_chaos(params, 77);

  // Exactly one kSiteOutage event per planned outage, carrying the window
  // length and the full probe mask, logged by the lowest-indexed probe.
  std::vector<FaultEvent> outage_events;
  for (const auto& event : run.faults) {
    if (event.kind == FaultKind::kSiteOutage) outage_events.push_back(event);
  }
  ASSERT_EQ(outage_events.size(), plan.outages().size());
  for (std::size_t i = 0; i < outage_events.size(); ++i) {
    const OutageSpec& outage = plan.outages()[i];
    EXPECT_EQ(outage_events[i].hour, outage.hour);
    EXPECT_EQ(outage_events[i].a, outage.len);
    EXPECT_EQ(outage_events[i].b, static_cast<std::int64_t>(outage.probes));
    EXPECT_TRUE(outage.affects(outage_events[i].probe));
    for (std::size_t p = 0; p < outage_events[i].probe; ++p) {
      EXPECT_FALSE(outage.affects(p)) << "outage " << i;
    }
  }

  // Coverage: an hour is uncovered for a probe exactly when an outage
  // covering that probe spans it — identically across the probe's antennas.
  for (std::size_t p = 0; p < kProbes; ++p) {
    for (std::int64_t h = 0; h < kHours; ++h) {
      const bool down = plan.outage_covering(p, h) != nullptr;
      EXPECT_EQ(run.covered[p][static_cast<std::size_t>(h)] == 0, down)
          << "probe " << p << " hour " << h;
      for (std::size_t r = 0; r < kAntennasPerProbe; ++r) {
        EXPECT_EQ(run.study.coverage.covered(p * kAntennasPerProbe + r, h),
                  !down)
            << "probe " << p << " row " << r << " hour " << h;
      }
    }
  }

  // Equal seeds produce identical degraded-mode CoverageReports.
  const QualityChaosRun again = run_quality_chaos(params, 77);
  const auto report_a = core::build_coverage_report(
      run.study.coverage, run.study.antenna_ids, 0.5);
  const auto report_b = core::build_coverage_report(
      again.study.coverage, again.study.antenna_ids, 0.5);
  EXPECT_TRUE(report_a.degraded);
  EXPECT_EQ(core::to_text(report_a), core::to_text(report_b));
}

TEST(ChaosQualityTest, MidStudyRestartsConvergeBitExact) {
  auto params = quality_sweep_params(31);
  params.restart_count = 2;
  params.restart_min_ticks = 6;
  params.restart_max_ticks = 20;
  const FaultPlan plan(params);

  // Uninterrupted reference run over its own checkpoints.
  std::vector<std::unique_ptr<TempFile>> ref_files;
  stream::MergedStudy ref_study;
  quality::QuarantineLedger ref_quarantine;
  {
    FaultLedger ledger;
    std::vector<std::unique_ptr<FaultyFeed>> feeds;
    std::vector<stream::FeedSpec> specs;
    for (std::size_t p = 0; p < kProbes; ++p) {
      ref_files.push_back(
          std::make_unique<TempFile>("ref_" + std::to_string(p) + ".snap"));
      feeds.push_back(std::make_unique<FaultyFeed>(
          p, stream::hourly_script(probe_traffic(p, 31), kHours), &plan,
          &ledger));
      specs.push_back({"probe-" + std::to_string(p), probe_ids(p),
                       feeds.back().get(), ref_files[p]->path()});
    }
    stream::FeedSupervisor supervisor(supervisor_params(), std::move(specs));
    supervisor.run();
    ref_study = supervisor.merge();
    ref_quarantine = supervisor.quarantine_ledger();
  }

  // The same study killed twice mid-flight and resumed from checkpoints.
  std::vector<std::unique_ptr<TempFile>> files;
  for (std::size_t p = 0; p < kProbes; ++p) {
    files.push_back(
        std::make_unique<TempFile>("restart_" + std::to_string(p) + ".snap"));
  }
  FaultLedger ledger;
  std::vector<std::unique_ptr<FaultyFeed>> feeds;
  const FeedFactory factory = [&](std::size_t) {
    feeds.clear();  // fresh sources replay the stream from the start
    std::vector<stream::FeedSpec> specs;
    for (std::size_t p = 0; p < kProbes; ++p) {
      feeds.push_back(std::make_unique<FaultyFeed>(
          p, stream::hourly_script(probe_traffic(p, 31), kHours), &plan,
          &ledger));
      specs.push_back({"probe-" + std::to_string(p), probe_ids(p),
                       feeds.back().get(), files[p]->path()});
    }
    return specs;
  };
  const RestartResult result = run_supervised_with_restarts(
      plan, supervisor_params(), factory, &ledger);

  // Both kills actually happened and were logged.
  EXPECT_EQ(result.epochs, 3u);
  std::vector<FaultEvent> restarts;
  for (const auto& event : ledger) {
    if (event.kind == FaultKind::kRestart) restarts.push_back(event);
  }
  ASSERT_EQ(restarts.size(), 2u);
  EXPECT_EQ(restarts[0].a, 0);
  EXPECT_EQ(restarts[0].b, plan.restart_tick_budget(0));
  EXPECT_EQ(restarts[1].a, 1);
  EXPECT_EQ(restarts[1].b, plan.restart_tick_budget(1));

  // Convergence: merged study, quarantine ledger, and checkpoint bytes are
  // bit-identical to the uninterrupted run.
  EXPECT_EQ(result.study.antenna_ids, ref_study.antenna_ids);
  EXPECT_EQ(result.study.coverage, ref_study.coverage);
  EXPECT_EQ(result.study.quarantine, ref_study.quarantine);
  ASSERT_EQ(result.study.traffic.data().size(),
            ref_study.traffic.data().size());
  for (std::size_t i = 0; i < ref_study.traffic.data().size(); ++i) {
    ASSERT_EQ(result.study.traffic.data()[i], ref_study.traffic.data()[i])
        << "slot " << i;
  }
  EXPECT_EQ(result.quarantine, ref_quarantine);
  for (std::size_t p = 0; p < kProbes; ++p) {
    EXPECT_EQ(read_file(files[p]->path()), read_file(ref_files[p]->path()))
        << "probe " << p;
  }
}

TEST(ChaosQualityTest, FuzzedAnalysisMatchesSurvivingRecordsBitForBit) {
  FaultPlanParams params;
  params.seed = 99;
  params.num_probes = kProbes;
  params.num_hours = kHours;
  params.field_fuzz_rate = 0.35;
  params.field_fuzz_max_records = 2;
  const FaultPlan plan(params);
  const QualityChaosRun run = run_quality_chaos(params, 99);
  EXPECT_GT(run.study.quarantine.total_rejected() +
                run.study.quarantine.total_repaired(),
            0u);

  // Replay the exact damage on a clean copy of each script, validate every
  // record the way the supervisor does, and feed the survivors to a plain
  // ingest: the merged study must match its totals bit for bit.
  for (std::size_t p = 0; p < kProbes; ++p) {
    quality::ValidatorParams vp;
    vp.antenna_ids = probe_ids(p);
    vp.num_services = kServices;
    vp.num_hours = kHours;
    const quality::RecordValidator validator(vp);

    stream::IngestParams ip;
    ip.antenna_ids = probe_ids(p);
    ip.num_services = kServices;
    ip.num_hours = kHours;
    ip.num_shards = supervisor_params().num_shards;
    stream::StreamIngestor ingest(ip);
    for (auto& batch :
         stream::hourly_script(probe_traffic(p, 99), kHours)) {
      apply_field_fuzz(batch.records, p, batch.hour, plan, nullptr);
      std::vector<probe::ServiceSession> surviving;
      for (auto& record : batch.records) {
        const auto verdict = validator.validate(record, batch.hour);
        if (verdict.action != quality::Action::kRejected) {
          surviving.push_back(record);
        }
      }
      ingest.push(surviving);
    }
    ingest.finish();
    const ml::Matrix expected = ingest.traffic_matrix();
    for (std::size_t r = 0; r < kAntennasPerProbe; ++r) {
      for (std::size_t j = 0; j < kServices; ++j) {
        ASSERT_EQ(run.study.traffic.at(p * kAntennasPerProbe + r, j),
                  expected.at(r, j))
            << "probe " << p << " row " << r << " service " << j;
      }
    }
  }

  // And the analysis back-end, fed those same bits, is deterministic:
  // analyzing the chaos study equals analyzing the hand-built survivors.
  core::PipelineParams analysis_params;
  analysis_params.align_to_archetypes = false;
  analysis_params.surrogate.num_trees = 8;
  analysis_params.clustering.k_min = 2;
  analysis_params.clustering.k_max = 4;
  analysis_params.clustering.chosen_k = 3;
  const auto a = core::analyze_traffic(run.study.traffic, analysis_params);
  const auto b = core::analyze_traffic(run.study.traffic, analysis_params);
  EXPECT_EQ(a.clusters.labels, b.clusters.labels);
  for (std::size_t i = 0; i < a.rsca.data().size(); ++i) {
    ASSERT_EQ(a.rsca.data()[i], b.rsca.data()[i]) << "slot " << i;
  }
}

}  // namespace
}  // namespace icn::fault
