#include "core/forecast.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/error.h"
#include "util/rng.h"

namespace icn::core {
namespace {

TEST(SeasonalForecasterTest, RecoversExactPeriodicSignal) {
  // Three seasons of a pure 24h pattern: forecast equals the pattern.
  std::vector<double> series;
  for (int rep = 0; rep < 3; ++rep) {
    for (int h = 0; h < 24; ++h) {
      series.push_back(10.0 + std::sin(h / 24.0 * 2.0 * M_PI));
    }
  }
  SeasonalForecaster f;
  f.fit(series, 24);
  const auto pred = f.forecast(24);
  for (int h = 0; h < 24; ++h) {
    EXPECT_NEAR(pred[static_cast<std::size_t>(h)],
                10.0 + std::sin(h / 24.0 * 2.0 * M_PI), 1e-12);
  }
}

TEST(SeasonalForecasterTest, MedianRobustToOneOutlierSeason) {
  // Three seasons, one corrupted by a 100x spike: median ignores it.
  std::vector<double> series(3 * 24, 5.0);
  series[30] = 500.0;  // hour 6 of season 2
  SeasonalForecaster f;
  f.fit(series, 24);
  EXPECT_DOUBLE_EQ(f.slot_value(6), 5.0);
}

TEST(SeasonalForecasterTest, ForecastContinuesFromTrainingPhase) {
  // Training ends mid-season: the first forecast hour is the next slot.
  std::vector<double> series;
  for (std::size_t t = 0; t < 30; ++t) {
    series.push_back(static_cast<double>(t % 10));
  }
  SeasonalForecaster f;
  f.fit(series, 10);
  const auto pred = f.forecast(5);
  for (std::size_t h = 0; h < 5; ++h) {
    EXPECT_DOUBLE_EQ(pred[h], static_cast<double>((30 + h) % 10));
  }
}

TEST(SeasonalForecasterTest, PartialLastSeasonHandled) {
  // 2.5 seasons: slots in the covered half see 3 samples, others 2.
  std::vector<double> series(25, 1.0);
  SeasonalForecaster f;
  f.fit(series, 10);
  EXPECT_DOUBLE_EQ(f.slot_value(0), 1.0);
  EXPECT_DOUBLE_EQ(f.slot_value(9), 1.0);
}

TEST(SeasonalForecasterTest, Validation) {
  SeasonalForecaster f;
  EXPECT_THROW(f.forecast(5), icn::util::PreconditionError);
  std::vector<double> tiny(5, 1.0);
  EXPECT_THROW(f.fit(tiny, 10), icn::util::PreconditionError);
  EXPECT_THROW(f.fit(tiny, 0), icn::util::PreconditionError);
  std::vector<double> ok(20, 1.0);
  f.fit(ok, 10);
  EXPECT_THROW((void)f.slot_value(10), icn::util::PreconditionError);
}

TEST(HoltWintersTest, RecoversTrendPlusSeasonality) {
  // x_t = 0.05 t + pattern(t % 24): Holt-Winters should track both parts.
  std::vector<double> series;
  for (std::size_t t = 0; t < 24 * 8; ++t) {
    series.push_back(0.05 * static_cast<double>(t) +
                     3.0 * std::sin(static_cast<double>(t % 24) / 24.0 *
                                    2.0 * M_PI));
  }
  HoltWintersForecaster f;
  f.fit(series, 24);
  const auto pred = f.forecast(24);
  for (std::size_t h = 0; h < 24; ++h) {
    const double t = static_cast<double>(series.size() + h);
    const double expected =
        0.05 * t + 3.0 * std::sin(static_cast<double>(
                             (series.size() + h) % 24) /
                         24.0 * 2.0 * M_PI);
    EXPECT_NEAR(pred[h], expected, 0.8) << "h=" << h;
  }
}

TEST(HoltWintersTest, BeatsSeasonalMedianOnTrendingSeries) {
  // Steady growth: the seasonal median under-forecasts, Holt-Winters tracks.
  std::vector<double> series;
  for (std::size_t t = 0; t < 24 * 10; ++t) {
    series.push_back(10.0 + 0.1 * static_cast<double>(t) +
                     2.0 * std::sin(static_cast<double>(t % 24) / 24.0 *
                                    2.0 * M_PI));
  }
  const std::size_t train = 24 * 8;
  const std::span<const double> train_span(series.data(), train);
  const std::span<const double> test(series.data() + train, 48);
  HoltWintersForecaster hw;
  hw.fit(train_span, 24);
  SeasonalForecaster sm;
  sm.fit(train_span, 24);
  EXPECT_LT(smape(test, hw.forecast(48)),
            smape(test, sm.forecast(48)) * 0.5);
}

TEST(HoltWintersTest, ConstantSeriesStaysConstant) {
  std::vector<double> series(24 * 4, 7.5);
  HoltWintersForecaster f;
  f.fit(series, 24);
  for (const double v : f.forecast(48)) {
    EXPECT_NEAR(v, 7.5, 1e-9);
  }
}

TEST(HoltWintersTest, Validation) {
  HoltWintersForecaster f;
  EXPECT_THROW(f.forecast(5), icn::util::PreconditionError);
  std::vector<double> one_season(24, 1.0);
  EXPECT_THROW(f.fit(one_season, 24), icn::util::PreconditionError);
  std::vector<double> ok(48, 1.0);
  HoltWintersForecaster::Params bad;
  bad.alpha = 1.5;
  EXPECT_THROW(f.fit(ok, 24, bad), icn::util::PreconditionError);
}

TEST(SmapeTest, PerfectForecastIsZero) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(smape(a, a), 0.0);
}

TEST(SmapeTest, WorstCaseIsTwo) {
  const std::vector<double> actual = {1.0, 5.0};
  const std::vector<double> predicted = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(smape(actual, predicted), 2.0);
}

TEST(SmapeTest, SymmetricInArguments) {
  const std::vector<double> a = {1.0, 4.0, 2.0};
  const std::vector<double> b = {2.0, 3.0, 2.5};
  EXPECT_DOUBLE_EQ(smape(a, b), smape(b, a));
}

TEST(SmapeTest, BothZeroHoursUncounted) {
  const std::vector<double> actual = {0.0, 2.0};
  const std::vector<double> predicted = {0.0, 2.0};
  EXPECT_DOUBLE_EQ(smape(actual, predicted), 0.0);
}

TEST(SmapeTest, SizeValidation) {
  const std::vector<double> a = {1.0};
  const std::vector<double> b = {1.0, 2.0};
  EXPECT_THROW((void)smape(a, b), icn::util::PreconditionError);
  EXPECT_THROW((void)smape(std::vector<double>{}, std::vector<double>{}),
               icn::util::PreconditionError);
}

TEST(SeasonalForecasterTest, NoisyPeriodicSignalForecastBeatsMean) {
  // Weekly periodic signal + noise: the seasonal forecaster's sMAPE on a
  // held-out week beats a flat mean predictor.
  icn::util::Rng rng(5);
  std::vector<double> series;
  for (std::size_t t = 0; t < 168 * 5; ++t) {
    const double base =
        5.0 + 4.0 * std::sin(static_cast<double>(t % 168) / 168.0 * 2 * M_PI);
    series.push_back(base * rng.gamma(25.0, 1.0 / 25.0));
  }
  const std::size_t train = 168 * 4;
  SeasonalForecaster f;
  f.fit(std::span<const double>(series).first(train), 168);
  const auto pred = f.forecast(168);
  const std::span<const double> test(series.data() + train, 168);
  double mean = 0.0;
  for (std::size_t t = 0; t < train; ++t) mean += series[t] / train;
  const std::vector<double> flat(168, mean);
  EXPECT_LT(smape(test, pred), smape(test, flat) * 0.6);
}

TEST(SeasonalForecasterTest, MaskedFitIgnoresDropoutZeros) {
  // A periodic signal with dropout windows recorded as zeros: the plain fit
  // is dragged down, the masked fit recovers the clean profile exactly.
  const std::size_t season = 24;
  std::vector<double> series;
  std::vector<std::uint8_t> covered;
  for (std::size_t t = 0; t < season * 5; ++t) {
    const double value = 10.0 + static_cast<double>(t % season);
    // Seasons 1-3 lose hours [4, 9) to a probe dropout, so the plain
    // per-slot median over {v, 0, 0, 0, v} collapses to zero there.
    const bool lost = t / season >= 1 && t / season <= 3 &&
                      t % season >= 4 && t % season < 9;
    series.push_back(lost ? 0.0 : value);
    covered.push_back(lost ? 0 : 1);
  }
  SeasonalForecaster masked;
  masked.fit_masked(series, covered, season);
  for (std::size_t slot = 0; slot < season; ++slot) {
    EXPECT_EQ(masked.slot_value(slot), 10.0 + static_cast<double>(slot))
        << "slot " << slot;
  }
  SeasonalForecaster plain;
  plain.fit(series, season);
  EXPECT_LT(plain.slot_value(5), masked.slot_value(5));
}

TEST(SeasonalForecasterTest, MaskedFitFallsBackWhenSlotNeverCovered) {
  const std::size_t season = 8;
  std::vector<double> series(season * 3, 4.0);
  std::vector<std::uint8_t> covered(series.size(), 1);
  // Slot 2 never observed.
  for (std::size_t t = 2; t < series.size(); t += season) {
    series[t] = 999.0;
    covered[t] = 0;
  }
  SeasonalForecaster f;
  f.fit_masked(series, covered, season);
  // Fallback = median over all covered samples = 4.0, not the garbage value.
  EXPECT_EQ(f.slot_value(2), 4.0);
}

TEST(SeasonalForecasterTest, MaskedFitNeverReadsUncoveredGarbage) {
  // Uncovered samples hold NaN (what a fuzzed, unrepaired volume looks
  // like): the masked fit must never read them, or the slot medians and the
  // global fallback would both be poisoned.
  const std::size_t season = 6;
  std::vector<double> series(season * 4);
  std::vector<std::uint8_t> covered(series.size(), 1);
  for (std::size_t t = 0; t < series.size(); ++t) {
    series[t] = 5.0 + static_cast<double>(t % season);
  }
  // Every third hour lost; with season 6 that blanks slots 0 and 3 entirely.
  for (std::size_t t = 0; t < series.size(); t += 3) {
    series[t] = std::numeric_limits<double>::quiet_NaN();
    covered[t] = 0;
  }
  SeasonalForecaster f;
  f.fit_masked(series, covered, season);
  // Covered slots keep their exact profile values...
  EXPECT_EQ(f.slot_value(1), 6.0);
  EXPECT_EQ(f.slot_value(2), 7.0);
  EXPECT_EQ(f.slot_value(4), 9.0);
  EXPECT_EQ(f.slot_value(5), 10.0);
  // ...and the never-covered slots get the global median of the covered
  // samples (median of 6,7,9,10 repeated = 8), not NaN.
  EXPECT_EQ(f.slot_value(0), 8.0);
  EXPECT_EQ(f.slot_value(3), 8.0);
}

TEST(SeasonalForecasterTest, MaskedFitSingleCoveredSampleFillsEverySlot) {
  const std::size_t season = 4;
  std::vector<double> series(season * 2, -1.0e9);
  std::vector<std::uint8_t> covered(series.size(), 0);
  series[5] = 42.0;
  covered[5] = 1;
  SeasonalForecaster f;
  f.fit_masked(series, covered, season);
  for (std::size_t slot = 0; slot < season; ++slot) {
    EXPECT_EQ(f.slot_value(slot), 42.0) << "slot " << slot;
  }
}

TEST(SeasonalForecasterTest, MaskedFitMatchesPlainFitOnFullCoverage) {
  const std::size_t season = 24;
  std::vector<double> series;
  icn::util::Rng rng(404);
  for (std::size_t t = 0; t < season * 7; ++t) {
    series.push_back(rng.uniform(0.0, 100.0));
  }
  const std::vector<std::uint8_t> covered(series.size(), 1);
  SeasonalForecaster plain;
  plain.fit(series, season);
  SeasonalForecaster masked;
  masked.fit_masked(series, covered, season);
  for (std::size_t slot = 0; slot < season; ++slot) {
    EXPECT_EQ(masked.slot_value(slot), plain.slot_value(slot))
        << "slot " << slot;
  }
}

TEST(SeasonalForecasterTest, MaskedFitValidation) {
  SeasonalForecaster f;
  const std::vector<double> series(48, 1.0);
  std::vector<std::uint8_t> covered(47, 1);
  EXPECT_THROW(f.fit_masked(series, covered, 24),
               icn::util::PreconditionError);
  covered.assign(48, 0);
  EXPECT_THROW(f.fit_masked(series, covered, 24),
               icn::util::PreconditionError);
}

}  // namespace
}  // namespace icn::core
