#include "core/export.h"

#include <gtest/gtest.h>

#include <sstream>

#include "core/rca.h"
#include "util/csv.h"
#include "util/error.h"

namespace icn::core {
namespace {

class ExportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ScenarioParams params;
    params.seed = 3;
    params.scale = 0.02;
    params.outdoor_ratio = 0.0;
    scenario_ = std::make_unique<Scenario>(Scenario::build(params));
    rsca_ = compute_rsca(scenario_->demand().traffic_matrix());
    labels_ = scenario_->demand().archetype_labels();
  }

  std::unique_ptr<Scenario> scenario_;
  ml::Matrix rsca_;
  std::vector<int> labels_;
};

TEST_F(ExportTest, RscaCsvHasHeaderAndAllRows) {
  std::ostringstream out;
  export_rsca_csv(out, *scenario_, rsca_, labels_);
  const auto rows = icn::util::parse_csv(out.str());
  ASSERT_EQ(rows.size(), scenario_->num_antennas() + 1);
  // Header: 8 metadata columns + one per service.
  EXPECT_EQ(rows[0].size(), 8u + scenario_->num_services());
  EXPECT_EQ(rows[0][0], "antenna_id");
  EXPECT_EQ(rows[0][8], "rsca:YouTube");
}

TEST_F(ExportTest, RscaCsvValuesRoundTrip) {
  std::ostringstream out;
  export_rsca_csv(out, *scenario_, rsca_, labels_);
  const auto rows = icn::util::parse_csv(out.str());
  for (std::size_t i = 1; i <= 5; ++i) {
    const auto& row = rows[i];
    EXPECT_EQ(std::stoul(row[0]), i - 1);  // dense antenna ids
    EXPECT_EQ(std::stoi(row[6]), labels_[i - 1]);  // archetype column
    for (std::size_t j = 0; j < 5; ++j) {
      EXPECT_NEAR(std::stod(row[8 + j]), rsca_(i - 1, j), 1e-8);
    }
  }
}

TEST_F(ExportTest, RscaCsvMetadataMatchesTopology) {
  std::ostringstream out;
  export_rsca_csv(out, *scenario_, rsca_, labels_);
  const auto rows = icn::util::parse_csv(out.str());
  const auto& indoor = scenario_->topology().indoor();
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i][1], indoor[i - 1].name);
    EXPECT_EQ(rows[i][2],
              net::environment_name(indoor[i - 1].environment));
    EXPECT_EQ(rows[i][3], net::city_name(indoor[i - 1].city));
  }
}

TEST_F(ExportTest, TrafficCsvShape) {
  std::ostringstream out;
  export_traffic_csv(out, *scenario_);
  const auto rows = icn::util::parse_csv(out.str());
  ASSERT_EQ(rows.size(), scenario_->num_antennas() + 1);
  EXPECT_EQ(rows[0].size(), 1u + scenario_->num_services());
  // Values match the T matrix.
  const auto& t = scenario_->demand().traffic_matrix();
  EXPECT_NEAR(std::stod(rows[1][1]), t(0, 0), 1e-6 * std::max(1.0, t(0, 0)));
}

TEST_F(ExportTest, ImportRoundTripsEverything) {
  std::ostringstream out;
  export_rsca_csv(out, *scenario_, rsca_, labels_);
  std::istringstream in(out.str());
  const ImportedDataset data = import_rsca_csv(in);

  ASSERT_EQ(data.rsca.rows(), scenario_->num_antennas());
  ASSERT_EQ(data.rsca.cols(), scenario_->num_services());
  ASSERT_EQ(data.service_names.size(), scenario_->num_services());
  EXPECT_EQ(data.service_names[0], "YouTube");

  const auto& indoor = scenario_->topology().indoor();
  for (std::size_t i = 0; i < indoor.size(); ++i) {
    EXPECT_EQ(data.antenna_ids[i], indoor[i].id);
    EXPECT_EQ(data.names[i], indoor[i].name);
    EXPECT_EQ(data.environments[i], indoor[i].environment);
    EXPECT_EQ(data.cities[i], indoor[i].city);
    EXPECT_EQ(data.clusters[i], labels_[i]);
    EXPECT_EQ(data.archetypes[i],
              scenario_->demand().profiles()[i].archetype);
    EXPECT_NEAR(data.total_mb[i], scenario_->demand().profiles()[i].total_mb,
                1e-4 * scenario_->demand().profiles()[i].total_mb);
  }
  for (std::size_t i = 0; i < rsca_.rows(); i += 7) {
    for (std::size_t j = 0; j < rsca_.cols(); ++j) {
      EXPECT_NEAR(data.rsca(i, j), rsca_(i, j), 1e-8);
    }
  }
}

TEST_F(ExportTest, ImportRejectsMalformedInput) {
  {
    std::istringstream empty("");
    EXPECT_THROW(import_rsca_csv(empty), icn::util::PreconditionError);
  }
  {
    std::istringstream bad_header("a,b,c\n1,2,3\n");
    EXPECT_THROW(import_rsca_csv(bad_header), icn::util::PreconditionError);
  }
  {
    // A valid export with one row truncated.
    std::ostringstream out;
    export_rsca_csv(out, *scenario_, rsca_, labels_);
    std::string text = out.str();
    const auto last_comma = text.rfind(',');
    text = text.substr(0, text.rfind(',', last_comma - 1)) + "\n";
    std::istringstream ragged(text);
    EXPECT_THROW(import_rsca_csv(ragged), icn::util::PreconditionError);
  }
  {
    // Unknown environment name.
    std::ostringstream out;
    export_rsca_csv(out, *scenario_, rsca_, labels_);
    std::string text = out.str();
    const auto pos = text.find("Metro");
    if (pos != std::string::npos) text.replace(pos, 5, "Marsx");
    std::istringstream bad_env(text);
    EXPECT_THROW(import_rsca_csv(bad_env), icn::util::PreconditionError);
  }
}

TEST_F(ExportTest, ShapeMismatchThrows) {
  std::ostringstream out;
  const std::vector<int> bad_labels = {1, 2};
  EXPECT_THROW(export_rsca_csv(out, *scenario_, rsca_, bad_labels),
               icn::util::PreconditionError);
}

}  // namespace
}  // namespace icn::core
