#include "core/environment_analysis.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace icn::core {
namespace {

class EnvironmentCorrelationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ScenarioParams params;
    params.seed = 9;
    params.scale = 0.05;
    params.outdoor_ratio = 0.0;
    scenario_ = std::make_unique<Scenario>(Scenario::build(params));
    // Use the ground-truth archetypes as labels: the correlation machinery
    // itself is what's under test here.
    labels_ = scenario_->demand().archetype_labels();
  }

  std::unique_ptr<Scenario> scenario_;
  std::vector<int> labels_;
};

TEST_F(EnvironmentCorrelationTest, CountsAreConsistent) {
  const EnvironmentCorrelation env(*scenario_, labels_, 9);
  std::size_t total_from_clusters = 0;
  for (std::size_t c = 0; c < 9; ++c) {
    total_from_clusters += env.cluster_size(c);
  }
  EXPECT_EQ(total_from_clusters, scenario_->num_antennas());
  std::size_t total_from_envs = 0;
  for (const net::Environment e : net::all_environments()) {
    total_from_envs += env.environment_size(e);
  }
  EXPECT_EQ(total_from_envs, scenario_->num_antennas());
}

TEST_F(EnvironmentCorrelationTest, SharesSumToOne) {
  const EnvironmentCorrelation env(*scenario_, labels_, 9);
  for (std::size_t c = 0; c < 9; ++c) {
    if (env.cluster_size(c) == 0) continue;
    double total = 0.0;
    for (const net::Environment e : net::all_environments()) {
      total += env.share_of_cluster(c, e);
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
  for (const net::Environment e : net::all_environments()) {
    if (env.environment_size(e) == 0) continue;
    double total = 0.0;
    for (std::size_t c = 0; c < 9; ++c) {
      total += env.share_of_environment(e, c);
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST_F(EnvironmentCorrelationTest, OrangeClustersAreTransitOnly) {
  // Fig. 7a: clusters 0, 4, 7 comprise solely metro and train stations.
  const EnvironmentCorrelation env(*scenario_, labels_, 9);
  for (const std::size_t c : {0u, 4u, 7u}) {
    const double transit = env.share_of_cluster(c, net::Environment::kMetro) +
                           env.share_of_cluster(c, net::Environment::kTrain);
    EXPECT_GT(transit, 0.99) << "cluster " << c;
  }
}

TEST_F(EnvironmentCorrelationTest, Cluster3IsMostlyWorkspaces) {
  const EnvironmentCorrelation env(*scenario_, labels_, 9);
  EXPECT_GT(env.share_of_cluster(3, net::Environment::kWorkspace), 0.55);
}

TEST_F(EnvironmentCorrelationTest, ParisShares) {
  const EnvironmentCorrelation env(*scenario_, labels_, 9);
  // Clusters 0 and 4 are overwhelmingly Parisian; cluster 7 has none.
  EXPECT_GT(env.paris_share(0), 0.8);
  EXPECT_GT(env.paris_share(4), 0.8);
  EXPECT_DOUBLE_EQ(env.paris_share(7), 0.0);
}

TEST_F(EnvironmentCorrelationTest, SankeyFlowsCoverEveryAntenna) {
  const EnvironmentCorrelation env(*scenario_, labels_, 9);
  const auto flows = env.sankey_flows();
  double total = 0.0;
  for (const auto& f : flows) total += f.weight;
  EXPECT_DOUBLE_EQ(total, static_cast<double>(scenario_->num_antennas()));
  // No zero-weight flows are emitted.
  for (const auto& f : flows) EXPECT_GT(f.weight, 0.0);
}

TEST_F(EnvironmentCorrelationTest, ValidatesInput) {
  EXPECT_THROW(EnvironmentCorrelation(*scenario_, std::vector<int>{0, 1}, 9),
               icn::util::PreconditionError);
  std::vector<int> bad = labels_;
  bad[0] = 9;
  EXPECT_THROW(EnvironmentCorrelation(*scenario_, bad, 9),
               icn::util::PreconditionError);
  const EnvironmentCorrelation env(*scenario_, labels_, 9);
  EXPECT_THROW(env.cluster_size(9), icn::util::PreconditionError);
  EXPECT_THROW(env.count(10, net::Environment::kMetro),
               icn::util::PreconditionError);
}

}  // namespace
}  // namespace icn::core
