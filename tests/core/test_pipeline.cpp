// Integration tests: the full paper methodology end-to-end, plus the
// measurement-path consistency check (probe aggregation == generator tensor).
#include "core/pipeline.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <numeric>

#include "core/environment_analysis.h"
#include "store/snapshot.h"
#include "core/rca.h"
#include "ml/metrics.h"
#include "probe/aggregate.h"
#include "probe/dpi.h"
#include "probe/gtp.h"
#include "probe/probe.h"
#include "traffic/flows.h"
#include "util/stats.h"

namespace icn::core {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    PipelineParams params;
    params.scenario.seed = 2023;
    params.scenario.scale = 0.15;
    params.scenario.outdoor_ratio = 0.3;
    params.surrogate.num_trees = 50;
    result_ = new PipelineResult(run_pipeline(params));
  }
  static void TearDownTestSuite() {
    delete result_;
    result_ = nullptr;
  }

  static PipelineResult* result_;
};

PipelineResult* PipelineTest::result_ = nullptr;

TEST_F(PipelineTest, RecoversNineArchetypesPerfectly) {
  EXPECT_EQ(result_->clusters.chosen_k, 9u);
  EXPECT_GT(result_->ari_vs_archetypes, 0.98);
}

TEST_F(PipelineTest, SuggestedKIsNine) {
  EXPECT_EQ(suggest_k(result_->clusters.sweep), 9u);
}

TEST_F(PipelineTest, AlignedLabelsMatchArchetypeSemantics) {
  // After alignment, label c == archetype c for almost every antenna.
  const auto& truth = result_->scenario.demand().archetype_labels();
  EXPECT_GT(ml::accuracy(result_->clusters.labels, truth), 0.98);
}

TEST_F(PipelineTest, SurrogateIsFaithful) {
  EXPECT_GT(result_->surrogate->fidelity(), 0.99);
  EXPECT_GT(result_->surrogate->oob_accuracy(), 0.95);
}

TEST_F(PipelineTest, RscaFeaturesWithinBounds) {
  EXPECT_EQ(result_->rsca.rows(), result_->scenario.num_antennas());
  EXPECT_EQ(result_->rsca.cols(), 73u);
  for (const double v : result_->rsca.data()) {
    EXPECT_GE(v, -1.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST_F(PipelineTest, EnvironmentStructureMatchesPaper) {
  const EnvironmentCorrelation env(result_->scenario,
                                   result_->clusters.labels, 9);
  // Orange clusters: transit only.
  for (const std::size_t c : {0u, 4u, 7u}) {
    EXPECT_GT(env.share_of_cluster(c, net::Environment::kMetro) +
                  env.share_of_cluster(c, net::Environment::kTrain),
              0.95)
        << "cluster " << c;
  }
  // Cluster 3 dominated by workspaces; most workspaces in cluster 3.
  EXPECT_GT(env.share_of_cluster(3, net::Environment::kWorkspace), 0.5);
  EXPECT_GT(env.share_of_environment(net::Environment::kWorkspace, 3), 0.6);
  // Airports and tunnels in cluster 1; hospitals in cluster 2.
  EXPECT_GT(env.share_of_environment(net::Environment::kAirport, 1), 0.8);
  EXPECT_GT(env.share_of_environment(net::Environment::kTunnel, 1), 0.8);
  EXPECT_GT(env.share_of_environment(net::Environment::kHospital, 2), 0.8);
}

TEST_F(PipelineTest, LabelMapIsAPermutation) {
  std::vector<int> sorted = result_->label_map;
  std::sort(sorted.begin(), sorted.end());
  std::vector<int> expected(9);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(sorted, expected);
}

TEST_F(PipelineTest, DisablingAlignmentKeepsRawLabels) {
  PipelineParams params;
  params.scenario.seed = 2023;
  params.scenario.scale = 0.05;
  params.scenario.outdoor_ratio = 0.0;
  params.align_to_archetypes = false;
  params.surrogate.num_trees = 10;
  const auto raw = run_pipeline(params);
  // Identity map recorded.
  for (std::size_t c = 0; c < raw.label_map.size(); ++c) {
    EXPECT_EQ(raw.label_map[c], static_cast<int>(c));
  }
  // ARI is still computed (alignment only renames labels, ARI invariant).
  EXPECT_GT(raw.ari_vs_archetypes, 0.9);
}

TEST(ProbePathTest, ProbeAggregationReproducesGeneratorTensor) {
  // The end-to-end measurement invariant: synthesize flows, push them
  // through ULI decoding + DPI + hourly aggregation, and recover exactly
  // the (antenna, service, hour) tensor the fast path reports.
  ScenarioParams params;
  params.seed = 77;
  params.scale = 0.01;
  params.outdoor_ratio = 0.0;
  const Scenario scenario = Scenario::build(params);
  const traffic::FlowGenerator generator(scenario.temporal(), 123);

  probe::UliDecoder decoder;
  decoder.register_range(generator.ecgi_of(0),
                         static_cast<std::uint32_t>(scenario.num_antennas()));
  probe::DpiClassifier dpi(scenario.catalog());
  probe::PassiveProbe passive(decoder, dpi);

  // Two antennas, first 3 days of the study.
  const std::int64_t hours = 72;
  const std::vector<std::uint32_t> ids = {0, 1};
  probe::HourlyAggregator agg(ids, scenario.num_services(), hours);
  for (const std::uint32_t antenna : ids) {
    const auto flows = generator.flows_for_antenna(antenna, 0, hours);
    agg.add_all(passive.observe_all(flows));
  }
  EXPECT_EQ(passive.unknown_location(), 0u);
  EXPECT_EQ(passive.unknown_service(), 0u);
  EXPECT_EQ(agg.dropped(), 0u);

  for (const std::uint32_t antenna : ids) {
    for (std::size_t j = 0; j < scenario.num_services(); j += 7) {
      const auto expected =
          scenario.temporal().hourly_service_series(antenna, j);
      const auto measured = agg.series(antenna, j);
      for (std::int64_t t = 0; t < hours; ++t) {
        EXPECT_NEAR(measured[static_cast<std::size_t>(t)],
                    expected[static_cast<std::size_t>(t)],
                    1e-6 * std::max(1.0,
                                    expected[static_cast<std::size_t>(t)]))
            << "antenna " << antenna << " service " << j << " hour " << t;
      }
    }
  }
}

TEST(SnapshotPipelineTest, SnapshotFedRunIsBitIdenticalToInMemoryRun) {
  // Acceptance: persist the demand T matrix, mmap it back, and the whole
  // analysis chain (RSCA -> clustering -> surrogate) must reproduce the
  // in-memory run bit for bit.
  PipelineParams params;
  params.scenario.seed = 2023;
  params.scenario.scale = 0.05;
  params.scenario.outdoor_ratio = 0.0;
  params.align_to_archetypes = false;  // no ground truth in a snapshot
  params.surrogate.num_trees = 10;
  const auto live = run_pipeline(params);

  const std::string path = ::testing::TempDir() + "icn_pipeline_rt.snap";
  std::remove(path.c_str());
  {
    store::SnapshotWriter writer(path);
    writer.append_matrix(live.scenario.demand().traffic_matrix());
    writer.close();
  }
  const auto from_snapshot = run_pipeline_from_snapshot(path, params);
  std::remove(path.c_str());

  // The loaded matrix is the same bits...
  const auto& original = live.scenario.demand().traffic_matrix();
  ASSERT_EQ(from_snapshot.traffic.rows(), original.rows());
  ASSERT_EQ(from_snapshot.traffic.cols(), original.cols());
  for (std::size_t i = 0; i < original.data().size(); ++i) {
    ASSERT_EQ(from_snapshot.traffic.data()[i], original.data()[i]);
  }
  // ...so every analysis output is too.
  EXPECT_EQ(from_snapshot.analysis.clusters.chosen_k,
            live.clusters.chosen_k);
  EXPECT_EQ(from_snapshot.analysis.clusters.labels, live.clusters.labels);
  ASSERT_EQ(from_snapshot.analysis.clusters.sweep.size(),
            live.clusters.sweep.size());
  for (std::size_t i = 0; i < live.clusters.sweep.size(); ++i) {
    EXPECT_EQ(from_snapshot.analysis.clusters.sweep[i].silhouette,
              live.clusters.sweep[i].silhouette);
  }
  for (std::size_t i = 0; i < live.rsca.data().size(); ++i) {
    ASSERT_EQ(from_snapshot.analysis.rsca.data()[i], live.rsca.data()[i]);
  }
  EXPECT_EQ(from_snapshot.analysis.surrogate->fidelity(),
            live.surrogate->fidelity());
}

TEST(SnapshotPipelineTest, SnapshotWithoutTensorIsRejected) {
  const std::string path = ::testing::TempDir() + "icn_pipeline_empty.snap";
  std::remove(path.c_str());
  {
    store::SnapshotWriter writer(path);
    writer.close();
  }
  PipelineParams params;
  EXPECT_THROW(run_pipeline_from_snapshot(path, params),
               store::SnapshotError);
  std::remove(path.c_str());
}

TEST(PipelineDeterminismTest, TwoRunsIdentical) {
  PipelineParams params;
  params.scenario.seed = 31;
  params.scenario.scale = 0.03;
  params.scenario.outdoor_ratio = 0.0;
  params.surrogate.num_trees = 8;
  const auto a = run_pipeline(params);
  const auto b = run_pipeline(params);
  EXPECT_EQ(a.clusters.labels, b.clusters.labels);
  EXPECT_DOUBLE_EQ(a.ari_vs_archetypes, b.ari_vs_archetypes);
  for (std::size_t i = 0; i < a.clusters.sweep.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.clusters.sweep[i].silhouette,
                     b.clusters.sweep[i].silhouette);
  }
}

}  // namespace
}  // namespace icn::core
