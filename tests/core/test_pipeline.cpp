// Integration tests: the full paper methodology end-to-end, plus the
// measurement-path consistency check (probe aggregation == generator tensor).
#include "core/pipeline.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <numeric>

#include "core/environment_analysis.h"
#include "store/snapshot.h"
#include "core/rca.h"
#include "ml/metrics.h"
#include "probe/aggregate.h"
#include "probe/dpi.h"
#include "probe/gtp.h"
#include "probe/probe.h"
#include "stream/ingest.h"
#include "stream/supervise.h"
#include "traffic/flows.h"
#include "util/rng.h"
#include "util/stats.h"

namespace icn::core {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    PipelineParams params;
    params.scenario.seed = 2023;
    params.scenario.scale = 0.15;
    params.scenario.outdoor_ratio = 0.3;
    params.surrogate.num_trees = 50;
    result_ = new PipelineResult(run_pipeline(params));
  }
  static void TearDownTestSuite() {
    delete result_;
    result_ = nullptr;
  }

  static PipelineResult* result_;
};

PipelineResult* PipelineTest::result_ = nullptr;

TEST_F(PipelineTest, RecoversNineArchetypesPerfectly) {
  EXPECT_EQ(result_->clusters.chosen_k, 9u);
  EXPECT_GT(result_->ari_vs_archetypes, 0.98);
}

TEST_F(PipelineTest, SuggestedKIsNine) {
  EXPECT_EQ(suggest_k(result_->clusters.sweep), 9u);
}

TEST_F(PipelineTest, AlignedLabelsMatchArchetypeSemantics) {
  // After alignment, label c == archetype c for almost every antenna.
  const auto& truth = result_->scenario.demand().archetype_labels();
  EXPECT_GT(ml::accuracy(result_->clusters.labels, truth), 0.98);
}

TEST_F(PipelineTest, SurrogateIsFaithful) {
  EXPECT_GT(result_->surrogate->fidelity(), 0.99);
  EXPECT_GT(result_->surrogate->oob_accuracy(), 0.95);
}

TEST_F(PipelineTest, RscaFeaturesWithinBounds) {
  EXPECT_EQ(result_->rsca.rows(), result_->scenario.num_antennas());
  EXPECT_EQ(result_->rsca.cols(), 73u);
  for (const double v : result_->rsca.data()) {
    EXPECT_GE(v, -1.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST_F(PipelineTest, EnvironmentStructureMatchesPaper) {
  const EnvironmentCorrelation env(result_->scenario,
                                   result_->clusters.labels, 9);
  // Orange clusters: transit only.
  for (const std::size_t c : {0u, 4u, 7u}) {
    EXPECT_GT(env.share_of_cluster(c, net::Environment::kMetro) +
                  env.share_of_cluster(c, net::Environment::kTrain),
              0.95)
        << "cluster " << c;
  }
  // Cluster 3 dominated by workspaces; most workspaces in cluster 3.
  EXPECT_GT(env.share_of_cluster(3, net::Environment::kWorkspace), 0.5);
  EXPECT_GT(env.share_of_environment(net::Environment::kWorkspace, 3), 0.6);
  // Airports and tunnels in cluster 1; hospitals in cluster 2.
  EXPECT_GT(env.share_of_environment(net::Environment::kAirport, 1), 0.8);
  EXPECT_GT(env.share_of_environment(net::Environment::kTunnel, 1), 0.8);
  EXPECT_GT(env.share_of_environment(net::Environment::kHospital, 2), 0.8);
}

TEST_F(PipelineTest, LabelMapIsAPermutation) {
  std::vector<int> sorted = result_->label_map;
  std::sort(sorted.begin(), sorted.end());
  std::vector<int> expected(9);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(sorted, expected);
}

TEST_F(PipelineTest, DisablingAlignmentKeepsRawLabels) {
  PipelineParams params;
  params.scenario.seed = 2023;
  params.scenario.scale = 0.05;
  params.scenario.outdoor_ratio = 0.0;
  params.align_to_archetypes = false;
  params.surrogate.num_trees = 10;
  const auto raw = run_pipeline(params);
  // Identity map recorded.
  for (std::size_t c = 0; c < raw.label_map.size(); ++c) {
    EXPECT_EQ(raw.label_map[c], static_cast<int>(c));
  }
  // ARI is still computed (alignment only renames labels, ARI invariant).
  EXPECT_GT(raw.ari_vs_archetypes, 0.9);
}

TEST(ProbePathTest, ProbeAggregationReproducesGeneratorTensor) {
  // The end-to-end measurement invariant: synthesize flows, push them
  // through ULI decoding + DPI + hourly aggregation, and recover exactly
  // the (antenna, service, hour) tensor the fast path reports.
  ScenarioParams params;
  params.seed = 77;
  params.scale = 0.01;
  params.outdoor_ratio = 0.0;
  const Scenario scenario = Scenario::build(params);
  const traffic::FlowGenerator generator(scenario.temporal(), 123);

  probe::UliDecoder decoder;
  decoder.register_range(generator.ecgi_of(0),
                         static_cast<std::uint32_t>(scenario.num_antennas()));
  probe::DpiClassifier dpi(scenario.catalog());
  probe::PassiveProbe passive(decoder, dpi);

  // Two antennas, first 3 days of the study.
  const std::int64_t hours = 72;
  const std::vector<std::uint32_t> ids = {0, 1};
  probe::HourlyAggregator agg(ids, scenario.num_services(), hours);
  for (const std::uint32_t antenna : ids) {
    const auto flows = generator.flows_for_antenna(antenna, 0, hours);
    agg.add_all(passive.observe_all(flows));
  }
  EXPECT_EQ(passive.unknown_location(), 0u);
  EXPECT_EQ(passive.unknown_service(), 0u);
  EXPECT_EQ(agg.dropped(), 0u);

  for (const std::uint32_t antenna : ids) {
    for (std::size_t j = 0; j < scenario.num_services(); j += 7) {
      const auto expected =
          scenario.temporal().hourly_service_series(antenna, j);
      const auto measured = agg.series(antenna, j);
      for (std::int64_t t = 0; t < hours; ++t) {
        EXPECT_NEAR(measured[static_cast<std::size_t>(t)],
                    expected[static_cast<std::size_t>(t)],
                    1e-6 * std::max(1.0,
                                    expected[static_cast<std::size_t>(t)]))
            << "antenna " << antenna << " service " << j << " hour " << t;
      }
    }
  }
}

TEST(SnapshotPipelineTest, SnapshotFedRunIsBitIdenticalToInMemoryRun) {
  // Acceptance: persist the demand T matrix, mmap it back, and the whole
  // analysis chain (RSCA -> clustering -> surrogate) must reproduce the
  // in-memory run bit for bit.
  PipelineParams params;
  params.scenario.seed = 2023;
  params.scenario.scale = 0.05;
  params.scenario.outdoor_ratio = 0.0;
  params.align_to_archetypes = false;  // no ground truth in a snapshot
  params.surrogate.num_trees = 10;
  const auto live = run_pipeline(params);

  const std::string path = ::testing::TempDir() + "icn_pipeline_rt.snap";
  std::remove(path.c_str());
  {
    store::SnapshotWriter writer(path);
    writer.append_matrix(live.scenario.demand().traffic_matrix());
    writer.close();
  }
  const auto from_snapshot = run_pipeline_from_snapshot(path, params);
  std::remove(path.c_str());

  // The loaded matrix is the same bits...
  const auto& original = live.scenario.demand().traffic_matrix();
  ASSERT_EQ(from_snapshot.traffic.rows(), original.rows());
  ASSERT_EQ(from_snapshot.traffic.cols(), original.cols());
  for (std::size_t i = 0; i < original.data().size(); ++i) {
    ASSERT_EQ(from_snapshot.traffic.data()[i], original.data()[i]);
  }
  // ...so every analysis output is too.
  EXPECT_EQ(from_snapshot.analysis.clusters.chosen_k,
            live.clusters.chosen_k);
  EXPECT_EQ(from_snapshot.analysis.clusters.labels, live.clusters.labels);
  ASSERT_EQ(from_snapshot.analysis.clusters.sweep.size(),
            live.clusters.sweep.size());
  for (std::size_t i = 0; i < live.clusters.sweep.size(); ++i) {
    EXPECT_EQ(from_snapshot.analysis.clusters.sweep[i].silhouette,
              live.clusters.sweep[i].silhouette);
  }
  for (std::size_t i = 0; i < live.rsca.data().size(); ++i) {
    ASSERT_EQ(from_snapshot.analysis.rsca.data()[i], live.rsca.data()[i]);
  }
  EXPECT_EQ(from_snapshot.analysis.surrogate->fidelity(),
            live.surrogate->fidelity());
}

TEST(SnapshotPipelineTest, SnapshotWithoutTensorIsRejected) {
  const std::string path = ::testing::TempDir() + "icn_pipeline_empty.snap";
  std::remove(path.c_str());
  {
    store::SnapshotWriter writer(path);
    writer.close();
  }
  PipelineParams params;
  EXPECT_THROW(run_pipeline_from_snapshot(path, params),
               store::SnapshotError);
  std::remove(path.c_str());
}

TEST(DegradedPipelineTest, PartialCoverageExcludesAntennasAndReportsGaps) {
  // A merged multi-probe study with injected dropout windows: the pipeline
  // must complete, exclude exactly the under-covered antennas, and report
  // the uncovered hour ranges verbatim.
  PipelineParams params;
  params.scenario.seed = 2023;
  params.scenario.scale = 0.05;
  params.scenario.outdoor_ratio = 0.0;
  params.align_to_archetypes = false;
  params.surrogate.num_trees = 10;
  params.min_antenna_coverage = 0.5;
  const Scenario scenario = Scenario::build(params.scenario);
  const ml::Matrix& traffic = scenario.demand().traffic_matrix();
  const std::size_t rows = traffic.rows();
  ASSERT_GE(rows, 20u);
  const std::int64_t hours = 48;

  stream::MergedStudy study;
  study.traffic = traffic;
  for (std::size_t r = 0; r < rows; ++r) {
    study.antenna_ids.push_back(static_cast<std::uint32_t>(1000 + r));
  }
  study.coverage = stream::CoverageMask::full(rows, hours);
  // Row 0: dropout windows [5, 10) and [20, 22) — stays above threshold.
  for (std::int64_t h = 5; h < 10; ++h) study.coverage.set(0, h, false);
  for (std::int64_t h = 20; h < 22; ++h) study.coverage.set(0, h, false);
  // Rows 3 and 7: covered for 12 of 48 hours only — excluded.
  for (const std::size_t r : {std::size_t{3}, std::size_t{7}}) {
    for (std::int64_t h = 12; h < hours; ++h) study.coverage.set(r, h, false);
  }

  const std::string path = ::testing::TempDir() + "icn_degraded.snap";
  std::remove(path.c_str());
  stream::write_merged_snapshot(study, path);
  const auto result = run_pipeline_from_snapshot(path, params);
  std::remove(path.c_str());

  const CoverageReport& report = result.coverage;
  EXPECT_TRUE(report.degraded);
  EXPECT_EQ(report.threshold, 0.5);
  EXPECT_EQ(report.total_rows, rows);
  EXPECT_EQ(report.analyzed_rows.size(), rows - 2);
  EXPECT_EQ(report.excluded_antennas,
            (std::vector<std::uint32_t>{1003, 1007}));
  ASSERT_EQ(report.incomplete.size(), 3u);
  EXPECT_EQ(report.incomplete[0].row, 0u);
  EXPECT_FALSE(report.incomplete[0].excluded);
  EXPECT_EQ(report.incomplete[0].gaps,
            (std::vector<stream::HourRange>{{5, 10}, {20, 22}}));
  EXPECT_EQ(report.incomplete[1].row, 3u);
  EXPECT_TRUE(report.incomplete[1].excluded);
  EXPECT_EQ(report.incomplete[1].gaps,
            (std::vector<stream::HourRange>{{12, 48}}));
  EXPECT_EQ(report.covered_cells,
            static_cast<std::size_t>(rows) * 48 - 7 - 2 * 36);

  // The analysis ran on exactly the surviving rows, bit-identical to
  // analyzing that submatrix directly.
  const ml::Matrix sub = traffic.select_rows(report.analyzed_rows);
  const auto direct = analyze_traffic(sub, params);
  EXPECT_EQ(result.analysis.clusters.labels, direct.clusters.labels);
  ASSERT_EQ(result.analysis.rsca.rows(), rows - 2);
  for (std::size_t i = 0; i < direct.rsca.data().size(); ++i) {
    ASSERT_EQ(result.analysis.rsca.data()[i], direct.rsca.data()[i]);
  }

  // The human-readable report names the exclusions and the gaps.
  const std::string text = to_text(report);
  EXPECT_NE(text.find("antenna 1003"), std::string::npos);
  EXPECT_NE(text.find("EXCLUDED"), std::string::npos);
  EXPECT_NE(text.find("[5,10)"), std::string::npos);
}

TEST(DegradedPipelineTest, FullCoverageSnapshotIsNotDegraded) {
  PipelineParams params;
  params.scenario.seed = 2023;
  params.scenario.scale = 0.05;
  params.scenario.outdoor_ratio = 0.0;
  params.align_to_archetypes = false;
  params.surrogate.num_trees = 10;
  const Scenario scenario = Scenario::build(params.scenario);

  const std::string path = ::testing::TempDir() + "icn_fullcov.snap";
  std::remove(path.c_str());
  {
    store::SnapshotWriter writer(path);
    writer.append_matrix(scenario.demand().traffic_matrix());
    writer.close();
  }
  const auto result = run_pipeline_from_snapshot(path, params);
  std::remove(path.c_str());
  EXPECT_FALSE(result.coverage.degraded);
  EXPECT_EQ(result.coverage.analyzed_rows.size(),
            scenario.demand().traffic_matrix().rows());
  EXPECT_TRUE(result.coverage.incomplete.empty());
  EXPECT_TRUE(result.coverage.excluded_antennas.empty());
}

TEST(DegradedPipelineTest, QuarantineSectionSurfacesInCoverageReport) {
  PipelineParams params;
  params.scenario.seed = 2024;
  params.scenario.scale = 0.05;
  params.scenario.outdoor_ratio = 0.0;
  params.align_to_archetypes = false;
  params.surrogate.num_trees = 10;
  const Scenario scenario = Scenario::build(params.scenario);

  const std::string path = ::testing::TempDir() + "icn_quarantine.snap";
  std::remove(path.c_str());
  {
    store::SnapshotWriter writer(path);
    writer.append_matrix(scenario.demand().traffic_matrix());
    const std::vector<std::uint32_t> rejected = {0, 3, 0, 1};
    const std::vector<std::uint32_t> repaired = {2, 0, 0, 5};
    writer.append_quarantine(4, rejected, repaired);
    writer.close();
  }
  const auto result = run_pipeline_from_snapshot(path, params);
  std::remove(path.c_str());
  EXPECT_EQ(result.coverage.records_rejected, 4u);
  EXPECT_EQ(result.coverage.records_repaired, 7u);
  const std::string text = to_text(result.coverage);
  EXPECT_NE(text.find("quarantined records: 4 rejected, 7 repaired"),
            std::string::npos);
}

TEST(DegradedPipelineTest, MultiSnapshotMergeAnalyzesAcrossProbeFiles) {
  // Two per-probe ingest checkpoints, the second with half its hours lost:
  // run_pipeline_from_snapshots merges, excludes the under-covered probe,
  // and analyzes the rest.
  constexpr std::size_t kPerProbe = 12;
  constexpr std::size_t kSvc = 4;
  constexpr std::int64_t kH = 24;
  auto make_checkpoint = [](const std::string& path, std::uint32_t first_id,
                            std::int64_t hours_present, std::uint64_t seed) {
    std::vector<std::uint32_t> ids;
    for (std::size_t i = 0; i < kPerProbe; ++i) {
      ids.push_back(first_id + static_cast<std::uint32_t>(i));
    }
    stream::IngestParams params;
    params.antenna_ids = ids;
    params.num_services = kSvc;
    params.num_hours = kH;
    auto writer = stream::begin_checkpoint(path, params);
    stream::StreamIngestor ingest(params, &writer);
    icn::util::Rng rng(seed);
    for (std::int64_t h = 0; h < hours_present; ++h) {
      std::vector<probe::ServiceSession> batch;
      for (const std::uint32_t id : ids) {
        probe::ServiceSession s;
        s.antenna_id = id;
        s.service = rng.uniform_index(kSvc);
        s.hour = h;
        s.down_bytes = rng.uniform(1.0e4, 1.0e6);
        batch.push_back(s);
      }
      ingest.push(batch);
    }
    ingest.finish();
    if (hours_present < kH) {
      std::vector<std::uint8_t> covered(static_cast<std::size_t>(kH), 0);
      for (std::int64_t h = 0; h < hours_present; ++h) {
        covered[static_cast<std::size_t>(h)] = 1;
      }
      writer.append_coverage(1, kH, covered);
    }
    writer.sync();
    writer.close();
  };

  const std::string path_a = ::testing::TempDir() + "icn_probe_a.snap";
  const std::string path_b = ::testing::TempDir() + "icn_probe_b.snap";
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
  make_checkpoint(path_a, 0, kH, 900);
  make_checkpoint(path_b, 100, kH / 4, 901);  // 25% covered -> excluded

  PipelineParams params;
  params.align_to_archetypes = false;
  params.surrogate.num_trees = 5;
  params.clustering.k_min = 2;
  params.clustering.k_max = 4;
  params.clustering.chosen_k = 2;
  params.min_antenna_coverage = 0.5;
  const std::vector<std::string> paths = {path_a, path_b};
  const auto result = run_pipeline_from_snapshots(paths, params);
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());

  EXPECT_TRUE(result.coverage.degraded);
  EXPECT_EQ(result.coverage.total_rows, 2 * kPerProbe);
  EXPECT_EQ(result.coverage.analyzed_rows.size(), kPerProbe);
  ASSERT_EQ(result.coverage.excluded_antennas.size(), kPerProbe);
  EXPECT_EQ(result.coverage.excluded_antennas.front(), 100u);
  EXPECT_EQ(result.analysis.clusters.labels.size(), kPerProbe);
  // Probe B's gaps are exactly its lost hours.
  for (const auto& antenna : result.coverage.incomplete) {
    EXPECT_EQ(antenna.gaps,
              (std::vector<stream::HourRange>{{kH / 4, kH}}));
  }
}

TEST(PipelineDeterminismTest, TwoRunsIdentical) {
  PipelineParams params;
  params.scenario.seed = 31;
  params.scenario.scale = 0.03;
  params.scenario.outdoor_ratio = 0.0;
  params.surrogate.num_trees = 8;
  const auto a = run_pipeline(params);
  const auto b = run_pipeline(params);
  EXPECT_EQ(a.clusters.labels, b.clusters.labels);
  EXPECT_DOUBLE_EQ(a.ari_vs_archetypes, b.ari_vs_archetypes);
  for (std::size_t i = 0; i < a.clusters.sweep.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.clusters.sweep[i].silhouette,
                     b.clusters.sweep[i].silhouette);
  }
}

}  // namespace
}  // namespace icn::core
