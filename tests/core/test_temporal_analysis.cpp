#include "core/temporal_analysis.h"

#include <gtest/gtest.h>

#include "core/scenario.h"
#include "util/error.h"

namespace icn::core {
namespace {

class TemporalAnalysisTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ScenarioParams params;
    params.seed = 17;
    params.scale = 0.04;
    params.outdoor_ratio = 0.0;
    params.noise_shape = 0.0;  // deterministic curves for shape assertions
    scenario_ = std::make_unique<Scenario>(Scenario::build(params));
    labels_ = scenario_->demand().archetype_labels();
  }

  std::unique_ptr<Scenario> scenario_;
  std::vector<int> labels_;
};

TEST_F(TemporalAnalysisTest, HeatmapShape) {
  const auto map =
      cluster_total_heatmap(scenario_->temporal(), labels_, 0);
  EXPECT_EQ(map.days, 21u);
  EXPECT_EQ(map.values.size(), 24u * 21u);
  EXPECT_GT(map.peak_mb, 0.0);
  double max_cell = 0.0;
  for (const double v : map.values) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0 + 1e-12);
    max_cell = std::max(max_cell, v);
  }
  EXPECT_NEAR(max_cell, 1.0, 1e-12);
}

TEST_F(TemporalAnalysisTest, CommuterClusterPeaksAtCommuteHours) {
  const auto map =
      cluster_total_heatmap(scenario_->temporal(), labels_, 0);
  const auto profile = hour_of_day_profile(map);
  // Peaks around 8h and 18h dominate 13h (paper Fig. 10a).
  EXPECT_GT(profile[8], profile[13] * 1.5);
  EXPECT_GT(profile[18], profile[13] * 1.5);
  EXPECT_GT(profile[13], profile[3]);
}

TEST_F(TemporalAnalysisTest, WorkspaceClusterIdleOnWeekend) {
  const auto map =
      cluster_total_heatmap(scenario_->temporal(), labels_, 3);
  const auto days = day_profile(map);
  // Window starts Wed 04 Jan; Sat 07 Jan is day 3, Mon 09 Jan day 5.
  EXPECT_GT(days[5], days[3] * 4.0);
}

TEST_F(TemporalAnalysisTest, StrikeDayVisibleInCommuterCluster) {
  const auto map =
      cluster_total_heatmap(scenario_->temporal(), labels_, 4);
  const auto days = day_profile(map);
  // 19 Jan is day 15 of the window (04 Jan + 15); 12 Jan is day 8.
  EXPECT_LT(days[15], days[8] * 0.3);
}

TEST_F(TemporalAnalysisTest, ServiceHeatmapFollowsServiceProfile) {
  const auto teams = scenario_->catalog().index_of("Microsoft Teams");
  ASSERT_TRUE(teams.has_value());
  const auto map = cluster_service_heatmap(scenario_->temporal(), labels_,
                                           3, *teams);
  const auto profile = hour_of_day_profile(map);
  // Teams in the workspace cluster: office hours dwarf the evening.
  EXPECT_GT(profile[11], profile[21] * 3.0);
}

TEST_F(TemporalAnalysisTest, NetflixQuietInWorkspacesDuringOfficeHours) {
  const auto netflix = scenario_->catalog().index_of("Netflix");
  ASSERT_TRUE(netflix.has_value());
  const auto work = cluster_service_heatmap(scenario_->temporal(), labels_,
                                            3, *netflix);
  const auto hotelish = cluster_service_heatmap(scenario_->temporal(),
                                                labels_, 2, *netflix);
  // Cluster 2 (hotels/hospitals) streams at night; cluster 3 does not.
  const auto work_profile = hour_of_day_profile(work);
  const auto hotel_profile = hour_of_day_profile(hotelish);
  EXPECT_GT(hotel_profile[22], hotel_profile[4]);
  // Workspace Netflix rides the office-hours envelope (nothing at night).
  EXPECT_GT(work_profile[12], work_profile[23]);
}

TEST_F(TemporalAnalysisTest, SamplingCapIsDeterministic) {
  HeatmapParams params;
  params.max_antennas = 5;
  const auto a =
      cluster_total_heatmap(scenario_->temporal(), labels_, 1, params);
  const auto b =
      cluster_total_heatmap(scenario_->temporal(), labels_, 1, params);
  EXPECT_EQ(a.values, b.values);
}

TEST_F(TemporalAnalysisTest, CustomWindow) {
  HeatmapParams params;
  params.window = icn::util::DateRange(icn::util::Date{2022, 12, 1},
                                       icn::util::Date{2022, 12, 7});
  const auto map =
      cluster_total_heatmap(scenario_->temporal(), labels_, 1, params);
  EXPECT_EQ(map.days, 7u);
}

TEST_F(TemporalAnalysisTest, WindowOutsidePeriodThrows) {
  HeatmapParams params;
  params.window = icn::util::DateRange(icn::util::Date{2023, 2, 1},
                                       icn::util::Date{2023, 2, 7});
  EXPECT_THROW(
      cluster_total_heatmap(scenario_->temporal(), labels_, 0, params),
      icn::util::PreconditionError);
}

TEST_F(TemporalAnalysisTest, EmptyClusterThrows) {
  EXPECT_THROW(cluster_total_heatmap(scenario_->temporal(), labels_, 42),
               icn::util::PreconditionError);
}

TEST_F(TemporalAnalysisTest, ProfileHelpersShapes) {
  const auto map =
      cluster_total_heatmap(scenario_->temporal(), labels_, 2);
  EXPECT_EQ(hour_of_day_profile(map).size(), 24u);
  EXPECT_EQ(day_profile(map).size(), map.days);
}

}  // namespace
}  // namespace icn::core
