#include "core/surrogate.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.h"
#include "util/rng.h"

namespace icn::core {
namespace {

/// Labeled data where cluster c over-expresses feature c (others ~0).
ml::Matrix signature_data(std::size_t k, std::size_t per_cluster,
                          std::size_t extra_features, std::uint64_t seed,
                          std::vector<int>* labels) {
  icn::util::Rng rng(seed);
  const std::size_t m = k + extra_features;
  ml::Matrix x(k * per_cluster, m);
  for (std::size_t c = 0; c < k; ++c) {
    for (std::size_t i = 0; i < per_cluster; ++i) {
      const std::size_t r = c * per_cluster + i;
      for (std::size_t f = 0; f < m; ++f) {
        x(r, f) = rng.normal(0.0, 0.15);
      }
      x(r, c) += 0.8;  // the defining signature feature
      labels->push_back(static_cast<int>(c));
    }
  }
  return x;
}

class SurrogateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    x_ = signature_data(4, 40, 3, 11, &labels_);
    SurrogateParams params;
    params.num_trees = 40;
    surrogate_ = std::make_unique<SurrogateExplainer>(x_, labels_, 4, params);
  }

  ml::Matrix x_;
  std::vector<int> labels_;
  std::unique_ptr<SurrogateExplainer> surrogate_;
};

TEST_F(SurrogateTest, HighFidelityOnSeparableClusters) {
  EXPECT_GT(surrogate_->fidelity(), 0.99);
  EXPECT_GT(surrogate_->oob_accuracy(), 0.9);
  EXPECT_EQ(surrogate_->num_clusters(), 4);
}

TEST_F(SurrogateTest, ClassifyReproducesTraining) {
  const auto pred = surrogate_->classify(x_);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    if (pred[i] == labels_[i]) ++hits;
  }
  EXPECT_GT(static_cast<double>(hits) / pred.size(), 0.99);
}

TEST_F(SurrogateTest, ShapRanksSignatureFeatureFirst) {
  const auto summary = surrogate_->explain(x_, labels_, 30);
  ASSERT_EQ(summary.per_cluster.size(), 4u);
  for (std::size_t c = 0; c < 4; ++c) {
    // The defining feature of cluster c tops its beeswarm ranking.
    EXPECT_EQ(summary.per_cluster[c].front().service, c) << "cluster " << c;
    // High feature value drives membership: positive correlation and a
    // positive mean value within the cluster.
    EXPECT_GT(summary.per_cluster[c].front().value_shap_correlation, 0.5);
    EXPECT_GT(summary.per_cluster[c].front().mean_value_in_cluster, 0.5);
  }
}

TEST_F(SurrogateTest, ShapSummaryRanksDescending) {
  const auto summary = surrogate_->explain(x_, labels_, 20);
  for (const auto& impacts : summary.per_cluster) {
    for (std::size_t r = 1; r < impacts.size(); ++r) {
      EXPECT_GE(impacts[r - 1].mean_abs_shap, impacts[r].mean_abs_shap);
    }
  }
}

TEST_F(SurrogateTest, BaseValuesAreClassPriors) {
  const auto summary = surrogate_->explain(x_, labels_, 10);
  ASSERT_EQ(summary.base_values.size(), 4u);
  double total = 0.0;
  for (const double b : summary.base_values) {
    EXPECT_GT(b, 0.0);
    total += b;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Balanced training set -> priors near 1/4.
  for (const double b : summary.base_values) EXPECT_NEAR(b, 0.25, 0.05);
}

TEST_F(SurrogateTest, NoiseFeaturesRankLow) {
  const auto summary = surrogate_->explain(x_, labels_, 30);
  // The three pure-noise features (indices 4, 5, 6) must never top a list.
  for (const auto& impacts : summary.per_cluster) {
    EXPECT_LT(impacts.front().service, 4u);
  }
}

TEST_F(SurrogateTest, SampleCapRespected) {
  const auto summary = surrogate_->explain(x_, labels_, 5);
  EXPECT_LE(summary.samples_used, 5u * 4u);
  EXPECT_GE(summary.samples_used, 4u);  // at least one per cluster
}

TEST_F(SurrogateTest, ExplainValidatesShapes) {
  EXPECT_THROW(surrogate_->explain(x_, std::vector<int>{0, 1}, 10),
               icn::util::PreconditionError);
  EXPECT_THROW(surrogate_->explain(x_, labels_, 0),
               icn::util::PreconditionError);
}

TEST(SurrogateConstructionTest, ShapeMismatchThrows) {
  ml::Matrix x(4, 2);
  const std::vector<int> labels = {0, 1};
  EXPECT_THROW(SurrogateExplainer(x, labels, 2),
               icn::util::PreconditionError);
}

}  // namespace
}  // namespace icn::core
