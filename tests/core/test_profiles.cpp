#include "core/profiles.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/rca.h"
#include "util/error.h"

namespace icn::core {
namespace {

class ClusterProfilesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ScenarioParams params;
    params.seed = 7;
    params.scale = 0.06;
    params.outdoor_ratio = 0.0;
    params.noise_shape = 0.0;
    scenario_ = new Scenario(Scenario::build(params));
    rsca_ = new ml::Matrix(
        compute_rsca(scenario_->demand().traffic_matrix()));
    labels_ = scenario_->demand().archetype_labels();
    ProfileParams pparams;
    pparams.top_n = 8;
    pparams.heatmap.max_antennas = 40;
    profiles_ = new std::vector<ClusterProfile>(build_cluster_profiles(
        *scenario_, *rsca_, labels_, 9, pparams));
  }
  static void TearDownTestSuite() {
    delete profiles_;
    delete rsca_;
    delete scenario_;
    profiles_ = nullptr;
    rsca_ = nullptr;
    scenario_ = nullptr;
  }

  static bool in_top(const ClusterProfile& p, const char* name) {
    const auto idx = scenario_->catalog().index_of(name);
    return idx && std::find(p.top_services.begin(), p.top_services.end(),
                            *idx) != p.top_services.end();
  }

  static Scenario* scenario_;
  static ml::Matrix* rsca_;
  static std::vector<int> labels_;
  static std::vector<ClusterProfile>* profiles_;
};

Scenario* ClusterProfilesTest::scenario_ = nullptr;
ml::Matrix* ClusterProfilesTest::rsca_ = nullptr;
std::vector<int> ClusterProfilesTest::labels_;
std::vector<ClusterProfile>* ClusterProfilesTest::profiles_ = nullptr;

TEST_F(ClusterProfilesTest, OneProfilePerClusterWithFullCoverage) {
  ASSERT_EQ(profiles_->size(), 9u);
  std::size_t total = 0;
  for (const auto& p : *profiles_) total += p.size;
  EXPECT_EQ(total, scenario_->num_antennas());
}

TEST_F(ClusterProfilesTest, CharacterizingServicesMatchArchetypes) {
  EXPECT_TRUE(in_top((*profiles_)[3], "Microsoft Teams"));
  EXPECT_TRUE(in_top((*profiles_)[3], "LinkedIn"));
  EXPECT_TRUE(in_top((*profiles_)[2], "Google Play Store") ||
              in_top((*profiles_)[2], "Shopping Websites"));
  // Orange commuters: a music or niche-transport service tops the profile.
  bool orange_music = false;
  for (const char* svc : {"Spotify", "Deezer", "SoundCloud", "Apple Music",
                          "Amazon Music", "Mappy", "RATP",
                          "Transportation Websites"}) {
    orange_music = orange_music || in_top((*profiles_)[0], svc);
  }
  EXPECT_TRUE(orange_music);
}

TEST_F(ClusterProfilesTest, TopServicesHavePositiveMeanRsca) {
  for (const auto& p : *profiles_) {
    for (const std::size_t j : p.top_services) {
      double mean = 0.0;
      std::size_t count = 0;
      for (std::size_t i = 0; i < rsca_->rows(); ++i) {
        if (labels_[i] == p.cluster) {
          mean += (*rsca_)(i, j);
          ++count;
        }
      }
      EXPECT_GT(mean / static_cast<double>(count), 0.0)
          << "cluster " << p.cluster << " service " << j;
    }
  }
}

TEST_F(ClusterProfilesTest, TemporalStatsMatchArchetypeSemantics) {
  // Commuter cluster peaks in a commute window, workspace in office hours.
  const auto& commuter = (*profiles_)[0];
  EXPECT_TRUE((commuter.peak_hour >= 7 && commuter.peak_hour <= 9) ||
              (commuter.peak_hour >= 17 && commuter.peak_hour <= 19))
      << commuter.peak_hour;
  const auto& office = (*profiles_)[3];
  EXPECT_GE(office.peak_hour, 8);
  EXPECT_LE(office.peak_hour, 18);
  // Workspaces idle on weekends; general-use cluster 1 does not.
  EXPECT_LT(office.weekend_ratio, 0.3);
  EXPECT_GT((*profiles_)[1].weekend_ratio, 0.7);
  // Hotels/hospitals (cluster 2) carry more night traffic than offices.
  EXPECT_GT((*profiles_)[2].night_share, office.night_share);
}

TEST_F(ClusterProfilesTest, VenueClustersAreBurstiest) {
  // Event-driven clusters 6/8 out-burst the diurnal clusters 1/2/3.
  const double venue = std::max((*profiles_)[6].burstiness,
                                (*profiles_)[8].burstiness);
  const double diurnal = std::max({(*profiles_)[1].burstiness,
                                   (*profiles_)[2].burstiness,
                                   (*profiles_)[3].burstiness});
  EXPECT_GT(venue, diurnal * 1.5);
}

TEST_F(ClusterProfilesTest, DescribeMentionsKeyFacts) {
  const std::string text = describe_profile(*scenario_, (*profiles_)[3]);
  EXPECT_NE(text.find("cluster 3"), std::string::npos);
  EXPECT_NE(text.find("peak h"), std::string::npos);
  EXPECT_NE(text.find("weekend"), std::string::npos);
}

TEST_F(ClusterProfilesTest, InputValidation) {
  EXPECT_THROW(build_cluster_profiles(*scenario_, *rsca_,
                                      std::vector<int>{0, 1}, 9),
               icn::util::PreconditionError);
  std::vector<int> bad = labels_;
  bad[0] = 42;
  EXPECT_THROW(build_cluster_profiles(*scenario_, *rsca_, bad, 9),
               icn::util::PreconditionError);
}

}  // namespace
}  // namespace icn::core
