// Calibration suite: asserts the paper's headline claims end-to-end on a
// reduced-scale study (the full-scale versions are printed by bench/).
// One shared pipeline run keeps the suite fast.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/environment_analysis.h"
#include "core/outdoor.h"
#include "core/pipeline.h"
#include "core/temporal_analysis.h"
#include "util/calendar.h"

namespace icn::core {
namespace {

class PaperClaimsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    PipelineParams params;
    params.scenario.seed = 2023;
    params.scenario.scale = 0.12;
    params.scenario.outdoor_ratio = 1.0;
    params.surrogate.num_trees = 40;
    result_ = new PipelineResult(run_pipeline(params));
    shap_ = new ShapSummary(result_->surrogate->explain(
        result_->rsca, result_->clusters.labels, /*max_per_cluster=*/50));
  }
  static void TearDownTestSuite() {
    delete shap_;
    delete result_;
    shap_ = nullptr;
    result_ = nullptr;
  }

  /// True when the service appears in the cluster's top-40 SHAP ranking
  /// with the requested direction (+1 over-utilized, -1 under-utilized).
  /// (The benches check the paper's top-25 at full scale; the reduced-scale
  /// calibration run uses a slightly deeper window.)
  static bool ranked(int cluster, const char* name, int direction) {
    const auto idx = result_->scenario.catalog().index_of(name);
    if (!idx) return false;
    const auto& impacts =
        shap_->per_cluster[static_cast<std::size_t>(cluster)];
    for (std::size_t r = 0; r < std::min<std::size_t>(40, impacts.size());
         ++r) {
      if (impacts[r].service != *idx) continue;
      const bool over = impacts[r].mean_value_in_cluster > 0.0;
      return direction > 0 ? over : !over;
    }
    return false;
  }

  static PipelineResult* result_;
  static ShapSummary* shap_;
};

PipelineResult* PaperClaimsTest::result_ = nullptr;
ShapSummary* PaperClaimsTest::shap_ = nullptr;

// --- Sec. 4.2: clustering structure --------------------------------------

TEST_F(PaperClaimsTest, NineClustersRecovered) {
  EXPECT_EQ(result_->clusters.chosen_k, 9u);
  EXPECT_GT(result_->ari_vs_archetypes, 0.97);
}

TEST_F(PaperClaimsTest, KneeNearNineInSweep) {
  // Both the k=6 and k=9 knees the paper reports should rank among the
  // steepest combined drops of the sweep.
  const auto& sweep = result_->clusters.sweep;
  double max_sil = 0.0, max_dunn = 0.0;
  for (const auto& p : sweep) {
    max_sil = std::max(max_sil, p.silhouette);
    max_dunn = std::max(max_dunn, p.dunn);
  }
  std::vector<std::pair<double, std::size_t>> drops;
  for (std::size_t i = 0; i + 1 < sweep.size(); ++i) {
    drops.emplace_back(
        (sweep[i].silhouette - sweep[i + 1].silhouette) / max_sil +
            (sweep[i].dunn - sweep[i + 1].dunn) / max_dunn,
        sweep[i].k);
  }
  std::sort(drops.rbegin(), drops.rend());
  const std::vector<std::size_t> top = {drops[0].second, drops[1].second,
                                        drops[2].second};
  EXPECT_TRUE(std::find(top.begin(), top.end(), 9u) != top.end())
      << "k=9 not among the top-3 knees";
}

TEST_F(PaperClaimsTest, DendrogramConsolidationAtSix) {
  // k=6 merges the orange clusters into one and fuses 6 with 8 (Sec. 4.2.2).
  const auto& d = result_->clusters.dendrogram;
  const auto k6 = d.cut(6);
  const auto k9_raw = d.cut(9);
  std::array<int, 9> raw_to_k6;
  raw_to_k6.fill(-1);
  for (std::size_t i = 0; i < k6.size(); ++i) {
    raw_to_k6[static_cast<std::size_t>(k9_raw[i])] = k6[i];
  }
  std::array<int, 9> paper_to_k6;
  paper_to_k6.fill(-1);
  for (std::size_t raw = 0; raw < 9; ++raw) {
    paper_to_k6[static_cast<std::size_t>(result_->label_map[raw])] =
        raw_to_k6[raw];
  }
  EXPECT_EQ(paper_to_k6[0], paper_to_k6[4]);
  EXPECT_EQ(paper_to_k6[0], paper_to_k6[7]);
  EXPECT_EQ(paper_to_k6[6], paper_to_k6[8]);
  EXPECT_NE(paper_to_k6[5], paper_to_k6[6]);
  EXPECT_NE(paper_to_k6[1], paper_to_k6[3]);
}

// --- Sec. 5.1.2: SHAP signatures ------------------------------------------

TEST_F(PaperClaimsTest, OrangeGroupShapSignature) {
  for (const int c : {0, 4, 7}) {
    EXPECT_TRUE(ranked(c, "Spotify", +1)) << "cluster " << c;
  }
  EXPECT_TRUE(ranked(0, "Mappy", +1));
  EXPECT_TRUE(ranked(4, "Transportation Websites", +1));
  EXPECT_TRUE(ranked(7, "Mappy", -1));
  EXPECT_TRUE(ranked(4, "Yahoo", -1));
}

TEST_F(PaperClaimsTest, GreenGroupShapSignature) {
  for (const int c : {6, 8}) {
    EXPECT_TRUE(ranked(c, "Snapchat", +1)) << "cluster " << c;
    EXPECT_TRUE(ranked(c, "Twitter", +1)) << "cluster " << c;
  }
  EXPECT_TRUE(ranked(8, "Giphy", +1));
}

TEST_F(PaperClaimsTest, RedGroupShapSignature) {
  EXPECT_TRUE(ranked(3, "Microsoft Teams", +1));
  EXPECT_TRUE(ranked(3, "LinkedIn", +1));
  EXPECT_TRUE(ranked(1, "Waze", +1));
  EXPECT_TRUE(ranked(2, "Google Play Store", +1));
  EXPECT_TRUE(ranked(2, "Shopping Websites", +1));
}

// --- Sec. 5.2: environment correlation -------------------------------------

TEST_F(PaperClaimsTest, EnvironmentCorrespondence) {
  const EnvironmentCorrelation env(result_->scenario,
                                   result_->clusters.labels, 9);
  for (const std::size_t c : {0u, 4u, 7u}) {
    EXPECT_GT(env.share_of_cluster(c, net::Environment::kMetro) +
                  env.share_of_cluster(c, net::Environment::kTrain),
              0.95);
  }
  EXPECT_GT(env.paris_share(0), 0.85);
  EXPECT_LT(env.paris_share(7), 0.05);
  EXPECT_GT(env.share_of_cluster(3, net::Environment::kWorkspace), 0.5);
  EXPECT_GT(env.share_of_environment(net::Environment::kHospital, 2), 0.7);
  EXPECT_GT(env.share_of_environment(net::Environment::kTunnel, 1), 0.8);
}

// --- Sec. 5.3: outdoor comparison ------------------------------------------

TEST_F(PaperClaimsTest, OutdoorCollapse) {
  const auto comparison = compare_outdoor(
      result_->scenario, *result_->surrogate,
      result_->scenario.demand().traffic_matrix());
  EXPECT_GT(comparison.distribution[1], 0.55);
  const double indoor_specific =
      comparison.distribution[0] + comparison.distribution[3] +
      comparison.distribution[4] + comparison.distribution[6] +
      comparison.distribution[7] + comparison.distribution[8];
  EXPECT_LT(indoor_specific, 0.2);
}

// --- Sec. 6: temporal signatures --------------------------------------------

TEST_F(PaperClaimsTest, TemporalSignatures) {
  const auto& temporal = result_->scenario.temporal();
  const auto& labels = result_->clusters.labels;
  HeatmapParams params;
  params.max_antennas = 50;

  const auto orange = cluster_total_heatmap(temporal, labels, 0, params);
  const auto orange_hours = hour_of_day_profile(orange);
  EXPECT_GT(orange_hours[8], orange_hours[13] * 1.5);

  const auto work = cluster_total_heatmap(temporal, labels, 3, params);
  const auto work_days = day_profile(work);
  // Window starts Wed 04 Jan: Sat is day 3, Mon is day 5.
  EXPECT_GT(work_days[5], work_days[3] * 3.0);

  // Strike day (19 Jan, window day 15) collapses the Paris commuter
  // clusters.
  const auto strike_d = static_cast<std::size_t>(
      icn::util::temporal_window().index_of(icn::util::strike_day()));
  const auto orange_days = day_profile(orange);
  EXPECT_LT(orange_days[strike_d], orange_days[strike_d - 7] * 0.35);
}

}  // namespace
}  // namespace icn::core
