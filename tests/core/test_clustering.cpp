#include "core/clustering.h"

#include <gtest/gtest.h>

#include <set>

#include "util/error.h"
#include "util/rng.h"
#include "util/stats.h"

namespace icn::core {
namespace {

/// `k` well-separated Gaussian blobs in 3D.
ml::Matrix blobs(std::size_t k, std::size_t per_blob, std::uint64_t seed,
                 std::vector<int>* truth) {
  icn::util::Rng rng(seed);
  ml::Matrix x(k * per_blob, 3);
  for (std::size_t b = 0; b < k; ++b) {
    for (std::size_t i = 0; i < per_blob; ++i) {
      const std::size_t r = b * per_blob + i;
      x(r, 0) = static_cast<double>(b) * 12.0 + rng.normal(0.0, 0.5);
      x(r, 1) = static_cast<double>(b % 2) * 10.0 + rng.normal(0.0, 0.5);
      x(r, 2) = rng.normal(0.0, 0.5);
      truth->push_back(static_cast<int>(b));
    }
  }
  return x;
}

TEST(AnalyzeClustersTest, RecoversPlantedStructure) {
  std::vector<int> truth;
  const ml::Matrix x = blobs(5, 25, 3, &truth);
  ClusterAnalysisParams params;
  params.k_max = 10;
  params.chosen_k = 5;
  const auto result = analyze_clusters(x, params);
  EXPECT_EQ(result.chosen_k, 5u);
  EXPECT_DOUBLE_EQ(
      icn::util::adjusted_rand_index(result.labels, truth), 1.0);
}

TEST(AnalyzeClustersTest, SweepCoversRequestedRange) {
  std::vector<int> truth;
  const ml::Matrix x = blobs(3, 20, 5, &truth);
  ClusterAnalysisParams params;
  params.k_min = 2;
  params.k_max = 8;
  params.chosen_k = 3;
  const auto result = analyze_clusters(x, params);
  ASSERT_EQ(result.sweep.size(), 7u);
  EXPECT_EQ(result.sweep.front().k, 2u);
  EXPECT_EQ(result.sweep.back().k, 8u);
  for (const auto& p : result.sweep) {
    EXPECT_GE(p.silhouette, -1.0);
    EXPECT_LE(p.silhouette, 1.0);
    EXPECT_GE(p.dunn, 0.0);
  }
}

TEST(AnalyzeClustersTest, SilhouettePeaksAtTrueK) {
  std::vector<int> truth;
  const ml::Matrix x = blobs(4, 30, 7, &truth);
  ClusterAnalysisParams params;
  params.k_max = 10;
  params.chosen_k = 0;  // use suggest_k
  const auto result = analyze_clusters(x, params);
  double best_sil = -2.0;
  std::size_t best_k = 0;
  for (const auto& p : result.sweep) {
    if (p.silhouette > best_sil) {
      best_sil = p.silhouette;
      best_k = p.k;
    }
  }
  EXPECT_EQ(best_k, 4u);
  EXPECT_EQ(result.chosen_k, 4u);  // suggest_k finds the drop after 4
}

TEST(AnalyzeClustersTest, ChosenKZeroUsesSuggestion) {
  std::vector<int> truth;
  const ml::Matrix x = blobs(3, 20, 9, &truth);
  ClusterAnalysisParams params;
  params.chosen_k = 0;
  params.k_max = 8;
  const auto result = analyze_clusters(x, params);
  EXPECT_EQ(result.chosen_k, 3u);
  std::set<int> distinct(result.labels.begin(), result.labels.end());
  EXPECT_EQ(distinct.size(), 3u);
}

TEST(AnalyzeClustersTest, LabelsMatchDendrogramCut) {
  std::vector<int> truth;
  const ml::Matrix x = blobs(3, 15, 11, &truth);
  ClusterAnalysisParams params;
  params.chosen_k = 4;
  const auto result = analyze_clusters(x, params);
  EXPECT_EQ(result.labels, result.dendrogram.cut(4));
}

TEST(AnalyzeClustersTest, AlternativeLinkagesSupported) {
  std::vector<int> truth;
  const ml::Matrix x = blobs(3, 15, 13, &truth);
  for (const auto linkage :
       {ml::Linkage::kComplete, ml::Linkage::kAverage, ml::Linkage::kSingle}) {
    ClusterAnalysisParams params;
    params.linkage = linkage;
    params.chosen_k = 3;
    const auto result = analyze_clusters(x, params);
    EXPECT_DOUBLE_EQ(
        icn::util::adjusted_rand_index(result.labels, truth), 1.0)
        << ml::linkage_name(linkage);
  }
}

TEST(AnalyzeClustersTest, InputValidation) {
  std::vector<int> truth;
  const ml::Matrix x = blobs(2, 5, 15, &truth);  // 10 samples
  ClusterAnalysisParams params;
  params.k_max = 15;  // more than samples
  EXPECT_THROW(analyze_clusters(x, params), icn::util::PreconditionError);
  params.k_max = 5;
  params.k_min = 1;
  EXPECT_THROW(analyze_clusters(x, params), icn::util::PreconditionError);
}

TEST(SuggestKTest, FindsSteepestDrop) {
  std::vector<KSelectionPoint> sweep = {
      {2, 0.30, 0.5}, {3, 0.32, 0.5}, {4, 0.35, 0.6},
      {5, 0.10, 0.2}, {6, 0.08, 0.2},
  };
  EXPECT_EQ(suggest_k(sweep), 4u);
}

TEST(SuggestKTest, RequiresTwoPoints) {
  std::vector<KSelectionPoint> sweep = {{2, 0.3, 0.5}};
  EXPECT_THROW(suggest_k(sweep), icn::util::PreconditionError);
}

}  // namespace
}  // namespace icn::core
