#include "core/scenario.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace icn::core {
namespace {

ScenarioParams small_params(std::uint64_t seed = 1) {
  ScenarioParams p;
  p.seed = seed;
  p.scale = 0.03;
  p.outdoor_ratio = 0.5;
  return p;
}

TEST(ScenarioTest, BuildWiresEverythingTogether) {
  const Scenario s = Scenario::build(small_params());
  EXPECT_EQ(s.num_services(), 73u);
  EXPECT_GT(s.num_antennas(), 100u);
  EXPECT_EQ(s.demand().traffic_matrix().rows(), s.num_antennas());
  EXPECT_EQ(s.demand().traffic_matrix().cols(), s.num_services());
  EXPECT_EQ(s.temporal().period().num_days(), 65);
  EXPECT_EQ(&s.demand().topology(), &s.topology());
  EXPECT_EQ(&s.demand().archetypes(), &s.archetypes());
  EXPECT_EQ(&s.temporal().demand(), &s.demand());
}

TEST(ScenarioTest, DeterministicAcrossBuilds) {
  const Scenario a = Scenario::build(small_params(42));
  const Scenario b = Scenario::build(small_params(42));
  EXPECT_EQ(a.num_antennas(), b.num_antennas());
  EXPECT_EQ(a.demand().archetype_labels(), b.demand().archetype_labels());
  for (std::size_t i = 0; i < a.demand().traffic_matrix().data().size();
       ++i) {
    EXPECT_DOUBLE_EQ(a.demand().traffic_matrix().data()[i],
                     b.demand().traffic_matrix().data()[i]);
  }
}

TEST(ScenarioTest, SeedsAreIndependentSubstreams) {
  const Scenario a = Scenario::build(small_params(1));
  const Scenario b = Scenario::build(small_params(2));
  bool differs = a.num_antennas() != b.num_antennas();
  if (!differs) {
    differs = a.demand().archetype_labels() != b.demand().archetype_labels();
  }
  EXPECT_TRUE(differs);
}

TEST(ScenarioTest, ScaleControlsPopulation) {
  ScenarioParams big = small_params();
  big.scale = 0.06;
  const Scenario a = Scenario::build(small_params());
  const Scenario b = Scenario::build(big);
  EXPECT_GT(b.num_antennas(), a.num_antennas() * 1.5);
}

TEST(ScenarioTest, RejectsNonPositiveScale) {
  ScenarioParams p = small_params();
  p.scale = 0.0;
  EXPECT_THROW(Scenario::build(p), icn::util::PreconditionError);
}

}  // namespace
}  // namespace icn::core
