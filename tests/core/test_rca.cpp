#include "core/rca.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.h"
#include "util/rng.h"

namespace icn::core {
namespace {

TEST(RcaTest, HandComputedExample) {
  // Two antennas, two services:
  //   T = [30 10]   antenna totals 40, 60; service totals 60, 40; T_tot 100.
  //       [30 30]
  ml::Matrix t(2, 2, {30.0, 10.0, 30.0, 30.0});
  const ml::Matrix rca = compute_rca(t);
  EXPECT_NEAR(rca(0, 0), (30.0 / 40.0) / (60.0 / 100.0), 1e-12);
  EXPECT_NEAR(rca(0, 1), (10.0 / 40.0) / (40.0 / 100.0), 1e-12);
  EXPECT_NEAR(rca(1, 0), (30.0 / 60.0) / (60.0 / 100.0), 1e-12);
  EXPECT_NEAR(rca(1, 1), (30.0 / 60.0) / (40.0 / 100.0), 1e-12);
}

TEST(RcaTest, UniformTrafficIsNeutral) {
  // When every antenna has the same mix, every RCA is exactly 1.
  ml::Matrix t(3, 4);
  for (std::size_t i = 0; i < 3; ++i) {
    const double scale = static_cast<double>(i + 1);
    for (std::size_t j = 0; j < 4; ++j) {
      t(i, j) = scale * static_cast<double>(j + 1);
    }
  }
  const ml::Matrix rca = compute_rca(t);
  for (const double v : rca.data()) EXPECT_NEAR(v, 1.0, 1e-12);
}

TEST(RcaTest, ScaleInvariantPerAntenna) {
  // Multiplying an antenna's whole row by a constant leaves its RCA... NOT
  // unchanged in general (the denominator shifts), but multiplying the whole
  // matrix by a constant changes nothing.
  icn::util::Rng rng(3);
  ml::Matrix t(5, 6);
  for (auto& v : t.data()) v = rng.uniform(1.0, 10.0);
  ml::Matrix t2 = t;
  for (auto& v : t2.data()) v *= 37.5;
  const ml::Matrix a = compute_rca(t);
  const ml::Matrix b = compute_rca(t2);
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    EXPECT_NEAR(a.data()[i], b.data()[i], 1e-9);
  }
}

TEST(RcaTest, ShareWeightedMeanIsOne) {
  // Identity: sum_j RCA(i,j) * global_share(j) = 1 for every antenna.
  icn::util::Rng rng(5);
  ml::Matrix t(8, 10);
  for (auto& v : t.data()) v = rng.uniform(0.0, 5.0);
  // Global service shares.
  std::vector<double> share(10, 0.0);
  double total = 0.0;
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 10; ++j) {
      share[j] += t(i, j);
      total += t(i, j);
    }
  }
  for (auto& s : share) s /= total;
  const ml::Matrix rca = compute_rca(t);
  for (std::size_t i = 0; i < 8; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < 10; ++j) acc += rca(i, j) * share[j];
    EXPECT_NEAR(acc, 1.0, 1e-9);
  }
}

TEST(RcaTest, ZeroGlobalServiceIsNeutral) {
  ml::Matrix t(2, 2, {10.0, 0.0, 20.0, 0.0});
  const ml::Matrix rca = compute_rca(t);
  EXPECT_DOUBLE_EQ(rca(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(rca(1, 1), 1.0);
}

TEST(RcaTest, RejectsDegenerateInput) {
  EXPECT_THROW(compute_rca(ml::Matrix{}), icn::util::PreconditionError);
  ml::Matrix zero_row(2, 2, {1.0, 1.0, 0.0, 0.0});
  EXPECT_THROW(compute_rca(zero_row), icn::util::PreconditionError);
  ml::Matrix negative(1, 2, {1.0, -1.0});
  EXPECT_THROW(compute_rca(negative), icn::util::PreconditionError);
}

TEST(RscaTest, MapsIntoSymmetricInterval) {
  // RSCA = (RCA-1)/(RCA+1): 0 -> -1, 1 -> 0, inf -> 1.
  ml::Matrix rca(1, 3, {0.0, 1.0, 3.0});
  const ml::Matrix rsca = rca_to_rsca(rca);
  EXPECT_DOUBLE_EQ(rsca(0, 0), -1.0);
  EXPECT_DOUBLE_EQ(rsca(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(rsca(0, 2), 0.5);
}

TEST(RscaTest, IsMonotoneInRca) {
  ml::Matrix rca(1, 4, {0.1, 0.5, 2.0, 10.0});
  const ml::Matrix rsca = rca_to_rsca(rca);
  for (std::size_t j = 1; j < 4; ++j) {
    EXPECT_GT(rsca(0, j), rsca(0, j - 1));
  }
}

TEST(RscaTest, SymmetryProperty) {
  // RSCA(r) == -RSCA(1/r): the whole point of the symmetric transform.
  for (const double r : {0.1, 0.25, 0.5, 2.0, 7.5}) {
    ml::Matrix m(1, 2, {r, 1.0 / r});
    const ml::Matrix rsca = rca_to_rsca(m);
    EXPECT_NEAR(rsca(0, 0), -rsca(0, 1), 1e-12);
  }
}

TEST(RscaTest, BoundsAlwaysHold) {
  icn::util::Rng rng(7);
  ml::Matrix t(20, 15);
  for (auto& v : t.data()) v = rng.uniform(0.0, 100.0);
  const ml::Matrix rsca = compute_rsca(t);
  for (const double v : rsca.data()) {
    EXPECT_GE(v, -1.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(RscaTest, RejectsNegativeRca) {
  ml::Matrix rca(1, 1, {-0.5});
  EXPECT_THROW(rca_to_rsca(rca), icn::util::PreconditionError);
}

/// Property sweep over random matrix shapes: the RCA/RSCA invariants must
/// hold regardless of dimensions.
class RcaPropertyTest
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(RcaPropertyTest, InvariantsHoldOnRandomMatrices) {
  const auto [n, m] = GetParam();
  icn::util::Rng rng(icn::util::derive_seed(91, n, m));
  ml::Matrix t(n, m);
  for (auto& v : t.data()) v = rng.uniform(0.01, 50.0);
  const ml::Matrix rca = compute_rca(t);
  const ml::Matrix rsca = compute_rsca(t);

  // Global service shares for the weighted-mean identity.
  std::vector<double> share(m, 0.0);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      share[j] += t(i, j);
      total += t(i, j);
    }
  }
  for (auto& s : share) s /= total;

  for (std::size_t i = 0; i < n; ++i) {
    double weighted = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
      EXPECT_GE(rca(i, j), 0.0);
      // RSCA is the Möbius image of RCA: invertible round trip.
      const double back =
          (1.0 + rsca(i, j)) / (1.0 - rsca(i, j));
      EXPECT_NEAR(back, rca(i, j), 1e-9 * std::max(1.0, rca(i, j)));
      EXPECT_GE(rsca(i, j), -1.0);
      EXPECT_LE(rsca(i, j), 1.0);
      weighted += rca(i, j) * share[j];
    }
    EXPECT_NEAR(weighted, 1.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RcaPropertyTest,
    ::testing::Values(std::pair<std::size_t, std::size_t>{2, 2},
                      std::pair<std::size_t, std::size_t>{5, 17},
                      std::pair<std::size_t, std::size_t>{40, 3},
                      std::pair<std::size_t, std::size_t>{30, 73},
                      std::pair<std::size_t, std::size_t>{1, 10}));

TEST(OutdoorRcaTest, UsesIndoorBaseline) {
  // Indoor baseline: service shares 0.6 / 0.4.
  ml::Matrix indoor(2, 2, {30.0, 10.0, 30.0, 30.0});
  // One outdoor antenna with mix 0.5 / 0.5.
  ml::Matrix outdoor(1, 2, {50.0, 50.0});
  const ml::Matrix rca = compute_outdoor_rca(outdoor, indoor);
  EXPECT_NEAR(rca(0, 0), 0.5 / 0.6, 1e-12);
  EXPECT_NEAR(rca(0, 1), 0.5 / 0.4, 1e-12);
}

TEST(OutdoorRcaTest, IndoorMixYieldsNeutralOutdoor) {
  // An outdoor antenna with exactly the aggregate indoor mix gets RCA = 1.
  ml::Matrix indoor(2, 3, {10.0, 20.0, 30.0, 30.0, 20.0, 10.0});
  ml::Matrix outdoor(1, 3, {40.0, 40.0, 40.0});
  const ml::Matrix rca = compute_outdoor_rca(outdoor, indoor);
  for (std::size_t j = 0; j < 3; ++j) EXPECT_NEAR(rca(0, j), 1.0, 1e-12);
}

TEST(OutdoorRcaTest, DimensionMismatchThrows) {
  ml::Matrix indoor(1, 3, {1.0, 2.0, 3.0});
  ml::Matrix outdoor(1, 2, {1.0, 2.0});
  EXPECT_THROW(compute_outdoor_rca(outdoor, indoor),
               icn::util::PreconditionError);
}

TEST(OutdoorRcaTest, RscaComposition) {
  ml::Matrix indoor(2, 2, {30.0, 10.0, 30.0, 30.0});
  ml::Matrix outdoor(1, 2, {50.0, 50.0});
  const ml::Matrix direct = compute_outdoor_rsca(outdoor, indoor);
  const ml::Matrix composed =
      rca_to_rsca(compute_outdoor_rca(outdoor, indoor));
  for (std::size_t i = 0; i < direct.data().size(); ++i) {
    EXPECT_DOUBLE_EQ(direct.data()[i], composed.data()[i]);
  }
}

}  // namespace
}  // namespace icn::core
