#include "core/outdoor.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/pipeline.h"
#include "core/rca.h"

namespace icn::core {
namespace {

class OutdoorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    PipelineParams params;
    params.scenario.seed = 5;
    params.scenario.scale = 0.08;
    params.scenario.outdoor_ratio = 2.0;
    params.surrogate.num_trees = 60;
    result_ = std::make_unique<PipelineResult>(run_pipeline(params));
  }

  std::unique_ptr<PipelineResult> result_;
};

TEST_F(OutdoorTest, ClassifiesEveryOutdoorAntenna) {
  const auto comparison = compare_outdoor(
      result_->scenario, *result_->surrogate,
      result_->scenario.demand().traffic_matrix());
  EXPECT_EQ(comparison.predicted.size(),
            result_->scenario.topology().outdoor().size());
  EXPECT_EQ(comparison.rsca.rows(), comparison.predicted.size());
  double total = 0.0;
  for (const double f : comparison.distribution) {
    EXPECT_GE(f, 0.0);
    total += f;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_F(OutdoorTest, OutdoorCollapsesIntoGeneralUseCluster) {
  // The paper's Fig. 9: ~70% of outdoor antennas land in cluster 1, and the
  // indoor-specific clusters (orange transit, workplaces, stadiums) are
  // nearly empty.
  const auto comparison = compare_outdoor(
      result_->scenario, *result_->surrogate,
      result_->scenario.demand().traffic_matrix());
  EXPECT_GT(comparison.distribution[1], 0.5);
  const double indoor_specific =
      comparison.distribution[0] + comparison.distribution[4] +
      comparison.distribution[7] + comparison.distribution[3] +
      comparison.distribution[6] + comparison.distribution[8];
  EXPECT_LT(indoor_specific, 0.15);
}

TEST_F(OutdoorTest, OutdoorRscaIsNearNeutral) {
  // Outdoor mixes hug the global baseline: median |RSCA| well below the
  // indoor spread.
  const auto comparison = compare_outdoor(
      result_->scenario, *result_->surrogate,
      result_->scenario.demand().traffic_matrix());
  double acc = 0.0;
  for (const double v : comparison.rsca.data()) acc += std::fabs(v);
  const double outdoor_mean = acc / comparison.rsca.data().size();
  double indoor_acc = 0.0;
  for (const double v : result_->rsca.data()) indoor_acc += std::fabs(v);
  const double indoor_mean = indoor_acc / result_->rsca.data().size();
  EXPECT_LT(outdoor_mean, indoor_mean);
}

}  // namespace
}  // namespace icn::core
