// The epoll reactor end to end: session lifecycle over real sockets, typed
// protocol errors without disconnects, admission control, deterministic
// rate limiting on the virtual tick clock, RCU snapshot hand-off, and the
// acceptance gate of the serving layer — 64 concurrent clients issuing
// mixed queries while the writer hot-swaps generations, with every observed
// reply byte-identical to the single-threaded deterministic mode's answer
// for the generation it was served from.
#include "serve/server.h"

#include <gtest/gtest.h>

#include <sys/socket.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.h"
#include "serve/command_table.h"
#include "store/snapshot.h"
#include "util/bytes.h"
#include "util/error.h"

namespace icn::serve {
namespace {

/// Unique file path in the test temp dir; removed on destruction.
class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(::testing::TempDir() + "icn_serve_" + name) {
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Writes a snapshot whose contents are a function of `flavor`, so
/// different generations in the hot-swap tests serve different bytes.
void write_flavored_snapshot(const std::string& path, std::uint32_t flavor,
                             std::size_t antennas = 5,
                             std::size_t services = 3) {
  const std::int64_t hours = 4 + static_cast<std::int64_t>(flavor % 3) * 2;
  store::SnapshotWriter writer(path);
  std::vector<std::uint32_t> ids(antennas);
  for (std::size_t i = 0; i < antennas; ++i) {
    ids[i] = static_cast<std::uint32_t>(100 + i);
  }
  writer.append_stream_meta(ids, services, hours);
  ml::Matrix totals(antennas, services);
  std::vector<double> cells(antennas * services);
  for (std::int64_t h = 0; h < hours; ++h) {
    for (std::size_t a = 0; a < antennas; ++a) {
      for (std::size_t s = 0; s < services; ++s) {
        const double mb = static_cast<double>(1 + flavor) *
                          static_cast<double>(100 * h + 10 * a + s + 1);
        cells[a * services + s] = mb;
        totals(a, s) += mb;
      }
    }
    writer.append_window(h, cells);
  }
  writer.append_matrix(totals);
  if (flavor % 2 == 0) {
    const std::vector<std::uint32_t> rejected(
        static_cast<std::size_t>(hours), flavor);
    const std::vector<std::uint32_t> repaired(
        static_cast<std::size_t>(hours), 1);
    writer.append_quarantine(hours, rejected, repaired);
  }
  writer.sync();
}

ServedAnalytics flavored_analytics(std::uint32_t flavor,
                                   std::size_t antennas = 5) {
  ServedAnalytics analytics;
  analytics.num_clusters = 2;
  for (std::size_t i = 0; i < antennas; ++i) {
    analytics.labels.push_back(static_cast<int>((i + flavor) % 2));
  }
  analytics.shap.resize(2);
  analytics.shap[0] = {{0, 0.5 + flavor, 0.7, 100.0 + flavor}};
  analytics.shap[1] = {{2, 0.9, -0.2, 50.0}, {1, 0.1, 0.3, 10.0}};
  return analytics;
}

// --- TokenBucket ---------------------------------------------------------

TEST(TokenBucketTest, DisabledBucketNeverLimits) {
  TokenBucket bucket(0, 0);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(bucket.try_take());
}

TEST(TokenBucketTest, RefillsPerTickUpToBurst) {
  TokenBucket bucket(2, 4);  // 2 tokens/tick, burst 4.
  bucket.advance(1);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(bucket.try_take());
  EXPECT_FALSE(bucket.try_take());  // Burst exhausted within one tick.
  bucket.advance(2);
  EXPECT_TRUE(bucket.try_take());
  EXPECT_TRUE(bucket.try_take());
  EXPECT_FALSE(bucket.try_take());  // Only rate=2 refilled.
  bucket.advance(1000000);          // Long idle: clamped to burst.
  EXPECT_EQ(bucket.tokens(), 4u);
}

// --- Step-driven (deterministic single-threaded mode) --------------------

/// Drives `server.step()` until `fd` has one whole reply frame, and returns
/// the frame's payload. The server runs on *this* thread — this is the
/// deterministic mode the byte-exactness test compares against.
std::vector<std::uint8_t> pump_reply(Server& server, int fd,
                                     int max_steps = 200) {
  icn::util::ByteQueue stream;
  for (int i = 0; i < max_steps; ++i) {
    server.step(10);
    auto span = stream.grow_tail(4096);
    const ssize_t n =
        ::recv(fd, span.data(), span.size(), MSG_DONTWAIT);
    stream.shrink_tail(span.size() - static_cast<std::size_t>(std::max<ssize_t>(0, n)));
    const FrameResult frame = try_parse_frame(stream.data(), kDefaultMaxFrame);
    if (frame.kind == FrameResult::Kind::kFrame) {
      return {frame.payload.begin(), frame.payload.end()};
    }
  }
  ADD_FAILURE() << "no reply after " << max_steps << " steps";
  return {};
}

TEST(ServeServerTest, PingBeforeAnyPublishServesGenerationZero) {
  SnapshotRegistry registry;
  Server server(ServeConfig{}, registry);
  icn::util::Fd client = icn::util::connect_loopback(server.port());
  const auto frame = build_request(7, Opcode::kPing);
  icn::util::write_all(client.get(), frame);
  const auto payload = pump_reply(server, client.get());
  const auto reply = decode_reply(payload);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->request_id, 7u);
  EXPECT_EQ(reply->status, Status::kOk);
  EXPECT_EQ(reply->generation, 0u);
  EXPECT_EQ(server.stats().connections_accepted, 1u);
  EXPECT_EQ(server.stats().frames_served, 1u);
}

TEST(ServeServerTest, MalformedBodyGetsTypedReplyAndConnectionSurvives) {
  TempFile file("malformed.snap");
  write_flavored_snapshot(file.path(), 0);
  SnapshotRegistry registry;
  registry.publish_file(file.path());
  Server server(ServeConfig{}, registry);
  icn::util::Fd client = icn::util::connect_loopback(server.port());

  // A cluster request with a 3-byte body (expects 4).
  const std::vector<std::uint8_t> bad_body{1, 2, 3};
  icn::util::write_all(client.get(),
                       build_request(1, Opcode::kCluster, bad_body));
  auto reply = decode_reply(pump_reply(server, client.get()));
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->status, Status::kBadBody);
  EXPECT_EQ(reply->request_id, 1u);

  // The connection is still serving.
  icn::util::write_all(client.get(), build_request(2, Opcode::kInfo));
  reply = decode_reply(pump_reply(server, client.get()));
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->status, Status::kOk);
  EXPECT_EQ(reply->request_id, 2u);
  EXPECT_EQ(server.num_sessions(), 1u);
}

TEST(ServeServerTest, OversizedFrameGetsTypedRejectThenClose) {
  SnapshotRegistry registry;
  ServeConfig config;
  config.max_frame = 256;
  Server server(config, registry);
  icn::util::Fd client = icn::util::connect_loopback(server.port());

  std::vector<std::uint8_t> huge_header;
  put_u32(huge_header, 1u << 20);  // Declares 1 MiB against a 256 B cap.
  icn::util::write_all(client.get(), huge_header);
  const auto reply = decode_reply(pump_reply(server, client.get()));
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->status, Status::kOversized);

  // The server closes after flushing the reject.
  for (int i = 0; i < 50 && server.num_sessions() > 0; ++i) server.step(10);
  EXPECT_EQ(server.num_sessions(), 0u);
  std::uint8_t byte;
  ssize_t n;
  do {
    n = ::recv(client.get(), &byte, 1, 0);
  } while (n > 0);
  EXPECT_EQ(n, 0) << "expected EOF after the typed reject";
}

TEST(ServeServerTest, AdmissionControlRefusesBeyondMaxConnections) {
  SnapshotRegistry registry;
  ServeConfig config;
  config.max_connections = 1;
  Server server(config, registry);

  icn::util::Fd first = icn::util::connect_loopback(server.port());
  icn::util::write_all(first.get(), build_request(1, Opcode::kPing));
  ASSERT_FALSE(pump_reply(server, first.get()).empty());
  ASSERT_EQ(server.num_sessions(), 1u);

  icn::util::Fd second = icn::util::connect_loopback(server.port());
  const auto payload = pump_reply(server, second.get());
  const auto reply = decode_reply(payload);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->status, Status::kServerFull);
  EXPECT_EQ(server.stats().connections_refused, 1u);
  EXPECT_EQ(server.num_sessions(), 1u);
}

TEST(ServeServerTest, RateLimitIsDeterministicOnVirtualTicks) {
  SnapshotRegistry registry;
  ServeConfig config;
  config.rate_tokens_per_tick = 1;
  config.rate_burst = 1;
  Server server(config, registry);
  icn::util::Fd client = icn::util::connect_loopback(server.port());

  // Two pipelined pings written in one segment arrive in one poll round =
  // one virtual tick; with burst 1 the second must be rate-limited.
  std::vector<std::uint8_t> two;
  const auto a = build_request(1, Opcode::kPing);
  const auto b = build_request(2, Opcode::kPing);
  two.insert(two.end(), a.begin(), a.end());
  two.insert(two.end(), b.begin(), b.end());
  icn::util::write_all(client.get(), two);

  // Collect both replies from one stream (they may flush together).
  icn::util::ByteQueue stream;
  std::vector<std::optional<Reply>> replies;
  std::vector<std::vector<std::uint8_t>> payloads;  // Keep span targets alive.
  for (int i = 0; i < 200 && replies.size() < 2; ++i) {
    server.step(10);
    auto span = stream.grow_tail(4096);
    const ssize_t n = ::recv(client.get(), span.data(), span.size(),
                             MSG_DONTWAIT);
    stream.shrink_tail(span.size() -
                       static_cast<std::size_t>(std::max<ssize_t>(0, n)));
    while (replies.size() < 2) {
      const FrameResult frame =
          try_parse_frame(stream.data(), kDefaultMaxFrame);
      if (frame.kind != FrameResult::Kind::kFrame) break;
      payloads.emplace_back(frame.payload.begin(), frame.payload.end());
      replies.push_back(decode_reply(payloads.back()));
      stream.consume(frame.consumed);
    }
  }
  ASSERT_EQ(replies.size(), 2u);
  ASSERT_TRUE(replies[0].has_value());
  EXPECT_EQ(replies[0]->request_id, 1u);
  EXPECT_EQ(replies[0]->status, Status::kOk);
  ASSERT_TRUE(replies[1].has_value());
  EXPECT_EQ(replies[1]->request_id, 2u);
  EXPECT_EQ(replies[1]->status, Status::kRateLimited);

  // A later tick refills the bucket.
  icn::util::write_all(client.get(), build_request(3, Opcode::kPing));
  const auto third = decode_reply(pump_reply(server, client.get()));
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(third->status, Status::kOk);
}

TEST(ServeServerTest, EnvConfigRejectsGarbage) {
  ::setenv("ICN_SERVE_MAX_CONNS", "not-a-number", 1);
  EXPECT_THROW(ServeConfig::from_env(), icn::util::EnvConfigError);
  ::setenv("ICN_SERVE_MAX_CONNS", "0", 1);  // Below the floor of 1.
  EXPECT_THROW(ServeConfig::from_env(), icn::util::EnvConfigError);
  ::unsetenv("ICN_SERVE_MAX_CONNS");

  ::setenv("ICN_SERVE_RATE", "7", 1);
  const ServeConfig config = ServeConfig::from_env();
  EXPECT_EQ(config.rate_tokens_per_tick, 7u);
  EXPECT_EQ(config.rate_burst, 7u);  // Defaults to the rate when unset.
  ::unsetenv("ICN_SERVE_RATE");
}

// --- Snapshot hand-off ---------------------------------------------------

TEST(ServeRegistryTest, SealHookRepublishesEveryBarrier) {
  TempFile file("seal_hook.snap");
  SnapshotRegistry registry;
  store::SnapshotWriter writer(file.path());
  std::vector<std::size_t> sealed_sections;
  writer.set_seal_hook([&](const store::SealEvent& event) {
    sealed_sections.push_back(event.sections_sealed);
    registry.publish_file(event.path);
  });

  std::vector<std::uint32_t> ids{1, 2};
  writer.append_stream_meta(ids, 2, 4);
  std::vector<double> cells(4, 1.0);
  writer.append_window(0, cells);
  writer.sync();
  EXPECT_EQ(registry.generation(), 1u);
  ASSERT_TRUE(registry.acquire());
  EXPECT_EQ(registry.acquire()->windows().size(), 1u);

  writer.append_window(1, cells);
  writer.append_window(2, cells);
  writer.sync();
  EXPECT_EQ(registry.generation(), 2u);
  EXPECT_EQ(registry.acquire()->windows().size(), 3u);
  EXPECT_EQ(sealed_sections, (std::vector<std::size_t>{2, 2}));
}

TEST(ServeRegistryTest, PinnedReaderOutlivesASwap) {
  TempFile v1("pin_v1.snap"), v2("pin_v2.snap");
  write_flavored_snapshot(v1.path(), 1);
  write_flavored_snapshot(v2.path(), 2);
  SnapshotRegistry registry;
  registry.publish(ServedSnapshot::load(v1.path()));
  const auto pinned = registry.acquire();
  ASSERT_TRUE(pinned);
  const std::size_t v1_windows = pinned->windows().size();

  registry.publish(ServedSnapshot::load(v2.path()));
  EXPECT_EQ(registry.generation(), 2u);
  // The pinned reader still sees generation 1's mapping, byte for byte.
  EXPECT_EQ(pinned->generation(), 1u);
  EXPECT_EQ(pinned->windows().size(), v1_windows);
  EXPECT_EQ(registry.acquire()->generation(), 2u);
}

// --- The acceptance gate -------------------------------------------------

/// One recorded exchange: the request payload sent and the reply payload
/// received (frame headers stripped), plus the generation it was served at.
struct Exchange {
  std::vector<std::uint8_t> request;
  std::vector<std::uint8_t> reply;
};

TEST(ServeIntegrationTest, ConcurrentClientsStayByteExactAcrossHotSwaps) {
  constexpr std::size_t kClients = 64;
  constexpr std::size_t kRequestsPerClient = 24;
  constexpr std::size_t kGenerations = 4;  // >= 3 hot swaps after the first.

  std::vector<std::unique_ptr<TempFile>> files;
  std::vector<std::shared_ptr<ServedSnapshot>> generations;
  for (std::size_t g = 0; g < kGenerations; ++g) {
    files.push_back(std::make_unique<TempFile>("swap_gen" +
                                               std::to_string(g) + ".snap"));
    write_flavored_snapshot(files.back()->path(),
                            static_cast<std::uint32_t>(g));
    // Generation 2 (flavor 1) has no analytics: cluster/shap queries get
    // typed kNoSection there and kOk elsewhere — part of the mixed load.
    auto snap = g == 1 ? ServedSnapshot::load(files.back()->path())
                       : ServedSnapshot::load(
                             files.back()->path(),
                             flavored_analytics(static_cast<std::uint32_t>(g)));
    generations.push_back(snap);
  }

  SnapshotRegistry registry;
  registry.publish(generations[0]);

  Server server(ServeConfig{}, registry);
  std::thread reactor([&server] { server.run(); });

  std::vector<std::vector<Exchange>> per_client(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t t = 0; t < kClients; ++t) {
    clients.emplace_back([t, port = server.port(), &per_client] {
      QueryClient client(port);
      for (std::size_t i = 0; i < kRequestsPerClient; ++i) {
        const auto id = static_cast<std::uint32_t>(t * 1000 + i);
        std::vector<std::uint8_t> frame;
        switch ((t * 7 + i) % 10) {
          case 0:
            frame = build_request(id, Opcode::kPing);
            break;
          case 1:
            frame = build_request(id, Opcode::kInfo);
            break;
          case 2:
            frame = build_request(
                id, Opcode::kSlice,
                make_slice_body(static_cast<std::uint32_t>(t % 5),
                                kAllServices, 0, 4));
            break;
          case 3:
            frame = build_request(
                id, Opcode::kSlice,
                make_slice_body(static_cast<std::uint32_t>(i % 5),
                                static_cast<std::uint32_t>(t % 3),
                                kTotalsHours, kTotalsHours));
            break;
          case 4:
            frame = build_request(
                id, Opcode::kCluster,
                make_cluster_body(static_cast<std::uint32_t>((t + i) % 7)));
            break;
          case 5:
            frame = build_request(
                id, Opcode::kShap,
                make_shap_body(static_cast<std::uint32_t>(i % 3), 0));
            break;
          case 6:
            frame = build_request(
                id, Opcode::kCoverage,
                make_coverage_body(i % 2 == 0
                                       ? kAllRows
                                       : static_cast<std::uint32_t>(t % 5)));
            break;
          case 7:
            frame = build_request(id, Opcode::kQuarantine);
            break;
          case 8:
            frame = build_request(id, Opcode::kRepin);
            break;
          case 9:
            // A malformed body (wrong size): the reply must be typed and
            // the connection must keep serving the rest of the loop.
            frame = build_request(id, Opcode::kCluster, {});
            break;
        }
        Exchange ex;
        ex.request.assign(frame.begin() + 4, frame.end());
        ex.reply = client.call_raw(frame);
        per_client[t].push_back(std::move(ex));
      }
    });
  }

  // >= 3 hot swaps while the clients hammer the server.
  for (std::size_t g = 1; g < kGenerations; ++g) {
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    registry.publish(generations[g]);
  }
  for (auto& c : clients) c.join();
  server.stop();
  reactor.join();

  // Every reply must be byte-identical to what the deterministic
  // single-threaded mode produces for the generation it was pinned to.
  std::size_t checked = 0;
  std::vector<bool> generation_seen(kGenerations + 1, false);
  for (std::size_t t = 0; t < kClients; ++t) {
    ASSERT_EQ(per_client[t].size(), kRequestsPerClient) << "client " << t;
    for (const Exchange& ex : per_client[t]) {
      ASSERT_GE(ex.reply.size(), kReplyHeaderSize);
      std::uint64_t generation = 0;
      std::memcpy(&generation, ex.reply.data() + 8, 8);
      ASSERT_LE(generation, kGenerations);
      ASSERT_GE(generation, 1u);  // Published before any client connected.
      generation_seen[generation] = true;
      const ServedSnapshot* snap = generations[generation - 1].get();
      const std::vector<std::uint8_t> expected =
          deterministic_reply(snap, ex.request);
      ASSERT_GE(expected.size(), kFrameHeaderSize);
      const std::span<const std::uint8_t> expected_payload{
          expected.data() + 4, expected.size() - 4};
      ASSERT_EQ(ex.reply.size(), expected_payload.size());
      EXPECT_EQ(std::memcmp(ex.reply.data(), expected_payload.data(),
                            ex.reply.size()),
                0)
          << "client " << t << " diverged from the deterministic mode";
      ++checked;
    }
  }
  EXPECT_EQ(checked, kClients * kRequestsPerClient);
  EXPECT_TRUE(generation_seen[1]);  // Everyone started pinned at gen 1...
  EXPECT_EQ(server.stats().frames_served, kClients * kRequestsPerClient);
  EXPECT_EQ(server.stats().connections_accepted, kClients);
}

}  // namespace
}  // namespace icn::serve
