// The epoll reactor end to end: session lifecycle over real sockets, typed
// protocol errors without disconnects, admission control, deterministic
// rate limiting on the virtual tick clock, RCU snapshot hand-off, and the
// acceptance gate of the serving layer — 64 concurrent clients issuing
// mixed queries while the writer hot-swaps generations, with every observed
// reply byte-identical to the single-threaded deterministic mode's answer
// for the generation it was served from.
#include "serve/server.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <sys/socket.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.h"
#include "serve/command_table.h"
#include "store/snapshot.h"
#include "util/bytes.h"
#include "util/error.h"

namespace icn::serve {
namespace {

/// Unique file path in the test temp dir; removed on destruction.
class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(::testing::TempDir() + "icn_serve_" +
              std::to_string(::getpid()) + "_" + name) {
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Writes a snapshot whose contents are a function of `flavor`, so
/// different generations in the hot-swap tests serve different bytes.
void write_flavored_snapshot(const std::string& path, std::uint32_t flavor,
                             std::size_t antennas = 5,
                             std::size_t services = 3) {
  const std::int64_t hours = 4 + static_cast<std::int64_t>(flavor % 3) * 2;
  store::SnapshotWriter writer(path);
  std::vector<std::uint32_t> ids(antennas);
  for (std::size_t i = 0; i < antennas; ++i) {
    ids[i] = static_cast<std::uint32_t>(100 + i);
  }
  writer.append_stream_meta(ids, services, hours);
  ml::Matrix totals(antennas, services);
  std::vector<double> cells(antennas * services);
  for (std::int64_t h = 0; h < hours; ++h) {
    for (std::size_t a = 0; a < antennas; ++a) {
      for (std::size_t s = 0; s < services; ++s) {
        const double mb = static_cast<double>(1 + flavor) *
                          static_cast<double>(100 * h + 10 * a + s + 1);
        cells[a * services + s] = mb;
        totals(a, s) += mb;
      }
    }
    writer.append_window(h, cells);
  }
  writer.append_matrix(totals);
  if (flavor % 2 == 0) {
    const std::vector<std::uint32_t> rejected(
        static_cast<std::size_t>(hours), flavor);
    const std::vector<std::uint32_t> repaired(
        static_cast<std::size_t>(hours), 1);
    writer.append_quarantine(hours, rejected, repaired);
  }
  writer.sync();
}

ServedAnalytics flavored_analytics(std::uint32_t flavor,
                                   std::size_t antennas = 5) {
  ServedAnalytics analytics;
  analytics.num_clusters = 2;
  for (std::size_t i = 0; i < antennas; ++i) {
    analytics.labels.push_back(static_cast<int>((i + flavor) % 2));
  }
  analytics.shap.resize(2);
  analytics.shap[0] = {{0, 0.5 + flavor, 0.7, 100.0 + flavor}};
  analytics.shap[1] = {{2, 0.9, -0.2, 50.0}, {1, 0.1, 0.3, 10.0}};
  return analytics;
}

// --- TokenBucket ---------------------------------------------------------

TEST(TokenBucketTest, DisabledBucketNeverLimits) {
  TokenBucket bucket(0, 0);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(bucket.try_take());
}

TEST(TokenBucketTest, RefillsPerTickUpToBurst) {
  TokenBucket bucket(2, 4);  // 2 tokens/tick, burst 4.
  bucket.advance(1);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(bucket.try_take());
  EXPECT_FALSE(bucket.try_take());  // Burst exhausted within one tick.
  bucket.advance(2);
  EXPECT_TRUE(bucket.try_take());
  EXPECT_TRUE(bucket.try_take());
  EXPECT_FALSE(bucket.try_take());  // Only rate=2 refilled.
  bucket.advance(1000000);          // Long idle: clamped to burst.
  EXPECT_EQ(bucket.tokens(), 4u);
}

TEST(TokenBucketTest, ZeroBurstWithNonZeroRateNormalizesToRate) {
  // burst == 0 with a non-zero rate would otherwise start empty and never
  // refill (the refill is capped at burst): every request rejected forever.
  TokenBucket bucket(3, 0);
  EXPECT_EQ(bucket.tokens(), 3u);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(bucket.try_take());
  EXPECT_FALSE(bucket.try_take());
  bucket.advance(1);
  EXPECT_TRUE(bucket.try_take());  // The bucket is live, not dead on arrival.
}

// --- Step-driven (deterministic single-threaded mode) --------------------

/// Drives `server.step()` until `fd` has one whole reply frame, and returns
/// the frame's payload. The server runs on *this* thread — this is the
/// deterministic mode the byte-exactness test compares against.
std::vector<std::uint8_t> pump_reply(Server& server, int fd,
                                     int max_steps = 200) {
  icn::util::ByteQueue stream;
  for (int i = 0; i < max_steps; ++i) {
    server.step(10);
    auto span = stream.grow_tail(4096);
    const ssize_t n =
        ::recv(fd, span.data(), span.size(), MSG_DONTWAIT);
    stream.shrink_tail(span.size() - static_cast<std::size_t>(std::max<ssize_t>(0, n)));
    const FrameResult frame = try_parse_frame(stream.data(), kDefaultMaxFrame);
    if (frame.kind == FrameResult::Kind::kFrame) {
      return {frame.payload.begin(), frame.payload.end()};
    }
  }
  ADD_FAILURE() << "no reply after " << max_steps << " steps";
  return {};
}

TEST(ServeServerTest, PingBeforeAnyPublishServesGenerationZero) {
  SnapshotRegistry registry;
  Server server(ServeConfig{}, registry);
  icn::util::Fd client = icn::util::connect_loopback(server.port());
  const auto frame = build_request(7, Opcode::kPing);
  icn::util::write_all(client.get(), frame);
  const auto payload = pump_reply(server, client.get());
  const auto reply = decode_reply(payload);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->request_id, 7u);
  EXPECT_EQ(reply->status, Status::kOk);
  EXPECT_EQ(reply->generation, 0u);
  EXPECT_EQ(server.stats().connections_accepted, 1u);
  EXPECT_EQ(server.stats().frames_served, 1u);
}

TEST(ServeServerTest, MalformedBodyGetsTypedReplyAndConnectionSurvives) {
  TempFile file("malformed.snap");
  write_flavored_snapshot(file.path(), 0);
  SnapshotRegistry registry;
  registry.publish_file(file.path());
  Server server(ServeConfig{}, registry);
  icn::util::Fd client = icn::util::connect_loopback(server.port());

  // A cluster request with a 3-byte body (expects 4).
  const std::vector<std::uint8_t> bad_body{1, 2, 3};
  icn::util::write_all(client.get(),
                       build_request(1, Opcode::kCluster, bad_body));
  auto reply = decode_reply(pump_reply(server, client.get()));
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->status, Status::kBadBody);
  EXPECT_EQ(reply->request_id, 1u);

  // The connection is still serving.
  icn::util::write_all(client.get(), build_request(2, Opcode::kInfo));
  reply = decode_reply(pump_reply(server, client.get()));
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->status, Status::kOk);
  EXPECT_EQ(reply->request_id, 2u);
  EXPECT_EQ(server.num_sessions(), 1u);
}

TEST(ServeServerTest, OversizedFrameGetsTypedRejectThenClose) {
  SnapshotRegistry registry;
  ServeConfig config;
  config.max_frame = 256;
  Server server(config, registry);
  icn::util::Fd client = icn::util::connect_loopback(server.port());

  std::vector<std::uint8_t> huge_header;
  put_u32(huge_header, 1u << 20);  // Declares 1 MiB against a 256 B cap.
  icn::util::write_all(client.get(), huge_header);
  const auto reply = decode_reply(pump_reply(server, client.get()));
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->status, Status::kOversized);

  // The server closes after flushing the reject.
  for (int i = 0; i < 50 && server.num_sessions() > 0; ++i) server.step(10);
  EXPECT_EQ(server.num_sessions(), 0u);
  std::uint8_t byte;
  ssize_t n;
  do {
    n = ::recv(client.get(), &byte, 1, 0);
  } while (n > 0);
  EXPECT_EQ(n, 0) << "expected EOF after the typed reject";
}

TEST(ServeServerTest, AdmissionControlRefusesBeyondMaxConnections) {
  SnapshotRegistry registry;
  ServeConfig config;
  config.max_connections = 1;
  Server server(config, registry);

  icn::util::Fd first = icn::util::connect_loopback(server.port());
  icn::util::write_all(first.get(), build_request(1, Opcode::kPing));
  ASSERT_FALSE(pump_reply(server, first.get()).empty());
  ASSERT_EQ(server.num_sessions(), 1u);

  icn::util::Fd second = icn::util::connect_loopback(server.port());
  const auto payload = pump_reply(server, second.get());
  const auto reply = decode_reply(payload);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->status, Status::kServerFull);
  EXPECT_EQ(server.stats().connections_refused, 1u);
  EXPECT_EQ(server.num_sessions(), 1u);
}

TEST(ServeServerTest, RateLimitIsDeterministicOnVirtualTicks) {
  SnapshotRegistry registry;
  ServeConfig config;
  config.rate_tokens_per_tick = 1;
  config.rate_burst = 1;
  Server server(config, registry);
  icn::util::Fd client = icn::util::connect_loopback(server.port());

  // Two pipelined pings written in one segment arrive in one poll round =
  // one virtual tick; with burst 1 the second must be rate-limited.
  std::vector<std::uint8_t> two;
  const auto a = build_request(1, Opcode::kPing);
  const auto b = build_request(2, Opcode::kPing);
  two.insert(two.end(), a.begin(), a.end());
  two.insert(two.end(), b.begin(), b.end());
  icn::util::write_all(client.get(), two);

  // Collect both replies from one stream (they may flush together).
  icn::util::ByteQueue stream;
  std::vector<std::optional<Reply>> replies;
  std::vector<std::vector<std::uint8_t>> payloads;  // Keep span targets alive.
  for (int i = 0; i < 200 && replies.size() < 2; ++i) {
    server.step(10);
    auto span = stream.grow_tail(4096);
    const ssize_t n = ::recv(client.get(), span.data(), span.size(),
                             MSG_DONTWAIT);
    stream.shrink_tail(span.size() -
                       static_cast<std::size_t>(std::max<ssize_t>(0, n)));
    while (replies.size() < 2) {
      const FrameResult frame =
          try_parse_frame(stream.data(), kDefaultMaxFrame);
      if (frame.kind != FrameResult::Kind::kFrame) break;
      payloads.emplace_back(frame.payload.begin(), frame.payload.end());
      replies.push_back(decode_reply(payloads.back()));
      stream.consume(frame.consumed);
    }
  }
  ASSERT_EQ(replies.size(), 2u);
  ASSERT_TRUE(replies[0].has_value());
  EXPECT_EQ(replies[0]->request_id, 1u);
  EXPECT_EQ(replies[0]->status, Status::kOk);
  ASSERT_TRUE(replies[1].has_value());
  EXPECT_EQ(replies[1]->request_id, 2u);
  EXPECT_EQ(replies[1]->status, Status::kRateLimited);

  // A later tick refills the bucket.
  icn::util::write_all(client.get(), build_request(3, Opcode::kPing));
  const auto third = decode_reply(pump_reply(server, client.get()));
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(third->status, Status::kOk);
}

TEST(ServeServerTest, PipelinedBurstBehindBackpressureFullyServed) {
  SnapshotRegistry registry;
  ServeConfig config;
  // A high-water mark that a handful of ping replies overruns: backpressure
  // trips mid-burst with complete frames still buffered in the session's
  // read queue.
  config.write_high_water = 256;
  Server server(config, registry);
  icn::util::Fd client = icn::util::connect_loopback(server.port());

  // One pipelined segment, then silence: the client sends nothing further
  // while it waits for replies to requests it already wrote, so
  // level-triggered EPOLLIN alone will never revisit the buffered frames —
  // the reactor must replay them as the write queue drains.
  constexpr std::uint32_t kPings = 50;
  std::vector<std::uint8_t> burst;
  for (std::uint32_t i = 0; i < kPings; ++i) {
    const auto frame = build_request(i, Opcode::kPing);
    burst.insert(burst.end(), frame.begin(), frame.end());
  }
  icn::util::write_all(client.get(), burst);

  icn::util::ByteQueue stream;
  std::uint32_t replies = 0;
  for (int round = 0; round < 400 && replies < kPings; ++round) {
    server.step(10);
    auto span = stream.grow_tail(4096);
    const ssize_t n =
        ::recv(client.get(), span.data(), span.size(), MSG_DONTWAIT);
    stream.shrink_tail(span.size() -
                       static_cast<std::size_t>(std::max<ssize_t>(0, n)));
    while (true) {
      const FrameResult frame =
          try_parse_frame(stream.data(), kDefaultMaxFrame);
      if (frame.kind != FrameResult::Kind::kFrame) break;
      const auto reply = decode_reply(frame.payload);
      ASSERT_TRUE(reply.has_value());
      EXPECT_EQ(reply->request_id, replies);  // In order, none dropped.
      EXPECT_EQ(reply->status, Status::kOk);
      stream.consume(frame.consumed);
      ++replies;
    }
  }
  EXPECT_EQ(replies, kPings) << "frames buffered behind backpressure were "
                                "never replayed after the write queue "
                                "drained";
  EXPECT_EQ(server.num_sessions(), 1u);
}

TEST(ServeServerTest, EnvConfigRejectsGarbage) {
  ::setenv("ICN_SERVE_MAX_CONNS", "not-a-number", 1);
  EXPECT_THROW((void)ServeConfig::from_env(), icn::util::EnvConfigError);
  ::setenv("ICN_SERVE_MAX_CONNS", "0", 1);  // Below the floor of 1.
  EXPECT_THROW((void)ServeConfig::from_env(), icn::util::EnvConfigError);
  ::unsetenv("ICN_SERVE_MAX_CONNS");

  ::setenv("ICN_SERVE_RATE", "7", 1);
  const ServeConfig config = ServeConfig::from_env();
  EXPECT_EQ(config.rate_tokens_per_tick, 7u);
  EXPECT_EQ(config.rate_burst, 7u);  // Defaults to the rate when unset.
  ::unsetenv("ICN_SERVE_RATE");
}

// --- Mismatched-section hardening ----------------------------------------

/// Writes a snapshot whose kMatrix and kCoverage shapes deliberately
/// disagree with kStreamMeta. Every section is only self-validated, so the
/// command table must bound each access with the section's own dims, never
/// the meta-derived shape the request arguments were range-checked against.
void write_skewed_snapshot(const std::string& path) {
  store::SnapshotWriter writer(path);
  const std::vector<std::uint32_t> ids{101, 102, 103, 104, 105};
  writer.append_stream_meta(ids, 3, 8);
  ml::Matrix totals(2, 2);  // Smaller than the meta's 5 x 3.
  totals(0, 0) = 1.0;
  totals(0, 1) = 2.0;
  totals(1, 0) = 3.0;
  totals(1, 1) = 4.0;
  writer.append_matrix(totals);
  // Per-antenna coverage over 4 hours against the meta's 8.
  std::vector<std::uint8_t> covered(5 * 4, 1);
  covered[4 * 4 + 1] = 0;  // Row 4, hour 1: the only in-bitmap gap.
  writer.append_coverage(5, 4, covered);
  writer.sync();
}

/// One deterministic-mode round trip: returns the decoded reply plus the
/// frame that owns its body span.
std::pair<std::vector<std::uint8_t>, std::optional<Reply>> table_call(
    const ServedSnapshot& snap, std::uint32_t id, Opcode opcode,
    std::span<const std::uint8_t> body) {
  const auto frame = build_request(id, opcode, body);
  auto out = deterministic_reply(&snap,
                                 {frame.data() + 4, frame.size() - 4});
  const auto reply = decode_reply({out.data() + 4, out.size() - 4});
  return {std::move(out), reply};
}

TEST(ServeCommandTableTest, SliceTotalsBoundsAgainstMatrixOwnDims) {
  TempFile file("skewed_matrix.snap");
  write_skewed_snapshot(file.path());
  const auto snap = ServedSnapshot::load(file.path());
  ASSERT_EQ(snap->num_antennas(), 5u);  // Meta shape...
  ASSERT_EQ(snap->matrix()->rows, 2u);  // ...the matrix disagrees with.

  // A row valid per the meta but past the matrix reads as zeros, not as an
  // out-of-bounds walk off the mapping.
  auto [raw1, reply1] =
      table_call(*snap, 1, Opcode::kSlice,
                 make_slice_body(4, kAllServices, kTotalsHours, kTotalsHours));
  ASSERT_TRUE(reply1.has_value());
  ASSERT_EQ(reply1->status, Status::kOk);
  ASSERT_EQ(reply1->body.size(), 8u + 3 * 8u);
  std::array<double, 3> values{};
  std::memcpy(values.data(), reply1->body.data() + 8, 3 * 8);
  EXPECT_EQ(values, (std::array<double, 3>{0.0, 0.0, 0.0}));

  // A row inside the matrix serves its cells; meta services past the
  // matrix's columns read as zeros.
  auto [raw2, reply2] =
      table_call(*snap, 2, Opcode::kSlice,
                 make_slice_body(1, kAllServices, kTotalsHours, kTotalsHours));
  ASSERT_TRUE(reply2.has_value());
  ASSERT_EQ(reply2->status, Status::kOk);
  ASSERT_EQ(reply2->body.size(), 8u + 3 * 8u);
  std::memcpy(values.data(), reply2->body.data() + 8, 3 * 8);
  EXPECT_EQ(values, (std::array<double, 3>{3.0, 4.0, 0.0}));

  // A single requested service past the matrix's columns reads as zero.
  auto [raw3, reply3] =
      table_call(*snap, 3, Opcode::kSlice,
                 make_slice_body(0, 2, kTotalsHours, kTotalsHours));
  ASSERT_TRUE(reply3.has_value());
  ASSERT_EQ(reply3->status, Status::kOk);
  ASSERT_EQ(reply3->body.size(), 8u + 8u);
  double one = -1.0;
  std::memcpy(&one, reply3->body.data() + 8, 8);
  EXPECT_EQ(one, 0.0);
}

TEST(ServeCommandTableTest, CoverageUsesSectionOwnHourStride) {
  TempFile file("skewed_cov.snap");
  write_skewed_snapshot(file.path());
  const auto snap = ServedSnapshot::load(file.path());
  ASSERT_EQ(snap->num_hours(), 8);
  ASSERT_EQ(snap->coverage()->num_hours, 4);

  const auto [raw, reply] =
      table_call(*snap, 1, Opcode::kCoverage, make_coverage_body(4));
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->status, Status::kOk);
  ASSERT_GE(reply->body.size(), 12u);
  double fraction = 0.0;
  std::memcpy(&fraction, reply->body.data(), 8);
  std::uint32_t gap_count = 0;
  std::memcpy(&gap_count, reply->body.data() + 8, 4);
  // With the section's own 4-hour stride, row 4's bitmap covers hours
  // {0, 2, 3}; meta hours 4..8 have no bitmap and read as uncovered. A
  // meta-derived stride would have scanned rows 8..9, which do not exist.
  EXPECT_EQ(fraction, 3.0 / 8.0);
  ASSERT_EQ(gap_count, 2u);
  std::array<std::int64_t, 4> bounds{};
  std::memcpy(bounds.data(), reply->body.data() + 12, 4 * 8);
  EXPECT_EQ(bounds, (std::array<std::int64_t, 4>{1, 2, 4, 8}));
}

TEST(ServeCommandTableTest, SliceHourExtremesGetTypedRejects) {
  TempFile file("hour_extremes.snap");
  write_flavored_snapshot(file.path(), 0);
  const auto snap = ServedSnapshot::load(file.path());
  constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();

  // hour_first == INT64_MIN once hit signed overflow (UB) in the reply-size
  // bound before the handler's negative-range check could reject it.
  const auto [raw1, reply1] = table_call(
      *snap, 1, Opcode::kSlice, make_slice_body(0, kAllServices, kMin, 1));
  ASSERT_TRUE(reply1.has_value());
  EXPECT_EQ(reply1->status, Status::kBadBody);

  // A huge non-negative range saturates the bound instead of wrapping it,
  // so the oversized pre-check stays conservative.
  const auto [raw2, reply2] = table_call(
      *snap, 2, Opcode::kSlice, make_slice_body(0, kAllServices, 0, kMax));
  ASSERT_TRUE(reply2.has_value());
  EXPECT_EQ(reply2->status, Status::kOversized);
}

// --- Snapshot hand-off ---------------------------------------------------

TEST(ServeRegistryTest, SealHookRepublishesEveryBarrier) {
  TempFile file("seal_hook.snap");
  SnapshotRegistry registry;
  store::SnapshotWriter writer(file.path());
  std::vector<std::size_t> sealed_sections;
  writer.set_seal_hook([&](const store::SealEvent& event) {
    sealed_sections.push_back(event.sections_sealed);
    registry.publish_file(event.path);
  });

  std::vector<std::uint32_t> ids{1, 2};
  writer.append_stream_meta(ids, 2, 4);
  std::vector<double> cells(4, 1.0);
  writer.append_window(0, cells);
  writer.sync();
  EXPECT_EQ(registry.generation(), 1u);
  ASSERT_TRUE(registry.acquire());
  EXPECT_EQ(registry.acquire()->windows().size(), 1u);

  writer.append_window(1, cells);
  writer.append_window(2, cells);
  writer.sync();
  EXPECT_EQ(registry.generation(), 2u);
  EXPECT_EQ(registry.acquire()->windows().size(), 3u);
  EXPECT_EQ(sealed_sections, (std::vector<std::size_t>{2, 2}));
}

TEST(ServeRegistryTest, PinnedReaderOutlivesASwap) {
  TempFile v1("pin_v1.snap"), v2("pin_v2.snap");
  write_flavored_snapshot(v1.path(), 1);
  write_flavored_snapshot(v2.path(), 2);
  SnapshotRegistry registry;
  registry.publish(ServedSnapshot::load(v1.path()));
  const auto pinned = registry.acquire();
  ASSERT_TRUE(pinned);
  const std::size_t v1_windows = pinned->windows().size();

  registry.publish(ServedSnapshot::load(v2.path()));
  EXPECT_EQ(registry.generation(), 2u);
  // The pinned reader still sees generation 1's mapping, byte for byte.
  EXPECT_EQ(pinned->generation(), 1u);
  EXPECT_EQ(pinned->windows().size(), v1_windows);
  EXPECT_EQ(registry.acquire()->generation(), 2u);
}

// --- The acceptance gate -------------------------------------------------

/// One recorded exchange: the request payload sent and the reply payload
/// received (frame headers stripped), plus the generation it was served at.
struct Exchange {
  std::vector<std::uint8_t> request;
  std::vector<std::uint8_t> reply;
};

TEST(ServeIntegrationTest, ConcurrentClientsStayByteExactAcrossHotSwaps) {
  constexpr std::size_t kClients = 64;
  constexpr std::size_t kRequestsPerClient = 24;
  constexpr std::size_t kGenerations = 4;  // >= 3 hot swaps after the first.

  std::vector<std::unique_ptr<TempFile>> files;
  std::vector<std::shared_ptr<ServedSnapshot>> generations;
  for (std::size_t g = 0; g < kGenerations; ++g) {
    files.push_back(std::make_unique<TempFile>("swap_gen" +
                                               std::to_string(g) + ".snap"));
    write_flavored_snapshot(files.back()->path(),
                            static_cast<std::uint32_t>(g));
    // Generation 2 (flavor 1) has no analytics: cluster/shap queries get
    // typed kNoSection there and kOk elsewhere — part of the mixed load.
    auto snap = g == 1 ? ServedSnapshot::load(files.back()->path())
                       : ServedSnapshot::load(
                             files.back()->path(),
                             flavored_analytics(static_cast<std::uint32_t>(g)));
    generations.push_back(snap);
  }

  SnapshotRegistry registry;
  registry.publish(generations[0]);

  Server server(ServeConfig{}, registry);
  std::thread reactor([&server] { server.run(); });

  std::vector<std::vector<Exchange>> per_client(kClients);
  // The publisher must not swap before every client has completed one
  // exchange: sessions pin at accept, so under heavy load a too-early swap
  // would mean no reply was ever served from generation 1 and the
  // generation_seen[1] assertion below would race.
  std::atomic<std::size_t> first_replies{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t t = 0; t < kClients; ++t) {
    clients.emplace_back([t, port = server.port(), &per_client,
                          &first_replies] {
      QueryClient client(port);
      for (std::size_t i = 0; i < kRequestsPerClient; ++i) {
        const auto id = static_cast<std::uint32_t>(t * 1000 + i);
        std::vector<std::uint8_t> frame;
        switch ((t * 7 + i) % 10) {
          case 0:
            frame = build_request(id, Opcode::kPing);
            break;
          case 1:
            frame = build_request(id, Opcode::kInfo);
            break;
          case 2:
            frame = build_request(
                id, Opcode::kSlice,
                make_slice_body(static_cast<std::uint32_t>(t % 5),
                                kAllServices, 0, 4));
            break;
          case 3:
            frame = build_request(
                id, Opcode::kSlice,
                make_slice_body(static_cast<std::uint32_t>(i % 5),
                                static_cast<std::uint32_t>(t % 3),
                                kTotalsHours, kTotalsHours));
            break;
          case 4:
            frame = build_request(
                id, Opcode::kCluster,
                make_cluster_body(static_cast<std::uint32_t>((t + i) % 7)));
            break;
          case 5:
            frame = build_request(
                id, Opcode::kShap,
                make_shap_body(static_cast<std::uint32_t>(i % 3), 0));
            break;
          case 6:
            frame = build_request(
                id, Opcode::kCoverage,
                make_coverage_body(i % 2 == 0
                                       ? kAllRows
                                       : static_cast<std::uint32_t>(t % 5)));
            break;
          case 7:
            frame = build_request(id, Opcode::kQuarantine);
            break;
          case 8:
            frame = build_request(id, Opcode::kRepin);
            break;
          case 9:
            // A malformed body (wrong size): the reply must be typed and
            // the connection must keep serving the rest of the loop.
            frame = build_request(id, Opcode::kCluster, {});
            break;
        }
        Exchange ex;
        ex.request.assign(frame.begin() + 4, frame.end());
        ex.reply = client.call_raw(frame);
        per_client[t].push_back(std::move(ex));
        if (i == 0) first_replies.fetch_add(1, std::memory_order_release);
      }
    });
  }

  // >= 3 hot swaps while the clients hammer the server — but only after
  // every client holds a generation-1 reply (see first_replies above).
  while (first_replies.load(std::memory_order_acquire) < kClients) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (std::size_t g = 1; g < kGenerations; ++g) {
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    registry.publish(generations[g]);
  }
  for (auto& c : clients) c.join();
  server.stop();
  reactor.join();

  // Every reply must be byte-identical to what the deterministic
  // single-threaded mode produces for the generation it was pinned to.
  std::size_t checked = 0;
  std::vector<bool> generation_seen(kGenerations + 1, false);
  for (std::size_t t = 0; t < kClients; ++t) {
    ASSERT_EQ(per_client[t].size(), kRequestsPerClient) << "client " << t;
    for (const Exchange& ex : per_client[t]) {
      ASSERT_GE(ex.reply.size(), kReplyHeaderSize);
      std::uint64_t generation = 0;
      std::memcpy(&generation, ex.reply.data() + 8, 8);
      ASSERT_LE(generation, kGenerations);
      ASSERT_GE(generation, 1u);  // Published before any client connected.
      generation_seen[generation] = true;
      const ServedSnapshot* snap = generations[generation - 1].get();
      const std::vector<std::uint8_t> expected =
          deterministic_reply(snap, ex.request);
      ASSERT_GE(expected.size(), kFrameHeaderSize);
      const std::span<const std::uint8_t> expected_payload{
          expected.data() + 4, expected.size() - 4};
      ASSERT_EQ(ex.reply.size(), expected_payload.size());
      EXPECT_EQ(std::memcmp(ex.reply.data(), expected_payload.data(),
                            ex.reply.size()),
                0)
          << "client " << t << " diverged from the deterministic mode";
      ++checked;
    }
  }
  EXPECT_EQ(checked, kClients * kRequestsPerClient);
  EXPECT_TRUE(generation_seen[1]);  // Everyone started pinned at gen 1...
  EXPECT_EQ(server.stats().frames_served, kClients * kRequestsPerClient);
  EXPECT_EQ(server.stats().connections_accepted, kClients);
}

}  // namespace
}  // namespace icn::serve
