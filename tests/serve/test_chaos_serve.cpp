// Chaos-hardening of the serve layer: the seeded ServeFaultPlan and its
// FaultyTransport shim, deterministic step-mode fault replay (equal seeds →
// verbatim ledgers and byte-identical replies), corruption shadow replay
// against the pure dispatch oracle, slow-loris and idle eviction on the
// virtual tick clock, graceful drain with typed kShuttingDown, publish
// quarantine, the live kHealth opcode, and the concurrent chaos soak —
// resilient clients × faulty transports × hot swaps, every completed reply
// byte-exact against dispatch_request's deterministic recomputation.
#include "serve/fault.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <sys/socket.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.h"
#include "serve/command_table.h"
#include "serve/server.h"
#include "store/snapshot.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace icn::serve {
namespace {

/// Unique file path in the test temp dir; removed on destruction.
class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(::testing::TempDir() + "icn_chaos_" +
              std::to_string(::getpid()) + "_" + name) {
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Snapshot whose contents are a function of `flavor` (mirrors
/// test_server.cpp), so generations serve distinguishable bytes.
void write_flavored_snapshot(const std::string& path, std::uint32_t flavor,
                             std::size_t antennas = 5,
                             std::size_t services = 3) {
  const std::int64_t hours = 4 + static_cast<std::int64_t>(flavor % 3) * 2;
  store::SnapshotWriter writer(path);
  std::vector<std::uint32_t> ids(antennas);
  for (std::size_t i = 0; i < antennas; ++i) {
    ids[i] = static_cast<std::uint32_t>(100 + i);
  }
  writer.append_stream_meta(ids, services, hours);
  ml::Matrix totals(antennas, services);
  std::vector<double> cells(antennas * services);
  for (std::int64_t h = 0; h < hours; ++h) {
    for (std::size_t a = 0; a < antennas; ++a) {
      for (std::size_t s = 0; s < services; ++s) {
        const double mb = static_cast<double>(1 + flavor) *
                          static_cast<double>(100 * h + 10 * a + s + 1);
        cells[a * services + s] = mb;
        totals(a, s) += mb;
      }
    }
    writer.append_window(h, cells);
  }
  writer.append_matrix(totals);
  writer.sync();
}

/// In-memory Transport test double: the test is the peer.
class MemoryTransport final : public Transport {
 public:
  std::deque<std::uint8_t> rx;       ///< Bytes "sent" to the session.
  std::vector<std::uint8_t> tx;      ///< Bytes the session wrote out.
  bool closed = false;

  std::ptrdiff_t read_some(std::span<std::uint8_t> buf,
                           std::uint64_t /*tick*/) override {
    if (closed) return -1;
    const std::size_t n = std::min(buf.size(), rx.size());
    if (n == 0) return 0;
    for (std::size_t i = 0; i < n; ++i) {
      buf[i] = rx.front();
      rx.pop_front();
    }
    return static_cast<std::ptrdiff_t>(n);
  }

  std::ptrdiff_t write_some(std::span<const std::uint8_t> buf,
                            std::uint64_t /*tick*/) override {
    if (closed) return -1;
    tx.insert(tx.end(), buf.begin(), buf.end());
    return static_cast<std::ptrdiff_t>(buf.size());
  }

  void close() override { closed = true; }
  [[nodiscard]] int fd() const override { return -1; }
};

// --- ServeFaultPlan ------------------------------------------------------

TEST(ServeFaultPlanTest, EqualSeedsProduceEqualSchedules) {
  ServeFaultPlanParams params;
  params.seed = 42;
  params.partial_read_rate = 0.4;
  params.short_write_rate = 0.3;
  params.stall_rate = 0.1;
  params.corrupt_rate = 0.05;
  params.reset_rate = 0.5;
  const ServeFaultPlan a(params);
  const ServeFaultPlan b(params);
  for (std::uint64_t conn = 0; conn < 8; ++conn) {
    EXPECT_EQ(a.reset_after(conn), b.reset_after(conn));
    for (std::uint64_t tick = 0; tick < 64; ++tick) {
      EXPECT_EQ(a.rx_budget(conn, tick), b.rx_budget(conn, tick));
      EXPECT_EQ(a.tx_budget(conn, tick), b.tx_budget(conn, tick));
      EXPECT_EQ(a.stalled(conn, tick), b.stalled(conn, tick));
      EXPECT_EQ(a.corrupt_mask(conn, tick), b.corrupt_mask(conn, tick));
    }
  }
}

TEST(ServeFaultPlanTest, DifferentSeedsDiverge) {
  ServeFaultPlanParams params;
  params.partial_read_rate = 0.5;
  params.seed = 1;
  const ServeFaultPlan a(params);
  params.seed = 2;
  const ServeFaultPlan b(params);
  bool diverged = false;
  for (std::uint64_t conn = 0; conn < 4 && !diverged; ++conn) {
    for (std::uint64_t tick = 0; tick < 256 && !diverged; ++tick) {
      diverged = a.rx_budget(conn, tick) != b.rx_budget(conn, tick);
    }
  }
  EXPECT_TRUE(diverged);
}

TEST(ServeFaultPlanTest, BudgetsStayInDeclaredRanges) {
  ServeFaultPlanParams params;
  params.seed = 7;
  params.partial_read_rate = 0.8;
  params.partial_read_max = 5;
  params.short_write_rate = 0.8;
  params.short_write_max = 3;
  const ServeFaultPlan plan(params);
  bool saw_capped = false;
  for (std::uint64_t tick = 0; tick < 200; ++tick) {
    const std::size_t rx = plan.rx_budget(1, tick);
    if (rx != ServeFaultPlan::kUnlimited) {
      EXPECT_GE(rx, 1u);
      EXPECT_LE(rx, 5u);
      saw_capped = true;
    }
    const std::size_t tx = plan.tx_budget(1, tick);
    if (tx != ServeFaultPlan::kUnlimited) {
      EXPECT_GE(tx, 1u);
      EXPECT_LE(tx, 3u);
    }
  }
  EXPECT_TRUE(saw_capped);
}

TEST(ServeFaultPlanTest, StalledMatchesWindowExpansion) {
  ServeFaultPlanParams params;
  params.seed = 11;
  params.stall_rate = 0.15;
  params.stall_max_ticks = 3;
  const ServeFaultPlan plan(params);
  for (std::uint64_t conn = 0; conn < 3; ++conn) {
    for (std::uint64_t tick = 0; tick < 128; ++tick) {
      bool expect = false;
      for (std::uint64_t back = 0; back <= std::min<std::uint64_t>(tick, 2);
           ++back) {
        if (plan.stall_starting_at(conn, tick - back) > back) expect = true;
      }
      EXPECT_EQ(plan.stalled(conn, tick), expect)
          << "conn " << conn << " tick " << tick;
    }
  }
}

// --- FaultyTransport -----------------------------------------------------

TEST(FaultyTransportTest, RxBudgetIsPerTickNotPerCall) {
  ServeFaultPlanParams params;
  params.seed = 3;
  params.partial_read_rate = 1.0;  // Every tick capped.
  params.partial_read_max = 4;
  const ServeFaultPlan plan(params);
  auto mem = std::make_unique<MemoryTransport>();
  MemoryTransport* raw = mem.get();
  ServeFaultLedger ledger;
  FaultyTransport transport(std::move(mem), &plan, /*conn=*/0, &ledger);
  for (int i = 0; i < 100; ++i) raw->rx.push_back(0xAB);

  std::uint8_t buf[64];
  const std::size_t budget1 = plan.rx_budget(0, 1);
  const std::ptrdiff_t first = transport.read_some(buf, 1);
  EXPECT_EQ(static_cast<std::size_t>(first), budget1);
  // Budget spent: every further read this tick would-blocks.
  EXPECT_EQ(transport.read_some(buf, 1), 0);
  EXPECT_EQ(transport.read_some(buf, 1), 0);
  // A new tick grants a fresh budget.
  const std::size_t budget2 = plan.rx_budget(0, 2);
  EXPECT_EQ(static_cast<std::size_t>(transport.read_some(buf, 2)), budget2);
  ASSERT_GE(ledger.size(), 2u);
  EXPECT_EQ(ledger[0].kind, ServeFaultKind::kPartialRead);
  EXPECT_EQ(ledger[0].tick, 1u);
  EXPECT_EQ(ledger[0].a, budget1);
}

TEST(FaultyTransportTest, CorruptionMatchesPlanByStreamOffset) {
  ServeFaultPlanParams params;
  params.seed = 19;
  params.corrupt_rate = 0.2;
  const ServeFaultPlan plan(params);
  auto mem = std::make_unique<MemoryTransport>();
  MemoryTransport* raw = mem.get();
  ServeFaultLedger ledger;
  FaultyTransport transport(std::move(mem), &plan, /*conn=*/5, &ledger);

  std::vector<std::uint8_t> sent(256);
  for (std::size_t i = 0; i < sent.size(); ++i) {
    sent[i] = static_cast<std::uint8_t>(i);
  }
  raw->rx.assign(sent.begin(), sent.end());

  // Read in ragged chunks: offsets, not call boundaries, decide corruption.
  std::vector<std::uint8_t> got;
  std::uint64_t tick = 1;
  while (got.size() < sent.size()) {
    std::uint8_t buf[37];
    const std::ptrdiff_t n = transport.read_some(
        std::span<std::uint8_t>(buf, std::min<std::size_t>(
                                          37, sent.size() - got.size())),
        tick++);
    ASSERT_GT(n, 0);
    got.insert(got.end(), buf, buf + n);
  }

  std::size_t corrupted = 0;
  for (std::size_t i = 0; i < sent.size(); ++i) {
    const auto mask = plan.corrupt_mask(5, i);
    const std::uint8_t expected = mask ? sent[i] ^ *mask : sent[i];
    EXPECT_EQ(got[i], expected) << "offset " << i;
    if (mask) ++corrupted;
  }
  EXPECT_GT(corrupted, 0u);
  std::size_t corrupt_events = 0;
  for (const auto& event : ledger) {
    if (event.kind == ServeFaultKind::kCorrupt) ++corrupt_events;
  }
  EXPECT_EQ(corrupt_events, corrupted);
}

TEST(FaultyTransportTest, ResetFiresAtPlannedLifetime) {
  ServeFaultPlanParams params;
  params.seed = 23;
  params.reset_rate = 1.0;
  params.reset_min_ticks = 3;
  params.reset_max_ticks = 3;
  const ServeFaultPlan plan(params);
  auto mem = std::make_unique<MemoryTransport>();
  MemoryTransport* raw = mem.get();
  ServeFaultLedger ledger;
  FaultyTransport transport(std::move(mem), &plan, /*conn=*/2, &ledger);
  for (int i = 0; i < 100; ++i) raw->rx.push_back(1);

  std::uint8_t buf[8];
  EXPECT_GT(transport.read_some(buf, 10), 0);  // Birth tick = 10.
  EXPECT_GT(transport.read_some(buf, 11), 0);
  EXPECT_GT(transport.read_some(buf, 12), 0);
  EXPECT_EQ(transport.read_some(buf, 13), -1);  // 13 - 10 >= 3: dead.
  EXPECT_EQ(transport.write_some(buf, 14), -1);  // Dead stays dead.
  EXPECT_TRUE(raw->closed);
  std::size_t resets = 0;
  for (const auto& event : ledger) {
    if (event.kind == ServeFaultKind::kReset) {
      ++resets;
      EXPECT_EQ(event.tick, 13u);
      EXPECT_EQ(event.a, 3u);
    }
  }
  EXPECT_EQ(resets, 1u);  // Logged once, not per call.
}

TEST(FaultyTransportTest, StallFreezesBothDirections) {
  ServeFaultPlanParams params;
  params.seed = 29;
  params.stall_rate = 1.0;  // Every tick inside a stall window.
  params.stall_max_ticks = 1;
  const ServeFaultPlan plan(params);
  auto mem = std::make_unique<MemoryTransport>();
  mem->rx.push_back(7);
  ServeFaultLedger ledger;
  FaultyTransport transport(std::move(mem), &plan, /*conn=*/0, &ledger);
  std::uint8_t buf[8];
  EXPECT_EQ(transport.read_some(buf, 1), 0);
  EXPECT_EQ(transport.write_some(buf, 1), 0);
  EXPECT_EQ(transport.read_some(buf, 2), 0);
  // One kStall per stalled tick that saw I/O, regardless of call count.
  ASSERT_EQ(ledger.size(), 2u);
  EXPECT_EQ(ledger[0].kind, ServeFaultKind::kStall);
  EXPECT_EQ(ledger[0].tick, 1u);
  EXPECT_EQ(ledger[1].tick, 2u);
}

// --- Deterministic step-mode fault replay --------------------------------

/// Builds the scripted pipelined burst: mixed opcodes, one malformed body,
/// order shuffled by the seed (the "reordered pipelined bursts" hostility —
/// ids make the permutation observable end to end).
std::vector<std::vector<std::uint8_t>> scripted_burst(std::uint64_t seed) {
  std::vector<std::vector<std::uint8_t>> frames;
  frames.push_back(build_request(1, Opcode::kPing));
  frames.push_back(build_request(2, Opcode::kInfo));
  frames.push_back(
      build_request(3, Opcode::kSlice, make_slice_body(1, kAllServices, 0, 3)));
  frames.push_back(build_request(
      4, Opcode::kSlice,
      make_slice_body(2, 1, kTotalsHours, kTotalsHours)));
  frames.push_back(build_request(5, Opcode::kCluster, make_cluster_body(0)));
  frames.push_back(build_request(6, Opcode::kCoverage,
                                 make_coverage_body(kAllRows)));
  frames.push_back(build_request(7, Opcode::kQuarantine));
  static constexpr std::uint8_t kBadBody[] = {1, 2, 3};
  frames.push_back(build_request(8, Opcode::kCluster, kBadBody));
  frames.push_back(build_request(9, Opcode::kRepin));
  frames.push_back(build_request(10, Opcode::kShap, make_shap_body(0, 2)));
  frames.push_back(build_request(11, Opcode::kInfo));
  frames.push_back(build_request(12, Opcode::kPing));
  icn::util::Rng rng(icn::util::derive_seed(seed, 0xB0057));
  std::shuffle(frames.begin(), frames.end(), rng);
  return frames;
}

struct FaultyRun {
  ServeFaultLedger ledger;
  std::vector<std::vector<std::uint8_t>> requests;  ///< Frame payloads.
  std::vector<std::vector<std::uint8_t>> replies;   ///< Frame payloads.
};

/// One deterministic run: step-driven server, one connection behind a
/// FaultyTransport (budgets + stalls, no corruption/reset so every request
/// completes), scripted burst written up front.
FaultyRun run_faulty_exchange(std::uint64_t seed, const std::string& snap_path) {
  SnapshotRegistry registry;
  registry.publish_file(snap_path);
  Server server(ServeConfig{}, registry);

  ServeFaultPlanParams params;
  params.seed = seed;
  params.partial_read_rate = 0.5;
  params.partial_read_max = 7;
  params.short_write_rate = 0.5;
  params.short_write_max = 9;
  params.stall_rate = 0.15;
  params.stall_max_ticks = 2;
  const ServeFaultPlan plan(params);

  FaultyRun run;
  server.set_transport_factory(
      [&plan, &run](std::unique_ptr<Transport> inner, std::uint64_t conn) {
        return std::make_unique<FaultyTransport>(std::move(inner), &plan,
                                                 conn, &run.ledger);
      });

  icn::util::Fd client = icn::util::connect_loopback(server.port());
  std::vector<std::uint8_t> wire;
  for (const auto& frame : scripted_burst(seed)) {
    run.requests.emplace_back(frame.begin() + 4, frame.end());
    wire.insert(wire.end(), frame.begin(), frame.end());
  }
  icn::util::write_all(client.get(), wire);

  icn::util::ByteQueue stream;
  for (int i = 0; i < 4000 && run.replies.size() < run.requests.size(); ++i) {
    server.step(1);
    auto span = stream.grow_tail(4096);
    const ssize_t n = ::recv(client.get(), span.data(), span.size(),
                             MSG_DONTWAIT);
    stream.shrink_tail(span.size() -
                       static_cast<std::size_t>(std::max<ssize_t>(0, n)));
    while (true) {
      const FrameResult frame =
          try_parse_frame(stream.data(), kDefaultMaxFrame);
      if (frame.kind != FrameResult::Kind::kFrame) break;
      run.replies.emplace_back(frame.payload.begin(), frame.payload.end());
      stream.consume(frame.consumed);
    }
  }
  return run;
}

TEST(ServeChaosTest, EqualSeedsReplayLedgerVerbatimAndRepliesByteExact) {
  TempFile file("replay.snap");
  write_flavored_snapshot(file.path(), 1);
  const FaultyRun first = run_faulty_exchange(99, file.path());
  const FaultyRun second = run_faulty_exchange(99, file.path());

  ASSERT_EQ(first.replies.size(), first.requests.size());
  EXPECT_FALSE(first.ledger.empty()) << "the plan injected nothing";
  // Equal seeds: the fault ledger replays verbatim, event for event.
  ASSERT_EQ(first.ledger.size(), second.ledger.size())
      << "first run:\n" << to_text(first.ledger)
      << "second run:\n" << to_text(second.ledger);
  for (std::size_t i = 0; i < first.ledger.size(); ++i) {
    EXPECT_EQ(first.ledger[i], second.ledger[i]) << "event " << i;
  }
  ASSERT_EQ(second.replies.size(), first.replies.size());
  for (std::size_t i = 0; i < first.replies.size(); ++i) {
    EXPECT_EQ(first.replies[i], second.replies[i]) << "reply " << i;
  }

  // And every reply under faults is byte-exact against the pure dispatch
  // oracle — the shim tortures the transport, never the answers.
  const auto snap = ServedSnapshot::load(file.path());
  SnapshotRegistry oracle_registry;
  oracle_registry.publish(snap);
  const auto pinned = oracle_registry.acquire();
  for (std::size_t i = 0; i < first.requests.size(); ++i) {
    const std::vector<std::uint8_t> expected =
        deterministic_reply(pinned.get(), first.requests[i]);
    ASSERT_GE(expected.size(), kFrameHeaderSize);
    const std::vector<std::uint8_t> expected_payload(
        expected.begin() + 4, expected.end());
    EXPECT_EQ(first.replies[i], expected_payload) << "request " << i;
  }
}

TEST(ServeChaosTest, DifferentSeedsChangeTheLedger) {
  TempFile file("replay2.snap");
  write_flavored_snapshot(file.path(), 1);
  const FaultyRun a = run_faulty_exchange(99, file.path());
  const FaultyRun b = run_faulty_exchange(100, file.path());
  EXPECT_NE(to_text(a.ledger), to_text(b.ledger));
  // Different hostility, same answers.
  ASSERT_EQ(a.replies.size(), b.replies.size());
}

// --- Corruption shadow replay --------------------------------------------

TEST(ServeChaosTest, CorruptedStreamMatchesShadowReplay) {
  TempFile file("corrupt.snap");
  write_flavored_snapshot(file.path(), 2);
  SnapshotRegistry registry;
  registry.publish_file(file.path());
  Server server(ServeConfig{}, registry);

  ServeFaultPlanParams params;
  params.seed = 777;
  params.corrupt_rate = 0.01;  // ~4 corrupted bytes over the burst.
  const ServeFaultPlan plan(params);
  ServeFaultLedger ledger;
  server.set_transport_factory(
      [&plan, &ledger](std::unique_ptr<Transport> inner, std::uint64_t conn) {
        return std::make_unique<FaultyTransport>(std::move(inner), &plan,
                                                 conn, &ledger);
      });

  // The scripted burst, repeated for more corruption surface.
  std::vector<std::uint8_t> wire;
  for (int rep = 0; rep < 3; ++rep) {
    for (const auto& frame : scripted_burst(7)) {
      wire.insert(wire.end(), frame.begin(), frame.end());
    }
  }

  // Shadow replay: corrupt the stream offline with the plan's own masks,
  // then re-frame and re-dispatch — exactly what the server must compute.
  std::vector<std::uint8_t> corrupted = wire;
  for (std::size_t i = 0; i < corrupted.size(); ++i) {
    if (const auto mask = plan.corrupt_mask(0, i)) corrupted[i] ^= *mask;
  }
  ASSERT_NE(corrupted, wire) << "pick a seed that corrupts something";

  const auto pinned = registry.acquire();
  struct Expected {
    std::vector<std::uint8_t> payload;
    bool live_health = false;  ///< Compare header only (live counters).
  };
  std::vector<Expected> expected;
  bool closes = false;
  {
    std::span<const std::uint8_t> stream(corrupted);
    while (true) {
      const FrameResult frame = try_parse_frame(stream, kDefaultMaxFrame);
      if (frame.kind == FrameResult::Kind::kNeedMore) break;
      if (frame.kind == FrameResult::Kind::kOversized) {
        // The session's typed reject, replicated byte for byte.
        std::vector<std::uint8_t> reject;
        append_error_reply(
            reject, 0, Opcode::kPing, Status::kOversized, 1,
            "frame of " + std::to_string(frame.declared_len) +
                " bytes exceeds the server max of " +
                std::to_string(kDefaultMaxFrame));
        expected.push_back({{reject.begin() + 4, reject.end()}, false});
        closes = true;
        break;
      }
      Expected e;
      const DecodedRequest decoded = decode_request(frame.payload);
      e.live_health = decoded.request &&
                      decoded.request->opcode == Opcode::kHealth &&
                      decoded.request->body.empty();
      const std::vector<std::uint8_t> reply =
          deterministic_reply(pinned.get(), frame.payload);
      e.payload.assign(reply.begin() + 4, reply.end());
      expected.push_back(std::move(e));
      stream = stream.subspan(frame.consumed);
    }
  }
  ASSERT_FALSE(expected.empty());

  icn::util::Fd client = icn::util::connect_loopback(server.port());
  icn::util::write_all(client.get(), wire);
  icn::util::ByteQueue reply_stream;
  std::vector<std::vector<std::uint8_t>> got;
  for (int i = 0; i < 4000 && got.size() < expected.size(); ++i) {
    server.step(1);
    auto span = reply_stream.grow_tail(4096);
    const ssize_t n = ::recv(client.get(), span.data(), span.size(),
                             MSG_DONTWAIT);
    reply_stream.shrink_tail(
        span.size() - static_cast<std::size_t>(std::max<ssize_t>(0, n)));
    while (true) {
      const FrameResult frame =
          try_parse_frame(reply_stream.data(), kDefaultMaxFrame);
      if (frame.kind != FrameResult::Kind::kFrame) break;
      got.emplace_back(frame.payload.begin(), frame.payload.end());
      reply_stream.consume(frame.consumed);
    }
  }

  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    if (expected[i].live_health) {
      // Live counters differ from the oracle's zeros by design; the header
      // and shape must still agree.
      ASSERT_GE(got[i].size(), kReplyHeaderSize);
      EXPECT_EQ(got[i].size(), expected[i].payload.size());
      EXPECT_EQ(std::memcmp(got[i].data(), expected[i].payload.data(), 8), 0);
      continue;
    }
    EXPECT_EQ(got[i], expected[i].payload) << "reply " << i;
  }
  if (closes) {
    for (int i = 0; i < 50 && server.num_sessions() > 0; ++i) server.step(1);
    EXPECT_EQ(server.num_sessions(), 0u);
  }
}

// --- Deadlines -----------------------------------------------------------

TEST(ServeChaosTest, SlowLorisEvictedAtThePlannedTick) {
  SnapshotRegistry registry;
  ServeConfig config;
  config.request_deadline_ticks = 5;
  Server server(config, registry);
  icn::util::Fd client = icn::util::connect_loopback(server.port());
  server.step(1);  // Accept.
  ASSERT_EQ(server.num_sessions(), 1u);

  // A frame header promising 64 bytes that never arrive.
  std::vector<std::uint8_t> partial;
  put_u32(partial, 64);
  icn::util::write_all(client.get(), partial);
  server.step(1);  // The partial frame lands; its deadline clock starts.
  const std::uint64_t start_tick = server.stats().ticks;

  std::uint64_t evicted_tick = 0;
  for (int i = 0; i < 50 && evicted_tick == 0; ++i) {
    server.step(1);
    if (server.stats().sessions_evicted_deadline == 1) {
      evicted_tick = server.stats().ticks;
    }
  }
  // Evicted exactly when the deadline elapses, not a tick early or late.
  EXPECT_EQ(evicted_tick, start_tick + config.request_deadline_ticks);
  // Let the typed reply flush and the close land before blocking on recv.
  for (int i = 0; i < 50 && server.num_sessions() > 0; ++i) server.step(1);
  EXPECT_EQ(server.num_sessions(), 0u);

  // The close is typed: one kDeadline reply, then EOF.
  std::vector<std::uint8_t> bytes(512);
  std::size_t at = 0;
  ssize_t n;
  while ((n = ::recv(client.get(), bytes.data() + at, bytes.size() - at, 0)) >
         0) {
    at += static_cast<std::size_t>(n);
  }
  EXPECT_EQ(n, 0) << "expected EOF after the typed eviction reply";
  const FrameResult frame =
      try_parse_frame({bytes.data(), at}, kDefaultMaxFrame);
  ASSERT_EQ(frame.kind, FrameResult::Kind::kFrame);
  const auto reply = decode_reply(frame.payload);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->status, Status::kDeadline);
  EXPECT_EQ(server.num_sessions(), 0u);
}

TEST(ServeChaosTest, IdleSessionEvictedAfterIdleDeadline) {
  SnapshotRegistry registry;
  ServeConfig config;
  config.idle_deadline_ticks = 4;
  Server server(config, registry);
  icn::util::Fd client = icn::util::connect_loopback(server.port());
  server.step(1);
  ASSERT_EQ(server.num_sessions(), 1u);

  for (int i = 0; i < 50 && server.num_sessions() > 0; ++i) server.step(1);
  EXPECT_EQ(server.num_sessions(), 0u);
  EXPECT_EQ(server.stats().sessions_evicted_idle, 1u);

  std::vector<std::uint8_t> bytes(256);
  std::size_t at = 0;
  ssize_t n;
  while ((n = ::recv(client.get(), bytes.data() + at, bytes.size() - at, 0)) >
         0) {
    at += static_cast<std::size_t>(n);
  }
  const FrameResult frame =
      try_parse_frame({bytes.data(), at}, kDefaultMaxFrame);
  ASSERT_EQ(frame.kind, FrameResult::Kind::kFrame);
  const auto reply = decode_reply(frame.payload);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->status, Status::kDeadline);
}

TEST(ServeChaosTest, ActiveSessionIsNotEvicted) {
  SnapshotRegistry registry;
  ServeConfig config;
  config.idle_deadline_ticks = 3;
  config.request_deadline_ticks = 3;
  Server server(config, registry);
  icn::util::Fd client = icn::util::connect_loopback(server.port());
  // Keep pinging past many deadline windows; activity resets the clocks.
  icn::util::ByteQueue stream;
  for (int i = 0; i < 20; ++i) {
    icn::util::write_all(client.get(),
                         build_request(static_cast<std::uint32_t>(i),
                                       Opcode::kPing));
    server.step(1);
    server.step(1);
    auto span = stream.grow_tail(1024);
    const ssize_t n = ::recv(client.get(), span.data(), span.size(),
                             MSG_DONTWAIT);
    stream.shrink_tail(span.size() -
                       static_cast<std::size_t>(std::max<ssize_t>(0, n)));
  }
  EXPECT_EQ(server.num_sessions(), 1u);
  EXPECT_EQ(server.stats().sessions_evicted_idle, 0u);
  EXPECT_EQ(server.stats().sessions_evicted_deadline, 0u);
}

// --- Graceful drain ------------------------------------------------------

TEST(ServeChaosTest, GracefulDrainFlushesThenRejectsTyped) {
  TempFile file("drain.snap");
  write_flavored_snapshot(file.path(), 0);
  SnapshotRegistry registry;
  registry.publish_file(file.path());
  Server server(ServeConfig{}, registry);

  icn::util::Fd client = icn::util::connect_loopback(server.port());
  icn::util::write_all(client.get(), build_request(1, Opcode::kInfo));
  // Pump until the kOk reply is actually served (accept and serve land on
  // separate poll rounds), so the drain below only sees the burst.
  {
    std::vector<std::uint8_t> head(kFrameHeaderSize);
    std::size_t at = 0;
    for (int i = 0; i < 200 && at < head.size(); ++i) {
      server.step(1);
      const ssize_t n = ::recv(client.get(), head.data() + at,
                               head.size() - at, MSG_DONTWAIT);
      if (n > 0) at += static_cast<std::size_t>(n);
    }
    ASSERT_EQ(at, head.size());
    std::uint32_t len = 0;
    std::memcpy(&len, head.data(), 4);
    std::vector<std::uint8_t> payload(len);
    at = 0;
    for (int i = 0; i < 200 && at < payload.size(); ++i) {
      server.step(1);
      const ssize_t n = ::recv(client.get(), payload.data() + at,
                               payload.size() - at, MSG_DONTWAIT);
      if (n > 0) at += static_cast<std::size_t>(n);
    }
    ASSERT_EQ(at, payload.size());
    const auto first = decode_reply(payload);
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->request_id, 1u);
    EXPECT_EQ(first->status, Status::kOk);
  }

  // Two pipelined requests land in the socket, then the drain begins.
  std::vector<std::uint8_t> burst;
  const auto r2 = build_request(2, Opcode::kPing);
  const auto r3 = build_request(3, Opcode::kInfo);
  burst.insert(burst.end(), r2.begin(), r2.end());
  burst.insert(burst.end(), r3.begin(), r3.end());
  icn::util::write_all(client.get(), burst);
  server.begin_drain();
  for (int i = 0; i < 50 && server.num_sessions() > 0; ++i) server.step(1);
  EXPECT_EQ(server.num_sessions(), 0u);
  EXPECT_TRUE(server.draining());

  // New connections are refused, typed.
  icn::util::Fd late = icn::util::connect_loopback(server.port());
  for (int i = 0; i < 20 && server.stats().connections_refused == 0; ++i) {
    server.step(1);
  }
  EXPECT_EQ(server.stats().connections_refused, 1u);

  // The draining client saw two typed kShuttingDown rejects for the
  // in-flight requests, then EOF (the kOk reply was consumed above).
  std::vector<std::uint8_t> bytes(4096);
  std::size_t at = 0;
  ssize_t n;
  while ((n = ::recv(client.get(), bytes.data() + at, bytes.size() - at, 0)) >
         0) {
    at += static_cast<std::size_t>(n);
  }
  EXPECT_EQ(n, 0);
  std::span<const std::uint8_t> stream(bytes.data(), at);
  std::vector<Reply> replies;
  std::vector<std::vector<std::uint8_t>> payloads;
  while (true) {
    const FrameResult frame = try_parse_frame(stream, kDefaultMaxFrame);
    if (frame.kind != FrameResult::Kind::kFrame) break;
    payloads.emplace_back(frame.payload.begin(), frame.payload.end());
    stream = stream.subspan(frame.consumed);
  }
  for (const auto& payload : payloads) {
    const auto reply = decode_reply(payload);
    ASSERT_TRUE(reply.has_value());
    replies.push_back(*reply);
  }
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_EQ(replies[0].request_id, 2u);
  EXPECT_EQ(replies[0].status, Status::kShuttingDown);
  EXPECT_EQ(replies[1].request_id, 3u);
  EXPECT_EQ(replies[1].status, Status::kShuttingDown);
  EXPECT_EQ(server.stats().shutdown_rejects, 2u);

  // The typed refusal for the late connection.
  std::vector<std::uint8_t> late_bytes(512);
  at = 0;
  while ((n = ::recv(late.get(), late_bytes.data() + at,
                     late_bytes.size() - at, 0)) > 0) {
    at += static_cast<std::size_t>(n);
  }
  const FrameResult late_frame =
      try_parse_frame({late_bytes.data(), at}, kDefaultMaxFrame);
  ASSERT_EQ(late_frame.kind, FrameResult::Kind::kFrame);
  const auto late_reply = decode_reply(late_frame.payload);
  ASSERT_TRUE(late_reply.has_value());
  EXPECT_EQ(late_reply->status, Status::kShuttingDown);
}

TEST(ServeChaosTest, DrainDeadlineForceClosesStragglers) {
  SnapshotRegistry registry;
  ServeConfig config;
  config.drain_deadline_ticks = 6;
  Server server(config, registry);
  icn::util::Fd client = icn::util::connect_loopback(server.port());
  server.step(1);
  ASSERT_EQ(server.num_sessions(), 1u);

  // A straggler: a partial frame keeps the session non-drain-idle forever.
  std::vector<std::uint8_t> partial;
  put_u32(partial, 32);
  partial.push_back(1);
  icn::util::write_all(client.get(), partial);
  server.step(1);
  server.begin_drain();
  for (int i = 0; i < 50 && server.num_sessions() > 0; ++i) server.step(1);
  EXPECT_EQ(server.num_sessions(), 0u);

  // run() returns once the drain completes.
  Server runner(config, registry);
  std::thread reactor([&runner] { runner.run(); });
  runner.begin_drain();
  reactor.join();  // Must not hang.
}

// --- Publish quarantine --------------------------------------------------

TEST(ServeChaosTest, CorruptedPublishKeepsPriorGenerationServing) {
  TempFile good("good.snap");
  TempFile bad("bad.snap");
  write_flavored_snapshot(good.path(), 1);
  write_flavored_snapshot(bad.path(), 2);
  // Flip one payload byte of the sealed file: the section CRC must catch it.
  {
    std::fstream f(bad.path(),
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(0, std::ios::end);
    const std::streamoff size = f.tellg();
    ASSERT_GT(size, 200);
    f.seekp(size / 2);
    char byte = 0;
    f.seekg(size / 2);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(size / 2);
    f.write(&byte, 1);
  }

  SnapshotRegistry registry;
  ASSERT_EQ(registry.publish_file(good.path()), 1u);
  EXPECT_EQ(registry.try_publish_file(bad.path()), 0u);
  EXPECT_EQ(registry.generation(), 1u);
  EXPECT_EQ(registry.degraded_publishes(), 1u);
  EXPECT_FALSE(registry.last_publish_error().empty());

  // The reactor keeps serving generation 1 bytes, and kHealth reports the
  // degradation.
  Server server(ServeConfig{}, registry);
  icn::util::Fd client = icn::util::connect_loopback(server.port());
  icn::util::write_all(client.get(), build_request(5, Opcode::kInfo));
  icn::util::ByteQueue stream;
  std::vector<std::uint8_t> payload;
  for (int i = 0; i < 200 && payload.empty(); ++i) {
    server.step(1);
    auto span = stream.grow_tail(4096);
    const ssize_t n = ::recv(client.get(), span.data(), span.size(),
                             MSG_DONTWAIT);
    stream.shrink_tail(span.size() -
                       static_cast<std::size_t>(std::max<ssize_t>(0, n)));
    const FrameResult frame = try_parse_frame(stream.data(), kDefaultMaxFrame);
    if (frame.kind == FrameResult::Kind::kFrame) {
      payload.assign(frame.payload.begin(), frame.payload.end());
      stream.consume(frame.consumed);
    }
  }
  const auto reply = decode_reply(payload);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->status, Status::kOk);
  EXPECT_EQ(reply->generation, 1u);
  EXPECT_EQ(server.health().degraded_publishes, 1u);
}

// --- kHealth -------------------------------------------------------------

TEST(ServeChaosTest, HealthOpcodeReportsLiveCounters) {
  TempFile file("health.snap");
  write_flavored_snapshot(file.path(), 0);
  SnapshotRegistry registry;
  registry.publish_file(file.path());
  Server server(ServeConfig{}, registry);
  icn::util::Fd client = icn::util::connect_loopback(server.port());

  icn::util::ByteQueue stream;
  std::vector<std::vector<std::uint8_t>> payloads;
  const auto pump = [&](std::size_t want) {
    for (int i = 0; i < 200 && payloads.size() < want; ++i) {
      server.step(1);
      auto span = stream.grow_tail(4096);
      const ssize_t n = ::recv(client.get(), span.data(), span.size(),
                               MSG_DONTWAIT);
      stream.shrink_tail(span.size() -
                         static_cast<std::size_t>(std::max<ssize_t>(0, n)));
      while (true) {
        const FrameResult frame =
            try_parse_frame(stream.data(), kDefaultMaxFrame);
        if (frame.kind != FrameResult::Kind::kFrame) break;
        payloads.emplace_back(frame.payload.begin(), frame.payload.end());
        stream.consume(frame.consumed);
      }
    }
  };

  // A ping first — fully served before the health call, so the health_
  // block refreshed at the top of a later step already counts it.
  icn::util::write_all(client.get(), build_request(1, Opcode::kPing));
  pump(1);
  ASSERT_EQ(payloads.size(), 1u);
  icn::util::write_all(client.get(), build_request(2, Opcode::kHealth));
  pump(2);
  ASSERT_EQ(payloads.size(), 2u);
  const auto health = decode_reply(payloads[1]);
  ASSERT_TRUE(health.has_value());
  EXPECT_EQ(health->status, Status::kOk);
  EXPECT_EQ(health->opcode, Opcode::kHealth);
  ASSERT_EQ(health->body.size(), kHealthBodySize);

  std::uint32_t version = 0;
  std::uint32_t open_sessions = 0;
  std::uint64_t latest_generation = 0;
  std::uint64_t frames_served = 0;
  std::memcpy(&version, health->body.data(), 4);
  std::memcpy(&open_sessions, health->body.data() + 4, 4);
  std::memcpy(&latest_generation, health->body.data() + 8, 8);
  std::memcpy(&frames_served, health->body.data() + 48, 8);
  EXPECT_EQ(version, kProtocolVersion);
  EXPECT_EQ(open_sessions, 1u);
  EXPECT_EQ(latest_generation, 1u);
  EXPECT_GE(frames_served, 1u);  // The ping, served before this health call.

  // The pure dispatch path answers kHealth with zeroed counters — total,
  // never crashing, excluded from the live comparison.
  const auto snap = registry.acquire();
  const auto health_frame = build_request(2, Opcode::kHealth);
  const std::vector<std::uint8_t> health_payload(health_frame.begin() + 4,
                                                 health_frame.end());
  const auto oracle = deterministic_reply(snap.get(), health_payload);
  ASSERT_GE(oracle.size(), kFrameHeaderSize + kReplyHeaderSize + 56);
  std::uint64_t oracle_frames = 0;
  std::memcpy(&oracle_frames, oracle.data() + 4 + kReplyHeaderSize + 48, 8);
  EXPECT_EQ(oracle_frames, 0u);
}

TEST(ServeChaosTest, HealthSurfacesCheckpointFailuresFromInstalledSource) {
  TempFile file("health_ckpt.snap");
  write_flavored_snapshot(file.path(), 0);
  SnapshotRegistry registry;
  registry.publish_file(file.path());
  Server server(ServeConfig{}, registry);
  // The durability layer (summed FeedSupervisor stats) plugs in here; the
  // reactor samples it at the top of each step.
  std::uint64_t upstream_failures = 7;
  server.set_checkpoint_failures_source(
      [&upstream_failures] { return upstream_failures; });
  icn::util::Fd client = icn::util::connect_loopback(server.port());

  icn::util::ByteQueue stream;
  std::vector<std::vector<std::uint8_t>> payloads;
  const auto pump = [&](std::size_t want) {
    for (int i = 0; i < 200 && payloads.size() < want; ++i) {
      server.step(1);
      auto span = stream.grow_tail(4096);
      const ssize_t n = ::recv(client.get(), span.data(), span.size(),
                               MSG_DONTWAIT);
      stream.shrink_tail(span.size() -
                         static_cast<std::size_t>(std::max<ssize_t>(0, n)));
      while (true) {
        const FrameResult frame =
            try_parse_frame(stream.data(), kDefaultMaxFrame);
        if (frame.kind != FrameResult::Kind::kFrame) break;
        payloads.emplace_back(frame.payload.begin(), frame.payload.end());
        stream.consume(frame.consumed);
      }
    }
  };

  icn::util::write_all(client.get(), build_request(1, Opcode::kHealth));
  pump(1);
  ASSERT_EQ(payloads.size(), 1u);
  const auto health = decode_reply(payloads[0]);
  ASSERT_TRUE(health.has_value());
  EXPECT_EQ(health->status, Status::kOk);
  ASSERT_EQ(health->body.size(), kHealthBodySize);
  // Layout: u32 version, u32 open_sessions, then 11 u64 counters —
  // checkpoint_failures is the 11th (offset 88), before the draining flag.
  std::uint64_t checkpoint_failures = 0;
  std::memcpy(&checkpoint_failures, health->body.data() + 88, 8);
  EXPECT_EQ(checkpoint_failures, 7u);
  std::uint8_t draining = 0;
  std::memcpy(&draining, health->body.data() + 96, 1);
  EXPECT_EQ(draining, 0);

  // The counter is sampled live, not latched at accept time.
  upstream_failures = 19;
  icn::util::write_all(client.get(), build_request(2, Opcode::kHealth));
  pump(2);
  ASSERT_EQ(payloads.size(), 2u);
  const auto refreshed = decode_reply(payloads[1]);
  ASSERT_TRUE(refreshed.has_value());
  ASSERT_EQ(refreshed->body.size(), kHealthBodySize);
  std::memcpy(&checkpoint_failures, refreshed->body.data() + 88, 8);
  EXPECT_EQ(checkpoint_failures, 19u);
}

// --- Concurrent chaos soak -----------------------------------------------

TEST(ServeChaosTest, ChaosSoakByteExactRepliesUnderFaultsAndHotSwaps) {
  constexpr std::size_t kClients = 12;
  constexpr std::size_t kRequestsPerClient = 25;
  constexpr std::size_t kGenerations = 3;

  std::vector<TempFile> files;
  std::vector<std::shared_ptr<ServedSnapshot>> generations;
  for (std::size_t g = 0; g < kGenerations; ++g) {
    files.emplace_back("soak_gen" + std::to_string(g) + ".snap");
    write_flavored_snapshot(files.back().path(),
                            static_cast<std::uint32_t>(g));
    generations.push_back(ServedSnapshot::load(files.back().path()));
  }

  SnapshotRegistry registry;
  registry.publish(generations[0]);
  Server server(ServeConfig{}, registry);

  // Non-corrupting hostility (every completed reply must stay verifiable)
  // plus resets, which the resilient clients absorb by reconnecting.
  ServeFaultPlanParams params;
  params.seed = 20260808;
  params.partial_read_rate = 0.25;
  params.partial_read_max = 16;
  params.short_write_rate = 0.25;
  params.short_write_max = 24;
  params.stall_rate = 0.02;
  params.stall_max_ticks = 2;
  params.reset_rate = 0.3;
  params.reset_min_ticks = 1;
  params.reset_max_ticks = 40;
  const ServeFaultPlan plan(params);
  server.set_transport_factory(
      [&plan](std::unique_ptr<Transport> inner, std::uint64_t conn) {
        // No shared ledger: the soak is wall-clock concurrent, so ledger
        // reproducibility is asserted by the deterministic test above.
        return std::make_unique<FaultyTransport>(std::move(inner), &plan,
                                                 conn, nullptr);
      });
  std::thread reactor([&server] { server.run(); });

  struct Exchange {
    std::vector<std::uint8_t> request;
    std::vector<std::uint8_t> reply_payload;
    std::uint64_t generation = 0;
    Status status{};
  };
  std::vector<std::vector<Exchange>> per_client(kClients);
  std::vector<std::uint64_t> reconnects(kClients, 0);
  std::vector<std::uint64_t> failures(kClients, 0);

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t t = 0; t < kClients; ++t) {
    clients.emplace_back([t, port = server.port(), &per_client, &reconnects,
                          &failures] {
      ClientOptions options;
      options.read_timeout_ms = 2000;
      options.connect_timeout_ms = 2000;
      options.max_attempts = 6;
      options.backoff_base_ms = 1;
      options.backoff_max_ms = 8;
      options.jitter_seed = 1000 + t;
      QueryClient client(static_cast<std::uint16_t>(port), options);
      for (std::size_t i = 0; i < kRequestsPerClient; ++i) {
        const auto id = static_cast<std::uint32_t>(t * 1000 + i);
        Opcode opcode{};
        std::vector<std::uint8_t> body;
        switch ((t * 7 + i) % 8) {
          case 0:
            opcode = Opcode::kPing;
            break;
          case 1:
            opcode = Opcode::kInfo;
            break;
          case 2:
            opcode = Opcode::kSlice;
            body = make_slice_body(static_cast<std::uint32_t>(t % 5),
                                   kAllServices, 0, 3);
            break;
          case 3:
            opcode = Opcode::kSlice;
            body = make_slice_body(static_cast<std::uint32_t>(i % 5),
                                   static_cast<std::uint32_t>(t % 3),
                                   kTotalsHours, kTotalsHours);
            break;
          case 4:
            opcode = Opcode::kCoverage;
            body = make_coverage_body(kAllRows);
            break;
          case 5:
            opcode = Opcode::kQuarantine;
            break;
          case 6:
            opcode = Opcode::kRepin;
            break;
          case 7:
            // Malformed body: the typed kBadBody reply is deterministic
            // too, so it stays inside the oracle.
            opcode = Opcode::kCluster;
            break;
        }
        try {
          const Reply reply = client.call_idempotent(opcode, body, id);
          Exchange ex;
          const auto frame = build_request(id, opcode, body);
          ex.request.assign(frame.begin() + 4, frame.end());
          ex.reply_payload = client.last_reply_payload();
          ex.generation = reply.generation;
          ex.status = reply.status;
          per_client[t].push_back(std::move(ex));
        } catch (const ClientError&) {
          failures[t] += 1;  // Retries exhausted under heavy faults: typed.
        }
      }
      reconnects[t] = client.reconnects();
    });
  }

  for (std::size_t g = 1; g < kGenerations; ++g) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    registry.publish(generations[g]);
  }
  for (auto& c : clients) c.join();
  server.begin_drain();
  reactor.join();

  std::size_t completed = 0;
  std::size_t failed = 0;
  std::uint64_t total_reconnects = 0;
  for (std::size_t t = 0; t < kClients; ++t) {
    completed += per_client[t].size();
    failed += failures[t];
    total_reconnects += reconnects[t];
    for (const Exchange& ex : per_client[t]) {
      ASSERT_GE(ex.generation, 1u);
      ASSERT_LE(ex.generation, kGenerations);
      const ServedSnapshot* snap = generations[ex.generation - 1].get();
      const std::vector<std::uint8_t> expected =
          deterministic_reply(snap, ex.request);
      ASSERT_GE(expected.size(), kFrameHeaderSize);
      const std::vector<std::uint8_t> expected_payload(
          expected.begin() + 4, expected.end());
      EXPECT_EQ(ex.reply_payload, expected_payload)
          << "client " << t << " request " << std::hex
          << (ex.request.empty() ? 0 : ex.request[0]);
    }
  }
  EXPECT_EQ(completed + failed, kClients * kRequestsPerClient);
  // The plan resets ~30% of connections; the resilient clients must still
  // land the vast majority of calls, and some only via reconnect.
  EXPECT_GE(completed, (kClients * kRequestsPerClient) / 2);
  EXPECT_GT(total_reconnects, 0u)
      << "no client ever exercised the reconnect path";
}

}  // namespace
}  // namespace icn::serve
