// Wire protocol: framing round-trips, incremental extraction, and the fuzz
// battery the protocol must survive — every-length truncation and
// exhaustive single-byte mutation of request frames (the methodology of
// tests/store/test_snapshot.cpp applied to the query protocol). Every
// garbage input must produce exactly one well-formed, typed reply frame and
// no crash (ASan/UBSan builds run this suite too).
#include "serve/protocol.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "serve/client.h"
#include "serve/command_table.h"
#include "serve/registry.h"
#include "store/snapshot.h"

namespace icn::serve {
namespace {

/// Unique file path in the test temp dir; removed on destruction.
class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(::testing::TempDir() + "icn_serve_" +
              std::to_string(::getpid()) + "_" + name) {
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Writes a small but fully-featured snapshot: meta, windows, matrix,
/// coverage (with gaps), quarantine.
void write_test_snapshot(const std::string& path, std::size_t antennas = 4,
                         std::size_t services = 3, std::int64_t hours = 6) {
  store::SnapshotWriter writer(path);
  std::vector<std::uint32_t> ids(antennas);
  for (std::size_t i = 0; i < antennas; ++i) {
    ids[i] = static_cast<std::uint32_t>(100 + i);
  }
  writer.append_stream_meta(ids, services, hours);
  ml::Matrix totals(antennas, services);
  std::vector<double> cells(antennas * services);
  for (std::int64_t h = 0; h < hours; ++h) {
    if (h == 2) continue;  // A coverage gap: no window for hour 2.
    for (std::size_t a = 0; a < antennas; ++a) {
      for (std::size_t s = 0; s < services; ++s) {
        const double mb = static_cast<double>(100 * h + 10 * a + s);
        cells[a * services + s] = mb;
        totals(a, s) += mb;
      }
    }
    writer.append_window(h, cells);
  }
  writer.append_matrix(totals);
  std::vector<std::uint8_t> covered(antennas * static_cast<std::size_t>(hours),
                                    1);
  for (std::size_t a = 0; a < antennas; ++a) {
    covered[a * static_cast<std::size_t>(hours) + 2] = 0;
  }
  writer.append_coverage(antennas, hours, covered);
  const std::vector<std::uint32_t> rejected{0, 1, 2, 0, 0, 5};
  const std::vector<std::uint32_t> repaired{1, 0, 0, 0, 3, 0};
  writer.append_quarantine(hours, rejected, repaired);
  writer.sync();
}

ServedAnalytics test_analytics(std::size_t antennas = 4) {
  ServedAnalytics analytics;
  analytics.num_clusters = 2;
  for (std::size_t i = 0; i < antennas; ++i) {
    analytics.labels.push_back(static_cast<int>(i % 2));
  }
  analytics.shap.resize(2);
  analytics.shap[0] = {{0, 0.8, 0.7, 123.0}, {1, 0.2, -0.3, 45.0}};
  analytics.shap[1] = {{2, 0.9, 0.95, 210.0}};
  return analytics;
}

std::shared_ptr<ServedSnapshot> loaded_snapshot(const std::string& name) {
  static std::vector<std::unique_ptr<TempFile>>& files = *[] {
    return new std::vector<std::unique_ptr<TempFile>>();
  }();
  files.push_back(std::make_unique<TempFile>(name));
  write_test_snapshot(files.back()->path());
  return ServedSnapshot::load(files.back()->path(), test_analytics());
}

/// Asserts `frame` is exactly one well-formed reply frame and returns it.
Reply require_single_reply(std::span<const std::uint8_t> frame) {
  const FrameResult parsed = try_parse_frame(frame, kDefaultMaxFrame);
  EXPECT_EQ(parsed.kind, FrameResult::Kind::kFrame);
  EXPECT_EQ(parsed.consumed, frame.size()) << "exactly one frame expected";
  const auto reply = decode_reply(parsed.payload);
  EXPECT_TRUE(reply.has_value());
  return reply.value_or(Reply{});
}

/// The request corpus the fuzz tests mutate: one valid frame per opcode
/// plus edge-flavored variants.
std::vector<std::vector<std::uint8_t>> request_corpus() {
  std::vector<std::vector<std::uint8_t>> corpus;
  corpus.push_back(build_request(1, Opcode::kPing));
  corpus.push_back(build_request(2, Opcode::kInfo));
  corpus.push_back(build_request(
      3, Opcode::kSlice, make_slice_body(1, kAllServices, 0, 6)));
  corpus.push_back(build_request(
      4, Opcode::kSlice,
      make_slice_body(2, 1, kTotalsHours, kTotalsHours)));
  corpus.push_back(build_request(5, Opcode::kCluster, make_cluster_body(3)));
  corpus.push_back(build_request(6, Opcode::kShap, make_shap_body(0, 0)));
  corpus.push_back(
      build_request(7, Opcode::kCoverage, make_coverage_body(kAllRows)));
  corpus.push_back(
      build_request(8, Opcode::kCoverage, make_coverage_body(0)));
  corpus.push_back(build_request(9, Opcode::kQuarantine));
  corpus.push_back(build_request(10, Opcode::kRepin));
  return corpus;
}

TEST(ServeProtocolTest, RequestRoundTrip) {
  const std::vector<std::uint8_t> body = make_slice_body(7, 2, 0, 24);
  const std::vector<std::uint8_t> frame =
      build_request(0xDEADBEEF, Opcode::kSlice, body);
  ASSERT_GE(frame.size(), kFrameHeaderSize + kRequestHeaderSize);

  const FrameResult parsed = try_parse_frame(frame, kDefaultMaxFrame);
  ASSERT_EQ(parsed.kind, FrameResult::Kind::kFrame);
  EXPECT_EQ(parsed.consumed, frame.size());

  const DecodedRequest decoded = decode_request(parsed.payload);
  ASSERT_TRUE(decoded.request.has_value());
  EXPECT_EQ(decoded.request->request_id, 0xDEADBEEFu);
  EXPECT_EQ(decoded.request->opcode, Opcode::kSlice);
  ASSERT_EQ(decoded.request->body.size(), body.size());
  EXPECT_EQ(std::memcmp(decoded.request->body.data(), body.data(),
                        body.size()),
            0);
}

TEST(ServeProtocolTest, ReplyRoundTrip) {
  std::vector<std::uint8_t> out;
  std::vector<std::uint8_t> body;
  put_u32(body, 42);
  append_reply(out, 77, Opcode::kInfo, Status::kOk, 9, body);
  const Reply reply = require_single_reply(out);
  EXPECT_EQ(reply.request_id, 77u);
  EXPECT_EQ(reply.opcode, Opcode::kInfo);
  EXPECT_EQ(reply.status, Status::kOk);
  EXPECT_EQ(reply.generation, 9u);
  ASSERT_EQ(reply.body.size(), 4u);
}

TEST(ServeProtocolTest, ErrorReplyCarriesDetail) {
  std::vector<std::uint8_t> out;
  append_error_reply(out, 5, Opcode::kSlice, Status::kOutOfRange, 3,
                     "row 99 out of range");
  const Reply reply = require_single_reply(out);
  EXPECT_EQ(reply.status, Status::kOutOfRange);
  ASSERT_GE(reply.body.size(), 4u);
  std::uint32_t len = 0;
  std::memcpy(&len, reply.body.data(), 4);
  ASSERT_EQ(reply.body.size(), 4u + len);
  EXPECT_EQ(std::string(reply.body.begin() + 4, reply.body.end()),
            "row 99 out of range");
}

TEST(ServeProtocolTest, TryParseFrameNeedsMoreUntilComplete) {
  const std::vector<std::uint8_t> frame =
      build_request(1, Opcode::kCluster, make_cluster_body(0));
  for (std::size_t len = 0; len < frame.size(); ++len) {
    const FrameResult parsed =
        try_parse_frame({frame.data(), len}, kDefaultMaxFrame);
    EXPECT_EQ(parsed.kind, FrameResult::Kind::kNeedMore) << "len " << len;
    EXPECT_EQ(parsed.consumed, 0u);
  }
  EXPECT_EQ(try_parse_frame(frame, kDefaultMaxFrame).kind,
            FrameResult::Kind::kFrame);
}

TEST(ServeProtocolTest, TryParseFrameRejectsOversizedDeclaredLength) {
  std::vector<std::uint8_t> frame;
  put_u32(frame, 1u << 24);  // Declared payload way beyond a 1 KiB cap.
  const FrameResult parsed = try_parse_frame(frame, 1024);
  EXPECT_EQ(parsed.kind, FrameResult::Kind::kOversized);
  EXPECT_EQ(parsed.declared_len, 1u << 24);
}

TEST(ServeProtocolTest, BodyReaderBoundsChecks) {
  std::vector<std::uint8_t> body;
  put_u32(body, 7);
  BodyReader in(body);
  EXPECT_EQ(in.take_u32().value_or(0), 7u);
  EXPECT_TRUE(in.done());
  EXPECT_FALSE(in.take_i64().has_value());
  EXPECT_FALSE(in.ok());
  EXPECT_FALSE(in.done());
}

TEST(ServeProtocolTest, DispatchAnswersEveryCorpusRequestOk) {
  const auto snap = loaded_snapshot("corpus_ok.snap");
  for (const auto& frame : request_corpus()) {
    const std::span<const std::uint8_t> payload{frame.data() + 4,
                                                frame.size() - 4};
    const std::vector<std::uint8_t> out =
        deterministic_reply(snap.get(), payload);
    const Reply reply = require_single_reply(out);
    EXPECT_EQ(reply.status, Status::kOk)
        << "opcode " << static_cast<int>(reply.opcode);
  }
}

TEST(ServeProtocolTest, DispatchIsAPureFunctionOfSnapshotAndPayload) {
  const auto snap = loaded_snapshot("purity.snap");
  for (const auto& frame : request_corpus()) {
    const std::span<const std::uint8_t> payload{frame.data() + 4,
                                                frame.size() - 4};
    const auto a = deterministic_reply(snap.get(), payload);
    const auto b = deterministic_reply(snap.get(), payload);
    EXPECT_EQ(a, b);
  }
}

// --- Fuzz: every-length truncation --------------------------------------

TEST(ServeProtocolFuzzTest, EveryLengthTruncationGetsTypedReply) {
  const auto snap = loaded_snapshot("fuzz_trunc.snap");
  for (const auto& frame : request_corpus()) {
    const std::span<const std::uint8_t> payload{frame.data() + 4,
                                                frame.size() - 4};
    // Truncating the *payload* (the frame header said fewer bytes): every
    // prefix must yield exactly one reply, typed kMalformedFrame/kBadBody —
    // never a crash, never silence.
    for (std::size_t len = 0; len < payload.size(); ++len) {
      const std::vector<std::uint8_t> out =
          deterministic_reply(snap.get(), payload.first(len));
      const Reply reply = require_single_reply(out);
      EXPECT_NE(reply.status, Status::kOk)
          << "truncated to " << len << " of " << payload.size();
      if (len < kRequestHeaderSize) {
        EXPECT_EQ(reply.status, Status::kMalformedFrame) << "len " << len;
      } else {
        EXPECT_EQ(reply.status, Status::kBadBody) << "len " << len;
        // The request id survives a body truncation.
        std::uint32_t id = 0;
        std::memcpy(&id, payload.data(), 4);
        EXPECT_EQ(reply.request_id, id);
      }
    }
  }
}

TEST(ServeProtocolFuzzTest, TruncatedStreamNeverYieldsAFrame) {
  // Truncating the byte *stream* (frame header included): the parser must
  // ask for more bytes at every cut, consuming nothing.
  for (const auto& frame : request_corpus()) {
    for (std::size_t len = 0; len < frame.size(); ++len) {
      const FrameResult parsed =
          try_parse_frame({frame.data(), len}, kDefaultMaxFrame);
      EXPECT_EQ(parsed.kind, FrameResult::Kind::kNeedMore);
      EXPECT_EQ(parsed.consumed, 0u);
    }
  }
}

// --- Fuzz: exhaustive single-byte mutation -------------------------------

TEST(ServeProtocolFuzzTest, EverySingleByteMutationGetsAWellFormedReply) {
  const auto snap = loaded_snapshot("fuzz_mut.snap");
  const std::uint8_t flips[] = {0x01, 0x80, 0xFF};
  for (const auto& frame : request_corpus()) {
    std::vector<std::uint8_t> mutated(frame.begin() + 4, frame.end());
    for (std::size_t at = 0; at < mutated.size(); ++at) {
      for (const std::uint8_t flip : flips) {
        const std::uint8_t original = mutated[at];
        mutated[at] = original ^ flip;
        // A mutated payload may still be valid (e.g. a different row) or be
        // typed garbage — either way: exactly one well-formed reply frame,
        // and no crash under ASan/UBSan.
        const std::vector<std::uint8_t> out =
            deterministic_reply(snap.get(), mutated);
        const Reply reply = require_single_reply(out);
        if (at == 4) {
          // The opcode byte: a mutation either hits another valid opcode or
          // must be rejected as kBadOpcode.
          const std::uint8_t op = mutated[at];
          const bool valid =
              op >= static_cast<std::uint8_t>(Opcode::kPing) &&
              op <= static_cast<std::uint8_t>(Opcode::kHealth);
          if (!valid) EXPECT_EQ(reply.status, Status::kBadOpcode);
        }
        if (at >= 5 && at < 8) {
          // Reserved header bytes must be zero on the wire.
          EXPECT_EQ(reply.status, Status::kMalformedFrame)
              << "reserved byte " << at;
        }
        mutated[at] = original;
      }
    }
  }
}

TEST(ServeProtocolFuzzTest, MutationsAgainstNullSnapshotNeverCrash) {
  for (const auto& frame : request_corpus()) {
    std::vector<std::uint8_t> mutated(frame.begin() + 4, frame.end());
    for (std::size_t at = 0; at < mutated.size(); ++at) {
      const std::uint8_t original = mutated[at];
      mutated[at] = original ^ 0xFF;
      const std::vector<std::uint8_t> out =
          deterministic_reply(nullptr, mutated);
      const Reply reply = require_single_reply(out);
      EXPECT_EQ(reply.generation, 0u);
      mutated[at] = original;
    }
  }
}

TEST(ServeProtocolTest, QueriesWithoutSnapshotGetNoSnapshot) {
  const auto frame = build_request(3, Opcode::kInfo);
  const std::vector<std::uint8_t> out = deterministic_reply(
      nullptr, {frame.data() + 4, frame.size() - 4});
  const Reply reply = require_single_reply(out);
  EXPECT_EQ(reply.status, Status::kNoSnapshot);
  // Ping still works with nothing published.
  const auto ping = build_request(4, Opcode::kPing);
  const Reply pong = require_single_reply(deterministic_reply(
      nullptr, {ping.data() + 4, ping.size() - 4}));
  EXPECT_EQ(pong.status, Status::kOk);
  EXPECT_EQ(pong.generation, 0u);
}

TEST(ServeProtocolTest, OutOfRangeAndNoSectionAreTyped) {
  const auto snap = loaded_snapshot("typed_errors.snap");
  struct Case {
    Opcode opcode;
    std::vector<std::uint8_t> body;
    Status expected;
  };
  const Case cases[] = {
      {Opcode::kSlice, make_slice_body(99, 0, 0, 6), Status::kOutOfRange},
      {Opcode::kSlice, make_slice_body(0, 99, 0, 6), Status::kOutOfRange},
      {Opcode::kSlice, make_slice_body(0, 0, 0, 99), Status::kOutOfRange},
      {Opcode::kSlice, make_slice_body(0, 0, 5, 2), Status::kBadBody},
      {Opcode::kCluster, make_cluster_body(99), Status::kOutOfRange},
      {Opcode::kShap, make_shap_body(7, 0), Status::kOutOfRange},
      {Opcode::kCoverage, make_coverage_body(99), Status::kOutOfRange},
  };
  std::uint32_t id = 100;
  for (const Case& c : cases) {
    const auto frame = build_request(id++, c.opcode, c.body);
    const Reply reply = require_single_reply(deterministic_reply(
        snap.get(), {frame.data() + 4, frame.size() - 4}));
    EXPECT_EQ(reply.status, c.expected)
        << "opcode " << static_cast<int>(c.opcode);
  }
}

TEST(ServeProtocolTest, ReplyBoundRejectsAnswersBeyondMaxFrame) {
  const auto snap = loaded_snapshot("bound.snap");
  // A full-tensor hourly slice against a tiny max frame: the dispatcher must
  // refuse with kOversized *before* building the reply.
  const auto frame = build_request(
      1, Opcode::kSlice, make_slice_body(0, kAllServices, 0, 6));
  const std::vector<std::uint8_t> out = deterministic_reply(
      snap.get(), {frame.data() + 4, frame.size() - 4}, 64);
  const Reply reply = require_single_reply(out);
  EXPECT_EQ(reply.status, Status::kOversized);
}

}  // namespace
}  // namespace icn::serve
