// QueryClient resilience: every transport failure mode surfaces as a typed
// ClientError (never a hang, crash, or garbage decode), backoff is a pure
// deterministic function of (options, attempt), call_idempotent() reconnects
// through injected resets, and the process survives writes into dead sockets
// (MSG_NOSIGNAL — no SIGPIPE).
#include "serve/client.h"

#include <gtest/gtest.h>

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <pthread.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "serve/fault.h"
#include "serve/server.h"
#include "util/socket.h"

namespace icn::serve {
namespace {

/// A raw listener the test scripts byte-by-byte: accept one connection, run
/// `script` against it on a background thread, close.
class ScriptedServer {
 public:
  explicit ScriptedServer(std::function<void(int fd)> script)
      : listener_(0),
        thread_([this, script = std::move(script)] {
          icn::util::Fd conn = listener_.accept_nonblocking();
          // The listener is non-blocking; poll until the client arrives.
          for (int i = 0; i < 1000 && !conn.valid(); ++i) {
            (void)icn::util::poll_fd(listener_.fd(), POLLIN, 10);
            conn = listener_.accept_nonblocking();
          }
          if (conn.valid()) {
            // accept_nonblocking() hands out non-blocking fds; the scripts
            // below want plain blocking recv/send.
            const int flags = ::fcntl(conn.get(), F_GETFL, 0);
            ::fcntl(conn.get(), F_SETFL, flags & ~O_NONBLOCK);
            script(conn.get());
          }
        }) {}

  ~ScriptedServer() { thread_.join(); }
  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }

 private:
  icn::util::TcpListener listener_;
  std::thread thread_;
};

/// Reads and discards one full request frame so the client's write lands.
void swallow_request(int fd) {
  std::uint8_t header[4];
  std::size_t at = 0;
  while (at < 4) {
    const ssize_t n = ::recv(fd, header + at, 4 - at, 0);
    if (n <= 0) return;
    at += static_cast<std::size_t>(n);
  }
  std::uint32_t len = 0;
  std::memcpy(&len, header, 4);
  std::vector<std::uint8_t> body(len);
  at = 0;
  while (at < len) {
    const ssize_t n = ::recv(fd, body.data() + at, len - at, 0);
    if (n <= 0) return;
    at += static_cast<std::size_t>(n);
  }
}

ClientErrorKind call_and_catch(QueryClient& client) {
  try {
    (void)client.call(Opcode::kPing, {}, 1);
  } catch (const ClientError& e) {
    return e.kind();
  }
  ADD_FAILURE() << "expected a ClientError";
  return ClientErrorKind::kMalformedReply;
}

TEST(QueryClientErrorTest, ConnectionRefusedIsTyped) {
  // Grab a port that is certainly closed: bind, note it, release it.
  std::uint16_t port = 0;
  {
    const icn::util::TcpListener probe(0);
    port = probe.port();
  }
  ClientOptions options;
  options.connect_timeout_ms = 500;
  try {
    QueryClient client(port, options);
    FAIL() << "expected a ClientError";
  } catch (const ClientError& e) {
    EXPECT_EQ(e.kind(), ClientErrorKind::kConnectFailed);
    EXPECT_NE(std::string(e.what()).find("connect"), std::string::npos);
  }
}

TEST(QueryClientErrorTest, ServerClosingMidPayloadIsTruncatedReply) {
  ScriptedServer server([](int fd) {
    swallow_request(fd);
    // A frame header promising 100 payload bytes, then only 10, then close.
    std::vector<std::uint8_t> bytes;
    put_u32(bytes, 100);
    bytes.resize(4 + 10, 0xAA);
    icn::util::write_all(fd, bytes);
  });
  ClientOptions options;
  options.read_timeout_ms = 2000;
  QueryClient client(server.port(), options);
  EXPECT_EQ(call_and_catch(client), ClientErrorKind::kTruncatedReply);
}

TEST(QueryClientErrorTest, ServerClosingMidHeaderIsTruncatedReply) {
  ScriptedServer server([](int fd) {
    swallow_request(fd);
    const std::uint8_t half_header[2] = {0x10, 0x00};  // 2 of 4 length bytes.
    icn::util::write_all(fd, half_header);
  });
  ClientOptions options;
  options.read_timeout_ms = 2000;
  QueryClient client(server.port(), options);
  EXPECT_EQ(call_and_catch(client), ClientErrorKind::kTruncatedReply);
}

TEST(QueryClientErrorTest, CleanCloseBeforeReplyIsClosedByServer) {
  ScriptedServer server([](int fd) { swallow_request(fd); });  // Just close.
  ClientOptions options;
  options.read_timeout_ms = 2000;
  QueryClient client(server.port(), options);
  EXPECT_EQ(call_and_catch(client), ClientErrorKind::kClosedByServer);
}

TEST(QueryClientErrorTest, SilenceUntilTheDeadlineIsReadTimeout) {
  std::atomic<bool> release{false};
  ScriptedServer server([&release](int fd) {
    swallow_request(fd);
    while (!release.load()) {  // Hold the socket open, say nothing.
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    (void)fd;
  });
  ClientOptions options;
  options.read_timeout_ms = 100;
  QueryClient client(server.port(), options);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(call_and_catch(client), ClientErrorKind::kReadTimeout);
  const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  EXPECT_GE(waited, 90);    // Honored the deadline...
  EXPECT_LT(waited, 1900);  // ...instead of hanging forever.
  release.store(true);
}

TEST(QueryClientErrorTest, UndecodableReplyHeaderIsMalformedReply) {
  ScriptedServer server([](int fd) {
    swallow_request(fd);
    // A complete frame whose reply header has nonzero reserved bytes.
    std::vector<std::uint8_t> bytes;
    put_u32(bytes, kReplyHeaderSize);
    put_u32(bytes, 1);           // request_id
    put_u8(bytes, 1);            // opcode
    put_u8(bytes, 0);            // status
    put_u16(bytes, 0xDEAD);      // reserved: must be zero
    put_u64(bytes, 1);           // generation
    icn::util::write_all(fd, bytes);
  });
  ClientOptions options;
  options.read_timeout_ms = 2000;
  QueryClient client(server.port(), options);
  EXPECT_EQ(call_and_catch(client), ClientErrorKind::kMalformedReply);
}

TEST(QueryClientErrorTest, WriteIntoDeadSocketIsTypedNotSigpipe) {
  ScriptedServer server([](int fd) {
    // Close immediately without reading: the client's next writes hit a
    // dead peer. Absent MSG_NOSIGNAL the second write raises SIGPIPE and
    // kills the process — reaching the typed error IS the assertion.
    (void)fd;
  });
  QueryClient client(server.port());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // Big enough that the kernel cannot buffer it past the reset. The first
  // call may also surface the close as a read-side error; either way it must
  // be a typed ClientError, never a signal.
  const std::vector<std::uint8_t> big(1u << 20, 0x55);
  for (int i = 0; i < 3; ++i) {
    try {
      (void)client.call(Opcode::kCluster, big, static_cast<std::uint32_t>(i));
    } catch (const ClientError&) {
      SUCCEED();
      return;
    }
  }
  FAIL() << "writes into a dead socket never surfaced an error";
}

TEST(BackoffTest, DelayIsDeterministicCappedAndJittered) {
  ClientOptions options;
  options.backoff_base_ms = 4;
  options.backoff_max_ms = 100;
  options.jitter_seed = 7;
  for (std::uint32_t attempt = 0; attempt < 40; ++attempt) {
    const std::uint64_t raw = std::min<std::uint64_t>(
        options.backoff_max_ms,
        options.backoff_base_ms << std::min<std::uint32_t>(attempt, 20));
    const std::uint64_t delay = backoff_delay_ms(options, attempt);
    // Deterministic: the same (options, attempt) always gives the same
    // delay — seeded tests replay retry timing exactly.
    EXPECT_EQ(delay, backoff_delay_ms(options, attempt));
    EXPECT_GE(delay, raw / 2);
    EXPECT_LT(delay, std::max<std::uint64_t>(raw, 1));
    EXPECT_LE(delay, options.backoff_max_ms);
  }
  // Different seeds de-synchronize the jitter (retry storms spread out).
  ClientOptions other = options;
  other.jitter_seed = 8;
  bool differs = false;
  for (std::uint32_t attempt = 2; attempt < 20 && !differs; ++attempt) {
    differs = backoff_delay_ms(options, attempt) !=
              backoff_delay_ms(other, attempt);
  }
  EXPECT_TRUE(differs);
}

TEST(QueryClientResilienceTest, CallIdempotentReconnectsThroughReset) {
  SnapshotRegistry registry;
  Server server(ServeConfig{}, registry);

  // Only the first accepted connection is faulty: it dies one tick after
  // its first I/O. The reconnect lands on a clean transport.
  ServeFaultPlanParams params;
  params.seed = 5;
  params.reset_rate = 1.0;
  params.reset_min_ticks = 1;
  params.reset_max_ticks = 1;
  const auto plan = std::make_shared<ServeFaultPlan>(params);
  server.set_transport_factory(
      [plan](std::unique_ptr<Transport> inner, std::uint64_t conn) {
        if (conn == 0) {
          return std::unique_ptr<Transport>(std::make_unique<FaultyTransport>(
              std::move(inner), plan.get(), conn, nullptr));
        }
        return inner;
      });
  std::thread reactor([&server] { server.run(); });

  ClientOptions options;
  options.read_timeout_ms = 500;
  options.max_attempts = 4;
  options.backoff_base_ms = 1;
  options.backoff_max_ms = 4;
  QueryClient client(server.port(), options);
  // First call: served before the planned lifetime elapses.
  const Reply first = client.call_idempotent(Opcode::kPing, {}, 1);
  EXPECT_EQ(first.status, Status::kOk);
  // Let the reactor tick past the planned lifetime so the next I/O on the
  // faulty transport hits the injected reset.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  const Reply second = client.call_idempotent(Opcode::kPing, {}, 2);
  EXPECT_EQ(second.status, Status::kOk);
  EXPECT_GE(client.reconnects(), 1u);

  server.begin_drain();
  reactor.join();
}

TEST(PollFdTest, SurvivesSignalStorm) {
  // poll_fd must absorb EINTR and keep honoring the remaining deadline.
  struct sigaction action{};
  action.sa_handler = [](int) {};
  sigaction(SIGUSR1, &action, nullptr);

  int pipe_fds[2];
  ASSERT_EQ(::pipe(pipe_fds), 0);
  std::atomic<bool> done{false};
  const pthread_t target = pthread_self();
  std::thread pinger([&done, target] {
    while (!done.load()) {
      pthread_kill(target, SIGUSR1);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  const auto start = std::chrono::steady_clock::now();
  const short got = icn::util::poll_fd(pipe_fds[0], POLLIN, 200);
  const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  done.store(true);
  pinger.join();
  EXPECT_EQ(got, 0) << "nothing was readable; expected a clean timeout";
  EXPECT_GE(waited, 180) << "EINTR cut the deadline short";
  ::close(pipe_fds[0]);
  ::close(pipe_fds[1]);

  signal(SIGUSR1, SIG_DFL);
}

}  // namespace
}  // namespace icn::serve
