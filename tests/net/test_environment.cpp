#include "net/environment.h"

#include <gtest/gtest.h>

#include <set>

namespace icn::net {
namespace {

TEST(EnvironmentTest, ElevenCategories) {
  EXPECT_EQ(kNumEnvironments, 11u);
  EXPECT_EQ(all_environments().size(), 11u);
  std::set<Environment> distinct(all_environments().begin(),
                                 all_environments().end());
  EXPECT_EQ(distinct.size(), 11u);
}

TEST(EnvironmentTest, NamesAreUnique) {
  std::set<std::string> names;
  for (const Environment e : all_environments()) {
    names.insert(environment_name(e));
  }
  EXPECT_EQ(names.size(), 11u);
}

TEST(EnvironmentTest, PaperCountsMatchTable1) {
  // Table 1 of the paper, N_env row.
  EXPECT_EQ(paper_antenna_count(Environment::kMetro), 1794u);
  EXPECT_EQ(paper_antenna_count(Environment::kTrain), 434u);
  EXPECT_EQ(paper_antenna_count(Environment::kAirport), 187u);
  EXPECT_EQ(paper_antenna_count(Environment::kWorkspace), 774u);
  EXPECT_EQ(paper_antenna_count(Environment::kCommercial), 469u);
  EXPECT_EQ(paper_antenna_count(Environment::kStadium), 451u);
  EXPECT_EQ(paper_antenna_count(Environment::kExpo), 230u);
  EXPECT_EQ(paper_antenna_count(Environment::kHotel), 28u);
  EXPECT_EQ(paper_antenna_count(Environment::kHospital), 53u);
  EXPECT_EQ(paper_antenna_count(Environment::kTunnel), 220u);
  EXPECT_EQ(paper_antenna_count(Environment::kPublicBuilding), 122u);
}

TEST(EnvironmentTest, TotalIs4762) {
  // "4,762 ICN antennas installed at more than 1,000 sites".
  EXPECT_EQ(paper_total_antennas(), 4762u);
}

TEST(NameClassifierTest, RecognizesFrenchKeywords) {
  EXPECT_EQ(classify_environment_from_name("IDF_METRO_CHATELET_A1"),
            Environment::kMetro);
  EXPECT_EQ(classify_environment_from_name("PARIS_GARE_DU_NORD_A2"),
            Environment::kTrain);
  EXPECT_EQ(classify_environment_from_name("CDG_TERMINAL_2E_A7"),
            Environment::kAirport);
  EXPECT_EQ(classify_environment_from_name("LYON_BUREAU_AXA_A1"),
            Environment::kWorkspace);
  EXPECT_EQ(classify_environment_from_name("LILLE_CENTRE_CIAL_A3"),
            Environment::kCommercial);
  EXPECT_EQ(classify_environment_from_name("STADE_DE_FRANCE_A11"),
            Environment::kStadium);
  EXPECT_EQ(classify_environment_from_name("EUREXPO_LYON_HALL2"),
            Environment::kExpo);
  EXPECT_EQ(classify_environment_from_name("HOTEL_RIVOLI_A1"),
            Environment::kHotel);
  EXPECT_EQ(classify_environment_from_name("CHU_RENNES_A1"),
            Environment::kHospital);
  EXPECT_EQ(classify_environment_from_name("TUNNEL_FOURVIERE_A2"),
            Environment::kTunnel);
  EXPECT_EQ(classify_environment_from_name("UNIVERSITE_PARIS_SACLAY_A4"),
            Environment::kPublicBuilding);
}

TEST(NameClassifierTest, CaseInsensitive) {
  EXPECT_EQ(classify_environment_from_name("paris_metro_bastille"),
            Environment::kMetro);
  EXPECT_EQ(classify_environment_from_name("Stade de France"),
            Environment::kStadium);
}

TEST(NameClassifierTest, RerIsMetro) {
  EXPECT_EQ(classify_environment_from_name("RER_A_LA_DEFENSE"),
            Environment::kMetro);
}

TEST(NameClassifierTest, UnknownReturnsNullopt) {
  EXPECT_EQ(classify_environment_from_name("SOMETHING_ELSE"), std::nullopt);
  EXPECT_EQ(classify_environment_from_name(""), std::nullopt);
}

}  // namespace
}  // namespace icn::net
