#include "net/city.h"

#include <gtest/gtest.h>

#include <set>

namespace icn::net {
namespace {

TEST(CityTest, SixCityClasses) {
  EXPECT_EQ(kNumCities, 6u);
  std::set<City> distinct(all_cities().begin(), all_cities().end());
  EXPECT_EQ(distinct.size(), 6u);
}

TEST(CityTest, ParisDetection) {
  EXPECT_TRUE(is_paris(City::kParis));
  EXPECT_FALSE(is_paris(City::kLyon));
  EXPECT_FALSE(is_paris(City::kOther));
}

TEST(CityTest, ProvincialMetroCities) {
  // The paper's cluster 7 = Lille, Lyon, Rennes, Toulouse metros.
  EXPECT_TRUE(has_provincial_metro(City::kLille));
  EXPECT_TRUE(has_provincial_metro(City::kLyon));
  EXPECT_TRUE(has_provincial_metro(City::kRennes));
  EXPECT_TRUE(has_provincial_metro(City::kToulouse));
  EXPECT_FALSE(has_provincial_metro(City::kParis));
  EXPECT_FALSE(has_provincial_metro(City::kOther));
}

TEST(CityTest, NamesAreDistinct) {
  std::set<std::string> names;
  for (const City c : all_cities()) names.insert(city_name(c));
  EXPECT_EQ(names.size(), 6u);
}

TEST(CityTest, CentersAreInFrance) {
  for (const City c : all_cities()) {
    const GeoPoint p = city_center(c);
    EXPECT_GT(p.lat_deg, 41.0);
    EXPECT_LT(p.lat_deg, 52.0);
    EXPECT_GT(p.lon_deg, -6.0);
    EXPECT_LT(p.lon_deg, 9.0);
  }
}

TEST(GeoTest, DistanceKnownPairs) {
  // Paris -> Lyon is ~392 km great-circle.
  const double d = distance_km(city_center(City::kParis),
                               city_center(City::kLyon));
  EXPECT_NEAR(d, 392.0, 15.0);
  EXPECT_NEAR(distance_km(city_center(City::kParis),
                          city_center(City::kParis)),
              0.0, 1e-9);
}

TEST(GeoTest, DistanceIsSymmetric) {
  const GeoPoint a = city_center(City::kLille);
  const GeoPoint b = city_center(City::kToulouse);
  EXPECT_DOUBLE_EQ(distance_km(a, b), distance_km(b, a));
}

TEST(GeoTest, OneDegreeLatitudeIs111Km) {
  const GeoPoint a{48.0, 2.0};
  const GeoPoint b{49.0, 2.0};
  EXPECT_NEAR(distance_km(a, b), 111.2, 0.5);
}

}  // namespace
}  // namespace icn::net
