#include "net/topology.h"

#include <gtest/gtest.h>

#include <set>

#include "util/error.h"

namespace icn::net {
namespace {

Topology small_topology(std::uint64_t seed = 1) {
  TopologyParams params;
  params.seed = seed;
  params.scale = 0.1;
  return Topology::generate(params);
}

TEST(TopologyTest, FullScaleMatchesTable1) {
  TopologyParams params;
  params.scale = 1.0;
  params.outdoor_ratio = 4.62;
  const Topology topo = Topology::generate(params);
  EXPECT_EQ(topo.indoor().size(), 4762u);
  for (const Environment e : all_environments()) {
    EXPECT_EQ(topo.environment_count(e), paper_antenna_count(e))
        << environment_name(e);
  }
  // ">1,000 indoor locations" and "~22,000 outdoor antennas".
  EXPECT_GT(topo.sites().size(), 1000u);
  EXPECT_NEAR(static_cast<double>(topo.outdoor().size()), 22000.0, 2500.0);
}

TEST(TopologyTest, DeterministicForSeed) {
  const Topology a = small_topology(5);
  const Topology b = small_topology(5);
  ASSERT_EQ(a.indoor().size(), b.indoor().size());
  for (std::size_t i = 0; i < a.indoor().size(); ++i) {
    EXPECT_EQ(a.indoor()[i].name, b.indoor()[i].name);
    EXPECT_EQ(a.indoor()[i].city, b.indoor()[i].city);
    EXPECT_DOUBLE_EQ(a.indoor()[i].location.lat_deg,
                     b.indoor()[i].location.lat_deg);
  }
}

TEST(TopologyTest, SeedChangesLayout) {
  const Topology a = small_topology(1);
  const Topology b = small_topology(2);
  bool differs = a.indoor().size() != b.indoor().size();
  for (std::size_t i = 0; !differs && i < a.indoor().size(); ++i) {
    differs = a.indoor()[i].location.lat_deg !=
              b.indoor()[i].location.lat_deg;
  }
  EXPECT_TRUE(differs);
}

TEST(TopologyTest, IdsAreDenseAndUnique) {
  const Topology topo = small_topology();
  std::set<std::uint32_t> ids;
  for (const auto& a : topo.indoor()) ids.insert(a.id);
  EXPECT_EQ(ids.size(), topo.indoor().size());
  EXPECT_EQ(*ids.begin(), 0u);
  EXPECT_EQ(*ids.rbegin(), topo.indoor().size() - 1);
  // Outdoor ids continue after indoor ids.
  for (const auto& a : topo.outdoor()) {
    EXPECT_GE(a.id, topo.indoor().size());
    EXPECT_FALSE(a.indoor);
  }
}

TEST(TopologyTest, EveryEnvironmentRepresentedAtAnyScale) {
  TopologyParams params;
  params.scale = 0.001;  // would floor to zero without the min-1 rule
  const Topology topo = Topology::generate(params);
  for (const Environment e : all_environments()) {
    EXPECT_GE(topo.environment_count(e), 1u) << environment_name(e);
  }
}

TEST(TopologyTest, NamesClassifyBackToEnvironment) {
  // The synthetic names must be recoverable by the Sec. 5.2.1 keyword
  // classifier — that's how the paper derived Table 1 in the first place.
  const Topology topo = small_topology();
  for (const auto& a : topo.indoor()) {
    const auto env = classify_environment_from_name(a.name);
    ASSERT_TRUE(env.has_value()) << a.name;
    EXPECT_EQ(*env, a.environment) << a.name;
  }
}

TEST(TopologyTest, SitesOwnTheirAntennas) {
  const Topology topo = small_topology();
  std::size_t covered = 0;
  for (const auto& site : topo.sites()) {
    for (const std::uint32_t id : site.antenna_ids) {
      ASSERT_LT(id, topo.indoor().size());
      EXPECT_EQ(topo.indoor()[id].site_id, site.id);
      EXPECT_EQ(topo.indoor()[id].environment, site.environment);
      EXPECT_EQ(topo.indoor()[id].city, site.city);
      ++covered;
    }
  }
  EXPECT_EQ(covered, topo.indoor().size());
}

TEST(TopologyTest, MetroOnlyInMetroCities) {
  const Topology topo = Topology::generate(TopologyParams{.seed = 3,
                                                          .scale = 0.5});
  for (const auto& a : topo.indoor()) {
    if (a.environment == Environment::kMetro) {
      EXPECT_TRUE(is_paris(a.city) || has_provincial_metro(a.city))
          << a.name;
    }
  }
}

TEST(TopologyTest, MetroIsMostlyParisian) {
  const Topology topo = Topology::generate(TopologyParams{.seed = 7,
                                                          .scale = 1.0});
  std::size_t paris = 0, total = 0;
  for (const auto& a : topo.indoor()) {
    if (a.environment != Environment::kMetro) continue;
    ++total;
    if (is_paris(a.city)) ++paris;
  }
  const double share = static_cast<double>(paris) /
                       static_cast<double>(total);
  EXPECT_GT(share, 0.68);
  EXPECT_LT(share, 0.82);
}

TEST(TopologyTest, OutdoorAntennasNearTheirSite) {
  const Topology topo = small_topology();
  for (const auto& a : topo.outdoor()) {
    ASSERT_LT(a.site_id, topo.sites().size());
    const auto& site = topo.sites()[a.site_id];
    // ~1 km radius (allow tail of the Gaussian placement).
    EXPECT_LT(distance_km(
                  GeoPoint{a.location.lat_deg, a.location.lon_deg},
                  GeoPoint{site.location.lat_deg, site.location.lon_deg}),
              3.0);
  }
}

TEST(TopologyTest, OutdoorRatioRespected) {
  TopologyParams params;
  params.scale = 0.5;
  params.outdoor_ratio = 2.0;
  const Topology topo = Topology::generate(params);
  const double ratio = static_cast<double>(topo.outdoor().size()) /
                       static_cast<double>(topo.indoor().size());
  EXPECT_NEAR(ratio, 2.0, 0.25);
}

TEST(TopologyTest, ZeroOutdoorRatioMeansNoOutdoor) {
  TopologyParams params;
  params.scale = 0.05;
  params.outdoor_ratio = 0.0;
  const Topology topo = Topology::generate(params);
  EXPECT_TRUE(topo.outdoor().empty());
}

TEST(TopologyTest, RejectsBadParams) {
  TopologyParams params;
  params.scale = 0.0;
  EXPECT_THROW(Topology::generate(params), icn::util::PreconditionError);
  params.scale = 1.0;
  params.outdoor_ratio = -1.0;
  EXPECT_THROW(Topology::generate(params), icn::util::PreconditionError);
}

TEST(TopologyTest, RadioTechSplitMatchesNsaRollout) {
  // Sec. 3: 5G NSA with scarce indoor NR; early NR coverage is outside-in.
  TopologyParams params;
  params.scale = 1.0;
  params.outdoor_ratio = 2.0;
  const Topology topo = Topology::generate(params);
  const double indoor_nr =
      static_cast<double>(topo.nr_count(true)) /
      static_cast<double>(topo.indoor().size());
  const double outdoor_nr =
      static_cast<double>(topo.nr_count(false)) /
      static_cast<double>(topo.outdoor().size());
  EXPECT_NEAR(indoor_nr, 0.04, 0.015);
  EXPECT_NEAR(outdoor_nr, 0.25, 0.03);
  EXPECT_GT(outdoor_nr, indoor_nr * 3.0);
}

TEST(TopologyTest, RadioTechNames) {
  EXPECT_STREQ(radio_tech_name(RadioTech::kLte), "4G LTE");
  EXPECT_STREQ(radio_tech_name(RadioTech::kNr), "5G NR (NSA)");
}

TEST(TopologyTest, RadioTechFractionValidated) {
  TopologyParams params;
  params.scale = 0.01;
  params.indoor_nr_fraction = 1.5;
  EXPECT_THROW(Topology::generate(params), icn::util::PreconditionError);
  params.indoor_nr_fraction = 0.04;
  params.outdoor_nr_fraction = -0.1;
  EXPECT_THROW(Topology::generate(params), icn::util::PreconditionError);
}

TEST(TopologyTest, AntennasOfEnvironmentSelector) {
  const Topology topo = small_topology();
  const auto metros = topo.antennas_of_environment(Environment::kMetro);
  EXPECT_EQ(metros.size(), topo.environment_count(Environment::kMetro));
  for (const std::size_t i : metros) {
    EXPECT_EQ(topo.indoor()[i].environment, Environment::kMetro);
  }
}

}  // namespace
}  // namespace icn::net
