#include "traffic/temporal.h"

#include <gtest/gtest.h>

#include <cmath>
#include <optional>

#include "util/calendar.h"
#include "util/error.h"
#include "util/stats.h"

namespace icn::traffic {
namespace {

using icn::util::Date;
using icn::util::Weekday;

class TemporalModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net::TopologyParams topo_params;
    topo_params.seed = 21;
    topo_params.scale = 0.15;
    topo_params.outdoor_ratio = 0.0;
    topology_ = net::Topology::generate(topo_params);
    demand_ = std::make_unique<DemandModel>(topology_, archetypes_,
                                            DemandParams{});
  }

  TemporalModel make(double noise_shape = 0.0) const {
    TemporalParams params;
    params.noise_shape = noise_shape;  // most tests want noise-free curves
    return TemporalModel(*demand_, params);
  }

  /// First indoor antenna with the given archetype (and optional env/city).
  std::optional<std::size_t> find_antenna(
      int archetype,
      std::optional<net::Environment> env = std::nullopt,
      std::optional<net::City> city = std::nullopt) const {
    for (std::size_t i = 0; i < topology_.indoor().size(); ++i) {
      if (demand_->archetype_labels()[i] != archetype) continue;
      if (env && topology_.indoor()[i].environment != *env) continue;
      if (city && topology_.indoor()[i].city != *city) continue;
      return i;
    }
    return std::nullopt;
  }

  ServiceCatalog catalog_;
  ArchetypeModel archetypes_{catalog_};
  net::Topology topology_;
  std::unique_ptr<DemandModel> demand_;
};

TEST_F(TemporalModelTest, PeriodIsTheStudyWindow) {
  const TemporalModel temporal = make();
  EXPECT_EQ(temporal.period().num_days(), 65);
  EXPECT_EQ(temporal.period().first(), (Date{2022, 11, 21}));
}

TEST_F(TemporalModelTest, ServiceSeriesSumsToMatrixEntry) {
  const TemporalModel temporal = make(25.0);  // with noise, still exact
  for (const std::size_t antenna : {0u, 5u, 17u}) {
    for (const std::size_t service : {0u, 11u, 38u}) {
      const auto series = temporal.hourly_service_series(antenna, service);
      EXPECT_EQ(series.size(),
                static_cast<std::size_t>(temporal.period().num_hours()));
      const double total = icn::util::sum(series);
      EXPECT_NEAR(total, demand_->traffic_matrix()(antenna, service),
                  1e-6 * std::max(1.0, total));
    }
  }
}

TEST_F(TemporalModelTest, TotalSeriesSumsToAntennaVolume) {
  const TemporalModel temporal = make(25.0);
  for (const std::size_t antenna : {1u, 9u}) {
    const auto series = temporal.hourly_total_series(antenna);
    const double total = icn::util::sum(series);
    EXPECT_NEAR(total, demand_->profiles()[antenna].total_mb,
                1e-6 * total);
  }
}

TEST_F(TemporalModelTest, SeriesAreNonNegativeAndDeterministic) {
  const TemporalModel a = make(25.0);
  const TemporalModel b = make(25.0);
  const auto sa = a.hourly_total_series(3);
  const auto sb = b.hourly_total_series(3);
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t t = 0; t < sa.size(); ++t) {
    EXPECT_GE(sa[t], 0.0);
    EXPECT_DOUBLE_EQ(sa[t], sb[t]);
  }
}

TEST_F(TemporalModelTest, CommuterClustersPeakAtCommuteHours) {
  const auto antenna = find_antenna(0);
  ASSERT_TRUE(antenna.has_value());
  const TemporalModel temporal = make();
  const auto series = temporal.hourly_total_series(*antenna);
  // Tuesday 22 Nov 2022 = day 1.
  const std::size_t day = 1 * 24;
  const double morning = series[day + 8];   // 8h-9h
  const double evening = series[day + 18];  // 18h-19h
  const double midday = series[day + 13];
  const double night = series[day + 3];
  EXPECT_GT(morning, midday * 2.0);
  EXPECT_GT(evening, midday * 2.0);
  EXPECT_GT(midday, night);
}

TEST_F(TemporalModelTest, CommuterWeekendsAreQuiet) {
  const auto antenna = find_antenna(4);
  ASSERT_TRUE(antenna.has_value());
  const TemporalModel temporal = make();
  const auto series = temporal.hourly_total_series(*antenna);
  // Saturday 26 Nov 2022 = day 5; compare with Friday day 4 at 8h.
  EXPECT_GT(series[4 * 24 + 8], series[5 * 24 + 8] * 3.0);
}

TEST_F(TemporalModelTest, StrikeDayCollapsesParisCommuterTraffic) {
  const auto antenna = find_antenna(0);
  ASSERT_TRUE(antenna.has_value());
  const TemporalModel temporal = make();
  const auto series = temporal.hourly_total_series(*antenna);
  const auto strike_day_idx =
      temporal.period().index_of(icn::util::strike_day());
  // 19 Jan 2023 (Thursday) vs the previous Thursday, 12 Jan.
  const double strike_peak = series[strike_day_idx * 24 + 8];
  const double normal_peak = series[(strike_day_idx - 7) * 24 + 8];
  EXPECT_LT(strike_peak, normal_peak * 0.2);
}

TEST_F(TemporalModelTest, StrikeIsMilderForProvincialMetros) {
  const auto paris = find_antenna(0);
  const auto provincial = find_antenna(7);
  ASSERT_TRUE(paris.has_value());
  ASSERT_TRUE(provincial.has_value());
  const auto strike = icn::util::strike_day();
  const bool strike_flag = true;
  // Compare the day-shape attenuation directly (same weekday, same hour).
  const double paris_ratio =
      TemporalModel::day_shape(0, strike.weekday(), strike_flag, 8.5) /
      TemporalModel::day_shape(0, strike.weekday(), false, 8.5);
  const double prov_ratio =
      TemporalModel::day_shape(7, strike.weekday(), strike_flag, 8.5) /
      TemporalModel::day_shape(7, strike.weekday(), false, 8.5);
  EXPECT_LT(paris_ratio, 0.15);
  EXPECT_GT(prov_ratio, 0.35);
}

TEST_F(TemporalModelTest, WorkspacesIdleOnWeekendsAndEvenings) {
  const double weekday = TemporalModel::day_shape(3, Weekday::kTuesday,
                                                  false, 11.0);
  const double evening = TemporalModel::day_shape(3, Weekday::kTuesday,
                                                  false, 21.0);
  const double weekend = TemporalModel::day_shape(3, Weekday::kSaturday,
                                                  false, 11.0);
  EXPECT_GT(weekday, evening * 5.0);
  EXPECT_GT(weekday, weekend * 5.0);
}

TEST_F(TemporalModelTest, RetailHasSundayDipAndNightFloor) {
  const double saturday = TemporalModel::day_shape(2, Weekday::kSaturday,
                                                   false, 15.0);
  const double sunday = TemporalModel::day_shape(2, Weekday::kSunday,
                                                 false, 15.0);
  EXPECT_NEAR(sunday / saturday, 0.75, 0.02);
  // Cluster 2's night floor beats cluster 1's (hotels, hospitals).
  const double night2 = TemporalModel::day_shape(2, Weekday::kTuesday,
                                                 false, 3.0);
  const double night1 = TemporalModel::day_shape(1, Weekday::kTuesday,
                                                 false, 3.0);
  EXPECT_GT(night2, night1 * 1.5);
}

TEST_F(TemporalModelTest, ParisArenasHostTheNbaGame) {
  // Any green-archetype Paris stadium antenna receives the NBA event.
  auto antenna =
      find_antenna(8, net::Environment::kStadium, net::City::kParis);
  if (!antenna) {
    antenna = find_antenna(6, net::Environment::kStadium, net::City::kParis);
  }
  if (!antenna) {
    antenna = find_antenna(5, net::Environment::kStadium, net::City::kParis);
  }
  ASSERT_TRUE(antenna.has_value());
  const TemporalModel temporal = make();
  const auto events = temporal.site_events(*antenna);
  bool has_nba = false;
  const auto nba_day = temporal.period().index_of(Date{2023, 1, 19});
  for (const auto& ev : events) {
    if (ev.label == "NBA Paris Game") {
      has_nba = true;
      EXPECT_EQ(ev.day, nba_day);
      EXPECT_GE(ev.boost, 10.0);
    }
  }
  EXPECT_TRUE(has_nba);
}

TEST_F(TemporalModelTest, LyonExpoHostsSirha) {
  const auto antenna =
      find_antenna(5, net::Environment::kExpo, net::City::kLyon);
  if (!antenna.has_value()) {
    GTEST_SKIP() << "no Lyon expo antenna in this reduced topology";
  }
  const TemporalModel temporal = make();
  const auto events = temporal.site_events(*antenna);
  std::size_t sirha_days = 0;
  for (const auto& ev : events) {
    if (ev.label == "Sirha Lyon") ++sirha_days;
  }
  // 19-24 Jan inclusive.
  EXPECT_EQ(sirha_days, 6u);
}

TEST_F(TemporalModelTest, NonVenueAntennasHaveNoEvents) {
  const auto antenna = find_antenna(3, net::Environment::kWorkspace);
  ASSERT_TRUE(antenna.has_value());
  const TemporalModel temporal = make();
  EXPECT_TRUE(temporal.site_events(*antenna).empty());
}

TEST_F(TemporalModelTest, EventsBoostVenueTraffic) {
  const auto antenna =
      find_antenna(6, net::Environment::kStadium);
  ASSERT_TRUE(antenna.has_value());
  const TemporalModel temporal = make();
  const auto events = temporal.site_events(*antenna);
  ASSERT_FALSE(events.empty());
  const auto series = temporal.hourly_total_series(*antenna);
  const auto& ev = events.front();
  const std::size_t event_hour = static_cast<std::size_t>(
      ev.day * 24 + static_cast<std::int64_t>(ev.start_hour) + 1);
  // Compare with the same hour one day earlier (no event scheduled then
  // unless extraordinarily unlucky with the synthetic calendar).
  const std::size_t quiet_hour = event_hour - 24;
  EXPECT_GT(series[event_hour], series[quiet_hour] * 3.0);
}

TEST_F(TemporalModelTest, WazeSurgesAfterTheEventNotDuring) {
  const auto antenna = find_antenna(6, net::Environment::kStadium);
  ASSERT_TRUE(antenna.has_value());
  const TemporalModel temporal = make();
  const auto events = temporal.site_events(*antenna);
  ASSERT_FALSE(events.empty());
  const auto waze = *catalog_.index_of("Waze");
  const auto snapchat = *catalog_.index_of("Snapchat");
  const auto waze_series = temporal.hourly_service_series(*antenna, waze);
  const auto snap_series =
      temporal.hourly_service_series(*antenna, snapchat);
  const auto& ev = events.front();
  const auto during = static_cast<std::size_t>(
      ev.day * 24 + static_cast<std::int64_t>(ev.start_hour) + 1);
  const auto after = static_cast<std::size_t>(
      ev.day * 24 + static_cast<std::int64_t>(ev.end_hour) + 1);
  // Snapchat peaks during the event; Waze peaks after it (Sec. 6.0.2).
  EXPECT_GT(snap_series[during], snap_series[after]);
  EXPECT_GT(waze_series[after], waze_series[during]);
}

TEST_F(TemporalModelTest, ProfileShapesPeakWhereExpected) {
  using enum DiurnalProfile;
  const auto wd = Weekday::kWednesday;
  // Commute: 8:30 over 13:00.
  EXPECT_GT(TemporalModel::profile_shape(kCommute, wd, 8.5),
            TemporalModel::profile_shape(kCommute, wd, 13.0) * 2.0);
  // Work hours: 11:00 over 21:00.
  EXPECT_GT(TemporalModel::profile_shape(kWorkHours, wd, 11.0),
            TemporalModel::profile_shape(kWorkHours, wd, 21.0) * 3.0);
  // Evening: 20:30 over 9:00.
  EXPECT_GT(TemporalModel::profile_shape(kEvening, wd, 20.5),
            TemporalModel::profile_shape(kEvening, wd, 9.0) * 2.0);
  // Night profile is alive at 1:00.
  EXPECT_GT(TemporalModel::profile_shape(kNight, wd, 1.0),
            TemporalModel::profile_shape(kNight, wd, 10.0));
  // Flat is flat.
  EXPECT_DOUBLE_EQ(TemporalModel::profile_shape(kFlat, wd, 3.0),
                   TemporalModel::profile_shape(kFlat, wd, 15.0));
  // Morning beats evening for the morning profile.
  EXPECT_GT(TemporalModel::profile_shape(kMorning, wd, 8.0),
            TemporalModel::profile_shape(kMorning, wd, 20.0));
}

TEST_F(TemporalModelTest, EventParticipationByCategory) {
  using enum ServiceCategory;
  // Crowd-driven categories surge fully; long-form media barely moves
  // (Fig. 11d: Netflix stays under-utilized in venues even at event peaks).
  EXPECT_DOUBLE_EQ(TemporalModel::event_participation(kSocial), 1.0);
  EXPECT_DOUBLE_EQ(TemporalModel::event_participation(kSports), 1.0);
  EXPECT_LT(TemporalModel::event_participation(kVideoStreaming), 0.2);
  EXPECT_LT(TemporalModel::event_participation(kMusic), 0.2);
  for (std::size_t c = 0; c < kNumServiceCategories; ++c) {
    const double p =
        TemporalModel::event_participation(static_cast<ServiceCategory>(c));
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST_F(TemporalModelTest, NetflixDoesNotBurstDuringEvents) {
  const auto antenna = find_antenna(6, net::Environment::kStadium);
  ASSERT_TRUE(antenna.has_value());
  const TemporalModel temporal = make();
  const auto events = temporal.site_events(*antenna);
  ASSERT_FALSE(events.empty());
  const auto netflix = *catalog_.index_of("Netflix");
  const auto snapchat = *catalog_.index_of("Snapchat");
  const auto nf = temporal.hourly_service_series(*antenna, netflix);
  const auto snap = temporal.hourly_service_series(*antenna, snapchat);
  const auto& ev = events.front();
  const auto during = static_cast<std::size_t>(
      ev.day * 24 + static_cast<std::int64_t>(ev.start_hour) + 1);
  const std::size_t quiet = during - 24;
  // Snapchat surges hard; Netflix's event-hour lift is far smaller.
  const double snap_lift = snap[during] / std::max(snap[quiet], 1e-12);
  const double nf_lift = nf[during] / std::max(nf[quiet], 1e-12);
  EXPECT_GT(snap_lift, nf_lift * 2.5);
}

TEST_F(TemporalModelTest, ServiceSeriesSumToTotalSeries) {
  // The per-service hourly series partition the antenna's total series.
  const TemporalModel temporal = make(25.0);
  const std::size_t antenna = 4;
  const auto total = temporal.hourly_total_series(antenna);
  std::vector<double> acc(total.size(), 0.0);
  for (std::size_t j = 0; j < catalog_.size(); ++j) {
    const auto series = temporal.hourly_service_series(antenna, j);
    for (std::size_t t = 0; t < acc.size(); ++t) acc[t] += series[t];
  }
  for (std::size_t t = 0; t < acc.size(); t += 37) {
    EXPECT_NEAR(acc[t], total[t], 1e-9 * std::max(1.0, total[t]))
        << "hour " << t;
  }
}

TEST_F(TemporalModelTest, DayShapeValidatesArchetype) {
  EXPECT_THROW((void)TemporalModel::day_shape(9, Weekday::kMonday, false, 8.0),
               icn::util::PreconditionError);
}

TEST_F(TemporalModelTest, NoiseShapeValidation) {
  TemporalParams params;
  params.noise_shape = -1.0;
  EXPECT_THROW(TemporalModel(*demand_, params),
               icn::util::PreconditionError);
}

}  // namespace
}  // namespace icn::traffic
