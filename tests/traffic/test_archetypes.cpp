#include "traffic/archetypes.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.h"

namespace icn::traffic {
namespace {

class ArchetypeModelTest : public ::testing::Test {
 protected:
  ServiceCatalog catalog_;
  ArchetypeModel model_{catalog_};

  double mult(int archetype, const char* service) const {
    return model_.multipliers(archetype)[*catalog_.index_of(service)];
  }
  double share(int archetype, const char* service) const {
    return model_.expected_shares(archetype)[*catalog_.index_of(service)];
  }
};

TEST_F(ArchetypeModelTest, NineArchetypesWithGroups) {
  EXPECT_EQ(kNumArchetypes, 9u);
  // Paper groups: orange {0,4,7}, green {5,6,8}, red {1,2,3}.
  EXPECT_EQ(archetype_group(0), ClusterGroup::kOrange);
  EXPECT_EQ(archetype_group(4), ClusterGroup::kOrange);
  EXPECT_EQ(archetype_group(7), ClusterGroup::kOrange);
  EXPECT_EQ(archetype_group(5), ClusterGroup::kGreen);
  EXPECT_EQ(archetype_group(6), ClusterGroup::kGreen);
  EXPECT_EQ(archetype_group(8), ClusterGroup::kGreen);
  EXPECT_EQ(archetype_group(1), ClusterGroup::kRed);
  EXPECT_EQ(archetype_group(2), ClusterGroup::kRed);
  EXPECT_EQ(archetype_group(3), ClusterGroup::kRed);
}

TEST_F(ArchetypeModelTest, GroupNames) {
  EXPECT_STREQ(group_name(ClusterGroup::kOrange), "orange");
  EXPECT_STREQ(group_name(ClusterGroup::kGreen), "green");
  EXPECT_STREQ(group_name(ClusterGroup::kRed), "red");
}

TEST_F(ArchetypeModelTest, InfoValidatesId) {
  EXPECT_THROW(archetype_info(-1), icn::util::PreconditionError);
  EXPECT_THROW(archetype_info(9), icn::util::PreconditionError);
  EXPECT_EQ(archetype_info(3).id, 3);
}

TEST_F(ArchetypeModelTest, ExpectedSharesAreDistributions) {
  for (int a = 0; a < 9; ++a) {
    double total = 0.0;
    for (const double s : model_.expected_shares(a)) {
      EXPECT_GT(s, 0.0);
      total += s;
    }
    EXPECT_NEAR(total, 1.0, 1e-12) << "archetype " << a;
  }
}

TEST_F(ArchetypeModelTest, OrangeGroupOverUsesMusic) {
  // Sec. 5.1.2: "antennas of the orange group share in common that they
  // over-utilize applications related to music".
  for (const int a : {0, 4, 7}) {
    EXPECT_GT(mult(a, "Spotify"), 2.0) << "archetype " << a;
    EXPECT_GT(mult(a, "Deezer"), 2.0) << "archetype " << a;
  }
}

TEST_F(ArchetypeModelTest, Cluster7UnderUsesNavigationHelpers) {
  // "cluster 7 ... characterized by under-utilization of these
  // [navigation] applications" relative to 0 and 4.
  EXPECT_LT(mult(7, "Mappy"), 0.6);
  EXPECT_LT(mult(7, "Transportation Websites"), 0.6);
  EXPECT_GT(mult(0, "Mappy"), 2.0);
  EXPECT_GT(mult(4, "Transportation Websites"), 2.0);
}

TEST_F(ArchetypeModelTest, Cluster4LacksEntertainment) {
  // "unlike cluster 0, the utilization of entertainment services is scarce
  // in cluster 4, e.g. Yahoo and entertainment ... websites".
  EXPECT_LT(mult(4, "Yahoo"), 0.5);
  EXPECT_LT(mult(4, "Entertainment Websites"), 0.5);
  EXPECT_GT(mult(0, "Yahoo"), 1.5);
  EXPECT_GT(mult(0, "Entertainment Websites"), 1.5);
}

TEST_F(ArchetypeModelTest, GreenClustersShareSocialSportsSignature) {
  // Clusters 6 and 8 over-use Snapchat, Twitter and sports websites.
  for (const int a : {6, 8}) {
    EXPECT_GT(mult(a, "Snapchat"), 2.0) << a;
    EXPECT_GT(mult(a, "Twitter"), 2.0) << a;
    EXPECT_GT(mult(a, "Sports Websites"), 2.0) << a;
  }
}

TEST_F(ArchetypeModelTest, Cluster8MoreDiverseThanCluster6) {
  // "services such as Giphy, WhatsApp, and streaming such as Canal+ are
  // absent in cluster 6" but present in 8.
  EXPECT_GT(mult(8, "Giphy"), 2.0);
  EXPECT_LT(mult(6, "Giphy"), 0.6);
  EXPECT_GT(mult(8, "WhatsApp"), 1.5);
  EXPECT_LT(mult(6, "WhatsApp"), 1.0);
  EXPECT_GT(mult(8, "Canal+"), 1.3);
  EXPECT_LT(mult(6, "Canal+"), 0.5);
}

TEST_F(ArchetypeModelTest, Cluster5FlattensTheMix) {
  // Archetype 5 pushes every service towards an equal share: its expected
  // share vector must be much flatter than the raw popularity.
  const auto& pop = catalog_.popularity_shares();
  double pop_max = 0.0, a5_max = 0.0;
  for (std::size_t j = 0; j < catalog_.size(); ++j) {
    pop_max = std::max(pop_max, pop[j]);
    a5_max = std::max(a5_max, model_.expected_shares(5)[j]);
  }
  EXPECT_LT(a5_max, pop_max * 0.55);
}

TEST_F(ArchetypeModelTest, RedGroupSignatures) {
  // Cluster 1: streaming + Waze + mail; cluster 2: Play Store + shopping;
  // cluster 3: Teams, LinkedIn, mail.
  EXPECT_GT(mult(1, "Netflix"), 1.5);
  EXPECT_GT(mult(1, "Waze"), 2.0);
  EXPECT_GT(mult(2, "Google Play Store"), 2.0);
  EXPECT_GT(mult(2, "Shopping Websites"), 2.0);
  EXPECT_GT(mult(3, "Microsoft Teams"), 3.0);
  EXPECT_GT(mult(3, "LinkedIn"), 3.0);
  EXPECT_GT(mult(3, "Gmail"), 2.0);
}

TEST_F(ArchetypeModelTest, RedGroupUnderUsesCommuterServices) {
  // "clusters 1, 2, and 3 demonstrate minor utilization of music and
  // navigation-related applications".
  for (const int a : {1, 2, 3}) {
    EXPECT_LT(mult(a, "Spotify"), 0.8) << a;
    EXPECT_LT(mult(a, "Mappy"), 0.8) << a;
  }
}

TEST_F(ArchetypeModelTest, MultipliersValidateArchetypeId) {
  EXPECT_THROW(model_.multipliers(9), icn::util::PreconditionError);
  EXPECT_THROW(model_.expected_shares(-1), icn::util::PreconditionError);
}

// --- archetype_mix -------------------------------------------------------

TEST(ArchetypeMixTest, AllMixesAreDistributions) {
  for (const net::Environment e : net::all_environments()) {
    for (const net::City c : net::all_cities()) {
      const auto mix = ArchetypeModel::archetype_mix(e, c);
      double total = 0.0;
      for (const double w : mix) {
        EXPECT_GE(w, 0.0);
        total += w;
      }
      EXPECT_NEAR(total, 1.0, 1e-9)
          << net::environment_name(e) << "/" << net::city_name(c);
    }
  }
}

TEST(ArchetypeMixTest, MetroAndTrainAreOrangeOnlyPlusLeakage) {
  // Fig. 7a: the orange group comprises solely metro and train stations;
  // conversely metros flow overwhelmingly into orange archetypes.
  const auto paris_metro = ArchetypeModel::archetype_mix(
      net::Environment::kMetro, net::City::kParis);
  EXPECT_GT(paris_metro[0] + paris_metro[4], 0.9);
  const auto lyon_metro = ArchetypeModel::archetype_mix(
      net::Environment::kMetro, net::City::kLyon);
  EXPECT_GT(lyon_metro[7], 0.9);
  EXPECT_DOUBLE_EQ(lyon_metro[0], 0.0);
}

TEST(ArchetypeMixTest, ProvincialMetroNeverInParisClusters) {
  const auto mix = ArchetypeModel::archetype_mix(net::Environment::kMetro,
                                                 net::City::kToulouse);
  EXPECT_DOUBLE_EQ(mix[0], 0.0);
  EXPECT_DOUBLE_EQ(mix[4], 0.0);
}

TEST(ArchetypeMixTest, WorkspacesFlowToCluster3) {
  // Fig. 8c: workplaces mostly in cluster 3 (>70% of cluster 3 is
  // workspaces), ~5% in cluster 5.
  const auto mix = ArchetypeModel::archetype_mix(
      net::Environment::kWorkspace, net::City::kParis);
  EXPECT_NEAR(mix[3], 0.70, 0.05);
  EXPECT_NEAR(mix[5], 0.06, 0.03);
}

TEST(ArchetypeMixTest, AirportsAndTunnelsAreGeneralUse) {
  // Fig. 8a: cluster 1 contains almost all airport and tunnel antennas.
  const auto airport = ArchetypeModel::archetype_mix(
      net::Environment::kAirport, net::City::kOther);
  EXPECT_GT(airport[1], 0.85);
  const auto tunnel = ArchetypeModel::archetype_mix(
      net::Environment::kTunnel, net::City::kOther);
  EXPECT_GT(tunnel[1], 0.85);
}

TEST(ArchetypeMixTest, HospitalsAndHotelsFlowToCluster2) {
  // Fig. 8b: cluster 2 hosts most hotels/public buildings and almost all
  // hospitals.
  const auto hospital = ArchetypeModel::archetype_mix(
      net::Environment::kHospital, net::City::kOther);
  EXPECT_GT(hospital[2], 0.85);
  const auto hotel = ArchetypeModel::archetype_mix(net::Environment::kHotel,
                                                   net::City::kParis);
  EXPECT_GT(hotel[2], 0.6);
}

TEST(ArchetypeMixTest, StadiumSplitDependsOnCity) {
  // Cluster 6 = provincial stadiums, cluster 8 mostly Paris arenas.
  const auto paris = ArchetypeModel::archetype_mix(
      net::Environment::kStadium, net::City::kParis);
  const auto lille = ArchetypeModel::archetype_mix(
      net::Environment::kStadium, net::City::kLille);
  EXPECT_GT(paris[8], 0.5);
  EXPECT_GT(lille[6], 0.5);
  EXPECT_GT(paris[5] + lille[5], 0.3);  // both feed the low-usage cluster
}

TEST(ArchetypeMixTest, ExpoCentersLeanWorkOriented) {
  // Fig. 8c: more than 50% of expo centres belong to cluster 3.
  const auto mix = ArchetypeModel::archetype_mix(net::Environment::kExpo,
                                                 net::City::kLyon);
  EXPECT_GT(mix[3], 0.5);
}

}  // namespace
}  // namespace icn::traffic
