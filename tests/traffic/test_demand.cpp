#include "traffic/demand.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.h"
#include "util/stats.h"

namespace icn::traffic {
namespace {

class DemandModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net::TopologyParams topo_params;
    topo_params.seed = 11;
    topo_params.scale = 0.08;
    topo_params.outdoor_ratio = 1.0;
    topology_ = net::Topology::generate(topo_params);
  }

  DemandModel make(DemandParams params = {}) {
    return DemandModel(topology_, archetypes_, params);
  }

  ServiceCatalog catalog_;
  ArchetypeModel archetypes_{catalog_};
  net::Topology topology_;
};

TEST_F(DemandModelTest, ShapesMatchTopology) {
  const DemandModel demand = make();
  EXPECT_EQ(demand.profiles().size(), topology_.indoor().size());
  EXPECT_EQ(demand.traffic_matrix().rows(), topology_.indoor().size());
  EXPECT_EQ(demand.traffic_matrix().cols(), catalog_.size());
  EXPECT_EQ(demand.outdoor_traffic_matrix().rows(),
            topology_.outdoor().size());
}

TEST_F(DemandModelTest, DeterministicForSeed) {
  const DemandModel a = make();
  const DemandModel b = make();
  EXPECT_EQ(a.archetype_labels(), b.archetype_labels());
  for (std::size_t i = 0; i < a.traffic_matrix().data().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.traffic_matrix().data()[i],
                     b.traffic_matrix().data()[i]);
  }
}

TEST_F(DemandModelTest, SeedChangesDraws) {
  DemandParams p1, p2;
  p1.seed = 1;
  p2.seed = 2;
  const DemandModel a = make(p1);
  const DemandModel b = make(p2);
  bool differs = false;
  for (std::size_t i = 0; i < a.traffic_matrix().data().size(); ++i) {
    if (a.traffic_matrix().data()[i] != b.traffic_matrix().data()[i]) {
      differs = true;
      break;
    }
  }
  EXPECT_TRUE(differs);
}

TEST_F(DemandModelTest, SharesSumToOnePerAntenna) {
  const DemandModel demand = make();
  for (const auto& p : demand.profiles()) {
    double total = 0.0;
    for (const double s : p.shares) {
      EXPECT_GE(s, 0.0);
      total += s;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST_F(DemandModelTest, MatrixRowsEqualTotalTimesShares) {
  const DemandModel demand = make();
  const auto& t = demand.traffic_matrix();
  for (std::size_t i = 0; i < 20; ++i) {
    const auto& p = demand.profiles()[i];
    for (std::size_t j = 0; j < catalog_.size(); ++j) {
      EXPECT_NEAR(t(i, j), p.total_mb * p.shares[j],
                  1e-9 * std::max(1.0, p.total_mb));
    }
  }
}

TEST_F(DemandModelTest, ArchetypesRespectEnvironmentMix) {
  const DemandModel demand = make();
  const auto& indoor = topology_.indoor();
  for (std::size_t i = 0; i < indoor.size(); ++i) {
    const auto mix = ArchetypeModel::archetype_mix(indoor[i].environment,
                                                   indoor[i].city);
    const int a = demand.archetype_labels()[i];
    EXPECT_GT(mix[static_cast<std::size_t>(a)], 0.0)
        << indoor[i].name << " got archetype " << a;
  }
}

TEST_F(DemandModelTest, HigherConcentrationTightensShares) {
  DemandParams loose_params, tight_params;
  loose_params.concentration = 100.0;
  tight_params.concentration = 10000.0;
  const DemandModel loose = make(loose_params);
  const DemandModel tight = make(tight_params);
  // Measure mean absolute deviation of shares from the archetype expectation
  // over all antennas; the tight model must deviate less.
  auto deviation = [&](const DemandModel& d) {
    double acc = 0.0;
    std::size_t count = 0;
    for (std::size_t i = 0; i < d.profiles().size(); ++i) {
      const auto& p = d.profiles()[i];
      const auto expected = archetypes_.expected_shares(p.archetype);
      for (std::size_t j = 0; j < expected.size(); ++j) {
        acc += std::fabs(p.shares[j] - expected[j]);
        ++count;
      }
    }
    return acc / static_cast<double>(count);
  };
  EXPECT_LT(deviation(tight) * 3.0, deviation(loose));
}

TEST_F(DemandModelTest, VolumesScaleWithEnvironment) {
  // Airports carry far more traffic than hospitals on average.
  const DemandModel demand = make();
  std::vector<double> airport, hospital;
  const auto& indoor = topology_.indoor();
  for (std::size_t i = 0; i < indoor.size(); ++i) {
    if (indoor[i].environment == net::Environment::kAirport) {
      airport.push_back(demand.profiles()[i].total_mb);
    } else if (indoor[i].environment == net::Environment::kHospital) {
      hospital.push_back(demand.profiles()[i].total_mb);
    }
  }
  ASSERT_FALSE(airport.empty());
  ASSERT_FALSE(hospital.empty());
  EXPECT_GT(icn::util::median(airport), icn::util::median(hospital) * 3.0);
}

TEST_F(DemandModelTest, MeanTotalCoversAllEnvironments) {
  for (const net::Environment e : net::all_environments()) {
    EXPECT_GT(DemandModel::mean_total_mb(e), 0.0);
  }
}

TEST_F(DemandModelTest, OutdoorMixIsHomogeneous) {
  // Outdoor antennas serve broad populations: their share vectors must sit
  // much closer to each other than indoor archetype mixes do.
  const DemandModel demand = make();
  const auto& outdoor = demand.outdoor_traffic_matrix();
  ASSERT_GT(outdoor.rows(), 10u);
  // Mean pairwise L1 distance between normalized outdoor rows (sampled).
  auto normalized_row = [&](const ml::Matrix& m, std::size_t r) {
    std::vector<double> out(m.cols());
    double total = 0.0;
    for (std::size_t j = 0; j < m.cols(); ++j) total += m(r, j);
    for (std::size_t j = 0; j < m.cols(); ++j) out[j] = m(r, j) / total;
    return out;
  };
  auto l1 = [](const std::vector<double>& a, const std::vector<double>& b) {
    double acc = 0.0;
    for (std::size_t j = 0; j < a.size(); ++j) {
      acc += std::fabs(a[j] - b[j]);
    }
    return acc;
  };
  double outdoor_dist = 0.0;
  int pairs = 0;
  for (std::size_t i = 0; i + 1 < std::min<std::size_t>(outdoor.rows(), 20);
       i += 2) {
    outdoor_dist += l1(normalized_row(outdoor, i),
                       normalized_row(outdoor, i + 1));
    ++pairs;
  }
  outdoor_dist /= pairs;
  // Compare against the distance between two very different archetypes.
  std::vector<double> a3(archetypes_.expected_shares(3).begin(),
                         archetypes_.expected_shares(3).end());
  std::vector<double> a0(archetypes_.expected_shares(0).begin(),
                         archetypes_.expected_shares(0).end());
  EXPECT_LT(outdoor_dist, 0.5 * l1(a3, a0));
}

TEST_F(DemandModelTest, RejectsBadParams) {
  DemandParams params;
  params.concentration = 0.0;
  EXPECT_THROW(make(params), icn::util::PreconditionError);
  params.concentration = 100.0;
  params.outdoor_concentration = -1.0;
  EXPECT_THROW(make(params), icn::util::PreconditionError);
}

}  // namespace
}  // namespace icn::traffic
