#include "traffic/flows.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.h"
#include "util/stats.h"

namespace icn::traffic {
namespace {

class FlowGeneratorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net::TopologyParams topo_params;
    topo_params.seed = 31;
    topo_params.scale = 0.02;
    topo_params.outdoor_ratio = 0.0;
    topology_ = net::Topology::generate(topo_params);
    demand_ = std::make_unique<DemandModel>(topology_, archetypes_,
                                            DemandParams{});
    TemporalParams tp;
    tp.noise_shape = 0.0;
    temporal_ = std::make_unique<TemporalModel>(*demand_, tp);
    generator_ = std::make_unique<FlowGenerator>(*temporal_, 5);
  }

  ServiceCatalog catalog_;
  ArchetypeModel archetypes_{catalog_};
  net::Topology topology_;
  std::unique_ptr<DemandModel> demand_;
  std::unique_ptr<TemporalModel> temporal_;
  std::unique_ptr<FlowGenerator> generator_;
};

TEST_F(FlowGeneratorTest, FlowsPartitionHourVolumeExactly) {
  const std::size_t antenna = 0;
  const std::size_t service = 0;
  const std::int64_t hour = 10;
  const auto series = temporal_->hourly_service_series(antenna, service);
  const auto flows = generator_->flows_for_hour(antenna, service, hour);
  double total_bytes = 0.0;
  for (const auto& f : flows) total_bytes += f.down_bytes + f.up_bytes;
  EXPECT_NEAR(total_bytes / 1.0e6, series[10],
              1e-9 * std::max(1.0, series[10]));
}

TEST_F(FlowGeneratorTest, DeterministicPerCell) {
  const auto a = generator_->flows_for_hour(1, 2, 33);
  const auto b = generator_->flows_for_hour(1, 2, 33);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].sni, b[i].sni);
    EXPECT_EQ(a[i].src_ip, b[i].src_ip);
    EXPECT_DOUBLE_EQ(a[i].down_bytes, b[i].down_bytes);
  }
}

TEST_F(FlowGeneratorTest, EcgiEncodesAntennaId) {
  const std::uint32_t antenna_id = topology_.indoor()[3].id;
  const auto flows = generator_->flows_for_hour(3, 0, 9);
  for (const auto& f : flows) {
    EXPECT_EQ(f.ecgi, generator_->ecgi_of(antenna_id));
    EXPECT_EQ(f.start_hour, 9);
  }
}

TEST_F(FlowGeneratorTest, SniMatchesServiceSignature) {
  const std::size_t spotify = *catalog_.index_of("Spotify");
  const auto flows = generator_->flows_for_hour(0, spotify, 9);
  ASSERT_FALSE(flows.empty());
  for (const auto& f : flows) {
    EXPECT_TRUE(f.sni == "spotify.com" || f.sni.ends_with(".spotify.com"))
        << f.sni;
    EXPECT_EQ(f.dst_port, 443);
  }
}

TEST_F(FlowGeneratorTest, DownlinkFractionFollowsCategory) {
  // Video is downlink-heavy, cloud is upload-heavy.
  const std::size_t netflix = *catalog_.index_of("Netflix");
  const std::size_t icloud = *catalog_.index_of("iCloud");
  double nf_down = 0.0, nf_total = 0.0, ic_down = 0.0, ic_total = 0.0;
  for (std::int64_t h = 8; h < 24; ++h) {
    for (const auto& f : generator_->flows_for_hour(0, netflix, h)) {
      nf_down += f.down_bytes;
      nf_total += f.down_bytes + f.up_bytes;
    }
    for (const auto& f : generator_->flows_for_hour(0, icloud, h)) {
      ic_down += f.down_bytes;
      ic_total += f.down_bytes + f.up_bytes;
    }
  }
  ASSERT_GT(nf_total, 0.0);
  ASSERT_GT(ic_total, 0.0);
  EXPECT_NEAR(nf_down / nf_total, 0.96, 1e-9);
  EXPECT_NEAR(ic_down / ic_total, 0.45, 1e-9);
}

TEST_F(FlowGeneratorTest, SrcIpsAreInPrivateTenRange) {
  const auto flows = generator_->flows_for_hour(0, 0, 12);
  for (const auto& f : flows) {
    EXPECT_EQ(f.src_ip >> 24, 0x0AU) << "UE addresses come from 10.0.0.0/8";
    EXPECT_GE(f.src_port, 49152);
  }
}

TEST_F(FlowGeneratorTest, LargerVolumesYieldMoreFlows) {
  // Mean flow count grows with volume: aggregate the 50 busiest vs the 50
  // quietest hours of the highest-traffic antenna (single hours are too
  // noisy for a Poisson count comparison).
  std::size_t antenna = 0;
  for (std::size_t i = 1; i < demand_->profiles().size(); ++i) {
    if (demand_->profiles()[i].total_mb >
        demand_->profiles()[antenna].total_mb) {
      antenna = i;
    }
  }
  const std::size_t video = 0;  // YouTube, the biggest service
  auto series = temporal_->hourly_service_series(antenna, video);
  std::vector<std::size_t> order(series.size());
  for (std::size_t t = 0; t < order.size(); ++t) order[t] = t;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return series[a] > series[b];
  });
  std::size_t busy = 0, quiet = 0;
  for (std::size_t r = 0; r < 50; ++r) {
    busy += generator_
                ->flows_for_hour(antenna, video,
                                 static_cast<std::int64_t>(order[r]))
                .size();
    quiet += generator_
                 ->flows_for_hour(
                     antenna, video,
                     static_cast<std::int64_t>(order[order.size() - 1 - r]))
                 .size();
  }
  EXPECT_GT(busy, quiet);
}

TEST_F(FlowGeneratorTest, FlowsForAntennaCoversAllServices) {
  const auto flows = generator_->flows_for_antenna(0, 0, 24);
  // Every flow belongs to hour [0, 24) and carries a classifiable SNI.
  std::size_t classified = 0;
  for (const auto& f : flows) {
    EXPECT_GE(f.start_hour, 0);
    EXPECT_LT(f.start_hour, 24);
    if (catalog_.classify_sni(f.sni).has_value()) ++classified;
  }
  EXPECT_EQ(classified, flows.size());
  // Volumes over the day must equal the total-series day sum.
  double mb = 0.0;
  for (const auto& f : flows) mb += (f.down_bytes + f.up_bytes) / 1.0e6;
  const auto series = temporal_->hourly_total_series(0);
  double expected = 0.0;
  for (std::size_t t = 0; t < 24; ++t) expected += series[t];
  EXPECT_NEAR(mb, expected, 1e-6 * expected);
}

TEST_F(FlowGeneratorTest, HourRangeValidation) {
  EXPECT_THROW(generator_->flows_for_hour(0, 0, -1),
               icn::util::PreconditionError);
  EXPECT_THROW(
      generator_->flows_for_hour(0, 0, temporal_->period().num_hours()),
      icn::util::PreconditionError);
  EXPECT_THROW(generator_->flows_for_antenna(0, 10, 5),
               icn::util::PreconditionError);
}

TEST(FlowHelpersTest, MeanFlowSizesOrdered) {
  // Video flows are much larger than messaging flows.
  EXPECT_GT(mean_flow_mb(ServiceCategory::kVideoStreaming),
            mean_flow_mb(ServiceCategory::kMessaging) * 10.0);
  for (int c = 0; c < static_cast<int>(kNumServiceCategories); ++c) {
    EXPECT_GT(mean_flow_mb(static_cast<ServiceCategory>(c)), 0.0);
    const double frac =
        downlink_fraction(static_cast<ServiceCategory>(c));
    EXPECT_GT(frac, 0.0);
    EXPECT_LT(frac, 1.0);
  }
}

}  // namespace
}  // namespace icn::traffic
