#include "traffic/services.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "util/error.h"

namespace icn::traffic {
namespace {

TEST(ServiceCatalogTest, Has73Services) {
  // The paper's M = 73 mobile services.
  const ServiceCatalog catalog;
  EXPECT_EQ(catalog.size(), 73u);
}

TEST(ServiceCatalogTest, NamesAreUnique) {
  const ServiceCatalog catalog;
  std::set<std::string> names;
  for (const auto& s : catalog.all()) names.insert(std::string(s.name));
  EXPECT_EQ(names.size(), catalog.size());
}

TEST(ServiceCatalogTest, SignaturesAreUnique) {
  const ServiceCatalog catalog;
  std::set<std::string> sigs;
  for (const auto& s : catalog.all()) sigs.insert(std::string(s.signature));
  EXPECT_EQ(sigs.size(), catalog.size());
}

TEST(ServiceCatalogTest, PaperNamedServicesPresent) {
  // Every service the paper's Figs. 5 & 11 discuss must exist.
  const ServiceCatalog catalog;
  for (const char* name :
       {"Spotify", "SoundCloud", "Deezer", "Apple Music", "Mappy",
        "Google Maps", "Transportation Websites", "Yahoo",
        "Entertainment Websites", "Shopping Websites", "Sports Websites",
        "Snapchat", "Twitter", "Giphy", "WhatsApp", "Canal+", "Netflix",
        "Disney+", "Amazon Prime Video", "Waze", "Microsoft Teams",
        "LinkedIn", "Google Play Store"}) {
    EXPECT_TRUE(catalog.index_of(name).has_value()) << name;
  }
}

TEST(ServiceCatalogTest, PopularitySharesSumToOne) {
  const ServiceCatalog catalog;
  double total = 0.0;
  for (const double s : catalog.popularity_shares()) {
    EXPECT_GT(s, 0.0);
    total += s;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(ServiceCatalogTest, PopularityIsHeavyTailed) {
  // Top service (YouTube) carries far more than the median service.
  const ServiceCatalog catalog;
  const auto& shares = catalog.popularity_shares();
  double max_share = 0.0;
  for (const double s : shares) max_share = std::max(max_share, s);
  std::vector<double> sorted(shares.begin(), shares.end());
  std::sort(sorted.begin(), sorted.end());
  const double median = sorted[sorted.size() / 2];
  EXPECT_GT(max_share, 10.0 * median);
}

TEST(ServiceCatalogTest, IndexLookup) {
  const ServiceCatalog catalog;
  const auto spotify = catalog.index_of("Spotify");
  ASSERT_TRUE(spotify.has_value());
  EXPECT_EQ(catalog.at(*spotify).name, "Spotify");
  EXPECT_EQ(catalog.at(*spotify).category, ServiceCategory::kMusic);
  EXPECT_FALSE(catalog.index_of("NoSuchApp").has_value());
  EXPECT_THROW(catalog.at(catalog.size()), icn::util::PreconditionError);
}

TEST(ServiceCatalogTest, SniExactAndSuffixMatch) {
  const ServiceCatalog catalog;
  const auto direct = catalog.classify_sni("spotify.com");
  const auto sub = catalog.classify_sni("api.spotify.com");
  const auto deep = catalog.classify_sni("audio.cdn.spotify.com");
  ASSERT_TRUE(direct.has_value());
  EXPECT_EQ(direct, sub);
  EXPECT_EQ(direct, deep);
}

TEST(ServiceCatalogTest, SniRejectsNonBoundaryMatch) {
  const ServiceCatalog catalog;
  // "notspotify.com" must NOT match "spotify.com" (no label boundary).
  EXPECT_FALSE(catalog.classify_sni("notspotify.com").has_value());
  EXPECT_FALSE(catalog.classify_sni("").has_value());
  EXPECT_FALSE(catalog.classify_sni("unknown.example.org").has_value());
}

TEST(ServiceCatalogTest, EverySignatureClassifiesToItsService) {
  const ServiceCatalog catalog;
  for (std::size_t j = 0; j < catalog.size(); ++j) {
    const auto hit = catalog.classify_sni(catalog.at(j).signature);
    ASSERT_TRUE(hit.has_value()) << catalog.at(j).name;
    EXPECT_EQ(*hit, j) << catalog.at(j).name;
  }
}

TEST(ServiceCatalogTest, CategoriesCoverCatalog) {
  const ServiceCatalog catalog;
  std::size_t total = 0;
  for (int c = 0; c < static_cast<int>(kNumServiceCategories); ++c) {
    total += catalog.of_category(static_cast<ServiceCategory>(c)).size();
  }
  EXPECT_EQ(total, catalog.size());
}

TEST(ServiceCatalogTest, KeyCategoriesNonEmpty) {
  const ServiceCatalog catalog;
  EXPECT_GE(catalog.of_category(ServiceCategory::kMusic).size(), 4u);
  EXPECT_GE(catalog.of_category(ServiceCategory::kNavigation).size(), 5u);
  EXPECT_GE(catalog.of_category(ServiceCategory::kWork).size(), 4u);
  EXPECT_GE(catalog.of_category(ServiceCategory::kVideoStreaming).size(),
            8u);
}

TEST(ServiceCategoryTest, NamesDistinct) {
  std::set<std::string> names;
  for (int c = 0; c < static_cast<int>(kNumServiceCategories); ++c) {
    names.insert(category_name(static_cast<ServiceCategory>(c)));
  }
  EXPECT_EQ(names.size(), kNumServiceCategories);
}

}  // namespace
}  // namespace icn::traffic
