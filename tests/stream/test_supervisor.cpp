// Feed supervision: zero-fault bit-parity with a plain StreamIngestor
// (including the checkpoint file bytes), stall detection, retry/backoff,
// quarantine circuit breakers, sequence dedup, and the live + durable merge
// paths.
#include "stream/supervise.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "stream/feed.h"
#include "stream/ingest.h"
#include "util/error.h"
#include "util/rng.h"

namespace icn::stream {
namespace {

constexpr std::size_t kServices = 5;
constexpr std::int64_t kHours = 16;

class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(::testing::TempDir() + "icn_supervisor_" + name) {
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

/// Deterministic sessions covering every (antenna, hour) of one probe.
std::vector<probe::ServiceSession> probe_sessions(
    std::span<const std::uint32_t> ids, std::uint64_t seed) {
  icn::util::Rng rng(seed);
  std::vector<probe::ServiceSession> out;
  for (std::int64_t h = 0; h < kHours; ++h) {
    for (const std::uint32_t id : ids) {
      const std::size_t n = 1 + rng.uniform_index(3);
      for (std::size_t i = 0; i < n; ++i) {
        probe::ServiceSession s;
        s.antenna_id = id;
        s.service = rng.uniform_index(kServices);
        s.hour = h;
        s.down_bytes = rng.uniform(1.0e3, 5.0e6);
        s.up_bytes = rng.uniform(1.0e2, 5.0e5);
        out.push_back(s);
      }
    }
  }
  return out;
}

SupervisorParams base_params(std::size_t shards = 1) {
  SupervisorParams params;
  params.num_services = kServices;
  params.num_hours = kHours;
  params.num_shards = shards;
  params.allowed_lateness = 0;
  return params;
}

void expect_matrices_equal(const ml::Matrix& a, const ml::Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    ASSERT_EQ(a.data()[i], b.data()[i]) << "slot " << i;
  }
}

/// Scripted source with per-pull behavior: 'b' = next batch, 's' = stalled,
/// 't' = throw TransientFeedError. End of script = end of stream.
class ScriptedSource final : public BatchSource {
 public:
  ScriptedSource(std::string behavior, std::vector<FeedBatch> batches)
      : behavior_(std::move(behavior)), batches_(std::move(batches)) {}

  PullResult pull() override {
    if (pos_ >= behavior_.size()) return {PullStatus::kEndOfStream, {}};
    const char op = behavior_[pos_++];
    if (op == 's') return {PullStatus::kStalled, {}};
    if (op == 't') throw TransientFeedError("scripted failure");
    return {PullStatus::kBatch, batches_.at(next_batch_++)};
  }

 private:
  std::string behavior_;
  std::vector<FeedBatch> batches_;
  std::size_t pos_ = 0;
  std::size_t next_batch_ = 0;
};

TEST(FeedSupervisorTest, ZeroFaultSingleFeedMatchesStreamIngestorBitForBit) {
  const std::vector<std::uint32_t> ids = {11, 22, 33};
  const auto sessions = probe_sessions(ids, 77);
  const auto script = hourly_script(sessions, kHours);

  for (const std::size_t shards : {std::size_t{1}, std::size_t{3}}) {
    // Reference: a plain checkpointed StreamIngestor over the same batches.
    TempFile reference("reference_s" + std::to_string(shards) + ".snap");
    IngestParams ingest;
    ingest.antenna_ids = ids;
    ingest.num_services = kServices;
    ingest.num_hours = kHours;
    ingest.num_shards = shards;
    {
      auto writer = begin_checkpoint(reference.path(), ingest);
      StreamIngestor plain(ingest, &writer);
      for (const auto& batch : script) plain.push(batch.records);
      plain.finish();
      writer.sync();
    }

    TempFile supervised("supervised_s" + std::to_string(shards) + ".snap");
    VectorFeed feed{script};
    auto params = base_params(shards);
    FeedSupervisor supervisor(
        params, {{"probe-0", ids, &feed, supervised.path()}});
    supervisor.run();

    ASSERT_TRUE(supervisor.finished());
    const FeedStats stats = supervisor.stats(0);
    EXPECT_EQ(stats.state, FeedState::kDone);
    EXPECT_EQ(stats.batches_accepted, script.size());
    EXPECT_EQ(stats.covered_hours, kHours);
    EXPECT_EQ(stats.late_dropped, 0u);

    // Windows, merged totals, and the checkpoint bytes are all identical.
    StreamIngestor check(ingest);
    for (const auto& batch : script) check.push(batch.records);
    check.finish();
    const auto expected_windows = check.take_closed();
    const auto& got_windows = supervisor.windows(0);
    ASSERT_EQ(got_windows.size(), expected_windows.size());
    for (std::size_t w = 0; w < got_windows.size(); ++w) {
      EXPECT_EQ(got_windows[w].hour, expected_windows[w].hour);
      ASSERT_EQ(got_windows[w].cells.size(), expected_windows[w].cells.size());
      for (std::size_t i = 0; i < got_windows[w].cells.size(); ++i) {
        ASSERT_EQ(got_windows[w].cells[i], expected_windows[w].cells[i]);
      }
    }
    const MergedStudy study = supervisor.merge();
    expect_matrices_equal(study.traffic, check.traffic_matrix());
    EXPECT_TRUE(study.coverage.complete());

    const auto ref_bytes = read_file(reference.path());
    const auto sup_bytes = read_file(supervised.path());
    ASSERT_FALSE(ref_bytes.empty());
    EXPECT_EQ(sup_bytes, ref_bytes) << "shards=" << shards;
  }
}

TEST(FeedSupervisorTest, StallDetectedAfterTimeoutAndFeedRecovers) {
  const std::vector<std::uint32_t> ids = {5};
  const auto sessions = probe_sessions(ids, 9);
  auto script = hourly_script(sessions, kHours);
  // 4 stalled pulls before anything arrives, timeout at 3 ticks.
  std::string behavior(4, 's');
  behavior += std::string(script.size(), 'b');
  ScriptedSource source(std::move(behavior), script);

  auto params = base_params();
  params.stall_timeout_ticks = 3;
  FeedSupervisor supervisor(params, {{"stall", ids, &source, ""}});
  supervisor.run();

  const FeedStats stats = supervisor.stats(0);
  EXPECT_EQ(stats.state, FeedState::kDone);
  EXPECT_EQ(stats.stall_episodes, 1u);
  EXPECT_EQ(stats.batches_accepted, script.size());
  EXPECT_EQ(stats.covered_hours, kHours);
  bool saw_stall = false;
  for (const auto& event : supervisor.events()) {
    if (event.kind == SupervisorEventKind::kStallDetected) {
      saw_stall = true;
      EXPECT_EQ(event.tick, 3);  // last_progress 0 + timeout 3
    }
  }
  EXPECT_TRUE(saw_stall);
}

TEST(FeedSupervisorTest, TransientFailuresRetryWithDeterministicBackoff) {
  const std::vector<std::uint32_t> ids = {5};
  const auto sessions = probe_sessions(ids, 10);
  auto script = hourly_script(sessions, kHours);
  std::string behavior = "tt";
  behavior += std::string(script.size(), 'b');
  ScriptedSource source(std::move(behavior), script);

  auto params = base_params();
  params.backoff.initial_ticks = 2;
  params.backoff.max_ticks = 16;
  FeedSupervisor supervisor(params, {{"flaky", ids, &source, ""}});
  supervisor.run();

  const FeedStats stats = supervisor.stats(0);
  EXPECT_EQ(stats.state, FeedState::kDone);
  EXPECT_EQ(stats.transient_failures, 2u);
  EXPECT_EQ(stats.retries_scheduled, 2u);
  EXPECT_EQ(stats.batches_accepted, script.size());

  std::vector<SupervisorEvent> retries;
  for (const auto& event : supervisor.events()) {
    if (event.kind == SupervisorEventKind::kRetryScheduled) {
      retries.push_back(event);
    }
  }
  ASSERT_EQ(retries.size(), 2u);
  // Delay = initial << (attempt-1), plus jitter in [0, delay/2] derived from
  // (jitter_seed, feed, attempt) — recomputable, never random.
  for (std::size_t i = 0; i < retries.size(); ++i) {
    const auto attempt = static_cast<std::size_t>(retries[i].a);
    EXPECT_EQ(attempt, i + 1);
    const std::int64_t base = params.backoff.initial_ticks
                              << (attempt - 1);
    const auto jitter = static_cast<std::int64_t>(
        icn::util::derive_seed(params.backoff.jitter_seed, 0, attempt) %
        static_cast<std::uint64_t>(base / 2 + 1));
    EXPECT_EQ(retries[i].b, base + jitter);
  }
}

TEST(FeedSupervisorTest, RetriesExhaustedQuarantinesButKeepsAcceptedData) {
  const std::vector<std::uint32_t> ids = {5};
  const auto sessions = probe_sessions(ids, 11);
  auto script = hourly_script(sessions, kHours);
  // Two good batches, then the probe dies for good.
  std::string behavior = "bb";
  behavior += std::string(20, 't');
  ScriptedSource source(std::move(behavior),
                        {script.begin(), script.begin() + 2});

  auto params = base_params();
  params.backoff.max_retries = 3;
  params.backoff.initial_ticks = 1;
  params.backoff.max_ticks = 2;
  FeedSupervisor supervisor(params, {{"dead", ids, &source, ""}});
  supervisor.run();

  const FeedStats stats = supervisor.stats(0);
  EXPECT_EQ(stats.state, FeedState::kQuarantined);
  EXPECT_EQ(stats.quarantine_reason, QuarantineReason::kRetriesExhausted);
  EXPECT_EQ(stats.transient_failures, params.backoff.max_retries + 1);
  EXPECT_EQ(stats.batches_accepted, 2u);
  EXPECT_EQ(stats.covered_hours, 2);
  // The two accepted hours survive into the merge; the rest is uncovered.
  const MergedStudy study = supervisor.merge();
  EXPECT_FALSE(study.coverage.complete());
  EXPECT_TRUE(study.coverage.covered(0, 0));
  EXPECT_TRUE(study.coverage.covered(0, 1));
  EXPECT_FALSE(study.coverage.covered(0, 2));
}

TEST(FeedSupervisorTest, RepeatedCorruptBatchesTripTheCircuitBreaker) {
  const std::vector<std::uint32_t> ids = {5};
  const auto sessions = probe_sessions(ids, 12);
  auto script = hourly_script(sessions, kHours);
  // Three distinct truncated deliveries (declared != records).
  std::vector<FeedBatch> bad;
  for (std::size_t i = 0; i < 3; ++i) {
    FeedBatch b = script[i];
    b.declared_records = b.records.size() + 4;
    bad.push_back(std::move(b));
  }
  ScriptedSource source("bbb", std::move(bad));

  auto params = base_params();
  params.corrupt_strikes = 3;
  FeedSupervisor supervisor(params, {{"corrupt", ids, &source, ""}});
  supervisor.run();

  const FeedStats stats = supervisor.stats(0);
  EXPECT_EQ(stats.state, FeedState::kQuarantined);
  EXPECT_EQ(stats.quarantine_reason, QuarantineReason::kCorruptData);
  EXPECT_EQ(stats.corrupt_batches, 3u);
  EXPECT_EQ(stats.batches_accepted, 0u);
}

TEST(FeedSupervisorTest, RedeliveredSequencesAreDroppedBeforeCounting) {
  const std::vector<std::uint32_t> ids = {5};
  const auto sessions = probe_sessions(ids, 13);
  auto script = hourly_script(sessions, kHours);
  // Every batch delivered twice.
  std::vector<FeedBatch> doubled;
  for (const auto& batch : script) {
    doubled.push_back(batch);
    doubled.push_back(batch);
  }
  ScriptedSource source(std::string(doubled.size(), 'b'), doubled);

  FeedSupervisor supervisor(base_params(), {{"dup", ids, &source, ""}});
  supervisor.run();

  const FeedStats stats = supervisor.stats(0);
  EXPECT_EQ(stats.state, FeedState::kDone);
  EXPECT_EQ(stats.duplicate_batches, script.size());
  EXPECT_EQ(stats.batches_accepted, script.size());

  // Totals count each batch exactly once.
  IngestParams ingest;
  ingest.antenna_ids = ids;
  ingest.num_services = kServices;
  ingest.num_hours = kHours;
  StreamIngestor check(ingest);
  for (const auto& batch : script) check.push(batch.records);
  check.finish();
  expect_matrices_equal(supervisor.merge().traffic, check.traffic_matrix());
}

TEST(FeedSupervisorTest, MergeConcatenatesFeedsInSpecOrder) {
  const std::vector<std::uint32_t> ids_a = {1, 2};
  const std::vector<std::uint32_t> ids_b = {7};
  const auto sessions_a = probe_sessions(ids_a, 21);
  const auto sessions_b = probe_sessions(ids_b, 22);
  VectorFeed feed_a{hourly_script(sessions_a, kHours)};
  VectorFeed feed_b{hourly_script(sessions_b, kHours)};

  FeedSupervisor supervisor(
      base_params(),
      {{"a", ids_a, &feed_a, ""}, {"b", ids_b, &feed_b, ""}});
  supervisor.run();
  const MergedStudy study = supervisor.merge();

  ASSERT_EQ(study.antenna_ids, (std::vector<std::uint32_t>{1, 2, 7}));
  ASSERT_EQ(study.traffic.rows(), 3u);
  EXPECT_TRUE(study.coverage.complete());

  IngestParams ingest;
  ingest.antenna_ids = ids_b;
  ingest.num_services = kServices;
  ingest.num_hours = kHours;
  StreamIngestor check_b(ingest);
  check_b.push(sessions_b);
  check_b.finish();
  const ml::Matrix totals_b = check_b.traffic_matrix();
  for (std::size_t j = 0; j < kServices; ++j) {
    ASSERT_EQ(study.traffic.at(2, j), totals_b.at(0, j));
  }
}

TEST(FeedSupervisorTest, DurableMergeMatchesLiveMerge) {
  const std::vector<std::uint32_t> ids_a = {1, 2};
  const std::vector<std::uint32_t> ids_b = {7, 9};
  VectorFeed feed_a{hourly_script(probe_sessions(ids_a, 31), kHours)};
  // Feed B dies after 5 accepted hours: its checkpoint gains a kCoverage
  // section and the durable merge must honor it.
  auto script_b = hourly_script(probe_sessions(ids_b, 32), kHours);
  std::string behavior_b(5, 'b');
  behavior_b += std::string(20, 't');
  ScriptedSource feed_b(std::move(behavior_b),
                        {script_b.begin(), script_b.begin() + 5});

  TempFile snap_a("durable_a.snap");
  TempFile snap_b("durable_b.snap");
  auto params = base_params();
  params.backoff.max_retries = 2;
  params.backoff.max_ticks = 2;
  FeedSupervisor supervisor(params, {{"a", ids_a, &feed_a, snap_a.path()},
                                     {"b", ids_b, &feed_b, snap_b.path()}});
  supervisor.run();
  EXPECT_EQ(supervisor.stats(1).state, FeedState::kQuarantined);

  const MergedStudy live = supervisor.merge();
  const std::vector<std::string> paths = {snap_a.path(), snap_b.path()};
  const MergedStudy durable = merge_snapshots(paths);

  ASSERT_EQ(durable.antenna_ids, live.antenna_ids);
  expect_matrices_equal(durable.traffic, live.traffic);
  EXPECT_EQ(durable.coverage, live.coverage);
  EXPECT_FALSE(durable.coverage.complete());

  // Round-trip through a merged snapshot preserves everything.
  TempFile merged("durable_merged.snap");
  write_merged_snapshot(durable, merged.path());
  const store::MappedSnapshot snapshot(merged.path());
  const auto matrix = snapshot.matrix();
  ASSERT_TRUE(matrix.has_value());
  expect_matrices_equal(matrix->to_matrix(), live.traffic);
  const auto cov = snapshot.coverage();
  ASSERT_TRUE(cov.has_value());
  EXPECT_EQ(cov->rows, live.coverage.rows());
}

TEST(FeedSupervisorTest, PreconditionsEnforced) {
  const std::vector<std::uint32_t> ids = {5};
  VectorFeed feed{hourly_script({}, kHours)};
  // Overlapping antenna ids across feeds.
  VectorFeed feed2{hourly_script({}, kHours)};
  EXPECT_THROW(FeedSupervisor(base_params(), {{"a", ids, &feed, ""},
                                              {"b", ids, &feed2, ""}}),
               icn::util::PreconditionError);
  // Null source, no feeds, merge before finished.
  EXPECT_THROW(FeedSupervisor(base_params(), {{"a", ids, nullptr, ""}}),
               icn::util::PreconditionError);
  EXPECT_THROW(FeedSupervisor(base_params(), {}),
               icn::util::PreconditionError);
  FeedSupervisor supervisor(base_params(), {{"a", ids, &feed, ""}});
  EXPECT_THROW((void)supervisor.merge(), icn::util::PreconditionError);
}

TEST(FeedSupervisorTest, TimeoutQuarantinesPendingFeeds) {
  const std::vector<std::uint32_t> ids = {5};
  // A feed that stalls forever.
  ScriptedSource source(std::string(1000, 's'), {});
  auto params = base_params();
  params.max_ticks = 20;
  FeedSupervisor supervisor(params, {{"hung", ids, &source, ""}});
  supervisor.run();
  const FeedStats stats = supervisor.stats(0);
  EXPECT_EQ(stats.state, FeedState::kQuarantined);
  EXPECT_EQ(stats.quarantine_reason, QuarantineReason::kTimeout);
  EXPECT_TRUE(supervisor.finished());
}

}  // namespace
}  // namespace icn::stream
