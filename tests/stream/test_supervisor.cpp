// Feed supervision: zero-fault bit-parity with a plain StreamIngestor
// (including the checkpoint file bytes), stall detection, retry/backoff,
// quarantine circuit breakers, sequence dedup, and the live + durable merge
// paths.
#include "stream/supervise.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "stream/feed.h"
#include "stream/ingest.h"
#include "util/error.h"
#include "util/rng.h"

namespace icn::stream {
namespace {

constexpr std::size_t kServices = 5;
constexpr std::int64_t kHours = 16;

class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(::testing::TempDir() + "icn_supervisor_" +
              std::to_string(::getpid()) + "_" + name) {
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

/// Deterministic sessions covering every (antenna, hour) of one probe.
std::vector<probe::ServiceSession> probe_sessions(
    std::span<const std::uint32_t> ids, std::uint64_t seed) {
  icn::util::Rng rng(seed);
  std::vector<probe::ServiceSession> out;
  for (std::int64_t h = 0; h < kHours; ++h) {
    for (const std::uint32_t id : ids) {
      const std::size_t n = 1 + rng.uniform_index(3);
      for (std::size_t i = 0; i < n; ++i) {
        probe::ServiceSession s;
        s.antenna_id = id;
        s.service = rng.uniform_index(kServices);
        s.hour = h;
        s.down_bytes = rng.uniform(1.0e3, 5.0e6);
        s.up_bytes = rng.uniform(1.0e2, 5.0e5);
        out.push_back(s);
      }
    }
  }
  return out;
}

SupervisorParams base_params(std::size_t shards = 1) {
  SupervisorParams params;
  params.num_services = kServices;
  params.num_hours = kHours;
  params.num_shards = shards;
  params.allowed_lateness = 0;
  return params;
}

void expect_matrices_equal(const ml::Matrix& a, const ml::Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    ASSERT_EQ(a.data()[i], b.data()[i]) << "slot " << i;
  }
}

/// Scripted source with per-pull behavior: 'b' = next batch, 's' = stalled,
/// 't' = throw TransientFeedError. End of script = end of stream.
class ScriptedSource final : public BatchSource {
 public:
  ScriptedSource(std::string behavior, std::vector<FeedBatch> batches)
      : behavior_(std::move(behavior)), batches_(std::move(batches)) {}

  PullResult pull() override {
    if (pos_ >= behavior_.size()) return {PullStatus::kEndOfStream, {}};
    const char op = behavior_[pos_++];
    if (op == 's') return {PullStatus::kStalled, {}};
    if (op == 't') throw TransientFeedError("scripted failure");
    return {PullStatus::kBatch, batches_.at(next_batch_++)};
  }

 private:
  std::string behavior_;
  std::vector<FeedBatch> batches_;
  std::size_t pos_ = 0;
  std::size_t next_batch_ = 0;
};

TEST(FeedSupervisorTest, ZeroFaultSingleFeedMatchesStreamIngestorBitForBit) {
  const std::vector<std::uint32_t> ids = {11, 22, 33};
  const auto sessions = probe_sessions(ids, 77);
  const auto script = hourly_script(sessions, kHours);

  for (const std::size_t shards : {std::size_t{1}, std::size_t{3}}) {
    // Reference: a plain checkpointed StreamIngestor over the same batches.
    TempFile reference("reference_s" + std::to_string(shards) + ".snap");
    IngestParams ingest;
    ingest.antenna_ids = ids;
    ingest.num_services = kServices;
    ingest.num_hours = kHours;
    ingest.num_shards = shards;
    {
      auto writer = begin_checkpoint(reference.path(), ingest);
      StreamIngestor plain(ingest, &writer);
      for (const auto& batch : script) plain.push(batch.records);
      plain.finish();
      writer.sync();
    }

    TempFile supervised("supervised_s" + std::to_string(shards) + ".snap");
    VectorFeed feed{script};
    auto params = base_params(shards);
    FeedSupervisor supervisor(
        params, {{"probe-0", ids, &feed, supervised.path()}});
    supervisor.run();

    ASSERT_TRUE(supervisor.finished());
    const FeedStats stats = supervisor.stats(0);
    EXPECT_EQ(stats.state, FeedState::kDone);
    EXPECT_EQ(stats.batches_accepted, script.size());
    EXPECT_EQ(stats.covered_hours, kHours);
    EXPECT_EQ(stats.late_dropped, 0u);

    // Windows, merged totals, and the checkpoint bytes are all identical.
    StreamIngestor check(ingest);
    for (const auto& batch : script) check.push(batch.records);
    check.finish();
    const auto expected_windows = check.take_closed();
    const auto& got_windows = supervisor.windows(0);
    ASSERT_EQ(got_windows.size(), expected_windows.size());
    for (std::size_t w = 0; w < got_windows.size(); ++w) {
      EXPECT_EQ(got_windows[w].hour, expected_windows[w].hour);
      ASSERT_EQ(got_windows[w].cells.size(), expected_windows[w].cells.size());
      for (std::size_t i = 0; i < got_windows[w].cells.size(); ++i) {
        ASSERT_EQ(got_windows[w].cells[i], expected_windows[w].cells[i]);
      }
    }
    const MergedStudy study = supervisor.merge();
    expect_matrices_equal(study.traffic, check.traffic_matrix());
    EXPECT_TRUE(study.coverage.complete());

    const auto ref_bytes = read_file(reference.path());
    const auto sup_bytes = read_file(supervised.path());
    ASSERT_FALSE(ref_bytes.empty());
    EXPECT_EQ(sup_bytes, ref_bytes) << "shards=" << shards;
  }
}

TEST(FeedSupervisorTest, StallDetectedAfterTimeoutAndFeedRecovers) {
  const std::vector<std::uint32_t> ids = {5};
  const auto sessions = probe_sessions(ids, 9);
  auto script = hourly_script(sessions, kHours);
  // 4 stalled pulls before anything arrives, timeout at 3 ticks.
  std::string behavior(4, 's');
  behavior += std::string(script.size(), 'b');
  ScriptedSource source(std::move(behavior), script);

  auto params = base_params();
  params.stall_timeout_ticks = 3;
  FeedSupervisor supervisor(params, {{"stall", ids, &source, ""}});
  supervisor.run();

  const FeedStats stats = supervisor.stats(0);
  EXPECT_EQ(stats.state, FeedState::kDone);
  EXPECT_EQ(stats.stall_episodes, 1u);
  EXPECT_EQ(stats.batches_accepted, script.size());
  EXPECT_EQ(stats.covered_hours, kHours);
  bool saw_stall = false;
  for (const auto& event : supervisor.events()) {
    if (event.kind == SupervisorEventKind::kStallDetected) {
      saw_stall = true;
      EXPECT_EQ(event.tick, 3);  // last_progress 0 + timeout 3
    }
  }
  EXPECT_TRUE(saw_stall);
}

TEST(FeedSupervisorTest, TransientFailuresRetryWithDeterministicBackoff) {
  const std::vector<std::uint32_t> ids = {5};
  const auto sessions = probe_sessions(ids, 10);
  auto script = hourly_script(sessions, kHours);
  std::string behavior = "tt";
  behavior += std::string(script.size(), 'b');
  ScriptedSource source(std::move(behavior), script);

  auto params = base_params();
  params.backoff.initial_ticks = 2;
  params.backoff.max_ticks = 16;
  FeedSupervisor supervisor(params, {{"flaky", ids, &source, ""}});
  supervisor.run();

  const FeedStats stats = supervisor.stats(0);
  EXPECT_EQ(stats.state, FeedState::kDone);
  EXPECT_EQ(stats.transient_failures, 2u);
  EXPECT_EQ(stats.retries_scheduled, 2u);
  EXPECT_EQ(stats.batches_accepted, script.size());

  std::vector<SupervisorEvent> retries;
  for (const auto& event : supervisor.events()) {
    if (event.kind == SupervisorEventKind::kRetryScheduled) {
      retries.push_back(event);
    }
  }
  ASSERT_EQ(retries.size(), 2u);
  // Delay = initial << (attempt-1), plus jitter in [0, delay/2] derived from
  // (jitter_seed, feed, attempt) — recomputable, never random.
  for (std::size_t i = 0; i < retries.size(); ++i) {
    const auto attempt = static_cast<std::size_t>(retries[i].a);
    EXPECT_EQ(attempt, i + 1);
    const std::int64_t base = params.backoff.initial_ticks
                              << (attempt - 1);
    const auto jitter = static_cast<std::int64_t>(
        icn::util::derive_seed(params.backoff.jitter_seed, 0, attempt) %
        static_cast<std::uint64_t>(base / 2 + 1));
    EXPECT_EQ(retries[i].b, base + jitter);
  }
}

TEST(FeedSupervisorTest, RetriesExhaustedQuarantinesButKeepsAcceptedData) {
  const std::vector<std::uint32_t> ids = {5};
  const auto sessions = probe_sessions(ids, 11);
  auto script = hourly_script(sessions, kHours);
  // Two good batches, then the probe dies for good.
  std::string behavior = "bb";
  behavior += std::string(20, 't');
  ScriptedSource source(std::move(behavior),
                        {script.begin(), script.begin() + 2});

  auto params = base_params();
  params.backoff.max_retries = 3;
  params.backoff.initial_ticks = 1;
  params.backoff.max_ticks = 2;
  FeedSupervisor supervisor(params, {{"dead", ids, &source, ""}});
  supervisor.run();

  const FeedStats stats = supervisor.stats(0);
  EXPECT_EQ(stats.state, FeedState::kQuarantined);
  EXPECT_EQ(stats.quarantine_reason, QuarantineReason::kRetriesExhausted);
  EXPECT_EQ(stats.transient_failures, params.backoff.max_retries + 1);
  EXPECT_EQ(stats.batches_accepted, 2u);
  EXPECT_EQ(stats.covered_hours, 2);
  // The two accepted hours survive into the merge; the rest is uncovered.
  const MergedStudy study = supervisor.merge();
  EXPECT_FALSE(study.coverage.complete());
  EXPECT_TRUE(study.coverage.covered(0, 0));
  EXPECT_TRUE(study.coverage.covered(0, 1));
  EXPECT_FALSE(study.coverage.covered(0, 2));
}

TEST(FeedSupervisorTest, RepeatedCorruptBatchesTripTheCircuitBreaker) {
  const std::vector<std::uint32_t> ids = {5};
  const auto sessions = probe_sessions(ids, 12);
  auto script = hourly_script(sessions, kHours);
  // Three distinct truncated deliveries (declared != records).
  std::vector<FeedBatch> bad;
  for (std::size_t i = 0; i < 3; ++i) {
    FeedBatch b = script[i];
    b.declared_records = b.records.size() + 4;
    bad.push_back(std::move(b));
  }
  ScriptedSource source("bbb", std::move(bad));

  auto params = base_params();
  params.corrupt_strikes = 3;
  FeedSupervisor supervisor(params, {{"corrupt", ids, &source, ""}});
  supervisor.run();

  const FeedStats stats = supervisor.stats(0);
  EXPECT_EQ(stats.state, FeedState::kQuarantined);
  EXPECT_EQ(stats.quarantine_reason, QuarantineReason::kCorruptData);
  EXPECT_EQ(stats.corrupt_batches, 3u);
  EXPECT_EQ(stats.batches_accepted, 0u);
}

TEST(FeedSupervisorTest, RedeliveredSequencesAreDroppedBeforeCounting) {
  const std::vector<std::uint32_t> ids = {5};
  const auto sessions = probe_sessions(ids, 13);
  auto script = hourly_script(sessions, kHours);
  // Every batch delivered twice.
  std::vector<FeedBatch> doubled;
  for (const auto& batch : script) {
    doubled.push_back(batch);
    doubled.push_back(batch);
  }
  ScriptedSource source(std::string(doubled.size(), 'b'), doubled);

  FeedSupervisor supervisor(base_params(), {{"dup", ids, &source, ""}});
  supervisor.run();

  const FeedStats stats = supervisor.stats(0);
  EXPECT_EQ(stats.state, FeedState::kDone);
  EXPECT_EQ(stats.duplicate_batches, script.size());
  EXPECT_EQ(stats.batches_accepted, script.size());

  // Totals count each batch exactly once.
  IngestParams ingest;
  ingest.antenna_ids = ids;
  ingest.num_services = kServices;
  ingest.num_hours = kHours;
  StreamIngestor check(ingest);
  for (const auto& batch : script) check.push(batch.records);
  check.finish();
  expect_matrices_equal(supervisor.merge().traffic, check.traffic_matrix());
}

TEST(FeedSupervisorTest, MergeConcatenatesFeedsInSpecOrder) {
  const std::vector<std::uint32_t> ids_a = {1, 2};
  const std::vector<std::uint32_t> ids_b = {7};
  const auto sessions_a = probe_sessions(ids_a, 21);
  const auto sessions_b = probe_sessions(ids_b, 22);
  VectorFeed feed_a{hourly_script(sessions_a, kHours)};
  VectorFeed feed_b{hourly_script(sessions_b, kHours)};

  FeedSupervisor supervisor(
      base_params(),
      {{"a", ids_a, &feed_a, ""}, {"b", ids_b, &feed_b, ""}});
  supervisor.run();
  const MergedStudy study = supervisor.merge();

  ASSERT_EQ(study.antenna_ids, (std::vector<std::uint32_t>{1, 2, 7}));
  ASSERT_EQ(study.traffic.rows(), 3u);
  EXPECT_TRUE(study.coverage.complete());

  IngestParams ingest;
  ingest.antenna_ids = ids_b;
  ingest.num_services = kServices;
  ingest.num_hours = kHours;
  StreamIngestor check_b(ingest);
  check_b.push(sessions_b);
  check_b.finish();
  const ml::Matrix totals_b = check_b.traffic_matrix();
  for (std::size_t j = 0; j < kServices; ++j) {
    ASSERT_EQ(study.traffic.at(2, j), totals_b.at(0, j));
  }
}

TEST(FeedSupervisorTest, DurableMergeMatchesLiveMerge) {
  const std::vector<std::uint32_t> ids_a = {1, 2};
  const std::vector<std::uint32_t> ids_b = {7, 9};
  VectorFeed feed_a{hourly_script(probe_sessions(ids_a, 31), kHours)};
  // Feed B dies after 5 accepted hours: its checkpoint gains a kCoverage
  // section and the durable merge must honor it.
  auto script_b = hourly_script(probe_sessions(ids_b, 32), kHours);
  std::string behavior_b(5, 'b');
  behavior_b += std::string(20, 't');
  ScriptedSource feed_b(std::move(behavior_b),
                        {script_b.begin(), script_b.begin() + 5});

  TempFile snap_a("durable_a.snap");
  TempFile snap_b("durable_b.snap");
  auto params = base_params();
  params.backoff.max_retries = 2;
  params.backoff.max_ticks = 2;
  FeedSupervisor supervisor(params, {{"a", ids_a, &feed_a, snap_a.path()},
                                     {"b", ids_b, &feed_b, snap_b.path()}});
  supervisor.run();
  EXPECT_EQ(supervisor.stats(1).state, FeedState::kQuarantined);

  const MergedStudy live = supervisor.merge();
  const std::vector<std::string> paths = {snap_a.path(), snap_b.path()};
  const MergedStudy durable = merge_snapshots(paths);

  ASSERT_EQ(durable.antenna_ids, live.antenna_ids);
  expect_matrices_equal(durable.traffic, live.traffic);
  EXPECT_EQ(durable.coverage, live.coverage);
  EXPECT_FALSE(durable.coverage.complete());

  // Round-trip through a merged snapshot preserves everything.
  TempFile merged("durable_merged.snap");
  write_merged_snapshot(durable, merged.path());
  const store::MappedSnapshot snapshot(merged.path());
  const auto matrix = snapshot.matrix();
  ASSERT_TRUE(matrix.has_value());
  expect_matrices_equal(matrix->to_matrix(), live.traffic);
  const auto cov = snapshot.coverage();
  ASSERT_TRUE(cov.has_value());
  EXPECT_EQ(cov->rows, live.coverage.rows());
}

TEST(FeedSupervisorTest, PreconditionsEnforced) {
  const std::vector<std::uint32_t> ids = {5};
  VectorFeed feed{hourly_script({}, kHours)};
  // Overlapping antenna ids across feeds.
  VectorFeed feed2{hourly_script({}, kHours)};
  EXPECT_THROW(FeedSupervisor(base_params(), {{"a", ids, &feed, ""},
                                              {"b", ids, &feed2, ""}}),
               icn::util::PreconditionError);
  // Null source, no feeds, merge before finished.
  EXPECT_THROW(FeedSupervisor(base_params(), {{"a", ids, nullptr, ""}}),
               icn::util::PreconditionError);
  EXPECT_THROW(FeedSupervisor(base_params(), {}),
               icn::util::PreconditionError);
  FeedSupervisor supervisor(base_params(), {{"a", ids, &feed, ""}});
  EXPECT_THROW((void)supervisor.merge(), icn::util::PreconditionError);
}

TEST(FeedSupervisorTest, TimeoutQuarantinesPendingFeeds) {
  const std::vector<std::uint32_t> ids = {5};
  // A feed that stalls forever.
  ScriptedSource source(std::string(1000, 's'), {});
  auto params = base_params();
  params.max_ticks = 20;
  FeedSupervisor supervisor(params, {{"hung", ids, &source, ""}});
  supervisor.run();
  const FeedStats stats = supervisor.stats(0);
  EXPECT_EQ(stats.state, FeedState::kQuarantined);
  EXPECT_EQ(stats.quarantine_reason, QuarantineReason::kTimeout);
  EXPECT_TRUE(supervisor.finished());
}

SupervisorParams quality_params(std::size_t shards = 1) {
  auto params = base_params(shards);
  params.quality.emplace();
  return params;
}

TEST(FeedSupervisorTest, QualityEngagedOnCleanFeedChangesNothing) {
  const std::vector<std::uint32_t> ids = {11, 22, 33};
  const auto sessions = probe_sessions(ids, 77);
  const auto script = hourly_script(sessions, kHours);

  TempFile plain_ckpt("plainq.snap");
  TempFile quality_ckpt("qualityq.snap");
  VectorFeed plain_feed{script};
  VectorFeed quality_feed{script};

  FeedSupervisor plain(base_params(),
                       {{"probe-0", ids, &plain_feed, plain_ckpt.path()}});
  plain.run();
  FeedSupervisor with_quality(
      quality_params(), {{"probe-0", ids, &quality_feed, quality_ckpt.path()}});
  with_quality.run();

  EXPECT_TRUE(with_quality.quarantine_ledger().entries().empty());
  EXPECT_EQ(with_quality.stats(0).records_rejected, 0u);
  EXPECT_EQ(with_quality.stats(0).records_repaired, 0u);
  // A clean feed's checkpoint carries no kQuarantine section: byte-identical.
  EXPECT_EQ(read_file(plain_ckpt.path()), read_file(quality_ckpt.path()));

  const MergedStudy a = plain.merge();
  const MergedStudy b = with_quality.merge();
  expect_matrices_equal(a.traffic, b.traffic);
  EXPECT_TRUE(a.coverage == b.coverage);
  EXPECT_TRUE(a.quarantine == b.quarantine);
  EXPECT_FALSE(b.quarantine.any());
}

TEST(FeedSupervisorTest, QualityRepairsAndRejectsPerRecord) {
  const std::vector<std::uint32_t> ids = {11, 22, 33};
  const auto sessions = probe_sessions(ids, 42);
  auto script = hourly_script(sessions, kHours);

  // Inject per-record defects into three batches:
  //  hour 2: record 0 sign-flipped (repairable), record 1 skewed (repairable)
  //  hour 5: record 0 unknown antenna (fatal)
  //  hour 9: every record out-of-alphabet service (fatal -> coverage gap)
  script[2].records[0].down_bytes = -script[2].records[0].down_bytes;
  script[2].records[1].hour = 3;
  script[5].records[0].antenna_id = 0x80000000u | ids[0];
  for (auto& r : script[9].records) r.service = kServices + 7;

  TempFile ckpt("quality_defects.snap");
  VectorFeed feed{script};
  FeedSupervisor supervisor(quality_params(),
                            {{"probe-0", ids, &feed, ckpt.path()}});
  supervisor.run();

  ASSERT_TRUE(supervisor.finished());
  const FeedStats stats = supervisor.stats(0);
  EXPECT_EQ(stats.state, FeedState::kDone);
  EXPECT_EQ(stats.corrupt_batches, 0u);  // Per-record, not per-batch, now.
  EXPECT_EQ(stats.records_repaired, 2u);
  EXPECT_EQ(stats.records_rejected, 1u + script[9].records.size());

  // Only the all-rejected hour loses coverage.
  const auto covered = supervisor.covered(0);
  EXPECT_EQ(covered[9], 0);
  EXPECT_EQ(covered[2], 1);
  EXPECT_EQ(covered[5], 1);

  // The ledger carries per-record provenance.
  const auto& entries = supervisor.quarantine_ledger().entries();
  ASSERT_GE(entries.size(), 3u);
  EXPECT_EQ(entries[0].hour, 2);
  EXPECT_EQ(entries[0].defect, icn::quality::Defect::kNegativeVolume);
  EXPECT_EQ(entries[1].defect, icn::quality::Defect::kClockSkew);
  EXPECT_EQ(entries[2].hour, 5);
  EXPECT_EQ(entries[2].defect, icn::quality::Defect::kUnknownAntenna);

  // The repaired records kept their (restored) traffic; the merged study
  // equals a clean ingest of the surviving+repaired record set.
  const MergedStudy study = supervisor.merge();
  EXPECT_EQ(study.quarantine.total_repaired(), 2u);
  EXPECT_EQ(study.quarantine.total_rejected(), 1u + script[9].records.size());
  EXPECT_EQ(study.quarantine.rejected_by_hour[9],
            static_cast<std::uint32_t>(script[9].records.size()));

  // Durable path agrees: the checkpoint's kQuarantine section round-trips
  // through merge_snapshots.
  const std::vector<std::string> paths = {ckpt.path()};
  const MergedStudy durable = merge_snapshots(paths);
  expect_matrices_equal(study.traffic, durable.traffic);
  EXPECT_TRUE(study.coverage == durable.coverage);
  EXPECT_TRUE(study.quarantine == durable.quarantine);

  // And a written merged snapshot preserves the quarantine counts.
  TempFile merged("quality_merged.snap");
  write_merged_snapshot(study, merged.path());
  const store::MappedSnapshot snap(merged.path());
  const auto quar = snap.quarantine();
  ASSERT_TRUE(quar.has_value());
  EXPECT_EQ(quar->rejected[9],
            static_cast<std::uint32_t>(script[9].records.size()));
}

TEST(FeedSupervisorTest, QualityRepairedRunMatchesCleanRunBitForBit) {
  // Repairable damage only (sign flips + clock skew): after repair the
  // record stream is bit-identical to the clean one, so windows, totals,
  // and checkpoint bytes must all converge on the clean run's.
  const std::vector<std::uint32_t> ids = {11, 22, 33};
  const auto sessions = probe_sessions(ids, 123);
  const auto clean_script = hourly_script(sessions, kHours);
  auto damaged_script = clean_script;
  damaged_script[1].records[0].up_bytes =
      -damaged_script[1].records[0].up_bytes;
  damaged_script[7].records[2].hour = 6;
  damaged_script[12].records[1].down_bytes =
      -damaged_script[12].records[1].down_bytes;

  TempFile clean_ckpt("repair_clean.snap");
  TempFile damaged_ckpt("repair_damaged.snap");
  VectorFeed clean_feed{clean_script};
  VectorFeed damaged_feed{damaged_script};

  FeedSupervisor clean(quality_params(),
                       {{"probe-0", ids, &clean_feed, clean_ckpt.path()}});
  clean.run();
  FeedSupervisor damaged(
      quality_params(), {{"probe-0", ids, &damaged_feed, damaged_ckpt.path()}});
  damaged.run();

  EXPECT_EQ(damaged.stats(0).records_repaired, 3u);
  expect_matrices_equal(clean.merge().traffic, damaged.merge().traffic);
  EXPECT_TRUE(clean.merge().coverage == damaged.merge().coverage);
  // The damaged checkpoint differs only by its kQuarantine section — windows
  // are byte-identical. Compare the common prefix (all windows).
  const auto clean_bytes = read_file(clean_ckpt.path());
  const auto damaged_bytes = read_file(damaged_ckpt.path());
  ASSERT_GT(damaged_bytes.size(), clean_bytes.size());
  EXPECT_TRUE(std::equal(clean_bytes.begin(), clean_bytes.end(),
                         damaged_bytes.begin()));
}

TEST(FeedSupervisorTest, ResumeConvergesOnUninterruptedRun) {
  const std::vector<std::uint32_t> ids_a = {11, 22};
  const std::vector<std::uint32_t> ids_b = {44};
  const auto script_a = hourly_script(probe_sessions(ids_a, 7), kHours);
  const auto script_b = hourly_script(probe_sessions(ids_b, 8), kHours);

  // Reference: uninterrupted run.
  TempFile ref_a("resume_ref_a.snap");
  TempFile ref_b("resume_ref_b.snap");
  VectorFeed ref_feed_a{script_a};
  VectorFeed ref_feed_b{script_b};
  FeedSupervisor reference(base_params(),
                           {{"probe-a", ids_a, &ref_feed_a, ref_a.path()},
                            {"probe-b", ids_b, &ref_feed_b, ref_b.path()}});
  reference.run();

  // Killed run: step part-way, then drop the supervisor (no seal).
  TempFile kill_a("resume_kill_a.snap");
  TempFile kill_b("resume_kill_b.snap");
  {
    VectorFeed feed_a{script_a};
    VectorFeed feed_b{script_b};
    FeedSupervisor doomed(base_params(),
                          {{"probe-a", ids_a, &feed_a, kill_a.path()},
                           {"probe-b", ids_b, &feed_b, kill_b.path()}});
    for (int i = 0; i < 9; ++i) doomed.step();
  }

  // Resume with fresh sources replaying from the start of each stream.
  VectorFeed replay_a{script_a};
  VectorFeed replay_b{script_b};
  FeedSupervisor resumed = FeedSupervisor::resume(
      base_params(), {{"probe-a", ids_a, &replay_a, kill_a.path()},
                      {"probe-b", ids_b, &replay_b, kill_b.path()}});
  resumed.run();

  ASSERT_TRUE(resumed.finished());
  const MergedStudy want = reference.merge();
  const MergedStudy got = resumed.merge();
  EXPECT_EQ(want.antenna_ids, got.antenna_ids);
  expect_matrices_equal(want.traffic, got.traffic);
  EXPECT_TRUE(want.coverage == got.coverage);
  // Checkpoint files converge byte-for-byte.
  EXPECT_EQ(read_file(ref_a.path()), read_file(kill_a.path()));
  EXPECT_EQ(read_file(ref_b.path()), read_file(kill_b.path()));
  // The resumed ingest actually skipped the durable prefix.
  EXPECT_GT(resumed.stats(0).batches_accepted, 0u);
}

TEST(FeedSupervisorTest, ResumeRegeneratesSealSectionsOfFinishedFeeds) {
  // A feed sealed with incomplete coverage + quarantined records before the
  // kill: resume must truncate and regenerate its kCoverage/kQuarantine
  // sections rather than duplicating them.
  const std::vector<std::uint32_t> ids = {11, 22};
  auto script = hourly_script(probe_sessions(ids, 9), kHours);
  for (auto& r : script[4].records) r.service = kServices + 1;  // Gap + logs.
  script[6].records[0].down_bytes = -script[6].records[0].down_bytes;

  TempFile ref("seal_ref.snap");
  VectorFeed ref_feed{script};
  FeedSupervisor reference(quality_params(),
                           {{"probe-0", ids, &ref_feed, ref.path()}});
  reference.run();

  // "Kill" after completion: the checkpoint is fully sealed. Resume anyway.
  TempFile sealed("seal_resume.snap");
  {
    VectorFeed feed{script};
    FeedSupervisor first(quality_params(),
                         {{"probe-0", ids, &feed, sealed.path()}});
    first.run();
  }
  VectorFeed replay{script};
  FeedSupervisor resumed = FeedSupervisor::resume(
      quality_params(), {{"probe-0", ids, &replay, sealed.path()}});
  resumed.run();

  EXPECT_EQ(read_file(ref.path()), read_file(sealed.path()));
  const MergedStudy want = reference.merge();
  const MergedStudy got = resumed.merge();
  expect_matrices_equal(want.traffic, got.traffic);
  EXPECT_TRUE(want.coverage == got.coverage);
  EXPECT_TRUE(want.quarantine == got.quarantine);
  EXPECT_TRUE(resumed.quarantine_ledger() == reference.quarantine_ledger());
}

}  // namespace
}  // namespace icn::stream
