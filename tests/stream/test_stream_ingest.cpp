// Streaming ingest: bit-identity with the batch aggregator at every shard
// and thread count, watermark/late-record semantics, and checkpoint
// crash-recovery (the killed-and-resumed ingest converges on the same
// snapshot an uninterrupted run produces).
#include "stream/ingest.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/forecast.h"
#include "probe/aggregate.h"
#include "util/error.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace icn::stream {
namespace {

using icn::probe::HourlyAggregator;
using icn::probe::ServiceSession;

constexpr std::size_t kServices = 4;
constexpr std::int64_t kHours = 12;
const std::vector<std::uint32_t> kIds = {2, 5, 11, 17, 23, 42};

class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(::testing::TempDir() + "icn_ingest_" +
              std::to_string(::getpid()) + "_" + name) {
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Deterministic sessions for one hour; a few carry an untracked antenna.
std::vector<ServiceSession> hour_sessions(std::int64_t hour,
                                          std::uint64_t seed,
                                          std::size_t count = 48) {
  icn::util::Rng rng(seed ^ static_cast<std::uint64_t>(hour * 2654435761u));
  std::vector<ServiceSession> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    ServiceSession s;
    const bool untracked = rng.uniform() < 0.05;
    s.antenna_id = untracked
                       ? 999u
                       : kIds[rng.uniform_index(kIds.size())];
    s.service = rng.uniform_index(kServices);
    s.hour = hour;
    s.down_bytes = rng.uniform(1.0e3, 8.0e6);
    s.up_bytes = rng.uniform(1.0e2, 1.0e6);
    out.push_back(s);
  }
  return out;
}

std::vector<ServiceSession> full_stream(std::uint64_t seed) {
  std::vector<ServiceSession> all;
  for (std::int64_t h = 0; h < kHours; ++h) {
    const auto batch = hour_sessions(h, seed);
    all.insert(all.end(), batch.begin(), batch.end());
  }
  return all;
}

IngestParams base_params(std::size_t shards,
                         std::int64_t lateness = 0) {
  IngestParams params;
  params.antenna_ids = kIds;
  params.num_services = kServices;
  params.num_hours = kHours;
  params.num_shards = shards;
  params.allowed_lateness = lateness;
  return params;
}

void expect_matrices_equal(const ml::Matrix& a, const ml::Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    ASSERT_EQ(a.data()[i], b.data()[i]) << "slot " << i;
  }
}

TEST(StreamIngestTest, HourlyTensorsBitIdenticalToBatchAtEveryShardCount) {
  const auto stream = full_stream(2023);
  HourlyAggregator batch(kIds, kServices, kHours);
  batch.add_all(stream);

  for (const std::size_t shards : {1u, 2u, 8u}) {
    StreamIngestor ingest(base_params(shards));
    for (std::int64_t h = 0; h < kHours; ++h) {
      ingest.push(hour_sessions(h, 2023));
    }
    ingest.finish();
    EXPECT_EQ(ingest.untracked_dropped(), batch.dropped())
        << shards << " shards";
    EXPECT_EQ(ingest.late_dropped(), 0u);

    // Totals match the batch T matrix bit for bit.
    expect_matrices_equal(ingest.traffic_matrix(), batch.traffic_matrix());

    // And every closed hourly window matches the batch per-hour series.
    const auto windows = ingest.take_closed();
    ASSERT_EQ(windows.size(), static_cast<std::size_t>(kHours))
        << shards << " shards";
    for (const auto& window : windows) {
      for (std::size_t r = 0; r < kIds.size(); ++r) {
        for (std::size_t s = 0; s < kServices; ++s) {
          const auto series = batch.series(kIds[r], s);
          ASSERT_EQ(window.cells[r * kServices + s],
                    series[static_cast<std::size_t>(window.hour)])
              << "shards " << shards << " hour " << window.hour << " row "
              << r << " service " << s;
        }
      }
    }
  }
}

TEST(StreamIngestTest, ThreadCountDoesNotChangeBits) {
  auto run = [](std::size_t threads) {
    icn::util::ThreadPool::ScopedOverride pool(threads);
    StreamIngestor ingest(base_params(8));
    for (std::int64_t h = 0; h < kHours; ++h) {
      ingest.push(hour_sessions(h, 77));
    }
    ingest.finish();
    return ingest.take_closed();
  };
  const auto serial = run(1);
  const auto threaded = run(8);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t w = 0; w < serial.size(); ++w) {
    ASSERT_EQ(serial[w].hour, threaded[w].hour);
    ASSERT_EQ(serial[w].cells.size(), threaded[w].cells.size());
    for (std::size_t i = 0; i < serial[w].cells.size(); ++i) {
      ASSERT_EQ(serial[w].cells[i], threaded[w].cells[i])
          << "window " << w << " slot " << i;
    }
  }
}

TEST(StreamIngestTest, OutOfOrderStreamWithFullLatenessMatchesBatch) {
  // Shuffle the whole study and push it in fixed-size batches: with the
  // lateness bound covering the horizon nothing is dropped, and the per-key
  // arrival order still fixes every sum.
  auto stream = full_stream(555);
  icn::util::Rng rng(99);
  for (std::size_t i = stream.size(); i > 1; --i) {
    std::swap(stream[i - 1], stream[rng.uniform_index(i)]);
  }
  HourlyAggregator batch(kIds, kServices, kHours);
  batch.add_all(stream);

  for (const std::size_t shards : {1u, 3u, 8u}) {
    StreamIngestor ingest(base_params(shards, kHours));
    for (std::size_t at = 0; at < stream.size(); at += 37) {
      const std::size_t n = std::min<std::size_t>(37, stream.size() - at);
      ingest.push({stream.data() + at, n});
    }
    ingest.finish();
    EXPECT_EQ(ingest.late_dropped(), 0u);
    expect_matrices_equal(ingest.traffic_matrix(), batch.traffic_matrix());
  }
}

TEST(StreamIngestTest, WatermarkClosesWindowsAndCountsLateRecords) {
  StreamIngestor ingest(base_params(2));
  ingest.push(hour_sessions(0, 1));
  EXPECT_EQ(ingest.watermark(), 0);
  EXPECT_TRUE(ingest.take_closed().empty());  // nothing past the watermark

  ingest.push(hour_sessions(1, 1));
  EXPECT_EQ(ingest.watermark(), 1);
  auto closed = ingest.take_closed();
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].hour, 0);

  // A straggler for the closed hour 0 is counted and dropped.
  const ml::Matrix before = ingest.traffic_matrix();
  ingest.push(hour_sessions(0, 2, 5));
  EXPECT_EQ(ingest.late_dropped(), 5u);
  expect_matrices_equal(ingest.traffic_matrix(), before);

  ingest.finish();
  closed = ingest.take_closed();
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].hour, 1);
}

TEST(StreamIngestTest, AllowedLatenessKeepsRecentWindowsOpen) {
  StreamIngestor ingest(base_params(2, /*lateness=*/1));
  ingest.push(hour_sessions(0, 3));
  ingest.push(hour_sessions(1, 3));
  ingest.push(hour_sessions(2, 3));
  // Watermark 2, lateness 1: only hour 0 is closed; hour 1 still accepts.
  auto closed = ingest.take_closed();
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].hour, 0);
  ingest.push(hour_sessions(1, 4, 7));
  EXPECT_EQ(ingest.late_dropped(), 0u);
  ingest.push(hour_sessions(0, 4, 3));  // behind the closing bound
  EXPECT_EQ(ingest.late_dropped(), 3u);
  ingest.finish();
}

TEST(StreamIngestTest, QuietHoursEmitNoWindows) {
  StreamIngestor ingest(base_params(4));
  ingest.push(hour_sessions(2, 8));
  ingest.push(hour_sessions(9, 8));
  ingest.finish();
  const auto windows = ingest.take_closed();
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].hour, 2);
  EXPECT_EQ(windows[1].hour, 9);
}

TEST(StreamIngestTest, PreconditionsEnforced) {
  {
    StreamIngestor ingest(base_params(2));
    ServiceSession bad;
    bad.antenna_id = kIds[0];
    bad.hour = kHours;  // out of range
    EXPECT_THROW(ingest.push({&bad, 1}), icn::util::PreconditionError);
  }
  {
    StreamIngestor ingest(base_params(2));
    ServiceSession bad;
    bad.antenna_id = kIds[0];
    bad.service = kServices;  // out of range
    bad.hour = 0;
    EXPECT_THROW(ingest.push({&bad, 1}), icn::util::PreconditionError);
  }
  {
    StreamIngestor ingest(base_params(2));
    ingest.push(hour_sessions(0, 5));
    EXPECT_THROW(ingest.resume_before(1), icn::util::PreconditionError);
    ingest.finish();
    const auto batch = hour_sessions(1, 5);
    EXPECT_THROW(ingest.push(batch), icn::util::PreconditionError);
  }
  EXPECT_THROW(StreamIngestor(base_params(0)), icn::util::PreconditionError);
}

TEST(StreamIngestTest, PushAfterFinishIsRejectedWithoutSideEffects) {
  StreamIngestor ingest(base_params(2));
  ingest.push(hour_sessions(0, 11));
  ingest.finish();
  const ml::Matrix before = ingest.traffic_matrix();
  EXPECT_THROW(ingest.push(hour_sessions(1, 11)),
               icn::util::PreconditionError);
  // The rejected push must not have leaked anything into the totals.
  expect_matrices_equal(ingest.traffic_matrix(), before);
  EXPECT_TRUE(ingest.finished());
}

TEST(StreamIngestTest, ResumeBeforeAfterFirstPushIsRejected) {
  StreamIngestor ingest(base_params(1));
  ingest.push(hour_sessions(0, 12));
  EXPECT_THROW(ingest.resume_before(3), icn::util::PreconditionError);
  // An empty batch still counts as "started": the resume horizon must be
  // fixed before any stream contact.
  StreamIngestor touched(base_params(1));
  touched.push({});
  EXPECT_THROW(touched.resume_before(3), icn::util::PreconditionError);
}

TEST(StreamIngestTest, AddWindowCellsRejectsShapeMismatch) {
  ml::Matrix totals(kIds.size(), kServices);
  const std::vector<double> short_cells(kIds.size() * kServices - 1, 1.0);
  EXPECT_THROW(add_window_cells(totals, short_cells),
               icn::util::PreconditionError);
  const std::vector<double> long_cells(kIds.size() * kServices + 1, 1.0);
  EXPECT_THROW(add_window_cells(totals, long_cells),
               icn::util::PreconditionError);
  const std::vector<double> good(kIds.size() * kServices, 2.0);
  add_window_cells(totals, good);
  EXPECT_EQ(totals.at(0, 0), 2.0);
}

TEST(StreamCheckpointTest, KilledIngestResumesFromLastDurableWindow) {
  const std::uint64_t seed = 4242;

  // Reference: one uninterrupted checkpointed run.
  TempFile reference("reference.snap");
  {
    auto writer = begin_checkpoint(reference.path(), base_params(2));
    StreamIngestor ingest(base_params(2), &writer);
    for (std::int64_t h = 0; h < kHours; ++h) {
      ingest.push(hour_sessions(h, seed));
    }
    ingest.finish();
  }

  // Crashed run: ingest dies after pushing hour 6 (windows 0..5 durable),
  // leaving a torn half-written section at the tail of the checkpoint.
  TempFile crashed("crashed.snap");
  {
    auto writer = begin_checkpoint(crashed.path(), base_params(2));
    StreamIngestor ingest(base_params(2), &writer);
    for (std::int64_t h = 0; h <= 6; ++h) {
      ingest.push(hour_sessions(h, seed));
    }
  }
  {
    // Kill: open windows in memory are lost and a half-written section sits
    // at the tail of the checkpoint file.
    std::ofstream torn(crashed.path(), std::ios::binary | std::ios::app);
    const std::vector<char> garbage(13, 0x5C);
    torn.write(garbage.data(), static_cast<std::streamsize>(garbage.size()));
  }
  {
    const auto info = recover_checkpoint(crashed.path());
    EXPECT_TRUE(info.recovery.truncated);
    EXPECT_EQ(info.first_open_hour, 6);

    // Resume: replay the source stream; durable windows are skipped, the
    // rest are re-accumulated and appended.
    auto writer = store::SnapshotWriter::append_to(crashed.path());
    StreamIngestor ingest(base_params(2), &writer);
    ingest.resume_before(info.first_open_hour);
    for (std::int64_t h = 0; h < kHours; ++h) {
      ingest.push(hour_sessions(h, seed));
    }
    ingest.finish();
    EXPECT_GT(ingest.already_durable(), 0u);
  }

  // The resumed checkpoint is bit-identical to the uninterrupted one.
  const store::MappedSnapshot a(reference.path());
  const store::MappedSnapshot b(crashed.path());
  const auto wa = a.windows();
  const auto wb = b.windows();
  ASSERT_EQ(wa.size(), wb.size());
  for (std::size_t i = 0; i < wa.size(); ++i) {
    ASSERT_EQ(wa[i].hour, wb[i].hour);
    ASSERT_EQ(wa[i].cells.size(), wb[i].cells.size());
    for (std::size_t j = 0; j < wa[i].cells.size(); ++j) {
      ASSERT_EQ(wa[i].cells[j], wb[i].cells[j])
          << "window " << wa[i].hour << " slot " << j;
    }
  }
  expect_matrices_equal(totals_from_snapshot(a), totals_from_snapshot(b));

  // And both equal the batch aggregator over the same stream.
  HourlyAggregator batch(kIds, kServices, kHours);
  batch.add_all(full_stream(seed));
  expect_matrices_equal(totals_from_snapshot(a), batch.traffic_matrix());
}

TEST(StreamCheckpointTest, ForecastFromSnapshotIsBitIdentical) {
  // The operational loop: forecast next-day demand from the durable windows
  // rather than the in-memory ones — outputs must not change.
  const std::uint64_t seed = 31337;
  TempFile file("forecast.snap");
  auto writer = begin_checkpoint(file.path(), base_params(4));
  StreamIngestor ingest(base_params(4), &writer);
  for (std::int64_t h = 0; h < kHours; ++h) {
    ingest.push(hour_sessions(h, seed));
  }
  ingest.finish();
  const auto live_windows = ingest.take_closed();
  writer.close();

  const store::MappedSnapshot snapshot(file.path());
  const auto stored_windows = snapshot.windows();
  ASSERT_EQ(stored_windows.size(), live_windows.size());

  // Hourly series of antenna row 0, service 0, from both sources.
  auto series_of = [](const auto& windows) {
    std::vector<double> series(static_cast<std::size_t>(kHours), 0.0);
    for (const auto& w : windows) {
      series[static_cast<std::size_t>(w.hour)] = w.cells[0 * kServices + 0];
    }
    return series;
  };
  const auto live = series_of(live_windows);
  const auto stored = series_of(stored_windows);
  ASSERT_EQ(live, stored);

  icn::core::SeasonalForecaster a, b;
  a.fit(live, /*season_hours=*/4);
  b.fit(stored, /*season_hours=*/4);
  const auto fa = a.forecast(8);
  const auto fb = b.forecast(8);
  ASSERT_EQ(fa, fb);
}

}  // namespace
}  // namespace icn::stream
