#include "util/ascii.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.h"

namespace icn::util {
namespace {

TEST(RenderHistogramTest, BarsScaleWithCounts) {
  Histogram h;
  h.lo = 0.0;
  h.hi = 2.0;
  h.counts = {1, 4};
  const std::string out = render_histogram(h, 8);
  // Two lines, the second bar 8 hashes, the first 2.
  const auto first_line_end = out.find('\n');
  const std::string first = out.substr(0, first_line_end);
  const std::string second = out.substr(first_line_end + 1);
  EXPECT_EQ(std::count(first.begin(), first.end(), '#'), 2);
  EXPECT_EQ(std::count(second.begin(), second.end(), '#'), 8);
}

TEST(RenderBarTest, Proportional) {
  EXPECT_EQ(render_bar(5.0, 10.0, 10), "#####");
  EXPECT_EQ(render_bar(20.0, 10.0, 10).size(), 10u);  // clamped
  EXPECT_EQ(render_bar(1.0, 0.0, 10), "");
}

TEST(RenderHeatmapTest, ShapeAndRamp) {
  const std::vector<double> values = {0.0, 1.0, 0.5, 0.0};
  const std::string out = render_heatmap(values, 2, 2, 0.0, 1.0);
  const auto nl = out.find('\n');
  EXPECT_EQ(nl, 2u);  // two columns per row
  EXPECT_EQ(out[0], ' ');   // min of ramp
  EXPECT_EQ(out[1], '@');   // max of ramp
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
}

TEST(RenderHeatmapTest, RejectsShapeMismatch) {
  const std::vector<double> values = {1.0, 2.0, 3.0};
  EXPECT_THROW(render_heatmap(values, 2, 2, 0.0, 1.0), PreconditionError);
}

TEST(RenderHeatmapTest, DegenerateRangeRendersLow) {
  const std::vector<double> values = {5.0, 5.0};
  const std::string out = render_heatmap(values, 1, 2, 5.0, 5.0);
  EXPECT_EQ(out[0], ' ');
}

TEST(RenderSignedHeatmapTest, DirectionalGlyphs) {
  const std::vector<double> values = {-1.0, -0.05, 0.05, 1.0};
  const std::string out = render_signed_heatmap(values, 1, 4);
  EXPECT_EQ(out[0], '@');  // strong under-utilization
  EXPECT_EQ(out[1], '.');  // neutral band
  EXPECT_EQ(out[2], '.');
  EXPECT_EQ(out[3], '@');  // strong over-utilization
}

TEST(RenderSignedHeatmapTest, ClampsOutOfRange) {
  const std::vector<double> values = {-5.0, 5.0};
  const std::string out = render_signed_heatmap(values, 1, 2);
  EXPECT_EQ(out[0], '@');
  EXPECT_EQ(out[1], '@');
}

TEST(RenderSankeyTest, ProportionalFlows) {
  std::vector<SankeyFlow> flows = {
      {"c0", "Metro", 90.0},
      {"c0", "Train", 10.0},
  };
  const std::string out = render_sankey(flows, 0.0);
  EXPECT_NE(out.find("c0"), std::string::npos);
  EXPECT_NE(out.find("Metro"), std::string::npos);
  EXPECT_NE(out.find("(90.0%)"), std::string::npos);
  EXPECT_NE(out.find("(10.0%)"), std::string::npos);
}

TEST(RenderSankeyTest, MergesSmallFlowsIntoOther) {
  std::vector<SankeyFlow> flows = {
      {"c0", "Metro", 99.5},
      {"c0", "Hotel", 0.25},
      {"c0", "Expo", 0.25},
  };
  const std::string out = render_sankey(flows, 0.01);
  EXPECT_EQ(out.find("Hotel"), std::string::npos);
  EXPECT_NE(out.find("(other)"), std::string::npos);
}

TEST(RenderSankeyTest, EmptyAndInvalid) {
  EXPECT_TRUE(render_sankey({}).empty());
  std::vector<SankeyFlow> negative = {{"a", "b", -1.0}};
  EXPECT_THROW(render_sankey(negative), PreconditionError);
}

TEST(RenderSparklineTest, UsesFullRamp) {
  const std::vector<double> values = {0.0, 1.0};
  const std::string out = render_sparkline(values);
  EXPECT_EQ(out.substr(0, 3), "▁");
  EXPECT_EQ(out.substr(out.size() - 3), "█");
  EXPECT_TRUE(render_sparkline({}).empty());
}

}  // namespace
}  // namespace icn::util
