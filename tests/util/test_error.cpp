#include "util/error.h"

#include <gtest/gtest.h>

#include <string>

namespace icn::util {
namespace {

TEST(RequireTest, PassingConditionIsSilent) {
  EXPECT_NO_THROW(ICN_REQUIRE(1 + 1 == 2, "math"));
}

TEST(RequireTest, FailingConditionThrowsPreconditionError) {
  EXPECT_THROW(ICN_REQUIRE(false, "always fails"), PreconditionError);
}

TEST(RequireTest, MessageCarriesExpressionAndContext) {
  try {
    ICN_REQUIRE(2 > 3, "impossible comparison");
    FAIL() << "should have thrown";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 > 3"), std::string::npos);
    EXPECT_NE(what.find("impossible comparison"), std::string::npos);
    EXPECT_NE(what.find("test_error.cpp"), std::string::npos);
  }
}

TEST(RequireTest, IsAnInvalidArgument) {
  // Callers may catch the standard hierarchy.
  EXPECT_THROW(ICN_REQUIRE(false, ""), std::invalid_argument);
}

TEST(RequireTest, ConditionEvaluatedOnce) {
  int calls = 0;
  auto count = [&]() {
    ++calls;
    return true;
  };
  ICN_REQUIRE(count(), "side effect");
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace icn::util
