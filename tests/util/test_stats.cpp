#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/error.h"

namespace icn::util {
namespace {

TEST(StatsTest, MeanBasics) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_THROW(mean(std::vector<double>{}), PreconditionError);
}

TEST(StatsTest, VariancePopulation) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(variance(xs), 4.0);
}

TEST(StatsTest, StddevSample) {
  const std::vector<double> xs = {2.0, 4.0, 6.0};
  EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{5.0}), 0.0);
}

TEST(StatsTest, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4.0, 1.0, 3.0, 2.0}), 2.5);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{7.0}), 7.0);
}

TEST(StatsTest, QuantileInterpolation) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 10.0);
  EXPECT_THROW(quantile(xs, 1.5), PreconditionError);
}

TEST(StatsTest, QuantileIgnoresInputOrder) {
  const std::vector<double> a = {5.0, 1.0, 3.0, 2.0, 4.0};
  const std::vector<double> b = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(quantile(a, 0.5), quantile(b, 0.5));
  EXPECT_DOUBLE_EQ(quantile(a, 0.9), quantile(b, 0.9));
}

TEST(StatsTest, MinMax) {
  const std::vector<double> xs = {3.0, -1.0, 5.0};
  EXPECT_DOUBLE_EQ(min_value(xs), -1.0);
  EXPECT_DOUBLE_EQ(max_value(xs), 5.0);
}

TEST(StatsTest, KahanSumIsAccurate) {
  // 1 + 1e-16 repeated: naive summation loses the small terms.
  std::vector<double> xs(10000001, 1e-16);
  xs[0] = 1.0;
  EXPECT_NEAR(sum(xs), 1.0 + 1e-9, 1e-15);
}

TEST(StatsTest, PearsonPerfectCorrelation) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  const std::vector<double> ys = {2.0, 4.0, 6.0};
  const std::vector<double> zs = {6.0, 4.0, 2.0};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  EXPECT_NEAR(pearson(xs, zs), -1.0, 1e-12);
}

TEST(StatsTest, PearsonConstantSideIsZero) {
  const std::vector<double> xs = {1.0, 1.0, 1.0};
  const std::vector<double> ys = {2.0, 4.0, 6.0};
  EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
}

TEST(HistogramTest, CountsAndClamping) {
  const std::vector<double> xs = {-1.0, 0.1, 0.5, 0.9, 2.0};
  const Histogram h = make_histogram(xs, 0.0, 1.0, 2);
  ASSERT_EQ(h.counts.size(), 2u);
  // -1 clamps into bin 0; 2.0 clamps into bin 1; 0.5 goes to bin 1.
  EXPECT_EQ(h.counts[0], 2u);
  EXPECT_EQ(h.counts[1], 3u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_width(), 0.5);
  EXPECT_DOUBLE_EQ(h.bin_left(1), 0.5);
}

TEST(HistogramTest, RejectsBadParameters) {
  const std::vector<double> xs = {1.0};
  EXPECT_THROW(make_histogram(xs, 0.0, 1.0, 0), PreconditionError);
  EXPECT_THROW(make_histogram(xs, 1.0, 1.0, 4), PreconditionError);
}

TEST(NormalizeTest, ByMax) {
  const std::vector<double> xs = {1.0, 2.0, 4.0};
  const auto out = normalize_by_max(xs);
  EXPECT_DOUBLE_EQ(out[0], 0.25);
  EXPECT_DOUBLE_EQ(out[2], 1.0);
}

TEST(NormalizeTest, AllZeroStaysZero) {
  const std::vector<double> xs = {0.0, 0.0};
  const auto out = normalize_by_max(xs);
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 0.0);
}

TEST(AriTest, IdenticalPartitionsScoreOne) {
  const std::vector<int> a = {0, 0, 1, 1, 2, 2};
  EXPECT_DOUBLE_EQ(adjusted_rand_index(a, a), 1.0);
}

TEST(AriTest, RelabeledPartitionsScoreOne) {
  const std::vector<int> a = {0, 0, 1, 1, 2, 2};
  const std::vector<int> b = {5, 5, 3, 3, 9, 9};
  EXPECT_DOUBLE_EQ(adjusted_rand_index(a, b), 1.0);
}

TEST(AriTest, IndependentPartitionsScoreNearZero) {
  // A checkerboard split against a half split.
  std::vector<int> a(40), b(40);
  for (int i = 0; i < 40; ++i) {
    a[static_cast<std::size_t>(i)] = i % 2;
    b[static_cast<std::size_t>(i)] = i < 20 ? 0 : 1;
  }
  EXPECT_NEAR(adjusted_rand_index(a, b), 0.0, 0.06);
}

TEST(AriTest, RejectsSizeMismatch) {
  const std::vector<int> a = {0, 1};
  const std::vector<int> b = {0};
  EXPECT_THROW(adjusted_rand_index(a, b), PreconditionError);
}

}  // namespace
}  // namespace icn::util
