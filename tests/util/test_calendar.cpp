#include "util/calendar.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace icn::util {
namespace {

TEST(DateTest, EpochIsZero) {
  EXPECT_EQ((Date{1970, 1, 1}).days_since_epoch(), 0);
}

TEST(DateTest, KnownOffsets) {
  EXPECT_EQ((Date{1970, 1, 2}).days_since_epoch(), 1);
  EXPECT_EQ((Date{1969, 12, 31}).days_since_epoch(), -1);
  EXPECT_EQ((Date{2000, 3, 1}).days_since_epoch(), 11017);
}

TEST(DateTest, RoundTripAcrossYears) {
  for (std::int64_t d = -1000; d <= 30000; d += 37) {
    const Date date = Date::from_days_since_epoch(d);
    EXPECT_EQ(date.days_since_epoch(), d);
    EXPECT_TRUE(date.is_valid());
  }
}

TEST(DateTest, WeekdayKnownDates) {
  EXPECT_EQ((Date{1970, 1, 1}).weekday(), Weekday::kThursday);
  // The study starts Monday 21 Nov 2022.
  EXPECT_EQ((Date{2022, 11, 21}).weekday(), Weekday::kMonday);
  // The strike day, 19 Jan 2023, was a Thursday.
  EXPECT_EQ((Date{2023, 1, 19}).weekday(), Weekday::kThursday);
  // The paper's example weekends: 7-8 and 14-15 Jan 2023.
  EXPECT_EQ((Date{2023, 1, 7}).weekday(), Weekday::kSaturday);
  EXPECT_EQ((Date{2023, 1, 8}).weekday(), Weekday::kSunday);
  EXPECT_EQ((Date{2023, 1, 14}).weekday(), Weekday::kSaturday);
  EXPECT_EQ((Date{2023, 1, 15}).weekday(), Weekday::kSunday);
}

TEST(DateTest, LeapYearValidity) {
  EXPECT_TRUE((Date{2020, 2, 29}).is_valid());
  EXPECT_FALSE((Date{2021, 2, 29}).is_valid());
  EXPECT_TRUE((Date{2000, 2, 29}).is_valid());   // divisible by 400
  EXPECT_FALSE((Date{1900, 2, 29}).is_valid());  // century, not by 400
  EXPECT_FALSE((Date{2022, 13, 1}).is_valid());
  EXPECT_FALSE((Date{2022, 4, 31}).is_valid());
}

TEST(DateTest, PlusDaysCrossesMonthAndYear) {
  EXPECT_EQ((Date{2022, 12, 31}).plus_days(1), (Date{2023, 1, 1}));
  EXPECT_EQ((Date{2023, 1, 1}).plus_days(-1), (Date{2022, 12, 31}));
  EXPECT_EQ((Date{2022, 11, 21}).plus_days(64), (Date{2023, 1, 24}));
}

TEST(DateTest, ToStringFormat) {
  EXPECT_EQ((Date{2023, 1, 4}).to_string(), "2023-01-04");
}

TEST(WeekdayTest, WeekendDetection) {
  EXPECT_TRUE(is_weekend(Weekday::kSaturday));
  EXPECT_TRUE(is_weekend(Weekday::kSunday));
  EXPECT_FALSE(is_weekend(Weekday::kMonday));
  EXPECT_FALSE(is_weekend(Weekday::kFriday));
}

TEST(WeekdayTest, Names) {
  EXPECT_STREQ(weekday_name(Weekday::kMonday), "Mon");
  EXPECT_STREQ(weekday_name(Weekday::kSunday), "Sun");
}

TEST(DaysBetweenTest, Directional) {
  EXPECT_EQ(days_between(Date{2023, 1, 1}, Date{2023, 1, 11}), 10);
  EXPECT_EQ(days_between(Date{2023, 1, 11}, Date{2023, 1, 1}), -10);
}

TEST(DateRangeTest, StudyPeriodShape) {
  const DateRange period = study_period();
  // 21 Nov 2022 -> 24 Jan 2023 inclusive = 65 days.
  EXPECT_EQ(period.num_days(), 65);
  EXPECT_EQ(period.num_hours(), 65 * 24);
  EXPECT_EQ(period.date_at(0), (Date{2022, 11, 21}));
  EXPECT_EQ(period.date_at(64), (Date{2023, 1, 24}));
}

TEST(DateRangeTest, TemporalWindowShape) {
  const DateRange window = temporal_window();
  EXPECT_EQ(window.num_days(), 21);
  EXPECT_EQ(window.first(), (Date{2023, 1, 4}));
}

TEST(DateRangeTest, StrikeDayInsideBothRanges) {
  EXPECT_TRUE(study_period().contains(strike_day()));
  EXPECT_TRUE(temporal_window().contains(strike_day()));
}

TEST(DateRangeTest, HourIndexing) {
  const DateRange period = study_period();
  EXPECT_EQ(period.day_of_hour(0), 0);
  EXPECT_EQ(period.hour_of_day(0), 0);
  EXPECT_EQ(period.day_of_hour(25), 1);
  EXPECT_EQ(period.hour_of_day(25), 1);
  EXPECT_EQ(period.hour_of_day(period.num_hours() - 1), 23);
  EXPECT_THROW(period.day_of_hour(period.num_hours()), PreconditionError);
  EXPECT_THROW(period.hour_of_day(-1), PreconditionError);
}

TEST(DateRangeTest, IndexOfAndContains) {
  const DateRange period = study_period();
  EXPECT_EQ(period.index_of(Date{2022, 11, 21}), 0);
  EXPECT_EQ(period.index_of(Date{2023, 1, 19}), 59);
  EXPECT_FALSE(period.contains(Date{2023, 1, 25}));
  EXPECT_THROW(period.index_of(Date{2023, 2, 1}), PreconditionError);
}

TEST(DateRangeTest, RejectsInvertedRange) {
  EXPECT_THROW(DateRange(Date{2023, 1, 2}, Date{2023, 1, 1}),
               PreconditionError);
}

TEST(DateRangeTest, WeekdayAtMatchesDate) {
  const DateRange period = study_period();
  for (std::int64_t d = 0; d < period.num_days(); ++d) {
    EXPECT_EQ(period.weekday_at(d), period.date_at(d).weekday());
  }
}

}  // namespace
}  // namespace icn::util
