#include "util/image.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "util/error.h"

namespace icn::util {
namespace {

TEST(PgmTest, HeaderAndPayload) {
  const std::vector<double> values = {0.0, 0.5, 1.0, 0.25};
  std::ostringstream out;
  write_pgm(out, values, 2, 2, 0.0, 1.0);
  const std::string s = out.str();
  EXPECT_EQ(s.substr(0, 3), "P5\n");
  EXPECT_NE(s.find("2 2\n255\n"), std::string::npos);
  // Payload: 4 bytes after the header.
  const auto header_end = s.find("255\n") + 4;
  ASSERT_EQ(s.size() - header_end, 4u);
  const auto px = [&](std::size_t i) {
    return static_cast<unsigned char>(s[header_end + i]);
  };
  EXPECT_EQ(px(0), 0);
  EXPECT_EQ(px(1), 128);  // 0.5 * 255 rounded
  EXPECT_EQ(px(2), 255);
  EXPECT_EQ(px(3), 64);
}

TEST(PgmTest, ClampsOutOfRange) {
  const std::vector<double> values = {-10.0, 10.0};
  std::ostringstream out;
  write_pgm(out, values, 1, 2, 0.0, 1.0);
  const std::string s = out.str();
  const auto header_end = s.find("255\n") + 4;
  EXPECT_EQ(static_cast<unsigned char>(s[header_end]), 0);
  EXPECT_EQ(static_cast<unsigned char>(s[header_end + 1]), 255);
}

TEST(PgmTest, ValidatesInput) {
  const std::vector<double> values = {1.0, 2.0};
  std::ostringstream out;
  EXPECT_THROW(write_pgm(out, values, 2, 2, 0.0, 1.0), PreconditionError);
  EXPECT_THROW(write_pgm(out, values, 0, 2, 0.0, 1.0), PreconditionError);
  EXPECT_THROW(write_pgm(out, values, 1, 2, 1.0, 1.0), PreconditionError);
}

TEST(PgmTest, FileRoundTrip) {
  const std::vector<double> values = {0.0, 1.0, 0.5, 0.5};
  const std::string path = ::testing::TempDir() + "/icn_test.pgm";
  ASSERT_TRUE(write_pgm_file(path, values, 2, 2, 0.0, 1.0));
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::string magic;
  in >> magic;
  EXPECT_EQ(magic, "P5");
}

TEST(PgmTest, UnwritablePathReturnsFalse) {
  const std::vector<double> values = {0.0};
  EXPECT_FALSE(write_pgm_file("/nonexistent-dir/x.pgm", values, 1, 1, 0.0,
                              1.0));
}

}  // namespace
}  // namespace icn::util
