#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.h"

namespace icn::util {
namespace {

TEST(TextTableTest, AlignsColumns) {
  TextTable t({"name", "count"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "23"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("name    count"), std::string::npos);
  EXPECT_NE(out.find("a           1"), std::string::npos);
  EXPECT_NE(out.find("longer     23"), std::string::npos);
}

TEST(TextTableTest, PadsMissingCells) {
  TextTable t({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_NO_THROW(t.to_string());
}

TEST(TextTableTest, RejectsTooWideRow) {
  TextTable t({"a"});
  EXPECT_THROW(t.add_row({"1", "2"}), PreconditionError);
}

TEST(TextTableTest, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable({}), PreconditionError);
}

TEST(TextTableTest, CustomAlignment) {
  TextTable t({"l", "r"});
  t.set_alignment({Align::kRight, Align::kLeft});
  t.add_row({"a", "b"});
  const std::string out = t.to_string();
  // Data row: right-aligned 'a' under header 'l', left-aligned 'b'.
  EXPECT_NE(out.find("a  b"), std::string::npos);
  EXPECT_THROW(t.set_alignment({Align::kLeft}), PreconditionError);
}

TEST(TextTableTest, PrintMatchesToString) {
  TextTable t({"x"});
  t.add_row({"1"});
  std::ostringstream out;
  t.print(out);
  EXPECT_EQ(out.str(), t.to_string());
}

TEST(FormatTest, FmtDouble) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(-1.0, 0), "-1");
}

TEST(FormatTest, FmtPercent) {
  EXPECT_EQ(fmt_percent(0.1234), "12.3%");
  EXPECT_EQ(fmt_percent(1.0, 0), "100%");
}

TEST(FormatTest, FmtBytes) {
  EXPECT_EQ(fmt_bytes(512.0), "512.0 B");
  EXPECT_EQ(fmt_bytes(1.5e3), "1.5 KB");
  EXPECT_EQ(fmt_bytes(2.0e6), "2.0 MB");
  EXPECT_EQ(fmt_bytes(3.2e9), "3.2 GB");
  EXPECT_EQ(fmt_bytes(7.0e15), "7.0 PB");
}

}  // namespace
}  // namespace icn::util
