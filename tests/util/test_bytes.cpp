// ByteQueue: FIFO semantics, the grow/shrink tail protocol used by socket
// reads, and head compaction staying invisible to the data() view.
#include "util/bytes.h"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

namespace icn::util {
namespace {

std::vector<std::uint8_t> bytes_of(std::span<const std::uint8_t> span) {
  return {span.begin(), span.end()};
}

TEST(ByteQueueTest, AppendConsumeRoundTrip) {
  ByteQueue q;
  EXPECT_TRUE(q.empty());
  const std::vector<std::uint8_t> in{1, 2, 3, 4, 5};
  q.append(in);
  EXPECT_EQ(q.size(), 5u);
  EXPECT_EQ(bytes_of(q.data()), in);
  q.consume(2);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(bytes_of(q.data()), (std::vector<std::uint8_t>{3, 4, 5}));
  q.consume(3);
  EXPECT_TRUE(q.empty());
}

TEST(ByteQueueTest, GrowAndShrinkTailModelShortReads) {
  ByteQueue q;
  auto span = q.grow_tail(8);
  ASSERT_EQ(span.size(), 8u);
  const std::uint8_t filled[3] = {9, 8, 7};
  std::memcpy(span.data(), filled, 3);
  q.shrink_tail(8 - 3);  // The read returned only 3 bytes.
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(bytes_of(q.data()), (std::vector<std::uint8_t>{9, 8, 7}));
}

TEST(ByteQueueTest, InterleavedTrafficSurvivesCompaction) {
  // Push enough consumed prefix through the queue to trigger the internal
  // head compaction several times; the visible byte stream must be exact.
  ByteQueue q;
  std::vector<std::uint8_t> expected;
  std::uint8_t next_in = 0;
  std::uint8_t next_out = 0;
  for (int round = 0; round < 4096; ++round) {
    std::vector<std::uint8_t> chunk(1 + round % 7);
    for (auto& b : chunk) b = next_in++;
    q.append(chunk);
    const std::size_t take = round % 2 == 0 ? q.size() / 2 : 0;
    if (take > 0) {
      const auto view = q.data();
      for (std::size_t i = 0; i < take; ++i) {
        ASSERT_EQ(view[i], next_out) << "round " << round;
        ++next_out;
      }
      q.consume(take);
    }
  }
  // Drain the remainder in order.
  while (!q.empty()) {
    ASSERT_EQ(q.data().front(), next_out);
    ++next_out;
    q.consume(1);
  }
  EXPECT_EQ(next_out, next_in);
}

}  // namespace
}  // namespace icn::util
