#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "util/error.h"
#include "util/stats.h"

namespace icn::util {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanApproxHalf) {
  Rng rng(7);
  double acc = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) acc += rng.uniform();
  EXPECT_NEAR(acc / kN, 0.5, 0.01);
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-5.0, 3.0);
    EXPECT_GE(u, -5.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(RngTest, UniformRangeRejectsInverted) {
  Rng rng(3);
  EXPECT_THROW(rng.uniform(1.0, 0.0), PreconditionError);
}

TEST(RngTest, UniformIndexCoversAllValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(RngTest, UniformIndexRejectsZero) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_index(0), PreconditionError);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRate) {
  Rng rng(5);
  int hits = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.02);
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  std::vector<double> xs(50000);
  for (auto& x : xs) x = rng.normal();
  EXPECT_NEAR(mean(xs), 0.0, 0.02);
  EXPECT_NEAR(stddev(xs), 1.0, 0.02);
}

TEST(RngTest, NormalShiftScale) {
  Rng rng(13);
  std::vector<double> xs(50000);
  for (auto& x : xs) x = rng.normal(10.0, 2.0);
  EXPECT_NEAR(mean(xs), 10.0, 0.05);
  EXPECT_NEAR(stddev(xs), 2.0, 0.05);
}

TEST(RngTest, NormalRejectsNegativeSigma) {
  Rng rng(1);
  EXPECT_THROW(rng.normal(0.0, -1.0), PreconditionError);
}

TEST(RngTest, LognormalMedian) {
  Rng rng(17);
  std::vector<double> xs(50000);
  for (auto& x : xs) x = rng.lognormal(1.0, 0.5);
  // Median of lognormal is exp(mu).
  EXPECT_NEAR(median(xs), std::exp(1.0), 0.05);
  EXPECT_GT(min_value(xs), 0.0);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(19);
  std::vector<double> xs(50000);
  for (auto& x : xs) x = rng.exponential(2.0);
  EXPECT_NEAR(mean(xs), 0.5, 0.01);
}

TEST(RngTest, ExponentialRejectsNonPositiveRate) {
  Rng rng(1);
  EXPECT_THROW(rng.exponential(0.0), PreconditionError);
}

TEST(RngTest, PoissonZeroMean) {
  Rng rng(23);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.poisson(0.0), 0u);
}

class PoissonMeanTest : public ::testing::TestWithParam<double> {};

TEST_P(PoissonMeanTest, MeanAndVarianceMatch) {
  const double lambda = GetParam();
  Rng rng(29);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = static_cast<double>(rng.poisson(lambda));
  EXPECT_NEAR(mean(xs), lambda, std::max(0.05, lambda * 0.05));
  EXPECT_NEAR(variance(xs), lambda, std::max(0.2, lambda * 0.1));
}

INSTANTIATE_TEST_SUITE_P(SmallAndLargeMeans, PoissonMeanTest,
                         ::testing::Values(0.1, 1.0, 5.0, 50.0, 500.0));

class GammaMomentsTest
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(GammaMomentsTest, MeanAndVarianceMatch) {
  const auto [shape, scale] = GetParam();
  Rng rng(31);
  std::vector<double> xs(40000);
  for (auto& x : xs) x = rng.gamma(shape, scale);
  EXPECT_NEAR(mean(xs), shape * scale, shape * scale * 0.05);
  EXPECT_NEAR(variance(xs), shape * scale * scale,
              shape * scale * scale * 0.15);
  EXPECT_GT(min_value(xs), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    ShapesBelowAndAboveOne, GammaMomentsTest,
    ::testing::Values(std::pair{0.5, 1.0}, std::pair{1.0, 2.0},
                      std::pair{4.0, 0.5}, std::pair{25.0, 0.04}));

TEST(RngTest, GammaRejectsBadParameters) {
  Rng rng(1);
  EXPECT_THROW(rng.gamma(0.0, 1.0), PreconditionError);
  EXPECT_THROW(rng.gamma(1.0, 0.0), PreconditionError);
}

TEST(RngTest, DirichletSumsToOne) {
  Rng rng(37);
  const std::vector<double> alphas = {1.0, 2.0, 3.0, 0.5};
  for (int i = 0; i < 100; ++i) {
    const auto draw = rng.dirichlet(alphas);
    ASSERT_EQ(draw.size(), alphas.size());
    double total = 0.0;
    for (const double v : draw) {
      EXPECT_GT(v, 0.0);
      total += v;
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(RngTest, DirichletMeanMatchesAlphaRatios) {
  Rng rng(37);
  const std::vector<double> alphas = {2.0, 6.0};
  double first = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) first += rng.dirichlet(alphas)[0];
  EXPECT_NEAR(first / kN, 0.25, 0.01);
}

TEST(RngTest, DirichletRejectsEmptyAndNonPositive) {
  Rng rng(1);
  EXPECT_THROW(rng.dirichlet(std::vector<double>{}), PreconditionError);
  EXPECT_THROW(rng.dirichlet(std::vector<double>{1.0, 0.0}),
               PreconditionError);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(41);
  const std::vector<double> w = {1.0, 0.0, 3.0};
  std::array<int, 3> counts{};
  constexpr int kN = 40000;
  for (int i = 0; i < kN; ++i) ++counts[rng.categorical(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / kN, 0.25, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[2]) / kN, 0.75, 0.01);
}

TEST(RngTest, CategoricalRejectsDegenerateWeights) {
  Rng rng(1);
  EXPECT_THROW(rng.categorical(std::vector<double>{}), PreconditionError);
  EXPECT_THROW(rng.categorical(std::vector<double>{0.0, 0.0}),
               PreconditionError);
  EXPECT_THROW(rng.categorical(std::vector<double>{-1.0, 2.0}),
               PreconditionError);
}

TEST(DeriveSeedTest, Deterministic) {
  EXPECT_EQ(derive_seed(1, 2, 3), derive_seed(1, 2, 3));
  EXPECT_EQ(derive_seed(5), derive_seed(5));
}

TEST(DeriveSeedTest, OrderSensitive) {
  EXPECT_NE(derive_seed(1, 2, 3), derive_seed(1, 3, 2));
  EXPECT_NE(derive_seed(0, 1), derive_seed(1, 0));
}

TEST(DeriveSeedTest, ChainsAreIndependent) {
  // Substreams derived with different tags should not collide.
  std::set<std::uint64_t> seeds;
  for (std::uint64_t a = 0; a < 50; ++a) {
    for (std::uint64_t b = 0; b < 50; ++b) {
      seeds.insert(derive_seed(123, a, b));
    }
  }
  EXPECT_EQ(seeds.size(), 2500u);
}

TEST(DeriveSeedTest, FourArgOverloadDistinct) {
  EXPECT_NE(derive_seed(1, 2, 3, 4), derive_seed(1, 2, 3, 5));
  EXPECT_EQ(derive_seed(1, 2, 3, 4), derive_seed(1, 2, 3, 4));
}

}  // namespace
}  // namespace icn::util
