#include "util/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/error.h"

namespace icn::util {
namespace {

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool::ScopedOverride pool(4);
  std::vector<int> hits(1000, 0);
  parallel_for(0, hits.size(), 7, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) ++hits[i];
  });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelForTest, EmptyRangeRunsNothing) {
  ThreadPool::ScopedOverride pool(4);
  std::atomic<int> calls{0};
  parallel_for(5, 5, 1, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, GrainZeroRejected) {
  EXPECT_THROW(parallel_for(0, 10, 0, [](std::size_t, std::size_t) {}),
               PreconditionError);
  EXPECT_THROW((void)parallel_reduce(
                   std::size_t{0}, std::size_t{10}, std::size_t{0}, 0.0,
                   [](std::size_t, std::size_t) { return 0.0; },
                   [](double a, double b) { return a + b; }),
               PreconditionError);
}

TEST(ParallelForTest, InvertedRangeRejected) {
  EXPECT_THROW(parallel_for(10, 0, 1, [](std::size_t, std::size_t) {}),
               PreconditionError);
}

TEST(ParallelForTest, ExceptionsPropagateToCaller) {
  ThreadPool::ScopedOverride pool(4);
  EXPECT_THROW(
      parallel_for(0, 1000, 1,
                   [](std::size_t lo, std::size_t) {
                     if (lo == 500) throw std::runtime_error("chunk boom");
                   }),
      std::runtime_error);
  // The pool survives a throwing job and keeps scheduling new ones.
  std::atomic<std::size_t> covered{0};
  parallel_for(0, 64, 1, [&](std::size_t lo, std::size_t hi) {
    covered += hi - lo;
  });
  EXPECT_EQ(covered.load(), 64u);
}

TEST(ParallelForTest, NestedCallsRunInlineWithoutDeadlock) {
  ThreadPool::ScopedOverride pool(4);
  std::vector<std::size_t> inner_sums(16, 0);
  parallel_for(0, inner_sums.size(), 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      // Nested parallel work from inside a pool task must run inline.
      inner_sums[i] = parallel_reduce(
          std::size_t{0}, std::size_t{100}, std::size_t{9}, std::size_t{0},
          [](std::size_t clo, std::size_t chi) {
            std::size_t s = 0;
            for (std::size_t v = clo; v < chi; ++v) s += v;
            return s;
          },
          [](std::size_t a, std::size_t b) { return a + b; });
    }
  });
  for (const std::size_t s : inner_sums) EXPECT_EQ(s, 4950u);
}

TEST(ParallelReduceTest, MatchesSerialSum) {
  ThreadPool::ScopedOverride pool(3);
  std::vector<double> values(10'000);
  std::iota(values.begin(), values.end(), 0.0);
  const double total = parallel_reduce(
      std::size_t{0}, values.size(), std::size_t{37}, 0.0,
      [&](std::size_t lo, std::size_t hi) {
        double s = 0.0;
        for (std::size_t i = lo; i < hi; ++i) s += values[i];
        return s;
      },
      [](double a, double b) { return a + b; });
  EXPECT_DOUBLE_EQ(total, 10'000.0 * 9'999.0 / 2.0);
}

TEST(ParallelReduceTest, BitIdenticalAcrossThreadCounts) {
  // Chunk boundaries depend only on the grain, and partials fold in chunk
  // order, so the floating-point result is exactly reproducible.
  std::vector<double> values(5'000);
  double v = 1.0;
  for (auto& x : values) {
    v = v * 1.00037 + 0.011;
    x = v;
  }
  auto run = [&](std::size_t threads) {
    ThreadPool::ScopedOverride pool(threads);
    return parallel_reduce(
        std::size_t{0}, values.size(), std::size_t{64}, 0.0,
        [&](std::size_t lo, std::size_t hi) {
          double s = 0.0;
          for (std::size_t i = lo; i < hi; ++i) s += values[i] * values[i];
          return s;
        },
        [](double a, double b) { return a + b; });
  };
  const double serial = run(1);
  EXPECT_EQ(serial, run(2));
  EXPECT_EQ(serial, run(5));
  EXPECT_EQ(serial, run(8));
}

TEST(ThreadPoolTest, RejectsZeroThreads) {
  EXPECT_THROW(ThreadPool(0), PreconditionError);
}

TEST(ThreadPoolTest, ParsesIcnThreadsValues) {
  EXPECT_EQ(ThreadPool::parse_thread_count(nullptr), 0u);
  EXPECT_EQ(ThreadPool::parse_thread_count(""), 0u);
  EXPECT_EQ(ThreadPool::parse_thread_count("0"), 0u);
  EXPECT_EQ(ThreadPool::parse_thread_count("8"), 8u);
  EXPECT_EQ(ThreadPool::parse_thread_count("16"), 16u);
  EXPECT_EQ(ThreadPool::parse_thread_count("not-a-number"), 0u);
  EXPECT_EQ(ThreadPool::parse_thread_count("4x"), 0u);
  // A minus sign must not wrap through strtoull into a huge count.
  EXPECT_EQ(ThreadPool::parse_thread_count("-3"), 0u);
  EXPECT_EQ(ThreadPool::parse_thread_count(" -3"), 0u);
  // Absurd counts are capped rather than spawning thousands of threads.
  EXPECT_EQ(ThreadPool::parse_thread_count("99999999"), 512u);
}

TEST(ThreadPoolTest, ConfiguredThreadsIsPositive) {
  EXPECT_GE(ThreadPool::configured_threads(), 1u);
}

TEST(ThreadPoolTest, SerialPoolSpawnsNoWorkersButRuns) {
  ThreadPool::ScopedOverride pool(1);
  std::size_t sum = 0;  // safe: everything runs inline on this thread
  parallel_for(0, 100, 3, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) sum += i;
  });
  EXPECT_EQ(sum, 4950u);
}

}  // namespace
}  // namespace icn::util
