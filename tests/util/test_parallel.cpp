#include "util/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/error.h"

namespace icn::util {
namespace {

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool::ScopedOverride pool(4);
  std::vector<int> hits(1000, 0);
  parallel_for(0, hits.size(), 7, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) ++hits[i];
  });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelForTest, EmptyRangeRunsNothing) {
  ThreadPool::ScopedOverride pool(4);
  std::atomic<int> calls{0};
  parallel_for(5, 5, 1, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, GrainZeroRejected) {
  EXPECT_THROW(parallel_for(0, 10, 0, [](std::size_t, std::size_t) {}),
               PreconditionError);
  EXPECT_THROW((void)parallel_reduce(
                   std::size_t{0}, std::size_t{10}, std::size_t{0}, 0.0,
                   [](std::size_t, std::size_t) { return 0.0; },
                   [](double a, double b) { return a + b; }),
               PreconditionError);
}

TEST(ParallelForTest, InvertedRangeRejected) {
  EXPECT_THROW(parallel_for(10, 0, 1, [](std::size_t, std::size_t) {}),
               PreconditionError);
}

TEST(ParallelForTest, ExceptionsPropagateToCaller) {
  ThreadPool::ScopedOverride pool(4);
  EXPECT_THROW(
      parallel_for(0, 1000, 1,
                   [](std::size_t lo, std::size_t) {
                     if (lo == 500) throw std::runtime_error("chunk boom");
                   }),
      std::runtime_error);
  // The pool survives a throwing job and keeps scheduling new ones.
  std::atomic<std::size_t> covered{0};
  parallel_for(0, 64, 1, [&](std::size_t lo, std::size_t hi) {
    covered += hi - lo;
  });
  EXPECT_EQ(covered.load(), 64u);
}

TEST(ParallelForTest, NestedCallsRunInlineWithoutDeadlock) {
  ThreadPool::ScopedOverride pool(4);
  std::vector<std::size_t> inner_sums(16, 0);
  parallel_for(0, inner_sums.size(), 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      // Nested parallel work from inside a pool task must run inline.
      inner_sums[i] = parallel_reduce(
          std::size_t{0}, std::size_t{100}, std::size_t{9}, std::size_t{0},
          [](std::size_t clo, std::size_t chi) {
            std::size_t s = 0;
            for (std::size_t v = clo; v < chi; ++v) s += v;
            return s;
          },
          [](std::size_t a, std::size_t b) { return a + b; });
    }
  });
  for (const std::size_t s : inner_sums) EXPECT_EQ(s, 4950u);
}

TEST(ParallelReduceTest, MatchesSerialSum) {
  ThreadPool::ScopedOverride pool(3);
  std::vector<double> values(10'000);
  std::iota(values.begin(), values.end(), 0.0);
  const double total = parallel_reduce(
      std::size_t{0}, values.size(), std::size_t{37}, 0.0,
      [&](std::size_t lo, std::size_t hi) {
        double s = 0.0;
        for (std::size_t i = lo; i < hi; ++i) s += values[i];
        return s;
      },
      [](double a, double b) { return a + b; });
  EXPECT_DOUBLE_EQ(total, 10'000.0 * 9'999.0 / 2.0);
}

TEST(ParallelReduceTest, BitIdenticalAcrossThreadCounts) {
  // Chunk boundaries depend only on the grain, and partials fold in chunk
  // order, so the floating-point result is exactly reproducible.
  std::vector<double> values(5'000);
  double v = 1.0;
  for (auto& x : values) {
    v = v * 1.00037 + 0.011;
    x = v;
  }
  auto run = [&](std::size_t threads) {
    ThreadPool::ScopedOverride pool(threads);
    return parallel_reduce(
        std::size_t{0}, values.size(), std::size_t{64}, 0.0,
        [&](std::size_t lo, std::size_t hi) {
          double s = 0.0;
          for (std::size_t i = lo; i < hi; ++i) s += values[i] * values[i];
          return s;
        },
        [](double a, double b) { return a + b; });
  };
  const double serial = run(1);
  EXPECT_EQ(serial, run(2));
  EXPECT_EQ(serial, run(5));
  EXPECT_EQ(serial, run(8));
}

TEST(ThreadPoolTest, RejectsZeroThreads) {
  EXPECT_THROW(ThreadPool(0), PreconditionError);
}

TEST(ThreadPoolTest, ParsesIcnThreadsValues) {
  // Unset, blank, and the explicit "0" all mean "use the hardware default".
  EXPECT_EQ(ThreadPool::parse_thread_count(nullptr), 0u);
  EXPECT_EQ(ThreadPool::parse_thread_count(""), 0u);
  EXPECT_EQ(ThreadPool::parse_thread_count("0"), 0u);
  EXPECT_EQ(ThreadPool::parse_thread_count("8"), 8u);
  EXPECT_EQ(ThreadPool::parse_thread_count("16"), 16u);
  EXPECT_EQ(ThreadPool::parse_thread_count(" 8 "), 8u);
  // Absurd counts are capped rather than spawning thousands of threads.
  EXPECT_EQ(ThreadPool::parse_thread_count("99999999"), 512u);
}

TEST(ThreadPoolTest, GarbageIcnThreadsThrowsTypedError) {
  // A typo must fail loudly, not silently hand the pool a default the
  // operator did not choose.
  EXPECT_THROW((void)ThreadPool::parse_thread_count("not-a-number"),
               EnvConfigError);
  EXPECT_THROW((void)ThreadPool::parse_thread_count("4x"), EnvConfigError);
  // A minus sign must not wrap through strtoull into a huge count.
  EXPECT_THROW((void)ThreadPool::parse_thread_count("-3"), EnvConfigError);
  EXPECT_THROW((void)ThreadPool::parse_thread_count(" -3"), EnvConfigError);
  EXPECT_THROW((void)ThreadPool::parse_thread_count("3.5"), EnvConfigError);
  EXPECT_THROW((void)ThreadPool::parse_thread_count("+4"), EnvConfigError);
  try {
    (void)ThreadPool::parse_thread_count("4x");
    FAIL() << "expected EnvConfigError";
  } catch (const EnvConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("ICN_THREADS"), std::string::npos);
  }
}

TEST(ThreadPoolTest, StealingCoversSkewedWorkExactlyOnce) {
  // A pathologically skewed workload: one early chunk carries almost all the
  // work. Under kSteal the other lanes drain the straggler's block; every
  // chunk must still run exactly once.
  ThreadPool::ScopedOverride pool(4, ThreadPool::Schedule::kSteal);
  std::vector<std::atomic<int>> hits(512);
  parallel_for(0, hits.size(), 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      if (i == 0) {
        // Busy work so other lanes run dry and start stealing.
        volatile double sink = 0.0;
        for (int k = 0; k < 200000; ++k) sink = sink + 1e-9 * k;
      }
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, StaticScheduleMatchesStealBitForBit) {
  // Chunk contents are a pure function of (begin, end, grain), so the two
  // schedules — and any thread count — produce identical reduce results.
  std::vector<double> values(4'096);
  double v = 0.5;
  for (auto& x : values) {
    v = v * 1.00021 + 0.013;
    x = v;
  }
  auto run = [&](std::size_t threads, ThreadPool::Schedule schedule) {
    ThreadPool::ScopedOverride pool(threads, schedule);
    return parallel_reduce(
        std::size_t{0}, values.size(), std::size_t{53}, 0.0,
        [&](std::size_t lo, std::size_t hi) {
          double s = 0.0;
          for (std::size_t i = lo; i < hi; ++i) s += values[i] * values[i];
          return s;
        },
        [](double a, double b) { return a + b; });
  };
  const double serial = run(1, ThreadPool::Schedule::kStatic);
  EXPECT_EQ(serial, run(4, ThreadPool::Schedule::kStatic));
  EXPECT_EQ(serial, run(4, ThreadPool::Schedule::kSteal));
  EXPECT_EQ(serial, run(8, ThreadPool::Schedule::kSteal));
}

TEST(ThreadPoolTest, LowestIndexedChunkExceptionWins) {
  // Every chunk throws its own index after recording that it ran. Whatever
  // subset got executed before cancellation, the rethrown exception must be
  // the LOWEST index that actually threw — by chunk index, not wall order.
  for (const auto schedule :
       {ThreadPool::Schedule::kStatic, ThreadPool::Schedule::kSteal}) {
    ThreadPool::ScopedOverride pool(4, schedule);
    constexpr std::size_t kChunks = 256;
    std::vector<std::atomic<int>> threw(kChunks);
    std::size_t reported = kChunks;
    try {
      parallel_for(0, kChunks, 1, [&](std::size_t lo, std::size_t) {
        threw[lo].store(1, std::memory_order_relaxed);
        throw std::runtime_error(std::to_string(lo));
      });
      FAIL() << "expected a rethrown chunk exception";
    } catch (const std::runtime_error& e) {
      reported = static_cast<std::size_t>(std::stoul(e.what()));
    }
    std::size_t lowest = kChunks;
    for (std::size_t i = 0; i < kChunks; ++i) {
      if (threw[i].load() != 0) {
        lowest = i;
        break;
      }
    }
    ASSERT_LT(lowest, kChunks);
    EXPECT_EQ(reported, lowest);
  }
}

TEST(ThreadPoolTest, SerialExceptionIsFirstChunkDeterministically) {
  // Inline (1-thread) execution stops at the first throwing chunk, so the
  // rethrown index is exactly the serial one.
  ThreadPool::ScopedOverride pool(1);
  try {
    parallel_for(0, 100, 1, [&](std::size_t lo, std::size_t) {
      if (lo >= 40) throw std::runtime_error(std::to_string(lo));
    });
    FAIL() << "expected a rethrown chunk exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "40");
  }
}

TEST(AdaptiveGrainTest, ScalesWithPoolAndRespectsFloor) {
  {
    ThreadPool::ScopedOverride pool(4);
    const std::size_t g = adaptive_grain(0, 100'000);
    EXPECT_GE(g, 1u);
    // Enough chunks per lane that stealing can rebalance a skewed tail.
    const std::size_t chunks = (100'000 + g - 1) / g;
    EXPECT_GE(chunks, 4u * 8u);
  }
  {
    ThreadPool::ScopedOverride pool(1);
    EXPECT_GE(adaptive_grain(0, 10), 1u);
    EXPECT_EQ(adaptive_grain(5, 5, 7), 7u);   // empty range: the floor
    EXPECT_GE(adaptive_grain(0, 1'000'000, 64), 64u);
  }
}

TEST(ThreadPoolTest, ConfiguredThreadsIsPositive) {
  EXPECT_GE(ThreadPool::configured_threads(), 1u);
}

TEST(ThreadPoolTest, SerialPoolSpawnsNoWorkersButRuns) {
  ThreadPool::ScopedOverride pool(1);
  std::size_t sum = 0;  // safe: everything runs inline on this thread
  parallel_for(0, 100, 3, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) sum += i;
  });
  EXPECT_EQ(sum, 4950u);
}

}  // namespace
}  // namespace icn::util
