// Scratch-arena contract: bump allocation, alignment on absolute addresses,
// geometric growth, mark/rewind/Frame lifetimes, memory retention across
// rewinds, and per-thread isolation of scratch_arena().
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include "util/arena.h"
#include "util/parallel.h"

namespace icn::util {
namespace {

bool aligned(const void* p, std::size_t align) {
  return reinterpret_cast<std::uintptr_t>(p) % align == 0;
}

TEST(ArenaTest, AllocationsAreDisjointAndWritable) {
  Arena arena(256);
  double* a = arena.alloc<double>(16);
  double* b = arena.alloc<double>(16);
  ASSERT_NE(a, b);
  for (std::size_t i = 0; i < 16; ++i) {
    a[i] = static_cast<double>(i);
    b[i] = -static_cast<double>(i);
  }
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(a[i], static_cast<double>(i));
    EXPECT_EQ(b[i], -static_cast<double>(i));
  }
}

TEST(ArenaTest, RespectsAlignmentIncludingOverAligned) {
  Arena arena(64);
  // Interleave odd byte sizes with aligned requests so the bump pointer
  // lands misaligned before each aligned request.
  for (const std::size_t align : {std::size_t{8}, std::size_t{16},
                                  std::size_t{64}, std::size_t{128}}) {
    (void)arena.allocate(3, 1);
    void* p = arena.allocate(align, align);
    EXPECT_TRUE(aligned(p, align)) << "align " << align;
  }
}

TEST(ArenaTest, GrowsBeyondTheInitialBlock) {
  Arena arena(64);
  // Far more than the first block; every pointer must stay valid (blocks
  // are stable once created — growth never moves old allocations).
  std::vector<int*> ptrs;
  for (int i = 0; i < 100; ++i) {
    int* p = arena.alloc<int>(8);
    p[0] = i;
    ptrs.push_back(p);
  }
  for (int i = 0; i < 100; ++i) EXPECT_EQ(i, ptrs[static_cast<std::size_t>(i)][0]);
  EXPECT_GE(arena.bytes_reserved(), 100u * 8u * sizeof(int));
}

TEST(ArenaTest, SingleAllocationLargerThanBlockSucceeds) {
  Arena arena(32);
  double* p = arena.alloc<double>(1000);
  p[0] = 1.0;
  p[999] = 2.0;
  EXPECT_EQ(1.0, p[0]);
  EXPECT_EQ(2.0, p[999]);
}

TEST(ArenaTest, RewindReusesMemoryWithoutNewReservation) {
  Arena arena(1u << 12);
  const Arena::Mark m = arena.mark();
  void* first = arena.allocate(512, 8);
  arena.rewind(m);
  const std::size_t reserved = arena.bytes_reserved();
  void* again = arena.allocate(512, 8);
  EXPECT_EQ(first, again);  // bump pointer returned to the same spot
  EXPECT_EQ(reserved, arena.bytes_reserved());  // no new blocks
}

TEST(ArenaTest, FrameRewindsOnScopeExit) {
  Arena arena(1u << 12);
  const std::size_t before = arena.bytes_used();
  void* inside = nullptr;
  {
    const Arena::Frame frame(arena);
    inside = arena.allocate(256, 8);
    EXPECT_GT(arena.bytes_used(), before);
  }
  EXPECT_EQ(before, arena.bytes_used());
  // The next allocation reuses the frame's storage.
  EXPECT_EQ(inside, arena.allocate(256, 8));
}

TEST(ArenaTest, NestedFramesUnwindInOrder) {
  Arena arena(1u << 12);
  const Arena::Frame outer(arena);
  double* a = arena.alloc<double>(4);
  a[0] = 42.0;
  {
    const Arena::Frame inner(arena);
    double* b = arena.alloc<double>(4);
    b[0] = 7.0;
    EXPECT_NE(a, b);
  }
  // Inner rewound; outer allocation untouched.
  EXPECT_EQ(42.0, a[0]);
  double* c = arena.alloc<double>(4);
  EXPECT_NE(a, c);
}

TEST(ArenaTest, ResetKeepsBlocksForReuse) {
  Arena arena(128);
  for (int round = 0; round < 3; ++round) {
    (void)arena.allocate(4096, 8);
  }
  const std::size_t reserved = arena.bytes_reserved();
  arena.reset();
  EXPECT_EQ(0u, arena.bytes_used());
  EXPECT_EQ(reserved, arena.bytes_reserved());
  (void)arena.allocate(4096, 8);
  EXPECT_EQ(reserved, arena.bytes_reserved());
}

TEST(ArenaTest, ZeroByteAllocationReturnsValidPointer) {
  Arena arena(64);
  EXPECT_NE(nullptr, arena.allocate(0, 8));
  EXPECT_NE(nullptr, arena.alloc<double>(0));
}

TEST(ArenaTest, ScratchArenaIsPerThread) {
  Arena* main_arena = &scratch_arena();
  EXPECT_EQ(main_arena, &scratch_arena());  // stable within a thread
  Arena* other = nullptr;
  std::thread t([&] { other = &scratch_arena(); });
  t.join();
  EXPECT_NE(nullptr, other);
  EXPECT_NE(main_arena, other);
}

TEST(ArenaTest, PoolWorkersAllocateConcurrentlyWithoutInterference) {
  // Every worker hammers its own thread-local arena; values written inside
  // each task must read back intact (TSan-clean by construction).
  ThreadPool::ScopedOverride pool(4);
  std::vector<double> results(64, 0.0);
  parallel_for(0, results.size(), 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      auto& arena = scratch_arena();
      const Arena::Frame frame(arena);
      const auto buf = arena.alloc_span<double>(128);
      for (std::size_t j = 0; j < buf.size(); ++j) {
        buf[j] = static_cast<double>(i + j);
      }
      double acc = 0.0;
      for (const double v : buf) acc += v;
      results[i] = acc;
    }
  });
  for (std::size_t i = 0; i < results.size(); ++i) {
    // sum_{j=0..127} (i + j) = 128 i + 8128
    EXPECT_EQ(static_cast<double>(128 * i + 8128), results[i]);
  }
}

}  // namespace
}  // namespace icn::util
