#include "util/csv.h"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.h"

namespace icn::util {
namespace {

TEST(CsvEscapeTest, PlainFieldUntouched) {
  EXPECT_EQ(csv_escape("hello"), "hello");
  EXPECT_EQ(csv_escape(""), "");
}

TEST(CsvEscapeTest, QuotesWhenNeeded) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriterTest, WritesRows) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write_row({"a", "b,c", "d"});
  writer.write_row({"1", "2"});
  EXPECT_EQ(out.str(), "a,\"b,c\",d\n1,2\n");
}

TEST(CsvWriterTest, NumericRowRoundTrips) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write_numeric_row({1.5, -2.25, 0.1});
  const auto rows = parse_csv(out.str());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(std::stod(rows[0][0]), 1.5);
  EXPECT_DOUBLE_EQ(std::stod(rows[0][1]), -2.25);
  EXPECT_DOUBLE_EQ(std::stod(rows[0][2]), 0.1);
}

TEST(CsvParseTest, SimpleDocument) {
  const auto rows = parse_csv("a,b\nc,d\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (CsvRow{"a", "b"}));
  EXPECT_EQ(rows[1], (CsvRow{"c", "d"}));
}

TEST(CsvParseTest, MissingTrailingNewline) {
  const auto rows = parse_csv("a,b\nc,d");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], (CsvRow{"c", "d"}));
}

TEST(CsvParseTest, QuotedFieldsWithCommasAndNewlines) {
  const auto rows = parse_csv("\"a,b\",\"x\ny\"\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "a,b");
  EXPECT_EQ(rows[0][1], "x\ny");
}

TEST(CsvParseTest, EscapedQuotes) {
  const auto rows = parse_csv("\"say \"\"hi\"\"\"\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "say \"hi\"");
}

TEST(CsvParseTest, ToleratesCrlf) {
  const auto rows = parse_csv("a,b\r\nc,d\r\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][1], "b");
}

TEST(CsvParseTest, EmptyFields) {
  const auto rows = parse_csv(",\na,,b\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (CsvRow{"", ""}));
  EXPECT_EQ(rows[1], (CsvRow{"a", "", "b"}));
}

TEST(CsvParseTest, UnterminatedQuoteThrows) {
  EXPECT_THROW(parse_csv("\"abc\n"), PreconditionError);
}

TEST(CsvParseTest, RoundTripThroughWriter) {
  const std::vector<CsvRow> original = {
      {"name", "value,with,commas", "quote\"inside"},
      {"row2", "", "multi\nline"},
  };
  std::ostringstream out;
  CsvWriter writer(out);
  for (const auto& row : original) writer.write_row(row);
  EXPECT_EQ(parse_csv(out.str()), original);
}

TEST(CsvParseLineTest, SingleLine) {
  EXPECT_EQ(parse_csv_line("a,b,c"), (CsvRow{"a", "b", "c"}));
  EXPECT_TRUE(parse_csv_line("").empty());
  EXPECT_THROW(parse_csv_line("a\nb"), PreconditionError);
}

}  // namespace
}  // namespace icn::util
