// Multi-probe ingest under fire — the fault-tolerant counterpart of
// stream_ingest.
//
// The paper's plant ran one passive probe per site; real probes stall, die,
// redeliver, and corrupt — down to single fields of single records. This
// example splits a synthetic study across four probe feeds, wraps each in a
// seeded FaultPlan (dropout windows, transient pull failures, duplicated/
// reordered/skewed/truncated batches, per-record field fuzz, a correlated
// site outage), and drives them with the FeedSupervisor with the
// record-level quality layer engaged:
//
//   1. the supervisor polls all feeds on a virtual clock, retrying transient
//      failures with capped exponential backoff, deduplicating redelivered
//      sequences, repairing or quarantining damaged records with provenance,
//      and checkpointing each feed to its own snapshot — live counters are
//      printed as it runs;
//   2. the per-probe checkpoints are recovered and merged into one study
//      tensor plus a per-(antenna, hour) coverage mask and per-hour
//      quarantine counts;
//   3. the same study is replayed under the plan's kill/restart schedule:
//      the supervisor is destroyed mid-study (twice) and resumed from the
//      durable checkpoints, converging bit-identically with the
//      uninterrupted run — including the checkpoint bytes;
//   4. the analysis pipeline runs in degraded mode on the merge, excluding
//      under-covered antennas and reporting exactly which hours were lost —
//      which match the injected dropout windows and outage and nothing else.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "core/scenario.h"
#include "fault/feed.h"
#include "fault/plan.h"
#include "fault/restart.h"
#include "probe/dpi.h"
#include "probe/gtp.h"
#include "probe/probe.h"
#include "quality/validate.h"
#include "stream/supervise.h"
#include "traffic/flows.h"
#include "util/table.h"

namespace {

const char* state_name(icn::stream::FeedState state) {
  using icn::stream::FeedState;
  switch (state) {
    case FeedState::kActive: return "active";
    case FeedState::kStalled: return "stalled";
    case FeedState::kBackoff: return "backoff";
    case FeedState::kDone: return "done";
    case FeedState::kQuarantined: return "QUARANTINED";
  }
  return "?";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace icn;

  core::ScenarioParams scenario_params;
  scenario_params.scale = argc > 1 ? std::atof(argv[1]) : 0.02;
  scenario_params.seed = 2023;
  scenario_params.outdoor_ratio = 0.0;
  const core::Scenario scenario = core::Scenario::build(scenario_params);
  const std::size_t n = scenario.num_antennas();
  const std::int64_t hours = 24 * 7;
  constexpr std::size_t kProbes = 4;

  std::cout << "Study: " << n << " antennas x " << scenario.num_services()
            << " services x " << hours << " hours, split across " << kProbes
            << " probes\n";

  // Decode the study's flows into per-probe session streams (antennas are
  // partitioned round-robin-free: contiguous blocks, one block per probe).
  const traffic::FlowGenerator generator(scenario.temporal(), 99);
  probe::UliDecoder decoder;
  decoder.register_range(generator.ecgi_of(0), static_cast<std::uint32_t>(n));
  probe::DpiClassifier dpi(scenario.catalog());
  probe::PassiveProbe probe(decoder, dpi);

  std::vector<std::vector<std::uint32_t>> probe_ids(kProbes);
  std::vector<std::vector<probe::ServiceSession>> probe_sessions(kProbes);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t p = i * kProbes / n;
    probe_ids[p].push_back(static_cast<std::uint32_t>(i));
    for (std::int64_t h = 0; h < hours; ++h) {
      const auto flows = generator.flows_for_antenna(i, h, h + 1);
      for (auto& s : probe.observe_all(flows)) {
        probe_sessions[p].push_back(s);
      }
    }
  }

  // One seeded hostility schedule for the whole plant. Dropouts and the
  // correlated outage destroy data; field fuzz damages individual records
  // (the quality layer repairs what has an exact inverse and quarantines the
  // rest); every other class must be absorbed without changing a bit.
  fault::FaultPlanParams fault_params;
  fault_params.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;
  fault_params.num_probes = kProbes;
  fault_params.num_hours = hours;
  fault_params.dropout_rate = 0.02;
  fault_params.dropout_max_hours = 6;
  fault_params.transient_rate = 0.08;
  fault_params.transient_max_failures = 2;
  fault_params.duplicate_rate = 0.10;
  fault_params.reorder_rate = 0.15;
  fault_params.skew_rate = 0.08;
  fault_params.skew_max_delay = 2;
  fault_params.truncate_rate = 0.06;
  fault_params.field_fuzz_rate = 0.10;
  fault_params.field_fuzz_max_records = 2;
  fault_params.outage_rate = 0.03;
  fault_params.outage_max_hours = 3;
  fault_params.outage_min_probes = 2;
  fault_params.restart_count = 2;  // Two mid-study kills in the replay pass.
  fault_params.restart_min_ticks = 16;
  fault_params.restart_max_ticks = 96;
  const fault::FaultPlan plan(fault_params);
  fault::FaultLedger ledger;

  std::vector<std::unique_ptr<fault::FaultyFeed>> feeds;
  std::vector<stream::FeedSpec> specs;
  std::vector<std::string> checkpoints;
  for (std::size_t p = 0; p < kProbes; ++p) {
    feeds.push_back(std::make_unique<fault::FaultyFeed>(
        p, stream::hourly_script(probe_sessions[p], hours), &plan, &ledger));
    stream::FeedSpec spec;
    spec.name = "probe-" + std::to_string(p);
    spec.antenna_ids = probe_ids[p];
    spec.source = feeds.back().get();
    spec.checkpoint_path = "multi_probe_" + std::to_string(p) + ".snap";
    checkpoints.push_back(spec.checkpoint_path);
    specs.push_back(std::move(spec));
  }

  stream::SupervisorParams sup;
  sup.num_services = scenario.num_services();
  sup.num_hours = hours;
  sup.num_shards = 4;
  sup.allowed_lateness = 12;  // Must cover the worst effective skew.
  sup.backoff.initial_ticks = 1;
  sup.backoff.max_ticks = 8;
  sup.backoff.max_retries = 6;
  sup.stall_timeout_ticks = 4;
  sup.corrupt_strikes = 1000;  // Truncated batches are redelivered intact.
  sup.quality = quality::ValidatorParams{};  // Record-level repair/reject.
  stream::FeedSupervisor supervisor(sup, std::move(specs));

  // --- Drive the plant, printing live counters every 64 ticks -------------
  std::cout << "\ntick  ";
  for (std::size_t p = 0; p < kProbes; ++p) std::cout << "  probe-" << p;
  std::cout << "   (accepted batches, state)\n";
  while (supervisor.step()) {
    if (supervisor.now() % 64 != 0) continue;
    std::printf("%5lld ", static_cast<long long>(supervisor.now()));
    for (std::size_t p = 0; p < kProbes; ++p) {
      const auto stats = supervisor.stats(p);
      std::printf("  %4zu %-7s", stats.batches_accepted,
                  state_name(stats.state));
    }
    std::cout << "\n";
  }

  // --- Supervision outcome ------------------------------------------------
  util::TextTable table({"feed", "state", "batches", "records", "retries",
                         "dups", "corrupt", "rejected", "repaired",
                         "covered"});
  for (std::size_t p = 0; p < kProbes; ++p) {
    const auto stats = supervisor.stats(p);
    const auto rejected = supervisor.rejected_by_hour(p);
    const auto repaired = supervisor.repaired_by_hour(p);
    table.add_row({stats.name, state_name(stats.state),
                   std::to_string(stats.batches_accepted),
                   std::to_string(stats.records_accepted),
                   std::to_string(stats.retries_scheduled),
                   std::to_string(stats.duplicate_batches),
                   std::to_string(stats.corrupt_batches),
                   std::to_string(std::accumulate(rejected.begin(),
                                                  rejected.end(), 0u)),
                   std::to_string(std::accumulate(repaired.begin(),
                                                  repaired.end(), 0u)),
                   std::to_string(stats.covered_hours) + "/" +
                       std::to_string(hours)});
  }
  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\ninjected faults: " << ledger.size()
            << " (replayable ledger, " << plan.outages().size()
            << " correlated outage(s)), supervision events: "
            << supervisor.events().size() << ", quarantine ledger: "
            << supervisor.quarantine_ledger().entries().size()
            << " entries with provenance, finished at tick "
            << supervisor.now() << "\n";

  // --- Durable merge ------------------------------------------------------
  const auto live = supervisor.merge();
  const auto durable = stream::merge_snapshots(checkpoints);
  bool identical = live.traffic.data().size() == durable.traffic.data().size()
                   && live.coverage == durable.coverage
                   && live.quarantine.rejected_by_hour ==
                          durable.quarantine.rejected_by_hour
                   && live.quarantine.repaired_by_hour ==
                          durable.quarantine.repaired_by_hour;
  for (std::size_t i = 0; identical && i < live.traffic.data().size(); ++i) {
    identical = live.traffic.data()[i] == durable.traffic.data()[i];
  }
  std::cout << "durable merge of " << checkpoints.size()
            << " checkpoints vs live merge: "
            << (identical ? "bit-identical" : "MISMATCH") << "\n";

  // --- Kill/restart replay ------------------------------------------------
  // Re-run the same study under the plan's crash schedule: two mid-study
  // supervisor kills, each resumed from the durable checkpoints. The feeds
  // replay from the start each epoch (resume skips already-durable records);
  // the result must match the uninterrupted run bit for bit — checkpoint
  // bytes included.
  std::vector<std::string> restart_checkpoints;
  for (std::size_t p = 0; p < kProbes; ++p) {
    restart_checkpoints.push_back("multi_probe_r" + std::to_string(p) +
                                  ".snap");
  }
  fault::FaultLedger restart_ledger;
  std::vector<std::unique_ptr<fault::FaultyFeed>> restart_feeds;
  const fault::FeedFactory factory = [&](std::size_t) {
    restart_feeds.clear();
    std::vector<stream::FeedSpec> epoch_specs;
    for (std::size_t p = 0; p < kProbes; ++p) {
      restart_feeds.push_back(std::make_unique<fault::FaultyFeed>(
          p, stream::hourly_script(probe_sessions[p], hours), &plan,
          &restart_ledger));
      stream::FeedSpec spec;
      spec.name = "probe-" + std::to_string(p);
      spec.antenna_ids = probe_ids[p];
      spec.source = restart_feeds.back().get();
      spec.checkpoint_path = restart_checkpoints[p];
      epoch_specs.push_back(std::move(spec));
    }
    return epoch_specs;
  };
  const auto restarted =
      fault::run_supervised_with_restarts(plan, sup, factory, &restart_ledger);

  bool converged =
      restarted.study.antenna_ids == live.antenna_ids &&
      restarted.study.coverage == live.coverage &&
      restarted.study.quarantine.rejected_by_hour ==
          live.quarantine.rejected_by_hour &&
      restarted.study.quarantine.repaired_by_hour ==
          live.quarantine.repaired_by_hour &&
      restarted.study.traffic.data().size() == live.traffic.data().size();
  for (std::size_t i = 0; converged && i < live.traffic.data().size(); ++i) {
    converged = restarted.study.traffic.data()[i] == live.traffic.data()[i];
  }
  for (std::size_t p = 0; converged && p < kProbes; ++p) {
    converged = read_file(restart_checkpoints[p]) == read_file(checkpoints[p]);
  }
  std::cout << "killed " << (restarted.epochs - 1)
            << "x mid-study, resumed from checkpoints ("
            << restarted.epochs << " epochs): "
            << (converged ? "bit-identical convergence (checkpoint bytes "
                            "included)"
                          : "MISMATCH")
            << "\n";
  identical = identical && converged;

  core::PipelineParams pipeline_params;
  pipeline_params.clustering.k_max =
      std::min<std::size_t>(15, live.antenna_ids.size() - 1);
  pipeline_params.clustering.chosen_k =
      std::min<std::size_t>(9, pipeline_params.clustering.k_max);
  pipeline_params.min_antenna_coverage = 0.8;
  const auto result =
      core::run_pipeline_from_snapshots(checkpoints, pipeline_params);

  std::cout << "\n" << core::to_text(result.coverage);
  std::cout << "\nanalysis ran on " << result.coverage.analyzed_rows.size()
            << " antennas -> " << result.analysis.clusters.chosen_k
            << " service-demand clusters"
            << (result.coverage.degraded ? " (degraded mode)" : "") << "\n";

  for (const auto& path : checkpoints) std::remove(path.c_str());
  for (const auto& path : restart_checkpoints) std::remove(path.c_str());
  return identical ? 0 : 1;
}
