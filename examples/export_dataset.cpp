// Dataset export — the reproducibility deliverable of Sec. 1 ("we will make
// publicly available the code and processed service consumption data").
//
// Writes two CSVs:
//   icn_rsca.csv    — per-antenna metadata, cluster label, archetype, and the
//                     73 RSCA features used throughout the paper's analysis;
//   icn_traffic.csv — the raw two-month T matrix (MB per antenna x service).
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "core/export.h"
#include "core/pipeline.h"

int main(int argc, char** argv) {
  using namespace icn;
  core::PipelineParams params;
  params.scenario.scale = argc > 1 ? std::atof(argv[1]) : 0.25;
  params.scenario.seed = 2023;
  const std::string prefix = argc > 2 ? argv[2] : "icn";

  std::cout << "Running the pipeline (scale " << params.scenario.scale
            << ") and exporting the processed dataset...\n";
  const auto result = core::run_pipeline(params);

  const std::string rsca_path = prefix + "_rsca.csv";
  {
    std::ofstream out(rsca_path);
    if (!out) {
      std::cerr << "cannot open " << rsca_path << " for writing\n";
      return 1;
    }
    core::export_rsca_csv(out, result.scenario, result.rsca,
                          result.clusters.labels);
  }
  const std::string traffic_path = prefix + "_traffic.csv";
  {
    std::ofstream out(traffic_path);
    if (!out) {
      std::cerr << "cannot open " << traffic_path << " for writing\n";
      return 1;
    }
    core::export_traffic_csv(out, result.scenario);
  }

  std::cout << "wrote " << rsca_path << " (" << result.scenario.num_antennas()
            << " antennas x " << result.scenario.num_services()
            << " RSCA features + metadata)\n"
            << "wrote " << traffic_path << " (two-month MB totals)\n"
            << "cluster labels use the paper's numbering (ARI vs generative "
               "archetypes: "
            << result.ari_vs_archetypes << ")\n";
  return 0;
}
