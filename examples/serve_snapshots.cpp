// Snapshot query server demo — the serving counterpart of stream_ingest.
//
// The measurement plant seals demand tensors into columnar snapshots; this
// example puts a query server in front of them:
//
//   1. a writer seals a study snapshot (matrix + windows + coverage) and a
//      seal hook republishes the file into a SnapshotRegistry — every
//      durability barrier becomes a hot snapshot swap;
//   2. an epoll reactor serves zero-copy queries from the mapped snapshot to
//      a client over the length-prefixed binary protocol (the same queries
//      `tools/icn_query` issues from the shell);
//   3. the writer then seals generation 2 *while the client stays
//      connected*: the pinned client keeps reading generation 1 until it
//      re-pins, demonstrating that a swap never disturbs in-flight readers.
#include <cstdio>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.h"
#include "serve/registry.h"
#include "serve/server.h"
#include "store/snapshot.h"

int main() {
  using namespace icn;
  const std::string path = "serve_snapshots_demo.snap";
  const std::size_t antennas = 6, services = 4;
  const std::int64_t hours = 48;

  // --- 1. Seal generation 1, publishing on every durability barrier. ------
  serve::SnapshotRegistry registry;

  // Analytics would normally come from core::analyze_traffic; the demo
  // fabricates two clusters (heavy-video vs messaging-led antennas) so the
  // cluster/shap queries have something to serve.
  serve::ServedAnalytics analytics;
  analytics.num_clusters = 2;
  for (std::size_t i = 0; i < antennas; ++i) {
    analytics.labels.push_back(i < antennas / 2 ? 0 : 1);
  }
  analytics.shap.resize(2);
  analytics.shap[0] = {{0, 0.91, 0.88, 410.0}, {2, 0.22, -0.41, 35.0}};
  analytics.shap[1] = {{3, 0.74, 0.79, 120.0}, {0, 0.31, -0.52, 90.0}};

  store::SnapshotWriter writer(path);
  writer.set_seal_hook([&](const store::SealEvent& event) {
    const std::uint64_t generation =
        registry.publish_file(event.path, analytics);
    std::printf("seal #%llu (%zu section(s)) -> published generation %llu\n",
                static_cast<unsigned long long>(event.seals),
                event.sections_sealed,
                static_cast<unsigned long long>(generation));
  });

  std::vector<std::uint32_t> ids(antennas);
  for (std::size_t i = 0; i < antennas; ++i) {
    ids[i] = static_cast<std::uint32_t>(1000 + i);
  }
  writer.append_stream_meta(ids, services, hours);

  // A diurnal-ish synthetic tensor: video (service 0) dominates the first
  // half of the antennas, messaging (service 3) the second half.
  ml::Matrix totals(antennas, services);
  std::vector<double> cells(antennas * services);
  for (std::int64_t h = 0; h < hours; ++h) {
    for (std::size_t a = 0; a < antennas; ++a) {
      for (std::size_t s = 0; s < services; ++s) {
        const double base = (a < antennas / 2) == (s == 0) ? 40.0 : 6.0;
        const double diurnal = 1.0 + 0.5 * static_cast<double>(h % 24) / 23.0;
        const double mb = base * diurnal + static_cast<double>(a + s);
        cells[a * services + s] = mb;
        totals(a, s) += mb;
      }
    }
    writer.append_window(h, cells);
  }
  writer.append_matrix(totals);
  writer.sync();  // Barrier: the hook above publishes generation 1.

  // --- 2. Serve it. -------------------------------------------------------
  serve::ServeConfig config = serve::ServeConfig::from_env();
  serve::Server server(config, registry);
  std::printf("serving %s on 127.0.0.1:%u\n", path.c_str(), server.port());
  std::thread reactor([&server] { server.run(); });

  serve::QueryClient client(server.port());
  std::uint32_t request_id = 1;

  auto info = client.call(serve::Opcode::kInfo, {}, request_id++);
  std::printf("info: generation %llu, %zu-byte body\n",
              static_cast<unsigned long long>(info.generation),
              info.body.size());

  const auto slice_body = serve::make_slice_body(
      2, serve::kAllServices, serve::kTotalsHours, serve::kTotalsHours);
  auto slice = client.call(serve::Opcode::kSlice, slice_body, request_id++);
  std::printf("slice totals for antenna 2: status %u, %zu-byte body\n",
              static_cast<unsigned>(slice.status), slice.body.size());

  auto cluster = client.call(serve::Opcode::kCluster,
                             serve::make_cluster_body(5), request_id++);
  std::printf("cluster of antenna 5: status %u\n",
              static_cast<unsigned>(cluster.status));

  auto shap =
      client.call(serve::Opcode::kShap, serve::make_shap_body(0, 2),
                  request_id++);
  std::printf("shap ranking of cluster 0: status %u, %zu-byte body\n",
              static_cast<unsigned>(shap.status), shap.body.size());

  // --- 3. Hot swap under a pinned reader. ---------------------------------
  for (std::int64_t h = hours; h < hours + 24; ++h) {
    writer.append_window(h % hours, cells);
  }
  writer.sync();  // Barrier: generation 2 goes live for *new* pins.

  auto pinned = client.call(serve::Opcode::kPing, {}, request_id++);
  std::printf("after swap, pinned client still sees generation %llu\n",
              static_cast<unsigned long long>(pinned.generation));

  auto repin = client.call(serve::Opcode::kRepin, {}, request_id++);
  std::printf("after repin, client sees generation %llu\n",
              static_cast<unsigned long long>(repin.generation));

  server.stop();
  reactor.join();
  writer.close();
  std::remove(path.c_str());
  std::printf("done: %llu frame(s) served over %llu tick(s)\n",
              static_cast<unsigned long long>(server.stats().frames_served),
              static_cast<unsigned long long>(server.stats().ticks));
  return 0;
}
