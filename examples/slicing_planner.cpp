// Slicing planner — the Sec. 7 use case.
//
// "ICN resource orchestration should not target overall capacity, as in
// outdoor environments, but must take into account the most important
// application usage per indoor environment [...] where the indoor slices
// will be tuned based on the characterizing applications for that specific
// indoor environment."
//
// This example runs the pipeline, condenses each cluster into an operational
// ClusterProfile (characterizing services, peak hour, weekend/night load,
// burstiness), maps every environment to its dominant cluster, and prints a
// per-environment slicing/caching plan.
#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "core/environment_analysis.h"
#include "core/pipeline.h"
#include "core/profiles.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace icn;
  core::PipelineParams params;
  params.scenario.scale = argc > 1 ? std::atof(argv[1]) : 0.25;
  params.scenario.seed = 2023;
  std::cout << "Planning ICN slices from a scale-" << params.scenario.scale
            << " synthetic study...\n";
  const auto result = core::run_pipeline(params);
  const auto& labels = result.clusters.labels;
  const std::size_t k = result.clusters.chosen_k;

  core::ProfileParams profile_params;
  profile_params.top_n = 3;
  profile_params.heatmap.max_antennas = 60;
  const auto profiles = core::build_cluster_profiles(
      result.scenario, result.rsca, labels, k, profile_params);

  std::cout << "\nCluster profiles:\n";
  for (const auto& profile : profiles) {
    std::cout << "  " << core::describe_profile(result.scenario, profile)
              << "\n";
  }

  const core::EnvironmentCorrelation env(result.scenario, labels, k);
  util::TextTable plan({"environment", "dominant cluster", "slice services",
                        "peak", "weekend", "night", "burst"});
  for (const net::Environment e : net::all_environments()) {
    std::size_t best_cluster = 0;
    double best_share = -1.0;
    for (std::size_t c = 0; c < k; ++c) {
      const double share = env.share_of_environment(e, c);
      if (share > best_share) {
        best_share = share;
        best_cluster = c;
      }
    }
    const auto& profile = profiles[best_cluster];
    std::string services;
    for (std::size_t i = 0; i < profile.top_services.size(); ++i) {
      if (i) services += ", ";
      services += result.scenario.catalog().at(profile.top_services[i]).name;
    }
    if (services.empty()) services = "(balanced mix - best effort)";
    plan.add_row({net::environment_name(e),
                  std::to_string(best_cluster) + " (" +
                      util::fmt_percent(best_share, 0) + ")",
                  services, "h" + std::to_string(profile.peak_hour),
                  util::fmt_percent(profile.weekend_ratio, 0),
                  util::fmt_percent(profile.night_share, 0),
                  util::fmt_double(profile.burstiness, 1)});
  }
  std::cout << "\nPer-environment slicing plan (dominant cluster, "
               "characterizing services, dimensioning hints):\n\n";
  plan.print(std::cout);

  std::cout
      << "\nReading of the plan:\n"
         "  * transit environments need music/navigation slices dimensioned\n"
         "    for the commute peaks and can be powered down on weekends;\n"
         "  * stadium/expo slices are event-driven (high burstiness): burst\n"
         "    capacity plus social-media uplink provisioning;\n"
         "  * workspace slices prioritize collaboration traffic and can\n"
         "    reclaim capacity after office hours;\n"
         "  * hotel/hospital slices carry nighttime streaming (high night\n"
         "    share) and benefit from content caching.\n";
  return 0;
}
