// Streaming ingest demo — the online counterpart of probe_pipeline.
//
// The paper's probes ran continuously for two months; this example shows the
// operational loop that makes that practical:
//
//   1. flows arrive hour by hour and stream through the ingest engine,
//      which shards the accumulation over the thread pool and closes hourly
//      windows with an event-time watermark;
//   2. every closed window is checkpointed (appended + fsync'd) to a
//      columnar snapshot, so the plant survives being killed;
//   3. we then kill the ingest mid-study, tear the checkpoint's tail as a
//      crash would, recover, resume, and show the resumed snapshot is
//      bit-identical to the uninterrupted run and to the batch aggregator.
//
// Also measures ingest throughput at several shard counts, demonstrating
// that parallelism changes the clock time but never a single output bit.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/scenario.h"
#include "probe/aggregate.h"
#include "probe/dpi.h"
#include "probe/gtp.h"
#include "probe/probe.h"
#include "stream/ingest.h"
#include "traffic/flows.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace icn;
  using Clock = std::chrono::steady_clock;

  core::ScenarioParams params;
  params.scale = argc > 1 ? std::atof(argv[1]) : 0.008;
  params.seed = 2023;
  params.outdoor_ratio = 0.0;
  const core::Scenario scenario = core::Scenario::build(params);
  const std::size_t n = scenario.num_antennas();
  const std::int64_t hours = 24 * 3;

  std::cout << "Streaming " << n << " antennas x " << scenario.num_services()
            << " services x " << hours << " hours through the probe...\n";

  // Decode flows into sessions once, batched per hour (what the probe
  // delivers to the ingest engine every hour on the hour).
  const traffic::FlowGenerator generator(scenario.temporal(), 99);
  probe::UliDecoder decoder;
  decoder.register_range(generator.ecgi_of(0), static_cast<std::uint32_t>(n));
  probe::DpiClassifier dpi(scenario.catalog());
  probe::PassiveProbe probe(decoder, dpi);

  std::vector<std::vector<probe::ServiceSession>> hourly(
      static_cast<std::size_t>(hours));
  std::size_t total_records = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::int64_t h = 0; h < hours; ++h) {
      const auto flows = generator.flows_for_antenna(i, h, h + 1);
      auto sessions = probe.observe_all(flows);
      auto& bucket = hourly[static_cast<std::size_t>(h)];
      bucket.insert(bucket.end(), sessions.begin(), sessions.end());
      total_records += sessions.size();
    }
  }

  std::vector<std::uint32_t> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = static_cast<std::uint32_t>(i);
  stream::IngestParams ingest_params;
  ingest_params.antenna_ids = ids;
  ingest_params.num_services = scenario.num_services();
  ingest_params.num_hours = hours;

  // Batch reference for the bit-identity checks below.
  probe::HourlyAggregator batch(ids, scenario.num_services(), hours);
  for (const auto& bucket : hourly) batch.add_all(bucket);
  const ml::Matrix reference = batch.traffic_matrix();

  // --- Throughput vs shard count (outputs must not change) ---------------
  util::TextTable table({"shards", "records/sec", "bit-identical"});
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    ingest_params.num_shards = shards;
    stream::StreamIngestor ingest(ingest_params);
    const auto t0 = Clock::now();
    for (const auto& bucket : hourly) ingest.push(bucket);
    ingest.finish();
    const double secs =
        std::chrono::duration<double>(Clock::now() - t0).count();
    const ml::Matrix totals = ingest.traffic_matrix();
    bool identical = totals.data().size() == reference.data().size();
    for (std::size_t i = 0; identical && i < reference.data().size(); ++i) {
      identical = totals.data()[i] == reference.data()[i];
    }
    table.add_row({std::to_string(shards),
                   std::to_string(static_cast<std::size_t>(
                       static_cast<double>(total_records) / secs)),
                   identical ? "yes" : "NO"});
  }
  std::cout << "\n";
  table.print(std::cout);

  // --- Kill, recover, resume --------------------------------------------
  const std::string snap = "stream_ingest.snap";
  ingest_params.num_shards = 4;
  {
    auto writer = stream::begin_checkpoint(snap, ingest_params);
    stream::StreamIngestor ingest(ingest_params, &writer);
    for (std::int64_t h = 0; h < hours / 2; ++h) {
      ingest.push(hourly[static_cast<std::size_t>(h)]);
    }
    // Process dies here: open windows are lost, the file keeps every
    // fsync'd window plus whatever half-written bytes were in flight.
  }
  {
    std::ofstream torn(snap, std::ios::binary | std::ios::app);
    const std::vector<char> garbage(11, 0x00);
    torn.write(garbage.data(), static_cast<std::streamsize>(garbage.size()));
  }

  const auto info = stream::recover_checkpoint(snap);
  std::cout << "\ncrash recovery: kept " << info.recovery.valid_sections
            << " sections (" << info.recovery.valid_bytes << " bytes), "
            << (info.recovery.truncated ? "torn tail truncated"
                                        : "file was clean")
            << ", resuming at hour " << info.first_open_hour << "\n";

  {
    auto writer = store::SnapshotWriter::append_to(snap);
    stream::StreamIngestor ingest(ingest_params, &writer);
    ingest.resume_before(info.first_open_hour);
    for (const auto& bucket : hourly) ingest.push(bucket);
    ingest.finish();
    std::cout << "resume: skipped " << ingest.already_durable()
              << " already-durable records, re-emitted the rest\n";
  }

  const store::MappedSnapshot snapshot(snap);
  const ml::Matrix recovered = stream::totals_from_snapshot(snapshot);
  bool identical = recovered.data().size() == reference.data().size();
  for (std::size_t i = 0; identical && i < reference.data().size(); ++i) {
    identical = recovered.data()[i] == reference.data()[i];
  }
  std::cout << "resumed checkpoint (" << snapshot.windows().size()
            << " windows, " << snapshot.file_size() << " bytes) vs batch: "
            << (identical ? "bit-identical" : "MISMATCH") << "\n";
  std::remove(snap.c_str());
  return identical ? 0 : 1;
}
