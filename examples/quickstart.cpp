// Quickstart: the whole methodology in ~60 lines.
//
// Builds a reduced-scale synthetic nationwide ICN study, computes RSCA
// features, clusters the antennas (Ward + silhouette/Dunn sweep), trains the
// random-forest surrogate, and prints what the paper's Sections 4-5 would
// report: the k-selection sweep, cluster sizes, archetype recovery, and the
// top SHAP services of one cluster.
//
// Run:  ./quickstart [scale]     (default scale 0.25 ~ 1,200 antennas)
#include <cstdlib>
#include <iostream>

#include "core/environment_analysis.h"
#include "core/pipeline.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace icn;
  core::PipelineParams params;
  params.scenario.scale = argc > 1 ? std::atof(argv[1]) : 0.25;
  params.scenario.seed = 2023;

  std::cout << "Building synthetic nationwide ICN study (scale="
            << params.scenario.scale << ") and running the pipeline...\n";
  const core::PipelineResult result = core::run_pipeline(params);

  std::cout << "\nIndoor antennas: " << result.scenario.num_antennas()
            << ", services: " << result.scenario.num_services()
            << ", outdoor antennas: "
            << result.scenario.topology().outdoor().size() << "\n";

  util::TextTable sweep({"k", "silhouette", "dunn"});
  for (const auto& p : result.clusters.sweep) {
    sweep.add_row({std::to_string(p.k), util::fmt_double(p.silhouette, 4),
                   util::fmt_double(p.dunn, 4)});
  }
  std::cout << "\nModel selection sweep (paper Fig. 2):\n";
  sweep.print(std::cout);
  std::cout << "suggested k (steepest drop): "
            << core::suggest_k(result.clusters.sweep)
            << ", chosen k: " << result.clusters.chosen_k << "\n";

  std::cout << "\nArchetype recovery (adjusted Rand index): "
            << util::fmt_double(result.ari_vs_archetypes, 4) << "\n";
  std::cout << "Surrogate fidelity: "
            << util::fmt_double(result.surrogate->fidelity(), 4)
            << " (OOB accuracy "
            << util::fmt_double(result.surrogate->oob_accuracy(), 4) << ")\n";

  const core::EnvironmentCorrelation env(
      result.scenario, result.clusters.labels, result.clusters.chosen_k);
  util::TextTable clusters({"cluster", "size", "paris", "top environment"});
  for (std::size_t c = 0; c < result.clusters.chosen_k; ++c) {
    const net::Environment* best_env = nullptr;
    double best_share = -1.0;
    for (const net::Environment& e : net::all_environments()) {
      const double s = env.share_of_cluster(c, e);
      if (s > best_share) {
        best_share = s;
        best_env = &e;
      }
    }
    clusters.add_row({std::to_string(c), std::to_string(env.cluster_size(c)),
                      util::fmt_percent(env.paris_share(c)),
                      std::string(net::environment_name(*best_env)) + " (" +
                          util::fmt_percent(best_share) + ")"});
  }
  std::cout << "\nClusters at k=" << result.clusters.chosen_k << ":\n";
  clusters.print(std::cout);

  const auto shap = result.surrogate->explain(
      result.rsca, result.clusters.labels, /*max_per_cluster=*/60);
  std::cout << "\nTop services of cluster 3 (paper: workspaces -> Teams, "
               "LinkedIn, mail):\n";
  util::TextTable top({"service", "mean|SHAP|", "direction"});
  for (std::size_t r = 0; r < 8; ++r) {
    const auto& fi = shap.per_cluster[3][r];
    top.add_row(
        {std::string(result.scenario.catalog().at(fi.service).name),
         util::fmt_double(fi.mean_abs_shap, 4),
         fi.mean_value_in_cluster > 0 ? "over-utilized" : "under-utilized"});
  }
  top.print(std::cout);
  return 0;
}
