// Proactive traffic forecasting per cluster — the operational motivation the
// paper opens with (Sec. 1: "understanding and forecasting traffic demands
// enables the proactive configuration of the wireless network").
//
// Trains the hour-of-week seasonal-median baseline on the first weeks of the
// study and evaluates on the last two weeks, per cluster. The periodic
// clusters (commuters, offices, retail) forecast well; the event-driven
// venue clusters do not — the quantitative version of the paper's argument
// that venue provisioning needs event calendars, not just history.
#include <cstdlib>
#include <iostream>
#include <span>
#include <vector>

#include "core/forecast.h"
#include "core/pipeline.h"
#include "traffic/archetypes.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace icn;
  core::PipelineParams params;
  params.scenario.scale = argc > 1 ? std::atof(argv[1]) : 0.15;
  params.scenario.seed = 2023;
  std::cout << "Forecasting per-cluster ICN traffic (scale "
            << params.scenario.scale << ")...\n";
  const auto result = core::run_pipeline(params);
  const auto& temporal = result.scenario.temporal();
  const auto& labels = result.clusters.labels;

  const auto hours = static_cast<std::size_t>(temporal.period().num_hours());
  const std::size_t test_hours = 168 * 2;       // last two weeks
  const std::size_t train_hours = hours - test_hours;

  util::TextTable table(
      {"cluster", "group", "antennas", "sMAPE (seasonal)", "sMAPE (flat)",
       "peak-hour sMAPE", "verdict"});
  for (int c = 0; c < static_cast<int>(result.clusters.chosen_k); ++c) {
    // Median traffic across (up to) 60 antennas of the cluster.
    std::vector<std::size_t> members;
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (labels[i] == c) members.push_back(i);
    }
    if (members.empty()) continue;
    if (members.size() > 60) members.resize(60);
    // Forecast every antenna individually — that is the granularity an MNO
    // provisions at — and report the median error over the cluster. The fits
    // are independent per antenna, so they run as one parallel batch.
    std::vector<std::vector<double>> member_series;
    member_series.reserve(members.size());
    std::vector<std::span<const double>> train_spans;
    train_spans.reserve(members.size());
    for (const std::size_t antenna : members) {
      member_series.push_back(temporal.hourly_total_series(antenna));
      train_spans.push_back(
          std::span<const double>(member_series.back()).first(train_hours));
    }
    const auto forecasters = core::fit_seasonal_batch(train_spans, 168);
    std::vector<double> seasonal_errors, flat_errors, peak_errors;
    for (std::size_t mi = 0; mi < members.size(); ++mi) {
      const auto& series = member_series[mi];
      const auto pred = forecasters[mi].forecast(test_hours);
      const std::span<const double> actual(series.data() + train_hours,
                                           test_hours);
      seasonal_errors.push_back(core::smape(actual, pred));
      double mean = 0.0;
      for (std::size_t t = 0; t < train_hours; ++t) {
        mean += series[t] / static_cast<double>(train_hours);
      }
      const std::vector<double> flat(test_hours, mean);
      flat_errors.push_back(core::smape(actual, flat));
      // Peak-hour error: what capacity planning actually cares about.
      // Evaluate only hours where the actual or the predicted series sits
      // in its own top decile — missed bursts and phantom bursts both land
      // here.
      const double p90_actual = util::quantile(actual, 0.9);
      const double p90_pred = util::quantile(pred, 0.9);
      std::vector<double> peak_actual, peak_pred;
      for (std::size_t t = 0; t < test_hours; ++t) {
        if (actual[t] >= p90_actual || pred[t] >= p90_pred) {
          peak_actual.push_back(actual[t]);
          peak_pred.push_back(pred[t]);
        }
      }
      if (!peak_actual.empty()) {
        peak_errors.push_back(core::smape(peak_actual, peak_pred));
      }
    }
    const double seasonal_error = util::median(seasonal_errors);
    const double flat_error = util::median(flat_errors);
    const double peak_error = util::median(peak_errors);

    const char* verdict =
        peak_error < 0.25
            ? "predictable - proactive config viable"
            : (peak_error < 0.5
                   ? "partially predictable"
                   : "event-driven - needs an event calendar");
    table.add_row({std::to_string(c),
                   traffic::group_name(traffic::archetype_group(c)),
                   std::to_string(members.size()),
                   util::fmt_percent(seasonal_error / 2.0),
                   util::fmt_percent(flat_error / 2.0),
                   util::fmt_percent(peak_error / 2.0), verdict});
  }
  std::cout << "\nHour-of-week seasonal-median forecast of the per-cluster "
               "median traffic\n(trained on weeks 1-"
            << train_hours / 168 << ", tested on the last two weeks; sMAPE "
            << "normalized to [0,100%]):\n\n";
  table.print(std::cout);
  std::cout << "\nNote the test window contains the 19 Jan strike and the "
               "NBA/Sirha events,\nwhich no history-based forecaster can "
               "anticipate — exactly the paper's point\nabout environment-"
               "aware, proactive ICN management.\n";
  return 0;
}
