// Full measurement path (Sec. 3) — from IP flows to the clustering input.
//
//   FlowGenerator -> (GTP-C ULI decode, DPI classification) -> sessions
//   -> hourly aggregation -> two-month T matrix -> RSCA -> Ward clustering.
//
// This is the path the MNO's probes implement in production; here it runs on
// a small synthetic deployment so the whole thing finishes in seconds, and
// it cross-checks the probe-side matrix against the generator's ground
// truth.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/clustering.h"
#include "core/rca.h"
#include "core/scenario.h"
#include "probe/aggregate.h"
#include "probe/dpi.h"
#include "probe/gtp.h"
#include "probe/probe.h"
#include "probe/wire.h"
#include "store/snapshot.h"
#include "traffic/flows.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace icn;
  core::ScenarioParams params;
  params.scale = argc > 1 ? std::atof(argv[1]) : 0.008;
  params.seed = 2023;
  params.outdoor_ratio = 0.0;
  const core::Scenario scenario = core::Scenario::build(params);
  const std::size_t n = scenario.num_antennas();
  // Keep the session volume tractable: measure the first week.
  const std::int64_t hours = 24 * 7;
  std::cout << "Synthesizing flows for " << n << " antennas x "
            << scenario.num_services() << " services x " << hours
            << " hours...\n";

  const traffic::FlowGenerator generator(scenario.temporal(), 99);
  probe::UliDecoder decoder;
  decoder.register_range(generator.ecgi_of(0), static_cast<std::uint32_t>(n));
  probe::DpiClassifier dpi(scenario.catalog());
  probe::PassiveProbe probe(decoder, dpi);

  std::vector<std::uint32_t> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = static_cast<std::uint32_t>(i);
  probe::HourlyAggregator aggregator(ids, scenario.num_services(), hours);

  std::size_t total_flows = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto flows = generator.flows_for_antenna(i, 0, hours);
    total_flows += flows.size();
    aggregator.add_all(probe.observe_all(flows));
  }

  util::TextTable stats({"probe statistic", "value"});
  stats.add_row({"flows observed", std::to_string(total_flows)});
  stats.add_row({"sessions classified", std::to_string(dpi.classified())});
  stats.add_row({"DPI misses", std::to_string(dpi.unmatched())});
  stats.add_row({"unknown ULIs", std::to_string(probe.unknown_location())});
  stats.add_row({"sessions dropped", std::to_string(aggregator.dropped())});
  std::cout << "\n";
  stats.print(std::cout);

  // Byte-level spot check: run the first antenna's first day through the
  // real wire format — GTPv2-C Create Session Requests carrying the ULI and
  // TLS ClientHello records carrying the SNI — and confirm the decoded
  // sessions match the structured path.
  {
    probe::DpiClassifier wire_dpi(scenario.catalog());
    const auto flows = generator.flows_for_antenna(0, 0, 24);
    std::size_t matched = 0;
    std::size_t wire_bytes = 0;
    for (const auto& flow : flows) {
      const auto capture = probe::synthesize_wire(flow);
      wire_bytes += capture.gtpc.size() + capture.client_hello.size();
      const auto session = probe::observe_wire(capture, decoder, wire_dpi);
      if (session && session->antenna_id == 0) ++matched;
    }
    std::cout << "\nwire-format spot check: " << matched << "/"
              << flows.size()
              << " sessions decoded from raw GTP-C + TLS bytes ("
              << wire_bytes << " bytes synthesized)\n";
  }

  // Cross-check: the probe-side matrix equals the generator's tensor.
  const ml::Matrix measured = aggregator.traffic_matrix();
  double max_rel_err = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < scenario.num_services(); ++j) {
      double expected = 0.0;
      const auto series = scenario.temporal().hourly_service_series(i, j);
      for (std::int64_t t = 0; t < hours; ++t) {
        expected += series[static_cast<std::size_t>(t)];
      }
      if (expected > 1e-9) {
        max_rel_err = std::max(
            max_rel_err, std::fabs(measured(i, j) - expected) / expected);
      }
    }
  }
  std::cout << "\nmax relative error probe-vs-generator: " << max_rel_err
            << (max_rel_err < 1e-6 ? "  (exact match)" : "") << "\n";

  // Persist the measured matrix as a columnar snapshot, mmap it back, and
  // confirm the round trip is bit-exact — the artifact a production probe
  // would ship to the analysis plant instead of raw flows.
  {
    const std::string snap_path = "probe_pipeline.snap";
    store::SnapshotWriter writer(snap_path);
    writer.append_matrix(measured);
    writer.sync();
    writer.close();

    const store::MappedSnapshot snapshot(snap_path);
    const auto view = snapshot.matrix();
    std::size_t mismatched = 0;
    if (view) {
      const ml::Matrix reloaded = view->to_matrix();
      for (std::size_t i = 0; i < measured.data().size(); ++i) {
        if (reloaded.data()[i] != measured.data()[i]) ++mismatched;
      }
    }
    std::cout << "\nsnapshot round trip: " << snapshot.file_size()
              << " bytes on disk, "
              << (view && mismatched == 0 ? "bit-identical reload"
                                          : "MISMATCH")
              << "\n";
    std::remove(snap_path.c_str());
  }

  // And the analysis front-end runs directly on the probe output.
  const ml::Matrix rsca = core::compute_rsca(measured);
  core::ClusterAnalysisParams cluster_params;
  cluster_params.chosen_k = 9;
  cluster_params.k_max = std::min<std::size_t>(15, n - 1);
  const auto analysis = core::analyze_clusters(rsca, cluster_params);
  const double ari = util::adjusted_rand_index(
      analysis.labels, scenario.demand().archetype_labels());
  std::cout << "clustering the probe-side RSCA at k=9: ARI vs generative "
               "archetypes = "
            << util::fmt_double(ari, 3) << "\n";
  return 0;
}
