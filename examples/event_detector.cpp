// Event detector — operational use of the temporal models (Sec. 6).
//
// Green-group venues (stadiums, expo centres) generate sporadic,
// non-canonical bursts when events take place. This example watches the
// hourly series of every green-cluster antenna, flags hours whose traffic
// exceeds a robust baseline (median + k * IQR over the same hour-of-day),
// groups the flags into events, and checks the detections against the
// ground-truth venue calendars (including the 19 Jan NBA Paris Game and the
// Sirha Lyon fair).
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <map>
#include <set>

#include "core/pipeline.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

struct Detection {
  std::int64_t day = 0;
  int first_hour = 0;
  int last_hour = 0;
  double peak_ratio = 0.0;
};

/// Flags bursts in one antenna's hourly series.
std::vector<Detection> detect(const std::vector<double>& series,
                              double threshold) {
  // Baseline per hour-of-day: median and IQR across days.
  const std::size_t days = series.size() / 24;
  std::vector<Detection> events;
  std::vector<double> baseline(24), spread(24);
  std::vector<double> column;
  for (int h = 0; h < 24; ++h) {
    column.clear();
    for (std::size_t d = 0; d < days; ++d) {
      column.push_back(series[d * 24 + static_cast<std::size_t>(h)]);
    }
    baseline[static_cast<std::size_t>(h)] = icn::util::median(column);
    spread[static_cast<std::size_t>(h)] =
        icn::util::quantile(column, 0.75) - icn::util::quantile(column, 0.25);
  }
  // Scan for anomalous hours, merging consecutive ones into events.
  Detection current;
  bool open = false;
  for (std::size_t t = 0; t < series.size(); ++t) {
    const int h = static_cast<int>(t % 24);
    const auto d = static_cast<std::int64_t>(t / 24);
    const double base = baseline[static_cast<std::size_t>(h)];
    const double scale = std::max(spread[static_cast<std::size_t>(h)],
                                  0.05 * std::max(base, 1e-9));
    const double score = (series[t] - base) / scale;
    const bool burst = score > threshold;
    if (burst && open && current.day == d) {
      current.last_hour = h;
      current.peak_ratio = std::max(current.peak_ratio, score);
    } else if (burst) {
      if (open) events.push_back(current);
      current = Detection{d, h, h, score};
      open = true;
    } else if (open && (current.day != d || h > current.last_hour + 1)) {
      events.push_back(current);
      open = false;
    }
  }
  if (open) events.push_back(current);
  return events;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace icn;
  core::PipelineParams params;
  params.scenario.scale = argc > 1 ? std::atof(argv[1]) : 0.25;
  params.scenario.seed = 2023;
  std::cout << "Detecting venue events in the green clusters (scale "
            << params.scenario.scale << ")...\n";
  const auto result = core::run_pipeline(params);
  const auto& temporal = result.scenario.temporal();
  const auto& indoor = result.scenario.topology().indoor();
  const auto& labels = result.clusters.labels;

  std::size_t venues = 0, with_truth = 0;
  std::size_t truth_events = 0, detected_truth = 0, false_alarms = 0;
  std::map<std::string, std::size_t> by_label;
  for (std::size_t i = 0; i < indoor.size(); ++i) {
    const int c = labels[i];
    if (traffic::archetype_group(c) != traffic::ClusterGroup::kGreen) {
      continue;
    }
    if (indoor[i].environment != net::Environment::kStadium &&
        indoor[i].environment != net::Environment::kExpo) {
      continue;
    }
    ++venues;
    const auto series = temporal.hourly_total_series(i);
    const auto detections = detect(series, /*threshold=*/8.0);
    const auto truth = temporal.site_events(i);
    if (!truth.empty()) ++with_truth;
    // Match: a truth event is detected when any detection overlaps its day
    // and window (+-1h).
    std::set<std::size_t> used;
    for (const auto& ev : truth) {
      ++truth_events;
      bool hit = false;
      for (std::size_t d = 0; d < detections.size(); ++d) {
        if (detections[d].day != ev.day) continue;
        if (detections[d].last_hour + 1 <
            static_cast<int>(ev.start_hour) - 1) {
          continue;
        }
        if (detections[d].first_hour >
            static_cast<int>(ev.end_hour) + 1) {
          continue;
        }
        hit = true;
        used.insert(d);
        break;
      }
      if (hit) {
        ++detected_truth;
        ++by_label[ev.label];
      }
    }
    false_alarms += detections.size() - used.size();
  }

  util::TextTable table({"metric", "value"});
  table.add_row({"green-cluster venues scanned", std::to_string(venues)});
  table.add_row({"venues with scheduled events", std::to_string(with_truth)});
  table.add_row({"ground-truth events", std::to_string(truth_events)});
  table.add_row({"events detected",
                 std::to_string(detected_truth) + " (" +
                     util::fmt_percent(
                         truth_events
                             ? static_cast<double>(detected_truth) /
                                   static_cast<double>(truth_events)
                             : 0.0) +
                     " recall)"});
  table.add_row({"unmatched detections", std::to_string(false_alarms)});
  std::cout << "\n";
  table.print(std::cout);

  std::cout << "\nDetections by event type:\n";
  util::TextTable types({"event", "detected"});
  for (const auto& [label, count] : by_label) {
    types.add_row({label, std::to_string(count)});
  }
  types.print(std::cout);
  std::cout << "\nThe NBA Paris Game (19 Jan) and Sirha Lyon (19-24 Jan)\n"
               "special events of Sec. 6 are part of the calendar above\n"
               "when the sampled topology includes their venues.\n";
  return 0;
}
