file(REMOVE_RECURSE
  "CMakeFiles/event_detector.dir/event_detector.cpp.o"
  "CMakeFiles/event_detector.dir/event_detector.cpp.o.d"
  "event_detector"
  "event_detector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
