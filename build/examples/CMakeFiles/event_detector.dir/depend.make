# Empty dependencies file for event_detector.
# This may be replaced when dependencies are built.
