# Empty dependencies file for probe_pipeline.
# This may be replaced when dependencies are built.
