file(REMOVE_RECURSE
  "CMakeFiles/probe_pipeline.dir/probe_pipeline.cpp.o"
  "CMakeFiles/probe_pipeline.dir/probe_pipeline.cpp.o.d"
  "probe_pipeline"
  "probe_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probe_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
