
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_clustering.cpp" "tests/CMakeFiles/icn_tests.dir/core/test_clustering.cpp.o" "gcc" "tests/CMakeFiles/icn_tests.dir/core/test_clustering.cpp.o.d"
  "/root/repo/tests/core/test_environment_analysis.cpp" "tests/CMakeFiles/icn_tests.dir/core/test_environment_analysis.cpp.o" "gcc" "tests/CMakeFiles/icn_tests.dir/core/test_environment_analysis.cpp.o.d"
  "/root/repo/tests/core/test_export.cpp" "tests/CMakeFiles/icn_tests.dir/core/test_export.cpp.o" "gcc" "tests/CMakeFiles/icn_tests.dir/core/test_export.cpp.o.d"
  "/root/repo/tests/core/test_forecast.cpp" "tests/CMakeFiles/icn_tests.dir/core/test_forecast.cpp.o" "gcc" "tests/CMakeFiles/icn_tests.dir/core/test_forecast.cpp.o.d"
  "/root/repo/tests/core/test_outdoor.cpp" "tests/CMakeFiles/icn_tests.dir/core/test_outdoor.cpp.o" "gcc" "tests/CMakeFiles/icn_tests.dir/core/test_outdoor.cpp.o.d"
  "/root/repo/tests/core/test_paper_claims.cpp" "tests/CMakeFiles/icn_tests.dir/core/test_paper_claims.cpp.o" "gcc" "tests/CMakeFiles/icn_tests.dir/core/test_paper_claims.cpp.o.d"
  "/root/repo/tests/core/test_pipeline.cpp" "tests/CMakeFiles/icn_tests.dir/core/test_pipeline.cpp.o" "gcc" "tests/CMakeFiles/icn_tests.dir/core/test_pipeline.cpp.o.d"
  "/root/repo/tests/core/test_profiles.cpp" "tests/CMakeFiles/icn_tests.dir/core/test_profiles.cpp.o" "gcc" "tests/CMakeFiles/icn_tests.dir/core/test_profiles.cpp.o.d"
  "/root/repo/tests/core/test_rca.cpp" "tests/CMakeFiles/icn_tests.dir/core/test_rca.cpp.o" "gcc" "tests/CMakeFiles/icn_tests.dir/core/test_rca.cpp.o.d"
  "/root/repo/tests/core/test_scenario.cpp" "tests/CMakeFiles/icn_tests.dir/core/test_scenario.cpp.o" "gcc" "tests/CMakeFiles/icn_tests.dir/core/test_scenario.cpp.o.d"
  "/root/repo/tests/core/test_surrogate.cpp" "tests/CMakeFiles/icn_tests.dir/core/test_surrogate.cpp.o" "gcc" "tests/CMakeFiles/icn_tests.dir/core/test_surrogate.cpp.o.d"
  "/root/repo/tests/core/test_temporal_analysis.cpp" "tests/CMakeFiles/icn_tests.dir/core/test_temporal_analysis.cpp.o" "gcc" "tests/CMakeFiles/icn_tests.dir/core/test_temporal_analysis.cpp.o.d"
  "/root/repo/tests/ml/test_distance.cpp" "tests/CMakeFiles/icn_tests.dir/ml/test_distance.cpp.o" "gcc" "tests/CMakeFiles/icn_tests.dir/ml/test_distance.cpp.o.d"
  "/root/repo/tests/ml/test_forest.cpp" "tests/CMakeFiles/icn_tests.dir/ml/test_forest.cpp.o" "gcc" "tests/CMakeFiles/icn_tests.dir/ml/test_forest.cpp.o.d"
  "/root/repo/tests/ml/test_hungarian.cpp" "tests/CMakeFiles/icn_tests.dir/ml/test_hungarian.cpp.o" "gcc" "tests/CMakeFiles/icn_tests.dir/ml/test_hungarian.cpp.o.d"
  "/root/repo/tests/ml/test_kernelshap.cpp" "tests/CMakeFiles/icn_tests.dir/ml/test_kernelshap.cpp.o" "gcc" "tests/CMakeFiles/icn_tests.dir/ml/test_kernelshap.cpp.o.d"
  "/root/repo/tests/ml/test_linalg.cpp" "tests/CMakeFiles/icn_tests.dir/ml/test_linalg.cpp.o" "gcc" "tests/CMakeFiles/icn_tests.dir/ml/test_linalg.cpp.o.d"
  "/root/repo/tests/ml/test_linkage.cpp" "tests/CMakeFiles/icn_tests.dir/ml/test_linkage.cpp.o" "gcc" "tests/CMakeFiles/icn_tests.dir/ml/test_linkage.cpp.o.d"
  "/root/repo/tests/ml/test_matrix.cpp" "tests/CMakeFiles/icn_tests.dir/ml/test_matrix.cpp.o" "gcc" "tests/CMakeFiles/icn_tests.dir/ml/test_matrix.cpp.o.d"
  "/root/repo/tests/ml/test_metrics.cpp" "tests/CMakeFiles/icn_tests.dir/ml/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/icn_tests.dir/ml/test_metrics.cpp.o.d"
  "/root/repo/tests/ml/test_tree.cpp" "tests/CMakeFiles/icn_tests.dir/ml/test_tree.cpp.o" "gcc" "tests/CMakeFiles/icn_tests.dir/ml/test_tree.cpp.o.d"
  "/root/repo/tests/ml/test_treeshap.cpp" "tests/CMakeFiles/icn_tests.dir/ml/test_treeshap.cpp.o" "gcc" "tests/CMakeFiles/icn_tests.dir/ml/test_treeshap.cpp.o.d"
  "/root/repo/tests/ml/test_validity_extra.cpp" "tests/CMakeFiles/icn_tests.dir/ml/test_validity_extra.cpp.o" "gcc" "tests/CMakeFiles/icn_tests.dir/ml/test_validity_extra.cpp.o.d"
  "/root/repo/tests/net/test_city.cpp" "tests/CMakeFiles/icn_tests.dir/net/test_city.cpp.o" "gcc" "tests/CMakeFiles/icn_tests.dir/net/test_city.cpp.o.d"
  "/root/repo/tests/net/test_environment.cpp" "tests/CMakeFiles/icn_tests.dir/net/test_environment.cpp.o" "gcc" "tests/CMakeFiles/icn_tests.dir/net/test_environment.cpp.o.d"
  "/root/repo/tests/net/test_topology.cpp" "tests/CMakeFiles/icn_tests.dir/net/test_topology.cpp.o" "gcc" "tests/CMakeFiles/icn_tests.dir/net/test_topology.cpp.o.d"
  "/root/repo/tests/probe/test_aggregate.cpp" "tests/CMakeFiles/icn_tests.dir/probe/test_aggregate.cpp.o" "gcc" "tests/CMakeFiles/icn_tests.dir/probe/test_aggregate.cpp.o.d"
  "/root/repo/tests/probe/test_dpi.cpp" "tests/CMakeFiles/icn_tests.dir/probe/test_dpi.cpp.o" "gcc" "tests/CMakeFiles/icn_tests.dir/probe/test_dpi.cpp.o.d"
  "/root/repo/tests/probe/test_failure_injection.cpp" "tests/CMakeFiles/icn_tests.dir/probe/test_failure_injection.cpp.o" "gcc" "tests/CMakeFiles/icn_tests.dir/probe/test_failure_injection.cpp.o.d"
  "/root/repo/tests/probe/test_gtp.cpp" "tests/CMakeFiles/icn_tests.dir/probe/test_gtp.cpp.o" "gcc" "tests/CMakeFiles/icn_tests.dir/probe/test_gtp.cpp.o.d"
  "/root/repo/tests/probe/test_gtpc_codec.cpp" "tests/CMakeFiles/icn_tests.dir/probe/test_gtpc_codec.cpp.o" "gcc" "tests/CMakeFiles/icn_tests.dir/probe/test_gtpc_codec.cpp.o.d"
  "/root/repo/tests/probe/test_probe.cpp" "tests/CMakeFiles/icn_tests.dir/probe/test_probe.cpp.o" "gcc" "tests/CMakeFiles/icn_tests.dir/probe/test_probe.cpp.o.d"
  "/root/repo/tests/probe/test_tls_sni.cpp" "tests/CMakeFiles/icn_tests.dir/probe/test_tls_sni.cpp.o" "gcc" "tests/CMakeFiles/icn_tests.dir/probe/test_tls_sni.cpp.o.d"
  "/root/repo/tests/probe/test_wire.cpp" "tests/CMakeFiles/icn_tests.dir/probe/test_wire.cpp.o" "gcc" "tests/CMakeFiles/icn_tests.dir/probe/test_wire.cpp.o.d"
  "/root/repo/tests/traffic/test_archetypes.cpp" "tests/CMakeFiles/icn_tests.dir/traffic/test_archetypes.cpp.o" "gcc" "tests/CMakeFiles/icn_tests.dir/traffic/test_archetypes.cpp.o.d"
  "/root/repo/tests/traffic/test_demand.cpp" "tests/CMakeFiles/icn_tests.dir/traffic/test_demand.cpp.o" "gcc" "tests/CMakeFiles/icn_tests.dir/traffic/test_demand.cpp.o.d"
  "/root/repo/tests/traffic/test_flows.cpp" "tests/CMakeFiles/icn_tests.dir/traffic/test_flows.cpp.o" "gcc" "tests/CMakeFiles/icn_tests.dir/traffic/test_flows.cpp.o.d"
  "/root/repo/tests/traffic/test_services.cpp" "tests/CMakeFiles/icn_tests.dir/traffic/test_services.cpp.o" "gcc" "tests/CMakeFiles/icn_tests.dir/traffic/test_services.cpp.o.d"
  "/root/repo/tests/traffic/test_temporal.cpp" "tests/CMakeFiles/icn_tests.dir/traffic/test_temporal.cpp.o" "gcc" "tests/CMakeFiles/icn_tests.dir/traffic/test_temporal.cpp.o.d"
  "/root/repo/tests/util/test_ascii.cpp" "tests/CMakeFiles/icn_tests.dir/util/test_ascii.cpp.o" "gcc" "tests/CMakeFiles/icn_tests.dir/util/test_ascii.cpp.o.d"
  "/root/repo/tests/util/test_calendar.cpp" "tests/CMakeFiles/icn_tests.dir/util/test_calendar.cpp.o" "gcc" "tests/CMakeFiles/icn_tests.dir/util/test_calendar.cpp.o.d"
  "/root/repo/tests/util/test_csv.cpp" "tests/CMakeFiles/icn_tests.dir/util/test_csv.cpp.o" "gcc" "tests/CMakeFiles/icn_tests.dir/util/test_csv.cpp.o.d"
  "/root/repo/tests/util/test_error.cpp" "tests/CMakeFiles/icn_tests.dir/util/test_error.cpp.o" "gcc" "tests/CMakeFiles/icn_tests.dir/util/test_error.cpp.o.d"
  "/root/repo/tests/util/test_image.cpp" "tests/CMakeFiles/icn_tests.dir/util/test_image.cpp.o" "gcc" "tests/CMakeFiles/icn_tests.dir/util/test_image.cpp.o.d"
  "/root/repo/tests/util/test_rng.cpp" "tests/CMakeFiles/icn_tests.dir/util/test_rng.cpp.o" "gcc" "tests/CMakeFiles/icn_tests.dir/util/test_rng.cpp.o.d"
  "/root/repo/tests/util/test_stats.cpp" "tests/CMakeFiles/icn_tests.dir/util/test_stats.cpp.o" "gcc" "tests/CMakeFiles/icn_tests.dir/util/test_stats.cpp.o.d"
  "/root/repo/tests/util/test_table.cpp" "tests/CMakeFiles/icn_tests.dir/util/test_table.cpp.o" "gcc" "tests/CMakeFiles/icn_tests.dir/util/test_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/icn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/probe/CMakeFiles/icn_probe.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/icn_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/icn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/icn_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/icn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
