# Empty compiler generated dependencies file for icn_tests.
# This may be replaced when dependencies are built.
