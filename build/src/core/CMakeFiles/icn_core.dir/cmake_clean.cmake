file(REMOVE_RECURSE
  "CMakeFiles/icn_core.dir/clustering.cpp.o"
  "CMakeFiles/icn_core.dir/clustering.cpp.o.d"
  "CMakeFiles/icn_core.dir/environment_analysis.cpp.o"
  "CMakeFiles/icn_core.dir/environment_analysis.cpp.o.d"
  "CMakeFiles/icn_core.dir/export.cpp.o"
  "CMakeFiles/icn_core.dir/export.cpp.o.d"
  "CMakeFiles/icn_core.dir/forecast.cpp.o"
  "CMakeFiles/icn_core.dir/forecast.cpp.o.d"
  "CMakeFiles/icn_core.dir/outdoor.cpp.o"
  "CMakeFiles/icn_core.dir/outdoor.cpp.o.d"
  "CMakeFiles/icn_core.dir/pipeline.cpp.o"
  "CMakeFiles/icn_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/icn_core.dir/profiles.cpp.o"
  "CMakeFiles/icn_core.dir/profiles.cpp.o.d"
  "CMakeFiles/icn_core.dir/rca.cpp.o"
  "CMakeFiles/icn_core.dir/rca.cpp.o.d"
  "CMakeFiles/icn_core.dir/scenario.cpp.o"
  "CMakeFiles/icn_core.dir/scenario.cpp.o.d"
  "CMakeFiles/icn_core.dir/surrogate.cpp.o"
  "CMakeFiles/icn_core.dir/surrogate.cpp.o.d"
  "CMakeFiles/icn_core.dir/temporal_analysis.cpp.o"
  "CMakeFiles/icn_core.dir/temporal_analysis.cpp.o.d"
  "libicn_core.a"
  "libicn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
