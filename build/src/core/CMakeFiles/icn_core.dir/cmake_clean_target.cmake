file(REMOVE_RECURSE
  "libicn_core.a"
)
