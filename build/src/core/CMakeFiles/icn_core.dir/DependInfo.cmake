
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/clustering.cpp" "src/core/CMakeFiles/icn_core.dir/clustering.cpp.o" "gcc" "src/core/CMakeFiles/icn_core.dir/clustering.cpp.o.d"
  "/root/repo/src/core/environment_analysis.cpp" "src/core/CMakeFiles/icn_core.dir/environment_analysis.cpp.o" "gcc" "src/core/CMakeFiles/icn_core.dir/environment_analysis.cpp.o.d"
  "/root/repo/src/core/export.cpp" "src/core/CMakeFiles/icn_core.dir/export.cpp.o" "gcc" "src/core/CMakeFiles/icn_core.dir/export.cpp.o.d"
  "/root/repo/src/core/forecast.cpp" "src/core/CMakeFiles/icn_core.dir/forecast.cpp.o" "gcc" "src/core/CMakeFiles/icn_core.dir/forecast.cpp.o.d"
  "/root/repo/src/core/outdoor.cpp" "src/core/CMakeFiles/icn_core.dir/outdoor.cpp.o" "gcc" "src/core/CMakeFiles/icn_core.dir/outdoor.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/icn_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/icn_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/profiles.cpp" "src/core/CMakeFiles/icn_core.dir/profiles.cpp.o" "gcc" "src/core/CMakeFiles/icn_core.dir/profiles.cpp.o.d"
  "/root/repo/src/core/rca.cpp" "src/core/CMakeFiles/icn_core.dir/rca.cpp.o" "gcc" "src/core/CMakeFiles/icn_core.dir/rca.cpp.o.d"
  "/root/repo/src/core/scenario.cpp" "src/core/CMakeFiles/icn_core.dir/scenario.cpp.o" "gcc" "src/core/CMakeFiles/icn_core.dir/scenario.cpp.o.d"
  "/root/repo/src/core/surrogate.cpp" "src/core/CMakeFiles/icn_core.dir/surrogate.cpp.o" "gcc" "src/core/CMakeFiles/icn_core.dir/surrogate.cpp.o.d"
  "/root/repo/src/core/temporal_analysis.cpp" "src/core/CMakeFiles/icn_core.dir/temporal_analysis.cpp.o" "gcc" "src/core/CMakeFiles/icn_core.dir/temporal_analysis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/icn_util.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/icn_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/icn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/icn_traffic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
