# Empty dependencies file for icn_core.
# This may be replaced when dependencies are built.
