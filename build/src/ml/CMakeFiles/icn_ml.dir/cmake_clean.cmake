file(REMOVE_RECURSE
  "CMakeFiles/icn_ml.dir/distance.cpp.o"
  "CMakeFiles/icn_ml.dir/distance.cpp.o.d"
  "CMakeFiles/icn_ml.dir/exactshap.cpp.o"
  "CMakeFiles/icn_ml.dir/exactshap.cpp.o.d"
  "CMakeFiles/icn_ml.dir/forest.cpp.o"
  "CMakeFiles/icn_ml.dir/forest.cpp.o.d"
  "CMakeFiles/icn_ml.dir/hungarian.cpp.o"
  "CMakeFiles/icn_ml.dir/hungarian.cpp.o.d"
  "CMakeFiles/icn_ml.dir/kernelshap.cpp.o"
  "CMakeFiles/icn_ml.dir/kernelshap.cpp.o.d"
  "CMakeFiles/icn_ml.dir/linalg.cpp.o"
  "CMakeFiles/icn_ml.dir/linalg.cpp.o.d"
  "CMakeFiles/icn_ml.dir/linkage.cpp.o"
  "CMakeFiles/icn_ml.dir/linkage.cpp.o.d"
  "CMakeFiles/icn_ml.dir/matrix.cpp.o"
  "CMakeFiles/icn_ml.dir/matrix.cpp.o.d"
  "CMakeFiles/icn_ml.dir/metrics.cpp.o"
  "CMakeFiles/icn_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/icn_ml.dir/tree.cpp.o"
  "CMakeFiles/icn_ml.dir/tree.cpp.o.d"
  "CMakeFiles/icn_ml.dir/treeshap.cpp.o"
  "CMakeFiles/icn_ml.dir/treeshap.cpp.o.d"
  "libicn_ml.a"
  "libicn_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icn_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
