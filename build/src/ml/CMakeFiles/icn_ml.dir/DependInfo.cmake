
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/distance.cpp" "src/ml/CMakeFiles/icn_ml.dir/distance.cpp.o" "gcc" "src/ml/CMakeFiles/icn_ml.dir/distance.cpp.o.d"
  "/root/repo/src/ml/exactshap.cpp" "src/ml/CMakeFiles/icn_ml.dir/exactshap.cpp.o" "gcc" "src/ml/CMakeFiles/icn_ml.dir/exactshap.cpp.o.d"
  "/root/repo/src/ml/forest.cpp" "src/ml/CMakeFiles/icn_ml.dir/forest.cpp.o" "gcc" "src/ml/CMakeFiles/icn_ml.dir/forest.cpp.o.d"
  "/root/repo/src/ml/hungarian.cpp" "src/ml/CMakeFiles/icn_ml.dir/hungarian.cpp.o" "gcc" "src/ml/CMakeFiles/icn_ml.dir/hungarian.cpp.o.d"
  "/root/repo/src/ml/kernelshap.cpp" "src/ml/CMakeFiles/icn_ml.dir/kernelshap.cpp.o" "gcc" "src/ml/CMakeFiles/icn_ml.dir/kernelshap.cpp.o.d"
  "/root/repo/src/ml/linalg.cpp" "src/ml/CMakeFiles/icn_ml.dir/linalg.cpp.o" "gcc" "src/ml/CMakeFiles/icn_ml.dir/linalg.cpp.o.d"
  "/root/repo/src/ml/linkage.cpp" "src/ml/CMakeFiles/icn_ml.dir/linkage.cpp.o" "gcc" "src/ml/CMakeFiles/icn_ml.dir/linkage.cpp.o.d"
  "/root/repo/src/ml/matrix.cpp" "src/ml/CMakeFiles/icn_ml.dir/matrix.cpp.o" "gcc" "src/ml/CMakeFiles/icn_ml.dir/matrix.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/ml/CMakeFiles/icn_ml.dir/metrics.cpp.o" "gcc" "src/ml/CMakeFiles/icn_ml.dir/metrics.cpp.o.d"
  "/root/repo/src/ml/tree.cpp" "src/ml/CMakeFiles/icn_ml.dir/tree.cpp.o" "gcc" "src/ml/CMakeFiles/icn_ml.dir/tree.cpp.o.d"
  "/root/repo/src/ml/treeshap.cpp" "src/ml/CMakeFiles/icn_ml.dir/treeshap.cpp.o" "gcc" "src/ml/CMakeFiles/icn_ml.dir/treeshap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/icn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
