# Empty compiler generated dependencies file for icn_ml.
# This may be replaced when dependencies are built.
