file(REMOVE_RECURSE
  "libicn_ml.a"
)
