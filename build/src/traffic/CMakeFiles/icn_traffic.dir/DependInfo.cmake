
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/traffic/archetypes.cpp" "src/traffic/CMakeFiles/icn_traffic.dir/archetypes.cpp.o" "gcc" "src/traffic/CMakeFiles/icn_traffic.dir/archetypes.cpp.o.d"
  "/root/repo/src/traffic/demand.cpp" "src/traffic/CMakeFiles/icn_traffic.dir/demand.cpp.o" "gcc" "src/traffic/CMakeFiles/icn_traffic.dir/demand.cpp.o.d"
  "/root/repo/src/traffic/flows.cpp" "src/traffic/CMakeFiles/icn_traffic.dir/flows.cpp.o" "gcc" "src/traffic/CMakeFiles/icn_traffic.dir/flows.cpp.o.d"
  "/root/repo/src/traffic/services.cpp" "src/traffic/CMakeFiles/icn_traffic.dir/services.cpp.o" "gcc" "src/traffic/CMakeFiles/icn_traffic.dir/services.cpp.o.d"
  "/root/repo/src/traffic/temporal.cpp" "src/traffic/CMakeFiles/icn_traffic.dir/temporal.cpp.o" "gcc" "src/traffic/CMakeFiles/icn_traffic.dir/temporal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/icn_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/icn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/icn_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
