# Empty compiler generated dependencies file for icn_traffic.
# This may be replaced when dependencies are built.
