file(REMOVE_RECURSE
  "libicn_traffic.a"
)
