file(REMOVE_RECURSE
  "CMakeFiles/icn_traffic.dir/archetypes.cpp.o"
  "CMakeFiles/icn_traffic.dir/archetypes.cpp.o.d"
  "CMakeFiles/icn_traffic.dir/demand.cpp.o"
  "CMakeFiles/icn_traffic.dir/demand.cpp.o.d"
  "CMakeFiles/icn_traffic.dir/flows.cpp.o"
  "CMakeFiles/icn_traffic.dir/flows.cpp.o.d"
  "CMakeFiles/icn_traffic.dir/services.cpp.o"
  "CMakeFiles/icn_traffic.dir/services.cpp.o.d"
  "CMakeFiles/icn_traffic.dir/temporal.cpp.o"
  "CMakeFiles/icn_traffic.dir/temporal.cpp.o.d"
  "libicn_traffic.a"
  "libicn_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icn_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
