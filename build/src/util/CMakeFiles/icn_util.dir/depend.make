# Empty dependencies file for icn_util.
# This may be replaced when dependencies are built.
