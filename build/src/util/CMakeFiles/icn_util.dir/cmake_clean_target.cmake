file(REMOVE_RECURSE
  "libicn_util.a"
)
