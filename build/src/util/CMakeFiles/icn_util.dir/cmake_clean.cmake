file(REMOVE_RECURSE
  "CMakeFiles/icn_util.dir/ascii.cpp.o"
  "CMakeFiles/icn_util.dir/ascii.cpp.o.d"
  "CMakeFiles/icn_util.dir/calendar.cpp.o"
  "CMakeFiles/icn_util.dir/calendar.cpp.o.d"
  "CMakeFiles/icn_util.dir/csv.cpp.o"
  "CMakeFiles/icn_util.dir/csv.cpp.o.d"
  "CMakeFiles/icn_util.dir/image.cpp.o"
  "CMakeFiles/icn_util.dir/image.cpp.o.d"
  "CMakeFiles/icn_util.dir/rng.cpp.o"
  "CMakeFiles/icn_util.dir/rng.cpp.o.d"
  "CMakeFiles/icn_util.dir/stats.cpp.o"
  "CMakeFiles/icn_util.dir/stats.cpp.o.d"
  "CMakeFiles/icn_util.dir/table.cpp.o"
  "CMakeFiles/icn_util.dir/table.cpp.o.d"
  "libicn_util.a"
  "libicn_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icn_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
