# Empty compiler generated dependencies file for icn_net.
# This may be replaced when dependencies are built.
