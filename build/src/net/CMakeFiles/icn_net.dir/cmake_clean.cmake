file(REMOVE_RECURSE
  "CMakeFiles/icn_net.dir/city.cpp.o"
  "CMakeFiles/icn_net.dir/city.cpp.o.d"
  "CMakeFiles/icn_net.dir/environment.cpp.o"
  "CMakeFiles/icn_net.dir/environment.cpp.o.d"
  "CMakeFiles/icn_net.dir/topology.cpp.o"
  "CMakeFiles/icn_net.dir/topology.cpp.o.d"
  "libicn_net.a"
  "libicn_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icn_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
