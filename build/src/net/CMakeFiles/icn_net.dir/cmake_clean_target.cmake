file(REMOVE_RECURSE
  "libicn_net.a"
)
