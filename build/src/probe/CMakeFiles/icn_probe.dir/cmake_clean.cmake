file(REMOVE_RECURSE
  "CMakeFiles/icn_probe.dir/aggregate.cpp.o"
  "CMakeFiles/icn_probe.dir/aggregate.cpp.o.d"
  "CMakeFiles/icn_probe.dir/dpi.cpp.o"
  "CMakeFiles/icn_probe.dir/dpi.cpp.o.d"
  "CMakeFiles/icn_probe.dir/gtp.cpp.o"
  "CMakeFiles/icn_probe.dir/gtp.cpp.o.d"
  "CMakeFiles/icn_probe.dir/gtpc_codec.cpp.o"
  "CMakeFiles/icn_probe.dir/gtpc_codec.cpp.o.d"
  "CMakeFiles/icn_probe.dir/probe.cpp.o"
  "CMakeFiles/icn_probe.dir/probe.cpp.o.d"
  "CMakeFiles/icn_probe.dir/tls_sni.cpp.o"
  "CMakeFiles/icn_probe.dir/tls_sni.cpp.o.d"
  "CMakeFiles/icn_probe.dir/wire.cpp.o"
  "CMakeFiles/icn_probe.dir/wire.cpp.o.d"
  "libicn_probe.a"
  "libicn_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icn_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
