
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/probe/aggregate.cpp" "src/probe/CMakeFiles/icn_probe.dir/aggregate.cpp.o" "gcc" "src/probe/CMakeFiles/icn_probe.dir/aggregate.cpp.o.d"
  "/root/repo/src/probe/dpi.cpp" "src/probe/CMakeFiles/icn_probe.dir/dpi.cpp.o" "gcc" "src/probe/CMakeFiles/icn_probe.dir/dpi.cpp.o.d"
  "/root/repo/src/probe/gtp.cpp" "src/probe/CMakeFiles/icn_probe.dir/gtp.cpp.o" "gcc" "src/probe/CMakeFiles/icn_probe.dir/gtp.cpp.o.d"
  "/root/repo/src/probe/gtpc_codec.cpp" "src/probe/CMakeFiles/icn_probe.dir/gtpc_codec.cpp.o" "gcc" "src/probe/CMakeFiles/icn_probe.dir/gtpc_codec.cpp.o.d"
  "/root/repo/src/probe/probe.cpp" "src/probe/CMakeFiles/icn_probe.dir/probe.cpp.o" "gcc" "src/probe/CMakeFiles/icn_probe.dir/probe.cpp.o.d"
  "/root/repo/src/probe/tls_sni.cpp" "src/probe/CMakeFiles/icn_probe.dir/tls_sni.cpp.o" "gcc" "src/probe/CMakeFiles/icn_probe.dir/tls_sni.cpp.o.d"
  "/root/repo/src/probe/wire.cpp" "src/probe/CMakeFiles/icn_probe.dir/wire.cpp.o" "gcc" "src/probe/CMakeFiles/icn_probe.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/icn_util.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/icn_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/icn_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/icn_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
