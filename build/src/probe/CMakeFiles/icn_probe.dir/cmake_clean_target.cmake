file(REMOVE_RECURSE
  "libicn_probe.a"
)
