# Empty compiler generated dependencies file for icn_probe.
# This may be replaced when dependencies are built.
