# Empty dependencies file for fig05_shap.
# This may be replaced when dependencies are built.
