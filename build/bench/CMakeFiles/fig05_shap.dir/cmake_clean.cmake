file(REMOVE_RECURSE
  "CMakeFiles/fig05_shap.dir/fig05_shap.cpp.o"
  "CMakeFiles/fig05_shap.dir/fig05_shap.cpp.o.d"
  "fig05_shap"
  "fig05_shap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_shap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
