
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/extension_future_services.cpp" "bench/CMakeFiles/extension_future_services.dir/extension_future_services.cpp.o" "gcc" "bench/CMakeFiles/extension_future_services.dir/extension_future_services.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/icn_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/icn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/probe/CMakeFiles/icn_probe.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/icn_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/icn_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/icn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/icn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
