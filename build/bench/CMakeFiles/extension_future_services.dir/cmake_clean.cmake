file(REMOVE_RECURSE
  "CMakeFiles/extension_future_services.dir/extension_future_services.cpp.o"
  "CMakeFiles/extension_future_services.dir/extension_future_services.cpp.o.d"
  "extension_future_services"
  "extension_future_services.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_future_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
