# Empty dependencies file for extension_future_services.
# This may be replaced when dependencies are built.
