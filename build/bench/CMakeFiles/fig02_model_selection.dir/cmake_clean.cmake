file(REMOVE_RECURSE
  "CMakeFiles/fig02_model_selection.dir/fig02_model_selection.cpp.o"
  "CMakeFiles/fig02_model_selection.dir/fig02_model_selection.cpp.o.d"
  "fig02_model_selection"
  "fig02_model_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_model_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
