# Empty compiler generated dependencies file for fig02_model_selection.
# This may be replaced when dependencies are built.
