file(REMOVE_RECURSE
  "CMakeFiles/fig06_sankey.dir/fig06_sankey.cpp.o"
  "CMakeFiles/fig06_sankey.dir/fig06_sankey.cpp.o.d"
  "fig06_sankey"
  "fig06_sankey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_sankey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
