# Empty dependencies file for fig06_sankey.
# This may be replaced when dependencies are built.
