file(REMOVE_RECURSE
  "../lib/libicn_bench_common.a"
)
