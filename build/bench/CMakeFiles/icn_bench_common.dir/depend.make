# Empty dependencies file for icn_bench_common.
# This may be replaced when dependencies are built.
