file(REMOVE_RECURSE
  "../lib/libicn_bench_common.a"
  "../lib/libicn_bench_common.pdb"
  "CMakeFiles/icn_bench_common.dir/common.cpp.o"
  "CMakeFiles/icn_bench_common.dir/common.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icn_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
