# Empty compiler generated dependencies file for fig01_transforms.
# This may be replaced when dependencies are built.
