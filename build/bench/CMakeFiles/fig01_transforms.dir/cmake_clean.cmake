file(REMOVE_RECURSE
  "CMakeFiles/fig01_transforms.dir/fig01_transforms.cpp.o"
  "CMakeFiles/fig01_transforms.dir/fig01_transforms.cpp.o.d"
  "fig01_transforms"
  "fig01_transforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_transforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
