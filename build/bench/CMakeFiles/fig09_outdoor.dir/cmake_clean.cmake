file(REMOVE_RECURSE
  "CMakeFiles/fig09_outdoor.dir/fig09_outdoor.cpp.o"
  "CMakeFiles/fig09_outdoor.dir/fig09_outdoor.cpp.o.d"
  "fig09_outdoor"
  "fig09_outdoor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_outdoor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
