# Empty dependencies file for fig09_outdoor.
# This may be replaced when dependencies are built.
