file(REMOVE_RECURSE
  "CMakeFiles/fig11_service_temporal.dir/fig11_service_temporal.cpp.o"
  "CMakeFiles/fig11_service_temporal.dir/fig11_service_temporal.cpp.o.d"
  "fig11_service_temporal"
  "fig11_service_temporal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_service_temporal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
