# Empty compiler generated dependencies file for fig11_service_temporal.
# This may be replaced when dependencies are built.
