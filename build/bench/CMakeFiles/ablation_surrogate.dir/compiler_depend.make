# Empty compiler generated dependencies file for ablation_surrogate.
# This may be replaced when dependencies are built.
