file(REMOVE_RECURSE
  "CMakeFiles/ablation_surrogate.dir/ablation_surrogate.cpp.o"
  "CMakeFiles/ablation_surrogate.dir/ablation_surrogate.cpp.o.d"
  "ablation_surrogate"
  "ablation_surrogate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_surrogate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
