# Empty dependencies file for fig08_env_clusters.
# This may be replaced when dependencies are built.
