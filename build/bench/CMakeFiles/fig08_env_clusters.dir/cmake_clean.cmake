file(REMOVE_RECURSE
  "CMakeFiles/fig08_env_clusters.dir/fig08_env_clusters.cpp.o"
  "CMakeFiles/fig08_env_clusters.dir/fig08_env_clusters.cpp.o.d"
  "fig08_env_clusters"
  "fig08_env_clusters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_env_clusters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
