file(REMOVE_RECURSE
  "CMakeFiles/fig10_cluster_temporal.dir/fig10_cluster_temporal.cpp.o"
  "CMakeFiles/fig10_cluster_temporal.dir/fig10_cluster_temporal.cpp.o.d"
  "fig10_cluster_temporal"
  "fig10_cluster_temporal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_cluster_temporal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
