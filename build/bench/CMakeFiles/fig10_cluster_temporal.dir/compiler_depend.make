# Empty compiler generated dependencies file for fig10_cluster_temporal.
# This may be replaced when dependencies are built.
