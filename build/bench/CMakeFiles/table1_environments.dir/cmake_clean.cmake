file(REMOVE_RECURSE
  "CMakeFiles/table1_environments.dir/table1_environments.cpp.o"
  "CMakeFiles/table1_environments.dir/table1_environments.cpp.o.d"
  "table1_environments"
  "table1_environments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_environments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
