# Empty compiler generated dependencies file for table1_environments.
# This may be replaced when dependencies are built.
