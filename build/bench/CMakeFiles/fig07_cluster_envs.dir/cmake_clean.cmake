file(REMOVE_RECURSE
  "CMakeFiles/fig07_cluster_envs.dir/fig07_cluster_envs.cpp.o"
  "CMakeFiles/fig07_cluster_envs.dir/fig07_cluster_envs.cpp.o.d"
  "fig07_cluster_envs"
  "fig07_cluster_envs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_cluster_envs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
