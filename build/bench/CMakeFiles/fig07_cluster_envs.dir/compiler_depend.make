# Empty compiler generated dependencies file for fig07_cluster_envs.
# This may be replaced when dependencies are built.
