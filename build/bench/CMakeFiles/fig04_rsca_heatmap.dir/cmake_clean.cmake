file(REMOVE_RECURSE
  "CMakeFiles/fig04_rsca_heatmap.dir/fig04_rsca_heatmap.cpp.o"
  "CMakeFiles/fig04_rsca_heatmap.dir/fig04_rsca_heatmap.cpp.o.d"
  "fig04_rsca_heatmap"
  "fig04_rsca_heatmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_rsca_heatmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
