# Empty dependencies file for fig04_rsca_heatmap.
# This may be replaced when dependencies are built.
