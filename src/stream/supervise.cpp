#include "stream/supervise.h"

#include <algorithm>
#include <cstring>
#include <iterator>
#include <numeric>
#include <unordered_set>

#include "util/error.h"
#include "util/rng.h"

namespace icn::stream {

struct FeedSupervisor::Runtime {
  FeedSpec spec;
  std::optional<store::SnapshotWriter> writer;
  std::optional<StreamIngestor> ingestor;
  std::optional<quality::RecordValidator> validator;
  std::vector<HourlyWindow> windows;
  std::vector<std::uint8_t> covered;  ///< Per-hour 0/1, length num_hours.
  std::vector<std::uint32_t> rejected_by_hour;  ///< Length num_hours.
  std::vector<std::uint32_t> repaired_by_hour;  ///< Length num_hours.
  std::unordered_set<std::uint64_t> seen;  ///< Accepted batch sequences.

  FeedState state = FeedState::kActive;
  QuarantineReason reason = QuarantineReason::kNone;
  std::int64_t quarantined_at = -1;
  std::int64_t next_due = 0;
  std::int64_t last_progress = 0;
  std::size_t consecutive_failures = 0;
  bool stall_flagged = false;

  std::size_t pulls = 0;
  std::size_t batches = 0;
  std::size_t records = 0;
  std::size_t transients = 0;
  std::size_t retries = 0;
  std::size_t stalls = 0;
  std::size_t dups = 0;
  std::size_t corrupts = 0;

  // ENOSPC degradation (defer_checkpoint_errors): retry schedule for the
  // feed's pending checkpoint windows and seal-time failure count.
  std::size_t ckpt_attempts = 0;
  std::int64_t ckpt_retry_at = -1;  ///< -1 = no retry scheduled.
  std::size_t seal_failures = 0;

  [[nodiscard]] bool terminal() const {
    return state == FeedState::kDone || state == FeedState::kQuarantined;
  }
};

namespace {

/// Drops seal-time sections (kCoverage/kQuarantine) from a recovered
/// checkpoint so a resumed run can regenerate them: replay rebuilds the same
/// coverage and quarantine state and seal() re-appends identical bytes.
void truncate_seal_sections(const std::string& path, store::Vfs* vfs) {
  std::uint64_t seal_at = 0;
  bool found = false;
  for (const auto& section : store::scan_section_index(path, vfs)) {
    if (section.type == store::SectionType::kCoverage ||
        section.type == store::SectionType::kQuarantine) {
      seal_at = section.header_offset;
      found = true;
      break;
    }
  }
  if (!found) return;
  store::vfs_or_default(vfs).truncate(path, seal_at);
}

}  // namespace

FeedSupervisor::FeedSupervisor(SupervisorParams params,
                               std::vector<FeedSpec> specs)
    : FeedSupervisor(std::move(params), std::move(specs), Mode::kFresh) {}

FeedSupervisor FeedSupervisor::resume(SupervisorParams params,
                                      std::vector<FeedSpec> specs) {
  return FeedSupervisor(std::move(params), std::move(specs), Mode::kResume);
}

FeedSupervisor::FeedSupervisor(SupervisorParams params,
                               std::vector<FeedSpec> specs, Mode mode)
    : params_(std::move(params)) {
  ICN_REQUIRE(params_.num_services > 0, "supervisor needs services");
  ICN_REQUIRE(params_.num_hours > 0, "supervisor needs hours");
  ICN_REQUIRE(params_.num_shards >= 1, "supervisor needs >= 1 shard");
  ICN_REQUIRE(params_.allowed_lateness >= 0, "lateness must be >= 0");
  ICN_REQUIRE(params_.backoff.initial_ticks >= 1, "backoff initial >= 1");
  ICN_REQUIRE(params_.backoff.max_ticks >= params_.backoff.initial_ticks,
              "backoff cap below initial delay");
  ICN_REQUIRE(params_.stall_timeout_ticks >= 1, "stall timeout >= 1");
  ICN_REQUIRE(params_.corrupt_strikes >= 1, "corrupt strikes >= 1");
  ICN_REQUIRE(params_.max_ticks >= 1, "max ticks >= 1");
  ICN_REQUIRE(!specs.empty(), "supervisor needs feeds");

  std::unordered_set<std::uint32_t> all_ids;
  for (auto& spec : specs) {
    ICN_REQUIRE(spec.source != nullptr, "feed source must be set");
    ICN_REQUIRE(!spec.antenna_ids.empty(), "feed needs antennas");
    for (const std::uint32_t id : spec.antenna_ids) {
      ICN_REQUIRE(all_ids.insert(id).second,
                  "antenna ids overlap across feeds");
    }
    auto rt = std::make_unique<Runtime>();
    rt->spec = std::move(spec);
    IngestParams ingest;
    ingest.antenna_ids = rt->spec.antenna_ids;
    ingest.num_services = params_.num_services;
    ingest.num_hours = params_.num_hours;
    ingest.num_shards = params_.num_shards;
    ingest.allowed_lateness = params_.allowed_lateness;
    ingest.defer_checkpoint_errors = params_.defer_checkpoint_errors;
    std::int64_t first_open_hour = 0;
    if (!rt->spec.checkpoint_path.empty()) {
      bool fresh_start = mode != Mode::kResume;
      if (mode == Mode::kResume) {
        try {
          const ResumeInfo info =
              recover_checkpoint(rt->spec.checkpoint_path, params_.vfs);
          first_open_hour = info.first_open_hour;
          truncate_seal_sections(rt->spec.checkpoint_path, params_.vfs);
          {
            // Preload the durable windows so windows()/merge() see the full
            // study; the resumed ingestor only re-emits what was lost.
            const store::MappedSnapshot snap(rt->spec.checkpoint_path,
                                             params_.vfs);
            if (!snap.stream_meta()) {
              // A crash can strip recovery down to the bare file header
              // (the kStreamMeta block was never synced). Appending windows
              // to a meta-less file would leave a checkpoint no reader can
              // interpret — recreate it from scratch instead.
              fresh_start = true;
            } else {
              for (const auto& w : snap.windows()) {
                rt->windows.push_back(HourlyWindow{
                    w.hour,
                    std::vector<double>(w.cells.begin(), w.cells.end())});
              }
            }
          }
          if (!fresh_start) {
            rt->writer.emplace(store::SnapshotWriter::append_to(
                rt->spec.checkpoint_path, params_.vfs));
          }
        } catch (const icn::util::IoError&) {
          // Missing or empty file — nothing durable survived the crash.
          fresh_start = true;
        } catch (const store::SnapshotError&) {
          // The header itself is unusable (torn by an unsynced-block loss).
          fresh_start = true;
        }
        if (fresh_start) {
          rt->windows.clear();
          first_open_hour = 0;
        }
      }
      if (fresh_start) {
        rt->writer.emplace(
            begin_checkpoint(rt->spec.checkpoint_path, ingest, params_.vfs));
      }
    }
    rt->ingestor.emplace(std::move(ingest),
                         rt->writer ? &*rt->writer : nullptr);
    if (first_open_hour > 0) rt->ingestor->resume_before(first_open_hour);
    if (params_.quality) {
      quality::ValidatorParams vp = *params_.quality;
      vp.antenna_ids = rt->spec.antenna_ids;
      vp.num_services = params_.num_services;
      vp.num_hours = params_.num_hours;
      rt->validator.emplace(std::move(vp));
    }
    rt->covered.assign(static_cast<std::size_t>(params_.num_hours), 0);
    rt->rejected_by_hour.assign(static_cast<std::size_t>(params_.num_hours),
                                0);
    rt->repaired_by_hour.assign(static_cast<std::size_t>(params_.num_hours),
                                0);
    feeds_.push_back(std::move(rt));
  }
}

FeedSupervisor::~FeedSupervisor() = default;

FeedSupervisor::FeedSupervisor(FeedSupervisor&&) noexcept = default;

std::size_t FeedSupervisor::num_feeds() const { return feeds_.size(); }

bool FeedSupervisor::finished() const {
  return std::all_of(feeds_.begin(), feeds_.end(),
                     [](const auto& f) { return f->terminal(); });
}

bool FeedSupervisor::step() {
  for (std::size_t i = 0; i < feeds_.size(); ++i) {
    const auto& f = *feeds_[i];
    if (f.ckpt_retry_at >= 0 && f.ckpt_retry_at <= tick_ && !f.terminal()) {
      retry_checkpoint(i);
    }
    if (f.terminal() || f.next_due > tick_) continue;
    poll(i);
  }
  ++tick_;
  return !finished();
}

void FeedSupervisor::schedule_checkpoint_retry(std::size_t feed) {
  auto& f = *feeds_[feed];
  ++f.ckpt_attempts;
  // Reuse the pull-retry backoff curve, capped at its max attempt so a
  // long-lived full disk polls at the ceiling instead of overflowing — and
  // unlike pull retries a checkpoint retry never quarantines: the data is
  // safe in memory, only its durability is late.
  const std::size_t attempt =
      std::min(f.ckpt_attempts, params_.backoff.max_retries + 1);
  const std::int64_t delay = backoff_delay(feed, attempt);
  f.ckpt_retry_at = tick_ + delay;
  events_.push_back({tick_, feed, SupervisorEventKind::kCheckpointRetry,
                     static_cast<std::int64_t>(f.ckpt_attempts), delay});
}

void FeedSupervisor::retry_checkpoint(std::size_t feed) {
  auto& f = *feeds_[feed];
  if (f.ingestor->flush_checkpoint()) {
    f.ckpt_attempts = 0;
    f.ckpt_retry_at = -1;
    return;
  }
  schedule_checkpoint_retry(feed);
}

void FeedSupervisor::run() {
  while (!finished()) {
    if (tick_ >= params_.max_ticks) {
      for (std::size_t i = 0; i < feeds_.size(); ++i) {
        if (!feeds_[i]->terminal()) quarantine(i, QuarantineReason::kTimeout);
      }
      return;
    }
    step();
  }
}

std::int64_t FeedSupervisor::backoff_delay(std::size_t feed,
                                           std::size_t attempt) const {
  const auto& b = params_.backoff;
  // Capped exponential: initial * 2^(attempt-1), saturating at max_ticks.
  std::int64_t base = b.max_ticks;
  const std::size_t shift = attempt - 1;
  if (shift < 62 && b.initial_ticks <= (b.max_ticks >> shift)) {
    base = b.initial_ticks << shift;
  }
  // Deterministic jitter in [0, base / 2] so equal-seed runs reproduce the
  // exact schedule while concurrent feeds still desynchronize.
  const auto jitter = static_cast<std::int64_t>(
      icn::util::derive_seed(b.jitter_seed, feed, attempt) %
      static_cast<std::uint64_t>(base / 2 + 1));
  return base + jitter;
}

void FeedSupervisor::poll(std::size_t feed) {
  auto& f = *feeds_[feed];
  ++f.pulls;
  PullResult result;
  try {
    result = f.spec.source->pull();
  } catch (const TransientFeedError&) {
    ++f.transients;
    ++f.consecutive_failures;
    if (f.consecutive_failures > params_.backoff.max_retries) {
      quarantine(feed, QuarantineReason::kRetriesExhausted);
      return;
    }
    const std::int64_t delay = backoff_delay(feed, f.consecutive_failures);
    f.next_due = tick_ + delay;
    f.state = FeedState::kBackoff;
    ++f.retries;
    events_.push_back({tick_, feed, SupervisorEventKind::kRetryScheduled,
                       static_cast<std::int64_t>(f.consecutive_failures),
                       delay});
    return;
  }

  // The channel answered: the transient-failure streak is over.
  f.consecutive_failures = 0;
  if (f.state == FeedState::kBackoff) f.state = FeedState::kActive;

  switch (result.status) {
    case PullStatus::kEndOfStream:
      finish_feed(feed);
      return;
    case PullStatus::kStalled:
      if (!f.stall_flagged &&
          tick_ - f.last_progress >= params_.stall_timeout_ticks) {
        f.stall_flagged = true;
        f.state = FeedState::kStalled;
        ++f.stalls;
        events_.push_back({tick_, feed, SupervisorEventKind::kStallDetected,
                           f.last_progress, 0});
      }
      f.next_due = tick_ + 1;
      return;
    case PullStatus::kBatch:
      accept_batch(feed, std::move(result.batch));
      return;
  }
}

void FeedSupervisor::accept_batch(std::size_t feed, FeedBatch&& batch) {
  auto& f = *feeds_[feed];
  f.next_due = tick_ + 1;

  // Dedup before anything else: a redelivery of an accepted sequence must
  // not double-count, whatever its payload looks like.
  if (f.seen.contains(batch.sequence)) {
    ++f.dups;
    events_.push_back({tick_, feed, SupervisorEventKind::kDuplicateDropped,
                       static_cast<std::int64_t>(batch.sequence), 0});
    return;
  }

  // Structural validation: a truncated delivery or an out-of-range batch
  // header makes the whole batch untrustworthy. The feed may redeliver it
  // intact (the sequence was not accepted), but repeated corruption trips
  // the circuit breaker. With the quality layer disengaged, an out-of-range
  // record also strikes the whole batch (the pre-quality behavior); with it
  // engaged, per-record defects are judged individually below.
  bool corrupt = batch.records.size() != batch.declared_records ||
                 batch.hour < 0 || batch.hour >= params_.num_hours;
  if (!corrupt && !f.validator) {
    for (const auto& s : batch.records) {
      if (s.hour < 0 || s.hour >= params_.num_hours ||
          s.service >= params_.num_services) {
        corrupt = true;
        break;
      }
    }
  }
  if (corrupt) {
    ++f.corrupts;
    events_.push_back({tick_, feed, SupervisorEventKind::kCorruptBatch,
                       static_cast<std::int64_t>(batch.sequence),
                       static_cast<std::int64_t>(batch.declared_records)});
    if (f.corrupts >= params_.corrupt_strikes) {
      quarantine(feed, QuarantineReason::kCorruptData);
    }
    return;
  }

  const std::size_t delivered = batch.records.size();
  std::size_t rejected = 0;
  std::size_t repaired = 0;
  if (f.validator) {
    // Record-level pass: repair in place, compact rejected records out, and
    // log every non-accepted verdict with provenance. Validation precedes
    // the ingest push, so surviving records always satisfy its REQUIREs.
    ledger_.begin_batch(static_cast<std::uint32_t>(feed), batch.sequence,
                        batch.hour);
    const auto hour = static_cast<std::size_t>(batch.hour);
    std::size_t out = 0;
    for (std::size_t i = 0; i < batch.records.size(); ++i) {
      const quality::Verdict verdict =
          f.validator->validate(batch.records[i], batch.hour);
      ledger_.log(i, verdict);
      if (verdict.action == quality::Action::kRejected) {
        ++rejected;
        ++f.rejected_by_hour[hour];
        continue;
      }
      if (verdict.action == quality::Action::kRepaired) {
        ++repaired;
        ++f.repaired_by_hour[hour];
      }
      if (out != i) batch.records[out] = batch.records[i];
      ++out;
    }
    batch.records.resize(out);
    if (rejected > 0 || repaired > 0) {
      events_.push_back({tick_, feed,
                         SupervisorEventKind::kRecordsQuarantined,
                         static_cast<std::int64_t>(rejected),
                         static_cast<std::int64_t>(repaired)});
    }
  }

  f.seen.insert(batch.sequence);
  f.ingestor->push(batch.records);
  if (f.writer && f.ingestor->pending_checkpoint_windows() > 0 &&
      f.ckpt_retry_at < 0) {
    // The in-push flush failed (counted by the ingestor); put the feed on
    // the capped-backoff retry schedule instead of aborting the study.
    schedule_checkpoint_retry(feed);
  }
  auto closed = f.ingestor->take_closed();
  f.windows.insert(f.windows.end(), std::make_move_iterator(closed.begin()),
                   std::make_move_iterator(closed.end()));
  // A batch that lost every record to rejection delivered no trustworthy
  // data for its hour: the coverage gap is the honest accounting.
  if (delivered == 0 || rejected < delivered) {
    f.covered[static_cast<std::size_t>(batch.hour)] = 1;
  }
  ++f.batches;
  f.records += batch.records.size();
  f.last_progress = tick_;
  f.stall_flagged = false;
  f.state = FeedState::kActive;
}

void FeedSupervisor::seal(std::size_t feed) {
  auto& f = *feeds_[feed];
  f.ingestor->finish();
  auto closed = f.ingestor->take_closed();
  f.windows.insert(f.windows.end(), std::make_move_iterator(closed.begin()),
                   std::make_move_iterator(closed.end()));
  if (f.writer) {
    const auto append_seal_sections_and_sync = [&] {
      const bool complete =
          std::all_of(f.covered.begin(), f.covered.end(),
                      [](std::uint8_t b) { return b != 0; });
      if (!complete) {
        // Written only when needed, so a fully-covered checkpoint stays
        // bit-identical to a plain StreamIngestor checkpoint.
        f.writer->append_coverage(1, params_.num_hours, f.covered);
      }
      const bool quarantined_records =
          std::any_of(f.rejected_by_hour.begin(), f.rejected_by_hour.end(),
                      [](std::uint32_t c) { return c != 0; }) ||
          std::any_of(f.repaired_by_hour.begin(), f.repaired_by_hour.end(),
                      [](std::uint32_t c) { return c != 0; });
      if (quarantined_records) {
        // Same contract as kCoverage: a clean feed's checkpoint carries no
        // quality section and stays byte-identical to a pre-quality one.
        f.writer->append_quarantine(params_.num_hours, f.rejected_by_hour,
                                    f.repaired_by_hour);
      }
      f.writer->sync();
    };
    if (params_.defer_checkpoint_errors) {
      // Degraded seal: a disk that still refuses writes must not abort the
      // finished study. An unflushable checkpoint is left crash-equivalent
      // (valid prefix, no seal sections) — resume() replays it like any
      // kill — and every shortfall lands in checkpoint_failures.
      try {
        if (f.ingestor->flush_checkpoint()) {
          append_seal_sections_and_sync();
        } else {
          ++f.seal_failures;
        }
      } catch (const icn::util::IoError&) {
        ++f.seal_failures;
      }
      try {
        f.writer->close();
      } catch (const icn::util::IoError&) {
        ++f.seal_failures;
      }
    } else {
      append_seal_sections_and_sync();
      f.writer->close();
    }
  }
}

void FeedSupervisor::finish_feed(std::size_t feed) {
  auto& f = *feeds_[feed];
  seal(feed);
  f.state = FeedState::kDone;
  const auto covered_hours = static_cast<std::int64_t>(
      std::count(f.covered.begin(), f.covered.end(), std::uint8_t{1}));
  events_.push_back(
      {tick_, feed, SupervisorEventKind::kFeedDone, covered_hours, 0});
}

void FeedSupervisor::quarantine(std::size_t feed, QuarantineReason reason) {
  auto& f = *feeds_[feed];
  seal(feed);
  f.state = FeedState::kQuarantined;
  f.reason = reason;
  f.quarantined_at = tick_;
  events_.push_back({tick_, feed, SupervisorEventKind::kQuarantined,
                     static_cast<std::int64_t>(reason), 0});
}

FeedStats FeedSupervisor::stats(std::size_t feed) const {
  ICN_REQUIRE(feed < feeds_.size(), "feed index");
  const auto& f = *feeds_[feed];
  FeedStats stats;
  stats.name = f.spec.name;
  stats.state = f.state;
  stats.quarantine_reason = f.reason;
  stats.quarantined_at_tick = f.quarantined_at;
  stats.pulls = f.pulls;
  stats.batches_accepted = f.batches;
  stats.records_accepted = f.records;
  stats.transient_failures = f.transients;
  stats.retries_scheduled = f.retries;
  stats.stall_episodes = f.stalls;
  stats.duplicate_batches = f.dups;
  stats.corrupt_batches = f.corrupts;
  stats.late_dropped = f.ingestor->late_dropped();
  stats.untracked_dropped = f.ingestor->untracked_dropped();
  stats.records_repaired = std::accumulate(
      f.repaired_by_hour.begin(), f.repaired_by_hour.end(), std::size_t{0});
  stats.records_rejected = std::accumulate(
      f.rejected_by_hour.begin(), f.rejected_by_hour.end(), std::size_t{0});
  stats.covered_hours = static_cast<std::int64_t>(
      std::count(f.covered.begin(), f.covered.end(), std::uint8_t{1}));
  stats.checkpoint_failures =
      f.ingestor->checkpoint_failures() + f.seal_failures;
  stats.checkpoint_pending = f.ingestor->pending_checkpoint_windows();
  return stats;
}

const std::vector<HourlyWindow>& FeedSupervisor::windows(
    std::size_t feed) const {
  ICN_REQUIRE(feed < feeds_.size(), "feed index");
  return feeds_[feed]->windows;
}

std::span<const std::uint8_t> FeedSupervisor::covered(std::size_t feed) const {
  ICN_REQUIRE(feed < feeds_.size(), "feed index");
  return feeds_[feed]->covered;
}

std::span<const std::uint32_t> FeedSupervisor::rejected_by_hour(
    std::size_t feed) const {
  ICN_REQUIRE(feed < feeds_.size(), "feed index");
  return feeds_[feed]->rejected_by_hour;
}

std::span<const std::uint32_t> FeedSupervisor::repaired_by_hour(
    std::size_t feed) const {
  ICN_REQUIRE(feed < feeds_.size(), "feed index");
  return feeds_[feed]->repaired_by_hour;
}

MergedStudy FeedSupervisor::merge() const {
  ICN_REQUIRE(finished(), "merge needs every feed done or quarantined");
  std::size_t total_rows = 0;
  for (const auto& f : feeds_) total_rows += f->spec.antenna_ids.size();

  MergedStudy study;
  study.traffic = ml::Matrix(total_rows, params_.num_services);
  study.coverage = CoverageMask(total_rows, params_.num_hours);
  const auto hours = static_cast<std::size_t>(params_.num_hours);
  study.quarantine.rejected_by_hour.assign(hours, 0);
  study.quarantine.repaired_by_hour.assign(hours, 0);
  std::size_t row0 = 0;
  for (const auto& f : feeds_) {
    const std::size_t rows = f->spec.antenna_ids.size();
    study.antenna_ids.insert(study.antenna_ids.end(),
                             f->spec.antenna_ids.begin(),
                             f->spec.antenna_ids.end());
    // Fold the feed's windows in closing order — bit-identical to the live
    // ingestor's running totals, and it also covers the durable windows a
    // resumed feed preloaded instead of re-ingesting.
    ml::Matrix totals(rows, params_.num_services);
    for (const auto& w : f->windows) add_window_cells(totals, w.cells);
    std::copy(totals.data().begin(), totals.data().end(),
              study.traffic.data().begin() +
                  static_cast<std::ptrdiff_t>(row0 * params_.num_services));
    for (std::size_t r = 0; r < rows; ++r) {
      study.coverage.set_row(row0 + r, f->covered);
    }
    for (std::size_t h = 0; h < hours; ++h) {
      study.quarantine.rejected_by_hour[h] += f->rejected_by_hour[h];
      study.quarantine.repaired_by_hour[h] += f->repaired_by_hour[h];
    }
    row0 += rows;
  }
  return study;
}

std::string to_string(const SupervisorEvent& event) {
  std::string out = "t=" + std::to_string(event.tick) +
                    " feed=" + std::to_string(event.feed) + " ";
  switch (event.kind) {
    case SupervisorEventKind::kRetryScheduled:
      out += "retry attempt=" + std::to_string(event.a) +
             " delay=" + std::to_string(event.b);
      break;
    case SupervisorEventKind::kStallDetected:
      out += "stall last_progress=" + std::to_string(event.a);
      break;
    case SupervisorEventKind::kDuplicateDropped:
      out += "duplicate seq=" + std::to_string(event.a);
      break;
    case SupervisorEventKind::kCorruptBatch:
      out += "corrupt seq=" + std::to_string(event.a) +
             " declared=" + std::to_string(event.b);
      break;
    case SupervisorEventKind::kQuarantined:
      out += "quarantined reason=" + std::to_string(event.a);
      break;
    case SupervisorEventKind::kFeedDone:
      out += "done covered_hours=" + std::to_string(event.a);
      break;
    case SupervisorEventKind::kRecordsQuarantined:
      out += "records_quarantined rejected=" + std::to_string(event.a) +
             " repaired=" + std::to_string(event.b);
      break;
    case SupervisorEventKind::kCheckpointRetry:
      out += "checkpoint_retry attempt=" + std::to_string(event.a) +
             " delay=" + std::to_string(event.b);
      break;
  }
  return out;
}

std::uint64_t QuarantineCounts::total_rejected() const {
  return std::accumulate(rejected_by_hour.begin(), rejected_by_hour.end(),
                         std::uint64_t{0});
}

std::uint64_t QuarantineCounts::total_repaired() const {
  return std::accumulate(repaired_by_hour.begin(), repaired_by_hour.end(),
                         std::uint64_t{0});
}

bool QuarantineCounts::any() const {
  return total_rejected() != 0 || total_repaired() != 0;
}

MergedStudy merge_snapshots(std::span<const std::string> paths,
                            store::Vfs* vfs) {
  ICN_REQUIRE(!paths.empty(), "merge needs snapshots");

  std::vector<store::MappedSnapshot> snaps;
  std::vector<bool> truncated;
  snaps.reserve(paths.size());
  for (const auto& path : paths) {
    truncated.push_back(store::recover_snapshot(path, vfs).truncated);
    snaps.emplace_back(path, vfs);
  }

  std::size_t num_services = 0;
  std::int64_t num_hours = 0;
  std::size_t total_rows = 0;
  std::unordered_set<std::uint32_t> all_ids;
  MergedStudy study;
  for (std::size_t i = 0; i < snaps.size(); ++i) {
    const auto meta = snaps[i].stream_meta();
    if (!meta) {
      throw store::SnapshotError("snapshot " + paths[i] +
                                 ": no kStreamMeta section");
    }
    if (i == 0) {
      num_services = meta->num_services;
      num_hours = meta->num_hours;
      ICN_REQUIRE(num_services > 0 && num_hours > 0, "merged study shape");
    } else if (meta->num_services != num_services ||
               meta->num_hours != num_hours) {
      throw store::SnapshotError("snapshot " + paths[i] +
                                 ": study shape differs from first snapshot");
    }
    for (const std::uint32_t id : meta->antenna_ids) {
      ICN_REQUIRE(all_ids.insert(id).second,
                  "antenna ids overlap across snapshots");
      study.antenna_ids.push_back(id);
    }
    total_rows += meta->antenna_ids.size();
  }

  study.traffic = ml::Matrix(total_rows, num_services);
  study.coverage = CoverageMask(total_rows, num_hours);
  study.quarantine.rejected_by_hour.assign(
      static_cast<std::size_t>(num_hours), 0);
  study.quarantine.repaired_by_hour.assign(
      static_cast<std::size_t>(num_hours), 0);
  std::size_t row0 = 0;
  for (std::size_t i = 0; i < snaps.size(); ++i) {
    const auto meta = *snaps[i].stream_meta();
    const std::size_t rows = meta.antenna_ids.size();
    const auto windows = snaps[i].windows();
    for (const auto& window : windows) {
      if (window.cells.size() != rows * num_services) {
        throw store::SnapshotError("snapshot " + paths[i] +
                                   ": window shape mismatch");
      }
      const auto out = study.traffic.data();
      for (std::size_t j = 0; j < window.cells.size(); ++j) {
        out[row0 * num_services + j] += window.cells[j];
      }
    }

    std::vector<std::uint8_t> hours(static_cast<std::size_t>(num_hours), 0);
    if (const auto cov = snaps[i].coverage()) {
      if (cov->num_hours != num_hours ||
          (cov->rows != 1 && cov->rows != rows)) {
        throw store::SnapshotError("snapshot " + paths[i] +
                                   ": coverage shape mismatch");
      }
      if (cov->rows == 1) {
        std::copy(cov->covered.begin(), cov->covered.end(), hours.begin());
        for (std::size_t r = 0; r < rows; ++r) {
          study.coverage.set_row(row0 + r, hours);
        }
      } else {
        for (std::size_t r = 0; r < rows; ++r) {
          study.coverage.set_row(
              row0 + r,
              cov->covered.subspan(r * static_cast<std::size_t>(num_hours),
                                   static_cast<std::size_t>(num_hours)));
        }
      }
    } else if (truncated[i]) {
      // The coverage record (always appended last) was lost with the tail:
      // only hours whose windows survived are provably covered.
      for (const auto& window : windows) {
        if (window.hour >= 0 && window.hour < num_hours) {
          hours[static_cast<std::size_t>(window.hour)] = 1;
        }
      }
      for (std::size_t r = 0; r < rows; ++r) {
        study.coverage.set_row(row0 + r, hours);
      }
    } else {
      // A cleanly finished checkpoint without a kCoverage section is a
      // fully-covered feed (the supervisor writes the section only when
      // coverage is incomplete).
      std::fill(hours.begin(), hours.end(), std::uint8_t{1});
      for (std::size_t r = 0; r < rows; ++r) {
        study.coverage.set_row(row0 + r, hours);
      }
    }

    if (const auto quar = snaps[i].quarantine()) {
      if (quar->num_hours != num_hours) {
        throw store::SnapshotError("snapshot " + paths[i] +
                                   ": quarantine shape mismatch");
      }
      for (std::size_t h = 0; h < static_cast<std::size_t>(num_hours); ++h) {
        study.quarantine.rejected_by_hour[h] += quar->rejected[h];
        study.quarantine.repaired_by_hour[h] += quar->repaired[h];
      }
    }
    row0 += rows;
  }
  return study;
}

void write_merged_snapshot(const MergedStudy& study, const std::string& path,
                           store::Vfs* vfs) {
  ICN_REQUIRE(study.traffic.rows() == study.antenna_ids.size(),
              "merged study rows");
  ICN_REQUIRE(study.coverage.rows() == study.traffic.rows(),
              "merged study coverage rows");
  store::write_snapshot_atomic(
      path,
      [&](store::SnapshotWriter& writer) {
        writer.append_stream_meta(study.antenna_ids, study.traffic.cols(),
                                  study.coverage.num_hours());
        writer.append_matrix(study.traffic);
        if (!study.coverage.complete()) {
          writer.append_coverage(study.coverage.rows(),
                                 study.coverage.num_hours(),
                                 study.coverage.bits());
        }
        if (study.quarantine.any()) {
          writer.append_quarantine(study.coverage.num_hours(),
                                   study.quarantine.rejected_by_hour,
                                   study.quarantine.repaired_by_hour);
        }
      },
      vfs);
}

}  // namespace icn::stream
