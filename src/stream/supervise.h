// Feed supervision: N per-probe ingest pipelines under one deterministic
// supervisor (the multi-process ingest of DESIGN.md §8).
//
// The paper's plant ran one passive probe per site for two months; probes
// stall, fail, redeliver, and emit garbage. The supervisor drives one
// StreamIngestor (and optionally one checkpoint snapshot) per probe feed on a
// virtual clock — one tick per polling round, no wall time anywhere — so
// every run over the same feed behavior is exactly reproducible:
//
//  * Heartbeat: a feed that returns "stalled" for stall_timeout_ticks past
//    its last accepted batch is flagged (and kept polled — probes come back).
//  * Retry/backoff: TransientFeedError schedules a retry after a capped
//    exponential backoff plus a deterministic jitter derived from
//    (jitter_seed, feed, attempt). More than max_retries consecutive
//    failures trip the circuit breaker: the feed is quarantined.
//  * Quarantine: repeated corrupt batches (truncated deliveries, out-of-range
//    records) or exhausted retries permanently remove the feed from polling;
//    its already-validated data is kept and its coverage stops there.
//  * Dedup: redelivered batches are dropped by sequence number before they
//    can double-count traffic.
//  * Coverage: every accepted batch marks its event hour covered for the
//    feed's antennas. A finished feed whose coverage is incomplete appends a
//    kCoverage section to its checkpoint; a fully-covered feed writes
//    nothing extra, keeping the checkpoint bit-identical to a plain
//    single-feed StreamIngestor run.
//
// merge() (live) and merge_snapshots() (durable, after recover_snapshot)
// combine the per-probe results into one study tensor whose rows concatenate
// the feeds' antennas, plus the per-(antenna, hour) coverage mask the
// degraded pipeline mode consumes.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "ml/matrix.h"
#include "quality/ledger.h"
#include "store/snapshot.h"
#include "stream/coverage.h"
#include "stream/feed.h"
#include "stream/ingest.h"

namespace icn::stream {

/// Retry policy for transient pull failures.
struct BackoffParams {
  std::int64_t initial_ticks = 1;  ///< Delay before the first retry.
  std::int64_t max_ticks = 16;     ///< Cap on the exponential delay.
  /// Consecutive transient failures tolerated before quarantine.
  std::size_t max_retries = 6;
  /// Seed of the deterministic jitter added to each backoff delay.
  std::uint64_t jitter_seed = 0x1CEB00DAULL;
};

struct SupervisorParams {
  std::size_t num_services = 0;  ///< Requires > 0.
  std::int64_t num_hours = 0;    ///< Requires > 0.
  std::size_t num_shards = 1;    ///< Shards of each per-feed ingestor.
  std::int64_t allowed_lateness = 0;  ///< Must cover the worst clock skew.
  BackoffParams backoff;
  /// Ticks without an accepted batch before a polling feed is flagged
  /// stalled. Requires >= 1.
  std::int64_t stall_timeout_ticks = 8;
  /// Corrupt batches tolerated per feed before quarantine. Requires >= 1.
  std::size_t corrupt_strikes = 3;
  /// Hard bound on run(); feeds still pending then are quarantined with
  /// reason kTimeout.
  std::int64_t max_ticks = 1'000'000;
  /// Record-level data quality (opt-in). When set, the per-record range scan
  /// of accept_batch is replaced by a quality::RecordValidator: repairable
  /// defects are fixed in place, fatal ones drop just the offending record
  /// (logged to the quarantine ledger with provenance) instead of striking
  /// the whole batch. The roster/shape fields (antenna_ids, num_services,
  /// num_hours) are overwritten per feed from the spec and these params.
  /// Disengaged (the default) keeps the pre-quality behavior bit-for-bit.
  std::optional<quality::ValidatorParams> quality;
  /// All checkpoint I/O (create, recover, resume-append, seal) flows through
  /// this Vfs — the disk-fault seam of the chaos suite. nullptr (the
  /// default) is store::posix_vfs(), bit-identical to direct syscalls.
  store::Vfs* vfs = nullptr;
  /// Opt-in graceful degradation on checkpoint I/O errors (the ENOSPC
  /// model): a failed checkpoint append parks the window in memory and the
  /// supervisor retries with its capped backoff schedule
  /// (kCheckpointRetry events); the study always completes, with failures
  /// surfaced in FeedStats::checkpoint_failures. A seal that still cannot
  /// flush leaves the checkpoint file crash-equivalent (a valid prefix
  /// missing its tail) — resume() replays exactly as after a kill. When
  /// false (the default) checkpoint IoErrors propagate and abort the study,
  /// the pre-degradation behavior.
  bool defer_checkpoint_errors = false;
};

/// One probe feed under supervision.
struct FeedSpec {
  std::string name;
  /// Antennas this probe covers; disjoint across feeds. Rows of the merged
  /// study concatenate these in spec order.
  std::vector<std::uint32_t> antenna_ids;
  BatchSource* source = nullptr;  ///< Must outlive the supervisor.
  std::string checkpoint_path;    ///< Empty = no per-probe durability.
};

enum class FeedState : std::uint8_t {
  kActive,
  kStalled,      ///< Heartbeat timeout tripped; still polled.
  kBackoff,      ///< Waiting out a retry delay.
  kDone,         ///< Source reported end of stream.
  kQuarantined,  ///< Circuit breaker tripped; never polled again.
};

enum class QuarantineReason : std::uint8_t {
  kNone,
  kRetriesExhausted,
  kCorruptData,
  kTimeout,
};

struct FeedStats {
  std::string name;
  FeedState state = FeedState::kActive;
  QuarantineReason quarantine_reason = QuarantineReason::kNone;
  std::int64_t quarantined_at_tick = -1;
  std::size_t pulls = 0;
  std::size_t batches_accepted = 0;
  std::size_t records_accepted = 0;
  std::size_t transient_failures = 0;
  std::size_t retries_scheduled = 0;
  std::size_t stall_episodes = 0;
  std::size_t duplicate_batches = 0;
  std::size_t corrupt_batches = 0;
  std::size_t late_dropped = 0;       ///< From the feed's ingestor.
  std::size_t untracked_dropped = 0;  ///< From the feed's ingestor.
  std::size_t records_repaired = 0;   ///< Quality layer (0 when disengaged).
  std::size_t records_rejected = 0;   ///< Quality layer (0 when disengaged).
  std::int64_t covered_hours = 0;
  /// Failed checkpoint append/sync attempts (defer_checkpoint_errors mode;
  /// 0 on a healthy disk). Surfaced study-wide through serve's kHealth.
  std::size_t checkpoint_failures = 0;
  /// Windows closed but not durable in the checkpoint (degraded mode).
  std::size_t checkpoint_pending = 0;
};

enum class SupervisorEventKind : std::uint8_t {
  kRetryScheduled,    ///< a = attempt, b = delay ticks.
  kStallDetected,     ///< a = last progress tick.
  kDuplicateDropped,  ///< a = sequence.
  kCorruptBatch,      ///< a = sequence, b = declared record count.
  kQuarantined,       ///< a = QuarantineReason.
  kFeedDone,          ///< a = covered hours.
  kRecordsQuarantined,  ///< a = records rejected, b = records repaired.
  kCheckpointRetry,   ///< a = attempt, b = delay ticks (ENOSPC degradation).
};

/// One supervision decision — the deterministic audit log two equal-seed
/// runs must reproduce verbatim.
struct SupervisorEvent {
  std::int64_t tick = 0;
  std::size_t feed = 0;
  SupervisorEventKind kind{};
  std::int64_t a = 0;
  std::int64_t b = 0;
  bool operator==(const SupervisorEvent&) const = default;
};

[[nodiscard]] std::string to_string(const SupervisorEvent& event);

/// Per-hour record-quarantine totals of a study (summed across feeds). The
/// arrays are always sized num_hours; all-zero means a clean run.
struct QuarantineCounts {
  std::vector<std::uint32_t> rejected_by_hour;
  std::vector<std::uint32_t> repaired_by_hour;

  [[nodiscard]] std::uint64_t total_rejected() const;
  [[nodiscard]] std::uint64_t total_repaired() const;
  [[nodiscard]] bool any() const;
  bool operator==(const QuarantineCounts&) const = default;
};

/// The merged multi-probe study: tensor rows concatenate the feeds' antennas
/// in spec order, and the mask records which (antenna, hour) cells are
/// backed by delivered data.
struct MergedStudy {
  std::vector<std::uint32_t> antenna_ids;
  ml::Matrix traffic;  ///< (antenna x service) MB totals.
  CoverageMask coverage;
  QuarantineCounts quarantine;  ///< Study-wide per-hour quarantine counts.
};

class FeedSupervisor {
 public:
  /// Feeds with a checkpoint_path get a fresh checkpoint created here.
  /// Requires valid params, >= 1 feed, and globally disjoint antenna ids.
  FeedSupervisor(SupervisorParams params, std::vector<FeedSpec> specs);
  ~FeedSupervisor();  // Out of line: Runtime is an incomplete type here.
  FeedSupervisor(FeedSupervisor&&) noexcept;  // Same reason.
  FeedSupervisor& operator=(FeedSupervisor&&) = delete;
  FeedSupervisor(const FeedSupervisor&) = delete;
  FeedSupervisor& operator=(const FeedSupervisor&) = delete;

  /// Resumes a killed study from the feeds' durable checkpoints. For every
  /// feed with a checkpoint_path: recovers the snapshot (truncating a torn
  /// tail and any seal-time kCoverage/kQuarantine sections, which replay
  /// regenerates), preloads the durable windows, reopens the file for
  /// append, and puts the feed's ingestor in resume_before() mode so the
  /// replayed source skips already-durable records. Sources must replay from
  /// the start of the stream; coverage and quarantine accounting rebuild
  /// fully during replay, so a resumed run converges on the same merged
  /// study, ledger, and checkpoint bytes as an uninterrupted one. Feeds
  /// without a checkpoint_path start fresh. A checkpoint destroyed beyond
  /// use (missing, empty, or an unusable header — e.g. a simulated power
  /// cut tore the first blocks) is equivalent to no checkpoint: that feed
  /// starts fresh and replay regenerates the file, so crash recovery never
  /// aborts on a mangled file.
  [[nodiscard]] static FeedSupervisor resume(SupervisorParams params,
                                             std::vector<FeedSpec> specs);

  /// One polling round: every runnable feed due at the current tick is
  /// polled once, then the virtual clock advances. Returns true while any
  /// feed is not yet done/quarantined.
  bool step();

  /// Drives all feeds to completion or quarantine (bounded by max_ticks).
  void run();

  [[nodiscard]] std::int64_t now() const { return tick_; }
  [[nodiscard]] std::size_t num_feeds() const;
  [[nodiscard]] bool finished() const;

  [[nodiscard]] FeedStats stats(std::size_t feed) const;
  [[nodiscard]] const std::vector<SupervisorEvent>& events() const {
    return events_;
  }

  /// Closed windows of one feed, in closing order (accumulated; not
  /// consumed). Bit-identical to a plain StreamIngestor over the same
  /// batches.
  [[nodiscard]] const std::vector<HourlyWindow>& windows(
      std::size_t feed) const;

  /// Per-hour covered bitmap (0/1 bytes, length num_hours) of one feed.
  [[nodiscard]] std::span<const std::uint8_t> covered(std::size_t feed) const;

  /// The study-wide quarantine ledger (empty when quality is disengaged).
  /// Entries carry the feed index as `probe`.
  [[nodiscard]] const quality::QuarantineLedger& quarantine_ledger() const {
    return ledger_;
  }

  /// Per-hour rejected/repaired record counts of one feed (length
  /// num_hours; all zero when quality is disengaged).
  [[nodiscard]] std::span<const std::uint32_t> rejected_by_hour(
      std::size_t feed) const;
  [[nodiscard]] std::span<const std::uint32_t> repaired_by_hour(
      std::size_t feed) const;

  /// Merges the per-feed totals and coverage into the study tensor.
  /// Requires finished().
  [[nodiscard]] MergedStudy merge() const;

 private:
  struct Runtime;

  enum class Mode : std::uint8_t { kFresh, kResume };
  FeedSupervisor(SupervisorParams params, std::vector<FeedSpec> specs,
                 Mode mode);

  void poll(std::size_t feed);
  void accept_batch(std::size_t feed, FeedBatch&& batch);
  void finish_feed(std::size_t feed);
  void quarantine(std::size_t feed, QuarantineReason reason);
  void seal(std::size_t feed);  ///< Shared tail of finish/quarantine.
  void schedule_checkpoint_retry(std::size_t feed);
  void retry_checkpoint(std::size_t feed);
  [[nodiscard]] std::int64_t backoff_delay(std::size_t feed,
                                           std::size_t attempt) const;

  SupervisorParams params_;
  std::vector<std::unique_ptr<Runtime>> feeds_;
  std::vector<SupervisorEvent> events_;
  quality::QuarantineLedger ledger_;
  std::int64_t tick_ = 0;
};

/// Durable-path merge: recovers each per-probe checkpoint (truncating torn
/// or corrupted tails), loads its windows, and merges them into the study
/// tensor. Coverage per feed comes from its kCoverage section when present;
/// a truncated snapshot without one is credited only for the hours whose
/// windows survived, and a clean snapshot without one counts as fully
/// covered. Quarantine counts sum each snapshot's kQuarantine section (a
/// truncated snapshot that lost it contributes zeros). Requires >= 1 path,
/// consistent services/hours across snapshots, and globally disjoint antenna
/// ids.
[[nodiscard]] MergedStudy merge_snapshots(std::span<const std::string> paths,
                                          store::Vfs* vfs = nullptr);

/// Writes a merged study as one snapshot: kStreamMeta + kMatrix (+ kCoverage
/// when incomplete, + kQuarantine when any record was quarantined).
/// run_pipeline_from_snapshot consumes this directly. The write is
/// crash-atomic (store::write_snapshot_atomic: seal to `<path>.tmp`, fsync,
/// rename, fsync the parent directory), so a concurrent or subsequent reader
/// — serve::SnapshotRegistry::try_publish_file in particular — can only ever
/// observe the previous complete file or the new complete file.
void write_merged_snapshot(const MergedStudy& study, const std::string& path,
                           store::Vfs* vfs = nullptr);

}  // namespace icn::stream
