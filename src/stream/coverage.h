// Per-(antenna, hour) coverage accounting for a multi-probe study.
//
// The paper's tensors silently assume every probe captured every hour; a
// real plant has dropout windows, quarantined feeds, and checkpoints whose
// tails were lost to corruption. The coverage mask records exactly which
// (antenna, hour) cells of the study tensor are backed by delivered data, so
// downstream analysis can exclude under-covered antennas and report what was
// lost instead of treating absence as zero traffic.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace icn::stream {

/// Inclusive-exclusive hour range [first, last).
struct HourRange {
  std::int64_t first = 0;
  std::int64_t last = 0;
  bool operator==(const HourRange&) const = default;
};

/// Dense (antenna row x hour) boolean mask. Default-constructed masks are
/// empty; sized masks start fully uncovered.
class CoverageMask {
 public:
  CoverageMask() = default;
  CoverageMask(std::size_t rows, std::int64_t num_hours);

  /// A mask with every cell covered.
  [[nodiscard]] static CoverageMask full(std::size_t rows,
                                         std::int64_t num_hours);

  void set(std::size_t row, std::int64_t hour, bool covered = true);
  [[nodiscard]] bool covered(std::size_t row, std::int64_t hour) const;

  /// Copies a per-hour bitmap (0/1 bytes, length num_hours) into one row.
  void set_row(std::size_t row, std::span<const std::uint8_t> hours_covered);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::int64_t num_hours() const { return num_hours_; }

  /// Fraction of hours covered for one antenna row, in [0, 1].
  [[nodiscard]] double row_fraction(std::size_t row) const;

  /// Maximal uncovered hour runs of one row, in ascending order.
  [[nodiscard]] std::vector<HourRange> gaps(std::size_t row) const;

  [[nodiscard]] std::size_t covered_cells() const;
  [[nodiscard]] bool complete() const;

  /// Row-major 0/1 bytes (rows * num_hours) — the kCoverage wire payload.
  [[nodiscard]] const std::vector<std::uint8_t>& bits() const { return bits_; }

  bool operator==(const CoverageMask&) const = default;

 private:
  std::size_t rows_ = 0;
  std::int64_t num_hours_ = 0;
  std::vector<std::uint8_t> bits_;  ///< rows * num_hours, row-major 0/1.
};

}  // namespace icn::stream
