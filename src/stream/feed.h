// Batch-source abstraction between a probe process and the feed supervisor.
//
// The paper's plant runs one passive probe per network site; each probe
// delivers its classified sessions as hourly batches over a channel that can
// stall, fail transiently, redeliver, truncate, or skew. This header defines
// the pull-side contract the supervisor programs against:
//
//  * A batch is self-describing: `sequence` (monotonically assigned by the
//    probe, the deduplication key for redelivered batches), `hour` (the event
//    hour the batch covers — the coverage-accounting key), and
//    `declared_records` (the record count the probe committed to, so a
//    truncated delivery is detectable as declared != records.size()).
//  * pull() distinguishes three healthy outcomes (a batch, "nothing yet"
//    while the probe is stalled, end of stream) and one failure mode:
//    throwing TransientFeedError, which the supervisor retries with capped
//    exponential backoff. Anything else thrown is a programming error.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "probe/probe.h"

namespace icn::stream {

/// Thrown by BatchSource::pull() on a retryable failure (connection reset,
/// probe busy, ...). The supervisor schedules a retry with backoff; repeated
/// consecutive failures quarantine the feed.
class TransientFeedError : public std::runtime_error {
 public:
  explicit TransientFeedError(const std::string& what_arg)
      : std::runtime_error(what_arg) {}
};

/// One delivery unit from a probe feed.
struct FeedBatch {
  std::uint64_t sequence = 0;    ///< Dedup key; unique per distinct batch.
  std::int64_t hour = 0;         ///< Event hour this batch covers.
  std::size_t declared_records = 0;  ///< Count the probe committed to.
  std::vector<probe::ServiceSession> records;
};

/// What one pull() produced.
enum class PullStatus : std::uint8_t {
  kBatch,        ///< `batch` is valid.
  kStalled,      ///< Probe alive but nothing ready; poll again later.
  kEndOfStream,  ///< Feed is complete; no further batches will arrive.
};

struct PullResult {
  PullStatus status = PullStatus::kEndOfStream;
  FeedBatch batch;  ///< Valid only when status == kBatch.
};

/// Pull-side interface of one probe feed.
class BatchSource {
 public:
  virtual ~BatchSource() = default;

  /// Delivers the next batch, reports a stall, or signals end of stream.
  /// Throws TransientFeedError on a retryable failure.
  virtual PullResult pull() = 0;
};

/// Well-behaved in-memory feed: delivers a fixed script of batches in order,
/// then end-of-stream. The healthy-path reference for the fault wrappers.
class VectorFeed final : public BatchSource {
 public:
  explicit VectorFeed(std::vector<FeedBatch> script);

  PullResult pull() override;

 private:
  std::vector<FeedBatch> script_;
  std::size_t next_ = 0;
};

/// Builds the hourly batch script a healthy probe would deliver for the given
/// sessions: one batch per hour h in [0, num_hours) — empty when the hour saw
/// no traffic (the probe was up, so the hour still counts as covered) — with
/// sequence == hour and declared_records == records.size(). Records keep
/// their relative order. Sessions with out-of-range hours throw.
[[nodiscard]] std::vector<FeedBatch> hourly_script(
    std::span<const probe::ServiceSession> sessions, std::int64_t num_hours);

}  // namespace icn::stream
