#include "stream/ingest.h"

#include <algorithm>
#include <numeric>

#include "util/error.h"
#include "util/parallel.h"

namespace icn::stream {

StreamIngestor::StreamIngestor(IngestParams params,
                               store::SnapshotWriter* checkpoint)
    : ids_(std::move(params.antenna_ids)),
      num_services_(params.num_services),
      num_hours_(params.num_hours),
      num_shards_(params.num_shards),
      allowed_lateness_(params.allowed_lateness),
      defer_checkpoint_errors_(params.defer_checkpoint_errors),
      checkpoint_(checkpoint),
      totals_(ids_.empty() ? ml::Matrix{}
                           : ml::Matrix(ids_.size(), params.num_services)) {
  ICN_REQUIRE(!ids_.empty(), "ingest needs antennas");
  ICN_REQUIRE(num_services_ > 0, "ingest needs services");
  ICN_REQUIRE(num_hours_ > 0, "ingest needs hours");
  ICN_REQUIRE(num_shards_ >= 1, "ingest needs >= 1 shard");
  ICN_REQUIRE(allowed_lateness_ >= 0, "ingest lateness must be >= 0");
  for (std::size_t r = 0; r < ids_.size(); ++r) {
    const auto [it, inserted] = row_of_.emplace(ids_[r], r);
    ICN_REQUIRE(inserted, "duplicate antenna id in ingest");
  }
}

void StreamIngestor::resume_before(std::int64_t first_open_hour) {
  ICN_REQUIRE(!started_, "resume_before must precede the first push");
  ICN_REQUIRE(first_open_hour >= 0, "resume hour must be >= 0");
  resume_horizon_ = first_open_hour;
  close_before_ = std::max(close_before_, first_open_hour);
}

void StreamIngestor::push(std::span<const probe::ServiceSession> batch) {
  ICN_REQUIRE(!finished_, "push after finish");
  started_ = true;
  if (batch.empty()) return;

  // Serial admission pass: validate event times, apply the watermark rule
  // left by previous batches, materialize open windows, and partition the
  // admitted record indices by antenna shard. Everything here depends only
  // on the record stream, so the outcome is identical for every shard and
  // thread count.
  std::vector<std::vector<std::uint32_t>> shard_idx(num_shards_);
  std::int64_t batch_max = -1;
  std::vector<double>* last_window = nullptr;
  std::int64_t last_hour = -1;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto& s = batch[i];
    ICN_REQUIRE(s.hour >= 0 && s.hour < num_hours_, "session hour index");
    if (s.hour < resume_horizon_) {
      ++already_durable_;
      continue;
    }
    if (s.hour < close_before_) {
      ++late_dropped_;
      continue;
    }
    batch_max = std::max(batch_max, s.hour);
    if (s.hour != last_hour) {
      last_window = &open_.try_emplace(s.hour).first->second;
      if (last_window->empty()) {
        last_window->assign(ids_.size() * num_services_, 0.0);
      }
      last_hour = s.hour;
    }
    shard_idx[s.antenna_id % num_shards_].push_back(
        static_cast<std::uint32_t>(i));
  }

  // Parallel accumulation: shard s owns every record whose antenna id
  // hashes to it, so each (antenna, service, hour) cell is summed by exactly
  // one shard in arrival order — the same addend sequence the batch
  // aggregator uses.
  std::vector<std::size_t> untracked_per_shard(num_shards_, 0);
  icn::util::parallel_for(
      0, num_shards_, 1, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t shard = lo; shard < hi; ++shard) {
          std::size_t untracked = 0;
          std::vector<double>* window = nullptr;
          std::int64_t window_hour = -1;
          for (const std::uint32_t idx : shard_idx[shard]) {
            const auto& s = batch[idx];
            const auto it = row_of_.find(s.antenna_id);
            if (it == row_of_.end()) {
              ++untracked;
              continue;
            }
            ICN_REQUIRE(s.service < num_services_, "session service index");
            if (s.hour != window_hour) {
              window = &open_.find(s.hour)->second;
              window_hour = s.hour;
            }
            (*window)[it->second * num_services_ + s.service] +=
                s.volume_mb();
          }
          untracked_per_shard[shard] = untracked;
        }
      });
  std::size_t accepted_in_batch = 0;
  for (std::size_t shard = 0; shard < num_shards_; ++shard) {
    untracked_dropped_ += untracked_per_shard[shard];
    accepted_in_batch += shard_idx[shard].size();
  }
  accepted_ += accepted_in_batch - std::accumulate(
      untracked_per_shard.begin(), untracked_per_shard.end(), std::size_t{0});

  // Advance the watermark over this batch and close what it passed.
  if (batch_max > watermark_) watermark_ = batch_max;
  close_before_ = std::max(close_before_, watermark_ - allowed_lateness_);
  close_windows_before(close_before_);
}

void StreamIngestor::close_windows_before(std::int64_t bound) {
  bool queued = false;
  while (!open_.empty() && open_.begin()->first < bound) {
    auto node = open_.extract(open_.begin());
    HourlyWindow window{node.key(), std::move(node.mapped())};
    add_window_cells(totals_, window.cells);
    if (checkpoint_ != nullptr) {
      if (defer_checkpoint_errors_) {
        pending_checkpoint_.push_back({window, false});
        queued = true;
      } else {
        checkpoint_->append_window(window.hour, window.cells);
        checkpoint_->sync();
      }
    }
    closed_.push_back(std::move(window));
  }
  // Drain the queue immediately: on a healthy disk this produces the exact
  // append/sync sequence of the direct path, so a no-fault run's checkpoint
  // stays bit-identical; on a failing one the windows stay parked and the
  // caller retries via flush_checkpoint().
  if (queued) flush_checkpoint();
}

bool StreamIngestor::flush_checkpoint() {
  if (checkpoint_ == nullptr) return true;
  while (!pending_checkpoint_.empty()) {
    auto& pending = pending_checkpoint_.front();
    try {
      if (!pending.appended) {
        // append_section rolls a failed append back to the pre-append
        // boundary, so a retry never duplicates a partial section.
        checkpoint_->append_window(pending.window.hour, pending.window.cells);
        pending.appended = true;
      }
      checkpoint_->sync();
    } catch (const icn::util::IoError&) {
      ++checkpoint_failures_;
      return false;
    }
    pending_checkpoint_.pop_front();
  }
  return true;
}

void StreamIngestor::finish() {
  if (finished_) return;
  started_ = true;
  finished_ = true;
  close_windows_before(num_hours_);
}

std::vector<HourlyWindow> StreamIngestor::take_closed() {
  std::vector<HourlyWindow> out;
  out.swap(closed_);
  return out;
}

ml::Matrix StreamIngestor::traffic_matrix() const { return totals_; }

void add_window_cells(ml::Matrix& totals, std::span<const double> cells) {
  ICN_REQUIRE(totals.data().size() == cells.size(),
              "window cells shape mismatch");
  const auto out = totals.data();
  for (std::size_t i = 0; i < cells.size(); ++i) out[i] += cells[i];
}

store::SnapshotWriter begin_checkpoint(const std::string& path,
                                       const IngestParams& params,
                                       store::Vfs* vfs) {
  store::SnapshotWriter writer(path, vfs);
  writer.append_stream_meta(params.antenna_ids, params.num_services,
                            params.num_hours);
  writer.sync();
  return writer;
}

ResumeInfo recover_checkpoint(const std::string& path, store::Vfs* vfs) {
  ResumeInfo info;
  info.recovery = store::recover_snapshot(path, vfs);
  info.first_open_hour = info.recovery.last_window_hour
                             ? *info.recovery.last_window_hour + 1
                             : 0;
  return info;
}

ml::Matrix totals_from_snapshot(const store::MappedSnapshot& snapshot) {
  const auto meta = snapshot.stream_meta();
  if (!meta) {
    throw store::SnapshotError("snapshot has no kStreamMeta section");
  }
  ml::Matrix totals(meta->antenna_ids.size(), meta->num_services);
  for (const auto& window : snapshot.windows()) {
    add_window_cells(totals, window.cells);
  }
  return totals;
}

}  // namespace icn::stream
