// Online ingest engine: the streaming counterpart of probe::HourlyAggregator.
//
// The paper's measurement plant ran continuously for two months; a batch
// aggregator that holds the whole study in memory cannot model that. This
// engine consumes probe ServiceSession records incrementally, accumulates
// them into per-shard (antenna, service) accumulators on the shared
// icn::util::ThreadPool, and closes hourly windows with an event-time
// watermark:
//
//  * The watermark is the maximum event hour seen across all pushed batches.
//    It advances at batch granularity: records of one push() are admitted
//    against the state left by the previous push(), then the watermark
//    advances over the batch. This makes window closing a pure function of
//    the record stream — independent of shard count and thread count.
//  * A window h closes once watermark - allowed_lateness > h. Windows close
//    in ascending hour order. Records arriving for a closed window are
//    counted in late_dropped() and dropped — never silently lost.
//  * Sharding partitions records by antenna id, so all records of one
//    (antenna, service) key land in one shard in arrival order. Each cell is
//    therefore summed in exactly the order the batch aggregator would use,
//    making every emitted window and the running totals bit-identical to
//    probe::HourlyAggregator at any shard count and any thread count.
//
// Durability: give the ingestor a store::SnapshotWriter and every closed
// window is appended as a kWindow section and fsync'd — the checkpoint. After
// a crash, stream::recover_checkpoint() truncates the torn tail and reports
// the first non-durable hour; a new ingestor constructed with
// resume_before(first_open_hour) replays the source stream, skips the
// already-durable windows, and appends the rest, converging on the same file
// an uninterrupted run would have produced.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "ml/matrix.h"
#include "probe/probe.h"
#include "store/snapshot.h"

namespace icn::stream {

/// Streaming ingest configuration.
struct IngestParams {
  /// Tracked antenna ids; rows of emitted windows follow this order.
  /// Requires non-empty, no duplicates.
  std::vector<std::uint32_t> antenna_ids;
  std::size_t num_services = 0;  ///< Requires > 0.
  std::int64_t num_hours = 0;    ///< Event-hour domain [0, num_hours).
  /// Number of accumulator shards; records partition by antenna id. Any
  /// value >= 1 produces bit-identical output.
  std::size_t num_shards = 1;
  /// Hours a window stays open past the watermark (0 = close as soon as a
  /// later hour is seen).
  std::int64_t allowed_lateness = 0;
  /// Opt-in graceful degradation of the checkpoint path (the ENOSPC model):
  /// when true, an icn::util::IoError from the checkpoint append/sync of a
  /// closing window no longer propagates out of push()/finish() — the window
  /// is parked in a pending queue in memory (its data still reaches
  /// take_closed() and the totals) and flush_checkpoint() retries the
  /// durable append later, with every failed attempt counted in
  /// checkpoint_failures(). When false (the default) checkpoint I/O errors
  /// propagate, preserving the pre-degradation behavior bit-for-bit.
  bool defer_checkpoint_errors = false;
};

/// One closed hourly window: dense (antenna x service) MB cells, rows in
/// IngestParams::antenna_ids order.
struct HourlyWindow {
  std::int64_t hour = 0;
  std::vector<double> cells;  ///< num_antennas * num_services, row-major.
};

class StreamIngestor {
 public:
  /// `checkpoint` may be null (no durability); when set it must outlive the
  /// ingestor, and every closed window is appended and fsync'd to it.
  explicit StreamIngestor(IngestParams params,
                          store::SnapshotWriter* checkpoint = nullptr);

  /// Resume mode: windows with hour < first_open_hour are already durable in
  /// a recovered checkpoint. Replayed records for them are counted in
  /// already_durable() and skipped; nothing is re-emitted for those hours.
  /// Must be called before the first push().
  void resume_before(std::int64_t first_open_hour);

  /// Ingests one batch. Records must have hour in [0, num_hours) and
  /// service < num_services (stricter than the batch aggregator: the
  /// watermark needs a valid event time on every record). Untracked antennas
  /// are counted and dropped. May close windows (watermark advance).
  void push(std::span<const probe::ServiceSession> batch);

  /// End of stream: closes every remaining open window in hour order.
  /// Further push() calls are rejected.
  void finish();

  /// Closed windows since the last call, in closing (= ascending hour)
  /// order. Ownership moves to the caller.
  [[nodiscard]] std::vector<HourlyWindow> take_closed();

  /// Running (antenna x service) MB totals over all closed windows —
  /// bit-identical to HourlyAggregator::traffic_matrix() over the same
  /// records once finish() has been called. After resume_before(), totals
  /// cover only the windows closed by this ingestor; fold the recovered
  /// snapshot's windows in with add_window_cells().
  [[nodiscard]] ml::Matrix traffic_matrix() const;

  /// Highest event hour seen, or -1 before any record.
  [[nodiscard]] std::int64_t watermark() const { return watermark_; }

  /// Records dropped because their window had already closed.
  [[nodiscard]] std::size_t late_dropped() const { return late_dropped_; }

  /// Records skipped because their window was durable before resume.
  [[nodiscard]] std::size_t already_durable() const {
    return already_durable_;
  }

  /// Records dropped because their antenna is not tracked.
  [[nodiscard]] std::size_t untracked_dropped() const {
    return untracked_dropped_;
  }

  /// Records accumulated into a window.
  [[nodiscard]] std::size_t accepted() const { return accepted_; }

  /// Retries the checkpoint append of every pending window, in closing
  /// order. Returns true when the queue drained (or was empty / there is no
  /// checkpoint). On an IoError the remaining windows stay queued, the
  /// failure is counted, and false is returned — the caller retries later
  /// (FeedSupervisor does so with capped backoff). A window whose section
  /// was appended but whose fsync failed is retried with a bare sync so the
  /// section is never duplicated.
  bool flush_checkpoint();

  /// Failed checkpoint append/sync attempts (defer_checkpoint_errors mode).
  [[nodiscard]] std::size_t checkpoint_failures() const {
    return checkpoint_failures_;
  }

  /// Windows closed but not yet durable in the checkpoint.
  [[nodiscard]] std::size_t pending_checkpoint_windows() const {
    return pending_checkpoint_.size();
  }

  [[nodiscard]] std::size_t num_antennas() const { return ids_.size(); }
  [[nodiscard]] std::size_t num_services() const { return num_services_; }
  [[nodiscard]] std::size_t num_shards() const { return num_shards_; }
  [[nodiscard]] bool finished() const { return finished_; }

 private:
  void close_windows_before(std::int64_t bound);

  std::vector<std::uint32_t> ids_;
  std::unordered_map<std::uint32_t, std::size_t> row_of_;
  std::size_t num_services_ = 0;
  std::int64_t num_hours_ = 0;
  std::size_t num_shards_ = 1;
  std::int64_t allowed_lateness_ = 0;
  bool defer_checkpoint_errors_ = false;
  store::SnapshotWriter* checkpoint_ = nullptr;

  std::int64_t watermark_ = -1;
  std::int64_t close_before_ = 0;     ///< Windows < this are closed.
  std::int64_t resume_horizon_ = 0;   ///< Windows < this are durable.
  bool started_ = false;
  bool finished_ = false;

  std::map<std::int64_t, std::vector<double>> open_;  ///< hour -> cells.
  std::vector<HourlyWindow> closed_;
  ml::Matrix totals_;

  /// Closed windows awaiting a durable checkpoint append (see
  /// IngestParams::defer_checkpoint_errors). `appended` marks a window whose
  /// section hit the file but whose sync has not yet succeeded.
  struct PendingCheckpoint {
    HourlyWindow window;
    bool appended = false;
  };
  std::deque<PendingCheckpoint> pending_checkpoint_;
  std::size_t checkpoint_failures_ = 0;

  std::size_t late_dropped_ = 0;
  std::size_t already_durable_ = 0;
  std::size_t untracked_dropped_ = 0;
  std::size_t accepted_ = 0;
};

/// Adds one closed window's cells into a totals matrix. Requires the matrix
/// shape to match the window (rows x services == cells.size()).
void add_window_cells(ml::Matrix& totals, std::span<const double> cells);

/// Creates a fresh checkpoint snapshot at `path`: writes the kStreamMeta
/// section describing the ingest and returns the writer to hand to a
/// StreamIngestor. I/O flows through `vfs` (nullptr = posix_vfs()).
[[nodiscard]] store::SnapshotWriter begin_checkpoint(
    const std::string& path, const IngestParams& params,
    store::Vfs* vfs = nullptr);

/// Crash recovery for a checkpoint snapshot: truncates any torn tail and
/// reports where to resume.
struct ResumeInfo {
  store::RecoveryResult recovery;
  /// First hour that is NOT durable: pass to StreamIngestor::resume_before().
  std::int64_t first_open_hour = 0;
};
[[nodiscard]] ResumeInfo recover_checkpoint(const std::string& path,
                                            store::Vfs* vfs = nullptr);

/// Rebuilds the (antenna x service) totals matrix from a checkpoint
/// snapshot's windows — bit-identical to the live ingest totals. Requires a
/// kStreamMeta section.
[[nodiscard]] ml::Matrix totals_from_snapshot(
    const store::MappedSnapshot& snapshot);

}  // namespace icn::stream
