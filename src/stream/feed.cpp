#include "stream/feed.h"

#include "util/error.h"

namespace icn::stream {

VectorFeed::VectorFeed(std::vector<FeedBatch> script)
    : script_(std::move(script)) {}

PullResult VectorFeed::pull() {
  if (next_ >= script_.size()) return {PullStatus::kEndOfStream, {}};
  return {PullStatus::kBatch, script_[next_++]};
}

std::vector<FeedBatch> hourly_script(
    std::span<const probe::ServiceSession> sessions, std::int64_t num_hours) {
  ICN_REQUIRE(num_hours > 0, "script needs hours");
  std::vector<FeedBatch> script(static_cast<std::size_t>(num_hours));
  for (std::int64_t h = 0; h < num_hours; ++h) {
    auto& batch = script[static_cast<std::size_t>(h)];
    batch.sequence = static_cast<std::uint64_t>(h);
    batch.hour = h;
  }
  for (const auto& s : sessions) {
    ICN_REQUIRE(s.hour >= 0 && s.hour < num_hours, "session hour index");
    script[static_cast<std::size_t>(s.hour)].records.push_back(s);
  }
  for (auto& batch : script) batch.declared_records = batch.records.size();
  return script;
}

}  // namespace icn::stream
