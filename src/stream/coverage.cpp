#include "stream/coverage.h"

#include <algorithm>
#include <numeric>

#include "util/error.h"

namespace icn::stream {

CoverageMask::CoverageMask(std::size_t rows, std::int64_t num_hours)
    : rows_(rows), num_hours_(num_hours) {
  ICN_REQUIRE(rows > 0, "coverage mask needs rows");
  ICN_REQUIRE(num_hours > 0, "coverage mask needs hours");
  bits_.assign(rows * static_cast<std::size_t>(num_hours), 0);
}

CoverageMask CoverageMask::full(std::size_t rows, std::int64_t num_hours) {
  CoverageMask mask(rows, num_hours);
  std::fill(mask.bits_.begin(), mask.bits_.end(), std::uint8_t{1});
  return mask;
}

void CoverageMask::set(std::size_t row, std::int64_t hour, bool covered) {
  ICN_REQUIRE(row < rows_, "coverage row index");
  ICN_REQUIRE(hour >= 0 && hour < num_hours_, "coverage hour index");
  bits_[row * static_cast<std::size_t>(num_hours_) +
        static_cast<std::size_t>(hour)] = covered ? 1 : 0;
}

bool CoverageMask::covered(std::size_t row, std::int64_t hour) const {
  ICN_REQUIRE(row < rows_, "coverage row index");
  ICN_REQUIRE(hour >= 0 && hour < num_hours_, "coverage hour index");
  return bits_[row * static_cast<std::size_t>(num_hours_) +
               static_cast<std::size_t>(hour)] != 0;
}

void CoverageMask::set_row(std::size_t row,
                           std::span<const std::uint8_t> hours_covered) {
  ICN_REQUIRE(row < rows_, "coverage row index");
  ICN_REQUIRE(hours_covered.size() == static_cast<std::size_t>(num_hours_),
              "coverage row bitmap size");
  for (std::size_t h = 0; h < hours_covered.size(); ++h) {
    ICN_REQUIRE(hours_covered[h] <= 1, "coverage bitmap must be 0/1");
    bits_[row * static_cast<std::size_t>(num_hours_) + h] = hours_covered[h];
  }
}

double CoverageMask::row_fraction(std::size_t row) const {
  ICN_REQUIRE(row < rows_, "coverage row index");
  const std::size_t hours = static_cast<std::size_t>(num_hours_);
  std::size_t covered_hours = 0;
  for (std::size_t h = 0; h < hours; ++h) {
    covered_hours += bits_[row * hours + h];
  }
  return static_cast<double>(covered_hours) / static_cast<double>(hours);
}

std::vector<HourRange> CoverageMask::gaps(std::size_t row) const {
  ICN_REQUIRE(row < rows_, "coverage row index");
  std::vector<HourRange> out;
  const std::size_t hours = static_cast<std::size_t>(num_hours_);
  std::int64_t run_start = -1;
  for (std::size_t h = 0; h < hours; ++h) {
    const bool hole = bits_[row * hours + h] == 0;
    if (hole && run_start < 0) run_start = static_cast<std::int64_t>(h);
    if (!hole && run_start >= 0) {
      out.push_back({run_start, static_cast<std::int64_t>(h)});
      run_start = -1;
    }
  }
  if (run_start >= 0) out.push_back({run_start, num_hours_});
  return out;
}

std::size_t CoverageMask::covered_cells() const {
  return std::accumulate(bits_.begin(), bits_.end(), std::size_t{0});
}

bool CoverageMask::complete() const {
  return std::all_of(bits_.begin(), bits_.end(),
                     [](std::uint8_t b) { return b != 0; });
}

}  // namespace icn::stream
