// Outdoor comparison (Sec. 5.3): the ~22,000 outdoor macro antennas near the
// ICN sites are measured against the *indoor* utilization baseline (Eq. 5),
// and their cluster is inferred with the trained surrogate forest. The paper
// finds ~70% of them collapse into the general-use cluster 1, with the
// indoor-specific clusters nearly empty — the Fig. 9 distribution.
#pragma once

#include <vector>

#include "core/scenario.h"
#include "core/surrogate.h"
#include "ml/matrix.h"

namespace icn::core {

/// Outdoor classification output.
struct OutdoorComparison {
  ml::Matrix rsca;                  ///< Outdoor RSCA vs indoor baseline.
  std::vector<int> predicted;       ///< Cluster per outdoor antenna.
  std::vector<double> distribution; ///< Fraction of outdoor antennas per cluster.
};

/// Computes the Eq. 5 RSCA of the scenario's outdoor antennas and classifies
/// them with the surrogate. `indoor_traffic` must be the same T matrix the
/// surrogate's clusters were derived from.
[[nodiscard]] OutdoorComparison compare_outdoor(
    const Scenario& scenario, const SurrogateExplainer& surrogate,
    const ml::Matrix& indoor_traffic);

}  // namespace icn::core
