// Cluster analysis of ICN antennas (Sec. 4.2): Ward agglomerative clustering
// on RSCA features, with the Silhouette / Dunn k-selection sweep of Fig. 2.
#pragma once

#include <cstddef>
#include <vector>

#include "ml/linkage.h"
#include "ml/matrix.h"

namespace icn::core {

/// One row of the k-selection sweep (Fig. 2).
struct KSelectionPoint {
  std::size_t k = 0;
  double silhouette = 0.0;
  double dunn = 0.0;
};

/// Cluster-analysis configuration.
struct ClusterAnalysisParams {
  std::size_t k_min = 2;
  std::size_t k_max = 15;
  /// The k to report labels for; the paper selects 9 (steepest post-peak
  /// drop in both metrics). 0 means "use suggest_k on the sweep".
  std::size_t chosen_k = 9;
  ml::Linkage linkage = ml::Linkage::kWard;
};

/// Full cluster-analysis output.
struct ClusterAnalysisResult {
  ml::Dendrogram dendrogram{1, {}};
  std::vector<KSelectionPoint> sweep;  ///< k = k_min .. k_max.
  std::size_t chosen_k = 0;
  std::vector<int> labels;  ///< Cut at chosen_k, deterministic ids.
};

/// Runs the hierarchical clustering, the validity sweep, and the cut.
/// Requires features.rows() > k_max.
[[nodiscard]] ClusterAnalysisResult analyze_clusters(
    const ml::Matrix& features, const ClusterAnalysisParams& params = {});

/// The paper's stopping criterion: a high metric value followed by an abrupt
/// drop. Returns the k whose combined (normalized) silhouette+Dunn drop to
/// k+1 is steepest. Requires a sweep with >= 2 points.
[[nodiscard]] std::size_t suggest_k(const std::vector<KSelectionPoint>& sweep);

}  // namespace icn::core
