#include "core/surrogate.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "ml/metrics.h"
#include "ml/treeshap.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/stats.h"

namespace icn::core {

SurrogateExplainer::SurrogateExplainer(const ml::Matrix& features,
                                       std::span<const int> labels,
                                       int num_clusters,
                                       const SurrogateParams& params)
    : num_clusters_(num_clusters) {
  ICN_REQUIRE(features.rows() == labels.size(), "surrogate input shape");
  ml::RandomForest::Params forest_params;
  forest_params.num_trees = params.num_trees;
  forest_params.max_depth = params.max_depth;
  forest_params.seed = params.seed;
  forest_.fit(features, labels, num_clusters, forest_params);
  fidelity_ = ml::accuracy(forest_.predict_all(features), labels);
}

ShapSummary SurrogateExplainer::explain(const ml::Matrix& features,
                                        std::span<const int> labels,
                                        std::size_t max_per_cluster,
                                        std::uint64_t seed) const {
  ICN_REQUIRE(features.rows() == labels.size(), "explain input shape");
  ICN_REQUIRE(max_per_cluster > 0, "explain sample size");
  const std::size_t m = features.cols();
  const auto k = static_cast<std::size_t>(num_clusters_);

  // Stratified sample: up to max_per_cluster rows from every cluster.
  std::vector<std::size_t> sample;
  {
    icn::util::Rng rng(icn::util::derive_seed(seed, 0x5A3BB1E5ULL));
    for (std::size_t c = 0; c < k; ++c) {
      std::vector<std::size_t> members;
      for (std::size_t i = 0; i < labels.size(); ++i) {
        if (static_cast<std::size_t>(labels[i]) == c) members.push_back(i);
      }
      if (members.size() > max_per_cluster) {
        for (std::size_t i = 0; i < max_per_cluster; ++i) {
          const std::size_t j = i + rng.uniform_index(members.size() - i);
          std::swap(members[i], members[j]);
        }
        members.resize(max_per_cluster);
      }
      sample.insert(sample.end(), members.begin(), members.end());
    }
  }

  // One SHAP evaluation per sampled row covers all clusters at once; the
  // batch runs the per-sample explanations in parallel. Accumulate, per
  // (cluster, feature): sum|phi|, and the moments needed for the value/phi
  // correlation.
  const std::size_t s = sample.size();
  std::vector<std::vector<double>> phi_rows(s);  // s x (m*k), row-major
  {
    const auto phis =
        ml::forest_shap_batch(forest_, features.select_rows(sample));
    for (std::size_t r = 0; r < s; ++r) {
      phi_rows[r].assign(phis[r].data().begin(), phis[r].data().end());
    }
  }

  // Per-cluster mean RSCA value of each feature over that cluster's rows
  // (over the full dataset, not just the sample — cheap).
  std::vector<std::vector<double>> mean_value(
      k, std::vector<double>(m, 0.0));
  {
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < labels.size(); ++i) {
      const auto c = static_cast<std::size_t>(labels[i]);
      ++counts[c];
      const auto row = features.row(i);
      for (std::size_t f = 0; f < m; ++f) mean_value[c][f] += row[f];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;
      for (std::size_t f = 0; f < m; ++f) {
        mean_value[c][f] /= static_cast<double>(counts[c]);
      }
    }
  }

  ShapSummary summary;
  summary.base_values = ml::forest_base_values(forest_);
  summary.samples_used = s;
  summary.per_cluster.resize(k);
  std::vector<double> values(s), phis(s);
  for (std::size_t c = 0; c < k; ++c) {
    std::vector<FeatureImpact> impacts(m);
    for (std::size_t f = 0; f < m; ++f) {
      double abs_sum = 0.0;
      for (std::size_t r = 0; r < s; ++r) {
        const double phi = phi_rows[r][f * k + c];
        abs_sum += std::fabs(phi);
        values[r] = features(sample[r], f);
        phis[r] = phi;
      }
      FeatureImpact& fi = impacts[f];
      fi.service = f;
      fi.mean_abs_shap = abs_sum / static_cast<double>(s);
      fi.value_shap_correlation = icn::util::pearson(values, phis);
      fi.mean_value_in_cluster = mean_value[c][f];
    }
    std::sort(impacts.begin(), impacts.end(),
              [](const FeatureImpact& a, const FeatureImpact& b) {
                return a.mean_abs_shap > b.mean_abs_shap;
              });
    summary.per_cluster[c] = std::move(impacts);
  }
  return summary;
}

std::vector<int> SurrogateExplainer::classify(
    const ml::Matrix& features) const {
  return forest_.predict_all(features);
}

}  // namespace icn::core
