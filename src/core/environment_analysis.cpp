#include "core/environment_analysis.h"

#include <string>

#include "util/error.h"

namespace icn::core {

EnvironmentCorrelation::EnvironmentCorrelation(const Scenario& scenario,
                                               std::span<const int> labels,
                                               std::size_t k)
    : k_(k) {
  const auto& indoor = scenario.topology().indoor();
  ICN_REQUIRE(labels.size() == indoor.size(), "labels vs antennas");
  ICN_REQUIRE(k >= 1, "cluster count");
  counts_.assign(k, std::vector<std::size_t>(net::kNumEnvironments, 0));
  cluster_sizes_.assign(k, 0);
  paris_counts_.assign(k, 0);
  for (std::size_t i = 0; i < indoor.size(); ++i) {
    ICN_REQUIRE(labels[i] >= 0 && static_cast<std::size_t>(labels[i]) < k,
                "label out of range");
    const auto c = static_cast<std::size_t>(labels[i]);
    const auto e = static_cast<std::size_t>(indoor[i].environment);
    ++counts_[c][e];
    ++cluster_sizes_[c];
    if (net::is_paris(indoor[i].city)) ++paris_counts_[c];
  }
}

std::size_t EnvironmentCorrelation::count(std::size_t cluster,
                                          net::Environment env) const {
  ICN_REQUIRE(cluster < k_, "cluster index");
  return counts_[cluster][static_cast<std::size_t>(env)];
}

std::size_t EnvironmentCorrelation::cluster_size(std::size_t cluster) const {
  ICN_REQUIRE(cluster < k_, "cluster index");
  return cluster_sizes_[cluster];
}

std::size_t EnvironmentCorrelation::environment_size(
    net::Environment env) const {
  std::size_t total = 0;
  for (std::size_t c = 0; c < k_; ++c) {
    total += counts_[c][static_cast<std::size_t>(env)];
  }
  return total;
}

double EnvironmentCorrelation::share_of_cluster(std::size_t cluster,
                                                net::Environment env) const {
  const std::size_t size = cluster_size(cluster);
  if (size == 0) return 0.0;
  return static_cast<double>(count(cluster, env)) /
         static_cast<double>(size);
}

double EnvironmentCorrelation::share_of_environment(
    net::Environment env, std::size_t cluster) const {
  const std::size_t size = environment_size(env);
  if (size == 0) return 0.0;
  return static_cast<double>(count(cluster, env)) /
         static_cast<double>(size);
}

double EnvironmentCorrelation::paris_share(std::size_t cluster) const {
  const std::size_t size = cluster_size(cluster);
  if (size == 0) return 0.0;
  return static_cast<double>(paris_counts_[cluster]) /
         static_cast<double>(size);
}

std::vector<icn::util::SankeyFlow> EnvironmentCorrelation::sankey_flows()
    const {
  std::vector<icn::util::SankeyFlow> flows;
  for (std::size_t c = 0; c < k_; ++c) {
    for (const net::Environment env : net::all_environments()) {
      const std::size_t n = count(c, env);
      if (n == 0) continue;
      flows.push_back(icn::util::SankeyFlow{
          "cluster " + std::to_string(c), net::environment_name(env),
          static_cast<double>(n)});
    }
  }
  return flows;
}

}  // namespace icn::core
