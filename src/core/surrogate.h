// Surrogate explainability (Sec. 5.1.2): agglomerative clustering has no
// black-box f to explain, so a random-forest classifier is trained to
// reproduce the cluster labels from the RSCA features, and TreeSHAP is run on
// the forest. The per-cluster SHAP summaries are the data behind the
// beeswarm plots of Fig. 5; the fitted forest also generalizes the clustering
// to new samples — that is how the outdoor antennas of Fig. 9 are assigned.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/forest.h"
#include "ml/matrix.h"

namespace icn::core {

/// Importance of one service for one cluster, derived from SHAP values.
struct FeatureImpact {
  std::size_t service = 0;      ///< Feature (service) index.
  double mean_abs_shap = 0.0;   ///< Ranking key of the beeswarm plot.
  /// Pearson correlation between the feature value and its SHAP value for
  /// this cluster: > 0 means over-utilization drives membership, < 0 means
  /// under-utilization does (the red/blue direction of Fig. 5).
  double value_shap_correlation = 0.0;
  /// Mean feature (RSCA) value over the cluster's own antennas: the sign
  /// directly reads as over- (>0) or under- (<0) utilization.
  double mean_value_in_cluster = 0.0;
};

/// Per-cluster SHAP summary (Fig. 5a-i data).
struct ShapSummary {
  /// per_cluster[c] = services ranked by mean_abs_shap, descending.
  std::vector<std::vector<FeatureImpact>> per_cluster;
  std::vector<double> base_values;  ///< Forest base value per cluster.
  std::size_t samples_used = 0;     ///< Rows explained.
};

/// Surrogate configuration.
struct SurrogateParams {
  std::size_t num_trees = 100;  ///< Paper: 100 trees.
  std::size_t max_depth = 24;
  std::uint64_t seed = 20231024;
};

/// The trained surrogate (forest + SHAP machinery).
class SurrogateExplainer {
 public:
  /// Trains the forest to imitate the clustering labels.
  /// Requires features.rows() == labels.size(), labels in [0, k).
  SurrogateExplainer(const ml::Matrix& features, std::span<const int> labels,
                     int num_clusters, const SurrogateParams& params = {});

  /// Training-set fidelity: how well the surrogate reproduces the clustering.
  [[nodiscard]] double fidelity() const { return fidelity_; }

  /// Out-of-bag accuracy of the forest.
  [[nodiscard]] double oob_accuracy() const {
    return forest_.oob_accuracy();
  }

  [[nodiscard]] const ml::RandomForest& forest() const { return forest_; }
  [[nodiscard]] int num_clusters() const { return num_clusters_; }

  /// TreeSHAP summaries over a stratified sample of the training rows
  /// (max_per_cluster rows from each cluster).
  [[nodiscard]] ShapSummary explain(const ml::Matrix& features,
                                    std::span<const int> labels,
                                    std::size_t max_per_cluster = 120,
                                    std::uint64_t seed = 7) const;

  /// Predicts the cluster of each row (used for the outdoor antennas).
  [[nodiscard]] std::vector<int> classify(const ml::Matrix& features) const;

 private:
  ml::RandomForest forest_;
  int num_clusters_ = 0;
  double fidelity_ = 0.0;
};

}  // namespace icn::core
