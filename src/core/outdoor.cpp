#include "core/outdoor.h"

#include "core/rca.h"
#include "util/error.h"

namespace icn::core {

OutdoorComparison compare_outdoor(const Scenario& scenario,
                                  const SurrogateExplainer& surrogate,
                                  const ml::Matrix& indoor_traffic) {
  const ml::Matrix& outdoor_traffic = scenario.demand().outdoor_traffic_matrix();
  ICN_REQUIRE(outdoor_traffic.rows() > 0, "scenario has no outdoor antennas");
  OutdoorComparison result;
  result.rsca = compute_outdoor_rsca(outdoor_traffic, indoor_traffic);
  result.predicted = surrogate.classify(result.rsca);
  result.distribution.assign(
      static_cast<std::size_t>(surrogate.num_clusters()), 0.0);
  for (const int c : result.predicted) {
    result.distribution[static_cast<std::size_t>(c)] += 1.0;
  }
  for (auto& v : result.distribution) {
    v /= static_cast<double>(result.predicted.size());
  }
  return result;
}

}  // namespace icn::core
