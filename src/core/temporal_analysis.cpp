#include "core/temporal_analysis.h"

#include <algorithm>

#include "util/error.h"
#include "util/rng.h"
#include "util/stats.h"

namespace icn::core {
namespace {

using icn::util::DateRange;

/// Indices of antennas in the cluster, deterministically subsampled.
std::vector<std::size_t> cluster_members(std::span<const int> labels,
                                         int cluster,
                                         const HeatmapParams& params) {
  std::vector<std::size_t> members;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == cluster) members.push_back(i);
  }
  ICN_REQUIRE(!members.empty(), "empty cluster in heatmap");
  if (params.max_antennas != 0 && members.size() > params.max_antennas) {
    icn::util::Rng rng(icn::util::derive_seed(params.sample_seed,
                                              static_cast<std::uint64_t>(
                                                  cluster)));
    for (std::size_t i = 0; i < params.max_antennas; ++i) {
      const std::size_t j = i + rng.uniform_index(members.size() - i);
      std::swap(members[i], members[j]);
    }
    members.resize(params.max_antennas);
  }
  return members;
}

/// Builds the heatmap from per-antenna full-period series.
template <typename SeriesFn>
TemporalHeatmap build_heatmap(const traffic::TemporalModel& temporal,
                              std::span<const int> labels, int cluster,
                              const HeatmapParams& params,
                              SeriesFn&& series_of) {
  const DateRange& period = temporal.period();
  ICN_REQUIRE(period.contains(params.window.first()) &&
                  period.contains(params.window.last()),
              "heatmap window outside modeled period");
  const std::int64_t first_hour = period.index_of(params.window.first()) * 24;
  const auto days = static_cast<std::size_t>(params.window.num_days());
  const std::size_t hours = days * 24;

  const auto members = cluster_members(labels, cluster, params);
  // per-hour values across member antennas
  std::vector<std::vector<double>> window_series;
  window_series.reserve(members.size());
  for (const std::size_t antenna : members) {
    const std::vector<double> full = series_of(antenna);
    window_series.emplace_back(
        full.begin() + first_hour, full.begin() + first_hour +
                                       static_cast<std::int64_t>(hours));
  }

  TemporalHeatmap map;
  map.window = params.window;
  map.days = days;
  map.values.assign(24 * days, 0.0);
  std::vector<double> column(members.size());
  double peak = 0.0;
  for (std::size_t t = 0; t < hours; ++t) {
    for (std::size_t a = 0; a < members.size(); ++a) {
      column[a] = window_series[a][t];
    }
    const double med = icn::util::median(column);
    const std::size_t day = t / 24;
    const std::size_t hod = t % 24;
    map.values[hod * days + day] = med;
    peak = std::max(peak, med);
  }
  map.peak_mb = peak;
  if (peak > 0.0) {
    for (auto& v : map.values) v /= peak;
  }
  return map;
}

}  // namespace

TemporalHeatmap cluster_total_heatmap(const traffic::TemporalModel& temporal,
                                      std::span<const int> labels,
                                      int cluster,
                                      const HeatmapParams& params) {
  return build_heatmap(temporal, labels, cluster, params,
                       [&](std::size_t antenna) {
                         return temporal.hourly_total_series(antenna);
                       });
}

TemporalHeatmap cluster_service_heatmap(
    const traffic::TemporalModel& temporal, std::span<const int> labels,
    int cluster, std::size_t service, const HeatmapParams& params) {
  return build_heatmap(temporal, labels, cluster, params,
                       [&](std::size_t antenna) {
                         return temporal.hourly_service_series(antenna,
                                                               service);
                       });
}

std::vector<double> hour_of_day_profile(const TemporalHeatmap& map) {
  std::vector<double> out(24, 0.0);
  if (map.days == 0) return out;
  for (int h = 0; h < 24; ++h) {
    double acc = 0.0;
    for (std::size_t d = 0; d < map.days; ++d) acc += map.at(h, d);
    out[static_cast<std::size_t>(h)] = acc / static_cast<double>(map.days);
  }
  return out;
}

std::vector<double> day_profile(const TemporalHeatmap& map) {
  std::vector<double> out(map.days, 0.0);
  for (std::size_t d = 0; d < map.days; ++d) {
    double acc = 0.0;
    for (int h = 0; h < 24; ++h) acc += map.at(h, d);
    out[d] = acc / 24.0;
  }
  return out;
}

}  // namespace icn::core
