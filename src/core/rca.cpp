#include "core/rca.h"

#include <vector>

#include "ml/distance.h"
#include "ml/kernels.h"
#include "util/error.h"

namespace icn::core {
namespace {

/// Row sums via the dispatched canonical-order kernel, requiring every entry
/// non-negative and each total positive. The canonical order makes the
/// totals — and therefore every downstream RSCA value — identical at every
/// non-FMA ICN_SIMD level.
std::vector<double> positive_row_totals(const ml::Matrix& traffic,
                                        const char* what) {
  std::vector<double> totals(traffic.rows(), 0.0);
  for (std::size_t i = 0; i < traffic.rows(); ++i) {
    const auto row = traffic.row(i);
    for (const double v : row) {
      ICN_REQUIRE(v >= 0.0, "negative traffic entry");
    }
    totals[i] = ml::vector_sum(row);
    ICN_REQUIRE(totals[i] > 0.0, what);
  }
  return totals;
}

/// Per-service share of total traffic (the RCA denominator). Column sums
/// accumulate row-by-row element-wise (a fixed order independent of the
/// SIMD level); the grand total then sums the per-service sums in the
/// canonical order.
std::vector<double> service_shares(const ml::Matrix& traffic) {
  std::vector<double> shares(traffic.cols(), 0.0);
  for (std::size_t i = 0; i < traffic.rows(); ++i) {
    const auto row = traffic.row(i);
    for (std::size_t j = 0; j < traffic.cols(); ++j) {
      shares[j] += row[j];
    }
  }
  const double total = ml::vector_sum(shares);
  ICN_REQUIRE(total > 0.0, "network carried no traffic");
  for (auto& s : shares) s /= total;
  return shares;
}

/// RCA against an explicit per-service baseline share vector.
ml::Matrix rca_against_baseline(const ml::Matrix& traffic,
                                const std::vector<double>& baseline_share) {
  const auto row_totals =
      positive_row_totals(traffic, "antenna with zero traffic");
  ml::Matrix rca(traffic.rows(), traffic.cols());
  for (std::size_t i = 0; i < traffic.rows(); ++i) {
    for (std::size_t j = 0; j < traffic.cols(); ++j) {
      if (baseline_share[j] <= 0.0) {
        rca(i, j) = 1.0;  // service unseen in the baseline: neutral
      } else {
        rca(i, j) = (traffic(i, j) / row_totals[i]) / baseline_share[j];
      }
    }
  }
  return rca;
}

/// Fused traffic -> RSCA against an explicit baseline: RCA = (t/T)/s and
/// RSCA = (RCA-1)/(RCA+1) collapse to (t - T*s)/(t + T*s), one divide per
/// element through the dispatched ml::rsca_row kernel. Services with
/// s <= 0 land on 0.0, matching RCA = 1 through the unfused path.
ml::Matrix rsca_against_baseline(const ml::Matrix& traffic,
                                 const std::vector<double>& baseline_share) {
  const auto row_totals =
      positive_row_totals(traffic, "antenna with zero traffic");
  ml::Matrix rsca(traffic.rows(), traffic.cols());
  for (std::size_t i = 0; i < traffic.rows(); ++i) {
    ml::rsca_row(traffic.row(i), baseline_share, row_totals[i], rsca.row(i));
  }
  return rsca;
}

}  // namespace

ml::Matrix compute_rca(const ml::Matrix& traffic) {
  ICN_REQUIRE(!traffic.empty(), "empty traffic matrix");
  return rca_against_baseline(traffic, service_shares(traffic));
}

ml::Matrix rca_to_rsca(const ml::Matrix& rca) {
  for (const double v : rca.data()) {
    ICN_REQUIRE(v >= 0.0, "negative RCA");
  }
  ml::Matrix rsca(rca.rows(), rca.cols());
  ml::rsca_map(rca.data(), rsca.data());
  return rsca;
}

ml::Matrix compute_rsca(const ml::Matrix& traffic) {
  ICN_REQUIRE(!traffic.empty(), "empty traffic matrix");
  return rsca_against_baseline(traffic, service_shares(traffic));
}

ml::Matrix compute_outdoor_rca(const ml::Matrix& outdoor_traffic,
                               const ml::Matrix& indoor_traffic) {
  ICN_REQUIRE(!outdoor_traffic.empty() && !indoor_traffic.empty(),
              "empty traffic matrix");
  ICN_REQUIRE(outdoor_traffic.cols() == indoor_traffic.cols(),
              "service dimensions differ");
  return rca_against_baseline(outdoor_traffic,
                              service_shares(indoor_traffic));
}

ml::Matrix compute_outdoor_rsca(const ml::Matrix& outdoor_traffic,
                                const ml::Matrix& indoor_traffic) {
  ICN_REQUIRE(!outdoor_traffic.empty() && !indoor_traffic.empty(),
              "empty traffic matrix");
  ICN_REQUIRE(outdoor_traffic.cols() == indoor_traffic.cols(),
              "service dimensions differ");
  return rsca_against_baseline(outdoor_traffic,
                               service_shares(indoor_traffic));
}

}  // namespace icn::core
