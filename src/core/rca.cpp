#include "core/rca.h"

#include <vector>

#include "util/error.h"

namespace icn::core {
namespace {

/// Row sums, requiring each positive.
std::vector<double> positive_row_totals(const ml::Matrix& traffic,
                                        const char* what) {
  std::vector<double> totals(traffic.rows(), 0.0);
  for (std::size_t i = 0; i < traffic.rows(); ++i) {
    for (std::size_t j = 0; j < traffic.cols(); ++j) {
      ICN_REQUIRE(traffic(i, j) >= 0.0, "negative traffic entry");
      totals[i] += traffic(i, j);
    }
    ICN_REQUIRE(totals[i] > 0.0, what);
  }
  return totals;
}

/// RCA against an explicit per-service baseline share vector.
ml::Matrix rca_against_baseline(const ml::Matrix& traffic,
                                const std::vector<double>& baseline_share) {
  const auto row_totals =
      positive_row_totals(traffic, "antenna with zero traffic");
  ml::Matrix rca(traffic.rows(), traffic.cols());
  for (std::size_t i = 0; i < traffic.rows(); ++i) {
    for (std::size_t j = 0; j < traffic.cols(); ++j) {
      if (baseline_share[j] <= 0.0) {
        rca(i, j) = 1.0;  // service unseen in the baseline: neutral
      } else {
        rca(i, j) = (traffic(i, j) / row_totals[i]) / baseline_share[j];
      }
    }
  }
  return rca;
}

/// Per-service share of total traffic (the RCA denominator).
std::vector<double> service_shares(const ml::Matrix& traffic) {
  std::vector<double> shares(traffic.cols(), 0.0);
  double total = 0.0;
  for (std::size_t i = 0; i < traffic.rows(); ++i) {
    for (std::size_t j = 0; j < traffic.cols(); ++j) {
      shares[j] += traffic(i, j);
      total += traffic(i, j);
    }
  }
  ICN_REQUIRE(total > 0.0, "network carried no traffic");
  for (auto& s : shares) s /= total;
  return shares;
}

}  // namespace

ml::Matrix compute_rca(const ml::Matrix& traffic) {
  ICN_REQUIRE(!traffic.empty(), "empty traffic matrix");
  return rca_against_baseline(traffic, service_shares(traffic));
}

ml::Matrix rca_to_rsca(const ml::Matrix& rca) {
  ml::Matrix rsca(rca.rows(), rca.cols());
  for (std::size_t i = 0; i < rca.data().size(); ++i) {
    const double v = rca.data()[i];
    ICN_REQUIRE(v >= 0.0, "negative RCA");
    rsca.data()[i] = (v - 1.0) / (v + 1.0);
  }
  return rsca;
}

ml::Matrix compute_rsca(const ml::Matrix& traffic) {
  return rca_to_rsca(compute_rca(traffic));
}

ml::Matrix compute_outdoor_rca(const ml::Matrix& outdoor_traffic,
                               const ml::Matrix& indoor_traffic) {
  ICN_REQUIRE(!outdoor_traffic.empty() && !indoor_traffic.empty(),
              "empty traffic matrix");
  ICN_REQUIRE(outdoor_traffic.cols() == indoor_traffic.cols(),
              "service dimensions differ");
  return rca_against_baseline(outdoor_traffic,
                              service_shares(indoor_traffic));
}

ml::Matrix compute_outdoor_rsca(const ml::Matrix& outdoor_traffic,
                                const ml::Matrix& indoor_traffic) {
  return rca_to_rsca(compute_outdoor_rca(outdoor_traffic, indoor_traffic));
}

}  // namespace icn::core
