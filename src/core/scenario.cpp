#include "core/scenario.h"

#include "util/error.h"
#include "util/rng.h"

namespace icn::core {

Scenario Scenario::build(const ScenarioParams& params) {
  ICN_REQUIRE(params.scale > 0.0, "scenario scale");
  Scenario s;
  s.params_ = params;
  s.catalog_ = std::make_unique<traffic::ServiceCatalog>();
  s.archetypes_ = std::make_unique<traffic::ArchetypeModel>(*s.catalog_);

  net::TopologyParams topo;
  topo.seed = icn::util::derive_seed(params.seed, 1);
  topo.scale = params.scale;
  topo.outdoor_ratio = params.outdoor_ratio;
  s.topology_ =
      std::make_unique<net::Topology>(net::Topology::generate(topo));

  traffic::DemandParams demand;
  demand.seed = icn::util::derive_seed(params.seed, 2);
  demand.concentration = params.concentration;
  s.demand_ = std::make_unique<traffic::DemandModel>(*s.topology_,
                                                     *s.archetypes_, demand);

  traffic::TemporalParams temporal;
  temporal.seed = icn::util::derive_seed(params.seed, 3);
  temporal.noise_shape = params.noise_shape;
  s.temporal_ =
      std::make_unique<traffic::TemporalModel>(*s.demand_, temporal);
  return s;
}

}  // namespace icn::core
