// Proactive traffic forecasting — the operational motivation the paper opens
// with ("understanding and forecasting traffic demands enables the proactive
// configuration of the wireless network", Sec. 1) applied to the ICN
// clusters.
//
// SeasonalForecaster implements the standard seasonal-median baseline used
// for cellular traffic: every hour-of-week slot is predicted by the median
// of the training observations in that slot. The forecasting example shows
// it works well on the strongly periodic clusters (commuters, offices) and
// fails on the event-driven venue clusters — quantifying why those need
// event calendars instead of history.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace icn::core {

/// Hour-of-week seasonal-median forecaster.
class SeasonalForecaster {
 public:
  /// Fits on an hourly training series whose first sample is slot 0 (for
  /// the study period, hour 0 of Monday 21 Nov 2022). Requires at least one
  /// full season of data.
  void fit(std::span<const double> series, std::size_t season_hours = 168);

  /// Degraded-coverage fit: only samples whose `covered` byte is nonzero
  /// contribute to their slot median, so dropout hours (recorded as zeros in
  /// the tensor) cannot drag the seasonal profile down. A slot with no
  /// covered sample falls back to the median over all covered samples.
  /// Requires covered.size() == series.size(), series at least one season
  /// long, and at least one covered sample.
  void fit_masked(std::span<const double> series,
                  std::span<const std::uint8_t> covered,
                  std::size_t season_hours = 168);

  [[nodiscard]] bool is_fitted() const { return !slot_median_.empty(); }

  /// Seasonal median of slot s in [0, season_hours).
  [[nodiscard]] double slot_value(std::size_t slot) const;

  /// Predicts the `horizon` hours following the training series.
  [[nodiscard]] std::vector<double> forecast(std::size_t horizon) const;

 private:
  std::vector<double> slot_median_;
  std::size_t train_hours_ = 0;
};

/// Fits one SeasonalForecaster per series, in parallel across antennas on
/// the active thread pool. Forecaster i is exactly what
/// `SeasonalForecaster::fit(series[i], season_hours)` produces — each fit is
/// independent, so the batch is bit-identical to the serial loop for every
/// thread count.
[[nodiscard]] std::vector<SeasonalForecaster> fit_seasonal_batch(
    std::span<const std::span<const double>> series,
    std::size_t season_hours = 168);

/// Parallel batch of `SeasonalForecaster::fit_masked`: series[i] is fitted
/// against coverage bitmap covered[i]. Requires equal outer sizes.
[[nodiscard]] std::vector<SeasonalForecaster> fit_seasonal_batch_masked(
    std::span<const std::span<const double>> series,
    std::span<const std::span<const std::uint8_t>> covered,
    std::size_t season_hours = 168);

/// Additive Holt-Winters (triple exponential smoothing) with a weekly
/// season — the classic step up from the seasonal median when the traffic
/// carries a trend (e.g. a slowly filling office building).
class HoltWintersForecaster {
 public:
  /// Smoothing parameters, each in (0, 1).
  struct Params {
    double alpha = 0.2;   ///< Level smoothing.
    double beta = 0.05;   ///< Trend smoothing.
    double gamma = 0.10;  ///< Seasonal smoothing.
  };

  /// Fits on an hourly series starting at slot 0 with default smoothing.
  /// Requires at least two full seasons.
  void fit(std::span<const double> series, std::size_t season_hours = 168);

  /// Same with explicit smoothing parameters.
  void fit(std::span<const double> series, std::size_t season_hours,
           const Params& params);

  [[nodiscard]] bool is_fitted() const { return !seasonal_.empty(); }

  /// Predicts the `horizon` hours following the training series.
  [[nodiscard]] std::vector<double> forecast(std::size_t horizon) const;

 private:
  double level_ = 0.0;
  double trend_ = 0.0;
  std::vector<double> seasonal_;
  std::size_t train_hours_ = 0;
};

/// Symmetric mean absolute percentage error (sMAPE, in [0, 2]): robust to
/// near-zero hours, which dominate night traffic. Requires equal non-empty
/// sizes.
[[nodiscard]] double smape(std::span<const double> actual,
                           std::span<const double> predicted);

}  // namespace icn::core
