// Operational cluster profiles — the distilled form of the paper's findings
// that Sec. 7 proposes feeding into network management ("indoor slices will
// be tuned based on the characterizing applications for that specific indoor
// environment", caching, power control).
//
// A ClusterProfile condenses one cluster into: its characterizing
// (over-utilized) and suppressed services, its daily peak hour, how much of
// its traffic survives weekends and nights, and how bursty (event-driven)
// it is. build_cluster_profiles derives them from the RSCA signatures and
// the temporal model.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "core/scenario.h"
#include "core/temporal_analysis.h"
#include "ml/matrix.h"
#include "traffic/archetypes.h"

namespace icn::core {

/// Planning-oriented summary of one cluster.
struct ClusterProfile {
  int cluster = 0;
  std::size_t size = 0;                      ///< Antennas in the cluster.
  /// Services with the highest cluster-mean RSCA (over-utilized),
  /// descending; the "characterizing applications" of Sec. 7.
  std::vector<std::size_t> top_services;
  /// Services with the lowest cluster-mean RSCA (suppressed), ascending.
  std::vector<std::size_t> suppressed_services;
  int peak_hour = 0;          ///< Hour of day of the maximum median traffic.
  double weekend_ratio = 0;   ///< Weekend / weekday mean day-level ratio.
  double night_share = 0;     ///< Fraction of the day profile in 0:00-6:00.
  /// Burstiness of the hourly medians: 99th / 75th percentile of the
  /// heatmap cells. Diurnal clusters score low (peak vs plateau);
  /// event-driven venues score high (burst vs ambient).
  double burstiness = 0;
};

/// Options for profile construction.
struct ProfileParams {
  std::size_t top_n = 5;            ///< Services listed per direction.
  HeatmapParams heatmap;            ///< Window / sampling for temporal stats.
};

/// Builds one profile per cluster (0..k-1). Requires labels sized to the
/// scenario's indoor antennas with every cluster non-empty.
[[nodiscard]] std::vector<ClusterProfile> build_cluster_profiles(
    const Scenario& scenario, const ml::Matrix& rsca,
    std::span<const int> labels, std::size_t k,
    const ProfileParams& params = {});

/// One-line human-readable rendering of a profile (for reports/examples).
[[nodiscard]] std::string describe_profile(const Scenario& scenario,
                                           const ClusterProfile& profile);

}  // namespace icn::core
