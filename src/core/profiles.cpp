#include "core/profiles.h"

#include <algorithm>
#include <numeric>

#include "util/calendar.h"
#include "util/error.h"
#include "util/stats.h"
#include "util/table.h"

namespace icn::core {

std::vector<ClusterProfile> build_cluster_profiles(
    const Scenario& scenario, const ml::Matrix& rsca,
    std::span<const int> labels, std::size_t k, const ProfileParams& params) {
  ICN_REQUIRE(rsca.rows() == labels.size(), "profiles input shape");
  ICN_REQUIRE(labels.size() == scenario.num_antennas(),
              "labels vs scenario");
  ICN_REQUIRE(k >= 1, "profiles cluster count");
  const std::size_t m = rsca.cols();

  // Cluster-mean RSCA signatures in one flat k*m buffer (row per cluster)
  // instead of k separate heap vectors.
  std::vector<double> signature(k * m, 0.0);
  std::vector<std::size_t> sizes(k, 0);
  for (std::size_t i = 0; i < rsca.rows(); ++i) {
    ICN_REQUIRE(labels[i] >= 0 && static_cast<std::size_t>(labels[i]) < k,
                "label out of range");
    const auto c = static_cast<std::size_t>(labels[i]);
    ++sizes[c];
    const auto row = rsca.row(i);
    double* sig = &signature[c * m];
    for (std::size_t j = 0; j < m; ++j) sig[j] += row[j];
  }
  for (std::size_t c = 0; c < k; ++c) {
    ICN_REQUIRE(sizes[c] > 0, "empty cluster in profiles");
    double* sig = &signature[c * m];
    for (std::size_t j = 0; j < m; ++j) {
      sig[j] /= static_cast<double>(sizes[c]);
    }
  }

  std::vector<ClusterProfile> profiles;
  profiles.reserve(k);
  for (std::size_t c = 0; c < k; ++c) {
    ClusterProfile profile;
    profile.cluster = static_cast<int>(c);
    profile.size = sizes[c];

    // Rank services by the cluster-mean RSCA.
    const double* sig = &signature[c * m];
    std::vector<std::size_t> order(m);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return sig[a] > sig[b];
    });
    for (std::size_t r = 0; r < std::min(params.top_n, m); ++r) {
      if (sig[order[r]] > 0.0) {
        profile.top_services.push_back(order[r]);
      }
    }
    for (std::size_t r = 0; r < std::min(params.top_n, m); ++r) {
      const std::size_t j = order[m - 1 - r];
      if (sig[j] < 0.0) profile.suppressed_services.push_back(j);
    }

    // Temporal statistics from the cluster's median heatmap.
    const auto map = cluster_total_heatmap(
        scenario.temporal(), labels, static_cast<int>(c), params.heatmap);
    const auto hours = hour_of_day_profile(map);
    profile.peak_hour = static_cast<int>(
        std::max_element(hours.begin(), hours.end()) - hours.begin());
    double night = 0.0, total = 0.0;
    for (int h = 0; h < 24; ++h) {
      total += hours[static_cast<std::size_t>(h)];
      if (h < 6) night += hours[static_cast<std::size_t>(h)];
    }
    profile.night_share = total > 0.0 ? night / total : 0.0;

    const auto days = day_profile(map);
    double weekend = 0.0, weekday = 0.0;
    int wn = 0, dn = 0;
    for (std::size_t d = 0; d < days.size(); ++d) {
      const auto wd = map.window.weekday_at(static_cast<std::int64_t>(d));
      if (icn::util::is_weekend(wd)) {
        weekend += days[d];
        ++wn;
      } else {
        weekday += days[d];
        ++dn;
      }
    }
    profile.weekend_ratio =
        (wn > 0 && dn > 0 && weekday > 0.0)
            ? (weekend / wn) / (weekday / dn)
            : 0.0;

    // p99 / p75 of the heatmap cells: diurnal clusters spend much of the
    // window at their plateau (p75 ~ plateau, p99 ~ daily peak), while
    // event venues idle at p75 and explode at p99.
    const double p75 = icn::util::quantile(map.values, 0.75);
    const double p99 = icn::util::quantile(map.values, 0.99);
    profile.burstiness = p75 > 0.0 ? p99 / p75 : 0.0;
    profiles.push_back(std::move(profile));
  }
  return profiles;
}

std::string describe_profile(const Scenario& scenario,
                             const ClusterProfile& profile) {
  std::string out = "cluster " + std::to_string(profile.cluster) + " (" +
                    std::to_string(profile.size) + " antennas): ";
  if (profile.top_services.empty()) {
    out += "balanced mix";
  } else {
    out += "characterized by ";
    for (std::size_t i = 0; i < profile.top_services.size(); ++i) {
      if (i) out += ", ";
      out += scenario.catalog().at(profile.top_services[i]).name;
    }
  }
  out += "; peak h" + std::to_string(profile.peak_hour);
  out += ", weekend " + icn::util::fmt_percent(profile.weekend_ratio, 0) +
         " of weekday";
  out += ", night share " + icn::util::fmt_percent(profile.night_share, 0);
  out += ", burstiness " + icn::util::fmt_double(profile.burstiness, 1);
  return out;
}

}  // namespace icn::core
