// Scenario: one-call construction of the full synthetic study — catalogue,
// archetypes, topology, demand, temporal model — with stable ownership.
// This is the workbench's stand-in for "load the operator dataset".
#pragma once

#include <cstdint>
#include <memory>

#include "net/topology.h"
#include "traffic/archetypes.h"
#include "traffic/demand.h"
#include "traffic/services.h"
#include "traffic/temporal.h"

namespace icn::core {

/// Scenario construction parameters. Sub-seeds are derived from `seed`
/// unless explicitly overridden after construction.
struct ScenarioParams {
  std::uint64_t seed = 2023;
  /// Fraction of the paper's population (1.0 = 4,762 indoor antennas).
  double scale = 1.0;
  /// Outdoor macro antennas per indoor antenna (paper: ~22k/4,762 = 4.62).
  double outdoor_ratio = 4.62;
  /// Demand noise: Dirichlet concentration of per-antenna service mixes.
  double concentration = 2200.0;
  /// Temporal noise: gamma shape (0 = noise-free hourly curves).
  double noise_shape = 25.0;
};

/// Owns the fully built synthetic study.
class Scenario {
 public:
  /// Builds everything deterministically from the parameters.
  [[nodiscard]] static Scenario build(const ScenarioParams& params);

  [[nodiscard]] const ScenarioParams& params() const { return params_; }
  [[nodiscard]] const traffic::ServiceCatalog& catalog() const {
    return *catalog_;
  }
  [[nodiscard]] const traffic::ArchetypeModel& archetypes() const {
    return *archetypes_;
  }
  [[nodiscard]] const net::Topology& topology() const { return *topology_; }
  [[nodiscard]] const traffic::DemandModel& demand() const { return *demand_; }
  [[nodiscard]] const traffic::TemporalModel& temporal() const {
    return *temporal_;
  }

  /// Number of indoor antennas (N) and services (M).
  [[nodiscard]] std::size_t num_antennas() const {
    return topology_->indoor().size();
  }
  [[nodiscard]] std::size_t num_services() const { return catalog_->size(); }

 private:
  ScenarioParams params_;
  std::unique_ptr<traffic::ServiceCatalog> catalog_;
  std::unique_ptr<traffic::ArchetypeModel> archetypes_;
  std::unique_ptr<net::Topology> topology_;
  std::unique_ptr<traffic::DemandModel> demand_;
  std::unique_ptr<traffic::TemporalModel> temporal_;
};

}  // namespace icn::core
