// Temporal analysis (Sec. 6): per-cluster and per-service heatmaps of the
// normalized median hourly traffic across the antennas of a cluster, over the
// Figs. 10-11 window (04-24 Jan 2023).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "traffic/temporal.h"
#include "util/calendar.h"

namespace icn::core {

/// A (24 x days) heatmap of normalized median hourly traffic.
struct TemporalHeatmap {
  icn::util::DateRange window{icn::util::temporal_window()};
  std::size_t days = 0;
  /// Row-major, rows = hour of day (0..23), cols = day index in the window;
  /// normalized so the maximum cell is 1 (all-zero stays zero).
  std::vector<double> values;
  /// Maximum median traffic (MB/h) before normalization.
  double peak_mb = 0.0;

  [[nodiscard]] double at(int hour_of_day, std::size_t day) const {
    return values[static_cast<std::size_t>(hour_of_day) * days + day];
  }
};

/// Heatmap computation options.
struct HeatmapParams {
  icn::util::DateRange window{icn::util::temporal_window()};
  /// Cap on antennas sampled per cluster (they are drawn deterministically);
  /// 0 = use every antenna of the cluster.
  std::size_t max_antennas = 400;
  std::uint64_t sample_seed = 11;
};

/// Fig. 10: normalized median heatmap of the *total* traffic of the antennas
/// in `cluster`. Requires at least one antenna in the cluster and the window
/// to lie within the model's period.
[[nodiscard]] TemporalHeatmap cluster_total_heatmap(
    const traffic::TemporalModel& temporal, std::span<const int> labels,
    int cluster, const HeatmapParams& params = {});

/// Fig. 11: same, for a single service.
[[nodiscard]] TemporalHeatmap cluster_service_heatmap(
    const traffic::TemporalModel& temporal, std::span<const int> labels,
    int cluster, std::size_t service, const HeatmapParams& params = {});

/// Aggregate of a heatmap by hour-of-day (mean over days) — a compact series
/// used by tests and examples to check peak positions.
[[nodiscard]] std::vector<double> hour_of_day_profile(
    const TemporalHeatmap& map);

/// Aggregate of a heatmap by day (mean over hours).
[[nodiscard]] std::vector<double> day_profile(const TemporalHeatmap& map);

}  // namespace icn::core
