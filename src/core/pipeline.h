// One-call facade running the paper's full methodology:
//   synthetic study -> T matrix -> RSCA -> Ward clustering + k sweep ->
//   label alignment -> random-forest surrogate -> ready for SHAP /
//   environment / temporal / outdoor analyses.
//
// Two entry points share the analysis back-end: run_pipeline synthesizes the
// study in memory, run_pipeline_from_snapshot feeds the same analyses from a
// mmap-loaded store snapshot (the durable artifact of a streaming ingest),
// producing bit-identical outputs for the same T matrix.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/clustering.h"
#include "core/scenario.h"
#include "core/surrogate.h"
#include "ml/matrix.h"

namespace icn::core {

/// Pipeline configuration.
struct PipelineParams {
  ScenarioParams scenario;
  ClusterAnalysisParams clustering;
  SurrogateParams surrogate;
  /// When the chosen k equals the number of generative archetypes, relabel
  /// the clusters by Hungarian matching against the ground-truth archetypes
  /// so cluster ids follow the paper's numbering (0..8). Purely cosmetic;
  /// recorded in `label_map`.
  bool align_to_archetypes = true;
};

/// The analysis outputs computed from a T matrix (no scenario attached).
struct TrafficAnalysis {
  ml::Matrix rsca;                ///< N x M RSCA feature matrix.
  ClusterAnalysisResult clusters; ///< Labels already aligned when requested.
  std::vector<int> label_map;     ///< raw dendrogram label -> reported label.
  std::unique_ptr<SurrogateExplainer> surrogate;  ///< Trained on the labels.
};

/// Runs RSCA -> clustering -> (optional archetype alignment) -> surrogate on
/// an already-aggregated T matrix. `archetype_truth` (labels per antenna row)
/// enables the alignment step; pass nullptr when no ground truth exists
/// (e.g. a matrix loaded from a measurement snapshot). Deterministic: the
/// same matrix bits produce the same outputs.
[[nodiscard]] TrafficAnalysis analyze_traffic(
    const ml::Matrix& traffic_mb, const PipelineParams& params,
    const std::vector<int>* archetype_truth = nullptr);

/// Everything the analyses need, with stable ownership.
struct PipelineResult {
  Scenario scenario;
  ml::Matrix rsca;                ///< N x M RSCA feature matrix.
  ClusterAnalysisResult clusters; ///< Labels already aligned when requested.
  std::vector<int> label_map;     ///< raw dendrogram label -> reported label.
  std::unique_ptr<SurrogateExplainer> surrogate;  ///< Trained on the labels.
  double ari_vs_archetypes = 0.0; ///< Recovery of the generative archetypes.
};

/// Runs the full pipeline. Deterministic for fixed params.
[[nodiscard]] PipelineResult run_pipeline(const PipelineParams& params);

/// A pipeline run fed from a snapshot instead of in-memory synthesis.
struct SnapshotPipelineResult {
  ml::Matrix traffic;        ///< The T matrix loaded from the snapshot.
  TrafficAnalysis analysis;  ///< Same back-end as run_pipeline.
};

/// Loads the demand T matrix from a store snapshot at `path` — either a
/// kMatrix section or, for ingest checkpoints, the fold of all kWindow
/// sections — and runs the analysis back-end on it. params.scenario is
/// ignored (the snapshot replaces synthesis). Throws store::SnapshotError on
/// a corrupt/truncated snapshot or one carrying no tensor.
[[nodiscard]] SnapshotPipelineResult run_pipeline_from_snapshot(
    const std::string& path, const PipelineParams& params);

}  // namespace icn::core
