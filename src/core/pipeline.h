// One-call facade running the paper's full methodology:
//   synthetic study -> T matrix -> RSCA -> Ward clustering + k sweep ->
//   label alignment -> random-forest surrogate -> ready for SHAP /
//   environment / temporal / outdoor analyses.
//
// Two entry points share the analysis back-end: run_pipeline synthesizes the
// study in memory, run_pipeline_from_snapshot feeds the same analyses from a
// mmap-loaded store snapshot (the durable artifact of a streaming ingest),
// producing bit-identical outputs for the same T matrix.
//
// Degraded mode: a snapshot carrying a kCoverage section (a multi-probe
// study with dropout windows or quarantined feeds) is analyzed honestly —
// antennas whose covered-hour fraction falls below
// PipelineParams::min_antenna_coverage are excluded from clustering, and the
// CoverageReport lists every excluded antenna and every uncovered hour range
// so the analysis states exactly what was lost instead of treating absence
// as zero traffic.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/clustering.h"
#include "core/scenario.h"
#include "core/surrogate.h"
#include "ml/matrix.h"
#include "stream/coverage.h"

namespace icn::core {

/// Pipeline configuration.
struct PipelineParams {
  ScenarioParams scenario;
  ClusterAnalysisParams clustering;
  SurrogateParams surrogate;
  /// When the chosen k equals the number of generative archetypes, relabel
  /// the clusters by Hungarian matching against the ground-truth archetypes
  /// so cluster ids follow the paper's numbering (0..8). Purely cosmetic;
  /// recorded in `label_map`.
  bool align_to_archetypes = true;
  /// Degraded mode: antennas whose covered-hour fraction is below this
  /// threshold are excluded from the analysis (their totals are too biased
  /// by the missing hours to cluster). In [0, 1].
  double min_antenna_coverage = 0.5;
};

/// Coverage accounting for one antenna row with at least one uncovered hour.
struct AntennaCoverage {
  std::size_t row = 0;          ///< Row index in the study tensor.
  std::uint32_t antenna_id = 0; ///< From kStreamMeta when present, else row.
  double fraction = 0.0;        ///< Covered-hour fraction, in [0, 1].
  bool excluded = false;        ///< True when fraction < the threshold.
  std::vector<stream::HourRange> gaps;  ///< Uncovered hour runs, ascending.
};

/// What a degraded run analyzed, excluded, and lost.
struct CoverageReport {
  bool degraded = false;  ///< True when any (antenna, hour) cell is missing.
  double threshold = 1.0; ///< The min_antenna_coverage that was applied.
  std::size_t total_rows = 0;
  std::size_t covered_cells = 0;
  std::size_t total_cells = 0;
  /// Study-wide record-quarantine totals from the ingest's quality layer
  /// (the snapshots' kQuarantine sections). Zero for clean runs and for
  /// snapshots written before the quality layer existed. Rejected records
  /// are data loss below the (antenna, hour) cell granularity: the cell
  /// stays covered unless every record of its batch was rejected.
  std::uint64_t records_rejected = 0;
  std::uint64_t records_repaired = 0;
  /// Rows that entered the analysis, ascending. Labels/RSCA rows of a
  /// degraded result index into this list.
  std::vector<std::size_t> analyzed_rows;
  /// Every row with missing hours (excluded or not), ascending by row.
  std::vector<AntennaCoverage> incomplete;
  /// Antenna ids of the excluded rows, in row order.
  std::vector<std::uint32_t> excluded_antennas;
};

/// Human-readable multi-line summary of a coverage report.
[[nodiscard]] std::string to_text(const CoverageReport& report);

/// Builds the degraded-mode accounting for a study tensor: which rows pass
/// `threshold`, which are excluded, and every uncovered hour range.
/// `antenna_ids` may be empty (ids default to row indices); otherwise its
/// size must equal mask.rows().
[[nodiscard]] CoverageReport build_coverage_report(
    const stream::CoverageMask& mask,
    std::span<const std::uint32_t> antenna_ids, double threshold);

/// The analysis outputs computed from a T matrix (no scenario attached).
struct TrafficAnalysis {
  ml::Matrix rsca;                ///< N x M RSCA feature matrix.
  ClusterAnalysisResult clusters; ///< Labels already aligned when requested.
  std::vector<int> label_map;     ///< raw dendrogram label -> reported label.
  std::unique_ptr<SurrogateExplainer> surrogate;  ///< Trained on the labels.
};

/// Runs RSCA -> clustering -> (optional archetype alignment) -> surrogate on
/// an already-aggregated T matrix. `archetype_truth` (labels per antenna row)
/// enables the alignment step; pass nullptr when no ground truth exists
/// (e.g. a matrix loaded from a measurement snapshot). Deterministic: the
/// same matrix bits produce the same outputs.
[[nodiscard]] TrafficAnalysis analyze_traffic(
    const ml::Matrix& traffic_mb, const PipelineParams& params,
    const std::vector<int>* archetype_truth = nullptr);

/// Everything the analyses need, with stable ownership.
struct PipelineResult {
  Scenario scenario;
  ml::Matrix rsca;                ///< N x M RSCA feature matrix.
  ClusterAnalysisResult clusters; ///< Labels already aligned when requested.
  std::vector<int> label_map;     ///< raw dendrogram label -> reported label.
  std::unique_ptr<SurrogateExplainer> surrogate;  ///< Trained on the labels.
  double ari_vs_archetypes = 0.0; ///< Recovery of the generative archetypes.
};

/// Runs the full pipeline. Deterministic for fixed params.
[[nodiscard]] PipelineResult run_pipeline(const PipelineParams& params);

/// A pipeline run fed from a snapshot instead of in-memory synthesis.
struct SnapshotPipelineResult {
  ml::Matrix traffic;        ///< The full T matrix loaded from the snapshot.
  /// Degraded-mode accounting. When coverage.degraded, the analysis ran on
  /// the coverage.analyzed_rows submatrix of `traffic`; otherwise on all
  /// rows.
  CoverageReport coverage;
  TrafficAnalysis analysis;  ///< Same back-end as run_pipeline.
};

/// Loads the demand T matrix from a store snapshot at `path` — either a
/// kMatrix section or, for ingest checkpoints, the fold of all kWindow
/// sections — and runs the analysis back-end on it. A kCoverage section
/// switches on degraded mode (see CoverageReport). params.scenario is
/// ignored (the snapshot replaces synthesis). Throws store::SnapshotError on
/// a corrupt/truncated snapshot or one carrying no tensor.
[[nodiscard]] SnapshotPipelineResult run_pipeline_from_snapshot(
    const std::string& path, const PipelineParams& params);

/// Multi-probe entry point: recovers and merges the per-probe checkpoints
/// (stream::merge_snapshots) and analyzes the merged study under its
/// coverage mask — the end-to-end degraded path of a faulty plant.
[[nodiscard]] SnapshotPipelineResult run_pipeline_from_snapshots(
    std::span<const std::string> paths, const PipelineParams& params);

}  // namespace icn::core
