// One-call facade running the paper's full methodology:
//   synthetic study -> T matrix -> RSCA -> Ward clustering + k sweep ->
//   label alignment -> random-forest surrogate -> ready for SHAP /
//   environment / temporal / outdoor analyses.
#pragma once

#include <memory>
#include <vector>

#include "core/clustering.h"
#include "core/scenario.h"
#include "core/surrogate.h"
#include "ml/matrix.h"

namespace icn::core {

/// Pipeline configuration.
struct PipelineParams {
  ScenarioParams scenario;
  ClusterAnalysisParams clustering;
  SurrogateParams surrogate;
  /// When the chosen k equals the number of generative archetypes, relabel
  /// the clusters by Hungarian matching against the ground-truth archetypes
  /// so cluster ids follow the paper's numbering (0..8). Purely cosmetic;
  /// recorded in `label_map`.
  bool align_to_archetypes = true;
};

/// Everything the analyses need, with stable ownership.
struct PipelineResult {
  Scenario scenario;
  ml::Matrix rsca;                ///< N x M RSCA feature matrix.
  ClusterAnalysisResult clusters; ///< Labels already aligned when requested.
  std::vector<int> label_map;     ///< raw dendrogram label -> reported label.
  std::unique_ptr<SurrogateExplainer> surrogate;  ///< Trained on the labels.
  double ari_vs_archetypes = 0.0; ///< Recovery of the generative archetypes.
};

/// Runs the full pipeline. Deterministic for fixed params.
[[nodiscard]] PipelineResult run_pipeline(const PipelineParams& params);

}  // namespace icn::core
