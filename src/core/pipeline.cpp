#include "core/pipeline.h"

#include <numeric>

#include "core/rca.h"
#include "ml/hungarian.h"
#include "store/snapshot.h"
#include "stream/ingest.h"
#include "util/stats.h"

namespace icn::core {

TrafficAnalysis analyze_traffic(const ml::Matrix& traffic_mb,
                                const PipelineParams& params,
                                const std::vector<int>* archetype_truth) {
  TrafficAnalysis analysis;
  analysis.rsca = compute_rsca(traffic_mb);
  analysis.clusters = analyze_clusters(analysis.rsca, params.clustering);

  const std::size_t k = analysis.clusters.chosen_k;
  // Identity map by default.
  analysis.label_map.resize(k);
  std::iota(analysis.label_map.begin(), analysis.label_map.end(), 0);
  if (params.align_to_archetypes && archetype_truth != nullptr &&
      k == traffic::kNumArchetypes) {
    analysis.label_map = ml::align_labels(analysis.clusters.labels,
                                          *archetype_truth,
                                          static_cast<int>(k));
    analysis.clusters.labels =
        ml::apply_label_map(analysis.clusters.labels, analysis.label_map);
  }
  analysis.surrogate = std::make_unique<SurrogateExplainer>(
      analysis.rsca, analysis.clusters.labels, static_cast<int>(k),
      params.surrogate);
  return analysis;
}

PipelineResult run_pipeline(const PipelineParams& params) {
  PipelineResult result{Scenario::build(params.scenario), {}, {}, {}, nullptr};
  const auto& truth = result.scenario.demand().archetype_labels();
  TrafficAnalysis analysis = analyze_traffic(
      result.scenario.demand().traffic_matrix(), params, &truth);
  result.rsca = std::move(analysis.rsca);
  result.clusters = std::move(analysis.clusters);
  result.label_map = std::move(analysis.label_map);
  result.surrogate = std::move(analysis.surrogate);
  result.ari_vs_archetypes =
      icn::util::adjusted_rand_index(result.clusters.labels, truth);
  return result;
}

SnapshotPipelineResult run_pipeline_from_snapshot(
    const std::string& path, const PipelineParams& params) {
  const store::MappedSnapshot snapshot(path);
  SnapshotPipelineResult result;
  if (const auto matrix = snapshot.matrix()) {
    result.traffic = matrix->to_matrix();
  } else if (snapshot.stream_meta()) {
    result.traffic = stream::totals_from_snapshot(snapshot);
  } else {
    throw store::SnapshotError("snapshot " + path +
                               ": no kMatrix or kStreamMeta section");
  }
  result.analysis = analyze_traffic(result.traffic, params);
  return result;
}

}  // namespace icn::core
