#include "core/pipeline.h"

#include <cstdio>
#include <numeric>

#include "core/rca.h"
#include "ml/hungarian.h"
#include "store/snapshot.h"
#include "stream/ingest.h"
#include "stream/supervise.h"
#include "util/error.h"
#include "util/stats.h"

namespace icn::core {

TrafficAnalysis analyze_traffic(const ml::Matrix& traffic_mb,
                                const PipelineParams& params,
                                const std::vector<int>* archetype_truth) {
  TrafficAnalysis analysis;
  analysis.rsca = compute_rsca(traffic_mb);
  analysis.clusters = analyze_clusters(analysis.rsca, params.clustering);

  const std::size_t k = analysis.clusters.chosen_k;
  // Identity map by default.
  analysis.label_map.resize(k);
  std::iota(analysis.label_map.begin(), analysis.label_map.end(), 0);
  if (params.align_to_archetypes && archetype_truth != nullptr &&
      k == traffic::kNumArchetypes) {
    analysis.label_map = ml::align_labels(analysis.clusters.labels,
                                          *archetype_truth,
                                          static_cast<int>(k));
    analysis.clusters.labels =
        ml::apply_label_map(analysis.clusters.labels, analysis.label_map);
  }
  analysis.surrogate = std::make_unique<SurrogateExplainer>(
      analysis.rsca, analysis.clusters.labels, static_cast<int>(k),
      params.surrogate);
  return analysis;
}

PipelineResult run_pipeline(const PipelineParams& params) {
  PipelineResult result{Scenario::build(params.scenario), {}, {}, {}, nullptr};
  const auto& truth = result.scenario.demand().archetype_labels();
  TrafficAnalysis analysis = analyze_traffic(
      result.scenario.demand().traffic_matrix(), params, &truth);
  result.rsca = std::move(analysis.rsca);
  result.clusters = std::move(analysis.clusters);
  result.label_map = std::move(analysis.label_map);
  result.surrogate = std::move(analysis.surrogate);
  result.ari_vs_archetypes =
      icn::util::adjusted_rand_index(result.clusters.labels, truth);
  return result;
}

CoverageReport build_coverage_report(
    const stream::CoverageMask& mask,
    std::span<const std::uint32_t> antenna_ids, double threshold) {
  ICN_REQUIRE(threshold >= 0.0 && threshold <= 1.0,
              "min_antenna_coverage in [0, 1]");
  ICN_REQUIRE(antenna_ids.empty() || antenna_ids.size() == mask.rows(),
              "antenna ids must match coverage rows");
  CoverageReport report;
  report.threshold = threshold;
  report.total_rows = mask.rows();
  report.covered_cells = mask.covered_cells();
  report.total_cells =
      mask.rows() * static_cast<std::size_t>(mask.num_hours());
  report.degraded = report.covered_cells < report.total_cells;
  for (std::size_t row = 0; row < mask.rows(); ++row) {
    const std::uint32_t id = antenna_ids.empty()
                                 ? static_cast<std::uint32_t>(row)
                                 : antenna_ids[row];
    const double fraction = mask.row_fraction(row);
    const bool excluded = fraction < threshold;
    if (excluded) {
      report.excluded_antennas.push_back(id);
    } else {
      report.analyzed_rows.push_back(row);
    }
    if (fraction < 1.0) {
      report.incomplete.push_back(
          {row, id, fraction, excluded, mask.gaps(row)});
    }
  }
  return report;
}

std::string to_text(const CoverageReport& report) {
  char line[160];
  std::snprintf(line, sizeof(line),
                "coverage: %zu/%zu cells (%.1f%%), threshold %.2f, "
                "analyzed %zu/%zu antennas\n",
                report.covered_cells, report.total_cells,
                report.total_cells == 0
                    ? 100.0
                    : 100.0 * static_cast<double>(report.covered_cells) /
                          static_cast<double>(report.total_cells),
                report.threshold, report.analyzed_rows.size(),
                report.total_rows);
  std::string out = line;
  if (report.records_rejected > 0 || report.records_repaired > 0) {
    std::snprintf(line, sizeof(line),
                  "quarantined records: %llu rejected, %llu repaired\n",
                  static_cast<unsigned long long>(report.records_rejected),
                  static_cast<unsigned long long>(report.records_repaired));
    out += line;
  }
  for (const auto& antenna : report.incomplete) {
    std::snprintf(line, sizeof(line), "antenna %u: %.1f%% covered%s, gaps",
                  antenna.antenna_id, 100.0 * antenna.fraction,
                  antenna.excluded ? " (EXCLUDED)" : "");
    out += line;
    for (const auto& gap : antenna.gaps) {
      std::snprintf(line, sizeof(line), " [%lld,%lld)",
                    static_cast<long long>(gap.first),
                    static_cast<long long>(gap.last));
      out += line;
    }
    out += '\n';
  }
  return out;
}

namespace {

/// Shared degraded-aware back-end of the snapshot entry points: builds the
/// coverage accounting and analyzes the surviving submatrix.
SnapshotPipelineResult analyze_with_coverage(ml::Matrix traffic,
                                             const stream::CoverageMask& mask,
                                             std::span<const std::uint32_t> ids,
                                             const PipelineParams& params,
                                             std::uint64_t records_rejected,
                                             std::uint64_t records_repaired) {
  SnapshotPipelineResult result;
  result.traffic = std::move(traffic);
  result.coverage =
      build_coverage_report(mask, ids, params.min_antenna_coverage);
  result.coverage.records_rejected = records_rejected;
  result.coverage.records_repaired = records_repaired;
  const auto& rows = result.coverage.analyzed_rows;
  ICN_REQUIRE(!rows.empty(), "every antenna fell below the coverage "
                             "threshold; nothing left to analyze");
  if (rows.size() == result.traffic.rows()) {
    result.analysis = analyze_traffic(result.traffic, params);
  } else {
    result.analysis =
        analyze_traffic(result.traffic.select_rows(rows), params);
  }
  return result;
}

/// Coverage mask of a single mapped snapshot: its kCoverage section when
/// present (one row broadcast to every antenna, or one row per antenna),
/// full coverage otherwise.
stream::CoverageMask snapshot_coverage(const store::MappedSnapshot& snapshot,
                                       std::size_t rows,
                                       const std::string& path) {
  const auto section = snapshot.coverage();
  if (!section) {
    // Hour count only scales the cell totals of a complete report.
    const auto meta = snapshot.stream_meta();
    return stream::CoverageMask::full(rows, meta ? meta->num_hours : 1);
  }
  stream::CoverageMask mask(rows, section->num_hours);
  if (section->rows == 1) {
    for (std::size_t row = 0; row < rows; ++row) {
      mask.set_row(row, section->covered);
    }
    return mask;
  }
  if (section->rows != rows) {
    throw store::SnapshotError("snapshot " + path +
                               ": kCoverage rows do not match the tensor");
  }
  const std::size_t hours = static_cast<std::size_t>(section->num_hours);
  for (std::size_t row = 0; row < rows; ++row) {
    mask.set_row(row, section->covered.subspan(row * hours, hours));
  }
  return mask;
}

}  // namespace

SnapshotPipelineResult run_pipeline_from_snapshot(
    const std::string& path, const PipelineParams& params) {
  const store::MappedSnapshot snapshot(path);
  ml::Matrix traffic;
  if (const auto matrix = snapshot.matrix()) {
    traffic = matrix->to_matrix();
  } else if (snapshot.stream_meta()) {
    traffic = stream::totals_from_snapshot(snapshot);
  } else {
    throw store::SnapshotError("snapshot " + path +
                               ": no kMatrix or kStreamMeta section");
  }
  const auto meta = snapshot.stream_meta();
  const std::span<const std::uint32_t> ids =
      meta ? meta->antenna_ids : std::span<const std::uint32_t>{};
  const stream::CoverageMask mask =
      snapshot_coverage(snapshot, traffic.rows(), path);
  std::uint64_t rejected = 0;
  std::uint64_t repaired = 0;
  if (const auto quarantine = snapshot.quarantine()) {
    for (const std::uint32_t n : quarantine->rejected) rejected += n;
    for (const std::uint32_t n : quarantine->repaired) repaired += n;
  }
  return analyze_with_coverage(std::move(traffic), mask, ids, params,
                               rejected, repaired);
}

SnapshotPipelineResult run_pipeline_from_snapshots(
    std::span<const std::string> paths, const PipelineParams& params) {
  stream::MergedStudy study = stream::merge_snapshots(paths);
  return analyze_with_coverage(std::move(study.traffic), study.coverage,
                               study.antenna_ids, params,
                               study.quarantine.total_rejected(),
                               study.quarantine.total_repaired());
}

}  // namespace icn::core
