#include "core/pipeline.h"

#include <numeric>

#include "core/rca.h"
#include "ml/hungarian.h"
#include "util/stats.h"

namespace icn::core {

PipelineResult run_pipeline(const PipelineParams& params) {
  PipelineResult result{Scenario::build(params.scenario), {}, {}, {}, nullptr};
  result.rsca = compute_rsca(result.scenario.demand().traffic_matrix());
  result.clusters = analyze_clusters(result.rsca, params.clustering);

  const auto& truth = result.scenario.demand().archetype_labels();
  const std::size_t k = result.clusters.chosen_k;

  // Identity map by default.
  result.label_map.resize(k);
  std::iota(result.label_map.begin(), result.label_map.end(), 0);
  if (params.align_to_archetypes && k == traffic::kNumArchetypes) {
    result.label_map = ml::align_labels(result.clusters.labels, truth,
                                        static_cast<int>(k));
    result.clusters.labels =
        ml::apply_label_map(result.clusters.labels, result.label_map);
  }
  result.ari_vs_archetypes =
      icn::util::adjusted_rand_index(result.clusters.labels, truth);

  result.surrogate = std::make_unique<SurrogateExplainer>(
      result.rsca, result.clusters.labels, static_cast<int>(k),
      params.surrogate);
  return result;
}

}  // namespace icn::core
