#include "core/forecast.h"

#include <cmath>

#include "ml/distance.h"
#include "util/arena.h"
#include "util/error.h"
#include "util/parallel.h"
#include "util/stats.h"

namespace icn::core {

void SeasonalForecaster::fit(std::span<const double> series,
                             std::size_t season_hours) {
  ICN_REQUIRE(season_hours > 0, "season length");
  ICN_REQUIRE(series.size() >= season_hours,
              "need at least one full season of training data");
  slot_median_.assign(season_hours, 0.0);
  // Slot buckets live in the per-thread scratch arena: a batch fit over
  // thousands of antennas reuses one warm block per worker instead of a
  // malloc per (antenna, slot). median_inplace sorts the same values the
  // copying median sorted, so slot medians are bit-identical.
  auto& arena = icn::util::scratch_arena();
  const icn::util::Arena::Frame frame(arena);
  const std::span<double> bucket = arena.alloc_span<double>(
      (series.size() + season_hours - 1) / season_hours);
  for (std::size_t slot = 0; slot < season_hours; ++slot) {
    std::size_t n = 0;
    for (std::size_t t = slot; t < series.size(); t += season_hours) {
      bucket[n++] = series[t];
    }
    slot_median_[slot] = icn::util::median_inplace(bucket.first(n));
  }
  train_hours_ = series.size();
}

void SeasonalForecaster::fit_masked(std::span<const double> series,
                                    std::span<const std::uint8_t> covered,
                                    std::size_t season_hours) {
  ICN_REQUIRE(season_hours > 0, "season length");
  ICN_REQUIRE(series.size() >= season_hours,
              "need at least one full season of training data");
  ICN_REQUIRE(covered.size() == series.size(),
              "coverage bitmap must match the series");
  auto& arena = icn::util::scratch_arena();
  const icn::util::Arena::Frame frame(arena);
  const std::span<double> all_covered =
      arena.alloc_span<double>(series.size());
  std::size_t covered_n = 0;
  for (std::size_t t = 0; t < series.size(); ++t) {
    if (covered[t] != 0) all_covered[covered_n++] = series[t];
  }
  ICN_REQUIRE(covered_n != 0, "series has no covered samples");
  const double fallback =
      icn::util::median_inplace(all_covered.first(covered_n));
  slot_median_.assign(season_hours, 0.0);
  const std::span<double> bucket = arena.alloc_span<double>(
      (series.size() + season_hours - 1) / season_hours);
  for (std::size_t slot = 0; slot < season_hours; ++slot) {
    std::size_t n = 0;
    for (std::size_t t = slot; t < series.size(); t += season_hours) {
      if (covered[t] != 0) bucket[n++] = series[t];
    }
    slot_median_[slot] =
        n == 0 ? fallback : icn::util::median_inplace(bucket.first(n));
  }
  train_hours_ = series.size();
}

std::vector<SeasonalForecaster> fit_seasonal_batch(
    std::span<const std::span<const double>> series,
    std::size_t season_hours) {
  std::vector<SeasonalForecaster> out(series.size());
  // Forecaster i is written only by the chunk owning index i, so any
  // decomposition — including stolen chunks — produces the same batch.
  icn::util::parallel_for(
      0, series.size(), icn::util::adaptive_grain(0, series.size()),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          out[i].fit(series[i], season_hours);
        }
      });
  return out;
}

std::vector<SeasonalForecaster> fit_seasonal_batch_masked(
    std::span<const std::span<const double>> series,
    std::span<const std::span<const std::uint8_t>> covered,
    std::size_t season_hours) {
  ICN_REQUIRE(series.size() == covered.size(),
              "one coverage bitmap per series");
  std::vector<SeasonalForecaster> out(series.size());
  icn::util::parallel_for(
      0, series.size(), icn::util::adaptive_grain(0, series.size()),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          out[i].fit_masked(series[i], covered[i], season_hours);
        }
      });
  return out;
}

double SeasonalForecaster::slot_value(std::size_t slot) const {
  ICN_REQUIRE(is_fitted(), "forecaster not fitted");
  ICN_REQUIRE(slot < slot_median_.size(), "slot index");
  return slot_median_[slot];
}

std::vector<double> SeasonalForecaster::forecast(std::size_t horizon) const {
  ICN_REQUIRE(is_fitted(), "forecaster not fitted");
  std::vector<double> out(horizon);
  for (std::size_t h = 0; h < horizon; ++h) {
    out[h] = slot_median_[(train_hours_ + h) % slot_median_.size()];
  }
  return out;
}

void HoltWintersForecaster::fit(std::span<const double> series,
                                std::size_t season_hours) {
  fit(series, season_hours, Params{});
}

void HoltWintersForecaster::fit(std::span<const double> series,
                                std::size_t season_hours,
                                const Params& params) {
  ICN_REQUIRE(season_hours > 0, "season length");
  ICN_REQUIRE(series.size() >= 2 * season_hours,
              "Holt-Winters needs two full seasons");
  for (const double p : {params.alpha, params.beta, params.gamma}) {
    ICN_REQUIRE(p > 0.0 && p < 1.0, "smoothing parameter in (0,1)");
  }
  const std::size_t m = season_hours;
  // Initialization: level = mean of season 1; trend = mean season-over-
  // season change; seasonal = first-season deviations from the level. The
  // season sums go through the dispatched canonical-order kernel, so the
  // initial state is the same at every ICN_SIMD level.
  const double inv_m = 1.0 / static_cast<double>(m);
  const double mean1 = icn::ml::vector_sum(series.first(m)) * inv_m;
  const double mean2 = icn::ml::vector_sum(series.subspan(m, m)) * inv_m;
  level_ = mean1;
  trend_ = (mean2 - mean1) / static_cast<double>(m);
  seasonal_.assign(m, 0.0);
  for (std::size_t t = 0; t < m; ++t) {
    seasonal_[t] = series[t] - mean1;
  }
  // Smoothing pass over the full series.
  for (std::size_t t = 0; t < series.size(); ++t) {
    const std::size_t slot = t % m;
    const double prev_level = level_;
    level_ = params.alpha * (series[t] - seasonal_[slot]) +
             (1.0 - params.alpha) * (level_ + trend_);
    trend_ = params.beta * (level_ - prev_level) +
             (1.0 - params.beta) * trend_;
    seasonal_[slot] = params.gamma * (series[t] - level_) +
                      (1.0 - params.gamma) * seasonal_[slot];
  }
  train_hours_ = series.size();
}

std::vector<double> HoltWintersForecaster::forecast(
    std::size_t horizon) const {
  ICN_REQUIRE(is_fitted(), "forecaster not fitted");
  std::vector<double> out(horizon);
  for (std::size_t h = 0; h < horizon; ++h) {
    const std::size_t slot = (train_hours_ + h) % seasonal_.size();
    out[h] = level_ + static_cast<double>(h + 1) * trend_ + seasonal_[slot];
  }
  return out;
}

double smape(std::span<const double> actual,
             std::span<const double> predicted) {
  ICN_REQUIRE(actual.size() == predicted.size() && !actual.empty(),
              "smape sizes");
  double acc = 0.0;
  std::size_t counted = 0;
  for (std::size_t t = 0; t < actual.size(); ++t) {
    const double denom = std::fabs(actual[t]) + std::fabs(predicted[t]);
    if (denom <= 0.0) continue;  // both zero: perfect, uncounted
    acc += 2.0 * std::fabs(actual[t] - predicted[t]) / denom;
    ++counted;
  }
  return counted == 0 ? 0.0 : acc / static_cast<double>(counted);
}

}  // namespace icn::core
