// Dataset export (the paper's reproducibility deliverable: "we will make
// publicly available the code and processed service consumption data").
// Writes the processed per-antenna RSCA features, cluster labels and antenna
// metadata as CSV.
#pragma once

#include <iosfwd>
#include <span>

#include "core/scenario.h"
#include "ml/matrix.h"

namespace icn::core {

/// Writes one row per indoor antenna: id, name, environment, city, site,
/// cluster label, archetype, total MB, then one RSCA column per service.
/// Requires rsca rows == indoor antennas == labels size.
void export_rsca_csv(std::ostream& out, const Scenario& scenario,
                     const ml::Matrix& rsca, std::span<const int> labels);

/// Writes the raw two-month T matrix (MB): antenna id + one column per
/// service.
void export_traffic_csv(std::ostream& out, const Scenario& scenario);

/// A dataset read back from an export_rsca_csv file — what a downstream
/// user of the published data would load.
struct ImportedDataset {
  std::vector<std::uint32_t> antenna_ids;
  std::vector<std::string> names;
  std::vector<net::Environment> environments;
  std::vector<net::City> cities;
  std::vector<int> clusters;
  std::vector<int> archetypes;
  std::vector<double> total_mb;
  ml::Matrix rsca;                      ///< N x M feature matrix.
  std::vector<std::string> service_names;  ///< Column names (without prefix).
};

/// Parses a CSV produced by export_rsca_csv. Throws PreconditionError on a
/// malformed header, unknown environment/city name, or ragged rows.
[[nodiscard]] ImportedDataset import_rsca_csv(std::istream& in);

}  // namespace icn::core
