#include "core/export.h"

#include <istream>
#include <ostream>
#include <sstream>

#include "util/csv.h"
#include "util/error.h"

namespace icn::core {
namespace {

std::string fmt(double v) {
  std::ostringstream ss;
  ss.precision(10);
  ss << v;
  return ss.str();
}

net::Environment environment_from_name(const std::string& name) {
  for (const net::Environment e : net::all_environments()) {
    if (name == net::environment_name(e)) return e;
  }
  ICN_REQUIRE(false, "unknown environment name: " + name);
  return net::Environment::kMetro;  // unreachable
}

net::City city_from_name(const std::string& name) {
  for (const net::City c : net::all_cities()) {
    if (name == net::city_name(c)) return c;
  }
  ICN_REQUIRE(false, "unknown city name: " + name);
  return net::City::kOther;  // unreachable
}

}  // namespace

void export_rsca_csv(std::ostream& out, const Scenario& scenario,
                     const ml::Matrix& rsca, std::span<const int> labels) {
  const auto& indoor = scenario.topology().indoor();
  ICN_REQUIRE(rsca.rows() == indoor.size() && labels.size() == indoor.size(),
              "export shapes");
  icn::util::CsvWriter writer(out);
  icn::util::CsvRow header = {"antenna_id", "name",    "environment",
                              "city",       "site_id", "cluster",
                              "archetype",  "total_mb"};
  for (std::size_t j = 0; j < scenario.num_services(); ++j) {
    header.push_back("rsca:" + std::string(scenario.catalog().at(j).name));
  }
  writer.write_row(header);
  const auto& profiles = scenario.demand().profiles();
  for (std::size_t i = 0; i < indoor.size(); ++i) {
    icn::util::CsvRow row = {
        std::to_string(indoor[i].id),
        indoor[i].name,
        net::environment_name(indoor[i].environment),
        net::city_name(indoor[i].city),
        std::to_string(indoor[i].site_id),
        std::to_string(labels[i]),
        std::to_string(profiles[i].archetype),
        fmt(profiles[i].total_mb),
    };
    for (std::size_t j = 0; j < rsca.cols(); ++j) {
      row.push_back(fmt(rsca(i, j)));
    }
    writer.write_row(row);
  }
}

ImportedDataset import_rsca_csv(std::istream& in) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const auto rows = icn::util::parse_csv(buffer.str());
  ICN_REQUIRE(rows.size() >= 2, "dataset needs a header and data rows");
  const auto& header = rows.front();
  constexpr std::size_t kMeta = 8;
  ICN_REQUIRE(header.size() > kMeta, "dataset header too narrow");
  ICN_REQUIRE(header[0] == "antenna_id" && header[5] == "cluster",
              "unrecognized dataset header");

  ImportedDataset data;
  const std::size_t m = header.size() - kMeta;
  for (std::size_t j = 0; j < m; ++j) {
    const std::string& column = header[kMeta + j];
    ICN_REQUIRE(column.rfind("rsca:", 0) == 0,
                "feature column without rsca: prefix");
    data.service_names.push_back(column.substr(5));
  }
  const std::size_t n = rows.size() - 1;
  data.rsca = ml::Matrix(n, m);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& row = rows[i + 1];
    ICN_REQUIRE(row.size() == header.size(), "ragged dataset row");
    data.antenna_ids.push_back(
        static_cast<std::uint32_t>(std::stoul(row[0])));
    data.names.push_back(row[1]);
    data.environments.push_back(environment_from_name(row[2]));
    data.cities.push_back(city_from_name(row[3]));
    data.clusters.push_back(std::stoi(row[5]));
    data.archetypes.push_back(std::stoi(row[6]));
    data.total_mb.push_back(std::stod(row[7]));
    for (std::size_t j = 0; j < m; ++j) {
      data.rsca(i, j) = std::stod(row[kMeta + j]);
    }
  }
  return data;
}

void export_traffic_csv(std::ostream& out, const Scenario& scenario) {
  const auto& indoor = scenario.topology().indoor();
  const auto& traffic = scenario.demand().traffic_matrix();
  icn::util::CsvWriter writer(out);
  icn::util::CsvRow header = {"antenna_id"};
  for (std::size_t j = 0; j < scenario.num_services(); ++j) {
    header.push_back(std::string(scenario.catalog().at(j).name));
  }
  writer.write_row(header);
  for (std::size_t i = 0; i < indoor.size(); ++i) {
    icn::util::CsvRow row = {std::to_string(indoor[i].id)};
    for (std::size_t j = 0; j < traffic.cols(); ++j) {
      row.push_back(fmt(traffic(i, j)));
    }
    writer.write_row(row);
  }
}

}  // namespace icn::core
