// Revealed comparative advantage transforms (Sec. 4.1).
//
// RCA (Balassa 1965, Eq. 1) quantifies over-/under-utilization of a service
// at an antenna relative to the whole network; RSCA (Laursen & Engedal,
// Eq. 2) is its symmetric variant in [-1, 1], which removes the unbounded
// over-utilization tail that would otherwise drag cluster barycentres.
// compute_outdoor_rca implements Eq. 5: outdoor antennas measured against the
// *indoor* utilization baseline.
#pragma once

#include "ml/matrix.h"

namespace icn::core {

/// Eq. 1: RCA(i,j) = (T(i,j)/T(i)) / (T(j)/T_tot).
///
/// Requires a non-empty matrix with non-negative entries and every row sum
/// positive (every antenna carried some traffic). Services with zero global
/// traffic get neutral RCA = 1 for every antenna (no information).
[[nodiscard]] ml::Matrix compute_rca(const ml::Matrix& traffic);

/// Eq. 2: RSCA = (RCA - 1) / (RCA + 1), element-wise; output in [-1, 1].
[[nodiscard]] ml::Matrix rca_to_rsca(const ml::Matrix& rca);

/// compute_rca followed by rca_to_rsca.
[[nodiscard]] ml::Matrix compute_rsca(const ml::Matrix& traffic);

/// Eq. 5: RCA of outdoor antennas against the indoor utilization baseline:
/// RCA_out(i,j) = (T_out(i,j)/T_out(i)) / (T_in(j)/T_tot_in).
/// Requires matching service dimensions and positive row sums on both sides.
[[nodiscard]] ml::Matrix compute_outdoor_rca(const ml::Matrix& outdoor_traffic,
                                             const ml::Matrix& indoor_traffic);

/// Eq. 5 + Eq. 2 composed.
[[nodiscard]] ml::Matrix compute_outdoor_rsca(
    const ml::Matrix& outdoor_traffic, const ml::Matrix& indoor_traffic);

}  // namespace icn::core
