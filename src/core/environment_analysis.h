// Cluster <-> indoor-environment correlation (Sec. 5.2): the contingency
// table behind the Sankey diagram (Fig. 6), the per-cluster environment
// composition (Fig. 7) and the per-environment cluster distribution (Fig. 8),
// plus the Paris-share statistics the paper quotes (e.g. ">92% of clusters
// 0 and 4 are in Paris").
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/scenario.h"
#include "util/ascii.h"

namespace icn::core {

/// Cluster/environment cross-statistics.
class EnvironmentCorrelation {
 public:
  /// Builds the contingency from the scenario's indoor antennas and the
  /// given cluster labels (one per indoor antenna, values in [0, k)).
  EnvironmentCorrelation(const Scenario& scenario, std::span<const int> labels,
                         std::size_t k);

  [[nodiscard]] std::size_t num_clusters() const { return k_; }

  /// Antennas of environment e inside cluster c.
  [[nodiscard]] std::size_t count(std::size_t cluster,
                                  net::Environment env) const;

  /// Cluster size (all environments).
  [[nodiscard]] std::size_t cluster_size(std::size_t cluster) const;

  /// Environment population (all clusters) — the Table-1 N_env.
  [[nodiscard]] std::size_t environment_size(net::Environment env) const;

  /// Fig. 7: fraction of cluster c coming from environment e.
  [[nodiscard]] double share_of_cluster(std::size_t cluster,
                                        net::Environment env) const;

  /// Fig. 8: fraction of environment e landing in cluster c.
  [[nodiscard]] double share_of_environment(net::Environment env,
                                            std::size_t cluster) const;

  /// Fraction of cluster c's antennas located in Paris (and suburbs).
  [[nodiscard]] double paris_share(std::size_t cluster) const;

  /// Fig. 6: cluster -> environment Sankey flows (weights = antenna counts).
  [[nodiscard]] std::vector<icn::util::SankeyFlow> sankey_flows() const;

 private:
  std::size_t k_ = 0;
  /// counts_[cluster][env]
  std::vector<std::vector<std::size_t>> counts_;
  std::vector<std::size_t> cluster_sizes_;
  std::vector<std::size_t> paris_counts_;
};

}  // namespace icn::core
