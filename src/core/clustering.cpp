#include "core/clustering.h"

#include <algorithm>
#include <cmath>

#include "ml/distance.h"
#include "ml/metrics.h"
#include "util/error.h"

namespace icn::core {

ClusterAnalysisResult analyze_clusters(const ml::Matrix& features,
                                       const ClusterAnalysisParams& params) {
  ICN_REQUIRE(params.k_min >= 2 && params.k_min <= params.k_max,
              "k range");
  ICN_REQUIRE(features.rows() > params.k_max, "need more samples than k_max");
  ClusterAnalysisResult result;
  result.dendrogram = ml::agglomerative_cluster(features, params.linkage);

  // One pairwise-distance computation serves every k of the sweep.
  const ml::CondensedDistances dist(features);
  result.sweep.reserve(params.k_max - params.k_min + 1);
  for (std::size_t k = params.k_min; k <= params.k_max; ++k) {
    const auto labels = result.dendrogram.cut(k);
    KSelectionPoint point;
    point.k = k;
    point.silhouette = ml::silhouette_score(dist, labels);
    point.dunn = ml::dunn_index(dist, labels);
    result.sweep.push_back(point);
  }

  result.chosen_k =
      params.chosen_k != 0 ? params.chosen_k : suggest_k(result.sweep);
  result.labels = result.dendrogram.cut(result.chosen_k);
  return result;
}

std::size_t suggest_k(const std::vector<KSelectionPoint>& sweep) {
  ICN_REQUIRE(sweep.size() >= 2, "sweep too short");
  // Normalize each metric to its max over the sweep, then pick the k whose
  // drop to k+1 is steepest (the "high value followed by an abrupt drop").
  double max_sil = 0.0, max_dunn = 0.0;
  for (const auto& p : sweep) {
    max_sil = std::max(max_sil, std::fabs(p.silhouette));
    max_dunn = std::max(max_dunn, std::fabs(p.dunn));
  }
  if (max_sil == 0.0) max_sil = 1.0;
  if (max_dunn == 0.0) max_dunn = 1.0;
  std::size_t best_k = sweep.front().k;
  double best_drop = -1.0;
  for (std::size_t i = 0; i + 1 < sweep.size(); ++i) {
    const double drop =
        (sweep[i].silhouette - sweep[i + 1].silhouette) / max_sil +
        (sweep[i].dunn - sweep[i + 1].dunn) / max_dunn;
    if (drop > best_drop) {
      best_drop = drop;
      best_k = sweep[i].k;
    }
  }
  return best_k;
}

}  // namespace icn::core
