// Hourly aggregation engine (Sec. 3): sums the classified sessions into
// per-hour, per-service, per-antenna traffic — the exact form the paper's
// analysis consumes ("data is aggregated over time within intervals of one
// hour"), and from there into the two-month T matrix.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "ml/matrix.h"
#include "probe/probe.h"

namespace icn::probe {

/// Dense (antenna, service, hour) accumulation tensor over a fixed antenna
/// population and hour range.
class HourlyAggregator {
 public:
  /// Tracks the given antenna ids (rows in id order as given), num_services
  /// services and hours [0, num_hours). Requires non-empty ids, no
  /// duplicates, num_services > 0, num_hours > 0.
  HourlyAggregator(std::span<const std::uint32_t> antenna_ids,
                   std::size_t num_services, std::int64_t num_hours);

  /// Accumulates one session (volume in MB). Sessions for untracked antennas
  /// are counted and dropped; out-of-range hours/services throw.
  void add(const ServiceSession& session);

  /// Accumulates a batch.
  void add_all(std::span<const ServiceSession> sessions);

  /// Total MB for (antenna, service) summed over all hours.
  [[nodiscard]] double total(std::uint32_t antenna_id,
                             std::size_t service) const;

  /// Hourly MB series for (antenna, service); length num_hours.
  [[nodiscard]] std::vector<double> series(std::uint32_t antenna_id,
                                           std::size_t service) const;

  /// The aggregated T matrix: rows follow the antenna-id order given at
  /// construction, columns are services, values are MB totals.
  [[nodiscard]] ml::Matrix traffic_matrix() const;

  /// Sessions dropped because their antenna is not tracked.
  [[nodiscard]] std::size_t dropped() const { return dropped_; }

  [[nodiscard]] std::size_t num_antennas() const { return ids_.size(); }
  [[nodiscard]] std::size_t num_services() const { return num_services_; }
  [[nodiscard]] std::int64_t num_hours() const { return num_hours_; }

 private:
  std::vector<std::uint32_t> ids_;
  std::unordered_map<std::uint32_t, std::size_t> row_of_;
  std::size_t num_services_ = 0;
  std::int64_t num_hours_ = 0;
  std::vector<double> tensor_;  ///< [row][service][hour], row-major.
  std::size_t dropped_ = 0;

  [[nodiscard]] std::size_t index(std::size_t row, std::size_t service,
                                  std::int64_t hour) const;
};

}  // namespace icn::probe
