// The passive measurement probe (Sec. 3): observes flows on the Gi/SGi/Gn
// interfaces, geo-references each to a BTS via the GTP-C ULI, identifies the
// mobile service via DPI, and emits per-session service records.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "probe/dpi.h"
#include "probe/gtp.h"
#include "traffic/flows.h"

namespace icn::probe {

/// One geo-referenced, service-classified IP session.
struct ServiceSession {
  std::uint32_t antenna_id = 0;  ///< BTS resolved from the ULI.
  std::size_t service = 0;       ///< Catalogue service index from DPI.
  std::int64_t hour = 0;         ///< Hour index of the session start.
  double down_bytes = 0.0;
  double up_bytes = 0.0;

  /// Total session volume in MB (downlink + uplink, as in the T matrix).
  [[nodiscard]] double volume_mb() const {
    return (down_bytes + up_bytes) / 1.0e6;
  }
};

/// Passive probe: flow records in, service sessions out.
class PassiveProbe {
 public:
  /// Decoder and classifier must outlive the probe.
  PassiveProbe(const UliDecoder& uli, DpiClassifier& dpi);

  /// Processes one flow; nullopt when the cell is unknown or the DPI cannot
  /// identify the service (counted separately).
  [[nodiscard]] std::optional<ServiceSession> observe(
      const icn::traffic::FlowRecord& flow);

  /// Processes a batch, keeping only resolvable sessions.
  [[nodiscard]] std::vector<ServiceSession> observe_all(
      std::span<const icn::traffic::FlowRecord> flows);

  /// Flows dropped because the ULI cell was not registered.
  [[nodiscard]] std::size_t unknown_location() const {
    return unknown_location_;
  }

  /// Flows dropped because the DPI could not classify the host.
  [[nodiscard]] std::size_t unknown_service() const {
    return unknown_service_;
  }

 private:
  const UliDecoder* uli_;
  DpiClassifier* dpi_;
  std::size_t unknown_location_ = 0;
  std::size_t unknown_service_ = 0;
};

}  // namespace icn::probe
