// GTP-C User Location Information handling (Sec. 3 of the paper): every IP
// session is geo-referenced to a BTS by the ECGI carried in PDP Contexts /
// EPS Bearers on the GTP-C control plane. Here we model the ULI as an ECGI
// (cell identity) and provide the decoder the passive probe uses to map a
// cell identity back to an antenna.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

namespace icn::probe {

/// User Location Information: the subset of the GTP-C IE the probes use.
struct Uli {
  std::uint16_t tac = 0;   ///< Tracking area code.
  std::uint32_t ecgi = 0;  ///< E-UTRAN cell global identity (28-bit value).
};

/// Maps ECGIs to operator antenna ids.
class UliDecoder {
 public:
  /// Registers a cell identity for an antenna. Re-registering the same ECGI
  /// for a different antenna throws (cell identities are unique).
  void register_cell(std::uint32_t ecgi, std::uint32_t antenna_id);

  /// Registers the contiguous range [base, base + count) mapped to antenna
  /// ids [0, count) — the encoding FlowGenerator uses.
  void register_range(std::uint32_t ecgi_base, std::uint32_t count);

  /// Antenna id of a cell identity, or nullopt for unknown cells.
  [[nodiscard]] std::optional<std::uint32_t> antenna_of(
      std::uint32_t ecgi) const;

  /// Number of registered cells.
  [[nodiscard]] std::size_t size() const { return cells_.size(); }

 private:
  std::unordered_map<std::uint32_t, std::uint32_t> cells_;
};

}  // namespace icn::probe
