#include "probe/gtp.h"

#include "util/error.h"

namespace icn::probe {

void UliDecoder::register_cell(std::uint32_t ecgi, std::uint32_t antenna_id) {
  const auto [it, inserted] = cells_.emplace(ecgi, antenna_id);
  ICN_REQUIRE(inserted || it->second == antenna_id,
              "ECGI already registered to a different antenna");
}

void UliDecoder::register_range(std::uint32_t ecgi_base, std::uint32_t count) {
  for (std::uint32_t i = 0; i < count; ++i) {
    register_cell(ecgi_base + i, i);
  }
}

std::optional<std::uint32_t> UliDecoder::antenna_of(std::uint32_t ecgi) const {
  const auto it = cells_.find(ecgi);
  if (it == cells_.end()) return std::nullopt;
  return it->second;
}

}  // namespace icn::probe
