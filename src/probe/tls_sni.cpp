#include "probe/tls_sni.h"

#include "util/error.h"
#include "util/rng.h"

namespace icn::probe {
namespace {

constexpr std::uint8_t kRecordHandshake = 22;
constexpr std::uint8_t kHandshakeClientHello = 1;
constexpr std::uint16_t kVersionTls12 = 0x0303;
constexpr std::uint16_t kVersionTls10 = 0x0301;
constexpr std::uint16_t kExtServerName = 0;
constexpr std::uint8_t kSniHostName = 0;

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
}

/// Bounds-checked big-endian reader over a byte span.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] std::size_t remaining() const {
    return ok_ ? bytes_.size() - at_ : 0;
  }

  std::uint8_t u8() {
    if (!require(1)) return 0;
    return bytes_[at_++];
  }
  std::uint16_t u16() {
    if (!require(2)) return 0;
    const auto v = static_cast<std::uint16_t>((bytes_[at_] << 8) |
                                              bytes_[at_ + 1]);
    at_ += 2;
    return v;
  }
  std::uint32_t u24() {
    if (!require(3)) return 0;
    const auto v = (static_cast<std::uint32_t>(bytes_[at_]) << 16) |
                   (static_cast<std::uint32_t>(bytes_[at_ + 1]) << 8) |
                   static_cast<std::uint32_t>(bytes_[at_ + 2]);
    at_ += 3;
    return v;
  }
  std::span<const std::uint8_t> take(std::size_t n) {
    if (!require(n)) return {};
    const auto out = bytes_.subspan(at_, n);
    at_ += n;
    return out;
  }
  void skip(std::size_t n) { (void)take(n); }

 private:
  bool require(std::size_t n) {
    if (!ok_ || bytes_.size() - at_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t at_ = 0;
  bool ok_ = true;
};

}  // namespace

std::vector<std::uint8_t> build_client_hello(std::string_view host,
                                             std::uint64_t seed) {
  ICN_REQUIRE(!host.empty() && host.size() < 254, "SNI host length");
  icn::util::Rng rng(icn::util::derive_seed(seed, 0x7157C1ULL));

  // server_name extension body.
  std::vector<std::uint8_t> sni;
  put_u16(sni, static_cast<std::uint16_t>(host.size() + 3));  // list length
  sni.push_back(kSniHostName);
  put_u16(sni, static_cast<std::uint16_t>(host.size()));
  sni.insert(sni.end(), host.begin(), host.end());

  std::vector<std::uint8_t> extensions;
  put_u16(extensions, kExtServerName);
  put_u16(extensions, static_cast<std::uint16_t>(sni.size()));
  extensions.insert(extensions.end(), sni.begin(), sni.end());
  // A second, opaque extension so parsers must actually walk the list
  // (supported_groups with two named groups).
  put_u16(extensions, 10);
  put_u16(extensions, 6);
  put_u16(extensions, 4);
  put_u16(extensions, 0x001D);  // x25519
  put_u16(extensions, 0x0017);  // secp256r1

  std::vector<std::uint8_t> body;
  put_u16(body, kVersionTls12);
  for (int i = 0; i < 32; ++i) {  // client random
    body.push_back(static_cast<std::uint8_t>(rng.uniform_index(256)));
  }
  body.push_back(16);  // session id length
  for (int i = 0; i < 16; ++i) {
    body.push_back(static_cast<std::uint8_t>(rng.uniform_index(256)));
  }
  put_u16(body, 4);  // cipher suites length
  put_u16(body, 0x1301);
  put_u16(body, 0x1302);
  body.push_back(1);  // compression methods length
  body.push_back(0);  // null compression
  put_u16(body, static_cast<std::uint16_t>(extensions.size()));
  body.insert(body.end(), extensions.begin(), extensions.end());

  std::vector<std::uint8_t> record;
  record.push_back(kRecordHandshake);
  put_u16(record, kVersionTls10);  // legacy record version
  put_u16(record, static_cast<std::uint16_t>(body.size() + 4));
  record.push_back(kHandshakeClientHello);
  record.push_back(static_cast<std::uint8_t>(body.size() >> 16));
  record.push_back(static_cast<std::uint8_t>((body.size() >> 8) & 0xFF));
  record.push_back(static_cast<std::uint8_t>(body.size() & 0xFF));
  record.insert(record.end(), body.begin(), body.end());
  return record;
}

std::optional<std::string> extract_sni(
    std::span<const std::uint8_t> record) {
  Reader r(record);
  if (r.u8() != kRecordHandshake) return std::nullopt;
  r.skip(2);  // record version (tolerant: any value)
  const std::uint16_t record_len = r.u16();
  if (!r.ok() || r.remaining() < record_len) return std::nullopt;

  if (r.u8() != kHandshakeClientHello) return std::nullopt;
  const std::uint32_t hs_len = r.u24();
  if (!r.ok() || r.remaining() < hs_len) return std::nullopt;

  r.skip(2);   // client version
  r.skip(32);  // random
  const std::uint8_t session_len = r.u8();
  r.skip(session_len);
  const std::uint16_t cipher_len = r.u16();
  r.skip(cipher_len);
  const std::uint8_t compression_len = r.u8();
  r.skip(compression_len);
  if (!r.ok()) return std::nullopt;

  const std::uint16_t ext_total = r.u16();
  if (!r.ok() || r.remaining() < ext_total) return std::nullopt;
  std::size_t walked = 0;
  while (r.ok() && walked + 4 <= ext_total) {
    const std::uint16_t ext_type = r.u16();
    const std::uint16_t ext_len = r.u16();
    walked += 4;
    if (walked + ext_len > ext_total) return std::nullopt;
    walked += ext_len;
    if (ext_type != kExtServerName) {
      r.skip(ext_len);
      continue;
    }
    Reader ext(r.take(ext_len));
    const std::uint16_t list_len = ext.u16();
    if (!ext.ok() || ext.remaining() < list_len) return std::nullopt;
    std::size_t list_walked = 0;
    while (ext.ok() && list_walked + 3 <= list_len) {
      const std::uint8_t name_type = ext.u8();
      const std::uint16_t name_len = ext.u16();
      list_walked += 3;
      if (list_walked + name_len > list_len) return std::nullopt;
      list_walked += name_len;
      const auto name = ext.take(name_len);
      if (!ext.ok()) return std::nullopt;
      if (name_type == kSniHostName) {
        if (name.empty()) return std::nullopt;
        return std::string(name.begin(), name.end());
      }
    }
    return std::nullopt;  // server_name extension without a host_name entry
  }
  return std::nullopt;  // no server_name extension
}

}  // namespace icn::probe
