#include "probe/probe.h"

namespace icn::probe {

PassiveProbe::PassiveProbe(const UliDecoder& uli, DpiClassifier& dpi)
    : uli_(&uli), dpi_(&dpi) {}

std::optional<ServiceSession> PassiveProbe::observe(
    const icn::traffic::FlowRecord& flow) {
  const auto antenna = uli_->antenna_of(flow.ecgi);
  if (!antenna.has_value()) {
    ++unknown_location_;
    return std::nullopt;
  }
  const auto service = dpi_->classify(flow.sni);
  if (!service.has_value()) {
    ++unknown_service_;
    return std::nullopt;
  }
  ServiceSession session;
  session.antenna_id = *antenna;
  session.service = *service;
  session.hour = flow.start_hour;
  session.down_bytes = flow.down_bytes;
  session.up_bytes = flow.up_bytes;
  return session;
}

std::vector<ServiceSession> PassiveProbe::observe_all(
    std::span<const icn::traffic::FlowRecord> flows) {
  std::vector<ServiceSession> sessions;
  sessions.reserve(flows.size());
  for (const auto& flow : flows) {
    if (auto s = observe(flow); s.has_value()) {
      sessions.push_back(*s);
    }
  }
  return sessions;
}

}  // namespace icn::probe
