#include "probe/wire.h"

#include "probe/tls_sni.h"
#include "util/rng.h"

namespace icn::probe {

WireCapture synthesize_wire(const traffic::FlowRecord& flow,
                            const Plmn& plmn) {
  WireCapture capture;
  GtpcMessage msg;
  msg.message_type = kCreateSessionRequest;
  msg.teid = flow.src_ip;  // any stable token serves as the tunnel id here
  msg.sequence = static_cast<std::uint32_t>(flow.start_hour) & 0xFFFFFF;
  UliIe uli;
  uli.ecgi = Ecgi{plmn, flow.ecgi & 0x0FFFFFFF};
  append_uli_ie(msg.ies, uli);
  capture.gtpc = encode_gtpc(msg);
  capture.client_hello = build_client_hello(
      flow.sni, icn::util::derive_seed(flow.src_ip, flow.src_port));
  capture.start_hour = flow.start_hour;
  capture.down_bytes = flow.down_bytes;
  capture.up_bytes = flow.up_bytes;
  return capture;
}

std::optional<ServiceSession> observe_wire(const WireCapture& capture,
                                           const UliDecoder& uli,
                                           DpiClassifier& dpi) {
  const auto msg = parse_gtpc(capture.gtpc);
  if (!msg.has_value()) return std::nullopt;
  const auto location = find_uli(msg->ies);
  if (!location.has_value() || !location->ecgi.has_value()) {
    return std::nullopt;
  }
  const auto antenna = uli.antenna_of(location->ecgi->eci);
  if (!antenna.has_value()) return std::nullopt;
  const auto service = dpi.classify_client_hello(capture.client_hello);
  if (!service.has_value()) return std::nullopt;
  ServiceSession session;
  session.antenna_id = *antenna;
  session.service = *service;
  session.hour = capture.start_hour;
  session.down_bytes = capture.down_bytes;
  session.up_bytes = capture.up_bytes;
  return session;
}

}  // namespace icn::probe
