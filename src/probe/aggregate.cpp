#include "probe/aggregate.h"

#include "util/error.h"
#include "util/parallel.h"

namespace icn::probe {

HourlyAggregator::HourlyAggregator(std::span<const std::uint32_t> antenna_ids,
                                   std::size_t num_services,
                                   std::int64_t num_hours)
    : ids_(antenna_ids.begin(), antenna_ids.end()),
      num_services_(num_services),
      num_hours_(num_hours) {
  ICN_REQUIRE(!ids_.empty(), "aggregator needs antennas");
  ICN_REQUIRE(num_services_ > 0, "aggregator needs services");
  ICN_REQUIRE(num_hours_ > 0, "aggregator needs hours");
  for (std::size_t r = 0; r < ids_.size(); ++r) {
    const auto [it, inserted] = row_of_.emplace(ids_[r], r);
    ICN_REQUIRE(inserted, "duplicate antenna id in aggregator");
  }
  tensor_.assign(ids_.size() * num_services_ *
                     static_cast<std::size_t>(num_hours_),
                 0.0);
}

std::size_t HourlyAggregator::index(std::size_t row, std::size_t service,
                                    std::int64_t hour) const {
  return (row * num_services_ + service) *
             static_cast<std::size_t>(num_hours_) +
         static_cast<std::size_t>(hour);
}

void HourlyAggregator::add(const ServiceSession& session) {
  const auto it = row_of_.find(session.antenna_id);
  if (it == row_of_.end()) {
    ++dropped_;
    return;
  }
  ICN_REQUIRE(session.service < num_services_, "session service index");
  ICN_REQUIRE(session.hour >= 0 && session.hour < num_hours_,
              "session hour index");
  tensor_[index(it->second, session.service, session.hour)] +=
      session.volume_mb();
}

void HourlyAggregator::add_all(std::span<const ServiceSession> sessions) {
  for (const auto& s : sessions) add(s);
}

double HourlyAggregator::total(std::uint32_t antenna_id,
                               std::size_t service) const {
  const auto it = row_of_.find(antenna_id);
  ICN_REQUIRE(it != row_of_.end(), "untracked antenna id");
  ICN_REQUIRE(service < num_services_, "service index");
  double acc = 0.0;
  for (std::int64_t t = 0; t < num_hours_; ++t) {
    acc += tensor_[index(it->second, service, t)];
  }
  return acc;
}

std::vector<double> HourlyAggregator::series(std::uint32_t antenna_id,
                                             std::size_t service) const {
  const auto it = row_of_.find(antenna_id);
  ICN_REQUIRE(it != row_of_.end(), "untracked antenna id");
  ICN_REQUIRE(service < num_services_, "service index");
  std::vector<double> out(static_cast<std::size_t>(num_hours_));
  for (std::int64_t t = 0; t < num_hours_; ++t) {
    out[static_cast<std::size_t>(t)] = tensor_[index(it->second, service, t)];
  }
  return out;
}

ml::Matrix HourlyAggregator::traffic_matrix() const {
  ml::Matrix out(ids_.size(), num_services_);
  // Each antenna row folds its own (service, hour) slab of the tensor in the
  // serial order; rows are independent, so the matrix is bit-identical on
  // any thread count.
  icn::util::parallel_for(
      0, ids_.size(), 8, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t r = lo; r < hi; ++r) {
          for (std::size_t j = 0; j < num_services_; ++j) {
            double acc = 0.0;
            for (std::int64_t t = 0; t < num_hours_; ++t) {
              acc += tensor_[index(r, j, t)];
            }
            out(r, j) = acc;
          }
        }
      });
  return out;
}

}  // namespace icn::probe
