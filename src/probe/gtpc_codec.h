// Byte-level GTPv2-C encoding/decoding (simplified from 3GPP TS 29.274).
//
// The paper's probes geo-reference IP sessions "by exploiting the User
// Location Information (ULI) field present in the PDP Contexts and Evolved
// Packet System (EPS) Bearers over the GPRS Tunneling Protocol control plane
// (GTP-C)" (Sec. 3). This codec implements the wire format those probes
// parse: the GTPv2-C header, the TLV information-element framing, and the
// ULI IE carrying TAI (tracking area) and ECGI (cell identity) with
// BCD-encoded PLMN ids.
//
// Parsing never throws and never reads out of bounds: malformed input yields
// std::nullopt (probes must survive arbitrary captured bytes).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace icn::probe {

/// Public Land Mobile Network identity: 3-digit MCC, 2- or 3-digit MNC.
struct Plmn {
  std::string mcc = "208";  ///< France.
  std::string mnc = "01";

  friend bool operator==(const Plmn&, const Plmn&) = default;
};

/// Tracking Area Identity.
struct Tai {
  Plmn plmn;
  std::uint16_t tac = 0;

  friend bool operator==(const Tai&, const Tai&) = default;
};

/// E-UTRAN Cell Global Identity; the ECI is 28 bits.
struct Ecgi {
  Plmn plmn;
  std::uint32_t eci = 0;

  friend bool operator==(const Ecgi&, const Ecgi&) = default;
};

/// Decoded ULI information element (only the TAI/ECGI location types the
/// probes use are modelled).
struct UliIe {
  std::optional<Tai> tai;
  std::optional<Ecgi> ecgi;

  friend bool operator==(const UliIe&, const UliIe&) = default;
};

/// GTPv2-C message type values used here.
inline constexpr std::uint8_t kCreateSessionRequest = 32;
inline constexpr std::uint8_t kModifyBearerRequest = 34;

/// IE type of the User Location Information element.
inline constexpr std::uint8_t kIeTypeUli = 86;

/// A GTPv2-C message: header fields plus the raw concatenated IEs.
struct GtpcMessage {
  std::uint8_t message_type = kCreateSessionRequest;
  std::uint32_t teid = 0;
  std::uint32_t sequence = 0;  ///< 24 bits on the wire.
  std::vector<std::uint8_t> ies;
};

/// Encodes a 3-byte BCD PLMN (TS 24.008 10.5.1.3 layout). Requires mcc of
/// exactly 3 digits and mnc of 2 or 3 digits.
void append_plmn(std::vector<std::uint8_t>& out, const Plmn& plmn);

/// Decodes 3 PLMN bytes; nullopt when a nibble is not a digit (except the
/// 2-digit-MNC filler 0xF).
[[nodiscard]] std::optional<Plmn> parse_plmn(
    std::span<const std::uint8_t> bytes);

/// Appends a complete ULI IE (type, length, spare, flags, locations).
/// Requires at least one location present and any ECI to fit in 28 bits.
void append_uli_ie(std::vector<std::uint8_t>& out, const UliIe& uli);

/// Encodes header + IEs into wire bytes.
/// Requires ies to fit the 16-bit length field.
[[nodiscard]] std::vector<std::uint8_t> encode_gtpc(const GtpcMessage& msg);

/// Parses a GTPv2-C message (header with TEID). Returns nullopt on any
/// structural problem: short buffer, wrong version, truncated length.
[[nodiscard]] std::optional<GtpcMessage> parse_gtpc(
    std::span<const std::uint8_t> bytes);

/// Scans a concatenated-IE buffer for the first ULI IE and decodes it.
/// Returns nullopt when no well-formed ULI is present.
[[nodiscard]] std::optional<UliIe> find_uli(
    std::span<const std::uint8_t> ies);

}  // namespace icn::probe
