// Deep-packet-inspection service classification (Sec. 3): the MNO identifies
// the mobile service of each TCP/UDP session by DPI + proprietary traffic
// classifiers. Our classifier matches the TLS SNI / QUIC host of a flow
// against the service catalogue's signatures, tracking hit/miss statistics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

#include "traffic/services.h"

namespace icn::probe {

/// SNI-based service classifier with observability counters.
class DpiClassifier {
 public:
  /// The catalogue must outlive the classifier.
  explicit DpiClassifier(const icn::traffic::ServiceCatalog& catalog);

  /// Classifies an SNI host into a catalogue service index; nullopt (and a
  /// miss counted) for unknown hosts.
  [[nodiscard]] std::optional<std::size_t> classify(std::string_view sni);

  /// Wire-level path: extracts the SNI from raw TLS ClientHello record
  /// bytes (see probe/tls_sni.h) and classifies it. Malformed records count
  /// as misses.
  [[nodiscard]] std::optional<std::size_t> classify_client_hello(
      std::span<const std::uint8_t> record);

  /// Number of successfully classified flows so far.
  [[nodiscard]] std::size_t classified() const { return classified_; }

  /// Number of flows that matched no signature.
  [[nodiscard]] std::size_t unmatched() const { return unmatched_; }

  /// Resets the counters.
  void reset_stats();

 private:
  const icn::traffic::ServiceCatalog* catalog_;
  std::size_t classified_ = 0;
  std::size_t unmatched_ = 0;
};

}  // namespace icn::probe
