#include "probe/dpi.h"

#include "probe/tls_sni.h"

namespace icn::probe {

DpiClassifier::DpiClassifier(const icn::traffic::ServiceCatalog& catalog)
    : catalog_(&catalog) {}

std::optional<std::size_t> DpiClassifier::classify(std::string_view sni) {
  const auto service = catalog_->classify_sni(sni);
  if (service.has_value()) {
    ++classified_;
  } else {
    ++unmatched_;
  }
  return service;
}

std::optional<std::size_t> DpiClassifier::classify_client_hello(
    std::span<const std::uint8_t> record) {
  const auto sni = extract_sni(record);
  if (!sni.has_value()) {
    ++unmatched_;
    return std::nullopt;
  }
  return classify(*sni);
}

void DpiClassifier::reset_stats() {
  classified_ = 0;
  unmatched_ = 0;
}

}  // namespace icn::probe
