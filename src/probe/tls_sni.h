// TLS ClientHello SNI extraction — what the DPI actually does on the wire.
//
// The probe's service classification keys on the server name a TLS session
// announces. This module synthesizes well-formed TLS 1.2 ClientHello records
// (for the traffic generator) and extracts the server_name extension from
// captured record bytes (for the classifier), with strict bounds checking:
// extract_sni never throws and never reads out of range, whatever bytes it
// is handed.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace icn::probe {

/// Builds a TLS 1.2 ClientHello record announcing `host` in the server_name
/// extension. `seed` randomizes the client random and session id so two
/// flows do not produce identical bytes. Requires a non-empty host shorter
/// than 254 bytes.
[[nodiscard]] std::vector<std::uint8_t> build_client_hello(
    std::string_view host, std::uint64_t seed = 0);

/// Extracts the SNI host name from a TLS record. Returns nullopt when the
/// bytes are not a well-formed ClientHello carrying a server_name extension
/// (wrong record type, truncation at any depth, missing extension, ...).
[[nodiscard]] std::optional<std::string> extract_sni(
    std::span<const std::uint8_t> record);

}  // namespace icn::probe
