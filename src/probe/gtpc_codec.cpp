#include "probe/gtpc_codec.h"

#include <cctype>

#include "util/error.h"

namespace icn::probe {
namespace {

constexpr std::uint8_t kVersion2 = 2;
constexpr std::size_t kHeaderWithTeid = 12;

/// ULI flags byte (TS 29.274 8.21): bit layout, LSB first.
constexpr std::uint8_t kUliFlagTai = 1U << 3;
constexpr std::uint8_t kUliFlagEcgi = 1U << 4;

std::uint8_t digit_of(char c) {
  return static_cast<std::uint8_t>(c - '0');
}

bool is_digits(const std::string& s) {
  if (s.empty()) return false;
  for (const char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
}

std::uint16_t get_u16(std::span<const std::uint8_t> b, std::size_t at) {
  return static_cast<std::uint16_t>((b[at] << 8) | b[at + 1]);
}

std::uint32_t get_u32(std::span<const std::uint8_t> b, std::size_t at) {
  return (static_cast<std::uint32_t>(b[at]) << 24) |
         (static_cast<std::uint32_t>(b[at + 1]) << 16) |
         (static_cast<std::uint32_t>(b[at + 2]) << 8) |
         static_cast<std::uint32_t>(b[at + 3]);
}

}  // namespace

void append_plmn(std::vector<std::uint8_t>& out, const Plmn& plmn) {
  ICN_REQUIRE(is_digits(plmn.mcc) && plmn.mcc.size() == 3,
              "MCC must be 3 digits");
  ICN_REQUIRE(is_digits(plmn.mnc) &&
                  (plmn.mnc.size() == 2 || plmn.mnc.size() == 3),
              "MNC must be 2 or 3 digits");
  const std::uint8_t mcc1 = digit_of(plmn.mcc[0]);
  const std::uint8_t mcc2 = digit_of(plmn.mcc[1]);
  const std::uint8_t mcc3 = digit_of(plmn.mcc[2]);
  const bool mnc3 = plmn.mnc.size() == 3;
  const std::uint8_t mnc1 = digit_of(plmn.mnc[0]);
  const std::uint8_t mnc2 = digit_of(plmn.mnc[1]);
  const std::uint8_t mnc3d = mnc3 ? digit_of(plmn.mnc[2]) : 0xF;
  // TS 24.008: byte0 = mcc2|mcc1, byte1 = mnc3(or F)|mcc3, byte2 = mnc2|mnc1.
  out.push_back(static_cast<std::uint8_t>((mcc2 << 4) | mcc1));
  out.push_back(static_cast<std::uint8_t>((mnc3d << 4) | mcc3));
  out.push_back(static_cast<std::uint8_t>((mnc2 << 4) | mnc1));
}

std::optional<Plmn> parse_plmn(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 3) return std::nullopt;
  const std::uint8_t mcc1 = bytes[0] & 0xF;
  const std::uint8_t mcc2 = bytes[0] >> 4;
  const std::uint8_t mcc3 = bytes[1] & 0xF;
  const std::uint8_t mnc3 = bytes[1] >> 4;
  const std::uint8_t mnc1 = bytes[2] & 0xF;
  const std::uint8_t mnc2 = bytes[2] >> 4;
  for (const std::uint8_t d : {mcc1, mcc2, mcc3, mnc1, mnc2}) {
    if (d > 9) return std::nullopt;
  }
  if (mnc3 > 9 && mnc3 != 0xF) return std::nullopt;
  Plmn plmn;
  plmn.mcc = {static_cast<char>('0' + mcc1), static_cast<char>('0' + mcc2),
              static_cast<char>('0' + mcc3)};
  plmn.mnc = {static_cast<char>('0' + mnc1), static_cast<char>('0' + mnc2)};
  if (mnc3 != 0xF) plmn.mnc.push_back(static_cast<char>('0' + mnc3));
  return plmn;
}

void append_uli_ie(std::vector<std::uint8_t>& out, const UliIe& uli) {
  ICN_REQUIRE(uli.tai.has_value() || uli.ecgi.has_value(),
              "ULI needs at least one location");
  if (uli.ecgi) {
    ICN_REQUIRE(uli.ecgi->eci <= 0x0FFFFFFF, "ECI is 28 bits");
  }
  std::vector<std::uint8_t> payload;
  std::uint8_t flags = 0;
  if (uli.tai) flags |= kUliFlagTai;
  if (uli.ecgi) flags |= kUliFlagEcgi;
  payload.push_back(flags);
  // TS 29.274: locations appear in flag-bit order (TAI before ECGI).
  if (uli.tai) {
    append_plmn(payload, uli.tai->plmn);
    put_u16(payload, uli.tai->tac);
  }
  if (uli.ecgi) {
    append_plmn(payload, uli.ecgi->plmn);
    put_u32(payload, uli.ecgi->eci & 0x0FFFFFFF);
  }
  out.push_back(kIeTypeUli);
  put_u16(out, static_cast<std::uint16_t>(payload.size()));
  out.push_back(0);  // spare / instance
  out.insert(out.end(), payload.begin(), payload.end());
}

std::vector<std::uint8_t> encode_gtpc(const GtpcMessage& msg) {
  ICN_REQUIRE(msg.ies.size() + 8 <= 0xFFFF, "GTP-C message too long");
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderWithTeid + msg.ies.size());
  // Version 2, P = 0, TEID flag = 1.
  out.push_back(static_cast<std::uint8_t>(kVersion2 << 5 | 1U << 3));
  out.push_back(msg.message_type);
  // Length counts everything after the first 4 bytes.
  put_u16(out, static_cast<std::uint16_t>(8 + msg.ies.size()));
  put_u32(out, msg.teid);
  out.push_back(static_cast<std::uint8_t>((msg.sequence >> 16) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((msg.sequence >> 8) & 0xFF));
  out.push_back(static_cast<std::uint8_t>(msg.sequence & 0xFF));
  out.push_back(0);  // spare
  out.insert(out.end(), msg.ies.begin(), msg.ies.end());
  return out;
}

std::optional<GtpcMessage> parse_gtpc(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kHeaderWithTeid) return std::nullopt;
  const std::uint8_t version = bytes[0] >> 5;
  const bool has_teid = (bytes[0] & (1U << 3)) != 0;
  if (version != kVersion2 || !has_teid) return std::nullopt;
  const std::uint16_t length = get_u16(bytes, 2);
  if (length < 8) return std::nullopt;
  if (bytes.size() < static_cast<std::size_t>(4 + length)) {
    return std::nullopt;
  }
  GtpcMessage msg;
  msg.message_type = bytes[1];
  msg.teid = get_u32(bytes, 4);
  msg.sequence = (static_cast<std::uint32_t>(bytes[8]) << 16) |
                 (static_cast<std::uint32_t>(bytes[9]) << 8) |
                 static_cast<std::uint32_t>(bytes[10]);
  msg.ies.assign(bytes.begin() + kHeaderWithTeid,
                 bytes.begin() + 4 + length);
  return msg;
}

std::optional<UliIe> find_uli(std::span<const std::uint8_t> ies) {
  std::size_t at = 0;
  while (at + 4 <= ies.size()) {
    const std::uint8_t type = ies[at];
    const std::uint16_t length = get_u16(ies, at + 1);
    const std::size_t payload_at = at + 4;
    if (payload_at + length > ies.size()) return std::nullopt;  // truncated
    if (type == kIeTypeUli) {
      const auto payload = ies.subspan(payload_at, length);
      if (payload.empty()) return std::nullopt;
      const std::uint8_t flags = payload[0];
      std::size_t cursor = 1;
      UliIe uli;
      if (flags & kUliFlagTai) {
        if (cursor + 5 > payload.size()) return std::nullopt;
        const auto plmn = parse_plmn(payload.subspan(cursor, 3));
        if (!plmn) return std::nullopt;
        Tai tai;
        tai.plmn = *plmn;
        tai.tac = get_u16(payload, cursor + 3);
        uli.tai = tai;
        cursor += 5;
      }
      if (flags & kUliFlagEcgi) {
        if (cursor + 7 > payload.size()) return std::nullopt;
        const auto plmn = parse_plmn(payload.subspan(cursor, 3));
        if (!plmn) return std::nullopt;
        Ecgi ecgi;
        ecgi.plmn = *plmn;
        ecgi.eci = get_u32(payload, cursor + 3) & 0x0FFFFFFF;
        uli.ecgi = ecgi;
        cursor += 7;
      }
      if (!uli.tai && !uli.ecgi) return std::nullopt;
      return uli;
    }
    at = payload_at + length;
  }
  return std::nullopt;
}

}  // namespace icn::probe
