// Wire-level measurement path: turns a structured FlowRecord into the bytes
// a passive probe would really capture — a GTPv2-C Create Session Request
// carrying the ULI on the control plane, and the TLS ClientHello opening the
// user-plane session — and decodes them back into a ServiceSession.
//
// The structured PassiveProbe::observe path and this byte path must agree
// exactly; the integration tests assert it.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "probe/dpi.h"
#include "probe/gtp.h"
#include "probe/gtpc_codec.h"
#include "probe/probe.h"
#include "traffic/flows.h"

namespace icn::probe {

/// The bytes a probe captures for one session, plus the accounting the
/// packet counters provide.
struct WireCapture {
  std::vector<std::uint8_t> gtpc;          ///< Create Session Request bytes.
  std::vector<std::uint8_t> client_hello;  ///< First user-plane TLS record.
  std::int64_t start_hour = 0;
  double down_bytes = 0.0;
  double up_bytes = 0.0;
};

/// Encodes the wire capture of a flow: the flow's ECGI goes into the GTP-C
/// ULI, its SNI into the ClientHello. `plmn` defaults to the French MCC/MNC
/// the study's operator uses.
[[nodiscard]] WireCapture synthesize_wire(const traffic::FlowRecord& flow,
                                          const Plmn& plmn = Plmn{});

/// Decodes a capture back into a geo-referenced, service-classified session
/// using the same decoder/classifier as the structured path. Returns nullopt
/// (with the probe-style accounting left to the caller's counters inside
/// `dpi`) when the GTP-C, ULI, or TLS bytes do not parse or do not resolve.
[[nodiscard]] std::optional<ServiceSession> observe_wire(
    const WireCapture& capture, const UliDecoder& uli, DpiClassifier& dpi);

}  // namespace icn::probe
