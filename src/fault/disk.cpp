#include "fault/disk.h"

#include <algorithm>

#include "util/error.h"
#include "util/rng.h"

namespace icn::fault {
namespace {

// Substream tags for derive_seed(seed, file_id, op-or-offset, tag). Offset
// from the feed-plan tags (plan.cpp) so a shared seed never aliases a feed
// decision onto a disk decision.
enum : std::uint64_t {
  kTagShortWrite = 101,
  kTagWriteError = 102,
  kTagNoSpace = 103,
  kTagFsyncFail = 104,
  kTagCrashFate = 105,
  kTagCrashTear = 106,
};

icn::util::Rng op_rng(std::uint64_t seed, std::uint64_t file_id,
                      std::uint64_t op, std::uint64_t tag) {
  return icn::util::Rng(icn::util::derive_seed(seed, file_id, op, tag));
}

}  // namespace

DiskFaultPlan::DiskFaultPlan(DiskFaultPlanParams params)
    : params_(params) {
  ICN_REQUIRE(params_.crash_block_size >= 8, "crash block size");
  ICN_REQUIRE(params_.enospc_max_run >= 1, "enospc run length");
  ICN_REQUIRE(params_.crash_drop_rate >= 0.0 && params_.crash_tear_rate >= 0.0,
              "crash rates");
}

std::optional<std::uint64_t> DiskFaultPlan::short_write_keep(
    std::uint64_t file_id, std::uint64_t op, std::uint64_t len) const {
  if (len <= 1) return std::nullopt;
  auto rng = op_rng(params_.seed, file_id, op, kTagShortWrite);
  if (!rng.bernoulli(params_.short_write_rate)) return std::nullopt;
  return static_cast<std::uint64_t>(
      rng.uniform_int(1, static_cast<std::int64_t>(len) - 1));
}

bool DiskFaultPlan::write_error(std::uint64_t file_id,
                                std::uint64_t op) const {
  auto rng = op_rng(params_.seed, file_id, op, kTagWriteError);
  return rng.bernoulli(params_.write_error_rate);
}

std::int64_t DiskFaultPlan::enospc_run_starting(std::uint64_t file_id,
                                                std::uint64_t op) const {
  auto rng = op_rng(params_.seed, file_id, op, kTagNoSpace);
  if (!rng.bernoulli(params_.enospc_rate)) return 0;
  return rng.uniform_int(1, params_.enospc_max_run);
}

bool DiskFaultPlan::fsync_fails(std::uint64_t file_id,
                                std::uint64_t op) const {
  auto rng = op_rng(params_.seed, file_id, op, kTagFsyncFail);
  return rng.bernoulli(params_.fsync_fail_rate);
}

DiskFaultPlan::BlockFate DiskFaultPlan::crash_block_fate(
    std::uint64_t file_id, std::uint64_t block_offset) const {
  auto rng = op_rng(params_.seed, file_id, block_offset, kTagCrashFate);
  const double drop = std::min(params_.crash_drop_rate, 1.0);
  const double tear = std::min(params_.crash_tear_rate, 1.0 - drop);
  const double u = rng.uniform();
  if (u < drop) return BlockFate::kDropped;
  if (u < drop + tear) return BlockFate::kTorn;
  return BlockFate::kSurvives;
}

std::uint64_t DiskFaultPlan::crash_tear_keep(std::uint64_t file_id,
                                             std::uint64_t block_offset,
                                             std::uint64_t block_len) const {
  if (block_len == 0) return 0;
  auto rng = op_rng(params_.seed, file_id, block_offset, kTagCrashTear);
  return static_cast<std::uint64_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(block_len) - 1));
}

// ---------------------------------------------------------------------------
// FaultyVfs

FaultyVfs::FaultyVfs(DiskFaultPlan plan, Vfs* inner)
    : plan_(plan), inner_(&icn::store::vfs_or_default(inner)) {}

FaultyVfs::FileState& FaultyVfs::state_for(const std::string& path) {
  auto it = files_.find(path);
  if (it == files_.end()) {
    FileState st;
    st.file_id = next_file_id_++;
    it = files_.emplace(path, st).first;
  }
  return it->second;
}

void FaultyVfs::maybe_crash(const std::string& path, const char* op) {
  if (crashed_) {
    throw SimulatedCrash(path + ": " + op +
                         " on a crashed machine (simulated)");
  }
  if (crash_at_.has_value() && ops_ >= *crash_at_) {
    crashed_ = true;
    throw SimulatedCrash("simulated power cut before op " +
                         std::to_string(ops_) + " (" + op + " " + path + ")");
  }
}

icn::store::VfsFile FaultyVfs::open(const std::string& path, OpenMode mode) {
  icn::store::VfsFile file = inner_->open(path, mode);
  std::lock_guard<std::mutex> lock(mu_);
  const bool fresh = files_.find(path) == files_.end();
  FileState& st = state_for(path);
  if (mode == OpenMode::kCreateTruncate) {
    st.synced_size = 0;
    st.max_size = 0;
  } else if (fresh) {
    // A file that predates the shim (e.g. reopened after recovery) is
    // durable as-is: only bytes written through the shim are at risk.
    try {
      st.synced_size = inner_->size(file);
      st.max_size = st.synced_size;
    } catch (...) {
      inner_->close(file);
      throw;
    }
  }
  return file;
}

std::size_t FaultyVfs::write(icn::store::VfsFile& file,
                             std::span<const std::uint8_t> bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  FileState& st = state_for(file.path);
  maybe_crash(file.path, "write");
  const std::uint64_t op = st.write_ops++;
  ++ops_;
  if (st.enospc_left == 0) {
    st.enospc_left = plan_.enospc_run_starting(st.file_id, op);
  }
  if (st.enospc_left > 0) {
    ledger_.push_back({static_cast<std::size_t>(st.file_id),
                       static_cast<std::int64_t>(op), FaultKind::kNoSpace,
                       st.enospc_left,
                       static_cast<std::int64_t>(bytes.size())});
    --st.enospc_left;
    throw icn::util::IoError(file.path +
                             ": write failed: no space left on device "
                             "(injected)");
  }
  if (plan_.write_error(st.file_id, op)) {
    ledger_.push_back({static_cast<std::size_t>(st.file_id),
                       static_cast<std::int64_t>(op), FaultKind::kWriteError,
                       0, static_cast<std::int64_t>(bytes.size())});
    throw icn::util::IoError(file.path +
                             ": write failed: input/output error (injected)");
  }
  std::span<const std::uint8_t> to_write = bytes;
  if (const auto keep =
          plan_.short_write_keep(st.file_id, op, bytes.size())) {
    to_write = bytes.first(static_cast<std::size_t>(*keep));
    ledger_.push_back({static_cast<std::size_t>(st.file_id),
                       static_cast<std::int64_t>(op), FaultKind::kShortWrite,
                       static_cast<std::int64_t>(*keep),
                       static_cast<std::int64_t>(bytes.size())});
  }
  // Deliver the (possibly shortened) span in full so the count the caller
  // sees is exactly the planned one.
  std::size_t at = 0;
  while (at < to_write.size()) {
    at += inner_->write(file, to_write.subspan(at));
  }
  st.max_size = std::max(st.max_size, inner_->size(file));
  return to_write.size();
}

std::size_t FaultyVfs::pread(icn::store::VfsFile& file,
                             std::span<std::uint8_t> out,
                             std::uint64_t offset) {
  return inner_->pread(file, out, offset);
}

std::size_t FaultyVfs::pwrite(icn::store::VfsFile& file,
                              std::span<const std::uint8_t> bytes,
                              std::uint64_t offset) {
  // In-place overwrites are outside the crash model (see header); they pass
  // through untracked.
  return inner_->pwrite(file, bytes, offset);
}

void FaultyVfs::fsync(icn::store::VfsFile& file) {
  std::lock_guard<std::mutex> lock(mu_);
  FileState& st = state_for(file.path);
  maybe_crash(file.path, "fsync");
  const std::uint64_t op = st.fsync_ops++;
  ++ops_;
  if (plan_.fsync_fails(st.file_id, op)) {
    ledger_.push_back({static_cast<std::size_t>(st.file_id),
                       static_cast<std::int64_t>(op), FaultKind::kFsyncFail,
                       0, 0});
    throw icn::util::IoError(file.path +
                             ": fsync failed: input/output error (injected)");
  }
  inner_->fsync(file);
  st.synced_size = inner_->size(file);
  st.max_size = std::max(st.max_size, st.synced_size);
}

void FaultyVfs::ftruncate(icn::store::VfsFile& file, std::uint64_t size) {
  // Never injected: append rollback must be able to restore the valid
  // prefix even on a failing disk (a real disk's metadata path is far more
  // reliable than its data path, and injecting here would only test the
  // injector).
  inner_->ftruncate(file, size);
  std::lock_guard<std::mutex> lock(mu_);
  FileState& st = state_for(file.path);
  st.max_size = size;
  st.synced_size = std::min(st.synced_size, size);
}

void FaultyVfs::truncate(const std::string& path, std::uint64_t size) {
  inner_->truncate(path, size);
  std::lock_guard<std::mutex> lock(mu_);
  FileState& st = state_for(path);
  st.max_size = size;
  st.synced_size = std::min(st.synced_size, size);
}

void FaultyVfs::rename(const std::string& from, const std::string& to) {
  inner_->rename(from, to);
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = files_.find(from);
  if (it != files_.end()) {
    FileState st = it->second;
    files_.erase(it);
    files_[to] = st;  // Replaces any state of the old `to`.
  }
}

void FaultyVfs::remove(const std::string& path) {
  inner_->remove(path);
  std::lock_guard<std::mutex> lock(mu_);
  files_.erase(path);
}

std::uint64_t FaultyVfs::size(icn::store::VfsFile& file) {
  return inner_->size(file);
}

void FaultyVfs::close(icn::store::VfsFile& file) { inner_->close(file); }

void FaultyVfs::fsync_parent_dir(const std::string& path) {
  inner_->fsync_parent_dir(path);
}

icn::store::Vfs::MappedRegion FaultyVfs::map_readonly(
    const std::string& path) {
  return inner_->map_readonly(path);
}

void FaultyVfs::unmap(MappedRegion region) noexcept {
  inner_->unmap(region);
}

const FaultLedger& FaultyVfs::ledger() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ledger_;
}

std::uint64_t FaultyVfs::op_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ops_;
}

void FaultyVfs::set_crash_at_op(std::uint64_t op) {
  std::lock_guard<std::mutex> lock(mu_);
  crash_at_ = op;
  crashed_ = false;
}

void FaultyVfs::clear_crash_point() {
  std::lock_guard<std::mutex> lock(mu_);
  crash_at_.reset();
  crashed_ = false;
}

bool FaultyVfs::crashed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashed_;
}

std::vector<std::string> FaultyVfs::apply_crash() {
  std::lock_guard<std::mutex> lock(mu_);
  crash_at_.reset();
  crashed_ = false;
  // Iterate in file-id (= first-open) order so the ledger is reproducible
  // across runs whose temp paths differ but whose open order matches.
  std::vector<std::pair<const std::string*, FileState*>> order;
  order.reserve(files_.size());
  for (auto& [path, st] : files_) order.emplace_back(&path, &st);
  std::sort(order.begin(), order.end(), [](const auto& a, const auto& b) {
    return a.second->file_id < b.second->file_id;
  });

  std::vector<std::string> affected;
  const std::uint64_t block = plan_.params().crash_block_size;
  for (auto& [path, st] : order) {
    icn::store::VfsFile file;
    try {
      file = inner_->open(*path, OpenMode::kReadWrite);
    } catch (const icn::util::IoError&) {
      continue;  // Removed or never materialized — nothing at risk.
    }
    try {
      const std::uint64_t cur = inner_->size(file);
      const std::uint64_t synced = std::min(st->synced_size, cur);
      if (cur <= synced) {
        inner_->close(file);
        continue;
      }
      // Judge every block overlapping the unsynced tail [synced, cur).
      std::uint64_t highest = synced;
      std::vector<std::pair<std::uint64_t, std::uint64_t>> zero_ranges;
      for (std::uint64_t b0 = synced / block * block; b0 < cur; b0 += block) {
        const std::uint64_t lo = std::max(b0, synced);
        const std::uint64_t hi = std::min(b0 + block, cur);
        if (lo >= hi) continue;
        switch (plan_.crash_block_fate(st->file_id, b0)) {
          case DiskFaultPlan::BlockFate::kSurvives:
            highest = std::max(highest, hi);
            break;
          case DiskFaultPlan::BlockFate::kTorn: {
            const std::uint64_t keep =
                plan_.crash_tear_keep(st->file_id, b0, hi - lo);
            if (keep > 0) highest = std::max(highest, lo + keep);
            if (keep < hi - lo) zero_ranges.emplace_back(lo + keep, hi);
            ledger_.push_back({static_cast<std::size_t>(st->file_id),
                               static_cast<std::int64_t>(ops_),
                               FaultKind::kCrashTear,
                               static_cast<std::int64_t>(b0),
                               static_cast<std::int64_t>(keep)});
            break;
          }
          case DiskFaultPlan::BlockFate::kDropped:
            zero_ranges.emplace_back(lo, hi);
            ledger_.push_back({static_cast<std::size_t>(st->file_id),
                               static_cast<std::int64_t>(ops_),
                               FaultKind::kCrashDrop,
                               static_cast<std::int64_t>(b0),
                               static_cast<std::int64_t>(hi - lo)});
            break;
        }
      }
      // Interior dropped/torn-away bytes below the highest survivor read
      // back as garbage on real hardware; zeros model that (and guarantee
      // the CRC walk stops at the first damaged section).
      const std::vector<std::uint8_t> zeros(
          static_cast<std::size_t>(block), 0);
      for (const auto& [lo, hi] : zero_ranges) {
        const std::uint64_t end = std::min(hi, highest);
        std::uint64_t at = lo;
        while (at < end) {
          const std::size_t chunk =
              static_cast<std::size_t>(std::min<std::uint64_t>(
                  end - at, zeros.size()));
          at += inner_->pwrite(file, {zeros.data(), chunk}, at);
        }
      }
      inner_->ftruncate(file, highest);
      inner_->fsync(file);
      inner_->close(file);
      ledger_.push_back({static_cast<std::size_t>(st->file_id),
                         static_cast<std::int64_t>(ops_),
                         FaultKind::kPowerCut,
                         static_cast<std::int64_t>(cur - synced),
                         static_cast<std::int64_t>(highest - synced)});
      st->max_size = highest;
      st->synced_size = std::min(st->synced_size, highest);
      affected.push_back(*path);
    } catch (...) {
      try {
        inner_->close(file);
      } catch (...) {
      }
      throw;
    }
  }
  return affected;
}

}  // namespace icn::fault
