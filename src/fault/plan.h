// Seeded, deterministic fault planning for the multi-probe ingest plant.
//
// ERRANT-style realism (PAPERS.md): a measurement plant must be exercised
// under degraded operating conditions, not just the happy path. A FaultPlan
// turns one 64-bit seed into a complete schedule of faults over (probe,
// event-hour) cells — probe dropout windows, stalls, transient pull
// failures, duplicated/reordered/skewed/truncated batches, checkpoint bit
// flips, poisoned probes — with no wall-clock time or global RNG state
// anywhere: every decision is a pure function of
// derive_seed(seed, probe, hour, fault-tag), so two runs with the same seed
// face byte-identical hostility.
//
// Every fault actually injected (by fault::FaultyFeed or
// fault::corrupt_snapshot) is appended to a FaultLedger — the replayable
// audit trail that reproducibility tests compare across runs and that a
// human reads to see exactly what the plant survived.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace icn::fault {

enum class FaultKind : std::uint8_t {
  kDropout,    ///< Probe down for [hour, hour+a): those hours' data never
               ///< exists; the feed stalls a pulls, then resumes after the
               ///< window.
  kTransient,  ///< pull() for this hour throws TransientFeedError a times
               ///< before the batch is delivered.
  kDuplicate,  ///< The batch is redelivered once with the same sequence.
  kReorder,    ///< Batch records permuted across antennas (per-antenna
               ///< relative order preserved, so sums stay bit-identical).
  kSkew,       ///< Batch delivery delayed behind the next a deliveries
               ///< (clock skew between probe and supervisor).
  kTruncate,   ///< First delivery carries only a of the declared b records;
               ///< redelivered intact after the supervisor rejects it.
  kBitFlip,    ///< Checkpoint byte at file offset a XOR'd with mask b after
               ///< the run (silent storage corruption).
  kPoison,     ///< Probe fails persistently from this hour on; only
               ///< quarantine ends the retries.
  kFieldFuzz,  ///< Record a of the batch got field mutation kind b (see
               ///< fault::apply_field_fuzz); the quality layer must repair
               ///< or reject it.
  kSiteOutage, ///< Correlated site power loss: probes in bitmask b are all
               ///< down for [hour, hour+a). ONE event for the whole site
               ///< (logged by the lowest-indexed affected probe).
  kRestart,    ///< Supervisor kill/restart: epoch a ended after b ticks;
               ///< the next epoch resumes from the durable checkpoints.

  // Disk faults (injected by fault::FaultyVfs; see fault/disk.h). For these
  // `probe` carries the Vfs file id (files numbered in first-open order) and
  // `hour` the per-file operation index the fault struck at.
  kShortWrite,  ///< write() delivered only a of the requested b bytes.
  kWriteError,  ///< write() failed with an injected I/O error (EIO model).
  kNoSpace,     ///< write() failed with an injected ENOSPC; a = ops left in
                ///< the full-disk run including this one.
  kFsyncFail,   ///< fsync() failed; nothing since the last successful sync
                ///< may be assumed durable.
  kPowerCut,    ///< Simulated power cut landed on this file: a = unsynced
                ///< bytes at risk, b = bytes that survived.
  kCrashDrop,   ///< Crash model dropped the unsynced block at offset a
                ///< (b bytes zeroed or truncated away).
  kCrashTear,   ///< Crash model tore the unsynced block at offset a, keeping
                ///< only b bytes of it.
};

[[nodiscard]] std::string to_string(FaultKind kind);

/// One injected fault. `a`/`b` are kind-specific (see FaultKind).
struct FaultEvent {
  std::size_t probe = 0;
  std::int64_t hour = 0;
  FaultKind kind{};
  std::int64_t a = 0;
  std::int64_t b = 0;
  bool operator==(const FaultEvent&) const = default;
};

[[nodiscard]] std::string to_string(const FaultEvent& event);

/// Injection-order audit trail; equal-seed runs must produce equal ledgers.
using FaultLedger = std::vector<FaultEvent>;

/// Human-readable, line-per-event dump of a ledger.
[[nodiscard]] std::string to_text(const FaultLedger& ledger);

struct FaultPlanParams {
  std::uint64_t seed = 1;
  std::size_t num_probes = 1;   ///< Requires >= 1.
  std::int64_t num_hours = 0;   ///< Requires > 0.

  /// P[a dropout window starts at a given (probe, hour)].
  double dropout_rate = 0.0;
  std::int64_t dropout_max_hours = 3;  ///< Window length in [1, max].

  /// P[the pull for a given (probe, hour) fails transiently first].
  double transient_rate = 0.0;
  /// Failures per burst in [1, max]. Keep <= the supervisor's max_retries
  /// unless the test wants quarantines.
  std::int64_t transient_max_failures = 2;

  double duplicate_rate = 0.0;
  double reorder_rate = 0.0;

  double skew_rate = 0.0;
  /// Delivery delay in batches, in [1, max]. The supervisor's
  /// allowed_lateness must cover the worst effective delay.
  std::int64_t skew_max_delay = 2;

  double truncate_rate = 0.0;

  /// P[a probe's checkpoint file gets one byte flipped after the run].
  double bitflip_rate = 0.0;

  /// When set, this probe fails persistently from poison_hour on.
  std::optional<std::size_t> poison_probe;
  std::int64_t poison_hour = 0;

  /// P[a batch's records get per-field fuzz at a given (probe, hour)].
  double field_fuzz_rate = 0.0;
  std::int64_t field_fuzz_max_records = 2;  ///< Mutations per batch [1, max].

  /// P[a correlated site outage starts at a given hour]. Outages are global:
  /// one draw per hour takes down a random probe subset over a shared
  /// window. Requires num_probes <= 64 when > 0 (probe sets are bitmasks).
  double outage_rate = 0.0;
  std::int64_t outage_max_hours = 2;    ///< Window length in [1, max].
  std::size_t outage_min_probes = 2;    ///< Smallest affected probe set.

  /// Supervisor kill/restart schedule (consumed by
  /// fault::run_supervised_with_restarts): the study is killed restart_count
  /// times, each epoch granted a tick budget in [min, max] ticks.
  std::size_t restart_count = 0;
  std::int64_t restart_min_ticks = 4;
  std::int64_t restart_max_ticks = 32;
};

/// Checkpoint bit-flip target, resolved against the actual file by
/// fault::corrupt_snapshot (the plan cannot know section offsets).
struct BitFlipSpec {
  double section_frac = 0.0;  ///< Picks the floor(frac * windows)-th window.
  double byte_frac = 0.0;     ///< Picks a byte within that window's payload.
  std::uint8_t mask = 1;      ///< XOR mask (single bit).
};

/// One correlated site outage: every probe in the mask is down over the
/// shared window [hour, hour + len).
struct OutageSpec {
  std::int64_t hour = 0;
  std::int64_t len = 0;
  std::uint64_t probes = 0;  ///< Bitmask of affected probe indices.

  [[nodiscard]] bool affects(std::size_t probe) const {
    return probe < 64 && (probes >> probe & 1) != 0;
  }
  bool operator==(const OutageSpec&) const = default;
};

/// The deterministic fault schedule. Queries are pure and O(1); the whole
/// schedule is precomputed at construction so iteration order can never
/// change an outcome.
class FaultPlan {
 public:
  explicit FaultPlan(FaultPlanParams params);

  [[nodiscard]] const FaultPlanParams& params() const { return params_; }

  /// Length of the dropout window starting exactly at (probe, hour), or 0.
  [[nodiscard]] std::int64_t dropout_starting_at(std::size_t probe,
                                                 std::int64_t hour) const;
  /// True when (probe, hour) lies inside any dropout window.
  [[nodiscard]] bool dropped(std::size_t probe, std::int64_t hour) const;

  /// Transient failures before the batch for (probe, hour) is delivered.
  [[nodiscard]] std::int64_t transient_failures(std::size_t probe,
                                                std::int64_t hour) const;

  [[nodiscard]] bool duplicated(std::size_t probe, std::int64_t hour) const;
  [[nodiscard]] bool reordered(std::size_t probe, std::int64_t hour) const;

  /// Delivery delay in batches for (probe, hour), or 0.
  [[nodiscard]] std::int64_t skew_delay(std::size_t probe,
                                        std::int64_t hour) const;

  /// Fraction of records kept by a truncated first delivery, or nullopt.
  [[nodiscard]] std::optional<double> truncate_keep_frac(
      std::size_t probe, std::int64_t hour) const;

  [[nodiscard]] bool poisoned(std::size_t probe, std::int64_t hour) const;

  /// Checkpoint corruption target for this probe, if planned.
  [[nodiscard]] std::optional<BitFlipSpec> bitflip(std::size_t probe) const;

  /// Seed for the reorder permutation of (probe, hour).
  [[nodiscard]] std::uint64_t reorder_seed(std::size_t probe,
                                           std::int64_t hour) const;

  /// Records to fuzz in the batch for (probe, hour), or 0.
  [[nodiscard]] std::int64_t fuzz_record_count(std::size_t probe,
                                               std::int64_t hour) const;

  /// Seed for the field mutations of (probe, hour) — lets tests replay the
  /// exact damage on a clean copy of the batch.
  [[nodiscard]] std::uint64_t fuzz_seed(std::size_t probe,
                                        std::int64_t hour) const;

  /// All planned correlated outages, in start-hour order.
  [[nodiscard]] const std::vector<OutageSpec>& outages() const {
    return outages_;
  }

  /// The outage covering (probe, hour), or nullptr.
  [[nodiscard]] const OutageSpec* outage_covering(std::size_t probe,
                                                  std::int64_t hour) const;

  /// Tick budget of restart epoch `epoch` (< restart_count): the epoch is
  /// killed once the budget runs out. The final epoch (== restart_count)
  /// runs to completion and has no budget.
  [[nodiscard]] std::int64_t restart_tick_budget(std::size_t epoch) const;

 private:
  [[nodiscard]] std::size_t cell(std::size_t probe, std::int64_t hour) const;

  FaultPlanParams params_;
  // Per-(probe, hour) schedules, row-major by probe.
  std::vector<std::int64_t> dropout_start_len_;  ///< 0 = no window starts.
  std::vector<std::uint8_t> dropped_;
  std::vector<std::int64_t> transient_;
  std::vector<std::uint8_t> duplicate_;
  std::vector<std::uint8_t> reorder_;
  std::vector<std::int64_t> skew_;
  std::vector<double> truncate_frac_;  ///< < 0 = no truncation.
  std::vector<std::optional<BitFlipSpec>> bitflip_;  ///< Per probe.
  std::vector<std::int64_t> fuzz_count_;  ///< Per cell; 0 = no fuzz.
  std::vector<OutageSpec> outages_;       ///< Start-hour order, disjoint.
  std::vector<std::int32_t> outage_idx_;  ///< Per cell; -1 = no outage.
};

}  // namespace icn::fault
