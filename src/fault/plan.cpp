#include "fault/plan.h"

#include <algorithm>
#include <numeric>

#include "util/error.h"
#include "util/rng.h"

namespace icn::fault {
namespace {

// Independent substream tags so the decision for one fault class can never
// perturb another (derive_seed(seed, probe, hour, tag)).
enum : std::uint64_t {
  kTagDropout = 1,
  kTagTransient = 2,
  kTagDuplicate = 3,
  kTagReorder = 4,
  kTagSkew = 5,
  kTagTruncate = 6,
  kTagBitFlip = 7,
  kTagFieldFuzz = 8,
  kTagOutage = 9,
  kTagRestart = 10,
};

icn::util::Rng cell_rng(std::uint64_t seed, std::size_t probe,
                        std::int64_t hour, std::uint64_t tag) {
  return icn::util::Rng(icn::util::derive_seed(
      seed, probe, static_cast<std::uint64_t>(hour), tag));
}

}  // namespace

std::string to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDropout: return "dropout";
    case FaultKind::kTransient: return "transient";
    case FaultKind::kDuplicate: return "duplicate";
    case FaultKind::kReorder: return "reorder";
    case FaultKind::kSkew: return "skew";
    case FaultKind::kTruncate: return "truncate";
    case FaultKind::kBitFlip: return "bitflip";
    case FaultKind::kPoison: return "poison";
    case FaultKind::kFieldFuzz: return "fieldfuzz";
    case FaultKind::kSiteOutage: return "siteoutage";
    case FaultKind::kRestart: return "restart";
    case FaultKind::kShortWrite: return "shortwrite";
    case FaultKind::kWriteError: return "writeerror";
    case FaultKind::kNoSpace: return "enospc";
    case FaultKind::kFsyncFail: return "fsyncfail";
    case FaultKind::kPowerCut: return "powercut";
    case FaultKind::kCrashDrop: return "crashdrop";
    case FaultKind::kCrashTear: return "crashtear";
  }
  return "unknown";
}

std::string to_string(const FaultEvent& event) {
  return "probe=" + std::to_string(event.probe) +
         " hour=" + std::to_string(event.hour) + " " + to_string(event.kind) +
         " a=" + std::to_string(event.a) + " b=" + std::to_string(event.b);
}

std::string to_text(const FaultLedger& ledger) {
  std::string out;
  for (const auto& event : ledger) {
    out += to_string(event);
    out += '\n';
  }
  return out;
}

FaultPlan::FaultPlan(FaultPlanParams params) : params_(std::move(params)) {
  ICN_REQUIRE(params_.num_probes >= 1, "fault plan needs probes");
  ICN_REQUIRE(params_.num_hours > 0, "fault plan needs hours");
  ICN_REQUIRE(params_.dropout_max_hours >= 1, "dropout window length");
  ICN_REQUIRE(params_.transient_max_failures >= 1, "transient burst length");
  ICN_REQUIRE(params_.skew_max_delay >= 1, "skew delay");
  ICN_REQUIRE(params_.field_fuzz_max_records >= 1, "field fuzz batch budget");
  ICN_REQUIRE(params_.outage_max_hours >= 1, "outage window length");
  ICN_REQUIRE(params_.restart_min_ticks >= 1 &&
                  params_.restart_max_ticks >= params_.restart_min_ticks,
              "restart tick budget range");

  const std::size_t cells =
      params_.num_probes * static_cast<std::size_t>(params_.num_hours);
  dropout_start_len_.assign(cells, 0);
  dropped_.assign(cells, 0);
  transient_.assign(cells, 0);
  duplicate_.assign(cells, 0);
  reorder_.assign(cells, 0);
  skew_.assign(cells, 0);
  truncate_frac_.assign(cells, -1.0);
  bitflip_.assign(params_.num_probes, std::nullopt);
  fuzz_count_.assign(cells, 0);
  outage_idx_.assign(cells, -1);

  // Correlated site outages are scheduled first, from one global per-hour
  // substream, so every probe in the mask agrees on the shared window.
  // Windows are laid out sequentially and never overlap each other.
  if (params_.outage_rate > 0.0) {
    ICN_REQUIRE(params_.num_probes <= 64, "outage probe sets are 64-bit masks");
    ICN_REQUIRE(params_.outage_min_probes >= 1 &&
                    params_.outage_min_probes <= params_.num_probes,
                "outage probe set size");
    std::int64_t h = 0;
    while (h < params_.num_hours) {
      auto rng = cell_rng(params_.seed, 0, h, kTagOutage);
      if (rng.uniform() < params_.outage_rate) {
        const std::int64_t len = std::min<std::int64_t>(
            1 + static_cast<std::int64_t>(rng.uniform_index(
                    static_cast<std::uint64_t>(params_.outage_max_hours))),
            params_.num_hours - h);
        const std::size_t extra =
            params_.num_probes - params_.outage_min_probes;
        const std::size_t size =
            params_.outage_min_probes +
            static_cast<std::size_t>(rng.uniform_index(extra + 1));
        // Partial Fisher-Yates picks `size` distinct probes for the mask.
        std::vector<std::size_t> pool(params_.num_probes);
        std::iota(pool.begin(), pool.end(), std::size_t{0});
        std::uint64_t mask = 0;
        for (std::size_t i = 0; i < size; ++i) {
          const std::size_t j =
              i + static_cast<std::size_t>(rng.uniform_index(pool.size() - i));
          std::swap(pool[i], pool[j]);
          mask |= std::uint64_t{1} << pool[i];
        }
        const auto idx = static_cast<std::int32_t>(outages_.size());
        outages_.push_back({h, len, mask});
        for (std::size_t p = 0; p < params_.num_probes; ++p) {
          if ((mask >> p & 1) == 0) continue;
          for (std::int64_t d = 0; d < len; ++d) {
            outage_idx_[cell(p, h + d)] = idx;
          }
        }
        h += len;
      } else {
        ++h;
      }
    }
  }

  for (std::size_t p = 0; p < params_.num_probes; ++p) {
    // Dropout windows are laid out sequentially per probe so they never
    // overlap, and are clamped so they never run into an outage window —
    // the feed's cursor must arrive exactly at each outage start. Every
    // other class is an independent per-cell draw.
    std::int64_t h = 0;
    while (h < params_.num_hours) {
      if (outage_idx_[cell(p, h)] >= 0) {  // site is down; no probe fault
        ++h;
        continue;
      }
      auto rng = cell_rng(params_.seed, p, h, kTagDropout);
      if (rng.uniform() < params_.dropout_rate) {
        std::int64_t len = std::min<std::int64_t>(
            1 + static_cast<std::int64_t>(rng.uniform_index(
                    static_cast<std::uint64_t>(params_.dropout_max_hours))),
            params_.num_hours - h);
        for (std::int64_t d = 1; d < len; ++d) {
          if (outage_idx_[cell(p, h + d)] >= 0) {
            len = d;
            break;
          }
        }
        dropout_start_len_[cell(p, h)] = len;
        for (std::int64_t d = 0; d < len; ++d) dropped_[cell(p, h + d)] = 1;
        h += len;
      } else {
        ++h;
      }
    }
    for (h = 0; h < params_.num_hours; ++h) {
      // Dropped / outage hours have no batch to fault.
      if (dropped_[cell(p, h)] != 0 || outage_idx_[cell(p, h)] >= 0) continue;
      {
        auto rng = cell_rng(params_.seed, p, h, kTagTransient);
        if (rng.uniform() < params_.transient_rate) {
          transient_[cell(p, h)] =
              1 + static_cast<std::int64_t>(rng.uniform_index(
                      static_cast<std::uint64_t>(
                          params_.transient_max_failures)));
        }
      }
      {
        auto rng = cell_rng(params_.seed, p, h, kTagDuplicate);
        duplicate_[cell(p, h)] = rng.uniform() < params_.duplicate_rate;
      }
      {
        auto rng = cell_rng(params_.seed, p, h, kTagReorder);
        reorder_[cell(p, h)] = rng.uniform() < params_.reorder_rate;
      }
      {
        auto rng = cell_rng(params_.seed, p, h, kTagSkew);
        if (rng.uniform() < params_.skew_rate) {
          skew_[cell(p, h)] =
              1 + static_cast<std::int64_t>(rng.uniform_index(
                      static_cast<std::uint64_t>(params_.skew_max_delay)));
        }
      }
      {
        auto rng = cell_rng(params_.seed, p, h, kTagTruncate);
        if (rng.uniform() < params_.truncate_rate) {
          truncate_frac_[cell(p, h)] = rng.uniform(0.0, 0.95);
        }
      }
      {
        auto rng = cell_rng(params_.seed, p, h, kTagFieldFuzz);
        if (rng.uniform() < params_.field_fuzz_rate) {
          fuzz_count_[cell(p, h)] =
              1 + static_cast<std::int64_t>(rng.uniform_index(
                      static_cast<std::uint64_t>(
                          params_.field_fuzz_max_records)));
        }
      }
    }
    {
      auto rng = cell_rng(params_.seed, p, 0, kTagBitFlip);
      if (rng.uniform() < params_.bitflip_rate) {
        BitFlipSpec spec;
        spec.section_frac = rng.uniform();
        spec.byte_frac = rng.uniform();
        spec.mask = static_cast<std::uint8_t>(1u << rng.uniform_index(8));
        bitflip_[p] = spec;
      }
    }
  }
}

std::size_t FaultPlan::cell(std::size_t probe, std::int64_t hour) const {
  ICN_REQUIRE(probe < params_.num_probes, "fault plan probe index");
  ICN_REQUIRE(hour >= 0 && hour < params_.num_hours, "fault plan hour index");
  return probe * static_cast<std::size_t>(params_.num_hours) +
         static_cast<std::size_t>(hour);
}

std::int64_t FaultPlan::dropout_starting_at(std::size_t probe,
                                            std::int64_t hour) const {
  return dropout_start_len_[cell(probe, hour)];
}

bool FaultPlan::dropped(std::size_t probe, std::int64_t hour) const {
  return dropped_[cell(probe, hour)] != 0;
}

std::int64_t FaultPlan::transient_failures(std::size_t probe,
                                           std::int64_t hour) const {
  return transient_[cell(probe, hour)];
}

bool FaultPlan::duplicated(std::size_t probe, std::int64_t hour) const {
  return duplicate_[cell(probe, hour)] != 0;
}

bool FaultPlan::reordered(std::size_t probe, std::int64_t hour) const {
  return reorder_[cell(probe, hour)] != 0;
}

std::int64_t FaultPlan::skew_delay(std::size_t probe,
                                   std::int64_t hour) const {
  return skew_[cell(probe, hour)];
}

std::optional<double> FaultPlan::truncate_keep_frac(std::size_t probe,
                                                    std::int64_t hour) const {
  const double frac = truncate_frac_[cell(probe, hour)];
  if (frac < 0.0) return std::nullopt;
  return frac;
}

bool FaultPlan::poisoned(std::size_t probe, std::int64_t hour) const {
  return params_.poison_probe && *params_.poison_probe == probe &&
         hour >= params_.poison_hour;
}

std::optional<BitFlipSpec> FaultPlan::bitflip(std::size_t probe) const {
  ICN_REQUIRE(probe < params_.num_probes, "fault plan probe index");
  return bitflip_[probe];
}

std::uint64_t FaultPlan::reorder_seed(std::size_t probe,
                                      std::int64_t hour) const {
  return icn::util::derive_seed(params_.seed, probe,
                                static_cast<std::uint64_t>(hour),
                                kTagReorder + 100);
}

std::int64_t FaultPlan::fuzz_record_count(std::size_t probe,
                                          std::int64_t hour) const {
  return fuzz_count_[cell(probe, hour)];
}

std::uint64_t FaultPlan::fuzz_seed(std::size_t probe,
                                   std::int64_t hour) const {
  return icn::util::derive_seed(params_.seed, probe,
                                static_cast<std::uint64_t>(hour),
                                kTagFieldFuzz + 100);
}

const OutageSpec* FaultPlan::outage_covering(std::size_t probe,
                                             std::int64_t hour) const {
  const std::int32_t idx = outage_idx_[cell(probe, hour)];
  if (idx < 0) return nullptr;
  return &outages_[static_cast<std::size_t>(idx)];
}

std::int64_t FaultPlan::restart_tick_budget(std::size_t epoch) const {
  ICN_REQUIRE(epoch < params_.restart_count, "restart epoch index");
  auto rng = cell_rng(params_.seed, epoch, 0, kTagRestart);
  const auto span = static_cast<std::uint64_t>(params_.restart_max_ticks -
                                               params_.restart_min_ticks + 1);
  return params_.restart_min_ticks +
         static_cast<std::int64_t>(rng.uniform_index(span));
}

}  // namespace icn::fault
