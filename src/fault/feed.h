// FaultyFeed: wraps a healthy hourly batch script in the full fault
// taxonomy of a FaultPlan, logging every injected fault to the shared
// ledger. The supervisor cannot tell it from a real misbehaving probe.
//
// Fault precedence at one script position (hour h):
//   poison  -> every pull throws from h on; only quarantine ends it.
//   outage  -> correlated site power loss: every probe in the planned mask
//              stalls over the shared window exactly like a dropout, but
//              the ledger gets ONE kSiteOutage event for the whole site
//              (logged by the lowest-indexed affected probe).
//   dropout -> the window's batches never existed: the feed stalls one pull
//              per dropped hour (modelling the dead probe), then resumes
//              after the window.
//   transient -> the next `n` pulls throw before h's batch is delivered.
//   fieldfuzz -> individual records of h's batch get field-level damage
//              (see apply_field_fuzz); redeliveries carry the same bits.
//   reorder -> records permuted across antennas (per-antenna order kept).
//   skew    -> the (possibly reordered) batch is held and delivered only
//              after the next `d` deliveries of this feed.
//   truncate -> first delivery carries a prefix of the records with the
//              original declared count; the intact batch follows once the
//              supervisor rejects the corrupt one.
//   duplicate -> the batch is redelivered once (same sequence) right after
//              its accepted delivery.
//
// Only dropout and poison destroy data; every other class must be absorbed
// by supervision (retry, dedup, re-pull, lateness) without changing one bit
// of the merged tensors — which is exactly what the chaos suite asserts.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "fault/plan.h"
#include "stream/feed.h"

namespace icn::fault {

class FaultyFeed final : public stream::BatchSource {
 public:
  /// `script` is the healthy hourly delivery (see stream::hourly_script):
  /// batch i covers hour i with sequence i. `plan` and `ledger` must
  /// outlive the feed; injected faults are appended to `ledger` in
  /// injection order.
  FaultyFeed(std::size_t probe, std::vector<stream::FeedBatch> script,
             const FaultPlan* plan, FaultLedger* ledger);

  stream::PullResult pull() override;

 private:
  [[nodiscard]] stream::PullResult deliver(stream::FeedBatch batch);

  std::size_t probe_ = 0;
  std::vector<stream::FeedBatch> script_;
  const FaultPlan* plan_ = nullptr;
  FaultLedger* ledger_ = nullptr;

  std::size_t cursor_ = 0;            ///< Next script index to process.
  std::int64_t stall_remaining_ = 0;  ///< Stalled pulls left (dropout).
  std::int64_t transient_remaining_ = 0;  ///< Throwing pulls left.
  std::size_t transient_burned_ = SIZE_MAX;  ///< Cursor whose burst ran.
  std::size_t truncate_burned_ = SIZE_MAX;   ///< Cursor already truncated.
  std::size_t reorder_burned_ = SIZE_MAX;    ///< Cursor already reordered.
  std::size_t fuzz_burned_ = SIZE_MAX;       ///< Cursor already fuzzed.
  bool poison_logged_ = false;
  std::optional<stream::FeedBatch> dup_pending_;
  struct Held {
    std::size_t due_after_deliveries = 0;
    stream::FeedBatch batch;
  };
  std::vector<Held> held_;       ///< Skewed batches, FIFO.
  std::size_t deliveries_ = 0;   ///< Batches returned so far.
};

/// Permutes `records` across antennas with a deterministic shuffle seeded by
/// `seed`, preserving the relative order of records sharing an antenna id —
/// the invariant that keeps every (antenna, service, hour) sum bit-identical.
void reorder_preserving_antenna_order(
    std::vector<probe::ServiceSession>& records, std::uint64_t seed);

/// Applies the plan's field-level damage for (probe, hour) to `records` in
/// place: plan.fuzz_record_count(probe, hour) mutations, each picking one
/// record and one mutation kind from the plan's fuzz_seed substream:
///   0 = antenna id high-bit flip (bits 16..31; always outside the tracked
///       roster, so a fatal kUnknownAntenna for the quality layer),
///   1 = service id pushed out of the alphabet (fatal),
///   2 = event hour skewed by +/-1..3 (repairable back to the batch hour
///       while the result stays inside the study),
///   3 = volume sign flip on down or up bytes (repairable: negation is its
///       own exact inverse),
///   4 = NaN volume (fatal).
/// Repairs of the repairable kinds restore the exact original bits. Each
/// mutation appends a kFieldFuzz event {a = record index, b = kind} to
/// `ledger` (pass nullptr to replay damage without logging). Deterministic:
/// equal (plan, probe, hour, records) produce equal damage, so tests can
/// replay the mutations on a clean copy of the batch.
void apply_field_fuzz(std::vector<probe::ServiceSession>& records,
                      std::size_t probe, std::int64_t hour,
                      const FaultPlan& plan, FaultLedger* ledger);

}  // namespace icn::fault
