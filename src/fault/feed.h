// FaultyFeed: wraps a healthy hourly batch script in the full fault
// taxonomy of a FaultPlan, logging every injected fault to the shared
// ledger. The supervisor cannot tell it from a real misbehaving probe.
//
// Fault precedence at one script position (hour h):
//   poison  -> every pull throws from h on; only quarantine ends it.
//   dropout -> the window's batches never existed: the feed stalls one pull
//              per dropped hour (modelling the dead probe), then resumes
//              after the window.
//   transient -> the next `n` pulls throw before h's batch is delivered.
//   reorder -> records permuted across antennas (per-antenna order kept).
//   skew    -> the (possibly reordered) batch is held and delivered only
//              after the next `d` deliveries of this feed.
//   truncate -> first delivery carries a prefix of the records with the
//              original declared count; the intact batch follows once the
//              supervisor rejects the corrupt one.
//   duplicate -> the batch is redelivered once (same sequence) right after
//              its accepted delivery.
//
// Only dropout and poison destroy data; every other class must be absorbed
// by supervision (retry, dedup, re-pull, lateness) without changing one bit
// of the merged tensors — which is exactly what the chaos suite asserts.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "fault/plan.h"
#include "stream/feed.h"

namespace icn::fault {

class FaultyFeed final : public stream::BatchSource {
 public:
  /// `script` is the healthy hourly delivery (see stream::hourly_script):
  /// batch i covers hour i with sequence i. `plan` and `ledger` must
  /// outlive the feed; injected faults are appended to `ledger` in
  /// injection order.
  FaultyFeed(std::size_t probe, std::vector<stream::FeedBatch> script,
             const FaultPlan* plan, FaultLedger* ledger);

  stream::PullResult pull() override;

 private:
  [[nodiscard]] stream::PullResult deliver(stream::FeedBatch batch);

  std::size_t probe_ = 0;
  std::vector<stream::FeedBatch> script_;
  const FaultPlan* plan_ = nullptr;
  FaultLedger* ledger_ = nullptr;

  std::size_t cursor_ = 0;            ///< Next script index to process.
  std::int64_t stall_remaining_ = 0;  ///< Stalled pulls left (dropout).
  std::int64_t transient_remaining_ = 0;  ///< Throwing pulls left.
  std::size_t transient_burned_ = SIZE_MAX;  ///< Cursor whose burst ran.
  std::size_t truncate_burned_ = SIZE_MAX;   ///< Cursor already truncated.
  std::size_t reorder_burned_ = SIZE_MAX;    ///< Cursor already reordered.
  bool poison_logged_ = false;
  std::optional<stream::FeedBatch> dup_pending_;
  struct Held {
    std::size_t due_after_deliveries = 0;
    stream::FeedBatch batch;
  };
  std::vector<Held> held_;       ///< Skewed batches, FIFO.
  std::size_t deliveries_ = 0;   ///< Batches returned so far.
};

/// Permutes `records` across antennas with a deterministic shuffle seeded by
/// `seed`, preserving the relative order of records sharing an antenna id —
/// the invariant that keeps every (antenna, service, hour) sum bit-identical.
void reorder_preserving_antenna_order(
    std::vector<probe::ServiceSession>& records, std::uint64_t seed);

}  // namespace icn::fault
