// Seeded disk-fault injection under the store's Vfs seam.
//
// The FaultPlan family (plan.h) makes feeds hostile; DiskFaultPlan makes the
// *disk* hostile. One 64-bit seed derives a deterministic per-(file,
// op-index) schedule of short writes, transient write errors (EIO), full-disk
// runs (ENOSPC), and fsync failures, plus a buffer-cache crash model: at a
// simulated power cut every block written since the last successful fsync
// either survives, is dropped, or is torn, with the fate keyed purely by
// (seed, file, block offset) so two runs with equal seeds lose exactly the
// same bytes. FaultyVfs applies the plan as a shim over any inner Vfs
// (PosixVfs by default) and appends every injected event to a FaultLedger —
// equal seeds reproduce the ledger verbatim.
//
// Crash-point enumeration (ALICE-style; see fault/crashpoint.h) drives the
// shim's global operation counter: every write/fsync boundary of a workload
// is a crash point, and set_crash_at_op() makes the shim throw SimulatedCrash
// when the workload reaches it. apply_crash() then rewrites the affected
// files per the buffer-cache model, after which recovery must converge.
//
// Scope: the model covers appended data (bytes past the last fsync'd size).
// In-place overwrites below the synced size are treated as durable
// immediately — no store writer overwrites sealed bytes, so the simplification
// costs no coverage (fault::corrupt_snapshot runs post-crash by design).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/plan.h"
#include "store/vfs.h"

namespace icn::fault {

struct DiskFaultPlanParams {
  std::uint64_t seed = 1;

  /// P[a write() delivers only part of its span]. Short writes are not
  /// errors — callers loop — but they multiply the crash points a torn
  /// append can land on.
  double short_write_rate = 0.0;

  /// P[a write() fails with a transient I/O error (EIO model)].
  double write_error_rate = 0.0;

  /// P[a full-disk run starts at a given write op]. Every write in the run
  /// fails with the ENOSPC model; the run spans [1, enospc_max_run] ops.
  double enospc_rate = 0.0;
  std::int64_t enospc_max_run = 3;

  /// P[an fsync() fails]. Per the durability contract nothing since the
  /// last successful barrier may then be assumed durable.
  double fsync_fail_rate = 0.0;

  /// Buffer-cache crash model granularity: unsynced bytes are judged in
  /// blocks of this size aligned to file offsets. Requires >= 8 so a torn
  /// block can still carry whole words.
  std::uint64_t crash_block_size = 512;

  /// Fate distribution of an unsynced block at a power cut. Whatever
  /// probability mass is left over survives intact. Clamped to sum <= 1.
  double crash_drop_rate = 0.4;
  double crash_tear_rate = 0.3;
};

/// Pure-function fault schedule over (file id, per-file op index). O(1)
/// queries, no state: determinism is independent of thread interleaving as
/// long as per-file op order is deterministic.
class DiskFaultPlan {
 public:
  DiskFaultPlan() = default;
  explicit DiskFaultPlan(DiskFaultPlanParams params);

  [[nodiscard]] const DiskFaultPlanParams& params() const { return params_; }

  /// Bytes a short write keeps out of `len` (>= 1, < len), or nullopt.
  [[nodiscard]] std::optional<std::uint64_t> short_write_keep(
      std::uint64_t file_id, std::uint64_t op, std::uint64_t len) const;

  /// True when write op `op` on `file_id` fails with the EIO model.
  [[nodiscard]] bool write_error(std::uint64_t file_id,
                                 std::uint64_t op) const;

  /// Length of the ENOSPC run starting exactly at this op, or 0.
  [[nodiscard]] std::int64_t enospc_run_starting(std::uint64_t file_id,
                                                 std::uint64_t op) const;

  /// True when fsync op `op` on `file_id` fails.
  [[nodiscard]] bool fsync_fails(std::uint64_t file_id,
                                 std::uint64_t op) const;

  enum class BlockFate : std::uint8_t { kSurvives, kDropped, kTorn };

  /// Fate of the unsynced block at `block_offset` (aligned) of `file_id`.
  [[nodiscard]] BlockFate crash_block_fate(std::uint64_t file_id,
                                           std::uint64_t block_offset) const;

  /// Bytes a torn block keeps out of `block_len` (in [0, block_len)).
  [[nodiscard]] std::uint64_t crash_tear_keep(std::uint64_t file_id,
                                              std::uint64_t block_offset,
                                              std::uint64_t block_len) const;

 private:
  DiskFaultPlanParams params_;
};

/// Thrown by FaultyVfs when the workload reaches the configured crash point.
/// Deliberately NOT an icn::util::IoError: graceful-degradation paths catch
/// IoError and retry, but a power cut must stop the workload cold — only the
/// crash-point harness catches this.
class SimulatedCrash : public std::runtime_error {
 public:
  explicit SimulatedCrash(const std::string& what_arg)
      : std::runtime_error(what_arg) {}
};

/// Fault-injecting Vfs shim. Forwards to the inner Vfs (posix_vfs() when
/// nullptr) and injects per the plan on write/fsync; all other operations
/// pass through untouched so recovery code sees the real post-crash file.
/// Thread-safe like the Vfs contract requires; injected IoErrors carry the
/// file path and op so tests can assert the typed error names its victim.
class FaultyVfs : public icn::store::Vfs {
 public:
  explicit FaultyVfs(DiskFaultPlan plan, Vfs* inner = nullptr);

  [[nodiscard]] icn::store::VfsFile open(const std::string& path,
                                         OpenMode mode) override;
  std::size_t write(icn::store::VfsFile& file,
                    std::span<const std::uint8_t> bytes) override;
  std::size_t pread(icn::store::VfsFile& file, std::span<std::uint8_t> out,
                    std::uint64_t offset) override;
  std::size_t pwrite(icn::store::VfsFile& file,
                     std::span<const std::uint8_t> bytes,
                     std::uint64_t offset) override;
  void fsync(icn::store::VfsFile& file) override;
  void ftruncate(icn::store::VfsFile& file, std::uint64_t size) override;
  void truncate(const std::string& path, std::uint64_t size) override;
  void rename(const std::string& from, const std::string& to) override;
  void remove(const std::string& path) override;
  [[nodiscard]] std::uint64_t size(icn::store::VfsFile& file) override;
  void close(icn::store::VfsFile& file) override;
  void fsync_parent_dir(const std::string& path) override;
  [[nodiscard]] MappedRegion map_readonly(const std::string& path) override;
  void unmap(MappedRegion region) noexcept override;

  [[nodiscard]] const DiskFaultPlan& plan() const { return plan_; }

  /// Injection-order audit trail of every fault this shim has applied.
  [[nodiscard]] const FaultLedger& ledger() const;

  /// Global count of completed write/fsync operations — the crash-point
  /// space a systematic sweep enumerates.
  [[nodiscard]] std::uint64_t op_count() const;

  /// Arms the shim: the op_count()-th subsequent write/fsync (0-based from
  /// now... strictly: when the global counter reaches `op`) throws
  /// SimulatedCrash *before* executing, i.e. the crash lands on the boundary
  /// just before that operation takes effect.
  void set_crash_at_op(std::uint64_t op);
  void clear_crash_point();

  /// True once a SimulatedCrash has been thrown (further write/fsync also
  /// throw until apply_crash()/clear are called — a dead machine stays dead).
  [[nodiscard]] bool crashed() const;

  /// Applies the buffer-cache loss model to every tracked file with unsynced
  /// bytes: each unsynced block survives, is dropped, or is torn per the
  /// plan; the file is truncated to its highest surviving byte and dropped
  /// interior blocks are zero-filled. Disarms the crash point so recovery
  /// runs fault-free. Returns the affected paths.
  std::vector<std::string> apply_crash();

 private:
  struct FileState {
    std::uint64_t file_id = 0;
    std::uint64_t write_ops = 0;  ///< Per-file write op counter.
    std::uint64_t fsync_ops = 0;  ///< Per-file fsync op counter.
    std::uint64_t synced_size = 0;  ///< Durable size (last good fsync).
    std::uint64_t max_size = 0;     ///< High-water mark of written bytes.
    std::int64_t enospc_left = 0;   ///< Writes remaining in an ENOSPC run.
  };

  FileState& state_for(const std::string& path)
      /* requires mu_ held */;
  void maybe_crash(const std::string& path, const char* op)
      /* requires mu_ held; throws SimulatedCrash */;

  DiskFaultPlan plan_;
  Vfs* inner_;
  mutable std::mutex mu_;
  std::map<std::string, FileState> files_;  ///< Keyed by path, stable ids.
  FaultLedger ledger_;
  std::uint64_t next_file_id_ = 0;
  std::uint64_t ops_ = 0;
  std::optional<std::uint64_t> crash_at_;
  bool crashed_ = false;
};

}  // namespace icn::fault
