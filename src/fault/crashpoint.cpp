#include "fault/crashpoint.h"

#include <algorithm>
#include <cstddef>
#include <utility>

#include "store/vfs.h"
#include "util/error.h"

namespace icn::fault {

namespace {

using icn::store::Vfs;
using icn::store::VfsFile;

/// Deletes every sweep artifact under `prefix`, ignoring absent files.
void remove_artifacts(Vfs& vfs, const CrashSweep& sweep,
                      const std::string& prefix) {
  for (const auto& name : sweep.artifacts) {
    try {
      vfs.remove(prefix + name);
    } catch (const icn::util::IoError&) {
    }
    // Atomic publishers stage at "<path>.tmp"; a crash can strand one.
    try {
      vfs.remove(prefix + name + ".tmp");
    } catch (const icn::util::IoError&) {
    }
  }
}

/// Compares the artifacts under `prefix` against the captured baselines.
/// Returns true on bit-exact convergence; otherwise fills `detail` with the
/// first divergence.
bool artifacts_converged(Vfs& vfs, const CrashSweep& sweep,
                         const std::string& prefix,
                         const std::vector<std::vector<std::uint8_t>>& baseline,
                         std::string* detail) {
  for (std::size_t i = 0; i < sweep.artifacts.size(); ++i) {
    const std::string path = prefix + sweep.artifacts[i];
    std::vector<std::uint8_t> got;
    if (!read_file_bytes(vfs, path, got)) {
      *detail = sweep.artifacts[i] + ": missing after recovery";
      return false;
    }
    if (got.size() != baseline[i].size()) {
      *detail = sweep.artifacts[i] + ": size " + std::to_string(got.size()) +
                " != baseline " + std::to_string(baseline[i].size());
      return false;
    }
    if (got != baseline[i]) {
      const auto mismatch =
          std::mismatch(got.begin(), got.end(), baseline[i].begin());
      *detail = sweep.artifacts[i] + ": byte diverges at offset " +
                std::to_string(mismatch.first - got.begin());
      return false;
    }
  }
  return true;
}

}  // namespace

bool read_file_bytes(Vfs& vfs, const std::string& path,
                     std::vector<std::uint8_t>& out) {
  out.clear();
  VfsFile file;
  try {
    file = vfs.open(path, Vfs::OpenMode::kReadOnly);
  } catch (const icn::util::IoError&) {
    return false;
  }
  try {
    out.resize(vfs.size(file));
    std::size_t at = 0;
    while (at < out.size()) {
      const std::size_t n =
          vfs.pread(file, {out.data() + at, out.size() - at}, at);
      if (n == 0) {
        throw icn::util::IoError(path + ": file shrank mid-read");
      }
      at += n;
    }
  } catch (...) {
    try {
      vfs.close(file);
    } catch (...) {
    }
    throw;
  }
  vfs.close(file);
  return true;
}

bool CrashSweepReport::all_converged() const {
  return std::all_of(outcomes.begin(), outcomes.end(),
                     [](const CrashPointOutcome& o) { return o.converged; });
}

std::vector<std::uint64_t> CrashSweepReport::diverged() const {
  std::vector<std::uint64_t> ops;
  for (const auto& o : outcomes) {
    if (!o.converged) ops.push_back(o.op);
  }
  return ops;
}

CrashSweepReport run_crash_sweep(const CrashSweep& sweep,
                                 const std::string& base_prefix) {
  if (!sweep.workload || !sweep.recover || sweep.artifacts.empty()) {
    throw icn::util::IoError(
        "run_crash_sweep: workload, recover, and artifacts are all required");
  }
  Vfs& posix = icn::store::posix_vfs();

  // Clean run: capture the converged artifact bytes the sweep asserts
  // against. Runs at its own prefix so crash iterations can't scribble on it.
  const std::string clean_prefix = base_prefix + ".base";
  remove_artifacts(posix, sweep, clean_prefix);
  sweep.workload(posix, clean_prefix);
  std::vector<std::vector<std::uint8_t>> baseline(sweep.artifacts.size());
  for (std::size_t i = 0; i < sweep.artifacts.size(); ++i) {
    if (!read_file_bytes(posix, clean_prefix + sweep.artifacts[i],
                         baseline[i])) {
      throw icn::util::IoError("run_crash_sweep: clean run did not produce " +
                               sweep.artifacts[i]);
    }
  }

  // Count pass: same workload under a zero-rate FaultyVfs so every
  // write/fsync bumps the global counter; its final value is the crash-point
  // space to enumerate.
  CrashSweepReport report;
  {
    DiskFaultPlanParams quiet;
    quiet.seed = sweep.crash_model.seed;
    quiet.crash_block_size = sweep.crash_model.crash_block_size;
    FaultyVfs counter{DiskFaultPlan{quiet}};
    const std::string count_prefix = base_prefix + ".count";
    remove_artifacts(posix, sweep, count_prefix);
    sweep.workload(counter, count_prefix);
    report.total_ops = counter.op_count();
    remove_artifacts(posix, sweep, count_prefix);
  }

  // Enumerate: crash just before op k for every k, apply the loss model,
  // recover fault-free, compare bytes.
  DiskFaultPlanParams crash_only;
  crash_only.seed = sweep.crash_model.seed;
  crash_only.crash_block_size = sweep.crash_model.crash_block_size;
  crash_only.crash_drop_rate = sweep.crash_model.crash_drop_rate;
  crash_only.crash_tear_rate = sweep.crash_model.crash_tear_rate;
  for (std::uint64_t k = 0; k < report.total_ops; ++k) {
    CrashPointOutcome outcome;
    outcome.op = k;
    remove_artifacts(posix, sweep, base_prefix);
    FaultyVfs faulty{DiskFaultPlan{crash_only}};
    faulty.set_crash_at_op(k);
    try {
      sweep.workload(faulty, base_prefix);
    } catch (const SimulatedCrash&) {
      outcome.crashed = true;
    }
    if (outcome.crashed) {
      faulty.apply_crash();
      sweep.recover(posix, base_prefix);
    }
    // A crash point past the workload's ops (shouldn't happen inside the
    // enumerated range) still goes through the comparison: the clean-run
    // artifacts must match regardless.
    outcome.converged = artifacts_converged(posix, sweep, base_prefix,
                                            baseline, &outcome.detail);
    report.outcomes.push_back(std::move(outcome));
  }
  remove_artifacts(posix, sweep, base_prefix);
  return report;
}

}  // namespace icn::fault
