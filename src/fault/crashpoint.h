// ALICE-style systematic crash-point enumeration over the durability layer.
//
// Sampled chaos (a random kill here, a random bit flip there) can miss the
// one write ordering that loses data. This harness instead *enumerates* every
// write/fsync boundary of a workload as a crash point: it first runs the
// workload clean to capture the converged artifact bytes and count the
// operations, then for each operation index k re-runs the workload under a
// FaultyVfs armed to throw SimulatedCrash just before op k, applies the
// seeded buffer-cache loss model (unsynced blocks dropped or torn), runs the
// caller's recovery procedure, and compares every artifact byte-for-byte
// with the clean run. A durability bug — a missing fsync, a non-atomic
// publish, a recovery path that trusts a torn tail — shows up as a diverged
// crash point naming the op it hides behind.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fault/disk.h"

namespace icn::fault {

/// A crash-sweep workload. Both callbacks receive a path prefix; every
/// artifact they create must live at `prefix + name` for a name listed in
/// `artifacts`, and every byte they persist must flow through the given Vfs
/// (that is the instrumented boundary — I/O around it is invisible to the
/// sweep).
struct CrashSweep {
  /// Runs the full workload (e.g. checkpointed multi-probe ingest + merge +
  /// publish) against `vfs` with artifacts under `prefix`. Must be
  /// deterministic: two clean runs produce identical artifact bytes.
  std::function<void(icn::store::Vfs& vfs, const std::string& prefix)>
      workload;

  /// Crash recovery: brings the artifacts under `prefix` back to
  /// convergence (e.g. recover_checkpoint + FeedSupervisor::resume + run +
  /// re-publish). Runs fault-free.
  std::function<void(icn::store::Vfs& vfs, const std::string& prefix)>
      recover;

  /// Artifact names (appended to the prefix) whose bytes must converge.
  std::vector<std::string> artifacts;

  /// Crash model (block size, drop/tear rates) applied at each crash point.
  /// The op-fault rates (short writes etc.) are ignored here: the sweep
  /// isolates the crash dimension so a divergence is attributable.
  DiskFaultPlanParams crash_model;
};

/// Outcome of one enumerated crash point.
struct CrashPointOutcome {
  std::uint64_t op = 0;     ///< Global write/fsync index the crash preceded.
  bool crashed = false;     ///< Workload actually reached the crash point.
  bool converged = false;   ///< All artifacts bit-identical to the clean run.
  std::string detail;       ///< First divergence ("<artifact>: ...") if any.
};

struct CrashSweepReport {
  std::uint64_t total_ops = 0;  ///< Crash points enumerated.
  std::vector<CrashPointOutcome> outcomes;

  [[nodiscard]] bool all_converged() const;
  /// Ops whose recovery diverged (empty on a fully passing sweep).
  [[nodiscard]] std::vector<std::uint64_t> diverged() const;
};

/// Runs the sweep. `base_prefix` roots all temporary artifact paths (the
/// caller owns cleanup of `base_prefix`-prefixed files). Requires workload,
/// recover, and at least one artifact.
[[nodiscard]] CrashSweepReport run_crash_sweep(const CrashSweep& sweep,
                                               const std::string& base_prefix);

/// Reads a whole file through a Vfs; returns false when the file does not
/// exist (distinguishing "absent" from "empty"). Exposed for tests that
/// compare artifacts the same way the sweep does.
bool read_file_bytes(icn::store::Vfs& vfs, const std::string& path,
                     std::vector<std::uint8_t>& out);

}  // namespace icn::fault
