// Post-run checkpoint corruption: the silent-storage half of the fault
// model. A FaultPlan's BitFlipSpec is resolved against the actual bytes of a
// probe's checkpoint file — one bit of one window payload is XOR-flipped —
// so recovery tests exercise the store's CRC armor against real on-disk
// damage rather than synthetic in-memory mutations.
#pragma once

#include <string>

#include "fault/plan.h"
#include "store/vfs.h"

namespace icn::fault {

/// Flips one payload bit of `path` per the plan's BitFlipSpec for `probe`:
/// the floor(section_frac * num_windows)-th kWindow section, at byte
/// floor(byte_frac * payload_size) of its payload. Appends a kBitFlip event
/// (hour = the window's event hour, a = absolute file offset, b = XOR mask)
/// to `ledger` and returns true when a flip happened; returns false without
/// touching the file when the plan has no flip for this probe or the file
/// has no window sections. Throws icn::util::IoError on I/O failure. I/O
/// flows through `vfs` (nullptr = store::posix_vfs()).
bool corrupt_snapshot(const std::string& path, std::size_t probe,
                      const FaultPlan& plan, FaultLedger& ledger,
                      store::Vfs* vfs = nullptr);

}  // namespace icn::fault
