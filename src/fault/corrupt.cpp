#include "fault/corrupt.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "store/snapshot.h"
#include "util/error.h"

namespace icn::fault {
namespace {

[[noreturn]] void fail_errno(const std::string& what, const std::string& path) {
  throw icn::util::IoError(what + " '" + path + "': " + std::strerror(errno));
}

}  // namespace

bool corrupt_snapshot(const std::string& path, std::size_t probe,
                      const FaultPlan& plan, FaultLedger& ledger) {
  const auto spec = plan.bitflip(probe);
  if (!spec) return false;

  std::vector<store::SectionInfo> windows;
  for (const auto& info : store::scan_section_index(path)) {
    if (info.type == store::SectionType::kWindow && info.payload_size > 0) {
      windows.push_back(info);
    }
  }
  if (windows.empty()) return false;

  const auto pick = static_cast<std::size_t>(
      spec->section_frac * static_cast<double>(windows.size()));
  const store::SectionInfo& target = windows[std::min(pick, windows.size() - 1)];
  auto byte = static_cast<std::uint64_t>(
      spec->byte_frac * static_cast<double>(target.payload_size));
  byte = std::min(byte, target.payload_size - 1);
  const std::uint64_t offset = target.payload_offset + byte;

  const int fd = ::open(path.c_str(), O_RDWR | O_CLOEXEC);
  if (fd < 0) fail_errno("cannot open snapshot for corruption", path);
  std::int64_t hour = 0;
  std::uint8_t value = 0;
  if (::pread(fd, &hour, sizeof(hour),
              static_cast<off_t>(target.payload_offset)) !=
          static_cast<ssize_t>(sizeof(hour)) ||
      ::pread(fd, &value, 1, static_cast<off_t>(offset)) != 1) {
    ::close(fd);
    fail_errno("cannot read snapshot byte", path);
  }
  value ^= spec->mask;
  if (::pwrite(fd, &value, 1, static_cast<off_t>(offset)) != 1 ||
      ::fsync(fd) != 0) {
    ::close(fd);
    fail_errno("cannot write snapshot byte", path);
  }
  ::close(fd);

  ledger.push_back({probe, hour, FaultKind::kBitFlip,
                    static_cast<std::int64_t>(offset),
                    static_cast<std::int64_t>(spec->mask)});
  return true;
}

}  // namespace icn::fault
