#include "fault/corrupt.h"

#include <algorithm>
#include <vector>

#include "store/snapshot.h"
#include "store/vfs.h"
#include "util/error.h"

namespace icn::fault {

bool corrupt_snapshot(const std::string& path, std::size_t probe,
                      const FaultPlan& plan, FaultLedger& ledger,
                      store::Vfs* vfs) {
  const auto spec = plan.bitflip(probe);
  if (!spec) return false;

  std::vector<store::SectionInfo> windows;
  for (const auto& info : store::scan_section_index(path, vfs)) {
    if (info.type == store::SectionType::kWindow && info.payload_size > 0) {
      windows.push_back(info);
    }
  }
  if (windows.empty()) return false;

  const auto pick = static_cast<std::size_t>(
      spec->section_frac * static_cast<double>(windows.size()));
  const store::SectionInfo& target = windows[std::min(pick, windows.size() - 1)];
  auto byte = static_cast<std::uint64_t>(
      spec->byte_frac * static_cast<double>(target.payload_size));
  byte = std::min(byte, target.payload_size - 1);
  const std::uint64_t offset = target.payload_offset + byte;

  store::Vfs& v = store::vfs_or_default(vfs);
  store::VfsFile file = v.open(path, store::Vfs::OpenMode::kReadWrite);
  std::int64_t hour = 0;
  std::uint8_t value = 0;
  try {
    std::uint8_t hour_bytes[sizeof(hour)];
    std::size_t got = 0;
    while (got < sizeof(hour)) {
      const std::size_t n =
          v.pread(file, {hour_bytes + got, sizeof(hour) - got},
                  target.payload_offset + got);
      if (n == 0) {
        throw icn::util::IoError(path +
                                 ": unexpected end of file reading window "
                                 "hour");
      }
      got += n;
    }
    std::copy(hour_bytes, hour_bytes + sizeof(hour),
              reinterpret_cast<std::uint8_t*>(&hour));
    if (v.pread(file, {&value, 1}, offset) != 1) {
      throw icn::util::IoError(path + ": unexpected end of file reading "
                               "target byte");
    }
    value ^= spec->mask;
    if (v.pwrite(file, {&value, 1}, offset) != 1) {
      throw icn::util::IoError(path + ": short pwrite flipping target byte");
    }
    v.fsync(file);
  } catch (...) {
    try {
      v.close(file);
    } catch (...) {
    }
    throw;
  }
  v.close(file);

  ledger.push_back({probe, hour, FaultKind::kBitFlip,
                    static_cast<std::int64_t>(offset),
                    static_cast<std::int64_t>(spec->mask)});
  return true;
}

}  // namespace icn::fault
