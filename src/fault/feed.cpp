#include "fault/feed.h"

#include <algorithm>
#include <cstddef>
#include <unordered_map>
#include <utility>

#include "util/error.h"
#include "util/rng.h"

namespace icn::fault {

FaultyFeed::FaultyFeed(std::size_t probe, std::vector<stream::FeedBatch> script,
                       const FaultPlan* plan, FaultLedger* ledger)
    : probe_(probe), script_(std::move(script)), plan_(plan), ledger_(ledger) {
  ICN_REQUIRE(plan_ != nullptr, "faulty feed needs a plan");
  ICN_REQUIRE(ledger_ != nullptr, "faulty feed needs a ledger");
}

stream::PullResult FaultyFeed::deliver(stream::FeedBatch batch) {
  ++deliveries_;
  return {stream::PullStatus::kBatch, std::move(batch)};
}

stream::PullResult FaultyFeed::pull() {
  if (stall_remaining_ > 0) {
    --stall_remaining_;
    return {stream::PullStatus::kStalled, {}};
  }
  if (transient_remaining_ > 0) {
    --transient_remaining_;
    throw stream::TransientFeedError("injected transient failure");
  }
  if (dup_pending_) {
    stream::FeedBatch batch = std::move(*dup_pending_);
    dup_pending_.reset();
    return deliver(std::move(batch));
  }
  // Skewed batches come due once enough later deliveries have happened.
  for (std::size_t i = 0; i < held_.size(); ++i) {
    if (deliveries_ >= held_[i].due_after_deliveries) {
      stream::FeedBatch batch = std::move(held_[i].batch);
      held_.erase(held_.begin() + static_cast<std::ptrdiff_t>(i));
      return deliver(std::move(batch));
    }
  }

  while (true) {
    if (cursor_ >= script_.size()) {
      if (held_.empty()) return {stream::PullStatus::kEndOfStream, {}};
      stream::FeedBatch batch = std::move(held_.front().batch);
      held_.erase(held_.begin());
      return deliver(std::move(batch));
    }
    const std::int64_t hour = script_[cursor_].hour;

    if (plan_->poisoned(probe_, hour)) {
      if (!poison_logged_) {
        ledger_->push_back({probe_, hour, FaultKind::kPoison, 0, 0});
        poison_logged_ = true;
      }
      // The cursor never advances; only quarantine ends the retries.
      throw stream::TransientFeedError("injected poisoned probe");
    }

    if (const std::int64_t len = plan_->dropout_starting_at(probe_, hour);
        len > 0) {
      ledger_->push_back({probe_, hour, FaultKind::kDropout, len, 0});
      cursor_ += static_cast<std::size_t>(len);
      stall_remaining_ = len - 1;  // this pull consumes the first stall
      return {stream::PullStatus::kStalled, {}};
    }

    if (const std::int64_t n = plan_->transient_failures(probe_, hour);
        n > 0 && transient_burned_ != cursor_) {
      transient_burned_ = cursor_;
      ledger_->push_back({probe_, hour, FaultKind::kTransient, n, 0});
      transient_remaining_ = n - 1;  // this pull consumes the first throw
      throw stream::TransientFeedError("injected transient failure");
    }

    if (plan_->reordered(probe_, hour) && reorder_burned_ != cursor_ &&
        script_[cursor_].records.size() > 1) {
      reorder_burned_ = cursor_;
      reorder_preserving_antenna_order(script_[cursor_].records,
                                       plan_->reorder_seed(probe_, hour));
      ledger_->push_back(
          {probe_, hour, FaultKind::kReorder,
           static_cast<std::int64_t>(script_[cursor_].records.size()), 0});
    }

    if (const std::int64_t delay = plan_->skew_delay(probe_, hour);
        delay > 0) {
      ledger_->push_back({probe_, hour, FaultKind::kSkew, delay, 0});
      held_.push_back({deliveries_ + static_cast<std::size_t>(delay),
                       script_[cursor_]});
      ++cursor_;
      continue;  // the next script entry is processed within this pull
    }

    if (const auto frac = plan_->truncate_keep_frac(probe_, hour);
        frac && truncate_burned_ != cursor_ &&
        !script_[cursor_].records.empty()) {
      truncate_burned_ = cursor_;
      stream::FeedBatch cut = script_[cursor_];
      const auto kept = static_cast<std::size_t>(
          *frac * static_cast<double>(cut.records.size()));
      cut.records.resize(kept);  // declared_records keeps the intact count
      ledger_->push_back({probe_, hour, FaultKind::kTruncate,
                          static_cast<std::int64_t>(kept),
                          static_cast<std::int64_t>(cut.declared_records)});
      // The cursor stays: the intact batch is redelivered on the next pull.
      return deliver(std::move(cut));
    }

    stream::FeedBatch out = script_[cursor_];
    if (plan_->duplicated(probe_, hour)) {
      ledger_->push_back({probe_, hour, FaultKind::kDuplicate,
                          static_cast<std::int64_t>(out.sequence), 0});
      dup_pending_ = out;
    }
    ++cursor_;
    return deliver(std::move(out));
  }
}

void reorder_preserving_antenna_order(
    std::vector<probe::ServiceSession>& records, std::uint64_t seed) {
  if (records.size() < 2) return;
  std::vector<std::uint32_t> order;  // antenna ids in first-appearance order
  std::unordered_map<std::uint32_t, std::vector<probe::ServiceSession>> groups;
  for (const auto& session : records) {
    auto [it, inserted] = groups.try_emplace(session.antenna_id);
    if (inserted) order.push_back(session.antenna_id);
    it->second.push_back(session);
  }
  icn::util::Rng rng(seed);
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.uniform_index(i)]);
  }
  records.clear();
  for (const std::uint32_t id : order) {
    const auto& group = groups[id];
    records.insert(records.end(), group.begin(), group.end());
  }
}

}  // namespace icn::fault
