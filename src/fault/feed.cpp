#include "fault/feed.h"

#include <algorithm>
#include <bit>
#include <cstddef>
#include <limits>
#include <unordered_map>
#include <utility>

#include "util/error.h"
#include "util/rng.h"

namespace icn::fault {

FaultyFeed::FaultyFeed(std::size_t probe, std::vector<stream::FeedBatch> script,
                       const FaultPlan* plan, FaultLedger* ledger)
    : probe_(probe), script_(std::move(script)), plan_(plan), ledger_(ledger) {
  ICN_REQUIRE(plan_ != nullptr, "faulty feed needs a plan");
  ICN_REQUIRE(ledger_ != nullptr, "faulty feed needs a ledger");
}

stream::PullResult FaultyFeed::deliver(stream::FeedBatch batch) {
  ++deliveries_;
  return {stream::PullStatus::kBatch, std::move(batch)};
}

stream::PullResult FaultyFeed::pull() {
  if (stall_remaining_ > 0) {
    --stall_remaining_;
    return {stream::PullStatus::kStalled, {}};
  }
  if (transient_remaining_ > 0) {
    --transient_remaining_;
    throw stream::TransientFeedError("injected transient failure");
  }
  if (dup_pending_) {
    stream::FeedBatch batch = std::move(*dup_pending_);
    dup_pending_.reset();
    return deliver(std::move(batch));
  }
  // Skewed batches come due once enough later deliveries have happened.
  for (std::size_t i = 0; i < held_.size(); ++i) {
    if (deliveries_ >= held_[i].due_after_deliveries) {
      stream::FeedBatch batch = std::move(held_[i].batch);
      held_.erase(held_.begin() + static_cast<std::ptrdiff_t>(i));
      return deliver(std::move(batch));
    }
  }

  while (true) {
    if (cursor_ >= script_.size()) {
      if (held_.empty()) return {stream::PullStatus::kEndOfStream, {}};
      stream::FeedBatch batch = std::move(held_.front().batch);
      held_.erase(held_.begin());
      return deliver(std::move(batch));
    }
    const std::int64_t hour = script_[cursor_].hour;

    if (plan_->poisoned(probe_, hour)) {
      if (!poison_logged_) {
        ledger_->push_back({probe_, hour, FaultKind::kPoison, 0, 0});
        poison_logged_ = true;
      }
      // The cursor never advances; only quarantine ends the retries.
      throw stream::TransientFeedError("injected poisoned probe");
    }

    if (const OutageSpec* outage = plan_->outage_covering(probe_, hour)) {
      // The plan clamps dropouts so the cursor arrives exactly at the outage
      // start; `remaining` guards the general case anyway. One ledger event
      // covers the whole correlated window, logged by the lowest-indexed
      // probe of the mask.
      const std::int64_t remaining = outage->hour + outage->len - hour;
      if (probe_ == static_cast<std::size_t>(std::countr_zero(outage->probes))) {
        ledger_->push_back({probe_, outage->hour, FaultKind::kSiteOutage,
                            outage->len,
                            static_cast<std::int64_t>(outage->probes)});
      }
      cursor_ += static_cast<std::size_t>(remaining);
      stall_remaining_ = remaining - 1;  // this pull consumes the first stall
      return {stream::PullStatus::kStalled, {}};
    }

    if (const std::int64_t len = plan_->dropout_starting_at(probe_, hour);
        len > 0) {
      ledger_->push_back({probe_, hour, FaultKind::kDropout, len, 0});
      cursor_ += static_cast<std::size_t>(len);
      stall_remaining_ = len - 1;  // this pull consumes the first stall
      return {stream::PullStatus::kStalled, {}};
    }

    if (const std::int64_t n = plan_->transient_failures(probe_, hour);
        n > 0 && transient_burned_ != cursor_) {
      transient_burned_ = cursor_;
      ledger_->push_back({probe_, hour, FaultKind::kTransient, n, 0});
      transient_remaining_ = n - 1;  // this pull consumes the first throw
      throw stream::TransientFeedError("injected transient failure");
    }

    // Field damage lands on the script entry itself, before any reorder /
    // skew / truncate / duplicate copy is taken, so every redelivery of the
    // batch carries identical damaged bits.
    if (plan_->fuzz_record_count(probe_, hour) > 0 && fuzz_burned_ != cursor_ &&
        !script_[cursor_].records.empty()) {
      fuzz_burned_ = cursor_;
      apply_field_fuzz(script_[cursor_].records, probe_, hour, *plan_,
                       ledger_);
    }

    if (plan_->reordered(probe_, hour) && reorder_burned_ != cursor_ &&
        script_[cursor_].records.size() > 1) {
      reorder_burned_ = cursor_;
      reorder_preserving_antenna_order(script_[cursor_].records,
                                       plan_->reorder_seed(probe_, hour));
      ledger_->push_back(
          {probe_, hour, FaultKind::kReorder,
           static_cast<std::int64_t>(script_[cursor_].records.size()), 0});
    }

    if (const std::int64_t delay = plan_->skew_delay(probe_, hour);
        delay > 0) {
      ledger_->push_back({probe_, hour, FaultKind::kSkew, delay, 0});
      held_.push_back({deliveries_ + static_cast<std::size_t>(delay),
                       script_[cursor_]});
      ++cursor_;
      continue;  // the next script entry is processed within this pull
    }

    if (const auto frac = plan_->truncate_keep_frac(probe_, hour);
        frac && truncate_burned_ != cursor_ &&
        !script_[cursor_].records.empty()) {
      truncate_burned_ = cursor_;
      stream::FeedBatch cut = script_[cursor_];
      const auto kept = static_cast<std::size_t>(
          *frac * static_cast<double>(cut.records.size()));
      cut.records.resize(kept);  // declared_records keeps the intact count
      ledger_->push_back({probe_, hour, FaultKind::kTruncate,
                          static_cast<std::int64_t>(kept),
                          static_cast<std::int64_t>(cut.declared_records)});
      // The cursor stays: the intact batch is redelivered on the next pull.
      return deliver(std::move(cut));
    }

    stream::FeedBatch out = script_[cursor_];
    if (plan_->duplicated(probe_, hour)) {
      ledger_->push_back({probe_, hour, FaultKind::kDuplicate,
                          static_cast<std::int64_t>(out.sequence), 0});
      dup_pending_ = out;
    }
    ++cursor_;
    return deliver(std::move(out));
  }
}

void reorder_preserving_antenna_order(
    std::vector<probe::ServiceSession>& records, std::uint64_t seed) {
  if (records.size() < 2) return;
  std::vector<std::uint32_t> order;  // antenna ids in first-appearance order
  std::unordered_map<std::uint32_t, std::vector<probe::ServiceSession>> groups;
  for (const auto& session : records) {
    auto [it, inserted] = groups.try_emplace(session.antenna_id);
    if (inserted) order.push_back(session.antenna_id);
    it->second.push_back(session);
  }
  icn::util::Rng rng(seed);
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.uniform_index(i)]);
  }
  records.clear();
  for (const std::uint32_t id : order) {
    const auto& group = groups[id];
    records.insert(records.end(), group.begin(), group.end());
  }
}

void apply_field_fuzz(std::vector<probe::ServiceSession>& records,
                      std::size_t probe, std::int64_t hour,
                      const FaultPlan& plan, FaultLedger* ledger) {
  const std::int64_t count = plan.fuzz_record_count(probe, hour);
  if (count <= 0 || records.empty()) return;
  icn::util::Rng rng(plan.fuzz_seed(probe, hour));
  const std::int64_t num_hours = plan.params().num_hours;
  for (std::int64_t m = 0; m < count; ++m) {
    const auto idx = static_cast<std::size_t>(
        rng.uniform_index(static_cast<std::uint64_t>(records.size())));
    const std::uint64_t kind = rng.uniform_index(5);
    probe::ServiceSession& record = records[idx];
    switch (kind) {
      case 0:
        record.antenna_id ^=
            1u << static_cast<unsigned>(16 + rng.uniform_index(16));
        break;
      case 1:
        record.service += 1009;
        break;
      case 2: {
        std::int64_t delta =
            1 + static_cast<std::int64_t>(rng.uniform_index(3));
        if (rng.uniform_index(2) == 1) delta = -delta;
        // Keep the skewed hour inside the study so the defect stays in the
        // repairable kClockSkew class (degenerate tiny studies may leave the
        // record clean; the ledger event is appended either way).
        if (record.hour + delta < 0 || record.hour + delta >= num_hours) {
          delta = -delta;
        }
        if (record.hour + delta >= 0 && record.hour + delta < num_hours) {
          record.hour += delta;
        }
        break;
      }
      case 3: {
        double& bytes =
            rng.uniform_index(2) == 0 ? record.down_bytes : record.up_bytes;
        bytes = -bytes;
        break;
      }
      default: {
        double& bytes =
            rng.uniform_index(2) == 0 ? record.down_bytes : record.up_bytes;
        bytes = std::numeric_limits<double>::quiet_NaN();
        break;
      }
    }
    if (ledger != nullptr) {
      ledger->push_back({probe, hour, FaultKind::kFieldFuzz,
                         static_cast<std::int64_t>(idx),
                         static_cast<std::int64_t>(kind)});
    }
  }
}

}  // namespace icn::fault
