#include "fault/restart.h"

#include <optional>
#include <utility>

#include "util/error.h"

namespace icn::fault {

RestartResult run_supervised_with_restarts(
    const FaultPlan& plan, const stream::SupervisorParams& params,
    const FeedFactory& make_specs, FaultLedger* ledger) {
  ICN_REQUIRE(make_specs != nullptr, "restart driver needs a feed factory");
  ICN_REQUIRE(ledger != nullptr, "restart driver needs a ledger");
  const std::size_t restarts = plan.params().restart_count;

  RestartResult result;
  for (std::size_t epoch = 0;; ++epoch) {
    std::vector<stream::FeedSpec> specs = make_specs(epoch);
    for (const auto& spec : specs) {
      ICN_REQUIRE(!spec.checkpoint_path.empty(),
                  "restart recovery needs per-feed checkpoints");
    }
    std::optional<stream::FeedSupervisor> supervisor;
    if (epoch == 0) {
      supervisor.emplace(params, std::move(specs));
    } else {
      supervisor.emplace(
          stream::FeedSupervisor::resume(params, std::move(specs)));
    }
    ++result.epochs;

    bool killed = false;
    if (epoch < restarts) {
      const std::int64_t budget = plan.restart_tick_budget(epoch);
      std::int64_t ticks = 0;
      bool more = true;
      while (ticks < budget && more) {
        more = supervisor->step();
        ++ticks;
      }
      killed = more;
      if (killed) {
        ledger->push_back({0, supervisor->now(), FaultKind::kRestart,
                           static_cast<std::int64_t>(epoch), budget});
      }
    } else {
      supervisor->run();
    }

    if (!killed) {
      result.study = supervisor->merge();
      result.events = supervisor->events();
      result.quarantine = supervisor->quarantine_ledger();
      return result;
    }
    // Destroying the supervisor here IS the kill: checkpoints stay durable,
    // everything in memory is lost, and the next epoch must recover.
    supervisor.reset();
  }
}

}  // namespace icn::fault
