// Supervisor kill/restart driver: the mid-study crash-recovery fault class.
//
// The paper's two-month campaign cannot assume the collection host stays up;
// DESIGN.md §8 requires that killing the supervision process mid-study and
// restarting from the per-probe durable checkpoints converges on the same
// merged study — bit-exact outside injected damage. This driver turns that
// property into a schedulable fault: the FaultPlan grants each supervision
// epoch a deterministic tick budget, the epoch's supervisor is destroyed
// when the budget runs out (its checkpoints stay durable on disk), and the
// next epoch resumes via stream::FeedSupervisor::resume over freshly
// replayed feeds. Every kill is logged as a kRestart event so equal-seed
// runs reproduce the crash schedule verbatim.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "fault/plan.h"
#include "stream/supervise.h"

namespace icn::fault {

/// Builds the feed specs for one supervision epoch. Invoked once per epoch;
/// the sources it wires into the specs must replay the stream from the
/// start (resume skips already-durable records) and must stay alive until
/// the next invocation or the end of the run.
using FeedFactory =
    std::function<std::vector<stream::FeedSpec>(std::size_t epoch)>;

struct RestartResult {
  stream::MergedStudy study;                    ///< Final epoch's merge().
  std::vector<stream::SupervisorEvent> events;  ///< Final epoch's event log.
  quality::QuarantineLedger quarantine;         ///< Final epoch's ledger.
  std::size_t epochs = 0;                       ///< Supervisors constructed.
};

/// Runs a supervised study under the plan's kill/restart schedule: epoch e
/// (of plan.restart_count kills) steps its supervisor for
/// plan.restart_tick_budget(e) ticks, then destroys it mid-study and logs a
/// kRestart event {a = epoch, b = ticks granted}; the next epoch resumes
/// from the durable checkpoints. The final epoch runs to completion (an
/// epoch that finishes inside its budget simply ends the run early, with no
/// kill logged). Requires every spec to carry a checkpoint_path.
[[nodiscard]] RestartResult run_supervised_with_restarts(
    const FaultPlan& plan, const stream::SupervisorParams& params,
    const FeedFactory& make_specs, FaultLedger* ledger);

}  // namespace icn::fault
