// Record-level data quality: typed per-field validation of ServiceSession
// records before they enter the hourly (antenna x service) tensor.
//
// Production probes emit per-record noise — mangled antenna ids, clock skew
// against the batch watermark, sign-flipped byte counters, out-of-alphabet
// service indices — that batch-level structural checks cannot see. The
// validator classifies every defect as repairable (the original value is
// recoverable from context: snap a skewed hour to the batch hour, negate a
// sign-flipped volume) or fatal (the record carries no trustworthy cell
// address and must be quarantined). Repairs are exact inverses of the
// corresponding fault-model mutations, which is what lets chaos tests demand
// bit-exact convergence of repaired runs (DESIGN.md §8).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "probe/probe.h"

namespace icn::quality {

/// Which ServiceSession field a defect was found in.
enum class Field : std::uint8_t {
  kAntennaId = 0,
  kService = 1,
  kHour = 2,
  kDownBytes = 3,
  kUpBytes = 4,
};

/// Why a record was repaired or rejected.
enum class Defect : std::uint8_t {
  kNone = 0,
  /// antenna_id not in the study's tracked set — no trustworthy cell address.
  kUnknownAntenna = 1,
  /// service index >= the catalogue size.
  kServiceOutOfAlphabet = 2,
  /// hour outside [0, num_hours) — not attributable to any study slot.
  kHourOutOfStudy = 3,
  /// hour differs from the batch's event hour (epoch skew); repair snaps it.
  kClockSkew = 4,
  /// Finite negative byte counter (sign flip); repair negates it back.
  kNegativeVolume = 5,
  /// NaN or infinite byte counter — the original magnitude is gone.
  kNonFiniteVolume = 6,
  /// Byte counter above the physically plausible ceiling.
  kVolumeOverflow = 7,
};

/// What the validator did with a record.
enum class Action : std::uint8_t {
  kAccepted = 0,  ///< Clean; record untouched.
  kRepaired = 1,  ///< Defect(s) found and fixed in place.
  kRejected = 2,  ///< Fatal defect; record untouched, caller must drop it.
};

const char* to_string(Field field);
const char* to_string(Defect defect);
const char* to_string(Action action);

/// Validation policy. Zero-initialised limits mean "no constraint".
struct ValidatorParams {
  /// Tracked antenna ids; empty accepts any id (single-feed ingest without a
  /// fixed roster).
  std::vector<std::uint32_t> antenna_ids;
  /// Service-catalogue size; records with service >= num_services are fatal.
  std::size_t num_services = 0;
  /// Study length; hours outside [0, num_hours) are fatal.
  std::int64_t num_hours = 0;
  /// Largest plausible per-session byte counter (default 1 TB).
  double max_volume_bytes = 1.0e12;
  /// Snap a skewed-but-in-study hour to the batch hour instead of rejecting.
  bool repair_clock_skew = true;
  /// Negate finite negative volumes instead of rejecting.
  bool repair_sign_flips = true;
};

/// The validator's judgement of one record. `observed` holds the defective
/// value reinterpreted as a double (bit-cast for integral fields) and
/// `repaired_to` the value written back, so the ledger can show provenance
/// without keeping the record alive.
struct Verdict {
  Action action = Action::kAccepted;
  Field field = Field::kAntennaId;   ///< First defective field (if any).
  Defect defect = Defect::kNone;     ///< First defect found.
  double observed = 0.0;
  double repaired_to = 0.0;
};

/// Stateless-per-record validator. validate() is const and deterministic:
/// the same record and batch hour always produce the same verdict, so
/// equal-seed chaos runs replay identical quarantine ledgers.
class RecordValidator {
 public:
  explicit RecordValidator(ValidatorParams params);

  /// Checks `record` against the policy. Fatal defects leave the record
  /// untouched and return kRejected; repairable defects are fixed in place
  /// (first defect reported in the verdict) and return kRepaired. Field check
  /// order is fixed: antenna, service, hour, down_bytes, up_bytes.
  [[nodiscard]] Verdict validate(probe::ServiceSession& record,
                                 std::int64_t batch_hour) const;

  [[nodiscard]] const ValidatorParams& params() const { return params_; }

 private:
  [[nodiscard]] bool tracked(std::uint32_t antenna_id) const;
  /// Repairs a sign-flipped byte counter in place (fatal volume defects were
  /// screened out before this runs).
  void repair_volume(double& bytes, Verdict& verdict, Field field) const;

  ValidatorParams params_;
  std::vector<std::uint32_t> sorted_ids_;  ///< For O(log n) membership.
};

}  // namespace icn::quality
