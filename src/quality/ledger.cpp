#include "quality/ledger.h"

#include <cstdio>

namespace icn::quality {

void QuarantineLedger::begin_batch(std::uint32_t probe, std::uint64_t sequence,
                                   std::int64_t hour) {
  probe_ = probe;
  sequence_ = sequence;
  hour_ = hour;
}

void QuarantineLedger::log(std::size_t record_index, const Verdict& verdict) {
  ++stats_.records_seen;
  switch (verdict.action) {
    case Action::kAccepted:
      ++stats_.accepted;
      return;
    case Action::kRepaired:
      ++stats_.repaired;
      break;
    case Action::kRejected:
      ++stats_.rejected;
      break;
  }
  ++stats_.by_defect[static_cast<std::size_t>(verdict.defect)];
  entries_.push_back(QuarantineEntry{
      .probe = probe_,
      .sequence = sequence_,
      .hour = hour_,
      .record = record_index,
      .field = verdict.field,
      .defect = verdict.defect,
      .action = verdict.action,
      .observed = verdict.observed,
      .repaired_to = verdict.repaired_to,
  });
}

std::string to_text(const QuarantineEntry& entry) {
  char buf[256];
  if (entry.action == Action::kRepaired) {
    std::snprintf(buf, sizeof(buf),
                  "probe=%u seq=%llu hour=%lld rec=%zu %s %s %s %.17g -> %.17g",
                  entry.probe,
                  static_cast<unsigned long long>(entry.sequence),
                  static_cast<long long>(entry.hour), entry.record,
                  to_string(entry.action), to_string(entry.field),
                  to_string(entry.defect), entry.observed, entry.repaired_to);
  } else {
    std::snprintf(buf, sizeof(buf),
                  "probe=%u seq=%llu hour=%lld rec=%zu %s %s %s %.17g",
                  entry.probe,
                  static_cast<unsigned long long>(entry.sequence),
                  static_cast<long long>(entry.hour), entry.record,
                  to_string(entry.action), to_string(entry.field),
                  to_string(entry.defect), entry.observed);
  }
  return buf;
}

std::string to_text(const QuarantineLedger& ledger) {
  std::string out;
  for (const auto& entry : ledger.entries()) {
    out += to_text(entry);
    out += '\n';
  }
  char tail[160];
  const auto& s = ledger.stats();
  std::snprintf(tail, sizeof(tail),
                "seen=%llu accepted=%llu repaired=%llu rejected=%llu",
                static_cast<unsigned long long>(s.records_seen),
                static_cast<unsigned long long>(s.accepted),
                static_cast<unsigned long long>(s.repaired),
                static_cast<unsigned long long>(s.rejected));
  out += tail;
  out += '\n';
  return out;
}

}  // namespace icn::quality
