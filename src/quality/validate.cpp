#include "quality/validate.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace icn::quality {

const char* to_string(Field field) {
  switch (field) {
    case Field::kAntennaId: return "antenna_id";
    case Field::kService: return "service";
    case Field::kHour: return "hour";
    case Field::kDownBytes: return "down_bytes";
    case Field::kUpBytes: return "up_bytes";
  }
  return "?";
}

const char* to_string(Defect defect) {
  switch (defect) {
    case Defect::kNone: return "none";
    case Defect::kUnknownAntenna: return "unknown_antenna";
    case Defect::kServiceOutOfAlphabet: return "service_out_of_alphabet";
    case Defect::kHourOutOfStudy: return "hour_out_of_study";
    case Defect::kClockSkew: return "clock_skew";
    case Defect::kNegativeVolume: return "negative_volume";
    case Defect::kNonFiniteVolume: return "non_finite_volume";
    case Defect::kVolumeOverflow: return "volume_overflow";
  }
  return "?";
}

const char* to_string(Action action) {
  switch (action) {
    case Action::kAccepted: return "accepted";
    case Action::kRepaired: return "repaired";
    case Action::kRejected: return "rejected";
  }
  return "?";
}

RecordValidator::RecordValidator(ValidatorParams params)
    : params_(std::move(params)), sorted_ids_(params_.antenna_ids) {
  ICN_REQUIRE(params_.max_volume_bytes > 0.0, "max_volume_bytes must be > 0");
  std::sort(sorted_ids_.begin(), sorted_ids_.end());
}

bool RecordValidator::tracked(std::uint32_t antenna_id) const {
  if (sorted_ids_.empty()) return true;
  return std::binary_search(sorted_ids_.begin(), sorted_ids_.end(),
                            antenna_id);
}

void RecordValidator::repair_volume(double& bytes, Verdict& verdict,
                                    Field field) const {
  if (bytes >= 0.0) return;
  if (verdict.defect == Defect::kNone) {
    verdict.field = field;
    verdict.defect = Defect::kNegativeVolume;
    verdict.observed = bytes;
    verdict.repaired_to = -bytes;
  }
  bytes = -bytes;
  verdict.action = Action::kRepaired;
}

Verdict RecordValidator::validate(probe::ServiceSession& record,
                                  std::int64_t batch_hour) const {
  // Phase 1: fatal checks on a pristine record, in fixed field order. A
  // fatal defect must win over any repairable one so that the record is
  // returned untouched.
  Verdict verdict;
  if (!tracked(record.antenna_id)) {
    verdict.action = Action::kRejected;
    verdict.field = Field::kAntennaId;
    verdict.defect = Defect::kUnknownAntenna;
    verdict.observed = static_cast<double>(record.antenna_id);
    return verdict;
  }
  if (params_.num_services > 0 && record.service >= params_.num_services) {
    verdict.action = Action::kRejected;
    verdict.field = Field::kService;
    verdict.defect = Defect::kServiceOutOfAlphabet;
    verdict.observed = static_cast<double>(record.service);
    return verdict;
  }
  const bool hour_in_study =
      params_.num_hours <= 0 ||
      (record.hour >= 0 && record.hour < params_.num_hours);
  const bool hour_skewed = record.hour != batch_hour;
  if (hour_skewed && (!params_.repair_clock_skew || !hour_in_study)) {
    // A skewed hour we may not (or cannot sensibly) snap back: without the
    // repair the record would land in the wrong study slot.
    verdict.action = Action::kRejected;
    verdict.field = Field::kHour;
    verdict.defect =
        hour_in_study ? Defect::kClockSkew : Defect::kHourOutOfStudy;
    verdict.observed = static_cast<double>(record.hour);
    return verdict;
  }
  // Dry-run the volume checks for fatal defects before mutating anything.
  const auto fatal_volume = [&](double bytes) {
    if (!std::isfinite(bytes)) return Defect::kNonFiniteVolume;
    if (bytes > params_.max_volume_bytes) return Defect::kVolumeOverflow;
    if (bytes < 0.0 && (!params_.repair_sign_flips ||
                        -bytes > params_.max_volume_bytes)) {
      return Defect::kNegativeVolume;
    }
    return Defect::kNone;
  };
  if (const Defect d = fatal_volume(record.down_bytes); d != Defect::kNone) {
    verdict.action = Action::kRejected;
    verdict.field = Field::kDownBytes;
    verdict.defect = d;
    verdict.observed = record.down_bytes;
    return verdict;
  }
  if (const Defect d = fatal_volume(record.up_bytes); d != Defect::kNone) {
    verdict.action = Action::kRejected;
    verdict.field = Field::kUpBytes;
    verdict.defect = d;
    verdict.observed = record.up_bytes;
    return verdict;
  }

  // Phase 2: repairs, applied in the same field order. Only the first defect
  // is reported in the verdict (the ledger keeps one entry per record), but
  // every repairable field is fixed.
  if (hour_skewed) {
    verdict.action = Action::kRepaired;
    verdict.field = Field::kHour;
    verdict.defect = Defect::kClockSkew;
    verdict.observed = static_cast<double>(record.hour);
    verdict.repaired_to = static_cast<double>(batch_hour);
    record.hour = batch_hour;
  }
  repair_volume(record.down_bytes, verdict, Field::kDownBytes);
  repair_volume(record.up_bytes, verdict, Field::kUpBytes);
  return verdict;
}

}  // namespace icn::quality
