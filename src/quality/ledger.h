// QuarantineLedger: the audit trail of every record the quality layer
// repaired or rejected, with full provenance (probe, batch sequence, event
// hour, record index, field, defect). The ledger is the quality-layer
// counterpart of fault::FaultLedger: equal-seed chaos runs must reproduce it
// verbatim, which is how the chaos suite proves that per-field fuzz, repair,
// and rejection are all deterministic (DESIGN.md §8).
#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "quality/validate.h"

namespace icn::quality {

/// One repaired or rejected record, with provenance.
struct QuarantineEntry {
  std::uint32_t probe = 0;      ///< Feed index within the study.
  std::uint64_t sequence = 0;   ///< Batch sequence number.
  std::int64_t hour = 0;        ///< Batch event hour.
  std::size_t record = 0;       ///< Record index within the batch.
  Field field = Field::kAntennaId;
  Defect defect = Defect::kNone;
  Action action = Action::kAccepted;
  double observed = 0.0;     ///< Defective value (integral fields widened).
  double repaired_to = 0.0;  ///< Value written back (repairs only).

  /// Bitwise on the doubles: "verbatim reproduction" must hold for NaN
  /// observations too (a defaulted == would make a ledger unequal to
  /// itself once a non-finite volume is logged).
  friend bool operator==(const QuarantineEntry& x, const QuarantineEntry& y) {
    return x.probe == y.probe && x.sequence == y.sequence &&
           x.hour == y.hour && x.record == y.record && x.field == y.field &&
           x.defect == y.defect && x.action == y.action &&
           std::bit_cast<std::uint64_t>(x.observed) ==
               std::bit_cast<std::uint64_t>(y.observed) &&
           std::bit_cast<std::uint64_t>(x.repaired_to) ==
               std::bit_cast<std::uint64_t>(y.repaired_to);
  }
};

/// Deterministic aggregate counts over a ledger.
struct QuarantineStats {
  std::uint64_t records_seen = 0;
  std::uint64_t accepted = 0;
  std::uint64_t repaired = 0;
  std::uint64_t rejected = 0;
  /// Indexed by Defect enum value; counts one defect per entry (the first
  /// found in the record).
  std::uint64_t by_defect[8] = {};

  friend bool operator==(const QuarantineStats&,
                         const QuarantineStats&) = default;
};

/// Append-only log of quality verdicts. begin_batch() sets the provenance
/// context for subsequent log() calls; accepted records are counted but not
/// logged (the ledger stays proportional to the damage, not the traffic).
class QuarantineLedger {
 public:
  /// Sets the provenance stamped on subsequent log() calls.
  void begin_batch(std::uint32_t probe, std::uint64_t sequence,
                   std::int64_t hour);

  /// Records one verdict at `record_index` of the current batch. Accepted
  /// verdicts only bump the counters; repairs and rejections append an entry.
  void log(std::size_t record_index, const Verdict& verdict);

  [[nodiscard]] const std::vector<QuarantineEntry>& entries() const {
    return entries_;
  }
  [[nodiscard]] const QuarantineStats& stats() const { return stats_; }

  friend bool operator==(const QuarantineLedger&,
                         const QuarantineLedger&) = default;

 private:
  std::uint32_t probe_ = 0;
  std::uint64_t sequence_ = 0;
  std::int64_t hour_ = 0;
  std::vector<QuarantineEntry> entries_;
  QuarantineStats stats_;
};

/// One line per entry, stable formatting (chaos tests diff this).
std::string to_text(const QuarantineEntry& entry);
std::string to_text(const QuarantineLedger& ledger);

}  // namespace icn::quality
